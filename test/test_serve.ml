(* The serve daemon: JSON framing, protocol decoding, coalescing and
   the socket-level server (fault isolation, admission, drain).

   Every server here gets an explicit fault plan ([Faults.none] unless
   the test injects), so a chaos [VDRAM_FAULTS] environment cannot
   perturb the suite.  All sockets are Unix-domain paths under the
   system temp directory. *)

module Json = Vdram_serve.Json
module Protocol = Vdram_serve.Protocol
module Render = Vdram_serve.Render
module Coalesce = Vdram_serve.Coalesce
module Server = Vdram_serve.Server
module Engine = Vdram_engine.Engine
module Faults = Vdram_engine.Faults
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model

let check_true = Helpers.check_true

(* ----- JSON ------------------------------------------------------------ *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.0;
      Json.Num 42.0;
      Json.Num (-17.5);
      Json.Num 1e-3;
      Json.Str "";
      Json.Str "plain";
      Json.Str "quote\" slash\\ tab\t nl\n";
      Json.List [];
      Json.List [ Json.Num 1.0; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Num 1.0);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      check_true
        (Printf.sprintf "single-line frame: %s" s)
        (not (String.contains s '\n'));
      match Json.parse s with
      | Ok v' ->
        Alcotest.(check string)
          (Printf.sprintf "round-trip of %s" s)
          s (Json.to_string v')
      | Error e -> Alcotest.failf "re-parse of %s failed: %s" s e)
    cases;
  (* Escapes and unicode decode to the bytes we expect. *)
  (match parse_ok {|"aA\n\t"|} with
   | Json.Str s -> Alcotest.(check string) "\\uXXXX escape" "aA\n\t" s
   | _ -> Alcotest.fail "expected a string");
  (match parse_ok {|"😀"|} with
   | Json.Str s ->
     Alcotest.(check string) "surrogate pair to UTF-8" "\xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "expected a string");
  (match parse_ok "1e3" with
   | Json.Num v -> Helpers.close "exponent literal" 1000.0 v
   | _ -> Alcotest.fail "expected a number");
  (* Integral floats print compactly; non-finite collapses to null. *)
  Alcotest.(check string) "integral print" "1000" (Json.to_string (Json.Num 1000.));
  Alcotest.(check string) "nan prints null" "null" (Json.to_string (Json.Num Float.nan))

let json_rejects () =
  let bad =
    [
      "";
      "{";
      "[1,2";
      "1 2";
      "tru";
      "\"unterminated";
      {|"bad \q escape"|};
      {|"lone \ud800 surrogate"|};
      "\"raw \x01 control\"";
      String.concat "" (List.init 100 (fun _ -> "[")) ^ "1"
      ^ String.concat "" (List.init 100 (fun _ -> "]"));
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "hostile input %S parsed as %s" s (Json.to_string v))
    bad

(* ----- protocol -------------------------------------------------------- *)

let decode s =
  match Json.parse s with
  | Ok j -> Protocol.decode j
  | Error e -> Alcotest.failf "fixture %S is not JSON: %s" s e

let protocol_decode () =
  (match decode {|{"id":"x","op":"ping"}|} with
   | Ok { Protocol.id = Json.Str "x"; kind = Protocol.Ping; deadline = None } ->
     ()
   | Ok _ -> Alcotest.fail "ping decoded to the wrong request"
   | Error (_, e) -> Alcotest.failf "ping rejected: %s" e);
  (match decode {|{"op":"eval"}|} with
   | Ok { Protocol.id = Json.Null; kind = Protocol.Eval _; _ } -> ()
   | Ok _ -> Alcotest.fail "bare eval decoded to the wrong request"
   | Error (_, e) -> Alcotest.failf "bare eval rejected: %s" e);
  (match decode {|{"op":"corners","samples":50,"spread":0.2,"deadline":1.5}|} with
   | Ok
       {
         Protocol.kind = Protocol.Corners { samples = 50; spread; _ };
         deadline = Some d;
         _;
       } ->
     Helpers.close "spread decoded" 0.2 spread;
     Helpers.close "deadline decoded" 1.5 d
   | Ok _ -> Alcotest.fail "corners decoded to the wrong request"
   | Error (_, e) -> Alcotest.failf "corners rejected: %s" e);
  (* Defaults are applied, not required. *)
  (match decode {|{"op":"sensitivity"}|} with
   | Ok { Protocol.kind = Protocol.Sensitivity { top = 15; _ }; _ } -> ()
   | Ok _ -> Alcotest.fail "sensitivity default top missing"
   | Error (_, e) -> Alcotest.failf "sensitivity rejected: %s" e);
  let rejected ?(id = Json.Null) s =
    match decode s with
    | Error (got_id, _) ->
      Alcotest.(check string)
        (Printf.sprintf "error echoes id for %s" s)
        (Json.to_string id) (Json.to_string got_id)
    | Ok _ -> Alcotest.failf "bad request %S decoded" s
  in
  rejected {|{"op":"nope"}|};
  rejected {|{"op":"eval","deadline":-1}|};
  rejected {|{"op":"corners","samples":0}|};
  rejected ~id:(Json.Num 7.) {|{"id":7,"op":"sweep","lens":"vdd"}|};
  rejected {|["not","an","object"]|};
  rejected {|{"no_op":true}|}

let req s =
  match decode s with
  | Ok r -> r
  | Error (_, e) -> Alcotest.failf "request %S rejected: %s" s e

let protocol_work_key () =
  let k s = Protocol.work_key (req s) in
  (* Identity: same work, different id, same key. *)
  (match (k {|{"id":"a","op":"eval"}|}, k {|{"id":"b","op":"eval"}|}) with
   | Some a, Some b -> Alcotest.(check string) "id is not part of the key" a b
   | _ -> Alcotest.fail "eval requests must have keys");
  let distinct msg a b =
    match (k a, k b) with
    | Some ka, Some kb ->
      check_true msg (not (String.equal ka kb))
    | _ -> Alcotest.fail "both requests must have keys"
  in
  distinct "samples differ the key" {|{"op":"corners","samples":10}|}
    {|{"op":"corners","samples":11}|};
  distinct "deadline differs the key" {|{"op":"eval"}|}
    {|{"op":"eval","deadline":2}|};
  distinct "op differs the key" {|{"op":"eval"}|} {|{"op":"sensitivity"}|};
  check_true "ping is never coalesced" (k {|{"op":"ping"}|} = None);
  check_true "stats is never coalesced" (k {|{"op":"stats"}|} = None)

(* ----- render bit-identity --------------------------------------------- *)

let default_spec =
  {
    Protocol.source = None;
    node = None;
    density_mbits = None;
    io_width = None;
    datarate = None;
  }

let default_power_text () =
  match Protocol.resolve_config default_spec with
  | Error e -> Alcotest.failf "default config: %s" e
  | Ok (cfg, stored) ->
    (match Protocol.resolve_pattern cfg stored None with
     | Error e -> Alcotest.failf "default pattern: %s" e
     | Ok p ->
       ( cfg,
         p,
         Render.to_string
           (fun ppf () -> Render.power ~eval:Model.pattern_power ppf cfg p)
           () ))

let render_engine_identity () =
  let cfg, p, cli = default_power_text () in
  let e = Engine.create ~jobs:1 () in
  let served =
    Render.to_string
      (fun ppf () -> Render.power ~eval:(Engine.eval e) ppf cfg p)
      ()
  in
  Alcotest.(check string) "engine-backed render equals model-backed" cli served;
  check_true "report is non-trivial" (String.length cli > 200)

(* ----- coalescing ------------------------------------------------------ *)

let coalesce_single_flight () =
  let c : int Coalesce.t = Coalesce.create () in
  let n = 6 in
  let computed = Atomic.make 0 in
  let results = Array.make n (-1) in
  let f () =
    Atomic.incr computed;
    (* Followers increment the shared counter before blocking, so the
       leader can hold the flight open until every thread has joined —
       this is what makes "exactly one computation" deterministic. *)
    let rec wait () =
      let _, shared = Coalesce.counters c in
      if shared < n - 1 then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ();
    42
  in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Coalesce.run c ~key:"k" f with
            | `Led v | `Shared v -> results.(i) <- v)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "exactly one computation" 1 (Atomic.get computed);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "caller %d shares" i) 42 v)
    results;
  let led, shared = Coalesce.counters c in
  Alcotest.(check (pair int int)) "counters" (1, n - 1) (led, shared);
  (* The flight is gone: a later caller computes afresh. *)
  (match Coalesce.run c ~key:"k" (fun () -> Atomic.incr computed; 7) with
   | `Led 7 -> ()
   | _ -> Alcotest.fail "post-flight caller must lead");
  Alcotest.(check int) "fresh flight recomputes" 2 (Atomic.get computed)

let coalesce_error_propagation () =
  let c : int Coalesce.t = Coalesce.create () in
  let computed = Atomic.make 0 in
  let outcomes = Array.make 2 "pending" in
  let f () =
    Atomic.incr computed;
    let rec wait () =
      let _, shared = Coalesce.counters c in
      if shared < 1 then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ();
    failwith "boom"
  in
  let threads =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            outcomes.(i) <-
              (match Coalesce.run c ~key:"k" f with
               | `Led _ | `Shared _ -> "value"
               | exception Failure m -> "raised " ^ m))
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "one computation" 1 (Atomic.get computed);
  Array.iter
    (fun o -> Alcotest.(check string) "both callers re-raise" "raised boom" o)
    outcomes

(* ----- socket-level server --------------------------------------------- *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vdram-serve-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Boot a daemon on a fresh Unix socket, run [f server path], then
   drain and check the listener was unlinked — every test doubles as a
   clean-drain test. *)
let with_server ?(faults = Faults.none) ?(max_inflight = 8)
    ?(max_frame_bytes = 1 lsl 20) ?(drain_grace = 5.0)
    ?(engine = Engine.create ~jobs:1 ()) f =
  let path = fresh_sock () in
  let cfg =
    {
      (Server.default_config (Server.Unix_path path)) with
      Server.max_inflight;
      max_frame_bytes;
      drain_grace;
    }
  in
  match Server.create ~faults ~engine cfg with
  | Error e -> Alcotest.failf "server boot: %s" e
  | Ok server ->
    let th = Thread.create (fun () -> Server.serve server) () in
    Fun.protect
      ~finally:(fun () ->
        Server.drain server;
        Thread.join th;
        check_true "socket unlinked after drain" (not (Sys.file_exists path)))
      (fun () -> f server path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let send_line fd s = send_raw fd (s ^ "\n")

(* Read until [n] complete frames arrived, EOF, or timeout; parse each
   line as JSON. *)
let recv_frames ?(timeout = 30.0) fd n =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let frames = ref [] in
  let count = ref 0 in
  let deadline = Unix.gettimeofday () +. timeout in
  let split () =
    let continue = ref true in
    while !continue do
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> continue := false
      | Some i ->
        frames := String.sub s 0 i :: !frames;
        incr count;
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1)
    done
  in
  let rec go () =
    if !count < n && Unix.gettimeofday () < deadline then
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          split ();
          go ())
  in
  go ();
  List.rev_map
    (fun line ->
      match Json.parse line with
      | Ok j -> j
      | Error e -> Alcotest.failf "unparseable frame %S: %s" line e)
    !frames

let jget frame k =
  match Json.mem k frame with
  | Some v -> v
  | None ->
    Alcotest.failf "frame %s lacks field %S" (Json.to_string frame) k

let jstr frame k =
  match Json.str (jget frame k) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" k

let jbool frame k =
  match Json.bool_ (jget frame k) with
  | Some b -> b
  | None -> Alcotest.failf "field %S is not a bool" k

let one = function
  | [ f ] -> f
  | l -> Alcotest.failf "expected exactly one frame, got %d" (List.length l)

let server_basics () =
  let _, _, expected = default_power_text () in
  with_server (fun _server path ->
      let fd = connect path in
      send_line fd {|{"id":"p1","op":"ping"}|};
      let ping = one (recv_frames fd 1) in
      Alcotest.(check string) "ping ok" "ok" (jstr ping "status");
      Alcotest.(check string) "ping op" "ping" (jstr ping "op");
      Alcotest.(check string) "ping echoes id" "p1"
        (match Json.mem "id" ping with
         | Some (Json.Str s) -> s
         | _ -> "<missing>");
      send_line fd {|{"id":"e1","op":"eval"}|};
      let ev = one (recv_frames fd 1) in
      Alcotest.(check string) "eval ok" "ok" (jstr ev "status");
      (* The headline property: the daemon's text equals the one-shot
         CLI's stdout for the same request, byte for byte. *)
      Alcotest.(check string) "serve text is bit-identical to the CLI"
        expected (jstr ev "text");
      check_true "solo request is not coalesced" (not (jbool ev "coalesced"));
      send_line fd {|{"id":"s1","op":"stats"}|};
      let st = one (recv_frames fd 1) in
      Alcotest.(check string) "stats ok" "ok" (jstr st "status");
      let stats = jget st "stats" in
      let requests = jget stats "requests" in
      (match Json.int_ (jget requests "received") with
       | Some n -> check_true "stats counts requests" (n >= 3)
       | None -> Alcotest.fail "requests.received is not an int");
      check_true "engine block present" (Json.mem "engine" stats <> None);
      Unix.close fd)

let server_bad_frames () =
  with_server ~max_frame_bytes:256 (fun _server path ->
      let fd = connect path in
      (* Garbage JSON: structured rejection, connection survives. *)
      send_line fd "this is not json";
      let e1 = one (recv_frames fd 1) in
      Alcotest.(check string) "garbage status" "error" (jstr e1 "status");
      Alcotest.(check string) "garbage class" "bad_frame" (jstr e1 "class");
      (* Valid JSON, invalid request: bad_request with the id echoed. *)
      send_line fd {|{"id":"br","op":"warp"}|};
      let e2 = one (recv_frames fd 1) in
      Alcotest.(check string) "bad request class" "bad_request"
        (jstr e2 "class");
      Alcotest.(check string) "bad request echoes id" "br"
        (match Json.mem "id" e2 with
         | Some (Json.Str s) -> s
         | _ -> "<missing>");
      (* Oversized line: rejected at the cap, stream resyncs at the
         next newline and the connection keeps working. *)
      send_raw fd (String.make 400 'x');
      let e3 = one (recv_frames fd 1) in
      Alcotest.(check string) "oversized class" "bad_frame" (jstr e3 "class");
      send_raw fd "tail of the oversized frame\n";
      send_line fd {|{"id":"p2","op":"ping"}|};
      let ok = one (recv_frames fd 1) in
      Alcotest.(check string) "connection survives hostile frames" "ok"
        (jstr ok "status");
      Unix.close fd)

let server_split_frames () =
  with_server (fun _server path ->
      let fd = connect path in
      (* One frame delivered across three writes must decode once. *)
      send_raw fd {|{"id":"sp","op":|};
      Thread.delay 0.05;
      send_raw fd {|"ping"}|};
      Thread.delay 0.05;
      send_raw fd "\n";
      let ok = one (recv_frames fd 1) in
      Alcotest.(check string) "split frame decodes" "ok" (jstr ok "status");
      (* Two frames in one write both decode. *)
      send_raw fd
        ({|{"id":"a","op":"ping"}|} ^ "\n" ^ {|{"id":"b","op":"ping"}|} ^ "\n");
      let frames = recv_frames fd 2 in
      Alcotest.(check int) "pipelined frames" 2 (List.length frames);
      List.iter
        (fun f -> Alcotest.(check string) "pipelined ok" "ok" (jstr f "status"))
        frames;
      Unix.close fd)

let server_half_close () =
  with_server (fun _server path ->
      let fd = connect path in
      send_line fd {|{"id":"h","op":"ping"}|};
      send_raw fd {|{"partial":|};
      (* Half-close: we stop writing; the daemon must still answer the
         complete frame and flag the truncated one. *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let frames = recv_frames fd 2 in
      (match frames with
       | [ ok; err ] ->
         Alcotest.(check string) "ping answered after half-close" "ok"
           (jstr ok "status");
         Alcotest.(check string) "truncated tail flagged" "bad_frame"
           (jstr err "class");
         check_true "truncation mentioned"
           (String.length (jstr err "message") > 0)
       | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l));
      (* Server closes its side after EOF. *)
      let tail = recv_frames ~timeout:5.0 fd 1 in
      Alcotest.(check int) "no frames after close" 0 (List.length tail);
      Unix.close fd)

let stall_plan per_item =
  {
    Faults.seed = 0;
    rate = 1.0;
    action = Some (Faults.Stall (Faults.Mix, per_item));
    corrupt_store = false;
  }

let server_coalescing () =
  (* Every item stalls 80 ms in the mix stage, so the 8-sample corners
     computation holds its flight open for >0.6 s — room for the three
     followers to join.  The coalesce counters then prove exactly one
     computation ran: compute() is only ever invoked by a leader. *)
  with_server ~faults:(stall_plan 0.08) (fun server path ->
      let n = 4 in
      let results = Array.make n None in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                let fd = connect path in
                send_line fd {|{"id":"c","op":"corners","samples":8}|};
                (match recv_frames fd 1 with
                 | [ f ] -> results.(i) <- Some f
                 | _ -> ());
                Unix.close fd)
              ())
      in
      List.iter Thread.join threads;
      let frames =
        Array.to_list results
        |> List.map (function
             | Some f -> f
             | None -> Alcotest.fail "a client got no terminal frame")
      in
      List.iter
        (fun f ->
          Alcotest.(check string) "coalesced request ok" "ok" (jstr f "status"))
        frames;
      let texts = List.map (fun f -> jstr f "text") frames in
      List.iter
        (fun t ->
          Alcotest.(check string) "all callers share one result"
            (List.hd texts) t)
        texts;
      let led, shared = Server.coalesce_counters server in
      Alcotest.(check (pair int int))
        "counter-verified: one computation, three shares" (1, n - 1)
        (led, shared);
      let coalesced =
        List.length (List.filter (fun f -> jbool f "coalesced") frames)
      in
      Alcotest.(check int) "three responses marked coalesced" (n - 1) coalesced)

let server_fault_isolation () =
  let plan =
    {
      Faults.seed = 3;
      rate = 1.0;
      action = Some (Faults.Raise Faults.Mix);
      corrupt_store = false;
    }
  in
  with_server ~faults:plan (fun _server path ->
      let fd = connect path in
      send_line fd {|{"id":"f1","op":"eval"}|};
      let e1 = one (recv_frames fd 1) in
      Alcotest.(check string) "injected fault fails the request" "error"
        (jstr e1 "status");
      Alcotest.(check string) "classified at its stage" "mix"
        (jstr e1 "class");
      check_true "flagged as injected" (jbool e1 "injected");
      (* The daemon itself is unharmed: the next request is served. *)
      send_line fd {|{"id":"p","op":"ping"}|};
      let ok = one (recv_frames fd 1) in
      Alcotest.(check string) "daemon survives the fault" "ok"
        (jstr ok "status");
      send_line fd {|{"id":"s","op":"stats"}|};
      let st = one (recv_frames fd 1) in
      let failures = jget (jget st "stats") "failures" in
      (match
         (Json.int_ (jget failures "items"), Json.int_ (jget failures "injected"))
       with
       | Some items, Some injected ->
         check_true "failures counted" (items >= 1);
         Alcotest.(check int) "all failures are injected" items injected
       | _ -> Alcotest.fail "failure counters are not ints");
      Unix.close fd)

let server_deadline () =
  (* Each item stalls 150 ms; a 50 ms per-item deadline must classify
     the overrun as a deadline failure, not a success. *)
  with_server ~faults:(stall_plan 0.15) (fun _server path ->
      let fd = connect path in
      send_line fd {|{"id":"d","op":"eval","deadline":0.05}|};
      let f = one (recv_frames fd 1) in
      Alcotest.(check string) "deadline overrun is an error" "error"
        (jstr f "status");
      Alcotest.(check string) "classified as deadline" "deadline"
        (jstr f "class");
      Unix.close fd)

let server_overload () =
  with_server ~faults:(stall_plan 0.08) ~max_inflight:1
    (fun _server path ->
      let fd1 = connect path in
      send_line fd1 {|{"id":"slow","op":"corners","samples":8}|};
      Thread.delay 0.25;
      (* Different work key, so it cannot coalesce with the in-flight
         request: admission control must reject it immediately. *)
      let fd2 = connect path in
      send_line fd2 {|{"id":"fast","op":"corners","samples":7}|};
      let rej = one (recv_frames fd2 1) in
      Alcotest.(check string) "rejected" "error" (jstr rej "status");
      Alcotest.(check string) "classified overloaded" "overloaded"
        (jstr rej "class");
      (match Json.int_ (jget rej "retry_after_ms") with
       | Some ms -> check_true "retry hint present" (ms > 0)
       | None -> Alcotest.fail "retry_after_ms missing");
      (* Ping bypasses admission even while saturated. *)
      send_line fd2 {|{"id":"p","op":"ping"}|};
      let ping = one (recv_frames fd2 1) in
      Alcotest.(check string) "ping bypasses admission" "ok"
        (jstr ping "status");
      (* The slow request still completes normally. *)
      let slow = one (recv_frames fd1 1) in
      Alcotest.(check string) "in-flight request completes" "ok"
        (jstr slow "status");
      Unix.close fd1;
      Unix.close fd2)

let server_sweep_streams () =
  with_server (fun _server path ->
      let fd = connect path in
      send_line fd
        ({|{"id":"sw","op":"sweep","lens":"external voltage Vdd",|}
        ^ {|"factors":[0.9,0.92,0.94,0.96,0.98,1.0,1.02,1.04,1.06,1.1]}|});
      (* Ten factors stream as two chunks of eight, then a terminal. *)
      let frames = recv_frames fd 3 in
      (match frames with
       | [ p0; p1; term ] ->
         Alcotest.(check string) "first part" "part" (jstr p0 "status");
         Alcotest.(check string) "second part" "part" (jstr p1 "status");
         Alcotest.(check string) "terminal ok" "ok" (jstr term "status");
         Alcotest.(check string) "terminal op" "sweep" (jstr term "op");
         check_true "terminal carries the rendered text"
           (String.length (jstr term "text") > 0)
       | l -> Alcotest.failf "expected 3 frames, got %d" (List.length l));
      (* Unknown lens is a per-request error, not a dead daemon. *)
      send_line fd {|{"id":"bad","op":"sweep","lens":"warp","factors":[1.0]}|};
      let err = one (recv_frames fd 1) in
      Alcotest.(check string) "unknown lens rejected" "bad_request"
        (jstr err "class");
      send_line fd {|{"id":"p","op":"ping"}|};
      Alcotest.(check string) "daemon alive after lens error" "ok"
        (jstr (one (recv_frames fd 1)) "status");
      Unix.close fd)

let server_drain_aborts () =
  (* A request stalling ~1.5 s against a 0.2 s drain grace must be
     force-aborted with exactly one terminal frame. *)
  with_server ~faults:(stall_plan 0.15) ~drain_grace:0.2
    (fun server path ->
      let fd = connect path in
      send_line fd {|{"id":"long","op":"corners","samples":10}|};
      Thread.delay 0.3;
      Server.drain server;
      (* Collect everything until the server closes the connection. *)
      let frames = recv_frames ~timeout:10.0 fd 99 in
      let terminals =
        List.filter
          (fun f ->
            match jstr f "status" with "ok" | "error" -> true | _ -> false)
          frames
      in
      (match terminals with
       | [ t ] ->
         Alcotest.(check string) "aborted terminal" "error" (jstr t "status");
         Alcotest.(check string) "classified aborted" "aborted"
           (jstr t "class")
       | l ->
         Alcotest.failf "expected exactly one terminal frame, got %d"
           (List.length l));
      Unix.close fd)

let server_drain_flushes_store () =
  let module Store = Vdram_engine.Store in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "vdram-serve-test-store"
  in
  let st = Engine.store_open ~dir () in
  Store.clear st;
  let engine = Engine.create ~jobs:1 ~store:st () in
  with_server ~engine (fun _server path ->
      let fd = connect path in
      send_line fd {|{"id":"e","op":"eval"}|};
      Alcotest.(check string) "eval ok" "ok"
        (jstr (one (recv_frames fd 1)) "status");
      Unix.close fd);
  (* with_server drained on the way out; drain must have flushed. *)
  check_true "drain flushed the mix snapshot"
    (Sys.file_exists (Store.path st "mix"));
  check_true "drain left nothing dirty" (not (Engine.store_dirty engine));
  Store.clear st

let suite =
  [
    Alcotest.test_case "json round-trip and escapes" `Quick json_roundtrip;
    Alcotest.test_case "json rejects hostile input" `Quick json_rejects;
    Alcotest.test_case "protocol decode and defaults" `Quick protocol_decode;
    Alcotest.test_case "protocol work keys" `Quick protocol_work_key;
    Alcotest.test_case "render: engine equals model" `Quick
      render_engine_identity;
    Alcotest.test_case "coalesce: deterministic single flight" `Quick
      coalesce_single_flight;
    Alcotest.test_case "coalesce: errors propagate to all" `Quick
      coalesce_error_propagation;
    Alcotest.test_case "server: ping, eval bit-identity, stats" `Quick
      server_basics;
    Alcotest.test_case "server: hostile frames" `Quick server_bad_frames;
    Alcotest.test_case "server: split and pipelined frames" `Quick
      server_split_frames;
    Alcotest.test_case "server: half-closed socket" `Quick server_half_close;
    Alcotest.test_case "server: coalescing is counter-verified" `Quick
      server_coalescing;
    Alcotest.test_case "server: injected faults are isolated" `Quick
      server_fault_isolation;
    Alcotest.test_case "server: deadline classification" `Quick server_deadline;
    Alcotest.test_case "server: admission control" `Quick server_overload;
    Alcotest.test_case "server: sweep streams parts" `Quick
      server_sweep_streams;
    Alcotest.test_case "server: drain aborts with one terminal" `Quick
      server_drain_aborts;
    Alcotest.test_case "server: drain flushes the store" `Quick
      server_drain_flushes_store;
  ]
