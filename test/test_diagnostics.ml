(* Tests of the diagnostics engine and the lint passes: stable codes,
   source spans, golden renderings, and the physical-consistency
   analyses behind `vdram lint`. *)

module Code = Vdram_diagnostics.Code
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Parser = Vdram_dsl.Parser
module Lint = Vdram_lint.Lint
module Passes = Vdram_lint.Passes
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Validate = Vdram_core.Validate
module Params = Vdram_tech.Params

let run src = (Lint.run src).Lint.diagnostics

let codes src = List.map (fun (d : D.t) -> d.D.code) (run src)

let has msg code src =
  Helpers.check_true
    (Printf.sprintf "%s emits %s (got: %s)" msg code
       (String.concat "," (codes src)))
    (List.mem code (codes src))

let find_code code src =
  List.find_opt (fun (d : D.t) -> d.D.code = code) (run src)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* A minimal clean description: everything defaults from the 65 nm
   roadmap entry. *)
let base = "Device\nPart name=t node=65nm\n"

let in_section section stmt = base ^ "\n" ^ section ^ "\n" ^ stmt ^ "\n"

(* ----- registry ---------------------------------------------------- *)

let test_registry () =
  let cs = List.map (fun (i : Code.info) -> i.Code.code) Code.all in
  Helpers.check_true "codes unique"
    (List.length cs = List.length (List.sort_uniq compare cs));
  Helpers.check_true "codes ordered" (List.sort compare cs = cs);
  List.iter
    (fun c ->
      Helpers.check_true (c ^ " format")
        (String.length c = 5 && c.[0] = 'V'))
    cs;
  (match Code.find "V0301" with
   | Some i -> Helpers.check_true "V0301 is an error" (i.Code.severity = Code.Error)
   | None -> Alcotest.fail "V0301 not registered");
  Helpers.check_true "unknown code" (not (Code.is_known "V9999"))

let test_emitted_codes_registered () =
  (* Every code the snippets below provoke must be in the registry. *)
  List.iter
    (fun src ->
      List.iter
        (fun c -> Helpers.check_true (c ^ " registered") (Code.is_known c))
        (codes src))
    [ "Part name=t\n";
      in_section "Specification" "IO width=";
      in_section "Specification" "Timing trc=15V";
      in_section "Voltagez" "Supply vdd=1.5V";
      in_section "Pattern" "Pattern loop= act fnord" ]

(* ----- syntax (V00xx) ---------------------------------------------- *)

let test_syntax_codes () =
  has "statement before section" "V0001" "Part name=t\n";
  has "missing value" "V0003" (in_section "Specification" "IO width=");
  has "assignment as keyword" "V0004" (in_section "Device" "=foo bar");
  (* The parser error carries the code and a column span. *)
  (match Parser.parse (in_section "Specification" "IO width=") with
   | Error e ->
     Alcotest.(check string) "parser code" "V0003" e.Parser.code;
     Helpers.check_true "parser span has columns"
       (e.Parser.span.Span.col_start > 1)
   | Ok _ -> Alcotest.fail "expected a parse error")

let test_embedded_comment () =
  let src = in_section "Specification" "Density mbits=1024#half the die" in
  (match find_code "V0005" src with
   | Some d ->
     Helpers.check_true "V0005 is a warning" (not (D.is_error d));
     Alcotest.(check int) "marker column" 19 d.D.span.Span.col_start
   | None -> Alcotest.fail "embedded # not reported");
  (* The historical behaviour is preserved: the value still parses. *)
  (match Vdram_dsl.Elaborate.load_string src with
   | Ok { Vdram_dsl.Elaborate.config; _ } ->
     Helpers.close "truncated density survives"
       (1024.0 *. (2.0 ** 20.0))
       config.Config.spec.Spec.density_bits
   | Error _ -> Alcotest.fail "description should still elaborate");
  (* A slash inside a unit is not a comment. *)
  Helpers.check_true "fF/um is not a comment"
    (not
       (List.mem "V0005"
          (codes (in_section "Technology" "Set cwiresignal=0.36fF/um"))))

(* ----- dimensional analysis (V01xx/V02xx) -------------------------- *)

let test_dimensions_report_all () =
  (* Elaboration stops at the first bad literal; the lint pass keeps
     going and reports both. *)
  let src = in_section "Specification" "Timing trc=15V trcd=2 trp=15ns" in
  let v0101 = List.filter (fun c -> c = "V0101") (codes src) in
  Alcotest.(check int) "both wrong dimensions reported" 2
    (List.length v0101);
  (* ... and elaboration-dependent passes are skipped, not crashed. *)
  Helpers.check_true "no physical findings on a broken file"
    (not (List.exists (fun c -> c >= "V0300") (codes src)))

let test_literal_codes () =
  has "malformed number" "V0102" (in_section "Specification" "Density mbits=abc");
  has "unknown unit" "V0103" (in_section "Voltages" "Supply vdd=1.5Q");
  has "non-finite literal" "V0104" (in_section "Voltages" "Supply vdd=1e999V");
  (match find_code "V0103" (in_section "Voltages" "Supply vdd=1.5Q") with
   | Some d ->
     Helpers.check_true "V0103 span points at the argument"
       (d.D.span.Span.col_start > 1)
   | None -> Alcotest.fail "V0103 missing")

let test_hygiene_codes () =
  has "unknown argument" "V0105" (in_section "Specification" "IO widht=16");
  has "unknown section" "V0106" (in_section "Voltagez" "Supply vdd=1.5V");
  has "unknown keyword" "V0107" (in_section "Voltages" "Suply vdd=1.5V");
  has "unknown technology parameter" "V0201"
    (in_section "Technology" "Set cbitlinez=82fF");
  has "unknown pattern command" "V0206"
    (in_section "Pattern" "Pattern loop= act fnord")

(* ----- physical consistency (V03xx) -------------------------------- *)

let test_vint_above_vdd () =
  let src =
    in_section "Voltages" "Supply vdd=1.2V vint=1.8V vbl=1.0V vpp=2.8V"
  in
  match find_code "V0303" src with
  | Some d ->
    Helpers.check_true "V0303 is an error" (D.is_error d);
    Helpers.check_true "V0303 is placed on the Supply statement"
      (d.D.span.Span.line > 0 && d.D.span.Span.col_start > 1)
  | None -> Alcotest.fail "vint above vdd not flagged"

let test_density_zero_guard () =
  (* A zero density must be a V0305 error, not a NaN that silently
     disables the coverage check. *)
  let cfg = Lazy.force Helpers.ddr3_1g in
  let broken =
    Config.with_spec cfg { cfg.Config.spec with Spec.density_bits = 0.0 }
  in
  let findings = Validate.check broken in
  Helpers.check_true "V0305 emitted"
    (List.exists (fun (d : D.t) -> d.D.code = "V0305") findings);
  Helpers.check_true "density error is fatal" (not (Validate.is_clean broken));
  Helpers.check_true "no NaN leaks into the report"
    (List.for_all
       (fun (d : D.t) -> not (contains d.D.message "nan"))
       findings)

(* ----- finiteness (V04xx) ------------------------------------------ *)

let test_finiteness_pass () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  Alcotest.(check int) "clean config has no finiteness findings" 0
    (List.length (Passes.finiteness cfg));
  let poisoned =
    Config.with_tech cfg { cfg.Config.tech with Params.c_bitline = Float.nan }
  in
  let ds = Passes.finiteness poisoned in
  Helpers.check_true "NaN bitline poisons an operation energy (V0401)"
    (List.exists (fun (d : D.t) -> d.D.code = "V0401") ds);
  Helpers.check_true "finiteness findings are errors"
    (List.for_all D.is_error ds)

(* ----- timing (V05xx) ---------------------------------------------- *)

let test_timing_codes () =
  has "tRCD+tRP over tRC" "V0501"
    (in_section "Specification" "Timing trc=30ns trcd=20ns trp=20ns");
  has "non-positive timing" "V0502"
    (in_section "Specification" "Timing trc=55ns trcd=0ns trp=15ns");
  (match
     find_code "V0501"
       (in_section "Specification" "Timing trc=30ns trcd=20ns trp=20ns")
   with
   | Some d ->
     Helpers.check_true "V0501 points at trc"
       (d.D.span.Span.col_start > 1)
   | None -> Alcotest.fail "V0501 missing")

(* ----- pattern reachability (V06xx) -------------------------------- *)

let test_pattern_codes () =
  has "column without activate" "V0601"
    (in_section "Pattern" "Pattern loop= rd nop nop nop nop nop nop nop");
  has "data bus oversubscribed" "V0603"
    (in_section "Pattern" "Pattern loop= rd wrt");
  (* The old aggregate V0602 bound is superseded by the bank-aware
     replay: back-to-back activates now surface as tRRD spacing. *)
  has "activates closer than tRRD" "V0802"
    (in_section "Pattern" "Pattern loop= act pre")

(* ----- driver ------------------------------------------------------ *)

let test_minimal_clean () =
  Alcotest.(check int) "roadmap-default description lints clean" 0
    (List.length (run base))

let test_suppress () =
  let src = in_section "Specification" "IO widht=16" in
  let r = Lint.run src in
  Helpers.check_true "warning present" (Lint.warnings r = 1);
  let r' = Lint.suppress ~codes:[ "V0105" ] r in
  Alcotest.(check int) "warning suppressed" 0 (Lint.warnings r');
  (* Errors are never suppressible. *)
  let bad = in_section "Specification" "Density mbits=abc" in
  let rb = Lint.suppress ~codes:[ "V0102" ] (Lint.run bad) in
  Helpers.check_true "error survives --allow" (Lint.errors rb > 0)

let fixture = "fixtures/bad_vpp_headroom.dram"

let test_fixture_golden_text () =
  if Sys.file_exists fixture then begin
    let r = Lint.run_file fixture in
    Alcotest.(check int) "one error" 1 (Lint.errors r);
    let rendered = Format.asprintf "%a" Lint.pp_text r in
    let expected =
      String.concat "\n"
        [ "fixtures/bad_vpp_headroom.dram:12:36: error[V0301]: Vpp \
           (1.30 V) leaves no write-back headroom over Vbl (1.20 V)";
          "  12 | Supply vdd=1.5V vint=1.4V vbl=1.2V vpp=1.3V";
          "     |                                    ^^^^^^^^";
          "     = help: raise vpp or lower vbl so that vpp > vbl + 0.5 V";
          ""; "" ]
    in
    Alcotest.(check string) "golden text rendering" expected rendered
  end

let test_fixture_json () =
  if Sys.file_exists fixture then begin
    let r = Lint.run_file fixture in
    let json = Lint.to_json r in
    List.iter
      (fun part ->
        Helpers.check_true (part ^ " in JSON") (contains json part))
      [ "\"errors\":1"; "\"warnings\":0"; "\"code\":\"V0301\"";
        "\"severity\":\"error\""; "\"line\":12"; "\"col\":36";
        "\"end_col\":44"; "\"file\":\"fixtures/bad_vpp_headroom.dram\"" ]
  end

let test_missing_file () =
  let r = Lint.run_file "fixtures/no_such_file.dram" in
  match r.Lint.diagnostics with
  | [ d ] ->
    Alcotest.(check string) "I/O failures are V0006" "V0006" d.D.code;
    Helpers.check_true "counts as an error" (Lint.errors r = 1)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

let examples =
  [ "ddr3_1gb.dram"; "ddr5_16g.dram"; "inefficient.dram";
    "lpddr_mobile.dram"; "sdr_128m.dram" ]

let test_examples_lint_clean () =
  List.iter
    (fun name ->
      let path = Filename.concat "../examples" name in
      if Sys.file_exists path then begin
        let r = Lint.run_file path in
        if r.Lint.diagnostics <> [] then
          Alcotest.failf "%s not lint-clean:\n%s" name
            (Format.asprintf "%a" Lint.pp_text r)
      end)
    examples

let suite =
  [
    Alcotest.test_case "code registry" `Quick test_registry;
    Alcotest.test_case "emitted codes registered" `Quick
      test_emitted_codes_registered;
    Alcotest.test_case "syntax codes" `Quick test_syntax_codes;
    Alcotest.test_case "embedded comment marker" `Quick test_embedded_comment;
    Alcotest.test_case "dimensional pass reports all" `Quick
      test_dimensions_report_all;
    Alcotest.test_case "literal codes" `Quick test_literal_codes;
    Alcotest.test_case "hygiene codes" `Quick test_hygiene_codes;
    Alcotest.test_case "vint above vdd spanned" `Quick test_vint_above_vdd;
    Alcotest.test_case "density zero guard" `Quick test_density_zero_guard;
    Alcotest.test_case "finiteness pass" `Quick test_finiteness_pass;
    Alcotest.test_case "timing codes" `Quick test_timing_codes;
    Alcotest.test_case "pattern codes" `Quick test_pattern_codes;
    Alcotest.test_case "minimal description clean" `Quick test_minimal_clean;
    Alcotest.test_case "suppression" `Quick test_suppress;
    Alcotest.test_case "fixture golden text" `Quick test_fixture_golden_text;
    Alcotest.test_case "fixture JSON" `Quick test_fixture_json;
    Alcotest.test_case "missing file" `Quick test_missing_file;
    Alcotest.test_case "examples lint clean" `Quick test_examples_lint_clean;
  ]
