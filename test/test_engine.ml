(* The staged evaluation engine: the parallel pool must be
   bit-identical to serial evaluation, and the stage caches must hit
   and invalidate along the config -> geometry -> extraction -> mix
   pipeline. *)

module Engine = Vdram_engine.Engine
module Pool = Vdram_engine.Pool
module Model = Vdram_core.Model
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Params = Vdram_tech.Params
module Sensitivity = Vdram_analysis.Sensitivity
module Corners = Vdram_analysis.Corners
module Lenses = Vdram_analysis.Lenses
module Contribution = Vdram_circuits.Contribution

let base () = Lazy.force Helpers.ddr3_2g

let scale_bitline cfg factor =
  let t = cfg.Config.tech in
  Config.with_tech cfg { t with Params.c_bitline = t.Params.c_bitline *. factor }

(* ----- pool ---------------------------------------------------------- *)

let pool_ordering () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expected
        (Pool.map ~jobs (fun x -> (x * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let pool_exception_order () =
  (* Several items fail; the error surfaced must be the first failing
     item in input order, regardless of which domain hits it first. *)
  match
    Pool.map ~jobs:4
      (fun i -> if i >= 3 then failwith (string_of_int i) else i)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "first failure in input order" "3" msg

let pool_chunked_determinism () =
  (* Any chunk geometry — single-item steals, odd sizes, one chunk per
     worker, one chunk for everything — must reproduce List.map. *)
  let xs = List.init 257 Fun.id in
  let expected = List.map (fun x -> (x * 3) - 1) xs in
  List.iter
    (fun chunk ->
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk=%d jobs=%d matches List.map" chunk jobs)
            expected
            (Pool.map ~chunk ~jobs (fun x -> (x * 3) - 1) xs))
        [ 2; 4 ])
    [ 1; 3; 64; 1000 ]

let pool_chunked_exception_order () =
  List.iter
    (fun chunk ->
      match
        Pool.map ~chunk ~jobs:4
          (fun i -> if i mod 5 = 3 then failwith (string_of_int i) else i)
          (List.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "chunk=%d: first failure in input order" chunk)
          "3" msg)
    [ 1; 3; 16 ]

let pool_default_chunk () =
  Helpers.check_true "empty input still yields a legal chunk"
    (Pool.default_chunk ~jobs:8 0 >= 1);
  Helpers.check_true "huge inputs are capped"
    (Pool.default_chunk ~jobs:1 1_000_000 <= 1024);
  Alcotest.(check int) "about eight chunks per worker" 4
    (Pool.default_chunk ~jobs:4 128)

let vdram_jobs_env () =
  let saved = Sys.getenv_opt "VDRAM_JOBS" in
  let set v = Unix.putenv "VDRAM_JOBS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value ~default:"" saved))
    (fun () ->
      set "3";
      Alcotest.(check int) "VDRAM_JOBS=3 honoured" 3 (Pool.default_jobs ());
      set "0";
      Alcotest.(check int) "zero clamped to 1" 1 (Pool.default_jobs ());
      set "-2";
      Alcotest.(check int) "negative clamped to 1" 1 (Pool.default_jobs ());
      set "not-a-number";
      Alcotest.(check int) "garbage falls back to the machine default"
        (Domain.recommended_domain_count ())
        (Pool.default_jobs ()))

(* ----- engine vs model ----------------------------------------------- *)

let eval_matches_model () =
  let cfg = base () in
  let engine = Engine.serial () in
  List.iter
    (fun (label, p) ->
      Helpers.check_true
        (label ^ ": Engine.eval structurally equals Model.pattern_power")
        (Engine.eval engine cfg p = Model.pattern_power cfg p))
    [ ("idd0", Pattern.idd0 cfg.Config.spec);
      ("idd4r", Pattern.idd4r cfg.Config.spec);
      ("idd7_mixed", Pattern.idd7_mixed cfg.Config.spec) ]

let renamed_twin_hits_cache () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  let twin = { cfg with Config.name = "renamed twin" } in
  let r = Engine.eval engine twin p in
  let s = Engine.stats engine in
  Alcotest.(check int) "mix stage hit for renamed twin" 1
    s.Engine.mix_stats.hits;
  Alcotest.(check string) "report labelled with the caller's name"
    "renamed twin" r.Report.config_name

(* ----- cache hit and invalidation accounting ------------------------- *)

let cache_counters () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  let s = Engine.stats engine in
  Alcotest.(check int) "cold run: one geometry miss" 1
    s.Engine.geometry_stats.misses;
  Alcotest.(check int) "cold run: one extraction miss" 1
    s.Engine.extraction_stats.misses;
  Alcotest.(check int) "cold run: one mix miss" 1 s.Engine.mix_stats.misses;
  ignore (Engine.eval engine cfg p);
  let s = Engine.stats engine in
  Alcotest.(check int) "warm run: mix hit" 1 s.Engine.mix_stats.hits;
  Alcotest.(check int) "warm run: no extra mix miss" 1
    s.Engine.mix_stats.misses;
  (* Same configuration, different pattern: geometry and extraction
     replay from cache, only the mix recomputes. *)
  ignore (Engine.eval engine cfg (Pattern.idd4r cfg.Config.spec));
  let s = Engine.stats engine in
  Alcotest.(check int) "new pattern: extraction hit" 1
    s.Engine.extraction_stats.hits;
  Alcotest.(check int) "new pattern: mix miss" 2 s.Engine.mix_stats.misses;
  Engine.reset_stats engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "reset clears counters" 0 s.Engine.mix_stats.misses

let upstream_invalidation () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  Engine.reset_stats engine;
  (* A bitline-capacitance perturbation leaves the floorplan alone:
     geometry must replay from cache while extraction and mix rerun. *)
  ignore (Engine.eval engine (scale_bitline cfg 1.1) p);
  let s = Engine.stats engine in
  Alcotest.(check int) "perturbed tech: geometry hit" 1
    s.Engine.geometry_stats.hits;
  Alcotest.(check int) "perturbed tech: geometry not recomputed" 0
    s.Engine.geometry_stats.misses;
  Alcotest.(check int) "perturbed tech: extraction miss" 1
    s.Engine.extraction_stats.misses;
  Alcotest.(check int) "perturbed tech: mix miss" 1 s.Engine.mix_stats.misses

(* ----- determinism properties ---------------------------------------- *)

(* One engine shared across iterations, so later iterations exercise
   genuine cache hits against cold references. *)
let shared_engine = lazy (Engine.create ~jobs:1 ())

let eval_determinism =
  QCheck.Test.make
    ~name:"eval: warm cache, cold engine and direct model bit-identical"
    ~count:25
    QCheck.(float_range 0.7 1.3)
    (fun factor ->
      let cfg = scale_bitline (base ()) factor in
      let p = Pattern.idd0 cfg.Config.spec in
      let reference = Model.pattern_power cfg p in
      let warm = Lazy.force shared_engine in
      let first = Engine.eval warm cfg p in
      let cached = Engine.eval warm cfg p in
      let cold = Engine.eval (Engine.serial ()) cfg p in
      first = reference && cached = reference && cold = reference)

let map_jobs_determinism =
  QCheck.Test.make ~name:"map_jobs: parallel bit-identical to serial"
    ~count:10
    QCheck.(pair (int_range 2 6) (list_of_size (Gen.int_range 1 12)
                                    (float_range 0.8 1.2)))
    (fun (jobs, factors) ->
      let cfg = base () in
      let p = Pattern.idd0 cfg.Config.spec in
      let cfgs = List.map (scale_bitline cfg) factors in
      let parallel = Engine.create ~jobs () in
      Engine.map_jobs parallel (fun c -> Engine.eval parallel c p) cfgs
      = List.map (fun c -> Model.pattern_power c p) cfgs)

(* ----- fingerprints --------------------------------------------------- *)

let fingerprint_faithful =
  QCheck.Test.make
    ~name:"fingerprint: equal iff physics projections equal, name-blind"
    ~count:40
    QCheck.(pair (float_range 0.7 1.3) (float_range 0.7 1.3))
    (fun (f1, f2) ->
      let module Fp = Vdram_engine.Fingerprint in
      let c1 = scale_bitline (base ()) f1 in
      let c2 = scale_bitline (base ()) f2 in
      let fp c = Fp.of_value (Model.physics_projection c) in
      let renamed = { c1 with Config.name = "fingerprint twin" } in
      Fp.equal (fp c1) (fp renamed)
      && Fp.equal (fp c1) (fp c2)
         = (Model.physics_projection c1 = Model.physics_projection c2))

(* ----- delta extraction ----------------------------------------------- *)

(* The content-addressing contract: for EVERY lens, at a random scale
   on a random base, the spliced extraction must equal the full
   re-extraction bit for bit (record and report alike), the groups the
   splice actually dirtied must be within the lens's declared dirty
   set — an under-declared [Lenses.dirties] table fails here, an
   over-declared one merely wastes splices — and the dirty decision
   itself (the compiled per-group predicates) must agree exactly with
   the marshalled sub-key digests of [Model.group_key], so the two
   encodings of each group's read set cannot drift apart. *)
let delta_matches_full =
  QCheck.Test.make
    ~name:"extract_delta: bit-identical to full for every lens" ~count:8
    QCheck.(pair (float_range 0.85 1.2) (float_range 0.7 1.3))
    (fun (base_factor, scale) ->
      let cfg = scale_bitline (base ()) base_factor in
      let base_ex = Model.extract cfg in
      let p = Pattern.idd7_mixed cfg.Config.spec in
      List.for_all
        (fun lens ->
          let cfg' = Lenses.scale lens scale cfg in
          let full = Model.extract cfg' in
          let delta, outcome = Model.extract_delta ~base:base_ex cfg' in
          delta = full
          && Model.pattern_power_staged delta cfg' p
             = Model.pattern_power_staged full cfg' p
          && (not outcome.Model.fallback)
          && List.for_all
               (fun g -> List.mem g lens.Lenses.dirties)
               outcome.Model.dirtied
          && List.for_all
               (fun g ->
                 List.mem g outcome.Model.dirtied
                 = (Model.group_key base_ex g <> Model.group_key full g))
               Contribution.groups)
        Lenses.all)

let delta_group_keys () =
  (* Scaling the bitline capacitance reaches the wordline (coupling)
     and sense-amplifier (swing) charge models and nothing else: their
     sub-keys must move, the other four must hold bit-still. *)
  let cfg = base () in
  let ex = Model.extract cfg in
  let ex' = Model.extract (scale_bitline cfg 1.1) in
  List.iter
    (fun g ->
      let name = Contribution.group_name g in
      let stable = Model.group_key ex g = Model.group_key ex' g in
      match g with
      | Contribution.Wordline | Contribution.Sense_amp ->
        Helpers.check_true (name ^ " sub-key dirtied") (not stable)
      | _ -> Helpers.check_true (name ^ " sub-key stable") stable)
    Contribution.groups

let engine_delta_path () =
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let cfg' = scale_bitline cfg 1.05 in
  let on = Engine.create ~jobs:1 () in
  ignore (Engine.eval on cfg p);
  let r = Engine.eval ~base:cfg on cfg' p in
  Helpers.check_true "delta eval bit-identical to the direct model"
    (r = Model.pattern_power cfg' p);
  let ds = (Engine.stats on).Engine.delta_stats in
  Alcotest.(check int) "one delta attempt" 1 ds.Engine.delta_attempts;
  Alcotest.(check int) "no fallback" 0 ds.Engine.delta_fallbacks;
  Alcotest.(check int) "four clean groups spliced" 4
    ds.Engine.groups_spliced;
  (* The switch: a [~delta:false] engine returns the same report and
     never takes the delta path. *)
  let off = Engine.create ~jobs:1 ~delta:false () in
  ignore (Engine.eval off cfg p);
  Helpers.check_true "delta-off engine identical"
    (Engine.eval ~base:cfg off cfg' p = r);
  Alcotest.(check int) "delta-off never attempts" 0
    (Engine.stats off).Engine.delta_stats.Engine.delta_attempts

let sensitivity_delta_identity () =
  let cfg = base () in
  let on = Engine.create ~jobs:1 () in
  let off = Engine.create ~jobs:1 ~delta:false () in
  let s_on = Sensitivity.run ~engine:on cfg in
  let s_off = Sensitivity.run ~engine:off cfg in
  Helpers.check_true "sensitivity identical with delta on and off"
    (s_on = s_off);
  Helpers.check_true "the delta engine actually took the delta path"
    ((Engine.stats on).Engine.delta_stats.Engine.delta_attempts > 0)

(* ----- persistent store ----------------------------------------------- *)

let store_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "vdram-test-store"

let store_roundtrip () =
  let module Store = Vdram_engine.Store in
  let store () = Engine.store_open ~dir:store_dir () in
  Store.clear (store ());
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let cold = Engine.create ~jobs:1 ~store:(store ()) () in
  let r_cold = Engine.eval cold cfg p in
  Engine.flush_store cold;
  (* A fresh engine on the same directory replays both stages from
     disk: the preload counters see the snapshot, the first eval is a
     pure mix hit, and the replayed report is bit-identical. *)
  let warm = Engine.create ~jobs:1 ~store:(store ()) () in
  Helpers.check_true "snapshots preloaded"
    (Engine.preloaded warm = (1, 1));
  let r_warm = Engine.eval warm cfg p in
  let s = Engine.stats warm in
  Alcotest.(check int) "warm eval is a mix hit" 1 s.Engine.mix_stats.hits;
  Alcotest.(check int) "warm eval misses nothing" 0
    s.Engine.mix_stats.misses;
  Helpers.check_true "disk replay bit-identical" (r_warm = r_cold);
  Store.clear (store ())

let store_corruption_recovery () =
  let module Store = Vdram_engine.Store in
  let st = Engine.store_open ~dir:store_dir () in
  Store.clear st;
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let seed = Engine.create ~jobs:1 ~store:st () in
  let reference = Engine.eval seed cfg p in
  Engine.flush_store seed;
  (* Total garbage: wrong magic. *)
  Out_channel.with_open_text (Store.path st "extraction") (fun oc ->
      Out_channel.output_string oc "not a vdram store at all");
  (* Right magic and version but a checksum that does not match the
     payload — the guard that keeps Marshal away from hostile bytes. *)
  Out_channel.with_open_text (Store.path st "mix") (fun oc ->
      Out_channel.output_string oc
        (Printf.sprintf "vdram-store 1\n%s\n%s\nnot the payload"
           (Store.version st)
           (Digest.to_hex (Digest.string "something else"))));
  let engine = Engine.create ~jobs:1 ~store:st () in
  Helpers.check_true "corrupt snapshots are discarded"
    (Engine.preloaded engine = (0, 0));
  Alcotest.(check int) "both corruptions are counted, not hidden" 2
    (Engine.discarded engine);
  Helpers.check_true "engine recomputes past the corruption"
    (Engine.eval engine cfg p = reference);
  (* A version-skewed reader must treat good snapshots as misses. *)
  Engine.flush_store engine;
  let skewed = Store.open_ ~dir:store_dir ~version:"some-other-version" () in
  Helpers.check_true "version skew discards the snapshot"
    (Store.load skewed ~name:"mix" = None);
  Store.clear st

(* ----- store retries, quarantine, eviction ---------------------------- *)

let store_retry_quarantine () =
  let module Store = Vdram_engine.Store in
  let st = Engine.store_open ~dir:store_dir () in
  Store.clear st;
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let seed = Engine.create ~jobs:1 ~store:st () in
  ignore (Engine.eval seed cfg p);
  Engine.flush_store seed;
  Out_channel.with_open_text (Store.path st "mix") (fun oc ->
      Out_channel.output_string oc "not a vdram store at all");
  let h = Engine.store_open ~dir:store_dir () in
  (match Store.read ~retries:1 ~backoff:0.001 h ~name:"mix" with
  | Store.Corrupt reason ->
    Helpers.check_true "the corruption reason is reported"
      (String.length reason > 0)
  | Store.Hit _ | Store.Missing ->
    Alcotest.fail "garbage snapshot must classify as Corrupt")
  |> ignore;
  let s = Store.stats h in
  Alcotest.(check int) "one backed-off retry before giving up" 1
    s.Store.retries;
  Alcotest.(check int) "one snapshot discarded" 1 s.Store.discarded;
  Alcotest.(check int) "the bad file was quarantined" 1 s.Store.quarantined;
  Helpers.check_true "original file moved out of the cache"
    (not (Sys.file_exists (Store.path h "mix")));
  let qdir = Store.quarantine_dir h in
  Helpers.check_true "quarantine keeps the file and a .reason sidecar"
    (Sys.file_exists qdir
    && Array.exists
         (fun f -> Filename.check_suffix f ".reason")
         (Sys.readdir qdir)
    && Array.exists
         (fun f -> Filename.check_suffix f ".cache")
         (Sys.readdir qdir));
  Store.clear h

let store_eviction_roundtrip () =
  let module Store = Vdram_engine.Store in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "vdram-test-evict"
  in
  let uncapped = Store.open_ ~dir ~version:"evict-test" () in
  Store.clear uncapped;
  let payload tag = Array.init 64 (fun i -> (tag, i)) in
  List.iter
    (fun name -> Store.save uncapped ~name (payload name))
    [ "old"; "mid"; "new" ];
  (* Pin the mtimes so "old" really is the oldest snapshot. *)
  List.iteri
    (fun k name ->
      let t = Unix.time () -. float_of_int ((3 - k) * 3600) in
      Unix.utimes (Store.path uncapped name) t t)
    [ "old"; "mid"; "new" ];
  let size name = (Unix.stat (Store.path uncapped name)).Unix.st_size in
  let cap = size "mid" + size "new" + 1 in
  let capped = Store.open_ ~dir ~max_bytes:cap ~version:"evict-test" () in
  Alcotest.(check (option int)) "cap remembered" (Some cap)
    (Store.max_bytes capped);
  let removed = Store.evict capped in
  Alcotest.(check int) "exactly the oldest snapshot evicted" 1 removed;
  Helpers.check_true "oldest snapshot gone"
    (Store.load capped ~name:"old" = None);
  Helpers.check_true "newest snapshot survives the round-trip"
    (Store.load capped ~name:"new" = Some (payload "new"));
  Helpers.check_true "middle snapshot untouched"
    (Store.load capped ~name:"mid" = Some (payload "mid"));
  Alcotest.(check int) "eviction counted" 1
    (Store.stats capped).Store.evicted;
  Store.clear capped

let store_quarantine_cap () =
  let module Store = Vdram_engine.Store in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "vdram-test-qcap"
  in
  let st = Store.open_ ~dir ~quarantine_max_bytes:2200 ~version:"qcap" () in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Store.clear st;
  let corrupt name =
    Out_channel.with_open_text (Store.path st name) (fun oc ->
        Out_channel.output_string oc (String.make 2048 'x'));
    match Store.read ~retries:0 ~backoff:0.001 st ~name with
    | Store.Corrupt _ -> ()
    | Store.Hit _ | Store.Missing ->
      Alcotest.fail "garbage snapshot must classify as Corrupt"
  in
  corrupt "alpha";
  corrupt "beta";
  let s = Store.stats st in
  Alcotest.(check int) "both files quarantined" 2 s.Store.quarantined;
  Alcotest.(check int) "quarantined bytes accumulated" (2 * 2048)
    s.Store.quarantined_bytes;
  (* The cap holds one ~2 KiB specimen: quarantining beta must have
     evicted alpha (oldest first, never the file just moved). *)
  Alcotest.(check int) "cap evicted exactly the older specimen" 1
    s.Store.evicted;
  let qdir = Store.quarantine_dir st in
  let specimens =
    Array.to_list (Sys.readdir qdir)
    |> List.filter (fun f -> Filename.check_suffix f ".cache")
  in
  Alcotest.(check (list string)) "the fresh specimen survives"
    [ "beta.cache" ] specimens;
  Store.clear st

let store_flush_incremental () =
  let module Store = Vdram_engine.Store in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "vdram-test-dirty"
  in
  let st = Engine.store_open ~dir () in
  Store.clear st;
  let cfg = base () in
  let e = Engine.create ~jobs:1 ~store:st () in
  Helpers.check_true "cold engine has nothing to flush"
    (not (Engine.store_dirty e));
  ignore (Engine.eval e cfg (Pattern.idd0 cfg.Config.spec) : Report.t);
  Helpers.check_true "a stage miss marks the store dirty"
    (Engine.store_dirty e);
  Engine.flush_store e;
  Helpers.check_true "flushing clears the dirty flag"
    (not (Engine.store_dirty e));
  ignore (Engine.eval e cfg (Pattern.idd0 cfg.Config.spec) : Report.t);
  Helpers.check_true "pure cache hits do not re-dirty"
    (not (Engine.store_dirty e));
  (* A clean flush must rewrite nothing — remove the snapshot and
     watch a no-op flush leave it missing. *)
  Sys.remove (Store.path st "mix");
  Engine.flush_store e;
  Helpers.check_true "clean flush writes no snapshot"
    (not (Sys.file_exists (Store.path st "mix")));
  ignore (Engine.eval e cfg (Pattern.idd4r cfg.Config.spec) : Report.t);
  Helpers.check_true "a fresh miss re-dirties" (Engine.store_dirty e);
  Engine.flush_store e;
  Helpers.check_true "dirty flush rewrites the snapshot"
    (Sys.file_exists (Store.path st "mix"));
  Store.clear st

(* ----- fault plans ---------------------------------------------------- *)

module Supervise = Vdram_engine.Supervise
module Faults = Vdram_engine.Faults

(* A supervisor that deliberately ignores VDRAM_FAULTS, so the suite
   behaves the same even under a chaos environment. *)
let quiet ?policy () = Supervise.create ?policy ~faults:Faults.none ()

let plan_exn s =
  match Faults.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "test plan %S did not parse: %s" s e

let faults_grammar () =
  let p = plan_exn "seed=7,rate=0.02,raise=mix" in
  Alcotest.(check int) "seed" 7 p.Faults.seed;
  Helpers.close "rate" 0.02 p.Faults.rate;
  Helpers.check_true "raise=mix parses"
    (p.Faults.action = Some (Faults.Raise Faults.Mix));
  Helpers.check_true "plan round-trips through to_string"
    (Faults.parse (Faults.to_string p) = Ok p);
  let stall = plan_exn "stall=0.25; seed=3" in
  Helpers.check_true "stall clause parses to a mix stall"
    (stall.Faults.action = Some (Faults.Stall (Faults.Mix, 0.25)));
  Helpers.check_true "corrupt=store flag"
    (plan_exn "corrupt=store").Faults.corrupt_store;
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error msg ->
        Helpers.check_true
          (Printf.sprintf "%S yields a diagnostic" bad)
          (String.length msg > 0))
    [ "seed=oops"; "rate=2"; "rate=-0.5"; "raise=teleport"; "stall=-1";
      "corrupt=disk"; "flavour=mango"; "seed" ]

let faulted_is_order_free () =
  let plan = plan_exn "seed=11,rate=0.1,raise=mix" in
  let direct =
    List.init 200 (fun i -> Faults.faulted plan ~batch:0 ~index:i)
  in
  let shuffled =
    List.rev_map
      (fun i -> Faults.faulted plan ~batch:0 ~index:i)
      (List.rev (List.init 200 Fun.id))
  in
  Helpers.check_true "decision is a pure hash of (seed, batch, index)"
    (direct = shuffled);
  Helpers.check_true "roughly rate fraction faulted"
    (let k = List.length (List.filter Fun.id direct) in
     k > 5 && k < 50)

(* ----- supervised runtime --------------------------------------------- *)

let supervised_identity () =
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let cfgs =
    List.init 12 (fun i -> scale_bitline cfg (0.8 +. (0.04 *. float_of_int i)))
  in
  List.iter
    (fun jobs ->
      let engine = Engine.create ~jobs () in
      let plain =
        Engine.map_jobs engine (fun c -> Engine.eval engine c p) cfgs
      in
      let sup = quiet () in
      let outcomes =
        Supervise.map sup engine (fun c -> Engine.eval engine c p) cfgs
      in
      Helpers.check_true
        (Printf.sprintf "jobs=%d: supervised payloads bit-identical" jobs)
        (outcomes = List.map (fun r -> Supervise.Done r) plain);
      Alcotest.(check int) "healthy run records no failures" 0
        (Supervise.counters sup).Supervise.failures)
    [ 1; 4 ]

let supervised_failure_order =
  QCheck.Test.make
    ~name:"supervise: multi-failure records deterministic, input order"
    ~count:15
    QCheck.(list_of_size (Gen.int_range 0 10) (int_range 0 39))
    (fun bad ->
      let n = 40 in
      let bad = List.sort_uniq compare bad in
      let xs = List.init n Fun.id in
      let f i = if List.mem i bad then failwith (string_of_int i) else i in
      let expected =
        List.map
          (fun i ->
            (0, i, "driver", Printexc.to_string (Failure (string_of_int i))))
          bad
      in
      List.for_all
        (fun jobs ->
          let sup = quiet () in
          let engine = Engine.create ~jobs () in
          let outcomes = Supervise.map sup engine f xs in
          let records =
            List.map
              (fun fl ->
                Supervise.
                  (fl.batch, fl.index, fl.stage, fl.message))
              (Supervise.failures sup)
          in
          records = expected
          && List.filter_map
               (function Supervise.Done v -> Some v | _ -> None)
               outcomes
             = List.filter (fun i -> not (List.mem i bad)) xs)
        [ 1; 2; 4 ])

let supervised_strict_reraise () =
  let sup = quiet ~policy:Supervise.strict_policy () in
  let engine = Engine.create ~jobs:4 () in
  (match
     Supervise.map sup engine
       (fun i -> if i >= 3 then failwith (string_of_int i) else i)
       (List.init 16 Fun.id)
   with
  | _ -> Alcotest.fail "strict supervisor must re-raise"
  | exception Failure msg ->
    Alcotest.(check string) "re-raises first failure in input order" "3" msg);
  Alcotest.(check int) "failures still recorded before the re-raise" 13
    (Supervise.counters sup).Supervise.failures

let supervised_abort_budget () =
  let sup =
    quiet
      ~policy:{ Supervise.default_policy with max_failures = Some 2 }
      ()
  in
  let engine = Engine.create ~jobs:1 () in
  (match
     Supervise.map sup engine
       (fun _ -> failwith "boom")
       (List.init 20 Fun.id)
   with
  | _ -> Alcotest.fail "expected Aborted once the budget is spent"
  | exception Supervise.Aborted { failures; tolerated } ->
    Alcotest.(check int) "tolerated budget echoed" 2 tolerated;
    Alcotest.(check int) "stopped right past the budget" 3 failures);
  Helpers.check_true "supervisor marked aborted" (Supervise.aborted sup);
  Alcotest.(check int) "only the observed failures recorded" 3
    (Supervise.counters sup).Supervise.failures

let supervised_validate_stage () =
  let sup = quiet () in
  let engine = Engine.create ~jobs:2 () in
  let check v = if Float.is_nan v then Some "non-finite sample" else None in
  let f i = if i = 5 then Float.nan else float_of_int i in
  let outcomes = Supervise.map sup engine ~check f (List.init 8 Fun.id) in
  (match Supervise.failures sup with
  | [ fl ] ->
    Alcotest.(check int) "failed index" 5 fl.Supervise.index;
    Alcotest.(check string) "classified as validate" "validate"
      fl.Supervise.stage;
    Alcotest.(check string) "rejection reason kept" "non-finite sample"
      fl.Supervise.message;
    Helpers.check_true "not flagged injected" (not fl.Supervise.injected)
  | fs -> Alcotest.failf "expected one validate failure, got %d"
            (List.length fs));
  Alcotest.(check int) "the other seven samples survive" 7
    (List.length
       (List.filter
          (function Supervise.Done _ -> true | _ -> false)
          outcomes))

let supervised_by_stage () =
  let sup = quiet () in
  let engine = Engine.create ~jobs:1 () in
  let check v = if v = 2 then Some "two is rejected" else None in
  let f i = if i = 1 then failwith "driver boom" else i in
  ignore
    (Supervise.map sup engine ~check f [ 0; 1; 2; 3 ]
      : int Supervise.outcome list);
  let c = Supervise.counters sup in
  Alcotest.(check int) "two failures" 2 c.Supervise.failures;
  Alcotest.(check (list (pair string int)))
    "per-class counters, sorted, summing to failures"
    [ ("driver", 1); ("validate", 1) ]
    c.Supervise.by_stage;
  (* classify is the single source of those class names. *)
  let stage, injected, _ = Supervise.classify (Failure "x") in
  Alcotest.(check string) "bare exception classifies as driver" "driver" stage;
  Helpers.check_true "not injected" (not injected);
  let stage, injected, _ =
    Supervise.classify (Vdram_engine.Faults.Injected ("mix", 0, 3))
  in
  Alcotest.(check string) "injected fault keeps its stage" "mix" stage;
  Helpers.check_true "flagged injected" injected

let injected_exactness () =
  (* The acceptance contract: the failure report must name exactly the
     items the pure hash says are faulted, at any job count. *)
  let plan = plan_exn "seed=11,rate=0.1,raise=mix" in
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let n = 60 in
  let cfgs =
    List.init n (fun i -> scale_bitline cfg (0.8 +. (0.005 *. float_of_int i)))
  in
  let predicted =
    List.filter
      (fun i -> Faults.faulted plan ~batch:0 ~index:i)
      (List.init n Fun.id)
  in
  Helpers.check_true "the plan faults at least one item" (predicted <> []);
  List.iter
    (fun jobs ->
      let sup = Supervise.create ~faults:plan () in
      let engine = Engine.create ~jobs () in
      ignore
        (Supervise.map sup engine (fun c -> Engine.eval engine c p) cfgs);
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d: failed set = predicted set" jobs)
        predicted
        (List.map (fun fl -> fl.Supervise.index) (Supervise.failures sup));
      List.iter
        (fun (fl : Supervise.failure) ->
          Helpers.check_true "classified injected at the mix stage"
            (fl.injected && fl.stage = "mix"))
        (Supervise.failures sup))
    [ 1; 4 ]

let stall_hits_deadline () =
  let plan = plan_exn "rate=1,stall=0.05" in
  let sup =
    Supervise.create
      ~policy:{ Supervise.default_policy with deadline = Some 0.01 }
      ~faults:plan ()
  in
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let engine = Engine.create ~jobs:1 () in
  let outcomes =
    Supervise.map sup engine
      (fun c -> Engine.eval engine c p)
      [ cfg; scale_bitline cfg 1.1 ]
  in
  Helpers.check_true "every stalled item misses its deadline"
    (List.for_all
       (function Supervise.Failed _ -> true | _ -> false)
       outcomes);
  List.iter
    (fun fl ->
      Alcotest.(check string) "classified as deadline" "deadline"
        fl.Supervise.stage;
      Helpers.check_true "elapsed time covers the stall"
        (fl.Supervise.elapsed_ns >= 40_000_000))
    (Supervise.failures sup);
  Alcotest.(check int) "deadline counter" 2
    (Supervise.counters sup).Supervise.deadline

let fail_log_schema () =
  let plan = plan_exn "seed=11,rate=0.1,raise=mix" in
  let sup = Supervise.create ~faults:plan () in
  let engine = Engine.create ~jobs:2 () in
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let cfgs =
    List.init 40 (fun i -> scale_bitline cfg (0.9 +. (0.004 *. float_of_int i)))
  in
  ignore (Supervise.map sup engine (fun c -> Engine.eval engine c p) cfgs);
  let json = Supervise.report_to_json ~command:"test" sup in
  let has sub =
    let n = String.length json and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub json i m = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Helpers.check_true (Printf.sprintf "fail log carries %s" needle)
        (has needle))
    [ "\"version\": 1"; "\"command\": \"test\""; "\"keep_going\": true";
      "\"faults\": \"seed=11,rate=0.1,raise=mix\""; "\"aborted\": false";
      "\"stage\": \"mix\""; "\"injected\": true"; "\"fingerprint\"";
      "\"elapsed_ms\"" ];
  Helpers.check_true "no spurious non-injected failures"
    (not (has "\"injected\": false"));
  let clean = quiet () in
  ignore
    (Supervise.map clean engine (fun c -> Engine.eval engine c p) cfgs);
  let empty = Supervise.report_to_json ~command:"test" clean in
  Helpers.check_true "clean run reports an empty failure array"
    (let n = String.length empty in
     let sub = "\"failures\": []" in
     let m = String.length sub in
     let rec go i =
       i + m <= n && (String.sub empty i m = sub || go (i + 1))
     in
     go 0)

(* ----- drivers: serial vs parallel ----------------------------------- *)

let sensitivity_serial_parallel () =
  let cfg = base () in
  let serial = Sensitivity.run ~engine:(Engine.serial ()) cfg in
  let parallel = Sensitivity.run ~engine:(Engine.create ~jobs:4 ()) cfg in
  Helpers.check_true "sensitivity identical under --jobs 4"
    (serial = parallel)

let corners_serial_parallel () =
  let cfg = base () in
  let run engine =
    Corners.run ~engine ~samples:60 ~seed:7
      ~pattern:(Pattern.idd7_mixed cfg.Config.spec) cfg
  in
  Helpers.check_true "corners identical under --jobs 4 (same seed)"
    (run (Engine.serial ()) = run (Engine.create ~jobs:4 ()))

let corners_supervised_clean () =
  let cfg = base () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let plain =
    Corners.run ~engine:(Engine.serial ()) ~samples:40 ~seed:5 ~pattern cfg
  in
  let sup = quiet () in
  let supervised =
    Corners.run
      ~engine:(Engine.create ~jobs:4 ())
      ~supervisor:sup ~samples:40 ~seed:5 ~pattern cfg
  in
  Helpers.check_true "clean supervised corners identical to unsupervised"
    (plain = supervised);
  Alcotest.(check int) "no draws lost" 0 supervised.Corners.failed

let corners_survives_injection () =
  let plan = plan_exn "seed=7,rate=0.05,raise=mix" in
  let cfg = base () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let sup = Supervise.create ~faults:plan () in
  let dist =
    Corners.run
      ~engine:(Engine.create ~jobs:2 ())
      ~supervisor:sup ~samples:60 ~seed:7 ~pattern cfg
  in
  let failed = (Supervise.counters sup).Supervise.failures in
  Helpers.check_true "the plan actually faulted some draws" (failed > 0);
  Alcotest.(check int) "distribution counts the lost draws" failed
    dist.Corners.failed;
  Alcotest.(check int) "survivors + lost = requested samples" 60
    (dist.Corners.samples + dist.Corners.failed);
  Helpers.check_true "statistics stay finite over the survivors"
    (Float.is_finite dist.Corners.mean && Float.is_finite dist.Corners.std)

let suite =
  [
    Alcotest.test_case "pool preserves input order" `Quick pool_ordering;
    Alcotest.test_case "pool re-raises first error in input order" `Quick
      pool_exception_order;
    Alcotest.test_case "chunked scheduling matches List.map" `Quick
      pool_chunked_determinism;
    Alcotest.test_case "chunked exception replay order" `Quick
      pool_chunked_exception_order;
    Alcotest.test_case "adaptive chunk size" `Quick pool_default_chunk;
    Alcotest.test_case "VDRAM_JOBS clamping" `Quick vdram_jobs_env;
    Alcotest.test_case "eval matches Model.pattern_power" `Quick
      eval_matches_model;
    Alcotest.test_case "renamed twin hits the mix cache" `Quick
      renamed_twin_hits_cache;
    Alcotest.test_case "stage cache counters" `Quick cache_counters;
    Alcotest.test_case "tech perturbation keeps geometry cached" `Quick
      upstream_invalidation;
    Helpers.qcheck eval_determinism;
    Helpers.qcheck map_jobs_determinism;
    Helpers.qcheck fingerprint_faithful;
    Helpers.qcheck delta_matches_full;
    Alcotest.test_case "delta: group sub-keys move only when dirtied" `Quick
      delta_group_keys;
    Alcotest.test_case "delta: engine path identical, counted, switchable"
      `Quick engine_delta_path;
    Alcotest.test_case "delta: sensitivity identical with delta off" `Quick
      sensitivity_delta_identity;
    Alcotest.test_case "disk cache round-trip" `Quick store_roundtrip;
    Alcotest.test_case "disk cache corruption recovery" `Quick
      store_corruption_recovery;
    Alcotest.test_case "sensitivity: serial = parallel" `Quick
      sensitivity_serial_parallel;
    Alcotest.test_case "corners: serial = parallel" `Quick
      corners_serial_parallel;
    Alcotest.test_case "store retry then quarantine" `Quick
      store_retry_quarantine;
    Alcotest.test_case "store size cap evicts oldest first" `Quick
      store_eviction_roundtrip;
    Alcotest.test_case "quarantine cap keeps freshest specimens" `Quick
      store_quarantine_cap;
    Alcotest.test_case "flush is incremental and dirty-tracked" `Quick
      store_flush_incremental;
    Alcotest.test_case "fault plan grammar" `Quick faults_grammar;
    Alcotest.test_case "faulted set is order-free" `Quick
      faulted_is_order_free;
    Alcotest.test_case "supervised = unsupervised on healthy runs" `Quick
      supervised_identity;
    Helpers.qcheck supervised_failure_order;
    Alcotest.test_case "strict policy re-raises in input order" `Quick
      supervised_strict_reraise;
    Alcotest.test_case "failure budget aborts the batch" `Quick
      supervised_abort_budget;
    Alcotest.test_case "check rejection is a validate failure" `Quick
      supervised_validate_stage;
    Alcotest.test_case "failure classes roll up by stage" `Quick
      supervised_by_stage;
    Alcotest.test_case "injected failures match the hash prediction" `Quick
      injected_exactness;
    Alcotest.test_case "stalled items miss their deadline" `Quick
      stall_hits_deadline;
    Alcotest.test_case "fail-log schema v1" `Quick fail_log_schema;
    Alcotest.test_case "corners: supervised clean run identical" `Quick
      corners_supervised_clean;
    Alcotest.test_case "corners: partial results under injection" `Quick
      corners_survives_injection;
  ]
