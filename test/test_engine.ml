(* The staged evaluation engine: the parallel pool must be
   bit-identical to serial evaluation, and the stage caches must hit
   and invalidate along the config -> geometry -> extraction -> mix
   pipeline. *)

module Engine = Vdram_engine.Engine
module Pool = Vdram_engine.Pool
module Model = Vdram_core.Model
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Params = Vdram_tech.Params
module Sensitivity = Vdram_analysis.Sensitivity
module Corners = Vdram_analysis.Corners

let base () = Lazy.force Helpers.ddr3_2g

let scale_bitline cfg factor =
  let t = cfg.Config.tech in
  Config.with_tech cfg { t with Params.c_bitline = t.Params.c_bitline *. factor }

(* ----- pool ---------------------------------------------------------- *)

let pool_ordering () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expected
        (Pool.map ~jobs (fun x -> (x * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let pool_exception_order () =
  (* Several items fail; the error surfaced must be the first failing
     item in input order, regardless of which domain hits it first. *)
  match
    Pool.map ~jobs:4
      (fun i -> if i >= 3 then failwith (string_of_int i) else i)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "first failure in input order" "3" msg

let pool_chunked_determinism () =
  (* Any chunk geometry — single-item steals, odd sizes, one chunk per
     worker, one chunk for everything — must reproduce List.map. *)
  let xs = List.init 257 Fun.id in
  let expected = List.map (fun x -> (x * 3) - 1) xs in
  List.iter
    (fun chunk ->
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk=%d jobs=%d matches List.map" chunk jobs)
            expected
            (Pool.map ~chunk ~jobs (fun x -> (x * 3) - 1) xs))
        [ 2; 4 ])
    [ 1; 3; 64; 1000 ]

let pool_chunked_exception_order () =
  List.iter
    (fun chunk ->
      match
        Pool.map ~chunk ~jobs:4
          (fun i -> if i mod 5 = 3 then failwith (string_of_int i) else i)
          (List.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "chunk=%d: first failure in input order" chunk)
          "3" msg)
    [ 1; 3; 16 ]

let pool_default_chunk () =
  Helpers.check_true "empty input still yields a legal chunk"
    (Pool.default_chunk ~jobs:8 0 >= 1);
  Helpers.check_true "huge inputs are capped"
    (Pool.default_chunk ~jobs:1 1_000_000 <= 1024);
  Alcotest.(check int) "about eight chunks per worker" 4
    (Pool.default_chunk ~jobs:4 128)

let vdram_jobs_env () =
  let saved = Sys.getenv_opt "VDRAM_JOBS" in
  let set v = Unix.putenv "VDRAM_JOBS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value ~default:"" saved))
    (fun () ->
      set "3";
      Alcotest.(check int) "VDRAM_JOBS=3 honoured" 3 (Pool.default_jobs ());
      set "0";
      Alcotest.(check int) "zero clamped to 1" 1 (Pool.default_jobs ());
      set "-2";
      Alcotest.(check int) "negative clamped to 1" 1 (Pool.default_jobs ());
      set "not-a-number";
      Alcotest.(check int) "garbage falls back to the machine default"
        (Domain.recommended_domain_count ())
        (Pool.default_jobs ()))

(* ----- engine vs model ----------------------------------------------- *)

let eval_matches_model () =
  let cfg = base () in
  let engine = Engine.serial () in
  List.iter
    (fun (label, p) ->
      Helpers.check_true
        (label ^ ": Engine.eval structurally equals Model.pattern_power")
        (Engine.eval engine cfg p = Model.pattern_power cfg p))
    [ ("idd0", Pattern.idd0 cfg.Config.spec);
      ("idd4r", Pattern.idd4r cfg.Config.spec);
      ("idd7_mixed", Pattern.idd7_mixed cfg.Config.spec) ]

let renamed_twin_hits_cache () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  let twin = { cfg with Config.name = "renamed twin" } in
  let r = Engine.eval engine twin p in
  let s = Engine.stats engine in
  Alcotest.(check int) "mix stage hit for renamed twin" 1
    s.Engine.mix_stats.hits;
  Alcotest.(check string) "report labelled with the caller's name"
    "renamed twin" r.Report.config_name

(* ----- cache hit and invalidation accounting ------------------------- *)

let cache_counters () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  let s = Engine.stats engine in
  Alcotest.(check int) "cold run: one geometry miss" 1
    s.Engine.geometry_stats.misses;
  Alcotest.(check int) "cold run: one extraction miss" 1
    s.Engine.extraction_stats.misses;
  Alcotest.(check int) "cold run: one mix miss" 1 s.Engine.mix_stats.misses;
  ignore (Engine.eval engine cfg p);
  let s = Engine.stats engine in
  Alcotest.(check int) "warm run: mix hit" 1 s.Engine.mix_stats.hits;
  Alcotest.(check int) "warm run: no extra mix miss" 1
    s.Engine.mix_stats.misses;
  (* Same configuration, different pattern: geometry and extraction
     replay from cache, only the mix recomputes. *)
  ignore (Engine.eval engine cfg (Pattern.idd4r cfg.Config.spec));
  let s = Engine.stats engine in
  Alcotest.(check int) "new pattern: extraction hit" 1
    s.Engine.extraction_stats.hits;
  Alcotest.(check int) "new pattern: mix miss" 2 s.Engine.mix_stats.misses;
  Engine.reset_stats engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "reset clears counters" 0 s.Engine.mix_stats.misses

let upstream_invalidation () =
  let cfg = base () in
  let engine = Engine.serial () in
  let p = Pattern.idd0 cfg.Config.spec in
  ignore (Engine.eval engine cfg p);
  Engine.reset_stats engine;
  (* A bitline-capacitance perturbation leaves the floorplan alone:
     geometry must replay from cache while extraction and mix rerun. *)
  ignore (Engine.eval engine (scale_bitline cfg 1.1) p);
  let s = Engine.stats engine in
  Alcotest.(check int) "perturbed tech: geometry hit" 1
    s.Engine.geometry_stats.hits;
  Alcotest.(check int) "perturbed tech: geometry not recomputed" 0
    s.Engine.geometry_stats.misses;
  Alcotest.(check int) "perturbed tech: extraction miss" 1
    s.Engine.extraction_stats.misses;
  Alcotest.(check int) "perturbed tech: mix miss" 1 s.Engine.mix_stats.misses

(* ----- determinism properties ---------------------------------------- *)

(* One engine shared across iterations, so later iterations exercise
   genuine cache hits against cold references. *)
let shared_engine = lazy (Engine.create ~jobs:1 ())

let eval_determinism =
  QCheck.Test.make
    ~name:"eval: warm cache, cold engine and direct model bit-identical"
    ~count:25
    QCheck.(float_range 0.7 1.3)
    (fun factor ->
      let cfg = scale_bitline (base ()) factor in
      let p = Pattern.idd0 cfg.Config.spec in
      let reference = Model.pattern_power cfg p in
      let warm = Lazy.force shared_engine in
      let first = Engine.eval warm cfg p in
      let cached = Engine.eval warm cfg p in
      let cold = Engine.eval (Engine.serial ()) cfg p in
      first = reference && cached = reference && cold = reference)

let map_jobs_determinism =
  QCheck.Test.make ~name:"map_jobs: parallel bit-identical to serial"
    ~count:10
    QCheck.(pair (int_range 2 6) (list_of_size (Gen.int_range 1 12)
                                    (float_range 0.8 1.2)))
    (fun (jobs, factors) ->
      let cfg = base () in
      let p = Pattern.idd0 cfg.Config.spec in
      let cfgs = List.map (scale_bitline cfg) factors in
      let parallel = Engine.create ~jobs () in
      Engine.map_jobs parallel (fun c -> Engine.eval parallel c p) cfgs
      = List.map (fun c -> Model.pattern_power c p) cfgs)

(* ----- fingerprints --------------------------------------------------- *)

let fingerprint_faithful =
  QCheck.Test.make
    ~name:"fingerprint: equal iff physics projections equal, name-blind"
    ~count:40
    QCheck.(pair (float_range 0.7 1.3) (float_range 0.7 1.3))
    (fun (f1, f2) ->
      let module Fp = Vdram_engine.Fingerprint in
      let c1 = scale_bitline (base ()) f1 in
      let c2 = scale_bitline (base ()) f2 in
      let fp c = Fp.of_value (Model.physics_projection c) in
      let renamed = { c1 with Config.name = "fingerprint twin" } in
      Fp.equal (fp c1) (fp renamed)
      && Fp.equal (fp c1) (fp c2)
         = (Model.physics_projection c1 = Model.physics_projection c2))

(* ----- persistent store ----------------------------------------------- *)

let store_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "vdram-test-store"

let store_roundtrip () =
  let module Store = Vdram_engine.Store in
  let store () = Engine.store_open ~dir:store_dir () in
  Store.clear (store ());
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let cold = Engine.create ~jobs:1 ~store:(store ()) () in
  let r_cold = Engine.eval cold cfg p in
  Engine.flush_store cold;
  (* A fresh engine on the same directory replays both stages from
     disk: the preload counters see the snapshot, the first eval is a
     pure mix hit, and the replayed report is bit-identical. *)
  let warm = Engine.create ~jobs:1 ~store:(store ()) () in
  Helpers.check_true "snapshots preloaded"
    (Engine.preloaded warm = (1, 1));
  let r_warm = Engine.eval warm cfg p in
  let s = Engine.stats warm in
  Alcotest.(check int) "warm eval is a mix hit" 1 s.Engine.mix_stats.hits;
  Alcotest.(check int) "warm eval misses nothing" 0
    s.Engine.mix_stats.misses;
  Helpers.check_true "disk replay bit-identical" (r_warm = r_cold);
  Store.clear (store ())

let store_corruption_recovery () =
  let module Store = Vdram_engine.Store in
  let st = Engine.store_open ~dir:store_dir () in
  Store.clear st;
  let cfg = base () in
  let p = Pattern.idd0 cfg.Config.spec in
  let seed = Engine.create ~jobs:1 ~store:st () in
  let reference = Engine.eval seed cfg p in
  Engine.flush_store seed;
  (* Total garbage: wrong magic. *)
  Out_channel.with_open_text (Store.path st "extraction") (fun oc ->
      Out_channel.output_string oc "not a vdram store at all");
  (* Right magic and version but a checksum that does not match the
     payload — the guard that keeps Marshal away from hostile bytes. *)
  Out_channel.with_open_text (Store.path st "mix") (fun oc ->
      Out_channel.output_string oc
        (Printf.sprintf "vdram-store 1\n%s\n%s\nnot the payload"
           (Store.version st)
           (Digest.to_hex (Digest.string "something else"))));
  let engine = Engine.create ~jobs:1 ~store:st () in
  Helpers.check_true "corrupt snapshots are silently discarded"
    (Engine.preloaded engine = (0, 0));
  Helpers.check_true "engine recomputes past the corruption"
    (Engine.eval engine cfg p = reference);
  (* A version-skewed reader must treat good snapshots as misses. *)
  Engine.flush_store engine;
  let skewed = Store.open_ ~dir:store_dir ~version:"some-other-version" () in
  Helpers.check_true "version skew discards the snapshot"
    (Store.load skewed ~name:"mix" = None);
  Store.clear st

(* ----- drivers: serial vs parallel ----------------------------------- *)

let sensitivity_serial_parallel () =
  let cfg = base () in
  let serial = Sensitivity.run ~engine:(Engine.serial ()) cfg in
  let parallel = Sensitivity.run ~engine:(Engine.create ~jobs:4 ()) cfg in
  Helpers.check_true "sensitivity identical under --jobs 4"
    (serial = parallel)

let corners_serial_parallel () =
  let cfg = base () in
  let run engine =
    Corners.run ~engine ~samples:60 ~seed:7
      ~pattern:(Pattern.idd7_mixed cfg.Config.spec) cfg
  in
  Helpers.check_true "corners identical under --jobs 4 (same seed)"
    (run (Engine.serial ()) = run (Engine.create ~jobs:4 ()))

let suite =
  [
    Alcotest.test_case "pool preserves input order" `Quick pool_ordering;
    Alcotest.test_case "pool re-raises first error in input order" `Quick
      pool_exception_order;
    Alcotest.test_case "chunked scheduling matches List.map" `Quick
      pool_chunked_determinism;
    Alcotest.test_case "chunked exception replay order" `Quick
      pool_chunked_exception_order;
    Alcotest.test_case "adaptive chunk size" `Quick pool_default_chunk;
    Alcotest.test_case "VDRAM_JOBS clamping" `Quick vdram_jobs_env;
    Alcotest.test_case "eval matches Model.pattern_power" `Quick
      eval_matches_model;
    Alcotest.test_case "renamed twin hits the mix cache" `Quick
      renamed_twin_hits_cache;
    Alcotest.test_case "stage cache counters" `Quick cache_counters;
    Alcotest.test_case "tech perturbation keeps geometry cached" `Quick
      upstream_invalidation;
    Helpers.qcheck eval_determinism;
    Helpers.qcheck map_jobs_determinism;
    Helpers.qcheck fingerprint_faithful;
    Alcotest.test_case "disk cache round-trip" `Quick store_roundtrip;
    Alcotest.test_case "disk cache corruption recovery" `Quick
      store_corruption_recovery;
    Alcotest.test_case "sensitivity: serial = parallel" `Quick
      sensitivity_serial_parallel;
    Alcotest.test_case "corners: serial = parallel" `Quick
      corners_serial_parallel;
  ]
