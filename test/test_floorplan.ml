(* Floorplan: array geometry and block grid. *)

open Vdram_floorplan

let geometry_1g_ddr3 () =
  Array_geometry.derive ~style:Array_geometry.Open
    ~bank_bits:(2.0 ** 27.0)
    ~page_bits:16384 ~bits_per_bitline:512 ~bits_per_lwl:512
    ~wl_pitch:195e-9 ~bl_pitch:130e-9 ~sa_stripe:9e-6 ~lwd_stripe:3.4e-6 ()

let test_derive () =
  let g = geometry_1g_ddr3 () in
  Alcotest.(check int) "32 sub-arrays along WL" 32
    g.Array_geometry.subarrays_along_wl;
  Alcotest.(check int) "16 sub-arrays along BL" 16
    g.Array_geometry.subarrays_along_bl;
  Helpers.close "cells per bank" (2.0 ** 27.0) (Array_geometry.cells g);
  Helpers.close "local wordline length" (512.0 *. 130e-9)
    (Array_geometry.lwl_length g);
  Helpers.close "bitline length" (512.0 *. 195e-9)
    (Array_geometry.bitline_length g)

let test_derive_errors () =
  let bad_page () =
    ignore
      (Array_geometry.derive ~bank_bits:(2.0 ** 27.0) ~page_bits:1000
         ~bits_per_bitline:512 ~bits_per_lwl:512 ~wl_pitch:195e-9
         ~bl_pitch:130e-9 ~sa_stripe:9e-6 ~lwd_stripe:3.4e-6 ())
  in
  Alcotest.check_raises "page not multiple of LWL"
    (Invalid_argument
       "Array_geometry.derive: page not a multiple of local WL")
    bad_page

let test_extents () =
  let g = geometry_1g_ddr3 () in
  let bw = Array_geometry.block_width g in
  Helpers.close "block width"
    ((32.0 *. 512.0 *. 130e-9) +. (33.0 *. 3.4e-6))
    bw;
  Helpers.close "master wordline spans block" bw
    (Array_geometry.master_wordline_length g);
  Helpers.close "MADL spans block height"
    (Array_geometry.block_height g)
    (Array_geometry.madl_length g);
  Helpers.close "CSL over one block"
    (Array_geometry.block_height g)
    (Array_geometry.csl_length g)

let test_area_shares () =
  let g = geometry_1g_ddr3 () in
  let sa = Array_geometry.sa_area_share g
  and lwd = Array_geometry.lwd_area_share g in
  (* Paper: SA stripes 8-15 % of die, LWD stripes 5-10 %.  The block
     shares should land in loosely the same windows. *)
  Helpers.check_true
    (Printf.sprintf "SA share plausible (%.3f)" sa)
    (sa > 0.05 && sa < 0.20);
  Helpers.check_true
    (Printf.sprintf "LWD share plausible (%.3f)" lwd)
    (lwd > 0.02 && lwd < 0.12)

let commodity_plan () =
  Floorplan.commodity ~geometry:(geometry_1g_ddr3 ()) ~banks:8
    ~row_logic:200e-6 ~column_logic:200e-6 ~center_stripe:700e-6

let test_commodity () =
  let fp = commodity_plan () in
  Alcotest.(check int) "8 bank cells" 8 (List.length (Floorplan.bank_cells fp));
  let die = Floorplan.die_area fp *. 1e6 in
  Helpers.check_true
    (Printf.sprintf "die plausible for 1Gb 65nm (%.1f mm2)" die)
    (die > 25.0 && die < 75.0);
  let eff = Floorplan.array_efficiency fp in
  Helpers.check_true
    (Printf.sprintf "array efficiency plausible (%.2f)" eff)
    (eff > 0.35 && eff < 0.75);
  (* Kind areas tile the die. *)
  let sum =
    List.fold_left
      (fun acc k -> acc +. Floorplan.area_of_kind fp k)
      0.0
      [ Floorplan.Array_block; Floorplan.Row_logic; Floorplan.Column_logic;
        Floorplan.Center_stripe ]
  in
  Helpers.close ~eps:1e-6 "kind areas tile the die" (Floorplan.die_area fp) sum

let test_routes () =
  let fp = commodity_plan () in
  let a = (0, 1) and b = (2, 3) in
  Helpers.close "route symmetric"
    (Floorplan.route_length fp a b)
    (Floorplan.route_length fp b a);
  Helpers.close "route to self" 0.0 (Floorplan.route_length fp a a);
  let cc = Floorplan.center_cell fp in
  let j = snd cc in
  Alcotest.(check string) "center cell sits on the center stripe"
    "center stripe"
    (Floorplan.kind_name fp.Floorplan.vertical.(j).Floorplan.kind);
  Helpers.close "inside length fraction"
    (0.25 *. fp.Floorplan.horizontal.(0).Floorplan.size)
    (Floorplan.inside_length fp (0, 0) ~frac:0.25 ~dir:`H)

let test_find_block () =
  let fp = commodity_plan () in
  Alcotest.(check (option int)) "find A0" (Some 0)
    (Floorplan.find_block fp `H "A0");
  Alcotest.(check (option int)) "find missing" None
    (Floorplan.find_block fp `H "ZZ")

let test_validation () =
  Alcotest.check_raises "empty axis"
    (Invalid_argument "Floorplan.v: empty axis") (fun () ->
      ignore
        (Floorplan.v ~horizontal:[] ~vertical:[] ~geometry:(geometry_1g_ddr3 ())
           ~banks:8))

let test_commodity_bank_counts () =
  let geometry banks page =
    Array_geometry.derive ~style:Array_geometry.Open
      ~bank_bits:(2.0 ** 27.0) ~page_bits:page ~bits_per_bitline:512
      ~bits_per_lwl:512 ~wl_pitch:195e-9 ~bl_pitch:130e-9 ~sa_stripe:9e-6
      ~lwd_stripe:3.4e-6 ()
    |> fun g ->
    Floorplan.commodity ~geometry:g ~banks ~row_logic:200e-6
      ~column_logic:200e-6 ~center_stripe:600e-6
  in
  List.iter
    (fun banks ->
      let fp = geometry banks 16384 in
      Alcotest.(check int)
        (Printf.sprintf "%d bank cells" banks)
        banks
        (List.length (Floorplan.bank_cells fp));
      (* 16+ banks use four bank rows. *)
      let array_rows =
        Array.to_list fp.Floorplan.vertical
        |> List.filter (fun b -> b.Floorplan.kind = Floorplan.Array_block)
        |> List.length
      in
      Alcotest.(check int)
        (Printf.sprintf "bank rows for %d banks" banks)
        (if banks >= 16 then 4 else 2)
        array_rows)
    [ 2; 4; 8; 16; 32 ]

let test_route_hand_computed () =
  let fp = commodity_plan () in
  (* Horizontal neighbours: distance = half of each block width. *)
  let w0 = fp.Floorplan.horizontal.(0).Floorplan.size
  and w1 = fp.Floorplan.horizontal.(1).Floorplan.size in
  Helpers.close "adjacent route" ((w0 +. w1) /. 2.0)
    (Floorplan.route_length fp (0, 1) (1, 1));
  (* Manhattan: both axes add. *)
  let h1 = fp.Floorplan.vertical.(1).Floorplan.size
  and h2 = fp.Floorplan.vertical.(2).Floorplan.size in
  Helpers.close "diagonal route"
    (((w0 +. w1) /. 2.0) +. ((h1 +. h2) /. 2.0))
    (Floorplan.route_length fp (0, 1) (1, 2))

let test_area_of_kind_partition () =
  let fp = commodity_plan () in
  List.iter
    (fun k ->
      Helpers.check_positive (Floorplan.kind_name k)
        (Floorplan.area_of_kind fp k))
    [ Floorplan.Array_block; Floorplan.Row_logic; Floorplan.Column_logic;
      Floorplan.Center_stripe ]

let test_out_of_range_center () =
  let fp = commodity_plan () in
  (match Floorplan.center fp (99, 0) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "out-of-range accepted")

let route_triangle =
  QCheck.Test.make ~name:"routes obey the triangle inequality" ~count:200
    QCheck.(triple (int_range 0 5) (int_range 0 4) (int_range 0 5))
    (fun (i1, j1, i2) ->
      let fp = commodity_plan () in
      let nh = Array.length fp.Floorplan.horizontal
      and nv = Array.length fp.Floorplan.vertical in
      let a = (i1 mod nh, j1 mod nv)
      and b = (i2 mod nh, j1 mod nv)
      and c = (i1 mod nh, (j1 + 2) mod nv) in
      Floorplan.route_length fp a b
      <= Floorplan.route_length fp a c +. Floorplan.route_length fp c b +. 1e-12)

let suite =
  [
    Alcotest.test_case "derive sub-array grid" `Quick test_derive;
    Alcotest.test_case "derive validation" `Quick test_derive_errors;
    Alcotest.test_case "wire extents" `Quick test_extents;
    Alcotest.test_case "stripe area shares (paper bands)" `Quick
      test_area_shares;
    Alcotest.test_case "commodity floorplan" `Quick test_commodity;
    Alcotest.test_case "routing" `Quick test_routes;
    Alcotest.test_case "block lookup" `Quick test_find_block;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "bank counts and rows" `Quick
      test_commodity_bank_counts;
    Alcotest.test_case "hand-computed routes" `Quick test_route_hand_computed;
    Alcotest.test_case "kind areas positive" `Quick
      test_area_of_kind_partition;
    Alcotest.test_case "center bounds check" `Quick test_out_of_range_center;
    Helpers.qcheck route_triangle;
  ]
