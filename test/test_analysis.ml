(* Analysis: lenses, sensitivity (Fig 10 / Table III), trends
   (Figs 11-13), sweeps. *)

open Vdram_analysis
module Config = Vdram_core.Config
module Node = Vdram_tech.Node

let test_lenses_roundtrip () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  List.iter
    (fun lens ->
      match lens.Lenses.name with
      | "number of logic gates" | "width NFET logic" | "width PFET logic"
      | "logic device density" | "logic wiring density"
      | "transistors per logic gate" ->
        () (* aggregates report scale 1.0, not a value *)
      | name ->
        let v = lens.Lenses.get cfg in
        let cfg' = lens.Lenses.set cfg (v *. 2.0) in
        Helpers.close (name ^ " set doubles get") (2.0 *. v)
          (lens.Lenses.get cfg'))
    Lenses.all

let test_lens_count () =
  (* 38 technology + 8 voltage-ish + 6 logic + 4 interface lenses. *)
  Alcotest.(check int) "lens inventory" 56 (List.length Lenses.all);
  Helpers.check_true "find works"
    (Lenses.find "internal voltage Vint" <> None);
  Helpers.check_true "find missing" (Lenses.find "warp drive" = None)

let test_sensitivity_ddr3 () =
  let s = Sensitivity.run (Lazy.force Helpers.ddr3_2g) in
  (match s.Sensitivity.entries with
   | first :: _ ->
     Alcotest.(check string) "Vint ranks first (Table III)"
       "internal voltage Vint" first.Sensitivity.lens_name
   | [] -> Alcotest.fail "no entries");
  (* Raising a capacitance raises power; thinning oxide raises power
     (thicker oxide lowers gate cap). *)
  let span name =
    (List.find (fun e -> e.Sensitivity.lens_name = name)
       s.Sensitivity.entries)
      .Sensitivity.span_percent
  in
  Helpers.check_true "bitline cap span positive" (span "bitline capacitance" > 0.0);
  Helpers.check_true "oxide span negative"
    (span "gate oxide thickness logic" < 0.0);
  Helpers.check_true "efficiency span negative"
    (span "generator efficiency Vint" < 0.0);
  Helpers.check_true "Vdd excluded by default"
    (not
       (List.exists
          (fun e -> e.Sensitivity.lens_name = "external voltage Vdd")
          s.Sensitivity.entries))

let test_table3_vint_first () =
  List.iter
    (fun cfg ->
      let s = Sensitivity.run cfg in
      match Sensitivity.top 1 s with
      | [ e ] ->
        Alcotest.(check string)
          (cfg.Config.name ^ ": Vint first")
          "internal voltage Vint" e.Sensitivity.lens_name
      | _ -> Alcotest.fail "no top entry")
    Vdram_configs.Devices.table3_devices

let rank_of s name =
  let rec go i = function
    | [] -> None
    | e :: rest ->
      if e.Sensitivity.lens_name = name then Some i else go (i + 1) rest
  in
  go 1 s.Sensitivity.entries

let test_table3_shift () =
  (* The paper's Table III narrative: importance shifts from array
     parameters to wiring and logic across generations. *)
  let old_dev = Sensitivity.run (Lazy.force Helpers.sdr_128m) in
  let new_dev = Sensitivity.run (Lazy.force Helpers.ddr5_16g) in
  let r s n = Option.value ~default:99 (rank_of s n) in
  Helpers.check_true "bitline voltage falls in rank"
    (r old_dev "bitline voltage" < r new_dev "bitline voltage");
  Helpers.check_true "wire capacitance rises in rank"
    (r new_dev "specific wire capacitance signaling"
    <= r old_dev "specific wire capacitance signaling");
  (* Top-10 membership per the paper's table. *)
  List.iter
    (fun name ->
      Helpers.check_true (name ^ " in DDR5 top 10")
        (r new_dev name <= 10))
    [ "internal voltage Vint"; "number of logic gates";
      "specific wire capacitance signaling"; "width NFET logic";
      "width PFET logic" ]

let test_sensitivity_variation () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  let s = Sensitivity.run ~variation:0.10 cfg in
  let s20 = Sensitivity.run ~variation:0.20 cfg in
  let top10 = List.hd s.Sensitivity.entries
  and top20 = List.hd s20.Sensitivity.entries in
  Helpers.check_true "larger variation, larger span"
    (Float.abs top20.Sensitivity.span_percent
    > Float.abs top10.Sensitivity.span_percent)

let test_trends () =
  let pts = Trends.all () in
  Alcotest.(check int) "14 generations" 14 (List.length pts);
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun ((a : Trends.point), (b : Trends.point)) ->
      Helpers.check_true "Fig 11: vdd non-increasing"
        (b.Trends.vdd <= a.Trends.vdd +. 1e-9);
      Helpers.check_true "Fig 12: datarate non-decreasing"
        (b.Trends.datarate >= a.Trends.datarate);
      Helpers.check_true "Fig 13: energy/bit falls"
        (b.Trends.energy_per_bit_idd7 < a.Trends.energy_per_bit_idd7))
    (pairs pts);
  List.iter
    (fun (p : Trends.point) ->
      let mm2 = p.Trends.die_area *. 1e6 in
      Helpers.check_true
        (Printf.sprintf "die area %s plausible (%.1f mm2)"
           (Node.name p.Trends.node) mm2)
        (mm2 > 15.0 && mm2 < 75.0);
      Helpers.check_true "idd4 energy below idd7 energy"
        (p.Trends.energy_per_bit_idd4 < p.Trends.energy_per_bit_idd7))
    pts

let test_reduction_factors () =
  let pts = Trends.all () in
  let early =
    Trends.reduction_factor pts (fun n ->
        Node.index n <= Node.index Node.N44)
  and late =
    Trends.reduction_factor pts (fun n ->
        Node.index n >= Node.index Node.N44)
  in
  (* Paper: ~1.5x per generation 2000-2010, ~1.2x forecast. *)
  Helpers.check_true
    (Printf.sprintf "early reduction strong (%.2f)" early)
    (early > 1.25 && early < 1.6);
  Helpers.check_true
    (Printf.sprintf "late reduction weak (%.2f)" late)
    (late > 1.1 && late < 1.35);
  Helpers.check_true "the curve flattens (paper's headline)" (late < early)

let test_category_shares_shift () =
  let shares = Trends.category_shares () in
  Alcotest.(check int) "all generations" 14 (List.length shares);
  let share node cat =
    match List.assoc_opt cat (List.assq node shares) with
    | Some s -> s
    | None -> 0.0
  in
  (* Section VI: array share falls, clocking/interface/data rise. *)
  Helpers.check_true "array share falls 170nm -> 16nm"
    (share Node.N16 Vdram_core.Report.Array
    < share Node.N170 Vdram_core.Report.Array);
  Helpers.check_true "clocking share rises"
    (share Node.N16 Vdram_core.Report.Clocking
    > share Node.N170 Vdram_core.Report.Clocking);
  (* Shares are a partition of unity. *)
  List.iter
    (fun (node, cats) ->
      let sum = List.fold_left (fun a (_, s) -> a +. s) 0.0 cats in
      Helpers.close_rel ~rel:1e-6
        (Node.name node ^ " shares sum to 1")
        1.0 sum)
    shares

let test_sweep () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  let lens = Option.get (Lenses.find "bitline voltage") in
  let sweep =
    Sweep.run_relative ~lens ~factors:[ 0.8; 1.0; 1.2 ] cfg
  in
  (match sweep.Sweep.samples with
   | [ a; b; c ] ->
     Helpers.check_true "monotone sweep"
       (a.Sweep.power < b.Sweep.power && b.Sweep.power < c.Sweep.power)
   | _ -> Alcotest.fail "expected three samples");
  Alcotest.(check string) "sweep names lens" "bitline voltage"
    sweep.Sweep.lens_name

let test_corners () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  let d = Corners.run ~samples:60 ~spread:0.10 ~seed:7 cfg in
  let nominal = Vdram_core.Model.idd cfg (Vdram_core.Pattern.idd4r cfg.Config.spec) in
  Helpers.check_true "mean near nominal"
    (Float.abs (d.Corners.mean -. nominal) /. nominal < 0.08);
  Helpers.check_true "ordered summary"
    (d.Corners.min <= d.Corners.p05
    && d.Corners.p05 <= d.Corners.mean +. d.Corners.std
    && d.Corners.p95 <= d.Corners.max);
  Helpers.check_true "nominal covered" (Corners.covers d nominal);
  (* Deterministic: same seed, same distribution. *)
  let d2 = Corners.run ~samples:60 ~spread:0.10 ~seed:7 cfg in
  Helpers.close "reproducible mean" d.Corners.mean d2.Corners.mean;
  (* Wider spread, wider distribution. *)
  let wide = Corners.run ~samples:60 ~spread:0.20 ~seed:7 cfg in
  Helpers.check_true "spread widens range"
    (wide.Corners.max -. wide.Corners.min
    > d.Corners.max -. d.Corners.min)

let test_corners_explain_vendor_spread () =
  (* The paper's story: technology + implementation differences explain
     the datasheet spread.  A +-12% parameter band must cover the whole
     vendor range of a representative Fig 9 point. *)
  let family = Vdram_datasheets.Idd.ddr3_1g in
  let point =
    List.find
      (fun (p : Vdram_datasheets.Idd.point) ->
        p.Vdram_datasheets.Idd.test = Vdram_datasheets.Idd.Idd4r
        && p.Vdram_datasheets.Idd.datarate_mbps = 1066
        && p.Vdram_datasheets.Idd.io_width = 16)
      family.Vdram_datasheets.Idd.points
  in
  let cfg =
    Vdram_configs.Devices.ddr3_1g ~io_width:16 ~datarate:1.066e9
      ~node:Node.N65 ()
  in
  let d = Corners.run ~samples:120 ~spread:0.12 ~seed:3 cfg in
  let spread_ratio =
    (d.Corners.max -. d.Corners.min) /. d.Corners.mean
  in
  let vendor_ratio =
    (Vdram_datasheets.Idd.max_ma point -. Vdram_datasheets.Idd.min_ma point)
    /. Vdram_datasheets.Idd.mean_ma point
  in
  Helpers.check_true
    (Printf.sprintf "parameter spread (%.2f) reaches vendor spread (%.2f)"
       spread_ratio vendor_ratio)
    (spread_ratio > 0.7 *. vendor_ratio)

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let test_csv () =
  let pts = Trends.all () in
  let csv = Csv.trends pts in
  Alcotest.(check int) "trends rows" (1 + List.length pts) (count_lines csv);
  Helpers.check_true "trends header"
    (String.length csv > 7 && String.sub csv 0 7 = "node_nm");
  let s = Sensitivity.run ~lenses:[ Option.get (Lenses.find "bitline voltage") ]
      (Lazy.force Helpers.ddr3_1g)
  in
  Alcotest.(check int) "sensitivity rows" 2 (count_lines (Csv.sensitivity s));
  let rows = Vdram_datasheets.Compare.fig9 () in
  Alcotest.(check int) "verification rows" (1 + List.length rows)
    (count_lines (Csv.verification rows));
  let abl = Ablation.bitline_style ~node:Node.N55 () in
  Alcotest.(check int) "ablation rows" 3 (count_lines (Csv.ablation abl));
  (* write_file round trip *)
  let path = Filename.temp_file "vdram_csv" ".csv" in
  Csv.write_file path csv;
  let read = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string) "file round trip" csv read;
  Sys.remove path

let sensitivity_antisymmetric =
  QCheck.Test.make ~name:"spans change sign with direction" ~count:10
    QCheck.(int_range 0 9)
    (fun idx ->
      let cfg = Lazy.force Helpers.ddr3_1g in
      let lens = List.nth Lenses.voltages (idx mod List.length Lenses.voltages) in
      if lens.Lenses.name = "external voltage Vdd" then true
      else begin
        let s = Sensitivity.run ~lenses:[ lens ] cfg in
        match s.Sensitivity.entries with
        | [ e ] ->
          (* power(+20%) and power(-20%) must bracket nominal. *)
          (e.Sensitivity.power_plus -. s.Sensitivity.nominal_power)
          *. (e.Sensitivity.power_minus -. s.Sensitivity.nominal_power)
          <= 1e-12
        | _ -> false
      end)

let corners_always_finite =
  QCheck.Test.make ~name:"corner samples are finite and positive" ~count:8
    QCheck.(pair (int_range 1 10000) (float_range 0.02 0.25))
    (fun (seed, spread) ->
      let cfg = Lazy.force Helpers.ddr3_1g in
      let d = Corners.run ~samples:25 ~spread ~seed cfg in
      Float.is_finite d.Corners.mean
      && d.Corners.min > 0.0
      && d.Corners.max >= d.Corners.min)

let suite =
  [
    Alcotest.test_case "lens get/set" `Quick test_lenses_roundtrip;
    Alcotest.test_case "lens inventory" `Quick test_lens_count;
    Alcotest.test_case "DDR3 sensitivity signs" `Slow test_sensitivity_ddr3;
    Alcotest.test_case "Table III: Vint first on all devices" `Slow
      test_table3_vint_first;
    Alcotest.test_case "Table III: array-to-wiring shift" `Slow
      test_table3_shift;
    Alcotest.test_case "variation scaling" `Slow test_sensitivity_variation;
    Alcotest.test_case "trends (Figs 11-13)" `Slow test_trends;
    Alcotest.test_case "Fig 13 reduction factors" `Slow
      test_reduction_factors;
    Alcotest.test_case "category shares shift (Section VI)" `Slow
      test_category_shares_shift;
    Alcotest.test_case "parameter sweep" `Quick test_sweep;
    Alcotest.test_case "process corners" `Slow test_corners;
    Alcotest.test_case "corners explain vendor spread" `Slow
      test_corners_explain_vendor_spread;
    Alcotest.test_case "CSV emitters" `Slow test_csv;
    Helpers.qcheck sensitivity_antisymmetric;
    Helpers.qcheck corners_always_finite;
  ]
