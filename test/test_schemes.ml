(* Section V scheme evaluation. *)

open Vdram_schemes
module Config = Vdram_core.Config
module Operation = Vdram_core.Operation

let baseline () = Lazy.force Helpers.ddr3_2g

let result scheme = Evaluate.run (baseline ()) scheme

let test_inventory () =
  Alcotest.(check int) "seven schemes" 7 (List.length Scheme.all);
  List.iter
    (fun (s : Scheme.t) ->
      Helpers.check_true (s.Scheme.name ^ " has a reference")
        (String.length s.Scheme.reference > 0);
      Helpers.check_true (s.Scheme.name ^ " area factor >= 1")
        (s.Scheme.area_factor >= 1.0))
    Scheme.all

let test_selective_bitline () =
  let r = result Scheme.selective_bitline_activation in
  Helpers.check_true "activate energy falls hard"
    (r.Evaluate.activate_energy_after
    < r.Evaluate.activate_energy_before *. 0.8);
  Helpers.check_true "Idd7 saving positive" (r.Evaluate.idd7_saving > 0.0);
  Helpers.close "column power untouched" 0.0 r.Evaluate.idd4r_saving

let test_single_subarray () =
  let sba = result Scheme.selective_bitline_activation
  and ssa = result Scheme.single_subarray_access in
  Helpers.check_true "SSA activates no more than SBA"
    (ssa.Evaluate.activate_energy_after
    <= sba.Evaluate.activate_energy_after *. 1.001);
  Helpers.check_true "SSA saves at least as much on Idd7"
    (ssa.Evaluate.idd7_saving >= sba.Evaluate.idd7_saving -. 0.01);
  Helpers.check_true "but SSA costs the most area"
    (List.for_all
       (fun (s : Scheme.t) ->
         s.Scheme.area_factor
         <= Scheme.single_subarray_access.Scheme.area_factor)
       Scheme.all)

let test_segmented_data_lines () =
  let r = result Scheme.segmented_data_lines in
  Helpers.check_true "saves on streaming reads" (r.Evaluate.idd4r_saving > 0.0);
  Helpers.check_true "nearly free in area"
    (r.Evaluate.die_area_after /. r.Evaluate.die_area_before < 1.01);
  Helpers.check_true "row power untouched"
    (Float.abs r.Evaluate.idd0_saving < 0.01)

let test_low_voltage () =
  let r = result Scheme.low_voltage in
  Helpers.check_true "saves across the board"
    (r.Evaluate.idd0_saving > 0.1 && r.Evaluate.idd4r_saving > 0.1
    && r.Evaluate.idd7_saving > 0.1);
  (* Quadratic voltage benefit: the largest Idd7 saving of any scheme. *)
  Helpers.check_true "low voltage wins Idd7"
    (List.for_all
       (fun s -> (result s).Evaluate.idd7_saving <= r.Evaluate.idd7_saving)
       Scheme.all)

let test_tsv () =
  let r = result Scheme.tsv_3d in
  Helpers.check_true "TSV saves on the data-heavy pattern"
    (r.Evaluate.idd4r_saving > 0.05)

let test_threaded_module () =
  let r = result Scheme.threaded_module in
  Helpers.check_true "half page, lower activate energy"
    (r.Evaluate.activate_energy_after < r.Evaluate.activate_energy_before);
  Helpers.check_true "saving smaller than SBA"
    (r.Evaluate.idd7_saving
    <= (result Scheme.selective_bitline_activation).Evaluate.idd7_saving +. 1e-9)

let test_mini_rank () =
  let r = result Scheme.mini_rank in
  (* Device-level Idd4 falls (half the pins), but energy per bit
     rises slightly: the scheme's win is at rank level. *)
  Helpers.check_true "device Idd4R saving" (r.Evaluate.idd4r_saving > 0.2);
  Helpers.check_true "energy per bit does not improve much"
    (r.Evaluate.energy_per_bit_after > r.Evaluate.energy_per_bit_before *. 0.9)

let test_refresh_study () =
  let pts =
    Refresh_study.sweep (baseline ()) ~scales:[ 0.5; 1.0; 2.0; 4.0 ]
  in
  Alcotest.(check int) "four points" 4 (List.length pts);
  let p05 = List.nth pts 0 and p1 = List.nth pts 1
  and p4 = List.nth pts 3 in
  Helpers.check_true "hot (tight) refresh costs power"
    (p05.Refresh_study.self_refresh_power
    > p1.Refresh_study.self_refresh_power);
  Helpers.check_true "relaxed refresh approaches the power-down floor"
    (p4.Refresh_study.self_refresh_power
    < p1.Refresh_study.self_refresh_power
    && p4.Refresh_study.self_refresh_power
       > Vdram_core.Model.powerdown_power (baseline ()));
  Helpers.close "Idd5B unchanged by interval" p1.Refresh_study.idd5b
    p4.Refresh_study.idd5b;
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Refresh_study.sweep: non-positive scale") (fun () ->
      ignore (Refresh_study.sweep (baseline ()) ~scales:[ 0.0 ]))

let test_refresh_at_temperature () =
  let pts =
    Refresh_study.at_temperatures (baseline ())
      ~celsius:[ 45.0; 65.0; 85.0; 95.0 ]
  in
  Alcotest.(check int) "four temperatures" 4 (List.length pts);
  let power t = (List.assoc t pts).Refresh_study.self_refresh_power in
  Helpers.check_true "cooler is cheaper"
    (power 45.0 < power 65.0 && power 65.0 < power 85.0
    && power 85.0 < power 95.0);
  let _, at85 = List.nth pts 2 in
  Helpers.close "85C is the nominal interval" 1.0
    at85.Refresh_study.interval_scale

let test_composition () =
  let base = baseline () in
  let combo =
    Evaluate.run_combined base
      [ Scheme.selective_bitline_activation; Scheme.low_voltage ]
  in
  let sba = result Scheme.selective_bitline_activation
  and lv = result Scheme.low_voltage in
  Helpers.check_true "combo beats each alone"
    (combo.Evaluate.idd7_saving > sba.Evaluate.idd7_saving
    && combo.Evaluate.idd7_saving > lv.Evaluate.idd7_saving);
  Helpers.check_true "but is sub-additive"
    (combo.Evaluate.idd7_saving
    < sba.Evaluate.idd7_saving +. lv.Evaluate.idd7_saving);
  Helpers.close_rel ~rel:1e-9 "area factors multiply"
    (Scheme.selective_bitline_activation.Scheme.area_factor
    *. Scheme.low_voltage.Scheme.area_factor)
    combo.Evaluate.scheme.Scheme.area_factor;
  Alcotest.check_raises "empty composition"
    (Invalid_argument "Evaluate.compose: empty scheme list") (fun () ->
      ignore (Evaluate.compose []))

let test_transforms_compose () =
  (* Transforms are pure: applying one leaves the baseline intact. *)
  let base = baseline () in
  let before = Operation.energy base Operation.Activate in
  let _ = Scheme.selective_bitline_activation.Scheme.transform base in
  Helpers.close "baseline untouched" before
    (Operation.energy base Operation.Activate)

let savings_bounded =
  QCheck.Test.make ~name:"savings are fractions" ~count:7
    QCheck.(int_range 0 6)
    (fun i ->
      let scheme = List.nth Scheme.all i in
      let r = result scheme in
      List.for_all
        (fun s -> s > -1.0 && s < 1.0)
        [ r.Evaluate.idd0_saving; r.Evaluate.idd4r_saving;
          r.Evaluate.idd7_saving ])

let suite =
  [
    Alcotest.test_case "scheme inventory" `Quick test_inventory;
    Alcotest.test_case "selective bitline activation" `Slow
      test_selective_bitline;
    Alcotest.test_case "single sub-array access" `Slow test_single_subarray;
    Alcotest.test_case "segmented data lines" `Slow test_segmented_data_lines;
    Alcotest.test_case "low-voltage operation" `Slow test_low_voltage;
    Alcotest.test_case "3D TSV" `Slow test_tsv;
    Alcotest.test_case "threaded module" `Slow test_threaded_module;
    Alcotest.test_case "mini-rank" `Slow test_mini_rank;
    Alcotest.test_case "refresh-rate study (Emma et al.)" `Quick
      test_refresh_study;
    Alcotest.test_case "refresh vs temperature" `Quick
      test_refresh_at_temperature;
    Alcotest.test_case "scheme composition" `Slow test_composition;
    Alcotest.test_case "transforms are pure" `Quick test_transforms_compose;
    Helpers.qcheck savings_bounded;
  ]
