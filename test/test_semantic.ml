(* Semantic lint v2: error-accumulating elaboration, structured
   fix-its (--fix), floorplan coordinate checks (V07xx), bank-aware
   pattern legality (V08xx, shared with the simulator's scheduler),
   the SARIF renderer and the exit-code contract. *)

module Code = Vdram_diagnostics.Code
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix
module Suggest = Vdram_diagnostics.Suggest
module Parser = Vdram_dsl.Parser
module Printer = Vdram_dsl.Printer
module Ast = Vdram_dsl.Ast
module Elaborate = Vdram_dsl.Elaborate
module Lint = Vdram_lint.Lint
module Timing = Vdram_sim.Timing
module Legality = Vdram_sim.Legality
module Pattern = Vdram_core.Pattern

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let codes_of diags = List.map (fun (d : D.t) -> d.D.code) diags

(* ----- registry self-check ----------------------------------------- *)

let test_registry_self_check () =
  Alcotest.(check (list string))
    "registry passes its startup self-check" [] (Code.self_check ());
  Helpers.check_true "V07xx band reserved"
    (List.mem_assoc "V07" Code.bands);
  Helpers.check_true "V08xx band reserved"
    (List.mem_assoc "V08" Code.bands);
  Helpers.check_true "V09xx band reserved"
    (List.mem_assoc "V09" Code.bands);
  List.iter
    (fun c -> Helpers.check_true (c ^ " registered") (Code.is_known c))
    [ "V0901"; "V0902"; "V0903" ]

(* ----- error-accumulating elaboration ------------------------------ *)

let accumulating_source =
  String.concat "\n"
    [ "Device"; "Part name=acc node=banana"; "";
      "Specification"; "IO width=16 datarate=1.6Gbps";
      "Density mbits=zero"; "";
      "Technology"; "Set cbitlinez=75fF"; "";
      "FloorplanSignaling"; "WriteDta length=450um toggle=25%"; "" ]

let test_accumulates_errors () =
  (* One run must surface at least three distinct elaboration errors
     (the old fail-fast driver stopped at the first). *)
  let r = Lint.run accumulating_source in
  let errs =
    List.filter D.is_error r.Lint.diagnostics |> codes_of
    |> List.sort_uniq compare
  in
  Helpers.check_true
    (Printf.sprintf "at least 3 distinct error codes in one run (got %s)"
       (String.concat "," errs))
    (List.length errs >= 3);
  (* Every error points somewhere in the source. *)
  List.iter
    (fun (d : D.t) ->
      if D.is_error d then
        Helpers.check_true (d.D.code ^ " is spanned")
          (not (Span.is_none d.D.span)))
    r.Lint.diagnostics

let test_elaborate_tuple_contract () =
  match Parser.parse accumulating_source with
  | Error _ -> Alcotest.fail "source must parse"
  | Ok ast ->
    let cfg, diags = Elaborate.elaborate ast in
    Helpers.check_true "diagnostics accumulated"
      (List.length (List.filter D.is_error diags) >= 2);
    (* to_result gives the old fail-fast view. *)
    (match Elaborate.to_result (cfg, diags) with
     | Ok _ -> Alcotest.fail "errors must surface through to_result"
     | Error e ->
       Helpers.check_true "first error is coded" (e.Parser.code <> ""));
    (* A clean description elaborates with no diagnostics. *)
    (match Parser.parse "Device\nPart name=t node=65nm\n" with
     | Error _ -> Alcotest.fail "clean source must parse"
     | Ok ast ->
       let cfg, diags = Elaborate.elaborate ast in
       Helpers.check_true "clean description has a config" (cfg <> None);
       Alcotest.(check (list string)) "clean description has no diags" []
         (codes_of diags))

(* ----- structured fix-its ------------------------------------------ *)

let span line a b = Span.of_cols ~start:a ~stop:b line

let test_fix_apply () =
  let source = "IO widht=16\nSet x=1" in
  (* Replacement. *)
  let fixed, n = Fix.apply ~source [ Fix.v ~span:(span 1 4 9) "width" ] in
  Alcotest.(check string) "replace" "IO width=16\nSet x=1" fixed;
  Alcotest.(check int) "one applied" 1 n;
  (* Zero-width span inserts. *)
  let fixed, n = Fix.apply ~source [ Fix.v ~span:(span 1 4 4) "re" ] in
  Alcotest.(check string) "insert" "IO rewidht=16\nSet x=1" fixed;
  Alcotest.(check int) "insert applied" 1 n;
  (* Overlapping fixes: first in source order wins. *)
  let fixed, n =
    Fix.apply ~source
      [ Fix.v ~span:(span 1 4 9) "width"; Fix.v ~span:(span 1 4 9) "depth" ]
  in
  Alcotest.(check string) "first wins" "IO width=16\nSet x=1" fixed;
  Alcotest.(check int) "conflict dropped" 1 n;
  (* Disjoint fixes on one line both apply. *)
  let fixed, n =
    Fix.apply ~source
      [ Fix.v ~span:(span 1 1 3) "DQ"; Fix.v ~span:(span 1 4 9) "width" ]
  in
  Alcotest.(check string) "both apply" "DQ width=16\nSet x=1" fixed;
  Alcotest.(check int) "two applied" 2 n;
  (* Spanless or out-of-range fixes are ignored. *)
  let _, n =
    Fix.apply ~source
      [ Fix.v ~span:Span.none "x"; Fix.v ~span:(span 9 1 2) "y" ]
  in
  Alcotest.(check int) "nothing applied" 0 n

let test_fix_edges () =
  let source = "act nop\npre nop\nrd wrt" in
  (* A multi-line region swallows the intervening line break. *)
  let f = Fix.v ~span:(span 1 5 1) ~line_end:2 "rd " in
  let fixed, n = Fix.apply ~source [ f ] in
  Alcotest.(check string) "multi-line replace" "act rd pre nop\nrd wrt" fixed;
  Alcotest.(check int) "one applied" 1 n;
  (* Adjacent but not overlapping: one fix ends exactly where the next
     begins (the end column is exclusive), across a line break.  Both
     must apply — adjacency is not overlap. *)
  let first = Fix.v ~span:(span 1 5 1) ~line_end:2 "" in
  let second = Fix.v ~span:(span 2 1 4) "act" in
  let fixed, n = Fix.apply ~source [ first; second ] in
  Alcotest.(check string) "adjacent fixes both apply" "act act nop\nrd wrt"
    fixed;
  Alcotest.(check int) "two applied" 2 n;
  (* Zero-width insertion at the very end of a line: col_start one
     past the last character is still in range. *)
  let at_eol = Fix.v ~span:(span 2 8 8) " ref" in
  let fixed, n = Fix.apply ~source [ at_eol ] in
  Alcotest.(check string) "insert at line end" "act nop\npre nop ref\nrd wrt"
    fixed;
  Alcotest.(check int) "eol insert applied" 1 n;
  (* One past the end of the line is the insertion point after its
     last character; two past is out of range and must be dropped, not
     misapplied against the next line. *)
  let past = Fix.v ~span:(span 2 9 9) "x" in
  let fixed, n = Fix.apply ~source [ past ] in
  Alcotest.(check string) "out-of-range insert untouched" source fixed;
  Alcotest.(check int) "out-of-range insert dropped" 0 n

let test_fix_crlf () =
  (* CRLF sources: the \r is the last character of each split line, so
     column arithmetic still lands inside the intended line. *)
  let source = "act nop\r\npre nop\r\nrd wrt" in
  let f = Fix.v ~span:(span 2 1 4) "act" in
  let fixed, n = Fix.apply ~source [ f ] in
  Alcotest.(check string) "edit inside a CRLF line"
    "act nop\r\nact nop\r\nrd wrt" fixed;
  Alcotest.(check int) "one applied" 1 n;
  (* An insertion at the LF-relative end of a CRLF line lands before
     the \r, keeping the line ending intact. *)
  let at_eol = Fix.v ~span:(span 1 8 8) " ref" in
  let fixed, n = Fix.apply ~source [ at_eol ] in
  Alcotest.(check string) "insert keeps the CR"
    "act nop ref\r\npre nop\r\nrd wrt" fixed;
  Alcotest.(check int) "eol insert applied" 1 n

let test_suggest () =
  Alcotest.(check int) "transposition distance" 2
    (Suggest.distance "widht" "width");
  Alcotest.(check int) "identity distance" 0
    (Suggest.distance "width" "width");
  Alcotest.(check (option string)) "near miss" (Some "width")
    (Suggest.nearest ~candidates:[ "width"; "datarate" ] "widht");
  Alcotest.(check (option string)) "case-insensitive" (Some "voltages")
    (Suggest.nearest ~candidates:[ "voltages" ] "Voltagez");
  Alcotest.(check (option string)) "too far" None
    (Suggest.nearest ~candidates:[ "width" ] "frequency")

let fixable = "fixtures/fixable.dram"

let test_fix_roundtrip () =
  (* The acceptance loop behind `vdram lint --fix`: every finding in
     the fixture carries a fix; applying them yields a description
     that re-lints clean. *)
  if Sys.file_exists fixable then begin
    let r = Lint.run_file fixable in
    Helpers.check_true "fixture has findings" (r.Lint.diagnostics <> []);
    List.iter
      (fun (d : D.t) ->
        Helpers.check_true (d.D.code ^ " carries a fix") (d.D.fixes <> []))
      r.Lint.diagnostics;
    let fixed, applied = Lint.apply_fixes r in
    Helpers.check_true "fixes applied" (applied >= 3);
    let r' = Lint.run ~file:fixable fixed in
    if r'.Lint.diagnostics <> [] then
      Alcotest.failf "fixed source not clean:\n%s"
        (Format.asprintf "%a" Lint.pp_text r')
  end

let wrong_dim_source =
  String.concat "\n"
    [ "Device"; "Part name=dims node=55nm"; "";
      "Specification"; "IO width=16 datarate=1.6GHz";
      "Timing trc=50nm trcd=16.5ns trp=15"; "" ]

let test_v0101_fixit () =
  (* Wrong-dimension literals keep their number and SI prefix and swap
     the base unit for the expected one; a bare number offers no
     prefix, so no fix is proposed. *)
  let r = Lint.run wrong_dim_source in
  let v0101 =
    List.filter (fun (d : D.t) -> d.D.code = "V0101") r.Lint.diagnostics
  in
  Alcotest.(check int) "three wrong-dimension findings" 3
    (List.length v0101);
  let replacements =
    List.concat_map
      (fun (d : D.t) ->
        List.map (fun (f : Fix.t) -> f.Fix.replacement) d.D.fixes)
      v0101
  in
  Alcotest.(check (list string)) "unit swapped, prefix and number kept"
    [ "datarate=1.6Gbps"; "trc=50ns" ]
    (List.sort compare replacements);
  let fixed, applied = Lint.apply_fixes r in
  Alcotest.(check int) "both fixes apply" 2 applied;
  Helpers.check_true "fixed literals present"
    (contains fixed "trc=50ns" && contains fixed "datarate=1.6Gbps");
  (* The bare-scalar finding (trp=15) remains after fixing. *)
  let r' = Lint.run fixed in
  Alcotest.(check (list string)) "only the prefix-less finding remains"
    [ "V0101" ]
    (codes_of (List.filter D.is_error r'.Lint.diagnostics))

let test_preview_fixes () =
  (* --fix --dry-run: a unified diff of what would change, with the
     file left untouched (the report is built from a string here, so
     there is nothing to touch — the diff itself is the contract). *)
  let r = Lint.run wrong_dim_source in
  match Lint.preview_fixes r with
  | None -> Alcotest.fail "fixable report must produce a preview"
  | Some (diff, applied) ->
    Alcotest.(check int) "preview covers both fixes" 2 applied;
    Helpers.check_true "unified headers" (contains diff "--- a/<stdin>");
    Helpers.check_true "hunk header" (contains diff "@@ -");
    Helpers.check_true "old line removed" (contains diff "-Timing trc=50nm");
    Helpers.check_true "new line added" (contains diff "+Timing trc=50ns");
    (* Context lines ride along unchanged. *)
    Helpers.check_true "context line" (contains diff " Specification");
    (* A clean report previews nothing. *)
    (match Lint.preview_fixes (Lint.run "Device\nPart name=t node=65nm\n")
     with
     | None -> ()
     | Some _ -> Alcotest.fail "clean report must preview no fixes")

let mixed_fix_source =
  String.concat "\n"
    [ "Device"; "Part name=mixed node=55nm"; "";
      "Specification"; "IO widht=16 datarate=1.6GHz";
      "Timing trc=50nm trcd=16.5ns"; "" ]

let test_fix_only () =
  (* `vdram lint --fix-only CODE`: a source mixing wrong-dimension
     literals (V0101) with an argument typo (V0105) is repaired one
     code at a time; the other code's edits are left untouched. *)
  let r = Lint.run mixed_fix_source in
  let codes = codes_of r.Lint.diagnostics in
  Helpers.check_true "source mixes V0101 and V0105"
    (List.mem "V0101" codes && List.mem "V0105" codes);
  Alcotest.(check int) "only=V0101 narrows the harvest" 2
    (List.length (Lint.fixes ~only:"V0101" r));
  let fixed, applied = Lint.apply_fixes ~only:"V0101" r in
  Alcotest.(check int) "only the dimension fixes apply" 2 applied;
  Helpers.check_true "dimension literals repaired"
    (contains fixed "trc=50ns" && contains fixed "datarate=1.6Gbps");
  Helpers.check_true "the V0105 typo is left alone"
    (contains fixed "widht=16");
  let fixed', applied' = Lint.apply_fixes ~only:"V0105" r in
  Alcotest.(check int) "exactly the typo fix applies" 1 applied';
  Helpers.check_true "typo repaired, dimensions untouched"
    (contains fixed' "width=16" && contains fixed' "trc=50nm");
  match Lint.preview_fixes ~only:"V0105" r with
  | None -> Alcotest.fail "filtered preview expected"
  | Some (diff, n) ->
    Alcotest.(check int) "preview counts only the filtered fix" 1 n;
    Helpers.check_true "diff rewrites the typo line"
      (contains diff "-IO widht=16" && contains diff "+IO width=16");
    Helpers.check_true "diff leaves the timing line alone"
      (not (contains diff "+Timing"))

let test_udiff_render () =
  let render a b =
    Vdram_lint.Udiff.render ~path:"f" ~before:a ~after:b ()
  in
  Alcotest.(check string) "equal texts diff empty" "" (render "a\nb" "a\nb");
  let d = render "a\nb\nc" "a\nB\nc" in
  Helpers.check_true "replacement shows - then +"
    (contains d "-b\n+B\n");
  Helpers.check_true "hunk coordinates" (contains d "@@ -1,3 +1,3 @@")

(* ----- print/parse round trip -------------------------------------- *)

(* The AST with spans erased: what --fix relies on Printer.print to
   preserve. *)
let strip ast =
  List.map
    (fun (s : Ast.section) ->
      ( s.Ast.section_name,
        List.map
          (fun (st : Ast.stmt) -> (st.Ast.keyword, st.Ast.args, st.Ast.positional))
          s.Ast.stmts ))
    ast

let test_print_parse_roundtrip () =
  let files =
    [ "../examples/ddr3_1gb.dram"; "../examples/ddr5_16g.dram";
      "../examples/lpddr_mobile.dram"; "../examples/sdr_128m.dram";
      "fixtures/bad_vpp_headroom.dram"; "fixtures/fixable.dram" ]
  in
  List.iter
    (fun path ->
      if Sys.file_exists path then begin
        let source = In_channel.with_open_text path In_channel.input_all in
        match Parser.parse source with
        | Error e ->
          Alcotest.failf "%s: %s" path
            (Format.asprintf "%a" Parser.pp_error e)
        | Ok ast ->
          (match Parser.parse (Printer.print ast) with
           | Error e ->
             Alcotest.failf "%s: reprint does not parse: %s" path
               (Format.asprintf "%a" Parser.pp_error e)
           | Ok ast' ->
             if strip ast <> strip ast' then
               Alcotest.failf "%s: print/parse round trip changed the AST"
                 path)
      end)
    files

(* ----- floorplan coordinate checks (V07xx) ------------------------- *)

let fp_base signaling =
  String.concat "\n"
    [ "Device"; "Part name=fp node=170nm"; "";
      "FloorplanPhysical";
      "CellArray BitsPerBL=256 BitsPerLWL=256 BLtype=folded Page=8192";
      "Horizontal blocks = A0 R0 A1";
      "Vertical blocks = C0 AR0 P0 AR1 C1";
      "SizeHorizontal R0=400um";
      "SizeVertical C0=380um P0=1000um C1=380um"; "";
      "FloorplanSignaling"; signaling; "" ]

let test_floorplan_codes () =
  (* start= outside the declared 3 x 5 grid: error, caught during
     elaboration. *)
  let r = Lint.run (fp_base "RowAddress wires=12 start=0_9 end=1_2") in
  Helpers.check_true "V0701 out-of-grid"
    (List.mem "V0701" (codes_of r.Lint.diagnostics));
  Helpers.check_true "V0701 is an error" (Lint.errors r > 0);
  (match
     List.find_opt
       (fun (d : D.t) -> d.D.code = "V0701")
       r.Lint.diagnostics
   with
   | Some d ->
     Helpers.check_true "V0701 points at the coordinate"
       (d.D.span.Span.line > 0 && d.D.span.Span.col_start > 1)
   | None -> Alcotest.fail "V0701 missing");
  (* start = end: zero-length route, warning. *)
  let r = Lint.run (fp_base "Command wires=4 start=1_2 end=1_2") in
  Helpers.check_true "V0702 zero-length route"
    (List.mem "V0702" (codes_of r.Lint.diagnostics));
  Alcotest.(check int) "V0702 is a warning" 0 (Lint.errors r);
  (* fraction outside (0, 1]. *)
  let r =
    Lint.run (fp_base "ReadData wires=16 inside=1_2 fraction=150% dir=h")
  in
  Helpers.check_true "V0703 fraction out of range"
    (List.mem "V0703" (codes_of r.Lint.diagnostics));
  (* All in-grid, distinct, sane fraction: silent. *)
  let r =
    Lint.run (fp_base "Command wires=4 start=0_2 end=2_2 toggle=25%")
  in
  Helpers.check_true "legal signaling stays clean"
    (not
       (List.exists
          (fun c -> List.mem c [ "V0701"; "V0702"; "V0703" ])
          (codes_of r.Lint.diagnostics)))

(* ----- bank-aware pattern legality (V08xx) ------------------------- *)

let ddr3ish pattern_loop =
  String.concat "\n"
    [ "Device"; "Part name=burst node=65nm"; "";
      "Specification"; "IO width=8 datarate=1.6Gbps";
      "Banks number=8"; "Timing trc=37.5ns trcd=13.75ns trp=13.75ns"; "";
      "Pattern"; "Pattern loop= " ^ pattern_loop; "" ]

let reject : Legality.violation Alcotest.testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Legality.message v))
    ( = )

let test_bank_legality_vs_aggregate () =
  (* Two back-to-back activates in a 16-cycle loop: the old aggregate
     bounds (acts * tRC <= cycles * banks, acts * tFAW <= cycles * 4)
     accept it, but the scheduler rejects the placement — tRRD keeps
     activates apart regardless of the average rate. *)
  let loop =
    "act act nop nop nop nop nop nop nop nop nop nop nop nop nop nop"
  in
  let r = Lint.run (ddr3ish loop) in
  let cs = codes_of r.Lint.diagnostics in
  Helpers.check_true "no aggregate V0602 (superseded)"
    (not (List.mem "V0602" cs));
  Helpers.check_true "V0802 tRRD spacing flagged" (List.mem "V0802" cs);
  Alcotest.(check int) "legality findings are warnings" 0 (Lint.errors r);
  (* The aggregate bounds really do accept this pattern. *)
  (match Elaborate.load_string (ddr3ish loop) with
   | Error _ -> Alcotest.fail "description must elaborate"
   | Ok { Elaborate.config; pattern } ->
     let p = Option.get pattern in
     let t = Timing.of_config config in
     let banks = config.Vdram_core.Config.spec.Vdram_core.Spec.banks in
     let acts = Pattern.count p Pattern.Act in
     let cycles = Pattern.cycles p in
     Helpers.check_true "old tRC aggregate bound accepts the pattern"
       (acts * t.Timing.trc <= cycles * banks);
     Helpers.check_true "old tFAW aggregate bound accepts the pattern"
       (acts * t.Timing.tfaw <= cycles * 4);
     (* Shared component: the simulator's own legality checker rejects
        the same command stream, so lint and sim cannot disagree. *)
     let rank = Legality.create t ~banks in
     Alcotest.(check (list reject)) "first activate legal" []
       (Legality.activate rank ~bank:0 ~at:0 ~row:0);
     let vs = Legality.activate rank ~bank:1 ~at:1 ~row:0 in
     Helpers.check_true "scheduler rejects the second activate"
       (List.exists
          (fun v -> v.Legality.kind = Legality.Act_spacing)
          vs);
     Helpers.check_true "enforce raises for the simulator"
       (try
          Legality.enforce vs;
          false
        with Legality.Timing_violation _ -> true))

let test_trc_reuse_flagged () =
  (* Two banks, two activates per 32-cycle loop: the round-robin
     rotation wraps back to bank 0 only 32 cycles after its previous
     activate — inside tRC (40 clocks at 800 MHz) even though the
     bank precharged legally: V0801. *)
  let nops n = String.concat " " (List.init n (fun _ -> "nop")) in
  let source =
    String.concat "\n"
      [ "Device"; "Part name=twobank node=65nm"; "";
        "Specification"; "IO width=8 datarate=1.6Gbps";
        "Banks number=2"; "Control frequency=800MHz";
        "Timing trc=50ns trcd=15ns trp=15ns"; "";
        "Pattern";
        Printf.sprintf "Pattern loop= act %s act %s pre nop pre nop"
          (nops 7) (nops 19); "" ]
  in
  let r = Lint.run source in
  Helpers.check_true
    (Printf.sprintf "V0801 tRC reuse flagged (got %s)"
       (String.concat "," (codes_of r.Lint.diagnostics)))
    (List.mem "V0801" (codes_of r.Lint.diagnostics))

let test_four_activate_window () =
  (* Direct shared-component check of the tFAW window: five activates
     legal on tRRD spacing but the fifth inside tFAW. *)
  let t =
    {
      Timing.tck = 1e-9; trcd = 4; trp = 4; tras = 10; trc = 14; trrd = 2;
      tfaw = 20; tccd = 2; tccd_l = 2; bank_groups = 1; cl = 4; twl = 3;
      twr = 4; trtp = 3; trefi = 7800; trfc = 128; txp = 3;
    }
  in
  let rank = Legality.create t ~banks:8 in
  List.iteri
    (fun i at ->
      Alcotest.(check int)
        (Printf.sprintf "activate %d legal" i)
        0
        (List.length (Legality.activate rank ~bank:i ~at ~row:0)))
    [ 0; 2; 4; 6 ];
  let vs = Legality.activate rank ~bank:4 ~at:8 ~row:0 in
  Helpers.check_true "fifth activate trips tFAW"
    (List.exists
       (fun v -> v.Legality.kind = Legality.Four_activate)
       vs);
  (* Past the window it becomes legal (state untouched by the
     rejection). *)
  Alcotest.(check int) "fifth activate legal after the window" 0
    (List.length (Legality.activate rank ~bank:4 ~at:20 ~row:0))

let test_examples_bank_legal () =
  (* The shipped example patterns are schedulable: the V08xx replay
     stays silent on all of them. *)
  List.iter
    (fun name ->
      let path = Filename.concat "../examples" name in
      if Sys.file_exists path then begin
        let r = Lint.run_file path in
        List.iter
          (fun (d : D.t) ->
            if List.mem d.D.code [ "V0801"; "V0802"; "V0803" ] then
              Alcotest.failf "%s: unexpected %s: %s" name d.D.code
                d.D.message)
          r.Lint.diagnostics
      end)
    [ "ddr3_1gb.dram"; "ddr5_16g.dram"; "lpddr_mobile.dram";
      "sdr_128m.dram" ]

(* ----- SARIF ------------------------------------------------------- *)

(* A tiny JSON reader — just enough to check the SARIF output is
   well-formed and structurally a 2.1.0 log.  No external deps. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    String.iter (fun c -> expect c) lit;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'u' ->
           advance ();
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           Buffer.add_string b (Printf.sprintf "\\u%s" hex);
           go ()
         | Some c ->
           advance ();
           Buffer.add_char b
             (match c with
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | 'b' -> '\b'
              | 'f' -> '\012'
              | c -> c);
           go ()
         | None -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields ->
    (match List.assoc_opt k fields with
     | Some v -> v
     | None -> raise (Bad_json ("missing member " ^ k)))
  | _ -> raise (Bad_json ("not an object looking up " ^ k))

let as_str = function
  | Str s -> s
  | _ -> raise (Bad_json "expected string")

let as_arr = function
  | Arr l -> l
  | _ -> raise (Bad_json "expected array")

let as_num = function
  | Num f -> f
  | _ -> raise (Bad_json "expected number")

let test_sarif_structure () =
  (* The SARIF log must be well-formed JSON and satisfy the 2.1.0
     schema's required properties for the pieces we emit: version,
     runs[].tool.driver.name, results[].message.text, physical
     locations with 1-based regions, and rule metadata every result
     indexes into. *)
  let r1 = Lint.run ~file:"a.dram" accumulating_source in
  let r2 =
    Lint.run ~file:"b.dram" (fp_base "Command wires=4 start=1_2 end=1_2")
  in
  let log = Lint.to_sarif [ r1; r2 ] in
  let j = parse_json log in
  Alcotest.(check string) "version" "2.1.0" (as_str (member "version" j));
  Helpers.check_true "schema URI names 2.1.0"
    (contains (as_str (member "$schema" j)) "sarif-schema-2.1.0");
  (match as_arr (member "runs" j) with
   | [ run ] ->
     let driver = member "driver" (member "tool" run) in
     Alcotest.(check string) "tool name" "vdram lint"
       (as_str (member "name" driver));
     let rules = as_arr (member "rules" driver) in
     let rule_ids =
       List.map (fun r -> as_str (member "id" r)) rules
     in
     Helpers.check_true "rules declared" (rules <> []);
     let results = as_arr (member "results" run) in
     let expected =
       List.length r1.Lint.diagnostics + List.length r2.Lint.diagnostics
     in
     Alcotest.(check int) "one result per diagnostic" expected
       (List.length results);
     List.iter
       (fun res ->
         let rule_id = as_str (member "ruleId" res) in
         Helpers.check_true (rule_id ^ " indexed in rules")
           (List.mem rule_id rule_ids);
         let idx = int_of_float (as_num (member "ruleIndex" res)) in
         Alcotest.(check string) "ruleIndex points at its rule" rule_id
           (List.nth rule_ids idx);
         Helpers.check_true "level is a schema value"
           (List.mem
              (as_str (member "level" res))
              [ "error"; "warning"; "note" ]);
         Helpers.check_true "message text present"
           (as_str (member "text" (member "message" res)) <> "");
         match as_arr (member "locations" res) with
         | [ loc ] ->
           let phys = member "physicalLocation" loc in
           let uri =
             as_str (member "uri" (member "artifactLocation" phys))
           in
           Helpers.check_true "uri is one of the inputs"
             (List.mem uri [ "a.dram"; "b.dram" ]);
           let region = member "region" phys in
           Helpers.check_true "startLine is 1-based"
             (as_num (member "startLine" region) >= 1.0);
           Helpers.check_true "columns ordered"
             (as_num (member "endColumn" region)
              >= as_num (member "startColumn" region))
         | _ -> Alcotest.fail "expected one location per result")
       results;
     (* Fix-carrying diagnostics surface as SARIF fixes. *)
     let with_fixes =
       List.filter
         (fun res ->
           match res with
           | Obj fields -> List.mem_assoc "fixes" fields
           | _ -> false)
         results
     in
     Helpers.check_true "at least one result carries fixes"
       (with_fixes <> [])
   | _ -> Alcotest.fail "expected exactly one run")

(* ----- multi-line fix-its ------------------------------------------ *)

let test_fix_multiline () =
  let source = "alpha\nbravo\ncharlie\ndelta" in
  (* Splice across a line boundary: line 1 col 3 through line 3 col 3
     (exclusive), swallowing the intervening line breaks. *)
  let fx = Fix.v ~line_end:3 ~span:(span 1 3 3) "X" in
  Helpers.check_true "crosses a line boundary" (Fix.is_multiline fx);
  Helpers.check_true "not an insertion" (not (Fix.is_insertion fx));
  let fixed, n = Fix.apply ~source [ fx ] in
  Alcotest.(check string) "spliced across lines" "alXarlie\ndelta" fixed;
  Alcotest.(check int) "one applied" 1 n;
  (* A single-line edit inside the swallowed region conflicts; first
     in source order wins. *)
  let fixed, n = Fix.apply ~source [ fx; Fix.v ~span:(span 2 1 6) "BRAVO" ] in
  Alcotest.(check string) "swallowed edit dropped" "alXarlie\ndelta" fixed;
  Alcotest.(check int) "conflict dropped" 1 n;
  (* A disjoint edit after the region still applies. *)
  let fixed, n = Fix.apply ~source [ fx; Fix.v ~span:(span 4 1 6) "DELTA" ] in
  Alcotest.(check string) "disjoint later edit applies" "alXarlie\nDELTA"
    fixed;
  Alcotest.(check int) "both applied" 2 n;
  (* Whole-line deletion: line 2 col 1 through line 4 col 1. *)
  let fixed, n =
    Fix.apply ~source [ Fix.v ~line_end:4 ~span:(span 2 1 1) "" ]
  in
  Alcotest.(check string) "whole lines deleted" "alpha\ndelta" fixed;
  Alcotest.(check int) "deletion applied" 1 n;
  (* line_end beyond the source is dropped, not mangled. *)
  let fixed, n =
    Fix.apply ~source [ Fix.v ~line_end:9 ~span:(span 2 1 1) "" ]
  in
  Alcotest.(check string) "out-of-range region ignored" source fixed;
  Alcotest.(check int) "nothing applied" 0 n

let test_fix_multiline_render () =
  (* A multi-line fix must surface in every renderer: end_line in the
     diagnostic JSON, endLine in the SARIF deletedRegion, and a
     multi-hunk unified diff in the --fix --dry-run preview. *)
  let fx = Fix.v ~line_end:2 ~span:(span 1 1 6) "uno" in
  let d =
    D.warningf ~code:"V0902" ~span:(span 1 1 6) ~fixes:[ fx ] "collapse"
  in
  let buf = Buffer.create 64 in
  D.to_json buf d;
  let j = Buffer.contents buf in
  Helpers.check_true "fix JSON carries end_line"
    (contains j "\"end_line\":2");
  let report =
    {
      Lint.file = Some "f.dram";
      source = [| "alpha"; "bravo"; "charlie" |];
      diagnostics = [ d ];
    }
  in
  let log = Lint.to_sarif [ report ] in
  Helpers.check_true "SARIF deletedRegion carries endLine"
    (contains log "\"endLine\":2");
  Helpers.check_true "SARIF result region has no endLine"
    (not (contains log "\"startLine\":1,\"endLine\":2,\"startColumn\":1,\"endColumn\":6},\"message\""));
  match Lint.preview_fixes report with
  | None -> Alcotest.fail "preview expected"
  | Some (diff, n) ->
    Alcotest.(check int) "one fix previewed" 1 n;
    Helpers.check_true "first line removed" (contains diff "-alpha");
    Helpers.check_true "second line removed" (contains diff "-bravo");
    Helpers.check_true "replacement added" (contains diff "+uno");
    Helpers.check_true "context kept" (contains diff " charlie")

let test_fix_idempotent () =
  (* `vdram lint --fix` twice: the second pass must be a byte-for-byte
     no-op even when unfixable findings remain. *)
  let stable source =
    let r = Lint.run source in
    let fixed, _ = Lint.apply_fixes r in
    let r' = Lint.run fixed in
    let fixed', applied' = Lint.apply_fixes r' in
    Alcotest.(check int) "second pass applies nothing" 0 applied';
    Alcotest.(check string) "byte-for-byte stable" fixed fixed'
  in
  stable wrong_dim_source;
  stable mixed_fix_source;
  if Sys.file_exists fixable then
    stable (In_channel.with_open_text fixable In_channel.input_all)

(* ----- whole-sweep legality (`vdram check`, V09xx) ----------------- *)

module Check = Vdram_lint.Check
module Certificate = Vdram_absint.Certificate

let ddr3_example =
  List.find_opt Sys.file_exists
    [ "../examples/ddr3_1gb.dram"; "examples/ddr3_1gb.dram" ]

let test_check_sweep () =
  match ddr3_example with
  | None -> ()
  | Some path ->
    let r = Check.run_file path in
    let is_v09 c = String.length c = 5 && String.sub c 0 3 = "V09" in
    Helpers.check_true "a V09xx finding fires"
      (List.exists is_v09 (codes_of r.Check.report.Lint.diagnostics));
    (match r.Check.certificate with
     | None -> Alcotest.fail "certificate expected on a clean description"
     | Some c ->
       (match c.Certificate.sweep with
        | None -> Alcotest.fail "sweep entry expected"
        | Some s ->
          Helpers.check_true "legal at the authored node"
            s.Certificate.authored_legal;
          Alcotest.(check int) "all fourteen generations swept" 14
            (List.length s.Certificate.entries);
          Helpers.check_true "an offending generation is named"
            (List.exists
               (fun (e : Certificate.sweep_entry) ->
                 (not e.Certificate.legal) && e.Certificate.violations <> [])
               s.Certificate.entries)));
    (* The proposed nop padding really clears the sweep: apply it and
       re-check. *)
    let fixed, applied = Lint.apply_fixes r.Check.report in
    Helpers.check_true "sweep finding carries a fix" (applied >= 1);
    let r' = Check.run ~file:path fixed in
    Alcotest.(check (list string)) "padded loop sweeps clean" []
      (List.filter is_v09 (codes_of r'.Check.report.Lint.diagnostics));
    match r'.Check.certificate with
    | Some { Certificate.sweep = Some s; _ } ->
      Helpers.check_true "every generation legal after the fix"
        (List.for_all
           (fun (e : Certificate.sweep_entry) -> e.Certificate.legal)
           s.Certificate.entries)
    | _ -> Alcotest.fail "certificate expected after the fix"

let test_check_samples () =
  (* The --samples cross-check: concrete configurations drawn from the
     box land inside the certified bounds, and the certificate records
     the verdict. *)
  match ddr3_example with
  | None -> ()
  | Some path ->
    let r = Check.run_file ~samples:200 ~seed:7 path in
    (match r.Check.certificate with
     | Some { Certificate.samples = Some s; _ } ->
       Alcotest.(check int) "count recorded" 200 s.Certificate.count;
       Helpers.check_true "every sample inside the bounds"
         s.Certificate.contained
     | _ -> Alcotest.fail "samples entry expected")

let test_check_broken_input () =
  (* Parse and elaboration failures surface as the report, with no
     certificate. *)
  let r = Check.run accumulating_source in
  Helpers.check_true "no certificate on errors"
    (r.Check.certificate = None);
  Helpers.check_true "errors carried in the report"
    (List.exists D.is_error r.Check.report.Lint.diagnostics)

(* ----- multi-file + exit-code contract ----------------------------- *)

let test_exit_code_contract () =
  let clean = Lint.run "Device\nPart name=t node=65nm\n" in
  let warn =
    Lint.run "Device\nPart name=t node=65nm\n\nSpecification\nIO widht=16\n"
  in
  let err = Lint.run accumulating_source in
  Alcotest.(check int) "clean -> 0" 0 (Lint.exit_code [ clean ]);
  Alcotest.(check int) "warnings tolerated -> 0" 0 (Lint.exit_code [ warn ]);
  Alcotest.(check int) "warnings denied -> 1" 1
    (Lint.exit_code ~deny_warnings:true [ warn ]);
  Alcotest.(check int) "errors -> 2" 2 (Lint.exit_code [ err ]);
  Alcotest.(check int) "errors dominate warnings" 2
    (Lint.exit_code ~deny_warnings:true [ clean; warn; err ]);
  Alcotest.(check int) "multi-file clean" 0
    (Lint.exit_code [ clean; clean ])

let test_dedup () =
  (* The dimensions pass and accumulating elaboration see the same bad
     literal; the driver must report it once. *)
  let r = Lint.run "Device\nPart name=t node=banana\n" in
  let at_span =
    List.filter
      (fun (d : D.t) -> d.D.span.Span.line = 2)
      r.Lint.diagnostics
  in
  Alcotest.(check int) "one diagnostic for one bad literal" 1
    (List.length at_span)

let suite =
  [
    Alcotest.test_case "registry self-check" `Quick test_registry_self_check;
    Alcotest.test_case "accumulates errors" `Quick test_accumulates_errors;
    Alcotest.test_case "elaborate tuple contract" `Quick
      test_elaborate_tuple_contract;
    Alcotest.test_case "fix application" `Quick test_fix_apply;
    Alcotest.test_case "suggestions" `Quick test_suggest;
    Alcotest.test_case "fix round trip" `Quick test_fix_roundtrip;
    Alcotest.test_case "wrong-dimension fix-its" `Quick test_v0101_fixit;
    Alcotest.test_case "fix preview (dry run)" `Quick test_preview_fixes;
    Alcotest.test_case "fix-only code filter" `Quick test_fix_only;
    Alcotest.test_case "unified diff renderer" `Quick test_udiff_render;
    Alcotest.test_case "multi-line fix apply" `Quick test_fix_multiline;
    Alcotest.test_case "multi-line fix edge cases" `Quick test_fix_edges;
    Alcotest.test_case "CRLF fix apply" `Quick test_fix_crlf;
    Alcotest.test_case "multi-line fix renderers" `Quick
      test_fix_multiline_render;
    Alcotest.test_case "fix idempotence" `Quick test_fix_idempotent;
    Alcotest.test_case "check sweep legality" `Quick test_check_sweep;
    Alcotest.test_case "check sampling cross-check" `Quick
      test_check_samples;
    Alcotest.test_case "check broken input" `Quick test_check_broken_input;
    Alcotest.test_case "print/parse round trip" `Quick
      test_print_parse_roundtrip;
    Alcotest.test_case "floorplan codes" `Quick test_floorplan_codes;
    Alcotest.test_case "bank legality vs aggregate" `Quick
      test_bank_legality_vs_aggregate;
    Alcotest.test_case "tRC reuse flagged" `Quick test_trc_reuse_flagged;
    Alcotest.test_case "four-activate window" `Quick
      test_four_activate_window;
    Alcotest.test_case "examples bank-legal" `Quick test_examples_bank_legal;
    Alcotest.test_case "SARIF structure" `Quick test_sarif_structure;
    Alcotest.test_case "exit codes" `Quick test_exit_code_contract;
    Alcotest.test_case "front-end dedup" `Quick test_dedup;
  ]
