(* The V10xx static dataflow band behind `vdram advise`: code
   registry, per-code detection on the committed inefficient example,
   the verified-rewrite contract, utilization sanity, and the
   soundness of the certified static energy floor. *)

module Advise = Vdram_lint.Advise
module Lint = Vdram_lint.Lint
module D = Vdram_diagnostics.Diagnostic
module Code = Vdram_diagnostics.Code
module Legality = Vdram_sim.Legality
module Timing = Vdram_sim.Timing
module Energy_model = Vdram_sim.Energy_model
module Pattern = Vdram_core.Pattern
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

let example = "../examples/inefficient.dram"

let codes_of (r : Lint.report) =
  List.sort_uniq compare (List.map (fun d -> d.D.code) r.Lint.diagnostics)

let contains ~needle hay =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let commodity () = Config.commodity ~node:Vdram_tech.Node.N65 ()

let with_example f =
  if Sys.file_exists example then f (Advise.run_file example)

(* ----- registry ---------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string)) "registry is consistent" []
    (Code.self_check ());
  List.iter
    (fun code ->
      (match Code.find code with
       | None -> Alcotest.failf "%s is not registered" code
       | Some i ->
         Helpers.check_true (code ^ " defaults to a warning")
           (i.Code.severity = Code.Warning);
         Helpers.check_true (code ^ " carries a rationale")
           (i.Code.rationale <> None));
      match Code.band_of code with
      | Some ("V10", _) -> ()
      | _ -> Alcotest.failf "%s is outside the V10 band" code)
    [ "V1001"; "V1002"; "V1003"; "V1004" ]

(* ----- the committed example trips every code ---------------------- *)

let test_example_codes () =
  with_example (fun a ->
      Alcotest.(check (list string)) "all four advice codes fire"
        [ "V1001"; "V1002"; "V1003"; "V1004" ]
        (codes_of a.Advise.report);
      Alcotest.(check int) "no errors" 0 (Lint.errors a.Advise.report))

let test_example_summary () =
  with_example (fun a ->
      match a.Advise.summary with
      | None -> Alcotest.fail "example has no dataflow summary"
      | Some s ->
        Helpers.check_true "loop is schedulable" s.Advise.schedulable;
        Alcotest.(check int) "no under-spaced windows" 0 s.Advise.underspaced;
        Helpers.check_true "floor below simulated energy"
          (s.Advise.floor <= s.Advise.energy);
        Helpers.check_true "waste above the V1004 threshold"
          (s.Advise.waste > 0.10);
        Helpers.check_true "ideal schedule is shorter"
          (s.Advise.ideal_cycles < s.Advise.cycles);
        (* A schedulable loop has no negative slack anywhere. *)
        List.iter
          (fun e ->
            if e.Advise.slack < 0 then
              Alcotest.failf "slot %d has negative slack %d on a \
                              schedulable loop" e.Advise.slot e.Advise.slack)
          s.Advise.slacks;
        (* Every power-down-eligible window clears tXP + 2 and prices
           a positive saving. *)
        List.iter
          (fun w ->
            if w.Advise.eligible then
              Helpers.check_true "eligible window saves energy"
                (w.Advise.savings > 0.0))
          s.Advise.idle)

(* The example must stay clean under every pre-existing band: lint
   (V00xx..V08xx) finds nothing to say about it. *)
let test_example_lint_clean () =
  if Sys.file_exists example then begin
    let r = Lint.run_file example in
    if r.Lint.diagnostics <> [] then
      Alcotest.failf "inefficient.dram not lint-clean:\n%s"
        (Format.asprintf "%a" Lint.pp_text r)
  end

(* ----- the verified-rewrite contract ------------------------------- *)

(* Applying the fix-its of one code must yield a description that (a)
   still parses and advises without errors, (b) prices strictly below
   the original, and (c) replays legal across the whole roadmap — the
   gate `verified` enforced before the fix was attached. *)
let check_fix_applies code =
  with_example (fun a ->
      match a.Advise.summary with
      | None -> Alcotest.fail "example has no summary"
      | Some s0 ->
        let fixed, applied = Lint.apply_fixes ~only:code a.Advise.report in
        if applied = 0 then
          Alcotest.failf "%s carries no applicable fix" code;
        let a' = Advise.run ~file:example fixed in
        Alcotest.(check int) "rewritten description advises cleanly" 0
          (Lint.errors a'.Advise.report);
        match a'.Advise.summary with
        | None -> Alcotest.fail "rewritten description has no summary"
        | Some s1 ->
          Helpers.check_true
            (code ^ " rewrite prices strictly below the original")
            (s1.Advise.energy < s0.Advise.energy);
          Helpers.check_true (code ^ " rewrite stays schedulable")
            s1.Advise.schedulable)

let test_fix_v1001 () = check_fix_applies "V1001"
let test_fix_v1002 () = check_fix_applies "V1002"

(* V1003 is advisory (power-down entry is controller policy) and the
   example's V1004 ideal schedule is too tight for the slow end of the
   roadmap, so neither may attach a fix that was not verified. *)
let test_unverified_fixes_withheld () =
  with_example (fun a ->
      List.iter
        (fun d ->
          if d.D.code = "V1003" && d.D.fixes <> [] then
            Alcotest.fail "V1003 is advisory and must not carry fixes")
        a.Advise.report.Lint.diagnostics)

(* Every fix the band proposes survives the sweep gate when re-checked
   from the outside. *)
let test_fixes_sweep_legal () =
  with_example (fun a ->
      let fixed, applied = Lint.apply_fixes a.Advise.report in
      Helpers.check_true "example carries applicable fixes" (applied > 0);
      match Vdram_dsl.Elaborate.load_string fixed with
      | Ok { Vdram_dsl.Elaborate.pattern = Some p; _ } ->
        Helpers.check_true "rewritten loop replays legal on all 14 \
                            roadmap generations" (Advise.sweep_legal p)
      | _ -> Alcotest.fail "rewritten description does not elaborate")

(* ----- utilization ------------------------------------------------- *)

let test_usage_idd4r () =
  (* A gapless read burst saturates the data bus by construction. *)
  let cfg = commodity () in
  let timing = Timing.of_config cfg in
  let banks = cfg.Config.spec.Spec.banks in
  let p = Pattern.idd4r cfg.Config.spec in
  let u = Legality.pattern_usage timing ~banks p in
  Helpers.check_true "idd4r saturates the data bus"
    (u.Legality.data_bus > 0.99);
  Helpers.check_true "utilization fractions stay in [0, 1]"
    (List.for_all
       (fun f -> f >= 0.0 && f <= 1.0)
       [ u.Legality.command_bus; u.Legality.data_bus; u.Legality.bank_open ])

let test_usage_empty () =
  let cfg = commodity () in
  let timing = Timing.of_config cfg in
  let u = Legality.pattern_usage timing ~banks:0 Pattern.idle in
  Helpers.check_true "degenerate loops report zero usage"
    (u.Legality.command_bus = 0.0 && u.Legality.data_bus = 0.0
     && u.Legality.bank_open = 0.0)

(* ----- soundness of the certified floor ---------------------------- *)

(* The static floor is an interval lower endpoint: it may never exceed
   the simulated loop energy, on any loop, legal or not.  Random
   command soups probe the claim well past the shapes advise was
   designed around. *)
let pattern_gen =
  QCheck.Gen.(
    let command =
      frequency
        [ (6, return "nop"); (2, return "act"); (2, return "rd");
          (1, return "wrt"); (2, return "pre") ]
    in
    list_size (int_range 1 80) command)

let pattern_arbitrary =
  QCheck.make ~print:(String.concat " ") pattern_gen

let test_floor_sound =
  let cfg = commodity () in
  QCheck.Test.make ~count:200
    ~name:"static floor never exceeds simulated loop energy"
    pattern_arbitrary
    (fun tokens ->
      match Pattern.parse ~name:"qcheck" (String.concat " " tokens) with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
        let floor = Advise.static_bound cfg p in
        let energy = Energy_model.loop_energy cfg p in
        if floor <= energy *. (1.0 +. 1e-9) then true
        else
          QCheck.Test.fail_reportf
            "floor %.17g above simulated energy %.17g for %s" floor energy
            (Pattern.to_string p))

(* ----- the golden rendering ---------------------------------------- *)

let test_summary_json () =
  with_example (fun a ->
      let json = Advise.to_json a in
      List.iter
        (fun needle ->
          if not (contains ~needle json) then
            Alcotest.failf "advise JSON misses %s" needle)
        [ "\"advise\":"; "\"schedulable\":true"; "\"utilization\":";
          "\"slack\":"; "\"idle_windows\":"; "\"certified_floor_j\":";
          "\"ideal_cycles\":"; "\"waste\":" ])

let suite =
  [
    Alcotest.test_case "V10xx registry" `Quick test_registry;
    Alcotest.test_case "example trips every code" `Quick test_example_codes;
    Alcotest.test_case "example summary" `Quick test_example_summary;
    Alcotest.test_case "example clean under older bands" `Quick
      test_example_lint_clean;
    Alcotest.test_case "V1001 fix verified" `Quick test_fix_v1001;
    Alcotest.test_case "V1002 fix verified" `Quick test_fix_v1002;
    Alcotest.test_case "advisory codes carry no fixes" `Quick
      test_unverified_fixes_withheld;
    Alcotest.test_case "applied fixes sweep-legal" `Quick
      test_fixes_sweep_legal;
    Alcotest.test_case "idd4r data-bus utilization" `Quick test_usage_idd4r;
    Alcotest.test_case "degenerate usage" `Quick test_usage_empty;
    Helpers.qcheck test_floor_sound;
    Alcotest.test_case "summary JSON" `Quick test_summary_json;
  ]
