(* Technology: nodes, scaling, roadmap, devices, Table II. *)

open Vdram_tech

let test_node_basics () =
  Alcotest.(check int) "14 generations" 14 (List.length Node.all);
  Alcotest.(check int) "index N170" 0 (Node.index Node.N170);
  Alcotest.(check int) "index N16" 13 (Node.index Node.N16);
  Alcotest.(check int) "generations 55->18" 6
    (Node.generations_from Node.N55 Node.N18);
  Helpers.close "feature 55" 55e-9 (Node.feature_size Node.N55);
  Alcotest.(check string) "name" "55nm" (Node.name Node.N55)

let test_node_of_nm () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "of_nm %s" (Node.name n))
        true
        (Node.of_nm (Node.feature_nm n) = n))
    Node.all;
  Alcotest.(check bool) "60nm -> N55 or N65" true
    (let n = Node.of_nm 60.0 in
     n = Node.N55 || n = Node.N65)

let test_standards () =
  Alcotest.(check string) "N170 SDR" "SDR"
    (Node.standard_name (Node.standard Node.N170));
  Alcotest.(check string) "N55 DDR3" "DDR3"
    (Node.standard_name (Node.standard Node.N55));
  Alcotest.(check string) "N16 DDR5" "DDR5"
    (Node.standard_name (Node.standard Node.N16))

let test_scaling_reference () =
  List.iter
    (fun (fam, name) ->
      Helpers.close
        (Printf.sprintf "%s = 1.0 at reference" name)
        1.0
        (Scaling.factor fam Params.reference_node))
    Scaling.families

let test_scaling_monotone () =
  (* Newer nodes never have larger technology parameters, except the
     deliberately constant cell capacitance and disruptive bumps. *)
  let monotone fam =
    let values = List.map (fun n -> Scaling.factor fam n) Node.all in
    let rec decreasing = function
      | a :: b :: rest -> a >= b && decreasing (b :: rest)
      | _ -> true
    in
    decreasing values
  in
  List.iter
    (fun (fam, name) ->
      match fam with
      | Scaling.F_c_cell ->
        Helpers.close "cell cap constant" 1.0 (Scaling.factor fam Node.N16)
      | Scaling.F_c_bitline | Scaling.F_cell_transistor ->
        (* These have disruptive upward steps; only the endpoints must
           shrink. *)
        Helpers.check_true
          (name ^ " endpoint shrink")
          (Scaling.factor fam Node.N16 < Scaling.factor fam Node.N170)
      | _ -> Helpers.check_true (name ^ " monotone") (monotone fam))
    Scaling.families

let test_scaling_disruptive_steps () =
  (* The 90 nm transition increased cells per bitline: the bitline
     factor drops less between 110 and 90 than the base rate. *)
  let f110 = Scaling.factor Scaling.F_c_bitline Node.N110
  and f90 = Scaling.factor Scaling.F_c_bitline Node.N90 in
  Helpers.check_true "bitline cap jumps at 90nm" (f90 > f110 *. 0.95);
  (* Cu at 44 nm accelerates the wire-cap shrink. *)
  let w55 = Scaling.factor Scaling.F_wire_cap Node.N55
  and w44 = Scaling.factor Scaling.F_wire_cap Node.N44 in
  Helpers.check_true "Cu step at 44nm" (w44 < w55 *. 0.93);
  (* Wire capacitance is flat beyond Cu. *)
  Helpers.close "wire cap flat after 44nm"
    (Scaling.factor Scaling.F_wire_cap Node.N44)
    (Scaling.factor Scaling.F_wire_cap Node.N16)

let test_params_at () =
  List.iter
    (fun node ->
      let p = Scaling.params_at node in
      List.iter
        (fun (name, get, _) ->
          Helpers.check_positive
            (Printf.sprintf "%s at %s" name (Node.name node))
            (get p))
        Params.fields;
      Alcotest.(check int) "bits per CSL stable" 8 p.Params.bits_per_csl)
    Node.all

let test_params_fields () =
  Alcotest.(check int) "39 technology parameters" 39 Params.count;
  Alcotest.(check int) "38 float fields" 38 (List.length Params.fields);
  (* Setters actually set their field. *)
  List.iter
    (fun (name, get, set) ->
      let p = set Params.reference 0.123 in
      Helpers.close (name ^ " set/get") 0.123 (get p))
    Params.fields

let test_devices () =
  let p = Params.reference in
  let g1 = Devices.gate_cap_of p Devices.Logic ~w:1e-6 ~l:0.1e-6 in
  let g2 = Devices.gate_cap_of p Devices.Logic ~w:2e-6 ~l:0.1e-6 in
  Helpers.close "gate cap linear in width" 2.0 (g2 /. g1);
  let hv = Devices.gate_cap_of p Devices.High_voltage ~w:1e-6 ~l:0.1e-6 in
  Helpers.check_true "thicker oxide smaller cap" (hv < g1);
  Helpers.close "device = gate + junction"
    (Devices.gate_cap_of p Devices.Logic ~w:1e-6 ~l:0.1e-6
    +. Devices.junction_cap_of p Devices.Logic ~w:1e-6)
    (Devices.device_cap p Devices.Logic ~w:1e-6 ~l:0.1e-6)

let test_roadmap () =
  List.iter
    (fun (g : Roadmap.t) ->
      let name = Node.name g.Roadmap.node in
      let die = Roadmap.die_area_estimate g *. 1e6 in
      Helpers.check_true
        (Printf.sprintf "die %s in window (%.1f mm2)" name die)
        (die >= 25.0 && die <= 65.0);
      Alcotest.(check int) ("x16 " ^ name) 16 g.Roadmap.io_width;
      Helpers.check_true (name ^ " core freq near 200MHz")
        (let f = Roadmap.core_frequency g /. 1e6 in
         f >= 125.0 && f <= 210.0);
      Helpers.check_true (name ^ " addresses partition density")
        (float_of_int
           (g.Roadmap.banks * Roadmap.rows_per_bank g * g.Roadmap.page_bits)
         = g.Roadmap.density_bits))
    Roadmap.all;
  (* Monotone trends along the roadmap (Figs 11 and 12). *)
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun ((a : Roadmap.t), (b : Roadmap.t)) ->
      Helpers.check_true "datarate non-decreasing"
        (b.Roadmap.datarate >= a.Roadmap.datarate);
      Helpers.check_true "vdd non-increasing" (b.Roadmap.vdd <= a.Roadmap.vdd);
      Helpers.check_true "vint non-increasing"
        (b.Roadmap.vint <= a.Roadmap.vint);
      Helpers.check_true "vpp non-increasing" (b.Roadmap.vpp <= a.Roadmap.vpp);
      Helpers.check_true "trc non-increasing" (b.Roadmap.trc <= a.Roadmap.trc);
      Helpers.check_true "density non-decreasing"
        (b.Roadmap.density_bits >= a.Roadmap.density_bits))
    (pairs Roadmap.all)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table2 () =
  Alcotest.(check int) "Table II has nine entries" 9
    (List.length Disruptive.all);
  Helpers.check_true "mentions 6F2 open bitline"
    (List.exists
       (fun (d : Disruptive.t) -> contains ~needle:"6F2" d.Disruptive.change)
       Disruptive.all);
  Helpers.check_true "mentions Cu metallization"
    (List.exists
       (fun (d : Disruptive.t) -> contains ~needle:"Cu" d.Disruptive.change)
       Disruptive.all);
  Helpers.check_true "mentions high-k"
    (List.exists
       (fun (d : Disruptive.t) ->
         contains ~needle:"High-k" d.Disruptive.change)
       Disruptive.all)

let test_roadmap_structure () =
  let g n = Roadmap.generation n in
  Alcotest.(check int) "SDR 4 banks" 4 (g Node.N170).Roadmap.banks;
  Alcotest.(check int) "DDR3 8 banks" 8 (g Node.N55).Roadmap.banks;
  Alcotest.(check int) "DDR4 16 banks" 16 (g Node.N31).Roadmap.banks;
  Alcotest.(check int) "DDR5 32 banks" 32 (g Node.N18).Roadmap.banks;
  Alcotest.(check int) "SDR page 1KB" 8192 (g Node.N170).Roadmap.page_bits;
  Alcotest.(check int) "DDR3 page 2KB" 16384 (g Node.N55).Roadmap.page_bits;
  Alcotest.(check int) "SDR prefetch 1" 1 (g Node.N170).Roadmap.prefetch;
  Alcotest.(check int) "DDR5 prefetch 32" 32 (g Node.N16).Roadmap.prefetch;
  Helpers.close "8F2 era" 8.0 (g Node.N90).Roadmap.cell_factor;
  Helpers.close "6F2 era" 6.0 (g Node.N55).Roadmap.cell_factor;
  Helpers.close "4F2 era" 4.0 (g Node.N18).Roadmap.cell_factor

let test_roadmap_address_bits () =
  List.iter
    (fun (g : Roadmap.t) ->
      let reconstructed =
        float_of_int
          ((1 lsl Roadmap.bank_address_bits g)
          * (1 lsl Roadmap.row_address_bits g)
          * (1 lsl Roadmap.column_address_bits g)
          * g.Roadmap.io_width)
      in
      Helpers.close
        (Node.name g.Roadmap.node ^ " addresses reconstruct density")
        g.Roadmap.density_bits reconstructed)
    Roadmap.all

let test_scaling_numeric_anchor () =
  (* One step of feature shrink is exactly 16%. *)
  Helpers.close_rel ~rel:1e-9 "one f-shrink step" 0.84
    (Scaling.factor Scaling.F_feature Node.N44);
  (* Going backward one step divides it out. *)
  Helpers.close_rel ~rel:1e-9 "backward step" (1.0 /. 0.84)
    (Scaling.factor Scaling.F_feature Node.N65);
  (* 3-D access transistor bump at 75 nm (Table II): the factor grows
     from 90 to 75 instead of shrinking. *)
  let f90 = Scaling.factor Scaling.F_cell_transistor Node.N90
  and f75 = Scaling.factor Scaling.F_cell_transistor Node.N75 in
  Helpers.check_true "3-D transistor bump" (f75 > f90)

let test_params_reference_identity () =
  (* params_at at the reference node is the reference itself. *)
  let p = Scaling.params_at Params.reference_node in
  List.iter
    (fun (name, get, _) ->
      Helpers.close (name ^ " at reference") (get Params.reference) (get p))
    Params.fields

let test_retention () =
  Helpers.close "reference scale" 1.0
    (Retention.interval_scale ~celsius:85.0);
  Helpers.close "10C cooler doubles" 2.0
    (Retention.interval_scale ~celsius:75.0);
  Helpers.close "10C hotter halves" 0.5
    (Retention.interval_scale ~celsius:95.0);
  Helpers.close "tREFI at 85C" 7.8e-6 (Retention.trefi ~celsius:85.0);
  Helpers.check_true "monotone in temperature"
    (Retention.interval_scale ~celsius:45.0
    > Retention.interval_scale ~celsius:65.0)

let scaling_factor_positive =
  QCheck.Test.make ~name:"scaling factors positive and bounded" ~count:200
    QCheck.(pair (int_range 0 10) (int_range 0 13))
    (fun (fam_idx, node_idx) ->
      let fam, _ = List.nth Vdram_tech.Scaling.families fam_idx in
      let node = List.nth Node.all node_idx in
      let f = Scaling.factor fam node in
      f > 0.0 && f < 100.0)

let suite =
  [
    Alcotest.test_case "node basics" `Quick test_node_basics;
    Alcotest.test_case "node of_nm" `Quick test_node_of_nm;
    Alcotest.test_case "standards per node" `Quick test_standards;
    Alcotest.test_case "scaling reference = 1" `Quick test_scaling_reference;
    Alcotest.test_case "scaling monotone" `Quick test_scaling_monotone;
    Alcotest.test_case "disruptive steps (Table II)" `Quick
      test_scaling_disruptive_steps;
    Alcotest.test_case "scaled parameters positive" `Quick test_params_at;
    Alcotest.test_case "parameter fields" `Quick test_params_fields;
    Alcotest.test_case "device capacitances" `Quick test_devices;
    Alcotest.test_case "roadmap consistency" `Quick test_roadmap;
    Alcotest.test_case "Table II contents" `Quick test_table2;
    Alcotest.test_case "roadmap structure" `Quick test_roadmap_structure;
    Alcotest.test_case "address bits reconstruct density" `Quick
      test_roadmap_address_bits;
    Alcotest.test_case "scaling numeric anchors" `Quick
      test_scaling_numeric_anchor;
    Alcotest.test_case "reference identity" `Quick
      test_params_reference_identity;
    Alcotest.test_case "retention vs temperature" `Quick test_retention;
    Helpers.qcheck scaling_factor_positive;
  ]
