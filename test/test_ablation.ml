(* Design-choice ablations. *)

open Vdram_analysis
module Node = Vdram_tech.Node

let node = Node.N55

let test_activation_granularity () =
  let pts =
    Ablation.page_size ~node ~pages:[ 2048; 4096; 8192; 16384 ] ()
  in
  Alcotest.(check int) "four points" 4 (List.length pts);
  (* Activate energy grows with activation size; die area is
     untouched (same structure). *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Helpers.check_true "activate energy grows with activation"
        (b.Ablation.activate_energy > a.Ablation.activate_energy);
      Helpers.close "area unchanged" a.Ablation.die_area b.Ablation.die_area;
      check rest
    | _ -> ()
  in
  check pts;
  let first = List.hd pts and last = List.nth pts 3 in
  Helpers.check_true "small activation cheaper on random access"
    (first.Ablation.power < last.Ablation.power)

let test_bitline_length () =
  let pts = Ablation.bitline_length ~node ~bits:[ 256; 512; 1024 ] () in
  let p256 = List.nth pts 0 and p512 = List.nth pts 1
  and p1024 = List.nth pts 2 in
  (* Energy versus area: short bitlines cost stripes (lower array
     efficiency) but save activate energy. *)
  Helpers.check_true "short bitlines save activate energy"
    (p256.Ablation.activate_energy < p512.Ablation.activate_energy
    && p512.Ablation.activate_energy < p1024.Ablation.activate_energy);
  Helpers.check_true "short bitlines cost array efficiency"
    (p256.Ablation.array_efficiency < p512.Ablation.array_efficiency
    && p512.Ablation.array_efficiency < p1024.Ablation.array_efficiency)

let test_bitline_style () =
  match Ablation.bitline_style ~node () with
  | [ open_bl; folded ] ->
    (* Table II: the move to 6F2 open bitline "leads to smaller die
       size". *)
    Helpers.check_true "open (6F2) die smaller"
      (open_bl.Ablation.die_area < folded.Ablation.die_area);
    Helpers.check_true "folded not cheaper in power"
      (folded.Ablation.power >= open_bl.Ablation.power *. 0.98)
  | _ -> Alcotest.fail "expected two style points"

let test_prefetch () =
  let pts = Ablation.prefetch ~node ~prefetches:[ 2; 4; 8; 16 ] () in
  Alcotest.(check int) "four points" 4 (List.length pts);
  (* Higher prefetch at the same pin rate moves more bits per row
     cycle: random-access energy per bit falls. *)
  let epb i = (List.nth pts i).Ablation.energy_per_bit in
  Helpers.check_true "energy per bit falls with prefetch"
    (epb 3 < epb 0)

let test_subarray_height () =
  let pts = Ablation.subarray_height ~node ~bits:[ 256; 512; 1024 ] () in
  (* Wordline segmentation is an area choice, nearly energy-neutral:
     local wordline capacitance per page is constant. *)
  let p256 = List.nth pts 0 and p1024 = List.nth pts 2 in
  Helpers.check_true "nearly energy-neutral"
    (Float.abs (p256.Ablation.power -. p1024.Ablation.power)
     /. p256.Ablation.power
    < 0.05);
  Helpers.check_true "but costs area"
    (p256.Ablation.array_efficiency < p1024.Ablation.array_efficiency)

let suite =
  [
    Alcotest.test_case "activation granularity" `Slow
      test_activation_granularity;
    Alcotest.test_case "bitline length trade-off" `Slow test_bitline_length;
    Alcotest.test_case "open vs folded bitline" `Slow test_bitline_style;
    Alcotest.test_case "prefetch choice" `Slow test_prefetch;
    Alcotest.test_case "wordline segmentation" `Slow test_subarray_height;
  ]
