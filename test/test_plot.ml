(* ASCII chart rendering. *)

open Vdram_plot

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_line_dimensions () =
  let s =
    Chart.line ~width:40 ~height:10
      [ Chart.series ~label:"a" [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ] ]
  in
  let ls = lines s in
  (* 10 grid rows + axis + x labels + 1 legend row. *)
  Alcotest.(check int) "line count" 13 (List.length ls);
  Helpers.check_true "glyph present" (String.contains s '*');
  Helpers.check_true "legend present"
    (List.exists (fun l -> String.length l > 0 && String.contains l 'a')
       ls)

let test_line_monotone_mapping () =
  (* A rising series puts its glyph higher (earlier row) for larger
     x: find the leftmost and rightmost stars. *)
  let s =
    Chart.line ~width:20 ~height:8
      [ Chart.series ~label:"up" [ (0.0, 0.0); (10.0, 10.0) ] ]
  in
  let stars = ref [] in
  List.iteri
    (fun i row ->
      String.iteri (fun j c -> if c = '*' then stars := (i, j) :: !stars) row)
    (lines s);
  (* Drop the legend's glyph (it sits below the grid, on the last
     collected rows). *)
  let grid_stars =
    List.filter (fun (_, j) -> j > 10) !stars
  in
  let leftmost =
    List.fold_left (fun a (_, j) -> min a j) max_int grid_stars
  and rightmost =
    List.fold_left (fun a (_, j) -> max a j) min_int grid_stars
  in
  let row_at col =
    fst (List.find (fun (_, j) -> j = col) grid_stars)
  in
  Helpers.check_true "right-side point sits higher"
    (row_at rightmost < row_at leftmost)

let test_line_log_scale () =
  let s =
    Chart.line ~log_y:true
      [ Chart.series ~label:"decades" [ (0.0, 1.0); (1.0, 1000.0) ] ]
  in
  Helpers.check_true "renders" (String.length s > 0);
  (* Top tick is near 1000, bottom near 1. *)
  Helpers.check_true "top tick ~1e3"
    (String.length s > 0 && String.contains s '1')

let test_line_degenerate () =
  Alcotest.(check string) "empty" "(no data to plot)\n" (Chart.line []);
  let s =
    Chart.line [ Chart.series ~label:"nan" [ (Float.nan, 1.0) ] ]
  in
  Alcotest.(check string) "all NaN" "(no data to plot)\n" s;
  let s = Chart.line [ Chart.series ~label:"one" [ (1.0, 2.0) ] ] in
  Helpers.check_true "single point renders" (String.contains s '*')

let test_bars () =
  let s = Chart.bars [ ("big", 10.0); ("small", -5.0) ] in
  let ls = lines s in
  Alcotest.(check int) "two rows" 2 (List.length ls);
  let count_hashes l = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 l in
  (match ls with
   | [ big; small ] ->
     Helpers.check_true "bars scale with magnitude"
       (count_hashes big > count_hashes small);
     Helpers.check_true "negative goes left of the axis"
       (let axis = String.index small '|' in
        String.index small '#' < axis)
   | _ -> Alcotest.fail "rows");
  Alcotest.(check string) "empty bars" "(no data to plot)\n" (Chart.bars [])

let test_bars_zero () =
  (* All-zero values must not divide by zero. *)
  let s = Chart.bars [ ("z", 0.0) ] in
  Helpers.check_true "renders" (String.length s > 0)

let test_sparkline () =
  let s = Chart.sparkline [ 1.0; 2.0; 3.0; 2.0; 1.0 ] in
  Alcotest.(check int) "one cell per value" 5 (String.length s);
  Alcotest.(check string) "empty" "" (Chart.sparkline []);
  Alcotest.(check string) "nan filtered" "" (Chart.sparkline [ Float.nan ]);
  (* Extremes map to the lightest and heaviest glyphs. *)
  Helpers.check_true "low then high differ"
    (s.[0] <> s.[2])

let sparkline_length =
  QCheck.Test.make ~name:"sparkline length equals input" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (float_range (-1e6) 1e6))
    (fun values ->
      String.length (Chart.sparkline values) = List.length values)

let bars_never_crash =
  QCheck.Test.make ~name:"bars never raise" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20)
              (pair (string_of_size (Gen.int_range 0 30)) float))
    (fun entries ->
      let entries =
        List.map (fun (l, v) -> (l, if Float.is_finite v then v else 0.0))
          entries
      in
      ignore (Chart.bars entries);
      true)

let suite =
  [
    Alcotest.test_case "line dimensions" `Quick test_line_dimensions;
    Alcotest.test_case "monotone mapping" `Quick test_line_monotone_mapping;
    Alcotest.test_case "log scale" `Quick test_line_log_scale;
    Alcotest.test_case "degenerate inputs" `Quick test_line_degenerate;
    Alcotest.test_case "bars" `Quick test_bars;
    Alcotest.test_case "all-zero bars" `Quick test_bars_zero;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Helpers.qcheck sparkline_length;
    Helpers.qcheck bars_never_crash;
  ]
