(* Predefined devices, generations and architecture variants. *)

module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Pattern = Vdram_core.Pattern
module Spec = Vdram_core.Spec
module Node = Vdram_tech.Node
open Vdram_configs

let test_devices_inventory () =
  Alcotest.(check int) "three Table III devices" 3
    (List.length Devices.table3_devices);
  Helpers.close "128M density" (Devices.mb 128.0)
    Devices.sdr_128m.Config.spec.Spec.density_bits;
  Helpers.close "16G density" (Devices.mb 16384.0)
    Devices.ddr5_16g.Config.spec.Spec.density_bits;
  Alcotest.(check int) "DDR5 banks" 32
    Devices.ddr5_16g.Config.spec.Spec.banks

let test_page_per_width () =
  let x4 = Devices.ddr3_1g ~io_width:4 ~node:Node.N65 ()
  and x16 = Devices.ddr3_1g ~io_width:16 ~node:Node.N65 () in
  Alcotest.(check int) "x4 1KB page" 8192 (Config.page_bits x4);
  Alcotest.(check int) "x16 2KB page" 16384 (Config.page_bits x16)

let test_generations () =
  Alcotest.(check int) "14 generation configs" 14
    (List.length Generations.all);
  List.iter
    (fun cfg ->
      Helpers.check_positive
        (cfg.Config.name ^ " idle power")
        (Model.background_power cfg);
      Helpers.check_positive
        (cfg.Config.name ^ " Idd7 power")
        (Helpers.power cfg (Pattern.idd7 cfg.Config.spec)))
    Generations.all

let test_graphics_variant () =
  let node = Node.N55 in
  let gddr = Variants.graphics ~node ()
  and base = Generations.at node in
  Alcotest.(check int) "x32 interface" 32 gddr.Config.spec.Spec.io_width;
  Helpers.check_true "much higher pin rate"
    (gddr.Config.spec.Spec.datarate > 3.0 *. base.Config.spec.Spec.datarate);
  Alcotest.(check int) "twice the banks"
    (2 * base.Config.spec.Spec.banks)
    gddr.Config.spec.Spec.banks;
  (* More partitioned: the column select lines are shorter. *)
  Helpers.check_true "shorter CSL"
    (Vdram_floorplan.Array_geometry.csl_length (Config.geometry gddr)
    < Vdram_floorplan.Array_geometry.csl_length (Config.geometry base));
  (* Optimised for total data rate: much higher absolute power, lower
     energy per streamed bit. *)
  let epb cfg =
    Option.get
      (Model.energy_per_bit cfg (Pattern.idd4r cfg.Config.spec))
  in
  Helpers.check_true "burns more power"
    (Helpers.power gddr (Pattern.idd4r gddr.Config.spec)
    > Helpers.power base (Pattern.idd4r base.Config.spec));
  Helpers.check_true "cheaper per streamed bit" (epb gddr < epb base)

let test_mobile_variant () =
  let node = Node.N55 in
  let lp = Variants.mobile ~node ()
  and base = Generations.at node in
  (* The whole point: far lower standby power. *)
  Helpers.check_true "standby at least 3x lower"
    (Model.state_power lp Model.Precharge_standby
    < Model.state_power base Model.Precharge_standby /. 3.0);
  Helpers.check_true "self-refresh lower too"
    (Model.state_power lp Model.Self_refresh
    < Model.state_power base Model.Self_refresh);
  Helpers.check_true "no DLL"
    (not
       (List.exists
          (fun b ->
            b.Vdram_circuits.Logic_block.name = "DLL / clock synchronisation")
          lp.Config.logic));
  (* Edge pads add an extra data-bus segment. *)
  let segs cfg =
    match Config.bus cfg Vdram_circuits.Bus.Read_data with
    | Some b -> List.length b.Vdram_circuits.Bus.segments
    | None -> 0
  in
  Alcotest.(check int) "edge-pad segment" (segs base + 1) (segs lp)

let test_standby_comparison () =
  let rows =
    Variants.standby_comparison
      [ Devices.ddr3_2g; Variants.mobile ~node:Node.N55 () ]
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (_, standby, selfref) ->
      Helpers.check_positive "standby" standby;
      Helpers.check_positive "self-refresh" selfref)
    rows

let suite =
  [
    Alcotest.test_case "device inventory" `Quick test_devices_inventory;
    Alcotest.test_case "page per width" `Quick test_page_per_width;
    Alcotest.test_case "generation configs" `Slow test_generations;
    Alcotest.test_case "graphics variant (Section II)" `Quick
      test_graphics_variant;
    Alcotest.test_case "mobile variant (Section II)" `Quick
      test_mobile_variant;
    Alcotest.test_case "standby comparison" `Quick test_standby_comparison;
  ]
