(* Abstract interpretation layer: interval domain soundness, per-stage
   containment of concrete evaluations, bound certificates against
   random sweeps, monotonicity certificates. *)

module I = Vdram_units.Interval
module Abox = Vdram_absint.Abox
module Aeval = Vdram_absint.Aeval
module Bounds = Vdram_absint.Bounds
module Monotone = Vdram_absint.Monotone
module Certificate = Vdram_absint.Certificate
module Lenses = Vdram_analysis.Lenses
module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Report = Vdram_core.Report
module Operation = Vdram_core.Operation
module Pattern = Vdram_core.Pattern
module C = Vdram_circuits.Contribution

let base () = Lazy.force Helpers.ddr3_1g

let patterns cfg =
  let spec = cfg.Config.spec in
  [
    Pattern.idd0 spec;
    Pattern.idd4r spec;
    Pattern.idd4w spec;
    Pattern.idd7_mixed spec;
    Pattern.idle;
  ]

(* ----- interval arithmetic soundness ------------------------------- *)

(* An interval plus a member: endpoints from a wide float range, the
   member interpolated between them. *)
let member_gen =
  QCheck.Gen.(
    let* lo = float_range (-1e6) 1e6 in
    let* w = float_range 0.0 1e6 in
    let* t = float_range 0.0 1.0 in
    let hi = lo +. w in
    let x = lo +. (t *. (hi -. lo)) in
    let x = Float.max lo (Float.min hi x) in
    return (I.v lo hi, x))

let interval_member =
  QCheck.make
    ~print:(fun (i, x) -> Printf.sprintf "%s ∋ %.17g" (I.to_string i) x)
    member_gen

let test_interval_ops =
  QCheck.Test.make ~name:"interval ops contain concrete results"
    ~count:2000
    (QCheck.pair interval_member interval_member)
    (fun ((a, x), (b, y)) ->
      I.contains (I.add a b) (x +. y)
      && I.contains (I.sub a b) (x -. y)
      && I.contains (I.mul a b) (x *. y)
      && I.contains (I.div a b) (x /. y)
      && I.contains (I.sq a) (x *. x)
      && I.contains (I.neg a) (-.x)
      && I.contains (I.min_ a b) (Float.min x y)
      && I.contains (I.max_ a b) (Float.max x y))

let test_interval_basics () =
  Helpers.check_true "top contains nan" (I.contains I.top Float.nan);
  Helpers.check_true "point is point" (I.is_point (I.point 3.0));
  Helpers.check_true "div by zero-crossing is top"
    (I.is_top (I.div I.one (I.v (-1.0) 1.0)));
  Helpers.check_true "hull contains both"
    (let h = I.hull (I.point 1.0) (I.point 2.0) in
     I.contains h 1.0 && I.contains h 2.0);
  let a, b = I.split (I.v 0.0 4.0) in
  Helpers.check_true "split covers"
    (I.contains a 1.0 && I.contains b 3.0 && (a : I.t).hi = (b : I.t).lo)

(* ----- boxes and per-stage containment ----------------------------- *)

(* A random box over the stock lens inventory plus a concrete member:
   1–4 distinct axes, each over a random sub-range of (0.7, 1.3), and
   one scale inside each. *)
let box_gen =
  QCheck.Gen.(
    let lenses = Array.of_list Lenses.all in
    let* n = int_range 1 4 in
    let* idxs =
      List.init n (fun _ -> int_bound (Array.length lenses - 1))
      |> flatten_l
    in
    let idxs = List.sort_uniq compare idxs in
    let* specs =
      flatten_l
        (List.map
           (fun i ->
             let* lo = float_range 0.7 1.0 in
             let* w = float_range 0.0 0.3 in
             let* t = float_range 0.0 1.0 in
             let hi = lo +. w in
             let s = lo +. (t *. (hi -. lo)) in
             let s = Float.max lo (Float.min hi s) in
             return (lenses.(i), lo, hi, s))
           idxs)
    in
    let* p = int_bound 4 in
    return (specs, p))

let box_case =
  QCheck.make
    ~print:(fun (specs, p) ->
      String.concat "; "
        (List.map
           (fun ((l : Lenses.t), lo, hi, s) ->
             Printf.sprintf "%s in [%g,%g] at %g" l.Lenses.name lo hi s)
           specs)
      ^ Printf.sprintf " (pattern %d)" p)
    box_gen

let stage_containment (specs, p) =
  let cfg = base () in
  let axes =
    List.map (fun (lens, lo, hi, _) -> Abox.axis lens ~lo ~hi) specs
  in
  let scales = List.map (fun (_, _, _, s) -> s) specs in
  let box = Abox.v ~base:cfg axes in
  let concrete = Abox.instantiate box scales in
  let pattern = List.nth (patterns cfg) p in
  let stages = Aeval.analyze box pattern in
  (* Stage 1: every contribution of every operation. *)
  List.iter
    (fun (kind, abs_cs) ->
      let conc_cs = Operation.contributions concrete kind in
      if List.length conc_cs <> List.length abs_cs then
        Alcotest.failf "%s: contribution count mismatch"
          (Operation.name kind);
      List.iter2
        (fun (c : C.t) (a : Aeval.contribution) ->
          if c.C.label <> a.Aeval.label then
            Alcotest.failf "%s: label %s vs %s" (Operation.name kind)
              c.C.label a.Aeval.label;
          if not (I.contains a.Aeval.energy c.C.energy) then
            Alcotest.failf "%s/%s: %.17g outside %s" (Operation.name kind)
              c.C.label c.C.energy
              (I.to_string a.Aeval.energy))
        conc_cs abs_cs)
    stages.Aeval.op_contributions;
  (* Stage 2: per-operation energies at Vdd. *)
  List.iter
    (fun (kind, interval) ->
      let e = Operation.energy concrete kind in
      if not (I.contains interval e) then
        Alcotest.failf "energy %s: %.17g outside %s" (Operation.name kind)
          e (I.to_string interval))
    stages.Aeval.op_energy;
  (* Stage 3: background power. *)
  let bg = Model.background_power concrete in
  if not (I.contains stages.Aeval.background bg) then
    Alcotest.failf "background: %.17g outside %s" bg
      (I.to_string stages.Aeval.background);
  (* Stage 4: the pattern mix. *)
  let report = Model.pattern_power concrete pattern in
  if not (I.contains stages.Aeval.power report.Report.power) then
    Alcotest.failf "power: %.17g outside %s" report.Report.power
      (I.to_string stages.Aeval.power);
  if not (I.contains stages.Aeval.current report.Report.current) then
    Alcotest.failf "current: %.17g outside %s" report.Report.current
      (I.to_string stages.Aeval.current);
  (match (stages.Aeval.energy_per_bit, report.Report.energy_per_bit) with
   | Some interval, Some e ->
     if not (I.contains interval e) then
       Alcotest.failf "energy/bit: %.17g outside %s" e
         (I.to_string interval)
   | None, None -> ()
   | _ -> Alcotest.fail "energy/bit: abstract and concrete disagree");
  true

let test_stage_containment =
  QCheck.Test.make
    ~name:"concrete evaluation inside abstract bounds at every stage"
    ~count:150 box_case stage_containment

let test_field_exact () =
  let cfg = base () in
  let lens = List.hd Lenses.voltages in
  let box = Abox.v ~base:cfg [ Abox.axis lens ~lo:0.9 ~hi:1.1 ] in
  let vdd c = c.Config.domains.Vdram_circuits.Domains.vdd in
  let i = Abox.field box vdd in
  let nominal = vdd cfg in
  Helpers.check_true "endpoints are the corner evaluations"
    ((i : I.t).lo = nominal *. 0.9 && (i : I.t).hi = nominal *. 1.1);
  (* A field no axis moves stays a point. *)
  let j =
    Abox.field box (fun c -> c.Config.tech.Vdram_tech.Params.c_bitline)
  in
  Helpers.check_true "untouched field is a point" (I.is_point j)

let test_instantiate_validates () =
  let cfg = base () in
  let lens = List.hd Lenses.voltages in
  let box = Abox.v ~base:cfg [ Abox.axis lens ~lo:0.9 ~hi:1.1 ] in
  (match Abox.instantiate box [ 1.5 ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "scale outside axis accepted");
  match Abox.v ~base:cfg [ Abox.axis lens ~lo:0.9 ~hi:1.1;
                           Abox.axis lens ~lo:0.9 ~hi:1.1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate axes accepted"

(* ----- bound refinement -------------------------------------------- *)

let test_refinement_tightens () =
  let cfg = base () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let axes = List.map Abox.default_axis Lenses.voltages in
  let box = Abox.v ~base:cfg axes in
  let coarse = Bounds.compute ~splits:0 box pattern in
  let fine = Bounds.compute ~splits:3 box pattern in
  Helpers.check_true "refined power bound inside coarse bound"
    (I.subset fine.Bounds.power coarse.Bounds.power);
  Helpers.check_true "refinement evaluated several pieces"
    (fine.Bounds.pieces > 1);
  (* Power is corner-exact (every factor enters monotonically), so
     tightening shows where interval dependency bites: the current,
     whose Vdd appears in both numerator and denominator. *)
  Helpers.check_true "refined current bound strictly tighter"
    (I.width fine.Bounds.current < I.width coarse.Bounds.current)

(* ----- certificates against a random sweep ------------------------- *)

(* The acceptance check: bounds over the example device's certified
   lens ranges contain the concrete results of a 1000-sample random
   sweep. *)
let certificate_config () =
  (* dune runtest runs in _build/default/test; dune exec from the
     workspace root. *)
  let candidates =
    [ "../examples/ddr3_1gb.dram"; "examples/ddr3_1gb.dram" ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.fail "examples/ddr3_1gb.dram missing from test deps"
  in
  match Vdram_dsl.Elaborate.load_file path with
  | Error e ->
    Alcotest.failf "%s: %s" path
      (Format.asprintf "%a" Vdram_dsl.Parser.pp_error e)
  | Ok elab -> elab.Vdram_dsl.Elaborate.config

let test_certificate_contains_sweep () =
  let cfg = certificate_config () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let axes =
    List.map Abox.default_axis (Lenses.voltages @ Lenses.interface)
  in
  let box = Abox.v ~base:cfg axes in
  let bounds = Bounds.compute ~splits:4 box pattern in
  let rng = Random.State.make [| 0x5eed |] in
  let samples = 1000 in
  for _ = 1 to samples do
    let scales =
      List.map
        (fun (a : Abox.axis) ->
          let s = a.Abox.scale in
          (s : I.t).lo
          +. (Random.State.float rng 1.0 *. ((s : I.t).hi -. (s : I.t).lo)))
        (Abox.axes box)
    in
    let concrete = Abox.instantiate box scales in
    let report = Model.pattern_power concrete pattern in
    if not (I.contains bounds.Bounds.power report.Report.power) then
      Alcotest.failf "sampled power %.17g outside certified %s"
        report.Report.power
        (I.to_string bounds.Bounds.power);
    if not (I.contains bounds.Bounds.current report.Report.current) then
      Alcotest.failf "sampled current %.17g outside certified %s"
        report.Report.current
        (I.to_string bounds.Bounds.current);
    match (bounds.Bounds.energy_per_bit, report.Report.energy_per_bit) with
    | Some interval, Some e ->
      if not (I.contains interval e) then
        Alcotest.failf "sampled energy/bit %.17g outside certified %s" e
          (I.to_string interval)
    | _ -> Alcotest.fail "energy/bit missing for a data pattern"
  done;
  (* The certified envelope is useful, not vacuous: within a factor
     of two of the nominal on both sides. *)
  let nominal = (Model.pattern_power cfg pattern).Report.power in
  Helpers.check_true "lower bound within 2x of nominal"
    ((bounds.Bounds.power : I.t).lo > nominal /. 2.0);
  Helpers.check_true "upper bound within 2x of nominal"
    ((bounds.Bounds.power : I.t).hi < nominal *. 2.0)

let test_certificate_json () =
  let cfg = base () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let axes = List.map Abox.default_axis Lenses.voltages in
  let box = Abox.v ~base:cfg axes in
  let bounds = Bounds.compute ~splits:2 box pattern in
  let mono =
    [
      Monotone.certify ~base:cfg ~lens:(List.hd Lenses.voltages) ~lo:0.9
        ~hi:1.1 ~metric:Monotone.Power pattern;
    ]
  in
  let cert =
    Certificate.v ~config:cfg ~pattern ~box ~splits:2 ~bounds
      ~monotonicity:mono ()
  in
  let json = Certificate.to_json cert in
  let mentions needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i =
      i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Helpers.check_true
        (Printf.sprintf "certificate JSON mentions %s" needle)
        (mentions needle))
    [ "certificate_version"; "monotonicity"; "bounds"; "power";
      "model_version"; "axes" ]

(* ----- monotonicity ------------------------------------------------ *)

let test_monotone_vdd () =
  let cfg = base () in
  let pattern = Pattern.idd7_mixed cfg.Config.spec in
  let lens =
    match Lenses.find "external voltage Vdd" with
    | Some l -> l
    | None -> Alcotest.fail "Vdd lens missing"
  in
  let cert =
    Monotone.certify ~base:cfg ~lens ~lo:0.9 ~hi:1.1
      ~metric:Monotone.Power pattern
  in
  (match cert.Monotone.direction with
   | Some Monotone.Increasing -> ()
   | Some Monotone.Decreasing ->
     Alcotest.fail "power certified decreasing in Vdd"
   | None -> Alcotest.fail "power vs Vdd not certified");
  Helpers.check_true "resolution positive"
    (cert.Monotone.resolution > 0.0);
  (* The certified semantics, sampled: scales at least one resolution
     apart are ordered. *)
  let f s =
    (Model.pattern_power (Lenses.scale lens s cfg) pattern).Report.power
  in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 100 do
    let x = 0.9 +. Random.State.float rng (0.2 -. cert.Monotone.resolution) in
    let y = x +. cert.Monotone.resolution in
    if f x > f y then
      Alcotest.failf "certified ordering violated at %g < %g" x y
  done

let test_monotone_interface () =
  let cfg = base () in
  let pattern = Pattern.idd4r cfg.Config.spec in
  let lens =
    match Lenses.find "DQ pre-driver load" with
    | Some l -> l
    | None -> Alcotest.fail "DQ pre-driver lens missing"
  in
  let cert =
    Monotone.certify ~base:cfg ~lens ~lo:0.8 ~hi:1.2
      ~metric:Monotone.Energy_per_bit pattern
  in
  match cert.Monotone.direction with
  | Some Monotone.Increasing -> ()
  | _ -> Alcotest.fail "energy/bit not certified increasing in DQ load"

let suite =
  [
    Alcotest.test_case "interval basics" `Quick test_interval_basics;
    Helpers.qcheck test_interval_ops;
    Helpers.qcheck test_stage_containment;
    Alcotest.test_case "field ranges exact" `Quick test_field_exact;
    Alcotest.test_case "box validation" `Quick test_instantiate_validates;
    Alcotest.test_case "refinement tightens" `Quick
      test_refinement_tightens;
    Alcotest.test_case "certificate contains 1000-sample sweep" `Quick
      test_certificate_contains_sweep;
    Alcotest.test_case "certificate JSON" `Quick test_certificate_json;
    Alcotest.test_case "monotone: power vs Vdd" `Quick test_monotone_vdd;
    Alcotest.test_case "monotone: energy/bit vs DQ load" `Quick
      test_monotone_interface;
  ]
