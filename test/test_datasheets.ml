(* Datasheet database and Figure 8/9 verification shapes. *)

open Vdram_datasheets

let test_point_stats () =
  let p =
    { Idd.test = Idd.Idd0; datarate_mbps = 533; io_width = 4;
      vendors_ma = [ 70.0; 75.0; 80.0 ] }
  in
  Alcotest.(check string) "label" "Idd0 533 x4" (Idd.label p);
  Helpers.close "min" 70.0 (Idd.min_ma p);
  Helpers.close "max" 80.0 (Idd.max_ma p);
  Helpers.close "mean" 75.0 (Idd.mean_ma p)

let test_families_complete () =
  Alcotest.(check int) "DDR2 points" 24 (List.length Idd.ddr2_1g.Idd.points);
  Alcotest.(check int) "DDR3 points" 18 (List.length Idd.ddr3_1g.Idd.points);
  List.iter
    (fun (p : Idd.point) ->
      Alcotest.(check int)
        (Idd.label p ^ " has five vendors")
        5
        (List.length p.Idd.vendors_ma);
      Helpers.check_true (Idd.label p ^ " spread sane")
        (Idd.max_ma p < Idd.min_ma p *. 1.5))
    (Idd.ddr2_1g.Idd.points @ Idd.ddr3_1g.Idd.points)

let test_datasheet_orderings () =
  (* Within each family: Idd4R >= Idd4W >= ... and x16 >= x4 at the
     same test and speed; faster grades draw more. *)
  let find family test speed width =
    List.find
      (fun (p : Idd.point) ->
        p.Idd.test = test && p.Idd.datarate_mbps = speed
        && p.Idd.io_width = width)
      family.Idd.points
  in
  List.iter
    (fun (family, speeds) ->
      List.iter
        (fun speed ->
          let r16 = find family Idd.Idd4r speed 16
          and w16 = find family Idd.Idd4w speed 16
          and r4 = find family Idd.Idd4r speed 4
          and i16 = find family Idd.Idd0 speed 16
          and i4 = find family Idd.Idd0 speed 4 in
          Helpers.check_true "Idd4R >= Idd4W"
            (Idd.mean_ma r16 >= Idd.mean_ma w16);
          Helpers.check_true "x16 >= x4 on Idd4R"
            (Idd.mean_ma r16 >= Idd.mean_ma r4);
          Helpers.check_true "Idd4R >= Idd0" (Idd.mean_ma r16 >= Idd.mean_ma i16);
          Helpers.check_true "Idd0 x16 >= x4"
            (Idd.mean_ma i16 >= Idd.mean_ma i4))
        speeds)
    [ (Idd.ddr2_1g, [ 400; 533; 667; 800 ]); (Idd.ddr3_1g, [ 800; 1066; 1333 ]) ]

let model_shape family rows =
  (* The model must reproduce the figure's qualitative shapes:
     currents rise with speed, x16 above x4, Idd4R above Idd0. *)
  let model (r : Compare.row) = snd (List.hd r.Compare.model_ma) in
  let find test speed width =
    List.find
      (fun (r : Compare.row) ->
        r.Compare.point.Idd.test = test
        && r.Compare.point.Idd.datarate_mbps = speed
        && r.Compare.point.Idd.io_width = width)
      rows
  in
  let speeds =
    List.sort_uniq compare
      (List.map (fun (p : Idd.point) -> p.Idd.datarate_mbps)
         family.Idd.points)
  in
  let fastest = List.nth speeds (List.length speeds - 1)
  and slowest = List.hd speeds in
  Helpers.check_true "model Idd4R rises with speed"
    (model (find Idd.Idd4r fastest 16) > model (find Idd.Idd4r slowest 16));
  Helpers.check_true "model x16 > x4"
    (model (find Idd.Idd4r fastest 16) > model (find Idd.Idd4r fastest 4));
  Helpers.check_true "model Idd4R > Idd0"
    (model (find Idd.Idd4r fastest 16) > model (find Idd.Idd0 fastest 16))

let coverage rows =
  let in_band = ref 0 and total = ref 0 in
  List.iter
    (fun (r : Compare.row) ->
      List.iter
        (fun (_, m) ->
          incr total;
          if Compare.within_band r.Compare.point m then incr in_band)
        r.Compare.model_ma)
    rows;
  float_of_int !in_band /. float_of_int !total

let mean_ratio rows =
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (r : Compare.row) ->
      List.iter
        (fun (_, m) ->
          sum := !sum +. log (m /. Idd.mean_ma r.Compare.point);
          incr n)
        r.Compare.model_ma)
    rows;
  exp (!sum /. float_of_int !n)

let test_fig8 () =
  let rows = Compare.fig8 () in
  model_shape Idd.ddr2_1g rows;
  let cov = coverage rows in
  Helpers.check_true
    (Printf.sprintf "most DDR2 points in band (%.0f%%)" (100.0 *. cov))
    (cov >= 0.55);
  let ratio = mean_ratio rows in
  Helpers.check_true
    (Printf.sprintf "DDR2 geometric mean ratio sane (%.2f)" ratio)
    (ratio > 0.6 && ratio < 1.4)

let test_fig9 () =
  let rows = Compare.fig9 () in
  model_shape Idd.ddr3_1g rows;
  let cov = coverage rows in
  Helpers.check_true
    (Printf.sprintf "most DDR3 points in band (%.0f%%)" (100.0 *. cov))
    (cov >= 0.75);
  let ratio = mean_ratio rows in
  Helpers.check_true
    (Printf.sprintf "DDR3 geometric mean ratio sane (%.2f)" ratio)
    (ratio > 0.7 && ratio < 1.3)

let test_ddr3_below_ddr2 () =
  (* Lower supply voltage shows: DDR3-800 x16 draws less than
     DDR2-800 x16 at the same function, in both datasheet and model. *)
  let d2 =
    List.find
      (fun (p : Idd.point) ->
        p.Idd.test = Idd.Idd4r && p.Idd.datarate_mbps = 800
        && p.Idd.io_width = 16)
      Idd.ddr2_1g.Idd.points
  and d3 =
    List.find
      (fun (p : Idd.point) ->
        p.Idd.test = Idd.Idd4r && p.Idd.datarate_mbps = 800
        && p.Idd.io_width = 16)
      Idd.ddr3_1g.Idd.points
  in
  Helpers.check_true "datasheet DDR3 < DDR2" (Idd.mean_ma d3 < Idd.mean_ma d2);
  let m2 =
    Compare.model_current ~family:Idd.ddr2_1g ~node:Vdram_tech.Node.N75 d2
  and m3 =
    Compare.model_current ~family:Idd.ddr3_1g ~node:Vdram_tech.Node.N65 d3
  in
  Helpers.check_true "model DDR3 < DDR2" (m3 < m2)

let test_within_band_edges () =
  let p =
    { Idd.test = Idd.Idd0; datarate_mbps = 800; io_width = 16;
      vendors_ma = [ 100.0; 120.0 ] }
  in
  Helpers.check_true "inside" (Compare.within_band ~slack:0.0 p 110.0);
  Helpers.check_true "at min" (Compare.within_band ~slack:0.0 p 100.0);
  Helpers.check_true "at max" (Compare.within_band ~slack:0.0 p 120.0);
  Helpers.check_true "below" (not (Compare.within_band ~slack:0.0 p 99.0));
  Helpers.check_true "slack widens"
    (Compare.within_band ~slack:0.10 p 91.0)

let test_labels_unique () =
  let labels family =
    List.map Idd.label family.Idd.points
  in
  List.iter
    (fun family ->
      let l = labels family in
      Alcotest.(check int)
        (family.Idd.name ^ " labels unique")
        (List.length l)
        (List.length (List.sort_uniq compare l)))
    [ Idd.ddr2_1g; Idd.ddr3_1g ]

let test_model_current_consistency () =
  (* Compare.model_current is exactly Model.idd of the matching
     device. *)
  let p =
    List.find
      (fun (q : Idd.point) ->
        q.Idd.test = Idd.Idd4r && q.Idd.datarate_mbps = 1066
        && q.Idd.io_width = 16)
      Idd.ddr3_1g.Idd.points
  in
  let via_compare =
    Compare.model_current ~family:Idd.ddr3_1g ~node:Vdram_tech.Node.N65 p
  in
  let cfg =
    Vdram_configs.Devices.ddr3_1g ~io_width:16 ~datarate:1.066e9
      ~node:Vdram_tech.Node.N65 ()
  in
  let direct =
    Vdram_core.Model.idd cfg
      (Vdram_core.Pattern.idd4r cfg.Vdram_core.Config.spec)
    *. 1e3
  in
  Helpers.close_rel ~rel:1e-9 "consistent" direct via_compare

let test_density_dependence () =
  (* The 2 Gb family: datasheet Idd0 above the 1 Gb family (longer
     refresh-class rows and more bank area), and the model follows. *)
  let find family speed test =
    List.find
      (fun (p : Idd.point) ->
        p.Idd.test = test && p.Idd.datarate_mbps = speed
        && p.Idd.io_width = 16)
      family.Idd.points
  in
  let g1 = find Idd.ddr3_1g 1066 Idd.Idd0
  and g2 = find Idd.ddr3_2g 1066 Idd.Idd0 in
  Helpers.check_true "datasheet 2Gb Idd0 above 1Gb"
    (Idd.mean_ma g2 > Idd.mean_ma g1);
  let node = Vdram_tech.Node.N55 in
  let m1 = Compare.model_current ~family:Idd.ddr3_1g ~node g1
  and m2 = Compare.model_current ~family:Idd.ddr3_2g ~node g2 in
  Helpers.check_true "model follows (within a few mA)" (m2 >= m1 -. 2.0);
  (* And the band check holds for the new family too. *)
  List.iter
    (fun (p : Idd.point) ->
      let m = Compare.model_current ~family:Idd.ddr3_2g ~node p in
      Helpers.check_true
        (Idd.label p ^ " within widened band")
        (Compare.within_band ~slack:0.40 p m))
    Idd.ddr3_2g.Idd.points

let test_micron_method () =
  let cfg = Lazy.force Helpers.ddr3_2g in
  let spec = cfg.Vdram_core.Config.spec in
  (* The datasheet method fed with the model's own Idd set must land
     on the model's direct answer: the two power-accounting paths are
     consistent. *)
  List.iter
    (fun pattern ->
      let direct, via_method = Micron_method.cross_check cfg pattern in
      Helpers.check_true
        (Printf.sprintf "%s: method within 3%% (%.1f vs %.1f mW)"
           pattern.Vdram_core.Pattern.name (direct *. 1e3)
           (via_method *. 1e3))
        (Float.abs (via_method -. direct) /. direct < 0.03))
    [ Vdram_core.Pattern.idle; Vdram_core.Pattern.idd0 spec;
      Vdram_core.Pattern.idd4r spec; Vdram_core.Pattern.idd4w spec;
      Vdram_core.Pattern.idd7_mixed spec;
      Vdram_core.Pattern.paper_example ];
  (* Refresh adds a small positive term. *)
  let s = Micron_method.of_model cfg in
  let u =
    Micron_method.usage_of_pattern cfg (Vdram_core.Pattern.idd0 spec)
  in
  Helpers.check_true "refresh term positive"
    (Micron_method.power s u
    > Micron_method.power ~include_refresh:false s u);
  Helpers.check_true "refresh term small"
    (Micron_method.power s u
    < Micron_method.power ~include_refresh:false s u *. 1.10)

let test_idd_set_orderings () =
  let s = Micron_method.of_model (Lazy.force Helpers.ddr3_1g) in
  Helpers.check_true "Idd4R above Idd0" (s.Micron_method.idd4r > s.Micron_method.idd0);
  Helpers.check_true "Idd0 above standby" (s.Micron_method.idd0 > s.Micron_method.idd2n);
  Helpers.check_true "Idd5B the largest"
    (s.Micron_method.idd5b > s.Micron_method.idd4r
    || s.Micron_method.idd5b > s.Micron_method.idd0)

let suite =
  [
    Alcotest.test_case "point statistics" `Quick test_point_stats;
    Alcotest.test_case "families complete" `Quick test_families_complete;
    Alcotest.test_case "datasheet orderings" `Quick test_datasheet_orderings;
    Alcotest.test_case "Figure 8 (DDR2)" `Slow test_fig8;
    Alcotest.test_case "Figure 9 (DDR3)" `Slow test_fig9;
    Alcotest.test_case "DDR3 below DDR2" `Quick test_ddr3_below_ddr2;
    Alcotest.test_case "band edges" `Quick test_within_band_edges;
    Alcotest.test_case "labels unique" `Quick test_labels_unique;
    Alcotest.test_case "model_current consistency" `Quick
      test_model_current_consistency;
    Alcotest.test_case "density dependence (2Gb family)" `Slow
      test_density_dependence;
    Alcotest.test_case "datasheet method cross-check" `Quick
      test_micron_method;
    Alcotest.test_case "model Idd set orderings" `Quick
      test_idd_set_orderings;
  ]
