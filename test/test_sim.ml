(* Simulator: timing, bank FSM, controller, energy integration. *)

open Vdram_sim
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

let cfg () = Lazy.force Helpers.ddr3_1g

let timing () = Timing.of_config (cfg ())

let test_timing () =
  let t = timing () in
  Helpers.check_true "tRC = tRAS + tRP"
    (t.Timing.trc <= t.Timing.tras + t.Timing.trp + 1);
  Helpers.check_true "tRRD below tFAW" (t.Timing.trrd * 4 <= t.Timing.tfaw + 3);
  Helpers.check_true "refresh interval >> refresh time"
    (t.Timing.trefi > 5 * t.Timing.trfc);
  Helpers.check_positive "tCK" t.Timing.tck

let test_bank_fsm () =
  let t = timing () in
  let b = Bank.create t in
  Alcotest.(check bool) "starts idle" true (Bank.state b = Bank.Idle);
  Bank.activate b ~at:0 ~row:7;
  Alcotest.(check bool) "row open" true (Bank.state b = Bank.Active 7);
  Alcotest.check_raises "double activate"
    (Bank.Timing_violation "activate at 1: bank not idle") (fun () ->
      Bank.activate b ~at:1 ~row:8);
  (* Column before tRCD is rejected. *)
  (try
     Bank.column b ~at:1 ~write:false;
     Alcotest.fail "column before tRCD accepted"
   with Bank.Timing_violation _ -> ());
  Bank.column b ~at:t.Timing.trcd ~write:false;
  (* Precharge respects tRAS. *)
  (try
     Bank.precharge b ~at:(t.Timing.trcd + 1);
     Alcotest.fail "precharge before tRAS accepted"
   with Bank.Timing_violation _ -> ());
  Bank.precharge b ~at:(Bank.earliest_precharge b);
  Alcotest.(check bool) "idle after precharge" true (Bank.state b = Bank.Idle);
  (* Activate again only after tRC. *)
  (try
     Bank.activate b ~at:(t.Timing.tras + 1) ~row:3;
     Alcotest.fail "activate before tRP accepted"
   with Bank.Timing_violation _ -> ());
  Bank.activate b ~at:(Bank.earliest_activate b) ~row:3

let test_write_recovery () =
  let t = timing () in
  let b = Bank.create t in
  Bank.activate b ~at:0 ~row:1;
  Bank.column b ~at:t.Timing.trcd ~write:true;
  let after_read = Bank.create t in
  Bank.activate after_read ~at:0 ~row:1;
  Bank.column after_read ~at:t.Timing.trcd ~write:false;
  Helpers.check_true "write pushes precharge further than read"
    (Bank.earliest_precharge b > Bank.earliest_precharge after_read)

let small_trace ?(write_fraction = 0.3) ?(gap = 8) n seed =
  let c = cfg () in
  Trace.uniform ~rng:(Trace.rng seed) ~requests:n ~arrival_gap:gap
    ~banks:c.Config.spec.Spec.banks ~rows:512 ~columns:64 ~write_fraction

let test_controller_basics () =
  let c = cfg () in
  let stats = Controller.run c (small_trace 500 11) in
  Alcotest.(check int) "all requests served" 500 stats.Stats.requests;
  Alcotest.(check int) "reads + writes = requests" 500
    (stats.Stats.reads + stats.Stats.writes);
  Alcotest.(check int) "hits + misses = requests" 500
    (stats.Stats.row_hits + stats.Stats.row_misses);
  Helpers.check_true "every miss needs an activate"
    (stats.Stats.activates = stats.Stats.row_misses);
  Helpers.check_true "cycles advance" (stats.Stats.cycles > 500);
  Helpers.check_true "latency positive" (Stats.average_latency stats > 0.0)

let test_page_policies () =
  let c = cfg () in
  let trace () =
    Trace.streaming ~requests:2000 ~arrival_gap:4
      ~banks:c.Config.spec.Spec.banks ~rows:512 ~columns:64
      ~write_fraction:0.0
  in
  let open_stats = Controller.run ~page_policy:Controller.Open_page c (trace ())
  and closed_stats =
    Controller.run ~page_policy:Controller.Closed_page c (trace ())
  in
  Helpers.check_true "open page exploits streaming locality"
    (Stats.row_hit_rate open_stats > 0.9);
  Helpers.check_true "closed page activates per request"
    (closed_stats.Stats.activates > open_stats.Stats.activates * 10);
  Helpers.check_true "closed page burns more energy on streams"
    ((Energy_model.of_stats c closed_stats).Energy_model.energy
    > (Energy_model.of_stats c open_stats).Energy_model.energy)

let test_row_hits_uniform_vs_stream () =
  let c = cfg () in
  let uniform = Controller.run c (small_trace 2000 5) in
  let stream =
    Controller.run c
      (Trace.streaming ~requests:2000 ~arrival_gap:8
         ~banks:c.Config.spec.Spec.banks ~rows:512 ~columns:64
         ~write_fraction:0.3)
  in
  Helpers.check_true "streaming hits more rows"
    (Stats.row_hit_rate stream > Stats.row_hit_rate uniform +. 0.3)

let test_refresh () =
  let c = cfg () in
  (* A long sparse trace crosses several tREFI periods. *)
  let trace = small_trace ~gap:2000 2000 9 in
  let stats = Controller.run c trace in
  Helpers.check_true "refreshes issued" (stats.Stats.refreshes > 10);
  let t = timing () in
  let expected = stats.Stats.cycles / t.Timing.trefi in
  Helpers.check_true "roughly one refresh per tREFI"
    (abs (stats.Stats.refreshes - expected) <= expected / 2 + 2)

let test_power_down () =
  let c = cfg () in
  let base = small_trace ~gap:8 2000 13 in
  let gappy = Trace.idle_gaps ~rng:(Trace.rng 1) base ~burst:50 ~gap:5000 in
  let without =
    Sim.simulate ~power_down:Controller.No_power_down c gappy
  and with_pd =
    Sim.simulate ~power_down:(Controller.Precharge_power_down 100) c gappy
  in
  Helpers.check_true "power-down cycles accumulate"
    (with_pd.Sim.stats.Stats.powerdown_cycles > 0);
  Helpers.check_true "power-down saves average power"
    (with_pd.Sim.energy.Energy_model.average_power
    < without.Sim.energy.Energy_model.average_power);
  (* On a dense trace the policy never engages. *)
  let dense = Sim.simulate ~power_down:(Controller.Precharge_power_down 100) c
      (small_trace ~gap:4 2000 13)
  in
  Alcotest.(check int) "no power-down when busy" 0
    dense.Sim.stats.Stats.powerdown_cycles

let test_self_refresh () =
  let c = cfg () in
  let base = small_trace ~gap:8 1500 31 in
  let very_gappy =
    Trace.idle_gaps ~rng:(Trace.rng 2) base ~burst:100 ~gap:100000
  in
  let pd =
    Sim.simulate ~power_down:(Controller.Precharge_power_down 100) c
      very_gappy
  and sr =
    Sim.simulate
      ~power_down:(Controller.Self_refresh_power_down (100, 2000))
      c very_gappy
  in
  Helpers.check_true "self-refresh cycles accumulate"
    (sr.Sim.stats.Stats.selfrefresh_cycles > 0);
  Helpers.check_true "self-refresh beats plain power-down on long gaps"
    (sr.Sim.energy.Energy_model.average_power
    <= pd.Sim.energy.Energy_model.average_power *. 1.02);
  (* While asleep the external refresh engine is off. *)
  Helpers.check_true "fewer external refreshes in self-refresh"
    (sr.Sim.stats.Stats.refreshes <= pd.Sim.stats.Stats.refreshes)

let test_trace_io () =
  let t = small_trace 200 77 in
  let path = Filename.temp_file "vdram_trace" ".txt" in
  Trace.save path t;
  (match Trace.load path with
   | Ok t' ->
     Alcotest.(check int) "same length" (List.length t) (List.length t');
     List.iter2
       (fun (a : Trace.request) (b : Trace.request) ->
         Helpers.check_true "request preserved"
           (a.Trace.arrival = b.Trace.arrival
           && a.Trace.bank = b.Trace.bank
           && a.Trace.row = b.Trace.row
           && a.Trace.column = b.Trace.column
           && a.Trace.is_write = b.Trace.is_write))
       t t'
   | Error e -> Alcotest.fail e);
  Sys.remove path;
  (match Trace.load "/nonexistent/vdram/trace" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing file accepted")

let test_energy_report () =
  let c = cfg () in
  let run = Sim.simulate c (small_trace 1000 21) in
  let r = run.Sim.energy in
  Helpers.check_positive "energy" r.Energy_model.energy;
  let sum = List.fold_left (fun a (_, e) -> a +. e) 0.0 r.Energy_model.breakdown in
  Helpers.close ~eps:1e-9 "breakdown sums to energy" r.Energy_model.energy sum;
  Helpers.check_positive "energy per bit" r.Energy_model.energy_per_bit;
  Helpers.check_true "average power plausible for DDR3 (0.01..2 W)"
    (r.Energy_model.average_power > 0.01 && r.Energy_model.average_power < 2.0)

let test_command_trace () =
  let c = cfg () in
  let t = Timing.of_config c in
  let entries =
    [ { Command_trace.cycle = 0; command = Command_trace.Act (0, 5) };
      { Command_trace.cycle = t.Timing.trcd;
        command = Command_trace.Rd 0 };
      { Command_trace.cycle = t.Timing.trcd + t.Timing.tccd;
        command = Command_trace.Wr 0 };
      { Command_trace.cycle = t.Timing.trcd + (8 * t.Timing.tccd)
                              + t.Timing.twl + t.Timing.twr;
        command = Command_trace.Pre 0 };
      { Command_trace.cycle = 4 * t.Timing.trc;
        command = Command_trace.Ref } ]
  in
  let r = Command_trace.run c entries in
  Alcotest.(check int) "one activate" 1 r.Command_trace.stats.Stats.activates;
  Alcotest.(check int) "one read" 1 r.Command_trace.stats.Stats.reads;
  Alcotest.(check int) "one write" 1 r.Command_trace.stats.Stats.writes;
  Alcotest.(check int) "one refresh" 1 r.Command_trace.stats.Stats.refreshes;
  Alcotest.(check int) "no violations" 0
    (List.length r.Command_trace.violations);
  Helpers.check_positive "trace energy"
    r.Command_trace.energy.Energy_model.energy

let test_command_trace_violations () =
  let c = cfg () in
  let bad =
    [ { Command_trace.cycle = 0; command = Command_trace.Act (0, 5) };
      (* Read before tRCD. *)
      { Command_trace.cycle = 1; command = Command_trace.Rd 0 } ]
  in
  (match Command_trace.run c bad with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "strict mode accepted a violation");
  let r = Command_trace.run ~strict:false c bad in
  Alcotest.(check int) "violation collected" 1
    (List.length r.Command_trace.violations);
  Alcotest.(check int) "offending command dropped" 0
    r.Command_trace.stats.Stats.reads

let test_command_trace_parse () =
  let source =
    "# demo\n0 ACT 0 5\n20 RD 0\n60 PRE 0\n100 PREA\n120 REF\n140 NOP\n"
  in
  (match Command_trace.parse source with
   | Ok entries ->
     Alcotest.(check int) "six entries" 6 (List.length entries);
     (* Round trip through the printer. *)
     (match Command_trace.parse (Command_trace.to_string entries) with
      | Ok entries' ->
        Alcotest.(check int) "round trip" (List.length entries)
          (List.length entries')
      | Error e -> Alcotest.fail e)
   | Error e -> Alcotest.fail e);
  match Command_trace.parse "0 BOGUS" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus command accepted"

let test_command_trace_agrees_with_pattern () =
  (* An Idd0-style command trace lands on the Idd0 pattern power. *)
  let c = cfg () in
  let t = Timing.of_config c in
  let loops = 200 in
  let entries =
    List.concat
      (List.init loops (fun i ->
           let base = i * t.Timing.trc in
           [ { Command_trace.cycle = base; command = Command_trace.Act (0, i) };
             { Command_trace.cycle = base + t.Timing.tras;
               command = Command_trace.Pre 0 } ]))
  in
  let r = Command_trace.run c entries in
  let sim_power = r.Command_trace.energy.Energy_model.average_power in
  let idd0_power =
    Helpers.power c (Vdram_core.Pattern.idd0 c.Config.spec)
  in
  Helpers.check_true
    (Printf.sprintf "command trace near Idd0 (%.1f vs %.1f mW)"
       (sim_power *. 1e3) (idd0_power *. 1e3))
    (sim_power > idd0_power *. 0.85 && sim_power < idd0_power *. 1.15)

let test_address_mapping () =
  let banks = 8 and rows = 512 and columns = 64 in
  let b, r, c = Trace.address_of ~banks ~rows ~columns 0L in
  Alcotest.(check (triple int int int)) "zero address" (0, 0, 0) (b, r, c);
  let b, _, _ = Trace.address_of ~banks ~rows ~columns 5L in
  Alcotest.(check int) "bank interleaved" 5 b;
  let all_in_range =
    List.init 1000 (fun i ->
        let b, r, c =
          Trace.address_of ~banks ~rows ~columns (Int64.of_int (i * 77))
        in
        b >= 0 && b < banks && r >= 0 && r < rows && c >= 0 && c < columns)
  in
  Helpers.check_true "mapping in range" (List.for_all Fun.id all_in_range)

let test_window_effect () =
  let c = cfg () in
  (* Requests that alternate between two rows of one bank: FIFO keeps
     thrashing; a reorder window can batch the hits. *)
  let trace =
    List.init 400 (fun i ->
        {
          Trace.arrival = i * 2;
          bank = 0;
          row = (if i mod 2 = 0 then 1 else 2);
          column = i mod 32;
          is_write = false;
        })
  in
  let fifo = Controller.run ~window:1 c trace in
  let frfcfs = Controller.run ~window:16 c trace in
  Helpers.check_true "reordering harvests row hits"
    (Stats.row_hit_rate frfcfs > Stats.row_hit_rate fifo);
  Helpers.check_true "reordering reduces activates"
    (frfcfs.Stats.activates < fifo.Stats.activates)

let test_data_bus_occupancy () =
  let c = cfg () in
  let t = timing () in
  (* Gapless single-bank row-hit stream: total cycles bounded below by
     requests x tCCD (the data bus). *)
  let trace =
    List.init 500 (fun i ->
        { Trace.arrival = 0; bank = 0; row = 0; column = i mod 64;
          is_write = false })
  in
  let stats = Controller.run c trace in
  Helpers.check_true "data bus bounds throughput"
    (stats.Stats.cycles >= 500 * t.Timing.tccd)

let test_hotspot_between () =
  let c = cfg () in
  let mk kind =
    match kind with
    | `U -> small_trace 1500 3
    | `H ->
      Trace.hotspot ~rng:(Trace.rng 3) ~requests:1500 ~arrival_gap:8
        ~banks:c.Config.spec.Spec.banks ~rows:512 ~columns:64
        ~write_fraction:0.3 ~hot_rows:4 ~hot_fraction:0.9
    | `S ->
      Trace.streaming ~requests:1500 ~arrival_gap:8
        ~banks:c.Config.spec.Spec.banks ~rows:512 ~columns:64
        ~write_fraction:0.3
  in
  let hit k = Stats.row_hit_rate (Controller.run c (mk k)) in
  let u = hit `U and h = hit `H and st = hit `S in
  Helpers.check_true
    (Printf.sprintf "uniform (%.2f) < hotspot (%.2f) < stream (%.2f)" u h st)
    (u < h && h < st)

let test_adaptive_page () =
  let c = cfg () in
  (* Bursty locality: runs of hits to one row, then a long pause and a
     different row.  Adaptive should match open-page hits while
     avoiding the conflict precharge on re-entry. *)
  let trace =
    List.concat
      (List.init 50 (fun run ->
           List.init 10 (fun i ->
               {
                 Trace.arrival = (run * 3000) + (i * 6);
                 bank = 0;
                 row = run;
                 column = i;
                 is_write = false;
               })))
  in
  let openp = Controller.run ~page_policy:Controller.Open_page c trace in
  let adaptive =
    Controller.run ~page_policy:(Controller.Adaptive_page 200) c trace
  in
  let closed = Controller.run ~page_policy:Controller.Closed_page c trace in
  Helpers.check_true "adaptive keeps the in-run hits"
    (Stats.row_hit_rate adaptive > 0.8);
  (* The stale precharge happens during the pause instead of on the
     next request's critical path: latency improves over open page. *)
  Helpers.check_true "adaptive hides the conflict precharge"
    (Stats.average_latency adaptive < Stats.average_latency openp);
  Helpers.check_true "and beats closed page on hits"
    (Stats.row_hit_rate adaptive > Stats.row_hit_rate closed +. 0.5)

let test_bank_groups () =
  (* Pre-DDR4 devices have one group; DDR4/5 have banks/4. *)
  let t3 = Timing.of_config (Lazy.force Helpers.ddr3_1g) in
  Alcotest.(check int) "DDR3: one group" 1 t3.Timing.bank_groups;
  Alcotest.(check int) "DDR3: tCCD_L = tCCD" t3.Timing.tccd t3.Timing.tccd_l;
  let ddr5 = Lazy.force Helpers.ddr5_16g in
  let t5 = Timing.of_config ddr5 in
  Alcotest.(check int) "DDR5: 8 groups" 8 t5.Timing.bank_groups;
  Helpers.check_true "DDR5: tCCD_L longer" (t5.Timing.tccd_l > t5.Timing.tccd);
  (* Same-group streaming is slower than group-interleaved. *)
  let trace stride =
    List.init 600 (fun i ->
        { Trace.arrival = 0; bank = i * stride mod 32; row = 0;
          column = i mod 64; is_write = false })
  in
  let same_group = Controller.run ddr5 (trace 0)
  and interleaved = Controller.run ddr5 (trace 5) in
  Helpers.check_true "group interleaving is faster"
    (interleaved.Stats.cycles < same_group.Stats.cycles)

let test_energy_grows_with_work () =
  let c = cfg () in
  let e n =
    (Energy_model.of_stats c (Controller.run c (small_trace n 5)))
      .Energy_model.energy
  in
  Helpers.check_true "more requests, more energy" (e 2000 > e 500)

let controller_never_violates =
  QCheck.Test.make ~name:"scheduler respects all timing constraints"
    ~count:30
    QCheck.(
      triple (int_range 1 500) (int_range 1 40) (int_range 0 10000))
    (fun (n, gap, seed) ->
      let c = cfg () in
      let trace =
        Trace.uniform ~rng:(Trace.rng (seed + 1)) ~requests:n
          ~arrival_gap:gap ~banks:c.Config.spec.Spec.banks ~rows:128
          ~columns:32 ~write_fraction:0.4
      in
      (* Bank.Timing_violation escaping = failure. *)
      let stats = Controller.run c trace in
      stats.Stats.requests = n)

let closed_page_never_violates =
  QCheck.Test.make ~name:"closed-page scheduler respects timing" ~count:20
    QCheck.(pair (int_range 1 300) (int_range 0 10000))
    (fun (n, seed) ->
      let c = cfg () in
      let trace =
        Trace.uniform ~rng:(Trace.rng (seed + 7)) ~requests:n ~arrival_gap:2
          ~banks:c.Config.spec.Spec.banks ~rows:128 ~columns:32
          ~write_fraction:0.5
      in
      let stats =
        Controller.run ~page_policy:Controller.Closed_page
          ~power_down:(Controller.Precharge_power_down 50) c trace
      in
      stats.Stats.requests = n
      && stats.Stats.precharges >= stats.Stats.activates)

let suite =
  [
    Alcotest.test_case "timing derivation" `Quick test_timing;
    Alcotest.test_case "bank state machine" `Quick test_bank_fsm;
    Alcotest.test_case "write recovery" `Quick test_write_recovery;
    Alcotest.test_case "controller basics" `Quick test_controller_basics;
    Alcotest.test_case "page policies" `Quick test_page_policies;
    Alcotest.test_case "locality and row hits" `Quick
      test_row_hits_uniform_vs_stream;
    Alcotest.test_case "refresh scheduling" `Quick test_refresh;
    Alcotest.test_case "power-down policy (Hur et al.)" `Quick
      test_power_down;
    Alcotest.test_case "self-refresh policy" `Quick test_self_refresh;
    Alcotest.test_case "trace file round trip" `Quick test_trace_io;
    Alcotest.test_case "energy integration" `Quick test_energy_report;
    Alcotest.test_case "address mapping" `Quick test_address_mapping;
    Alcotest.test_case "command trace replay" `Quick test_command_trace;
    Alcotest.test_case "command trace violations" `Quick
      test_command_trace_violations;
    Alcotest.test_case "command trace parsing" `Quick
      test_command_trace_parse;
    Alcotest.test_case "command trace matches Idd0" `Quick
      test_command_trace_agrees_with_pattern;
    Alcotest.test_case "reorder window effect" `Quick test_window_effect;
    Alcotest.test_case "data bus occupancy" `Quick test_data_bus_occupancy;
    Alcotest.test_case "hotspot locality between" `Quick test_hotspot_between;
    Alcotest.test_case "energy grows with work" `Quick
      test_energy_grows_with_work;
    Alcotest.test_case "bank groups (DDR4/5)" `Quick test_bank_groups;
    Alcotest.test_case "adaptive page policy" `Quick test_adaptive_page;
    Helpers.qcheck controller_never_violates;
    Helpers.qcheck closed_page_never_violates;
  ]
