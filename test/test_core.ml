(* Core model: spec, config, operations, patterns, power. *)

open Vdram_core
module Node = Vdram_tech.Node

let ddr3 () = Lazy.force Helpers.ddr3_1g

let test_spec () =
  let spec = (ddr3 ()).Config.spec in
  Helpers.close "two bits per clock (DDR)" 2.0 (Spec.bits_per_clock spec);
  Alcotest.(check int) "bits per column command" (16 * 8)
    (Spec.bits_per_column_command spec);
  Alcotest.(check int) "burst occupies 4 clocks" 4
    (Spec.clocks_per_column_command spec);
  Helpers.close "core clock = datarate / prefetch"
    (spec.Spec.datarate /. 8.0)
    (Spec.core_clock spec);
  Alcotest.check_raises "bad io width"
    (Invalid_argument "Spec.v: io_width") (fun () ->
      ignore
        (Spec.v ~io_width:0 ~datarate:1e9 ~control_clock:5e8 ~bank_bits:3
           ~row_bits:13 ~col_bits:10 ~prefetch:8 ~burst_length:8 ~banks:8
           ~density_bits:1e9 ~trc:5e-8 ~trcd:1.5e-8 ~trp:1.5e-8 ()))

let test_config_structure () =
  let cfg = ddr3 () in
  Alcotest.(check int) "page = 2KB" 16384 (Config.page_bits cfg);
  Alcotest.(check int) "full activation by default" 16384
    (Config.activated_bits cfg);
  Helpers.check_true "all bus roles present"
    (List.for_all
       (fun role -> Config.bus cfg role <> None)
       [ Vdram_circuits.Bus.Write_data; Vdram_circuits.Bus.Read_data;
         Vdram_circuits.Bus.Row_address; Vdram_circuits.Bus.Column_address;
         Vdram_circuits.Bus.Bank_address; Vdram_circuits.Bus.Command;
         Vdram_circuits.Bus.Clock ]);
  Helpers.check_true "has a DLL (DDR3)"
    (List.exists
       (fun b ->
         b.Vdram_circuits.Logic_block.name = "DLL / clock synchronisation")
       cfg.Config.logic);
  Helpers.check_true "SDR has no DLL"
    (not
       (List.exists
          (fun b ->
            b.Vdram_circuits.Logic_block.name = "DLL / clock synchronisation")
          (Lazy.force Helpers.sdr_128m).Config.logic))

let test_activation_fraction () =
  let cfg = ddr3 () in
  let quarter = Config.with_activation_fraction cfg 0.25 in
  Alcotest.(check int) "quarter page" 4096 (Config.activated_bits quarter);
  Helpers.check_true "activate energy shrinks"
    (Operation.energy quarter Operation.Activate
    < Operation.energy cfg Operation.Activate);
  Helpers.close "read energy unchanged"
    (Operation.energy cfg Operation.Read)
    (Operation.energy quarter Operation.Read);
  Alcotest.check_raises "fraction validated"
    (Invalid_argument "Config.with_activation_fraction: outside (0, 1]")
    (fun () -> ignore (Config.with_activation_fraction cfg 0.0))

let test_operation_energies () =
  let cfg = ddr3 () in
  List.iter
    (fun op ->
      Helpers.check_positive (Operation.name op) (Operation.energy cfg op);
      Helpers.check_true
        (Operation.name op ^ " efficiency costs energy")
        (Operation.energy cfg op >= Operation.energy_internal cfg op))
    Operation.all;
  Helpers.check_true "activate > precharge"
    (Operation.energy cfg Operation.Activate
    > Operation.energy cfg Operation.Precharge);
  Helpers.check_true "write > read (adds overwrite)"
    (Operation.energy cfg Operation.Write
    > Operation.energy cfg Operation.Read *. 0.8);
  Helpers.check_true "nop is the smallest"
    (List.for_all
       (fun op ->
         op = Operation.Nop
         || Operation.energy cfg op > Operation.energy cfg Operation.Nop)
       Operation.all)

let test_pattern_basics () =
  let p = Pattern.v ~name:"t" [ (Pattern.Act, 1); (Pattern.Nop, 3) ] in
  Alcotest.(check int) "cycles" 4 (Pattern.cycles p);
  Alcotest.(check int) "act count" 1 (Pattern.count p Pattern.Act);
  Alcotest.(check int) "nop count" 3 (Pattern.count p Pattern.Nop);
  Alcotest.check_raises "empty loop rejected"
    (Invalid_argument "Pattern.v: empty loop") (fun () ->
      ignore (Pattern.v ~name:"e" []))

let test_pattern_parse () =
  (match Pattern.parse ~name:"p" "act nop wrt nop rd nop pre nop" with
   | Ok p ->
     Alcotest.(check int) "8 slots" 8 (Pattern.cycles p);
     Alcotest.(check string) "round trip" "act nop wrt nop rd nop pre nop"
       (Pattern.to_string p)
   | Error e -> Alcotest.fail e);
  (match Pattern.parse ~name:"p" "act bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus command accepted");
  match Pattern.parse ~name:"p" "   " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty pattern accepted"

let test_idd_loops () =
  let spec = (ddr3 ()).Config.spec in
  let idd0 = Pattern.idd0 spec in
  Alcotest.(check int) "Idd0 one activate" 1 (Pattern.count idd0 Pattern.Act);
  Alcotest.(check int) "Idd0 one precharge" 1 (Pattern.count idd0 Pattern.Pre);
  Helpers.check_true "Idd0 loop covers tRC"
    (float_of_int (Pattern.cycles idd0)
     >= spec.Spec.trc *. spec.Spec.control_clock -. 1.0);
  let idd4r = Pattern.idd4r spec in
  Alcotest.(check int) "Idd4R gapless" (Spec.clocks_per_column_command spec)
    (Pattern.cycles idd4r);
  let idd7 = Pattern.idd7 spec in
  Alcotest.(check int) "Idd7 activates every bank" spec.Spec.banks
    (Pattern.count idd7 Pattern.Act);
  let mixed = Pattern.idd7_mixed spec in
  Alcotest.(check int) "mixed pattern half writes" (spec.Spec.banks / 2)
    (Pattern.count mixed Pattern.Wr)

let test_pattern_power () =
  let cfg = ddr3 () in
  let spec = cfg.Config.spec in
  let p_idle = Helpers.power cfg Pattern.idle in
  Helpers.close "idle = background" (Model.background_power cfg) p_idle;
  let p_idd0 = Helpers.power cfg (Pattern.idd0 spec) in
  let p_idd4r = Helpers.power cfg (Pattern.idd4r spec) in
  let p_idd4w = Helpers.power cfg (Pattern.idd4w spec) in
  let p_idd7 = Helpers.power cfg (Pattern.idd7 spec) in
  Helpers.check_true "Idd0 > idle" (p_idd0 > p_idle);
  Helpers.check_true "Idd4R > Idd0" (p_idd4r > p_idd0);
  Helpers.check_true "Idd4R > Idd4W - tolerance"
    (p_idd4r > p_idd4w *. 0.9);
  Helpers.check_true "Idd7 the largest"
    (p_idd7 > p_idd4r && p_idd7 > p_idd0);
  Helpers.close "idd = power / vdd" (p_idd7 /. 1.5)
    (Model.idd cfg (Pattern.idd7 spec))

let test_report () =
  let cfg = ddr3 () in
  let r = Model.pattern_power cfg (Pattern.idd7_mixed cfg.Config.spec) in
  Helpers.check_true "breakdown sums to total"
    (let sum = List.fold_left (fun a (_, w) -> a +. w) 0.0 r.Report.breakdown in
     Float.abs (sum -. r.Report.power) /. r.Report.power < 1e-6);
  Helpers.check_true "breakdown sorted"
    (let rec sorted = function
       | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
       | _ -> true
     in
     sorted r.Report.breakdown);
  (match r.Report.energy_per_bit with
   | Some e -> Helpers.check_positive "energy per bit" e
   | None -> Alcotest.fail "mixed pattern moves data");
  Helpers.check_true "idle has no energy per bit"
    ((Model.pattern_power cfg Pattern.idle).Report.energy_per_bit = None)

let test_report_is_finite () =
  let cfg = ddr3 () in
  let r = Model.pattern_power cfg (Pattern.idd7_mixed cfg.Config.spec) in
  Helpers.check_true "a healthy report is finite" (Report.is_finite r);
  Helpers.check_true "NaN power is caught"
    (not (Report.is_finite { r with Report.power = Float.nan }));
  Helpers.check_true "infinite current is caught"
    (not (Report.is_finite { r with Report.current = Float.infinity }));
  Helpers.check_true "NaN energy per bit is caught"
    (not (Report.is_finite { r with Report.energy_per_bit = Some Float.nan }));
  Helpers.check_true "NaN in the breakdown is caught"
    (not
       (Report.is_finite
          { r with Report.breakdown = [ ("poisoned", Float.nan) ] }))

let test_states () =
  let cfg = ddr3 () in
  Helpers.close "precharge standby = background"
    (Model.background_power cfg)
    (Model.state_power cfg Model.Precharge_standby);
  Helpers.close "active standby equals it (no leakage model)"
    (Model.state_power cfg Model.Precharge_standby)
    (Model.state_power cfg Model.Active_standby);
  Helpers.check_true "power-down far below standby"
    (Model.state_power cfg Model.Power_down
    < 0.5 *. Model.state_power cfg Model.Precharge_standby);
  Helpers.close "self-refresh = power-down + refresh"
    (Model.state_power cfg Model.Power_down +. Model.refresh_power cfg)
    (Model.state_power cfg Model.Self_refresh);
  Helpers.check_true "refresh power small vs active"
    (Model.refresh_power cfg < 0.2 *. Model.background_power cfg)

let test_idd5b () =
  let cfg = ddr3 () in
  let idd5 = Model.idd5b cfg in
  let idd2n = Model.idd cfg Pattern.idle in
  let idd0 = Model.idd cfg (Pattern.idd0 cfg.Config.spec) in
  Helpers.check_true "Idd5B above standby" (idd5 > idd2n);
  Helpers.check_true "Idd5B above Idd0 (many banks refresh at once)"
    (idd5 > idd0)

let test_categories () =
  let cfg = ddr3 () in
  let r = Model.pattern_power cfg (Pattern.idd7_mixed cfg.Config.spec) in
  let cats = Report.by_category r in
  let sum = List.fold_left (fun a (_, w) -> a +. w) 0.0 cats in
  Helpers.close_rel ~rel:1e-6 "categories sum to total" r.Report.power sum;
  let share c =
    match List.assoc_opt c cats with
    | Some w -> w /. r.Report.power
    | None -> 0.0
  in
  Helpers.check_true "array share significant on DDR3"
    (share Report.Array > 0.10);
  (* The paper's shift: the new device has a smaller array share than
     the old one. *)
  let share_of cfg c =
    let r = Model.pattern_power cfg (Pattern.idd7_mixed cfg.Config.spec) in
    match List.assoc_opt c (Report.by_category r) with
    | Some w -> w /. r.Report.power
    | None -> 0.0
  in
  Helpers.check_true "array share falls towards DDR5"
    (share_of (Lazy.force Helpers.ddr5_16g) Report.Array
    < share_of (Lazy.force Helpers.sdr_128m) Report.Array +. 0.1)

let test_operation_power () =
  let cfg = ddr3 () in
  Helpers.close "nop operation power = background"
    (Model.background_power cfg)
    (Model.operation_power cfg Operation.Nop);
  Helpers.check_true "read op power above background"
    (Model.operation_power cfg Operation.Read > Model.background_power cfg)

let test_commodity_variants () =
  (* x4 parts move fewer bits per command: lower Idd4R. *)
  let x16 = Vdram_configs.Devices.ddr3_1g ~io_width:16 ~node:Node.N65 ()
  and x4 = Vdram_configs.Devices.ddr3_1g ~io_width:4 ~node:Node.N65 () in
  Helpers.check_true "x16 Idd4R above x4"
    (Model.idd x16 (Pattern.idd4r x16.Config.spec)
    > Model.idd x4 (Pattern.idd4r x4.Config.spec));
  (* Higher data rate costs current. *)
  let slow = Vdram_configs.Devices.ddr3_1g ~datarate:800e6 ~node:Node.N65 ()
  and fast = Vdram_configs.Devices.ddr3_1g ~datarate:1333e6 ~node:Node.N65 () in
  Helpers.check_true "faster part draws more in Idd4R"
    (Model.idd fast (Pattern.idd4r fast.Config.spec)
    > Model.idd slow (Pattern.idd4r slow.Config.spec));
  (* A DDR2 part keeps its 1.8 V supply even on a newer node. *)
  let shrunk = Vdram_configs.Devices.ddr2_1g ~node:Node.N65 () in
  Helpers.close "DDR2 stays at 1.8 V" 1.8
    shrunk.Config.domains.Vdram_circuits.Domains.vdd

let test_monotone_in_voltage () =
  let cfg = ddr3 () in
  let d = cfg.Config.domains in
  let higher =
    Config.with_domains cfg { d with Vdram_circuits.Domains.vint = 1.6 }
  in
  Helpers.check_true "higher Vint, more power"
    (Helpers.power higher (Pattern.idd7 cfg.Config.spec)
    > Helpers.power cfg (Pattern.idd7 cfg.Config.spec))

let test_idd7_respects_tfaw () =
  let spec = (ddr3 ()).Config.spec in
  let p = Pattern.idd7 spec in
  let window = float_of_int (Pattern.cycles p) /. spec.Spec.control_clock in
  (* 8 banks = two tFAW windows minimum. *)
  Helpers.check_true "window covers banks/4 x tFAW"
    (window >= float_of_int (spec.Spec.banks / 4) *. spec.Spec.tfaw *. 0.99)

let test_contribution_labels () =
  let cfg = ddr3 () in
  List.iter
    (fun op ->
      let cs = Operation.contributions cfg op in
      Helpers.check_true
        (Operation.name op ^ " has contributions")
        (cs <> []);
      List.iter
        (fun (c : Vdram_circuits.Contribution.t) ->
          Helpers.check_true "label non-empty"
            (String.length c.Vdram_circuits.Contribution.label > 0);
          Helpers.check_true "energy non-negative"
            (c.Vdram_circuits.Contribution.energy >= 0.0))
        cs)
    Operation.all

let test_activation_floor () =
  (* Even a tiny fraction activates at least one local wordline. *)
  let cfg = ddr3 () in
  let tiny = Config.with_activation_fraction cfg 0.0001 in
  Alcotest.(check int) "one LWL minimum" 512 (Config.activated_bits tiny)

let test_data_toggle_monotone () =
  let cfg = ddr3 () in
  let quiet = Config.with_data_toggle cfg 0.1
  and busy = Config.with_data_toggle cfg 0.9 in
  Helpers.check_true "toggle raises write energy"
    (Operation.energy busy Operation.Write
    > Operation.energy quiet Operation.Write);
  Helpers.check_true "toggle raises read energy"
    (Operation.energy busy Operation.Read
    > Operation.energy quiet Operation.Read)

let test_banks_override () =
  let four =
    Config.commodity ~node:Node.N65 ~density_bits:(2.0 ** 30.0) ~banks:4 ()
  in
  Alcotest.(check int) "banks override" 4 four.Config.spec.Spec.banks;
  Alcotest.(check int) "bank bits follow" 2 four.Config.spec.Spec.bank_bits

let test_category_classifier () =
  List.iter
    (fun (label, expected) ->
      Alcotest.(check string) label
        (Report.category_name expected)
        (Report.category_name (Report.category_of_label label)))
    [ ("bitline sensing", Report.Array);
      ("cell restore", Report.Array);
      ("sense amplifier set", Report.Array);
      ("master wordline", Report.Row_path);
      ("logic: row command logic", Report.Row_path);
      ("column select line", Report.Column_path);
      ("master array data lines", Report.Column_path);
      ("read data bus", Report.Data_path);
      ("DQ pre-drivers", Report.Interface);
      ("logic: DLL / clock synchronisation", Report.Clocking);
      ("constant current sink", Report.Static);
      ("logic: central control logic", Report.Peripheral_logic) ]

let test_peak_currents () =
  let cfg = ddr3 () in
  let peaks = Peak.all cfg in
  Alcotest.(check int) "five operations" 5 (List.length peaks);
  (* Descending order. *)
  let rec desc = function
    | (a : Peak.t) :: (b :: _ as rest) ->
      a.Peak.current >= b.Peak.current && desc rest
    | _ -> true
  in
  Helpers.check_true "sorted by current" (desc peaks);
  let act = Peak.of_operation cfg Operation.Activate in
  Helpers.close_rel ~rel:1e-9 "current = charge / window"
    (act.Peak.charge /. act.Peak.window)
    act.Peak.current;
  Helpers.check_true "worst case above any single op"
    (List.for_all
       (fun (p : Peak.t) -> Peak.worst_case cfg > p.Peak.current)
       peaks);
  (* Peak currents dwarf the averages: the activate-window current
     exceeds the row-cycling increment spread over the whole tRC. *)
  let idd0_increment =
    Model.idd cfg (Pattern.idd0 cfg.Config.spec)
    -. Model.idd cfg Pattern.idle
  in
  Helpers.check_true "activate window current above the Idd0 increment"
    (act.Peak.current > idd0_increment)

let test_peak_scales_with_activation () =
  let cfg = ddr3 () in
  let small = Config.with_activation_fraction cfg 0.25 in
  let act c = (Peak.of_operation c Operation.Activate).Peak.current in
  Helpers.check_true "smaller activation, lower peak"
    (act small < act cfg)

let test_validate () =
  List.iter
    (fun cfg ->
      Helpers.check_true
        (cfg.Config.name ^ " validates clean")
        (Validate.check cfg = []))
    (Vdram_configs.Generations.all
    @ Vdram_configs.Devices.table3_devices);
  let cfg = ddr3 () in
  let d = cfg.Config.domains in
  let broken name mutated expect_error =
    let findings = Validate.check mutated in
    Helpers.check_true (name ^ " flagged") (findings <> []);
    if expect_error then
      Helpers.check_true (name ^ " is an error")
        (not (Validate.is_clean mutated))
  in
  broken "vpp without headroom"
    (Config.with_domains cfg { d with Vdram_circuits.Domains.vpp = 1.3 })
    true;
  broken "vint above vdd"
    (Config.with_domains cfg { d with Vdram_circuits.Domains.vint = 1.8 })
    true;
  broken "burst below prefetch"
    (Config.with_spec cfg
       { cfg.Config.spec with Spec.burst_length = 4; prefetch = 8 })
    true;
  broken "bad data toggle" { cfg with Config.data_toggle = 1.5 } true;
  broken "density mismatch"
    (Config.with_spec cfg { cfg.Config.spec with Spec.row_bits = 11 })
    false

let power_monotone_in_bitline_cap =
  QCheck.Test.make ~name:"power monotone in bitline capacitance" ~count:40
    QCheck.(float_range 1.0 3.0)
    (fun factor ->
      let cfg = ddr3 () in
      let t = cfg.Config.tech in
      let bigger =
        Config.with_tech cfg
          {
            t with
            Vdram_tech.Params.c_bitline =
              t.Vdram_tech.Params.c_bitline *. factor;
          }
      in
      let p = Pattern.idd0 cfg.Config.spec in
      Helpers.power bigger p >= Helpers.power cfg p)

let pattern_roundtrip =
  QCheck.Test.make ~name:"pattern to_string/parse round trip" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 4))
    (fun commands ->
      QCheck.assume (commands <> []);
      let cmd i =
        List.nth
          Pattern.[ Act; Pre; Rd; Wr; Nop ]
          i
      in
      let p = Pattern.v ~name:"q" (List.map (fun i -> (cmd i, 1)) commands) in
      match Pattern.parse ~name:"q" (Pattern.to_string p) with
      | Ok p' ->
        Pattern.cycles p = Pattern.cycles p'
        && List.for_all
             (fun c -> Pattern.count p c = Pattern.count p' c)
             Pattern.[ Act; Pre; Rd; Wr; Nop ]
      | Error e -> QCheck.Test.fail_report e)

let pattern_power_convex =
  QCheck.Test.make ~name:"adding nops never raises power" ~count:40
    QCheck.(int_range 1 64)
    (fun extra_nops ->
      let cfg = ddr3 () in
      let base = Pattern.v ~name:"b" [ (Pattern.Rd, 1); (Pattern.Nop, 3) ] in
      let padded =
        Pattern.v ~name:"p" [ (Pattern.Rd, 1); (Pattern.Nop, 3 + extra_nops) ]
      in
      Helpers.power cfg padded <= Helpers.power cfg base +. 1e-12)

let suite =
  [
    Alcotest.test_case "specification" `Quick test_spec;
    Alcotest.test_case "config structure" `Quick test_config_structure;
    Alcotest.test_case "activation fraction" `Quick test_activation_fraction;
    Alcotest.test_case "operation energies" `Quick test_operation_energies;
    Alcotest.test_case "pattern basics" `Quick test_pattern_basics;
    Alcotest.test_case "pattern parsing" `Quick test_pattern_parse;
    Alcotest.test_case "Idd loops" `Quick test_idd_loops;
    Alcotest.test_case "pattern power ordering" `Quick test_pattern_power;
    Alcotest.test_case "report invariants" `Quick test_report;
    Alcotest.test_case "report finiteness guard" `Quick
      test_report_is_finite;
    Alcotest.test_case "operation power" `Quick test_operation_power;
    Alcotest.test_case "standby states" `Quick test_states;
    Alcotest.test_case "Idd5B refresh current" `Quick test_idd5b;
    Alcotest.test_case "category breakdown" `Quick test_categories;
    Alcotest.test_case "commodity variants" `Quick test_commodity_variants;
    Alcotest.test_case "voltage monotonicity" `Quick test_monotone_in_voltage;
    Alcotest.test_case "Idd7 respects tFAW" `Quick test_idd7_respects_tfaw;
    Alcotest.test_case "contribution labels" `Quick test_contribution_labels;
    Alcotest.test_case "activation floor" `Quick test_activation_floor;
    Alcotest.test_case "data toggle monotone" `Quick
      test_data_toggle_monotone;
    Alcotest.test_case "banks override" `Quick test_banks_override;
    Alcotest.test_case "category classifier" `Quick test_category_classifier;
    Alcotest.test_case "validator" `Slow test_validate;
    Alcotest.test_case "peak currents" `Quick test_peak_currents;
    Alcotest.test_case "peak follows activation" `Quick
      test_peak_scales_with_activation;
    Helpers.qcheck power_monotone_in_bitline_cap;
    Helpers.qcheck pattern_roundtrip;
    Helpers.qcheck pattern_power_convex;
  ]
