(* Shared test fixtures and checks. *)

let close ?(eps = 1e-9) msg expected actual =
  let ok =
    if expected = 0.0 then Float.abs actual < eps
    else Float.abs ((actual -. expected) /. expected) < eps
  in
  if not ok then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let close_rel ~rel msg expected actual =
  close ~eps:rel msg expected actual

let check_positive msg v =
  if not (v > 0.0 && Float.is_finite v) then
    Alcotest.failf "%s: expected positive finite, got %g" msg v

let check_true msg b = Alcotest.(check bool) msg true b

(* Cached fixtures: building configs is cheap but not free. *)
let ddr3_1g = lazy (Vdram_configs.Devices.ddr3_1g ~node:Vdram_tech.Node.N65 ())

let ddr3_2g = lazy Vdram_configs.Devices.ddr3_2g

let sdr_128m = lazy Vdram_configs.Devices.sdr_128m

let ddr5_16g = lazy Vdram_configs.Devices.ddr5_16g

let power cfg pattern =
  (Vdram_core.Model.pattern_power cfg pattern).Vdram_core.Report.power

let qcheck = QCheck_alcotest.to_alcotest
