(* Test entry point: all suites. *)

let () =
  Alcotest.run "vdram"
    [
      ("units", Test_units.suite);
      ("tech", Test_tech.suite);
      ("floorplan", Test_floorplan.suite);
      ("circuits", Test_circuits.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("dsl", Test_dsl.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("semantic", Test_semantic.suite);
      ("advise", Test_advise.suite);
      ("datasheets", Test_datasheets.suite);
      ("configs", Test_configs.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("ablation", Test_ablation.suite);
      ("schemes", Test_schemes.suite);
      ("sim", Test_sim.suite);
      ("link", Test_link.suite);
      ("plot", Test_plot.suite);
      ("serve", Test_serve.suite);
      ("integration", Test_integration.suite);
    ]
