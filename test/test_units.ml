(* Units: SI prefixes and dimensioned literal parsing. *)

open Vdram_units

let check_parse expected_value expected_dim input () =
  match Quantity.parse input with
  | Ok (v, d) ->
    Helpers.close (Printf.sprintf "value of %S" input) expected_value v;
    Alcotest.(check string)
      (Printf.sprintf "dim of %S" input)
      (Quantity.dim_name expected_dim)
      (Quantity.dim_name d)
  | Error msg -> Alcotest.failf "parse %S failed: %s" input msg

let check_parse_error input () =
  match Quantity.parse input with
  | Ok (v, _) -> Alcotest.failf "parse %S unexpectedly ok: %g" input v
  | Error _ -> ()

let test_prefixes () =
  Alcotest.(check (option (float 0.0))) "G" (Some 1e9) (Si.multiplier "G");
  Alcotest.(check (option (float 0.0))) "u" (Some 1e-6) (Si.multiplier "u");
  Alcotest.(check (option (float 0.0))) "empty" (Some 1.0) (Si.multiplier "");
  Alcotest.(check (option (float 0.0))) "unknown" None (Si.multiplier "q")

let test_split_prefix () =
  (match Si.split_prefix "nm" with
   | Some (m, base) ->
     Helpers.close "nm multiplier" 1e-9 m;
     Alcotest.(check string) "nm base" "m" base
   | None -> Alcotest.fail "split nm");
  (match Si.split_prefix "m" with
   | Some (m, base) ->
     (* A bare "m" is metres, not milli. *)
     Helpers.close "m multiplier" 1.0 m;
     Alcotest.(check string) "m base" "m" base
   | None -> Alcotest.fail "split m")

let test_format_eng () =
  Alcotest.(check string) "fF" "42 fF" (Si.format_eng ~unit_symbol:"F" 42e-15);
  Alcotest.(check string) "um" "56.3 um"
    (Si.format_eng ~unit_symbol:"m" 56.3e-6);
  Alcotest.(check string) "GHz" "1.6 GHz"
    (Si.format_eng ~unit_symbol:"Hz" 1.6e9);
  Alcotest.(check string) "zero" "0 W" (Si.format_eng ~unit_symbol:"W" 0.0);
  Alcotest.(check string) "negative" "-2.5 mV"
    (Si.format_eng ~unit_symbol:"V" (-2.5e-3))

let test_parse_dim_mismatch () =
  (match Quantity.parse_dim Quantity.Length "5V" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "5V accepted as length");
  (match Quantity.parse_dim Quantity.Fraction "0.25" with
   | Ok v -> Helpers.close "scalar as fraction" 0.25 v
   | Error e -> Alcotest.fail e);
  match Quantity.parse_dim Quantity.Voltage "1.5V" with
  | Ok v -> Helpers.close "volt" 1.5 v
  | Error e -> Alcotest.fail e

let roundtrip_quantity =
  QCheck.Test.make ~name:"quantity print/parse round trip" ~count:500
    QCheck.(pair (float_range 1e-17 1e11) (int_range 0 7))
    (fun (v, dim_idx) ->
      let dim =
        List.nth
          Quantity.
            [ Length; Voltage; Capacitance; Frequency; Time; Current;
              Power; Energy ]
          dim_idx
      in
      let printed = Quantity.to_string ~digits:9 dim v in
      match Quantity.parse_dim dim printed with
      | Ok v' -> Float.abs (v' -. v) <= 1e-5 *. Float.abs v
      | Error msg -> QCheck.Test.fail_reportf "%s -> %s" printed msg)

let test_all_display_prefixes () =
  (* Every display prefix the formatter can choose must parse back. *)
  List.iter
    (fun (prefix, mult) ->
      let printed = Printf.sprintf "1.5 %sV" prefix in
      match Quantity.parse_dim Quantity.Voltage printed with
      | Ok v -> Helpers.close printed (1.5 *. mult) v
      | Error e -> Alcotest.failf "%s: %s" printed e)
    [ ("T", 1e12); ("G", 1e9); ("M", 1e6); ("k", 1e3); ("", 1.0);
      ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let test_whitespace_and_signs () =
  (match Quantity.parse "  -3.3V  " with
   | Ok (v, Quantity.Voltage) -> Helpers.close "negative volt" (-3.3) v
   | _ -> Alcotest.fail "trimmed negative parse");
  match Quantity.parse "42 fF" with
  | Ok (v, Quantity.Capacitance) -> Helpers.close "spaced unit" 42e-15 v
  | _ -> Alcotest.fail "spaced unit parse"

let test_bits_per_second_forms () =
  List.iter
    (fun (txt, expected) ->
      match Quantity.parse_dim Quantity.Datarate txt with
      | Ok v -> Helpers.close txt expected v
      | Error e -> Alcotest.failf "%s: %s" txt e)
    [ ("1.6Gbps", 1.6e9); ("800Mbps", 800e6); ("1.6Gb/s", 1.6e9);
      ("166Mb/s", 166e6) ]

let test_fraction_forms () =
  List.iter
    (fun (txt, expected) ->
      match Quantity.parse_dim Quantity.Fraction txt with
      | Ok v -> Helpers.close txt expected v
      | Error e -> Alcotest.failf "%s: %s" txt e)
    [ ("25%", 0.25); ("0.25", 0.25); ("100%", 1.0); ("12.5%", 0.125) ]

let test_digit_control () =
  Alcotest.(check string) "2 digits" "1.2 kW"
    (Si.format_eng ~digits:2 ~unit_symbol:"W" 1234.0);
  Alcotest.(check string) "6 digits" "1.234 kW"
    (Si.format_eng ~digits:6 ~unit_symbol:"W" 1234.0)

let test_cap_per_length_roundtrip () =
  let v = 0.35e-9 in
  let printed = Quantity.to_string Quantity.Cap_per_length v in
  match Quantity.parse_dim Quantity.Cap_per_length printed with
  | Ok v' -> Helpers.close_rel ~rel:1e-3 "F/m round trip" v v'
  | Error e -> Alcotest.failf "%s: %s" printed e

let suite =
  [
    Alcotest.test_case "prefix multipliers" `Quick test_prefixes;
    Alcotest.test_case "prefix splitting" `Quick test_split_prefix;
    Alcotest.test_case "engineering formatting" `Quick test_format_eng;
    Alcotest.test_case "165nm" `Quick (check_parse 165e-9 Quantity.Length "165nm");
    Alcotest.test_case "1.6Gbps" `Quick
      (check_parse 1.6e9 Quantity.Datarate "1.6Gbps");
    Alcotest.test_case "25%" `Quick (check_parse 0.25 Quantity.Fraction "25%");
    Alcotest.test_case "bare number" `Quick
      (check_parse 19.2 Quantity.Scalar "19.2");
    Alcotest.test_case "800MHz" `Quick
      (check_parse 800e6 Quantity.Frequency "800MHz");
    Alcotest.test_case "fF per um" `Quick
      (check_parse 0.25e-9 Quantity.Cap_per_length "0.25fF/um");
    Alcotest.test_case "50ns" `Quick (check_parse 50e-9 Quantity.Time "50ns");
    Alcotest.test_case "5mA" `Quick (check_parse 5e-3 Quantity.Current "5mA");
    Alcotest.test_case "exponent literal" `Quick
      (check_parse 5.3e-8 Quantity.Time "5.3e-8s");
    Alcotest.test_case "empty literal" `Quick (check_parse_error "");
    Alcotest.test_case "junk unit" `Quick (check_parse_error "17zorp");
    Alcotest.test_case "no number" `Quick (check_parse_error "nm");
    Alcotest.test_case "dimension checking" `Quick test_parse_dim_mismatch;
    Alcotest.test_case "all display prefixes" `Quick
      test_all_display_prefixes;
    Alcotest.test_case "whitespace and signs" `Quick
      test_whitespace_and_signs;
    Alcotest.test_case "bits-per-second forms" `Quick
      test_bits_per_second_forms;
    Alcotest.test_case "fraction forms" `Quick test_fraction_forms;
    Alcotest.test_case "digit control" `Quick test_digit_control;
    Alcotest.test_case "F/m round trip" `Quick test_cap_per_length_roundtrip;
    Helpers.qcheck roundtrip_quantity;
  ]
