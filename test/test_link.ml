(* Link and DIMM-level power (the Vddq piece the paper delegates to
   the link properties). *)

open Vdram_link
module Node = Vdram_tech.Node

let test_termination_validation () =
  Alcotest.check_raises "bad vddq"
    (Invalid_argument "Termination.v: vddq must be positive") (fun () ->
      ignore
        (Termination.v ~scheme:(Termination.Unterminated { c_load = 1e-12 })
           ~vddq:0.0 ()));
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Termination.v: resistances must be positive")
    (fun () ->
      ignore
        (Termination.v
           ~scheme:(Termination.Sstl { rtt = 0.0; r_driver = 34.0 })
           ~vddq:1.5 ()))

let test_unterminated_scaling () =
  let mk c =
    Termination.v ~scheme:(Termination.Unterminated { c_load = c })
      ~vddq:3.3 ~trace_cap:0.0 ()
  in
  let e c = Termination.energy_per_bit (mk c) ~bitrate:166e6 in
  Helpers.close_rel ~rel:1e-9 "pure CV^2: linear in load" 2.0
    (e 8e-12 /. e 4e-12);
  (* No DC component: energy per bit is rate-independent. *)
  let t = mk 8e-12 in
  Helpers.close_rel ~rel:1e-9 "rate independent"
    (Termination.energy_per_bit t ~bitrate:100e6)
    (Termination.energy_per_bit t ~bitrate:400e6)

let test_dc_amortization () =
  (* Terminated links amortize their standing current at higher
     rates: energy per bit falls with bitrate. *)
  let t = Termination.for_standard Node.Ddr3 in
  Helpers.check_true "SSTL energy/bit falls with rate"
    (Termination.energy_per_bit t ~bitrate:1600e6
    < Termination.energy_per_bit t ~bitrate:800e6);
  let p = Termination.for_standard Node.Ddr4 in
  Helpers.check_true "POD too"
    (Termination.energy_per_bit p ~bitrate:3200e6
    < Termination.energy_per_bit p ~bitrate:1600e6)

let test_pod_halves_sstl_dc () =
  (* Same resistances and voltage: POD burns half the SSTL DC power
     (current only while driving low). *)
  let sstl =
    Termination.v ~scheme:(Termination.Sstl { rtt = 40.0; r_driver = 40.0 })
      ~vddq:1.2 ~trace_cap:0.0 ~toggle:0.0 ()
  and pod =
    Termination.v ~scheme:(Termination.Pod { rtt = 40.0; r_driver = 40.0 })
      ~vddq:1.2 ~trace_cap:0.0 ~toggle:0.0 ()
  in
  (* toggle 0: pure DC.  SSTL: (V/2)^2/R; POD: V^2/(2R) = 2x. *)
  Helpers.close_rel ~rel:1e-9 "POD DC = 2x SSTL quarter-swing DC" 2.0
    (Termination.active_power pod ~bitrate:1e9
    /. Termination.active_power sstl ~bitrate:1e9)

let test_era_trend () =
  (* Link energy per bit falls monotonically across the interface
     roadmap at each era's data rate. *)
  let eras =
    [ (Node.Sdr, 166e6); (Node.Ddr, 400e6); (Node.Ddr2, 800e6);
      (Node.Ddr3, 1333e6); (Node.Ddr4, 2667e6); (Node.Ddr5, 5333e6) ]
  in
  let epbs =
    List.map
      (fun (std, rate) ->
        Termination.energy_per_bit (Termination.for_standard std)
          ~bitrate:rate)
      eras
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Helpers.check_true "era energy/bit decreasing" (decreasing epbs)

let test_channel () =
  let cfg = Lazy.force Helpers.ddr3_1g in
  let ch = Channel.for_config cfg in
  Helpers.close "bandwidth" (64.0 *. 1.066e9) (Channel.bandwidth ch);
  Helpers.check_positive "busy channel power" (Channel.power ch ~utilization:0.8);
  Helpers.check_true "utilization scales power"
    (Channel.power ch ~utilization:0.8 > Channel.power ch ~utilization:0.2);
  Helpers.close "idle channel burns nothing" 0.0
    (Channel.power ch ~utilization:0.0);
  Alcotest.check_raises "bad utilization"
    (Invalid_argument "Channel.power: utilization outside [0, 1]") (fun () ->
      ignore (Channel.power ch ~utilization:1.5))

let test_dimm_organizations () =
  let results =
    Dimm.compare_widths ~node:Node.N55
      ~capacity_bits:(64.0 *. (2.0 ** 30.0))
      [ 4; 8; 16 ]
  in
  (match results with
   | [ x4; x8; x16 ] ->
     Alcotest.(check int) "x4 rank has 16 devices" 16
       x4.Dimm.organization.Dimm.devices_per_rank;
     Alcotest.(check int) "x16 rank has 4 devices" 4
       x16.Dimm.organization.Dimm.devices_per_rank;
     (* Mini-rank's motivation: fewer devices per access. *)
     Helpers.check_true "active rank power falls with width"
       (x4.Dimm.active_rank_power > x8.Dimm.active_rank_power
       && x8.Dimm.active_rank_power > x16.Dimm.active_rank_power);
     Helpers.check_true "same delivered bandwidth"
       (Float.abs (x4.Dimm.bandwidth -. x16.Dimm.bandwidth)
        /. x4.Dimm.bandwidth
       < 1e-9);
     List.iter
       (fun r ->
         Helpers.close_rel ~rel:1e-9 "total adds up"
           (r.Dimm.active_rank_power +. r.Dimm.idle_ranks_power
          +. r.Dimm.link_power)
           r.Dimm.total_power)
       results
   | _ -> Alcotest.fail "expected three organizations");
  Alcotest.check_raises "bad width"
    (Invalid_argument "Dimm.of_width: 64 must be a multiple of the device width")
    (fun () ->
      ignore
        (Dimm.of_width ~node:Node.N55 ~io_width:12
           ~capacity_bits:(2.0 ** 33.0)))

let test_dimm_utilization () =
  let org =
    Dimm.of_width ~node:Node.N55 ~io_width:8
      ~capacity_bits:(16.0 *. (2.0 ** 30.0))
  in
  let low = Dimm.evaluate ~utilization:0.1 org
  and high = Dimm.evaluate ~utilization:0.9 org in
  Helpers.check_true "power rises with utilization"
    (high.Dimm.total_power > low.Dimm.total_power);
  Helpers.check_true "energy per bit falls with utilization"
    (high.Dimm.energy_per_bit < low.Dimm.energy_per_bit)

let test_system_above_device () =
  (* System energy per bit must exceed the bare device's energy per
     bit (it adds the link and idle ranks). *)
  let org =
    Dimm.of_width ~node:Node.N55 ~io_width:16
      ~capacity_bits:(8.0 *. (2.0 ** 30.0))
  in
  let r = Dimm.evaluate ~utilization:0.9 org in
  let device_epb =
    Option.get
      (Vdram_core.Model.energy_per_bit org.Dimm.device
         (Vdram_core.Pattern.idd7_mixed
            org.Dimm.device.Vdram_core.Config.spec))
  in
  Helpers.check_true "system epb above device epb"
    (r.Dimm.energy_per_bit > device_epb)

let test_for_config_matches_standard () =
  (* The channel built for a device uses its era's link and rate. *)
  let ddr2 = Vdram_configs.Devices.ddr2_1g ~node:Node.N75 () in
  let ch = Channel.for_config ddr2 in
  Alcotest.(check string) "SSTL for DDR2" "SSTL"
    (Termination.scheme_name ch.Channel.link.Termination.scheme);
  Helpers.close "rate follows the device" 800e6 ch.Channel.datarate;
  let ddr5 = Lazy.force Helpers.ddr5_16g in
  Alcotest.(check string) "POD for DDR5" "POD"
    (Termination.scheme_name
       (Channel.for_config ddr5).Channel.link.Termination.scheme)

let test_link_share_of_system () =
  (* At DDR3, the link is a visible but minor share of DIMM power. *)
  let org =
    Dimm.of_width ~node:Node.N55 ~io_width:8
      ~capacity_bits:(16.0 *. (2.0 ** 30.0))
  in
  let r = Dimm.evaluate ~utilization:0.5 org in
  let share = r.Dimm.link_power /. r.Dimm.total_power in
  Helpers.check_true
    (Printf.sprintf "link share plausible (%.2f)" share)
    (share > 0.02 && share < 0.30)

let suite =
  [
    Alcotest.test_case "termination validation" `Quick
      test_termination_validation;
    Alcotest.test_case "unterminated CV^2" `Quick test_unterminated_scaling;
    Alcotest.test_case "DC amortization" `Quick test_dc_amortization;
    Alcotest.test_case "POD vs SSTL DC" `Quick test_pod_halves_sstl_dc;
    Alcotest.test_case "era trend" `Quick test_era_trend;
    Alcotest.test_case "channel power" `Quick test_channel;
    Alcotest.test_case "DIMM organizations (mini-rank view)" `Slow
      test_dimm_organizations;
    Alcotest.test_case "DIMM utilization" `Slow test_dimm_utilization;
    Alcotest.test_case "system above device" `Quick
      test_system_above_device;
    Alcotest.test_case "channel follows the standard" `Quick
      test_for_config_matches_standard;
    Alcotest.test_case "link share of system" `Quick
      test_link_share_of_system;
  ]
