(* Description language: parser, elaborator, printer round trip. *)

open Vdram_dsl
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model

let minimal = "Device\nPart name=test node=65nm\nSpecification\nIO width=16\n"

let parse_ok src =
  match Parser.parse src with
  | Ok ast -> ast
  | Error e ->
    Alcotest.failf "parse failed: %s" (Format.asprintf "%a" Parser.pp_error e)

let elaborate_ok src =
  match Elaborate.load_string src with
  | Ok t -> t
  | Error e ->
    Alcotest.failf "elaborate failed: %s" (Format.asprintf "%a" Parser.pp_error e)

let test_parser_sections () =
  let ast = parse_ok "Device\nPart name=x node=65nm\n# comment\nTechnology\nSet cbitline=80fF\n" in
  Alcotest.(check int) "two sections" 2 (List.length ast);
  let dev = List.hd (Ast.find_sections ast "device") in
  Alcotest.(check int) "one statement" 1 (List.length dev.Ast.stmts);
  let stmt = List.hd dev.Ast.stmts in
  Alcotest.(check (option string)) "name arg" (Some "x") (Ast.arg stmt "NAME")

let test_parser_comments_and_spacing () =
  let ast =
    parse_ok
      "Device\nPart name=x node=65nm // trailing\n  \t \nSpecification\nIO \
       width = 16 datarate=1.6Gbps\n"
  in
  let spec = List.hd (Ast.find_sections ast "Specification") in
  let stmt = List.hd spec.Ast.stmts in
  Alcotest.(check (option string)) "spaced equals fused" (Some "16")
    (Ast.arg stmt "width")

let test_parser_blocks_list () =
  let ast =
    parse_ok "FloorplanPhysical\nVertical blocks = A1 P1 P2 P1 A1\n"
  in
  let fp = List.hd ast in
  let stmt = List.hd fp.Ast.stmts in
  Alcotest.(check (list string)) "positional names"
    [ "A1"; "P1"; "P2"; "P1"; "A1" ]
    stmt.Ast.positional

let test_parser_errors () =
  (match Parser.parse "stray statement\n" with
   | Error e ->
     Alcotest.(check int) "line number" 1 e.Parser.line
   | Ok _ -> Alcotest.fail "statement before section accepted");
  match Parser.parse "Device\nPart =broken\n" with
  | Error e -> Alcotest.(check int) "error line" 2 e.Parser.line
  | Ok _ -> Alcotest.fail "malformed assignment accepted"

let test_elaborate_minimal () =
  let { Elaborate.config; pattern } = elaborate_ok minimal in
  Alcotest.(check string) "name" "test" config.Config.name;
  Alcotest.(check bool) "no pattern" true (pattern = None);
  Alcotest.(check int) "io width" 16 config.Config.spec.Vdram_core.Spec.io_width

let test_elaborate_overrides () =
  let src =
    minimal
    ^ "Technology\nSet cbitline=99fF toxlogic=4nm\nVoltages\nSupply \
       vbl=1.1V\nEfficiency pp=33%\nPattern\nPattern loop= act nop pre nop\n"
  in
  let { Elaborate.config; pattern } = elaborate_ok src in
  Helpers.close "bitline override" 99e-15
    config.Config.tech.Vdram_tech.Params.c_bitline;
  Helpers.close "tox override" 4e-9
    config.Config.tech.Vdram_tech.Params.tox_logic;
  Helpers.close "vbl override" 1.1
    config.Config.domains.Vdram_circuits.Domains.vbl;
  Helpers.close "pump efficiency override" 0.33
    config.Config.domains.Vdram_circuits.Domains.eff_pp;
  match pattern with
  | Some p -> Alcotest.(check int) "pattern length" 4 (Pattern.cycles p)
  | None -> Alcotest.fail "pattern missing"

let test_elaborate_signaling () =
  let src =
    minimal
    ^ "FloorplanSignaling\nWriteData wires=16 length=450um NchW=9.6um \
       PchW=19.2um mux=1:8\nWriteData length=1.2mm toggle=50%\n"
  in
  let { Elaborate.config; _ } = elaborate_ok src in
  match Config.bus config Vdram_circuits.Bus.Write_data with
  | None -> Alcotest.fail "write bus missing"
  | Some bus ->
    Alcotest.(check int) "two segments" 2
      (List.length bus.Vdram_circuits.Bus.segments);
    Helpers.close "explicit length" (0.45e-3 +. 1.2e-3)
      (Vdram_circuits.Bus.total_length bus)

let test_elaborate_logic_blocks () =
  let src =
    minimal
    ^ "LogicBlocks\nBlock name=ctl gates=1234 toggle=20% trigger=always\n\
       Block name=row gates=500 trigger=act,pre\n"
  in
  let { Elaborate.config; _ } = elaborate_ok src in
  Alcotest.(check int) "two blocks" 2 (List.length config.Config.logic);
  let row =
    List.find
      (fun b -> b.Vdram_circuits.Logic_block.name = "row")
      config.Config.logic
  in
  (match row.Vdram_circuits.Logic_block.trigger with
   | Vdram_circuits.Logic_block.On_operation ops ->
     Alcotest.(check int) "two trigger ops" 2 (List.length ops)
   | Vdram_circuits.Logic_block.Always -> Alcotest.fail "wrong trigger")

let test_elaborate_errors () =
  let cases =
    [
      ("missing device", "Specification\nIO width=16\n");
      ("unknown tech parameter", minimal ^ "Technology\nSet bogus=1\n");
      ("bad unit", minimal ^ "Technology\nSet cbitline=99V\n");
      ("bad mux", minimal ^ "FloorplanSignaling\nWriteData length=1mm mux=2:3\n");
      ("bad trigger", minimal ^ "LogicBlocks\nBlock name=x gates=1 trigger=zap\n");
      ("segment without length",
       minimal ^ "FloorplanSignaling\nWriteData toggle=50%\n");
      ("bad pattern", minimal ^ "Pattern\nPattern loop= act zap\n");
    ]
  in
  List.iter
    (fun (name, src) ->
      match Elaborate.load_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" name)
    cases

let test_floorplan_section () =
  let src =
    "Device\nPart name=fp node=65nm\nSpecification\nIO width=16\n\
     FloorplanPhysical\n\
     CellArray BitsPerBL=512 BitsPerLWL=512 BLtype=open Page=16384\n\
     Horizontal blocks = A0 R0 A1\nVertical blocks = C0 AR0 P0 AR1 C1\n\
     SizeHorizontal R0=200um\nSizeVertical C0=180um P0=600um C1=180um\n\
     Banks number=8\n"
  in
  (* Banks is in Specification per the grammar; this exercises the
     explicit axis lists. *)
  let src = String.concat "" [ src ] in
  let { Elaborate.config; _ } = elaborate_ok src in
  let fp = config.Config.floorplan in
  Alcotest.(check int) "3 horizontal blocks" 3
    (Array.length fp.Vdram_floorplan.Floorplan.horizontal);
  Alcotest.(check int) "5 vertical blocks" 5
    (Array.length fp.Vdram_floorplan.Floorplan.vertical);
  Helpers.close "row logic sized" 200e-6
    fp.Vdram_floorplan.Floorplan.horizontal.(1).Vdram_floorplan.Floorplan.size

let test_roundtrip_power () =
  List.iter
    (fun cfg ->
      let src = Printer.to_dsl ~pattern:Pattern.paper_example cfg in
      let { Elaborate.config; pattern } = elaborate_ok src in
      let p = Option.get pattern in
      Helpers.close_rel ~rel:1e-6
        ("round-trip power of " ^ cfg.Config.name)
        (Helpers.power cfg p) (Helpers.power config p);
      let spec = cfg.Config.spec and spec' = config.Config.spec in
      Helpers.close_rel ~rel:1e-6 "round-trip Idd0"
        (Model.idd cfg (Pattern.idd0 spec))
        (Model.idd config (Pattern.idd0 spec')))
    [ Lazy.force Helpers.ddr3_1g; Lazy.force Helpers.sdr_128m;
      Lazy.force Helpers.ddr5_16g ]

let test_crlf_and_case () =
  let src =
    "Device\r\nPart name=x node=65nm\r\nSpecification\r\nIO width=8\r\n"
  in
  let { Elaborate.config; _ } = elaborate_ok src in
  Alcotest.(check int) "CRLF accepted" 8
    config.Config.spec.Vdram_core.Spec.io_width

let test_technology_key_inventory () =
  Alcotest.(check int) "39 technology keys" 39
    (List.length Elaborate.technology_keys);
  Alcotest.(check int) "38 dims" 38 (List.length Elaborate.technology_dims);
  (* Every float key round-trips through a Set statement. *)
  List.iteri
    (fun i key ->
      if key <> "bitspercsl" then begin
        let dim = List.nth Elaborate.technology_dims i in
        let unit = Vdram_units.Quantity.unit_symbol dim in
        let src =
          Printf.sprintf "%sTechnology\nSet %s=0.012345%s\n" minimal key unit
        in
        let { Elaborate.config; _ } = elaborate_ok src in
        let value =
          List.nth
            (List.map
               (fun (_, get, _) -> get config.Config.tech)
               Vdram_tech.Params.fields)
            i
        in
        Helpers.close_rel ~rel:1e-9 (key ^ " override") 0.012345 value
      end)
    Elaborate.technology_keys

let test_signaling_coordinates () =
  (* start/end and inside resolve against the floorplan. *)
  let src =
    minimal
    ^ "FloorplanSignaling\nRowAddress start=0_1 end=2_1\nRowAddress \
       inside=0_1 fraction=50% dir=v\n"
  in
  let { Elaborate.config; _ } = elaborate_ok src in
  match Config.bus config Vdram_circuits.Bus.Row_address with
  | None -> Alcotest.fail "row address bus missing"
  | Some bus ->
    let fp = config.Config.floorplan in
    let expected =
      Vdram_floorplan.Floorplan.route_length fp (0, 1) (2, 1)
      +. Vdram_floorplan.Floorplan.inside_length fp (0, 1) ~frac:0.5 ~dir:`V
    in
    Helpers.close_rel ~rel:1e-9 "coordinate lengths"
      expected
      (Vdram_circuits.Bus.total_length bus)

let test_activation_via_dsl () =
  let src = minimal ^ "Specification\nInterface activation=25%\n" in
  let { Elaborate.config; _ } = elaborate_ok src in
  Helpers.close "activation fraction" 0.25 config.Config.activation_fraction

let test_pattern_case_insensitive () =
  let src = minimal ^ "Pattern\nPattern loop= ACT NOP RD NOP PRE NOP\n" in
  let { Elaborate.pattern; _ } = elaborate_ok src in
  match pattern with
  | Some p -> Alcotest.(check int) "six slots" 6 (Pattern.cycles p)
  | None -> Alcotest.fail "pattern missing"

let roundtrip_any_generation =
  QCheck.Test.make ~name:"round trip across nodes and densities" ~count:12
    QCheck.(pair (int_range 0 13) (int_range 0 2))
    (fun (node_idx, density_step) ->
      let node = List.nth Vdram_tech.Node.all node_idx in
      let g = Vdram_tech.Roadmap.generation node in
      let density =
        g.Vdram_tech.Roadmap.density_bits *. (2.0 ** float_of_int (- density_step))
      in
      QCheck.assume (density >= 2.0 ** 27.0);
      match
        Config.commodity ~node ~density_bits:density ()
      with
      | exception Invalid_argument _ -> QCheck.assume_fail ()
      | cfg ->
        let src = Printer.to_dsl ~pattern:Pattern.paper_example cfg in
        (match Elaborate.load_string src with
         | Error e ->
           QCheck.Test.fail_reportf "reload failed: %s"
             (Format.asprintf "%a" Parser.pp_error e)
         | Ok { Elaborate.config; pattern } ->
           let p = Option.get pattern in
           let a = Helpers.power cfg p and b = Helpers.power config p in
           Float.abs (a -. b) /. a < 1e-6))

let test_variant_roundtrip () =
  List.iter
    (fun cfg ->
      let src = Printer.to_dsl ~pattern:Pattern.paper_example cfg in
      let { Elaborate.config; pattern } = elaborate_ok src in
      let p = Option.get pattern in
      Helpers.close_rel ~rel:1e-6
        ("variant round trip " ^ cfg.Config.name)
        (Helpers.power cfg p) (Helpers.power config p))
    [ Vdram_configs.Variants.mobile ~node:Vdram_tech.Node.N55 ();
      Vdram_configs.Variants.graphics ~node:Vdram_tech.Node.N55 () ]

let dsl_fuzz_no_crash =
  QCheck.Test.make ~name:"parser never raises on junk" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      match Parser.parse s with Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "sections and args" `Quick test_parser_sections;
    Alcotest.test_case "comments and spacing" `Quick
      test_parser_comments_and_spacing;
    Alcotest.test_case "block lists" `Quick test_parser_blocks_list;
    Alcotest.test_case "parser errors carry lines" `Quick test_parser_errors;
    Alcotest.test_case "minimal device" `Quick test_elaborate_minimal;
    Alcotest.test_case "overrides" `Quick test_elaborate_overrides;
    Alcotest.test_case "signaling section" `Quick test_elaborate_signaling;
    Alcotest.test_case "logic blocks section" `Quick
      test_elaborate_logic_blocks;
    Alcotest.test_case "elaboration errors" `Quick test_elaborate_errors;
    Alcotest.test_case "explicit floorplan" `Quick test_floorplan_section;
    Alcotest.test_case "print/parse round trip preserves power" `Slow
      test_roundtrip_power;
    Alcotest.test_case "CRLF input" `Quick test_crlf_and_case;
    Alcotest.test_case "all 39 technology keys" `Quick
      test_technology_key_inventory;
    Alcotest.test_case "signaling coordinates" `Quick
      test_signaling_coordinates;
    Alcotest.test_case "activation via DSL" `Quick test_activation_via_dsl;
    Alcotest.test_case "pattern case-insensitive" `Quick
      test_pattern_case_insensitive;
    Alcotest.test_case "variant round trip" `Slow test_variant_roundtrip;
    Helpers.qcheck roundtrip_any_generation;
    Helpers.qcheck dsl_fuzz_no_crash;
  ]
