(* Circuits: domains, contributions, sense-amp, wordline, column,
   logic blocks, buses. *)

open Vdram_circuits
module P = Vdram_tech.Params
module G = Vdram_floorplan.Array_geometry

let domains_ddr3 () =
  Domains.v ~vdd:1.5 ~vint:1.4 ~vbl:1.2 ~vpp:2.8 ()

let geometry () =
  G.derive ~style:G.Open ~bank_bits:(2.0 ** 27.0) ~page_bits:16384
    ~bits_per_bitline:512 ~bits_per_lwl:512 ~wl_pitch:195e-9
    ~bl_pitch:130e-9 ~sa_stripe:9e-6 ~lwd_stripe:3.4e-6 ()

let test_domains () =
  let d = domains_ddr3 () in
  Helpers.close "linear efficiency" (1.4 /. 1.5)
    (Domains.efficiency d Domains.Vint);
  Helpers.close "vdd lossless" 1.0 (Domains.efficiency d Domains.Vdd);
  Helpers.check_true "pump efficiency below 1"
    (Domains.efficiency d Domains.Vpp < 1.0);
  Helpers.close "at_vdd divides by efficiency"
    (1.0 /. Domains.efficiency d Domains.Vbl)
    (Domains.at_vdd d Domains.Vbl 1.0);
  Alcotest.check_raises "negative voltage rejected"
    (Invalid_argument "Domains.v: voltages must be positive") (fun () ->
      ignore (Domains.v ~vdd:(-1.0) ~vint:1.0 ~vbl:1.0 ~vpp:2.0 ()))

let test_pump_efficiency () =
  (* A 2.9 V pump from 1.5 V doubles once: high ideal efficiency. *)
  let e1 = Domains.pump_efficiency ~vdd:1.5 ~vout:2.9 in
  Helpers.check_true "DDR3-era pump decent" (e1 > 0.7 && e1 < 0.9);
  (* A 3.9 V pump from 3.3 V wastes most of the doubled charge. *)
  let e2 = Domains.pump_efficiency ~vdd:3.3 ~vout:3.9 in
  Helpers.check_true "SDR-era pump poor" (e2 < 0.55)

let test_contribution () =
  Helpers.close "half CV^2" (0.5 *. 1e-12 *. 1.44)
    (Contribution.event ~cap:1e-12 ~voltage:1.2);
  Helpers.close "events scale" (3.0 *. Contribution.event ~cap:1e-12 ~voltage:1.2)
    (Contribution.events ~count:3.0 ~cap:1e-12 ~voltage:1.2);
  let d = domains_ddr3 () in
  let cs =
    [ Contribution.v ~label:"a" ~domain:Domains.Vdd ~energy:1.0;
      Contribution.v ~label:"b" ~domain:Domains.Vint ~energy:1.0 ]
  in
  Helpers.close "total at vdd"
    (1.0 +. (1.0 /. Domains.efficiency d Domains.Vint))
    (Contribution.total_at_vdd d cs);
  match Contribution.by_label (cs @ cs) with
  | [ (_, e1); (_, e2) ] ->
    Helpers.close "by_label merges" 2.0 e1;
    Helpers.close "by_label merges b" 2.0 e2
  | other ->
    Alcotest.failf "expected 2 labels, got %d" (List.length other)

let energy_of contributions =
  List.fold_left
    (fun acc (c : Contribution.t) -> acc +. c.Contribution.energy)
    0.0 contributions

let test_sense_amp () =
  let p = P.reference and d = domains_ddr3 () and g = geometry () in
  Alcotest.(check int) "9 transistors per open pair" 9
    (Sense_amp.transistors_per_pair g);
  Alcotest.(check int) "11 transistors per folded pair" 11
    (Sense_amp.transistors_per_pair { g with G.style = G.Folded });
  let e_full = energy_of (Sense_amp.activate p d ~geometry:g ~page_bits:16384)
  and e_half = energy_of (Sense_amp.activate p d ~geometry:g ~page_bits:8192) in
  Helpers.close ~eps:1e-9 "activate linear in page" 2.0 (e_full /. e_half);
  Helpers.check_true "precharge cheaper than activate"
    (energy_of (Sense_amp.precharge p d ~geometry:g ~page_bits:16384) < e_full);
  (* Bitline term dominates and scales with c_bitline. *)
  let p2 = { p with P.c_bitline = p.P.c_bitline *. 2.0 } in
  let e2 = energy_of (Sense_amp.activate p2 d ~geometry:g ~page_bits:16384) in
  Helpers.check_true "more bitline cap, more energy" (e2 > e_full *. 1.3)

let test_write_back () =
  let p = P.reference and d = domains_ddr3 () in
  let e0 = energy_of (Sense_amp.write_back p d ~bits:128 ~toggle:0.0)
  and e5 = energy_of (Sense_amp.write_back p d ~bits:128 ~toggle:0.5)
  and e1 = energy_of (Sense_amp.write_back p d ~bits:128 ~toggle:1.0) in
  Helpers.close "no toggles, no overwrite energy" 0.0 e0;
  Helpers.close ~eps:1e-9 "linear in toggle" 2.0 (e1 /. e5)

let test_wordline () =
  let p = P.reference and d = domains_ddr3 () and g = geometry () in
  Helpers.check_positive "MWL capacitance" (Wordline.mwl_capacitance p ~geometry:g);
  Helpers.check_positive "LWL capacitance" (Wordline.lwl_capacitance p ~geometry:g);
  (* The local wordline carries the cell gates: zeroing the cell width
     reduces it. *)
  let p0 = { p with P.w_cell = 1e-12 } in
  Helpers.check_true "cell gates load the LWL"
    (Wordline.lwl_capacitance p0 ~geometry:g
    < Wordline.lwl_capacitance p ~geometry:g);
  let act = energy_of (Wordline.activate p d ~geometry:g ~page_bits:16384)
  and pre = energy_of (Wordline.precharge p d ~geometry:g ~page_bits:16384) in
  Helpers.check_positive "wordline activate energy" act;
  Helpers.check_true "activate >= precharge (adds decode)" (act >= pre)

let test_column () =
  let p = P.reference and d = domains_ddr3 () and g = geometry () in
  let e r = energy_of (Column.access p d ~geometry:g ~bits:r ~write:false) in
  Helpers.close ~eps:1e-9 "column linear in bits" 2.0 (e 256 /. e 128);
  let er = energy_of (Column.access p d ~geometry:g ~bits:128 ~write:false)
  and ew = energy_of (Column.access p d ~geometry:g ~bits:128 ~write:true) in
  Helpers.check_true "write adds driver energy" (ew > er);
  Helpers.check_positive "CSL capacitance" (Column.csl_capacitance p ~geometry:g)

let test_logic_block () =
  let p = P.reference and d = domains_ddr3 () in
  let b =
    Logic_block.v ~name:"test" ~gates:1000.0 ~trigger:Logic_block.Always ()
  in
  let e1 = Logic_block.energy_per_fire p d b in
  Helpers.check_positive "block energy" e1;
  let b2 = { b with Logic_block.gates = 2000.0 } in
  Helpers.close ~eps:1e-9 "linear in gates" 2.0
    (Logic_block.energy_per_fire p d b2 /. e1);
  let wide = Logic_block.scale_widths 2.0 b in
  Helpers.check_true "wider devices, more energy"
    (Logic_block.energy_per_fire p d wide > e1);
  Helpers.check_positive "block area" (Logic_block.area p b);
  Alcotest.check_raises "negative gates rejected"
    (Invalid_argument "Logic_block.v: negative gate count") (fun () ->
      ignore
        (Logic_block.v ~name:"bad" ~gates:(-1.0) ~trigger:Logic_block.Always ()))

let test_bus () =
  let p = P.reference and d = domains_ddr3 () in
  let seg l = Bus.segment ~name:"s" ~length:l () in
  let bus n = Bus.v ~name:"b" ~role:Bus.Read_data ~wires:8 (List.map seg n) in
  let e1 = Bus.energy_per_bit p d (bus [ 1e-3 ])
  and e2 = Bus.energy_per_bit p d (bus [ 1e-3; 1e-3 ]) in
  Helpers.close ~eps:1e-9 "segments add" 2.0 (e2 /. e1);
  Helpers.close ~eps:1e-9 "event = wires x bit" 8.0
    (Bus.energy_per_event p d (bus [ 1e-3 ]) /. e1);
  let buffered =
    Bus.v ~name:"b" ~role:Bus.Read_data ~wires:8
      [ Bus.segment ~name:"s" ~length:1e-3 ~buffer:(5e-6, 10e-6) () ]
  in
  Helpers.check_true "buffer adds load"
    (Bus.energy_per_bit p d buffered > e1);
  Helpers.close "total length" 2e-3 (Bus.total_length (bus [ 1e-3; 1e-3 ]));
  Alcotest.check_raises "zero wires rejected"
    (Invalid_argument "Bus.v: wires must be positive") (fun () ->
      ignore (Bus.v ~name:"b" ~role:Bus.Clock ~wires:0 []))

let test_lwl_cap_hand_check () =
  let p = P.reference and g = geometry () in
  let expected_wire = p.P.c_wire_lwl *. (512.0 *. 130e-9) in
  let cell_gate =
    Vdram_tech.Devices.gate_cap_of p Vdram_tech.Devices.Cell ~w:p.P.w_cell
      ~l:p.P.l_cell
  in
  let coupling =
    512.0 *. p.P.bl_wl_coupling *. p.P.c_bitline /. 512.0
  in
  let restore =
    Vdram_tech.Devices.junction_cap_of p Vdram_tech.Devices.High_voltage
      ~w:p.P.w_lwd_restore
  in
  Helpers.close_rel ~rel:1e-9 "LWL capacitance formula"
    (expected_wire +. (512.0 *. cell_gate) +. coupling +. restore)
    (Wordline.lwl_capacitance p ~geometry:g)

let test_csl_grows_with_sharing () =
  let p = P.reference and g = geometry () in
  let shared = { g with G.csl_blocks = 2 } in
  Helpers.check_true "CSL over two blocks is longer"
    (Column.csl_capacitance p ~geometry:shared
    > 1.5 *. Column.csl_capacitance p ~geometry:g)

let test_bus_toggle_scaling () =
  let p = P.reference and d = domains_ddr3 () in
  let seg t = Bus.segment ~name:"s" ~length:1e-3 ~toggle:t () in
  let bus t = Bus.v ~name:"b" ~role:Bus.Command ~wires:4 [ seg t ] in
  Helpers.close ~eps:1e-9 "toggle scales energy"
    (0.5 *. Bus.energy_per_event p d (bus 1.0))
    (Bus.energy_per_event p d (bus 0.5))

let test_logic_density_effects () =
  let p = P.reference and d = domains_ddr3 () in
  let base =
    Logic_block.v ~name:"b" ~gates:1000.0 ~trigger:Logic_block.Always ()
  in
  let dense = { base with Logic_block.layout_density = 0.6 } in
  (* Denser layout, shorter local wiring, less energy. *)
  Helpers.check_true "density reduces wiring energy"
    (Logic_block.energy_per_fire p d dense
    < Logic_block.energy_per_fire p d base);
  Helpers.check_true "density reduces area"
    (Logic_block.area p dense < Logic_block.area p base)

let test_domains_at_vdd_each () =
  let d = domains_ddr3 () in
  List.iter
    (fun dom ->
      Helpers.check_true
        (Domains.domain_name dom ^ " at_vdd >= energy")
        (Domains.at_vdd d dom 1.0 >= 1.0))
    [ Domains.Vdd; Domains.Vint; Domains.Vbl; Domains.Vpp ]

let test_folded_carries_more_devices () =
  let p = P.reference and d = domains_ddr3 () in
  let g = geometry () in
  let folded = { g with G.style = G.Folded } in
  let e s = 
    List.fold_left (fun a (c : Contribution.t) -> a +. c.Contribution.energy)
      0.0 (Sense_amp.activate p d ~geometry:s ~page_bits:16384)
  in
  Helpers.check_true "folded activate costs at least open"
    (e folded >= e g)

let contribution_scaling =
  QCheck.Test.make ~name:"contribution energy quadratic in voltage"
    ~count:300
    QCheck.(pair (float_range 0.1 5.0) (float_range 1e-15 1e-9))
    (fun (v, cap) ->
      let e1 = Contribution.event ~cap ~voltage:v
      and e2 = Contribution.event ~cap ~voltage:(2.0 *. v) in
      Float.abs ((e2 /. e1) -. 4.0) < 1e-6)

let suite =
  [
    Alcotest.test_case "voltage domains" `Quick test_domains;
    Alcotest.test_case "pump efficiencies" `Quick test_pump_efficiency;
    Alcotest.test_case "contributions" `Quick test_contribution;
    Alcotest.test_case "sense amplifier (Fig 2)" `Quick test_sense_amp;
    Alcotest.test_case "write-back" `Quick test_write_back;
    Alcotest.test_case "wordline path (Fig 3)" `Quick test_wordline;
    Alcotest.test_case "column path" `Quick test_column;
    Alcotest.test_case "logic blocks" `Quick test_logic_block;
    Alcotest.test_case "signal buses" `Quick test_bus;
    Alcotest.test_case "LWL capacitance formula" `Quick
      test_lwl_cap_hand_check;
    Alcotest.test_case "CSL sharing" `Quick test_csl_grows_with_sharing;
    Alcotest.test_case "bus toggle scaling" `Quick test_bus_toggle_scaling;
    Alcotest.test_case "logic density effects" `Quick
      test_logic_density_effects;
    Alcotest.test_case "at_vdd per domain" `Quick test_domains_at_vdd_each;
    Alcotest.test_case "folded device load" `Quick
      test_folded_carries_more_devices;
    Helpers.qcheck contribution_scaling;
  ]
