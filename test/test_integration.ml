(* Cross-module integration: DSL -> model -> analysis -> simulator. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Spec = Vdram_core.Spec

let sample_dram = {|
# 1 Gb DDR3 x16 described from scratch
Device
Part name=integration_ddr3 node=65nm

Specification
IO width=16 datarate=1.066Gbps
Control frequency=533MHz
Density mbits=1024
Banks number=8
Burst length=8 prefetch=8
Timing trc=55ns trcd=16.5ns trp=16.5ns

FloorplanPhysical
CellArray BitsPerBL=512 BitsPerLWL=512 BLtype=open Page=16384

Voltages
Supply vdd=1.5V vint=1.4V vbl=1.2V vpp=2.8V

Pattern
Pattern loop= act nop wrt nop rd nop pre nop
|}

let test_dsl_matches_api () =
  match Vdram_dsl.Elaborate.load_string sample_dram with
  | Error e ->
    Alcotest.failf "elaborate: %s" (Format.asprintf "%a" Vdram_dsl.Parser.pp_error e)
  | Ok { Vdram_dsl.Elaborate.config; pattern } ->
    let api =
      Vdram_configs.Devices.ddr3_1g ~io_width:16 ~datarate:1.066e9
        ~node:Vdram_tech.Node.N65 ()
    in
    let p = Option.get pattern in
    let from_dsl = Helpers.power config p and from_api = Helpers.power api p in
    (* Same device described two ways: within a few percent (the DSL
       text rounds some numbers). *)
    Helpers.check_true
      (Printf.sprintf "DSL vs API power (%.1f vs %.1f mW)"
         (from_dsl *. 1e3) (from_api *. 1e3))
      (Float.abs (from_dsl -. from_api) /. from_api < 0.05)

let test_dsl_to_sensitivity () =
  match Vdram_dsl.Elaborate.load_string sample_dram with
  | Error _ -> Alcotest.fail "elaborate failed"
  | Ok { Vdram_dsl.Elaborate.config; _ } ->
    let s = Vdram_analysis.Sensitivity.run config in
    (match Vdram_analysis.Sensitivity.top 1 s with
     | [ e ] ->
       Alcotest.(check string) "Vint first via DSL too"
         "internal voltage Vint" e.Vdram_analysis.Sensitivity.lens_name
     | _ -> Alcotest.fail "no entries")

let test_dsl_to_simulator () =
  match Vdram_dsl.Elaborate.load_string sample_dram with
  | Error _ -> Alcotest.fail "elaborate failed"
  | Ok { Vdram_dsl.Elaborate.config; _ } ->
    let trace =
      Vdram_sim.Trace.streaming ~requests:1000 ~arrival_gap:4
        ~banks:config.Config.spec.Spec.banks ~rows:256 ~columns:64
        ~write_fraction:0.25
    in
    let run = Vdram_sim.Sim.simulate config trace in
    Helpers.check_positive "simulated energy"
      run.Vdram_sim.Sim.energy.Vdram_sim.Energy_model.energy

let test_example_file_on_disk () =
  (* Every description the repository ships must load and model. *)
  List.iter
    (fun name ->
      let path = Filename.concat "../examples" name in
      if Sys.file_exists path then
        match Vdram_dsl.Elaborate.load_file path with
        | Ok { Vdram_dsl.Elaborate.config; pattern } ->
          let p =
            Option.value ~default:Pattern.paper_example pattern
          in
          Helpers.check_positive ("power from " ^ name)
            (Helpers.power config p)
        | Error e ->
          Alcotest.failf "%s rejected: %s" name
            (Format.asprintf "%a" Vdram_dsl.Parser.pp_error e)
      else () (* running outside the source tree *))
    [ "ddr3_1gb.dram"; "sdr_128m.dram"; "ddr5_16g.dram";
      "lpddr_mobile.dram" ]

let test_pattern_equivalence () =
  (* Per-operation energies recombine into pattern power: computing
     the paper-example loop by hand matches the model. *)
  let cfg = Lazy.force Helpers.ddr3_1g in
  let spec = cfg.Config.spec in
  let loop_time = 8.0 /. spec.Spec.control_clock in
  let e op = Vdram_core.Operation.energy cfg op in
  let by_hand =
    Model.background_power cfg
    +. ((e Vdram_core.Operation.Activate +. e Vdram_core.Operation.Precharge
         +. e Vdram_core.Operation.Read +. e Vdram_core.Operation.Write)
        /. loop_time)
  in
  Helpers.close_rel ~rel:1e-9 "pattern power recombines" by_hand
    (Helpers.power cfg Pattern.paper_example)

let test_sim_agrees_with_idd4 () =
  (* A saturated streaming read trace approaches the Idd4R pattern. *)
  let cfg = Lazy.force Helpers.ddr3_1g in
  let spec = cfg.Config.spec in
  let trace =
    Vdram_sim.Trace.streaming ~requests:4000
      ~arrival_gap:(Spec.clocks_per_column_command spec)
      ~banks:spec.Spec.banks ~rows:512 ~columns:128 ~write_fraction:0.0
  in
  let run = Vdram_sim.Sim.simulate cfg trace in
  let sim_power = run.Vdram_sim.Sim.energy.Vdram_sim.Energy_model.average_power in
  let idd4r_power = Helpers.power cfg (Pattern.idd4r spec) in
  Helpers.check_true
    (Printf.sprintf "simulated stream near Idd4R (%.0f vs %.0f mW)"
       (sim_power *. 1e3) (idd4r_power *. 1e3))
    (sim_power > idd4r_power *. 0.7 && sim_power < idd4r_power *. 1.3)

let suite =
  [
    Alcotest.test_case "DSL matches API-built device" `Quick
      test_dsl_matches_api;
    Alcotest.test_case "DSL feeds sensitivity" `Slow test_dsl_to_sensitivity;
    Alcotest.test_case "DSL feeds simulator" `Quick test_dsl_to_simulator;
    Alcotest.test_case "shipped example description" `Quick
      test_example_file_on_disk;
    Alcotest.test_case "pattern power recombination" `Quick
      test_pattern_equivalence;
    Alcotest.test_case "simulator agrees with Idd4R" `Quick
      test_sim_agrees_with_idd4;
  ]
