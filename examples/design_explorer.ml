(* Design exploration from a description file: load a device written
   in the input language, find its dominant power knobs and evaluate
   the Section V power-reduction proposals against it - the workflow
   the paper's flexible model is built for.

   Run with: dune exec examples/design_explorer.exe *)

module Config = Vdram_core.Config
module Sensitivity = Vdram_analysis.Sensitivity

let description_file = "examples/ddr3_1gb.dram"

let () =
  let source =
    (* Work both from the repo root and from examples/. *)
    if Sys.file_exists description_file then description_file
    else Filename.concat ".." description_file
  in
  match Vdram_dsl.Elaborate.load_file source with
  | Error e ->
    Format.printf "failed to load %s: %a@." source Vdram_dsl.Parser.pp_error e;
    exit 1
  | Ok { Vdram_dsl.Elaborate.config; pattern } ->
    Format.printf "loaded %s@.%a@.@." source Config.pp config;

    (* Where does the power go under the described pattern? *)
    let p =
      match pattern with
      | Some p -> p
      | None -> Vdram_core.Pattern.idd7_mixed config.Config.spec
    in
    Format.printf "%a@.@." Vdram_core.Report.pp
      (Vdram_core.Model.pattern_power config p);

    (* Which parameters matter (Figure 10)? *)
    let s = Sensitivity.run ~pattern:p config in
    Format.printf "top power knobs (+-20%% variation):@.";
    List.iter
      (fun e ->
        Format.printf "  %-46s %+7.2f%%@." e.Sensitivity.lens_name
          e.Sensitivity.span_percent)
      (Sensitivity.top 8 s);

    (* What would the published power-reduction proposals buy? *)
    Format.printf "@.Section V schemes against this device:@.%a@."
      Vdram_schemes.Evaluate.pp_table
      (Vdram_schemes.Evaluate.run_all config)
