(* Extrapolation: what the model says about future DRAM generations -
   the paper's Section IV.C argument that energy scaling is slowing
   down, and what a designer could do about it.

   Run with: dune exec examples/future_dram.exe *)

module Node = Vdram_tech.Node
module Trends = Vdram_analysis.Trends
module Config = Vdram_core.Config

let () =
  (* The full roadmap, 2000 to 2018. *)
  Format.printf "the commodity DRAM roadmap:@.";
  let points = Trends.all () in
  List.iter (fun p -> Format.printf "  %a@." Trends.pp_point p) points;

  let early =
    Trends.reduction_factor points (fun n ->
        Node.index n <= Node.index Node.N44)
  and late =
    Trends.reduction_factor points (fun n ->
        Node.index n >= Node.index Node.N44)
  in
  Format.printf
    "@.energy/bit fell %.2fx per generation through 2010 but only %.2fx \
     per generation in the forecast: voltage scaling has slowed down \
     (the paper's Figure 13).@.@."
    early late;

  (* If shrinking stops helping, architecture must: evaluate the
     power-reduction schemes on the 16 Gb DDR5 device. *)
  let future = Vdram_configs.Devices.ddr5_16g in
  Format.printf "Section V schemes on %s:@.%a@." future.Config.name
    Vdram_schemes.Evaluate.pp_table
    (Vdram_schemes.Evaluate.run_all future);

  (* And the sensitivity ranking confirms where to look: wiring and
     logic, no longer the array. *)
  let s = Vdram_analysis.Sensitivity.run future in
  Format.printf "@.its top power knobs:@.";
  List.iter
    (fun e ->
      Format.printf "  %-46s %+7.2f%%@."
        e.Vdram_analysis.Sensitivity.lens_name
        e.Vdram_analysis.Sensitivity.span_percent)
    (Vdram_analysis.Sensitivity.top 8 s)
