(* Mobile standby study: the Section II observation that mobile DRAMs
   share the commodity architecture but optimise everything around
   standby current, quantified with the model's standby states and the
   simulator's self-refresh policy.

   Run with: dune exec examples/mobile_standby.exe *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Spec = Vdram_core.Spec
open Vdram_sim

let () =
  let node = Node.N55 in
  let commodity = Vdram_configs.Devices.ddr3_2g in
  let mobile = Vdram_configs.Variants.mobile ~node () in

  (* Standby states: where mobile parts win. *)
  Format.printf "%-28s %12s %12s %12s@." "device" "standby" "power-down"
    "self-refresh";
  List.iter
    (fun cfg ->
      Format.printf "%-28s %9.1f mW %9.1f mW %9.1f mW@." cfg.Config.name
        (Model.state_power cfg Model.Precharge_standby *. 1e3)
        (Model.state_power cfg Model.Power_down *. 1e3)
        (Model.state_power cfg Model.Self_refresh *. 1e3))
    [ commodity; mobile ];

  (* A phone-like duty cycle: short activity bursts, long sleeps. *)
  let spec = mobile.Config.spec in
  let base =
    Trace.hotspot ~rng:(Trace.rng 99) ~requests:5000 ~arrival_gap:12
      ~banks:spec.Spec.banks ~rows:2048 ~columns:128 ~write_fraction:0.4
      ~hot_rows:8 ~hot_fraction:0.7
  in
  let trace = Trace.idle_gaps ~rng:(Trace.rng 3) base ~burst:64 ~gap:80000 in

  Format.printf "@.phone-like duty cycle on the mobile part:@.";
  Format.printf "%-45s %10s %10s@." "policy" "avg power" "latency";
  List.iter
    (fun run ->
      Format.printf "%-45s %7.2f mW %7.1f ns@." run.Sim.policy
        (run.Sim.energy.Energy_model.average_power *. 1e3)
        (run.Sim.average_latency *. 1e9))
    (Sim.compare_policies mobile trace
       [ (Controller.Open_page, Controller.No_power_down);
         (Controller.Open_page, Controller.Precharge_power_down 50);
         (Controller.Open_page, Controller.Self_refresh_power_down (50, 5000))
       ]);

  (* Temperature matters: retention halves every 10 C, so the
     self-refresh floor moves with the phone's thermal state. *)
  Format.printf "@.self-refresh vs temperature (retention model):@.";
  List.iter
    (fun (t, p) ->
      Format.printf "  %3.0f C: tREFI x%.2f -> %6.2f mW@." t
        p.Vdram_schemes.Refresh_study.interval_scale
        (p.Vdram_schemes.Refresh_study.self_refresh_power *. 1e3))
    (Vdram_schemes.Refresh_study.at_temperatures mobile
       ~celsius:[ 25.0; 45.0; 65.0; 85.0; 95.0 ]);

  Format.printf
    "@.Self-refresh turns the long gaps into microwatt-class sleep while \
     the internal refresh keeps the cells alive - the LPDDR recipe.@."
