(* Datasheet verification (Figures 8 and 9): compare the model's
   Idd0 / Idd4R / Idd4W against the vendor spread for 1 Gb DDR2 and
   DDR3 parts, exactly as the paper validates its model.

   Run with: dune exec examples/datasheet_check.exe *)

module Compare = Vdram_datasheets.Compare
module Idd = Vdram_datasheets.Idd

let show title rows =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-');
  let in_band = ref 0 and total = ref 0 in
  List.iter
    (fun (r : Compare.row) ->
      Format.printf "%a" Compare.pp_row r;
      List.iter
        (fun (_, m) ->
          incr total;
          if Compare.within_band r.Compare.point m then incr in_band
          else Format.printf "  <- outside band")
        r.Compare.model_ma;
      Format.printf "@.")
    rows;
  Format.printf "%d of %d model points inside the vendor band (+-30%%)@."
    !in_band !total

let () =
  show "1G DDR2, model at 75nm and 65nm (Figure 8)" (Compare.fig8 ());
  show "1G DDR3, model at 65nm and 55nm (Figure 9)" (Compare.fig9 ());
  Format.printf
    "@.As in the paper, the spread between vendors is large; the model \
     tracks the dependency on operation, speed grade and IO width.@."
