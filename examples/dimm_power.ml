(* System view: device + link.  The paper excludes the Vddq signaling
   power because it depends on "the properties of the link between
   DRAM and controller"; this example supplies that link model and
   composes it with the device model into a DIMM study.

   Run with: dune exec examples/dimm_power.exe *)

module Node = Vdram_tech.Node
open Vdram_link

let () =
  (* The interface-era link trend: per-pin signaling across the
     roadmap. *)
  Format.printf "link energy per bit across interface standards:@.";
  List.iter
    (fun (std, rate) ->
      let t = Termination.for_standard std in
      Format.printf "  %-5s %-45s %6.2f pJ/bit at %4.0f Mbps@."
        (Node.standard_name std)
        (Format.asprintf "%a" Termination.pp t)
        (Termination.energy_per_bit t ~bitrate:rate *. 1e12)
        (rate /. 1e6))
    [ (Node.Sdr, 166e6); (Node.Ddr, 400e6); (Node.Ddr2, 800e6);
      (Node.Ddr3, 1333e6); (Node.Ddr4, 2667e6); (Node.Ddr5, 5333e6) ];

  (* DIMM organization study: same 8 GB capacity and channel built
     from x4 / x8 / x16 devices — the system-level argument behind
     mini-rank. *)
  Format.printf
    "@.8 GB DDR3-1333 DIMM, 50%% channel utilization, by device width:@.";
  List.iter
    (fun r -> Format.printf "  %a@." Dimm.pp_result r)
    (Dimm.compare_widths ~node:Node.N55
       ~capacity_bits:(64.0 *. (2.0 ** 30.0))
       [ 4; 8; 16 ]);

  (* Utilization sweep on the x8 build: DC termination amortizes. *)
  let org =
    Dimm.of_width ~node:Node.N55 ~io_width:8
      ~capacity_bits:(64.0 *. (2.0 ** 30.0))
  in
  Format.printf "@.x8 DIMM across channel utilization:@.";
  List.iter
    (fun u ->
      let r = Dimm.evaluate ~utilization:u org in
      Format.printf "  %3.0f%%: %6.2f W, %7.1f pJ/bit@." (u *. 100.0)
        r.Dimm.total_power
        (r.Dimm.energy_per_bit *. 1e12))
    [ 0.1; 0.25; 0.5; 0.75; 0.95 ];

  Format.printf
    "@.Wide devices activate fewer chips per access; the idle-rank \
     standby and the link's standing current dominate at low \
     utilization - power management (Section V) attacks exactly \
     those.@."
