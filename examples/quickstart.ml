(* Quickstart: build a commodity DDR3 device, compute its datasheet
   currents and see where the power goes.

   Run with: dune exec examples/quickstart.exe *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Report = Vdram_core.Report

let () =
  (* A 1 Gb DDR3 x16 in a 65 nm technology, every detail defaulted
     from the roadmap. *)
  let cfg =
    Config.commodity ~node:Vdram_tech.Node.N65
      ~density_bits:(1024.0 *. (2.0 ** 20.0))
      ()
  in
  Format.printf "%a@.@." Config.pp cfg;

  (* The standard datasheet loops. *)
  let spec = cfg.Config.spec in
  List.iter
    (fun pattern ->
      let r = Model.pattern_power cfg pattern in
      Format.printf "%-8s %10s (%s)@." pattern.Pattern.name
        (Vdram_units.Si.format_eng ~unit_symbol:"W" r.Report.power)
        (Vdram_units.Si.format_eng ~unit_symbol:"A" r.Report.current))
    [ Pattern.idle; Pattern.idd0 spec; Pattern.idd4r spec;
      Pattern.idd4w spec; Pattern.idd7 spec ];

  (* The paper's example loop and a full breakdown of a random-access
     pattern: this is where the insight lives. *)
  Format.printf "@.paper example loop: %a@.@." Report.pp
    (Model.pattern_power cfg Pattern.paper_example);
  Format.printf "%a@." Report.pp_full
    (Model.pattern_power cfg (Pattern.idd7_mixed spec))
