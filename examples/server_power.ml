(* Server memory power study: a bursty server workload on a 2 Gb DDR3
   device, comparing controller policies - the system-side power
   management the paper cites (Hur et al., HPCA 2008).

   The workload alternates request bursts with idle windows, the shape
   that makes power-down policies interesting: aggressive power-down
   saves background power but costs wake-up latency.

   Run with: dune exec examples/server_power.exe *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
open Vdram_sim

let () =
  let cfg = Vdram_configs.Devices.ddr3_2g in
  let spec = cfg.Config.spec in
  Format.printf "device: %s@.@." cfg.Config.name;

  (* A hotspot workload (80 % of traffic to 32 hot rows) in bursts of
     128 requests separated by ~8 us of idleness. *)
  let base =
    Trace.hotspot ~rng:(Trace.rng 2024) ~requests:20000 ~arrival_gap:6
      ~banks:spec.Spec.banks ~rows:4096 ~columns:128 ~write_fraction:0.35
      ~hot_rows:32 ~hot_fraction:0.8
  in
  let trace = Trace.idle_gaps ~rng:(Trace.rng 7) base ~burst:128 ~gap:5000 in

  let policies =
    [ (Controller.Open_page, Controller.No_power_down);
      (Controller.Closed_page, Controller.No_power_down);
      (Controller.Adaptive_page 100, Controller.No_power_down);
      (Controller.Open_page, Controller.Precharge_power_down 30);
      (Controller.Open_page, Controller.Precharge_power_down 300);
      (Controller.Adaptive_page 100, Controller.Precharge_power_down 30) ]
  in
  Format.printf "%-45s %9s %9s %9s %8s@." "policy" "mW" "pJ/bit" "lat ns"
    "hit %";
  List.iter
    (fun run ->
      Format.printf "%-45s %9.1f %9.1f %9.1f %8.0f@." run.Sim.policy
        (run.Sim.energy.Energy_model.average_power *. 1e3)
        (run.Sim.energy.Energy_model.energy_per_bit *. 1e12)
        (run.Sim.average_latency *. 1e9)
        (100.0 *. Stats.row_hit_rate run.Sim.stats))
    (Sim.compare_policies cfg trace policies);

  Format.printf
    "@.Power-down trades a little first-access latency for a large cut \
     of the idle background power; closing pages eagerly forfeits the \
     row hits the hotspot offers.@."
