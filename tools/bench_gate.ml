(* CI gate over bench-analysis output.

   Usage: bench_gate COMMITTED.json FRESH.json
          bench_gate --update BASELINE.json FRESH.json...

   Gate mode fails (exit 1) when the fresh run broke the determinism
   contract (parallel/disk or delta extraction), when its warm disk
   pass did not actually hit the persistent caches, when the warm pass
   was not faster than the cold one, or when the parallel or
   delta-extraction speedup regressed more than 20% below the
   committed baseline.  The parser is deliberately naive — the bench
   writes one scalar per line — so the gate has no dependencies.

   The committed baseline holds one run per machine class (the
   [machine_class] field the bench stamps: OS + core count).  The gate
   compares the fresh run against the baseline with the matching
   class; when none exists it falls back to the first committed run
   with a warning, because a 4-core runner should not be held to an
   d32-core floor — but a missing class is worth seeing in the log.

   Update mode rewrites the committed baseline from fresh runs: with
   two or more candidates the first is dropped as a warmup (page
   cache, CPU governor), every survivor must pass the same sanity
   checks the gate applies, and the median candidate by parallel
   speedup replaces its machine class's entry in BASELINE.json,
   leaving other classes' entries intact — the median, not the best,
   so a lucky scheduler draw cannot ratchet the committed floor above
   what CI can reproduce. *)

let contents path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error e ->
    prerr_endline ("bench gate: " ^ e);
    exit 2

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The raw text of a top-level scalar field: everything between the
   colon after ["key"] and the next comma, newline or brace. *)
let field json key =
  let needle = Printf.sprintf "\"%s\":" key in
  match find_sub json needle with
  | None -> failwith (Printf.sprintf "field %S missing" key)
  | Some i ->
    let start = i + String.length needle in
    let stop = ref start in
    let n = String.length json in
    while
      !stop < n && json.[!stop] <> ',' && json.[!stop] <> '\n'
      && json.[!stop] <> '}'
    do
      incr stop
    done;
    String.trim (String.sub json start (!stop - start))

let float_field j k = float_of_string (field j k)
let int_field j k = int_of_string (field j k)
let bool_field j k = bool_of_string (field j k)

let string_field j k =
  let raw = field j k in
  let n = String.length raw in
  if n >= 2 && raw.[0] = '"' && raw.[n - 1] = '"' then String.sub raw 1 (n - 2)
  else raw

(* A baseline file is either one bench run (the historical format) or
   a JSON array of runs, one per machine class.  Split on balanced
   top-level braces, skipping brace characters inside strings. *)
let split_runs json =
  let runs = ref [] in
  let depth = ref 0 and start = ref 0 and in_string = ref false in
  String.iteri
    (fun i c ->
      if !in_string then begin
        if c = '"' && (i = 0 || json.[i - 1] <> '\\') then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' ->
          if !depth = 0 then start := i;
          incr depth
        | '}' ->
          decr depth;
          if !depth = 0 then
            runs := String.sub json !start (i - !start + 1) :: !runs
        | _ -> ())
    json;
  List.rev !runs

(* Runs without the field (pre-class baselines) all share one bucket. *)
let machine_class json =
  try string_field json "machine_class" with Failure _ -> "unclassified"

(* The committed run the fresh one should be measured against: the
   matching machine class when present, the first run (with a warning)
   otherwise. *)
let committed_for ~machine_class:cls committed_file =
  match split_runs committed_file with
  | [] -> failwith "committed baseline holds no runs"
  | first :: _ as runs ->
    (match List.find_opt (fun r -> machine_class r = cls) runs with
     | Some r -> (r, true)
     | None -> (first, false))

(* The gate's structural sanity checks, shared by both modes.  [fail]
   (a plain string consumer) decides what a violation does: exit in
   gate mode, reject the candidate in update mode. *)
let sanity ~(fail : string -> unit) label fresh =
  let failed fmt =
    Printf.ksprintf (fun m -> fail (label ^ ": " ^ m)) fmt
  in
  if not (bool_field fresh "identical_output") then
    failed "parallel/disk outputs differ from serial (identical_output)";
  let failures = try int_field fresh "failures" with Failure _ -> 0 in
  let faults_enabled =
    try bool_field fresh "faults_enabled" with Failure _ -> false
  in
  if (not faults_enabled) && failures > 0 then
    failed "%d supervised failure(s) with fault injection disabled" failures;
  if int_field fresh "warm_extraction_hits" <= 0 then
    failed "warm pass never hit the extraction cache";
  if int_field fresh "warm_mix_hits" <= 0 then
    failed "warm pass never hit the mix cache";
  let disk = float_field fresh "disk_speedup" in
  if disk <= 1.0 then
    failed "warm disk pass slower than cold (disk_speedup %.2f)" disk;
  (* Delta-extraction contract, for benches new enough to report it:
     the incremental result must be bit-identical to the full one, and
     the delta pass must actually have taken the delta path. *)
  match (try Some (bool_field fresh "delta_identical") with Failure _ -> None)
  with
  | None -> ()
  | Some false ->
    failed "delta extraction differs from full extraction (delta_identical)"
  | Some true ->
    if int_field fresh "delta_attempts" <= 0 then
      failed "delta pass never took the delta path (delta_attempts 0)"

let update baseline_path fresh_paths =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("bench gate: FAIL: " ^ m);
        exit 1)
      fmt
  in
  if fresh_paths = [] then begin
    prerr_endline "usage: bench_gate --update BASELINE.json FRESH.json...";
    exit 2
  end;
  (* With repeated runs the first is a warmup and never a candidate. *)
  let candidates =
    match fresh_paths with
    | _warmup :: (_ :: _ as rest) ->
      Printf.printf "bench gate: dropping %s as warmup\n"
        (List.hd fresh_paths);
      rest
    | only -> only
  in
  let measured =
    List.map
      (fun path ->
        let json = contents path in
        (try sanity ~fail:(fun m -> fail "%s" m) path json
         with Failure m -> fail "%s: %s" path m);
        let speedup =
          try float_field json "speedup"
          with Failure m -> fail "%s: %s" path m
        in
        (path, speedup, json))
      candidates
  in
  (* One update run measures one machine; mixing classes in a single
     candidate pool would make the median meaningless. *)
  let classes =
    List.sort_uniq compare
      (List.map (fun (_, _, j) -> machine_class j) measured)
  in
  let cls =
    match classes with
    | [ c ] -> c
    | cs -> fail "candidates span machine classes %s" (String.concat ", " cs)
  in
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) measured
  in
  (* Median by speedup; the lower middle on an even count, so ties
     break toward the conservative baseline. *)
  let path, speedup, json =
    List.nth sorted ((List.length sorted - 1) / 2)
  in
  (* Replace this machine class's entry, keep every other class. *)
  let kept =
    if Sys.file_exists baseline_path then
      List.filter
        (fun r -> machine_class r <> cls)
        (split_runs (contents baseline_path))
    else []
  in
  let runs = kept @ [ json ] in
  Out_channel.with_open_text baseline_path (fun oc ->
      match runs with
      | [ only ] -> Out_channel.output_string oc only
      | _ ->
        Out_channel.output_string oc "[\n";
        Out_channel.output_string oc (String.concat ",\n" runs);
        Out_channel.output_string oc "\n]\n");
  Printf.printf
    "bench gate: baseline %s updated for class %s from %s (median of %d \
     candidate(s), speedup %.3fx; %d other class(es) kept)\n"
    baseline_path cls path (List.length sorted) speedup (List.length kept)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--update" :: baseline_path :: fresh_paths ->
    update baseline_path fresh_paths;
    exit 0
  | _ -> ();
  match Sys.argv with
  | [| _; committed_path; fresh_path |] ->
    let committed_file = contents committed_path in
    let fresh = contents fresh_path in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          prerr_endline ("bench gate: FAIL: " ^ m);
          exit 1)
        fmt
    in
    (try
       sanity ~fail:(fun m -> fail "%s" m) fresh_path fresh;
       let cls = machine_class fresh in
       let committed, matched = committed_for ~machine_class:cls
           committed_file
       in
       if not matched then
         Printf.printf
           "bench gate: warning — no committed baseline for machine class \
            %s, comparing against class %s\n"
           cls (machine_class committed);
       let ext = int_field fresh "warm_extraction_hits" in
       let mix = int_field fresh "warm_mix_hits" in
       let disk = float_field fresh "disk_speedup" in
       let committed_speedup = float_field committed "speedup" in
       let fresh_speedup = float_field fresh "speedup" in
       let floor = 0.8 *. committed_speedup in
       if fresh_speedup < floor then
         fail "speedup %.3f regressed below 0.8x committed %.3f"
           fresh_speedup committed_speedup;
       (* Same 20% regression band for the delta-extraction speedup,
          when both sides are new enough to report one. *)
       let delta_note =
         match
           ( (try Some (float_field committed "delta_speedup")
              with Failure _ -> None),
             try Some (float_field fresh "delta_speedup")
             with Failure _ -> None )
         with
         | Some c, Some f ->
           if f < 0.8 *. c then
             fail "delta_speedup %.3f regressed below 0.8x committed %.3f" f
               c;
           Printf.sprintf ", delta %.2fx (committed %.2fx)" f c
         | None, Some f -> Printf.sprintf ", delta %.2fx (no baseline)" f
         | _, None -> ""
       in
       Printf.printf
         "bench gate: ok [%s] — speedup %.2fx (committed %.2fx), disk \
          %.2fx%s, warm hits %d ext / %d mix\n"
         cls fresh_speedup committed_speedup disk delta_note ext mix
     with Failure m -> fail "%s" m)
  | _ ->
    prerr_endline
      "usage: bench_gate COMMITTED.json FRESH.json\n\
      \       bench_gate --update BASELINE.json FRESH.json...";
    exit 2
