(* CI gate over bench-analysis output.

   Usage: bench_gate COMMITTED.json FRESH.json

   Fails (exit 1) when the fresh run broke the determinism contract,
   when its warm disk pass did not actually hit the persistent caches,
   when the warm pass was not faster than the cold one, or when the
   parallel speedup regressed more than 20% below the committed
   baseline.  The parser is deliberately naive — the bench writes one
   scalar per line — so the gate has no dependencies. *)

let contents path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error e ->
    prerr_endline ("bench gate: " ^ e);
    exit 2

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The raw text of a top-level scalar field: everything between the
   colon after ["key"] and the next comma, newline or brace. *)
let field json key =
  let needle = Printf.sprintf "\"%s\":" key in
  match find_sub json needle with
  | None -> failwith (Printf.sprintf "field %S missing" key)
  | Some i ->
    let start = i + String.length needle in
    let stop = ref start in
    let n = String.length json in
    while
      !stop < n && json.[!stop] <> ',' && json.[!stop] <> '\n'
      && json.[!stop] <> '}'
    do
      incr stop
    done;
    String.trim (String.sub json start (!stop - start))

let float_field j k = float_of_string (field j k)
let int_field j k = int_of_string (field j k)
let bool_field j k = bool_of_string (field j k)

let () =
  match Sys.argv with
  | [| _; committed_path; fresh_path |] ->
    let committed = contents committed_path in
    let fresh = contents fresh_path in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          prerr_endline ("bench gate: FAIL: " ^ m);
          exit 1)
        fmt
    in
    (try
       if not (bool_field fresh "identical_output") then
         fail "parallel/disk outputs differ from serial (identical_output)";
       (* A supervised bench run with fault injection off must be
          failure-free; older baselines without the fields pass. *)
       let failures =
         try int_field fresh "failures" with Failure _ -> 0
       in
       let faults_enabled =
         try bool_field fresh "faults_enabled" with Failure _ -> false
       in
       if (not faults_enabled) && failures > 0 then
         fail "%d supervised failure(s) with fault injection disabled"
           failures;
       let ext = int_field fresh "warm_extraction_hits" in
       let mix = int_field fresh "warm_mix_hits" in
       if ext <= 0 then fail "warm pass never hit the extraction cache";
       if mix <= 0 then fail "warm pass never hit the mix cache";
       let disk = float_field fresh "disk_speedup" in
       if disk <= 1.0 then
         fail "warm disk pass slower than cold (disk_speedup %.2f)" disk;
       let committed_speedup = float_field committed "speedup" in
       let fresh_speedup = float_field fresh "speedup" in
       let floor = 0.8 *. committed_speedup in
       if fresh_speedup < floor then
         fail "speedup %.3f regressed below 0.8x committed %.3f"
           fresh_speedup committed_speedup;
       Printf.printf
         "bench gate: ok — speedup %.2fx (committed %.2fx), disk %.2fx, \
          warm hits %d ext / %d mix\n"
         fresh_speedup committed_speedup disk ext mix
     with Failure m -> fail "%s" m)
  | _ ->
    prerr_endline "usage: bench_gate COMMITTED.json FRESH.json";
    exit 2
