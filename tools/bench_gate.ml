(* CI gate over bench-analysis output.

   Usage: bench_gate COMMITTED.json FRESH.json
          bench_gate --update BASELINE.json FRESH.json...

   Gate mode fails (exit 1) when the fresh run broke the determinism
   contract, when its warm disk pass did not actually hit the
   persistent caches, when the warm pass was not faster than the cold
   one, or when the parallel speedup regressed more than 20% below the
   committed baseline.  The parser is deliberately naive — the bench
   writes one scalar per line — so the gate has no dependencies.

   Update mode rewrites the committed baseline from fresh runs: with
   two or more candidates the first is dropped as a warmup (page
   cache, CPU governor), every survivor must pass the same sanity
   checks the gate applies, and the median candidate by parallel
   speedup is written verbatim into BASELINE.json — the median, not
   the best, so a lucky scheduler draw cannot ratchet the committed
   floor above what CI can reproduce. *)

let contents path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error e ->
    prerr_endline ("bench gate: " ^ e);
    exit 2

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The raw text of a top-level scalar field: everything between the
   colon after ["key"] and the next comma, newline or brace. *)
let field json key =
  let needle = Printf.sprintf "\"%s\":" key in
  match find_sub json needle with
  | None -> failwith (Printf.sprintf "field %S missing" key)
  | Some i ->
    let start = i + String.length needle in
    let stop = ref start in
    let n = String.length json in
    while
      !stop < n && json.[!stop] <> ',' && json.[!stop] <> '\n'
      && json.[!stop] <> '}'
    do
      incr stop
    done;
    String.trim (String.sub json start (!stop - start))

let float_field j k = float_of_string (field j k)
let int_field j k = int_of_string (field j k)
let bool_field j k = bool_of_string (field j k)

(* The gate's structural sanity checks, shared by both modes.  [fail]
   (a plain string consumer) decides what a violation does: exit in
   gate mode, reject the candidate in update mode. *)
let sanity ~(fail : string -> unit) label fresh =
  let failed fmt =
    Printf.ksprintf (fun m -> fail (label ^ ": " ^ m)) fmt
  in
  if not (bool_field fresh "identical_output") then
    failed "parallel/disk outputs differ from serial (identical_output)";
  let failures = try int_field fresh "failures" with Failure _ -> 0 in
  let faults_enabled =
    try bool_field fresh "faults_enabled" with Failure _ -> false
  in
  if (not faults_enabled) && failures > 0 then
    failed "%d supervised failure(s) with fault injection disabled" failures;
  if int_field fresh "warm_extraction_hits" <= 0 then
    failed "warm pass never hit the extraction cache";
  if int_field fresh "warm_mix_hits" <= 0 then
    failed "warm pass never hit the mix cache";
  let disk = float_field fresh "disk_speedup" in
  if disk <= 1.0 then
    failed "warm disk pass slower than cold (disk_speedup %.2f)" disk

let update baseline_path fresh_paths =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("bench gate: FAIL: " ^ m);
        exit 1)
      fmt
  in
  if fresh_paths = [] then begin
    prerr_endline "usage: bench_gate --update BASELINE.json FRESH.json...";
    exit 2
  end;
  (* With repeated runs the first is a warmup and never a candidate. *)
  let candidates =
    match fresh_paths with
    | _warmup :: (_ :: _ as rest) ->
      Printf.printf "bench gate: dropping %s as warmup\n"
        (List.hd fresh_paths);
      rest
    | only -> only
  in
  let measured =
    List.map
      (fun path ->
        let json = contents path in
        (try sanity ~fail:(fun m -> fail "%s" m) path json
         with Failure m -> fail "%s: %s" path m);
        let speedup =
          try float_field json "speedup"
          with Failure m -> fail "%s: %s" path m
        in
        (path, speedup, json))
      candidates
  in
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) measured
  in
  (* Median by speedup; the lower middle on an even count, so ties
     break toward the conservative baseline. *)
  let path, speedup, json =
    List.nth sorted ((List.length sorted - 1) / 2)
  in
  Out_channel.with_open_text baseline_path (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf
    "bench gate: baseline %s updated from %s (median of %d candidate(s), \
     speedup %.3fx)\n"
    baseline_path path (List.length sorted) speedup

let () =
  match Array.to_list Sys.argv with
  | _ :: "--update" :: baseline_path :: fresh_paths ->
    update baseline_path fresh_paths;
    exit 0
  | _ -> ();
  match Sys.argv with
  | [| _; committed_path; fresh_path |] ->
    let committed = contents committed_path in
    let fresh = contents fresh_path in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          prerr_endline ("bench gate: FAIL: " ^ m);
          exit 1)
        fmt
    in
    (try
       sanity ~fail:(fun m -> fail "%s" m) fresh_path fresh;
       let ext = int_field fresh "warm_extraction_hits" in
       let mix = int_field fresh "warm_mix_hits" in
       let disk = float_field fresh "disk_speedup" in
       let committed_speedup = float_field committed "speedup" in
       let fresh_speedup = float_field fresh "speedup" in
       let floor = 0.8 *. committed_speedup in
       if fresh_speedup < floor then
         fail "speedup %.3f regressed below 0.8x committed %.3f"
           fresh_speedup committed_speedup;
       Printf.printf
         "bench gate: ok — speedup %.2fx (committed %.2fx), disk %.2fx, \
          warm hits %d ext / %d mix\n"
         fresh_speedup committed_speedup disk ext mix
     with Failure m -> fail "%s" m)
  | _ ->
    prerr_endline
      "usage: bench_gate COMMITTED.json FRESH.json\n\
      \       bench_gate --update BASELINE.json FRESH.json...";
    exit 2
