(* serve-smoke: boot the real `vdram serve` binary under deterministic
   fault injection, batter it with concurrent mixed traffic, then
   SIGTERM it and assert a clean drain.

     serve_smoke [path/to/vdram.exe]

   Asserts, in order: the daemon answers ping; a served eval is
   byte-identical to one-shot `vdram power` stdout; hostile frames
   (garbage, oversized) get structured rejections without killing the
   connection; concurrent identical corners requests coalesce
   (response-flag- and stats-counter-verified) and complete despite
   injected mix faults; the stats failure counters show injected-only
   failures; SIGTERM drains to exit 0, unlinks the socket and flushes
   the persistent store.  Exits 1 on the first violated assertion. *)

module Json = Vdram_serve.Json
module Faults = Vdram_engine.Faults

let daemon_pid = ref None

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve-smoke: FAIL " ^ s);
      (match !daemon_pid with
      | Some pid -> ( try Unix.kill pid Sys.sigkill with _ -> ())
      | None -> ());
      exit 1)
    fmt

let pass fmt = Printf.ksprintf (fun s -> print_endline ("serve-smoke: " ^ s)) fmt

(* ----- tiny line-delimited JSON client ------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let send_line fd s = send_raw fd (s ^ "\n")

let recv_frames ?(timeout = 120.0) fd n =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let frames = ref [] in
  let count = ref 0 in
  let deadline = Unix.gettimeofday () +. timeout in
  let split () =
    let continue = ref true in
    while !continue do
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> continue := false
      | Some i ->
        frames := String.sub s 0 i :: !frames;
        incr count;
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1)
    done
  in
  let rec go () =
    if !count < n && Unix.gettimeofday () < deadline then
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          split ();
          go ())
  in
  go ();
  List.rev_map
    (fun line ->
      match Json.parse line with
      | Ok j -> j
      | Error e -> fail "unparseable frame %S: %s" line e)
    !frames

let one = function
  | [ f ] -> f
  | l -> fail "expected exactly one frame, got %d" (List.length l)

let jget frame k =
  match Json.mem k frame with
  | Some v -> v
  | None -> fail "frame %s lacks field %S" (Json.to_string frame) k

let jstr frame k =
  match Json.str (jget frame k) with
  | Some s -> s
  | None -> fail "field %S is not a string" k

let jint frame k =
  match Json.int_ (jget frame k) with
  | Some n -> n
  | None -> fail "field %S is not an int" k

let jbool frame k =
  match Json.bool_ (jget frame k) with
  | Some b -> b
  | None -> fail "field %S is not a bool" k

(* ----- the smoke run -------------------------------------------------- *)

let samples = 400

(* Every serve request runs under a fresh supervisor, so an eval item
   is always (batch 0, index 0): pick a seed whose plan leaves that
   item clean (evals stay deterministic for the bit-identity check)
   but faults at least one of the corners batch's items. *)
let pick_seed () =
  let plan seed =
    {
      Faults.seed;
      rate = 0.02;
      action = Some (Faults.Raise Faults.Mix);
      corrupt_store = false;
    }
  in
  let ok s =
    (not (Faults.faulted (plan s) ~batch:0 ~index:0))
    && List.exists
         (fun i -> Faults.faulted (plan s) ~batch:0 ~index:i)
         (List.init samples Fun.id)
  in
  let rec go s = if s > 255 then fail "no usable seed" else if ok s then s else go (s + 1) in
  go 7

let base_env () =
  Unix.environment () |> Array.to_list
  |> List.filter (fun kv ->
         not (String.length kv >= 13 && String.sub kv 0 13 = "VDRAM_FAULTS="))

let read_process_stdout argv env =
  let out_read, out_write = Unix.pipe () in
  let pid =
    Unix.create_process_env argv.(0) argv env Unix.stdin out_write Unix.stderr
  in
  Unix.close out_write;
  let ic = Unix.in_channel_of_descr out_read in
  let b = Buffer.create 16384 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  close_in ic;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "%s exited non-zero" (String.concat " " (Array.to_list argv)));
  Buffer.contents b

let () =
  let exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "_build/default/bin/vdram.exe"
  in
  if not (Sys.file_exists exe) then fail "no vdram binary at %s" exe;
  let seed = pick_seed () in
  let faults = Printf.sprintf "seed=%d,rate=0.02,raise=mix" seed in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vdram-smoke-%d.sock" (Unix.getpid ()))
  in
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vdram-smoke-store-%d" (Unix.getpid ()))
  in
  let env = Array.of_list (("VDRAM_FAULTS=" ^ faults) :: base_env ()) in

  (* Boot the daemon with the injected plan and a persistent store. *)
  let pid =
    Unix.create_process_env exe
      [|
        exe; "serve"; "--socket"; sock; "--cache-dir"; store_dir;
        "--max-inflight"; "16";
      |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  daemon_pid := Some pid;
  pass "daemon pid %d, plan %s" pid faults;

  (* Wait for the listener, then ping. *)
  let fd =
    let deadline = Unix.gettimeofday () +. 60.0 in
    let rec go () =
      match connect sock with
      | fd -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.1;
        go ()
      | exception e -> fail "cannot reach daemon: %s" (Printexc.to_string e)
    in
    go ()
  in
  send_line fd {|{"id":"p","op":"ping"}|};
  let ping = one (recv_frames fd 1) in
  if jstr ping "status" <> "ok" then fail "ping not ok";
  pass "ping ok";

  (* Bit-identity: served eval text equals one-shot CLI stdout.  The
     CLI run keeps the same environment — faults only fire under
     supervision, which `vdram power` does not use. *)
  let cli = read_process_stdout [| exe; "power" |] env in
  send_line fd {|{"id":"e","op":"eval"}|};
  let ev = one (recv_frames fd 1) in
  if jstr ev "status" <> "ok" then
    fail "eval failed: %s" (Json.to_string ev);
  if not (String.equal (jstr ev "text") cli) then
    fail "served eval text differs from `vdram power` stdout";
  pass "eval is bit-identical to the one-shot CLI";

  (* Hostile frames: structured rejection, surviving connection. *)
  send_line fd "certainly not json";
  let g = one (recv_frames fd 1) in
  if jstr g "class" <> "bad_frame" then fail "garbage not flagged bad_frame";
  send_raw fd (String.make 1_200_000 'x');
  let o = one (recv_frames fd 1) in
  if jstr o "class" <> "bad_frame" then fail "oversized not flagged bad_frame";
  send_raw fd "resync tail\n";
  send_line fd {|{"id":"p2","op":"ping"}|};
  if jstr (one (recv_frames fd 1)) "status" <> "ok" then
    fail "connection did not survive hostile frames";
  pass "hostile frames rejected, connection survived";

  (* Concurrent identical corners under injection: all complete with
     partial results, and the flights coalesce. *)
  let n = 8 in
  let req =
    Printf.sprintf {|{"id":"c","op":"corners","samples":%d}|} samples
  in
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let cfd = connect sock in
            send_line cfd req;
            (match recv_frames cfd 1 with
            | [ f ] -> results.(i) <- Some f
            | _ -> ());
            Unix.close cfd)
          ())
  in
  List.iter Thread.join threads;
  let frames =
    Array.to_list results
    |> List.map (function
         | Some f -> f
         | None -> fail "a corners client got no terminal frame")
  in
  List.iter
    (fun f ->
      if jstr f "status" <> "ok" then
        fail "corners under injection not ok: %s" (Json.to_string f))
    frames;
  let failures_seen = jint (List.hd frames) "failures" in
  if failures_seen <= 0 then fail "expected injected corners failures";
  let coalesced = List.length (List.filter (fun f -> jbool f "coalesced") frames) in
  if coalesced <= 0 then fail "no corners request was coalesced";
  pass "%d concurrent corners: %d coalesced, %d injected failures tolerated"
    n coalesced failures_seen;

  (* Stats: injected-only failures, coalescing counted. *)
  send_line fd {|{"id":"s","op":"stats"}|};
  let st = jget (one (recv_frames fd 1)) "stats" in
  let f = jget st "failures" in
  let items = jint f "items" and injected = jint f "injected" in
  if items <= 0 then fail "stats shows no failures";
  if items <> injected then
    fail "non-injected failures leaked: %d items, %d injected" items injected;
  let r = jget st "requests" in
  if jint r "coalesced_shared" <= 0 then fail "stats shows no coalescing";
  pass "stats: %d failures, all injected; coalesced_shared=%d" items
    (jint r "coalesced_shared");
  Unix.close fd;

  (* SIGTERM: graceful drain, exit 0, socket unlinked, store flushed. *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "daemon exited %d after SIGTERM" c
  | _, Unix.WSIGNALED s -> fail "daemon killed by signal %d" s
  | _, Unix.WSTOPPED _ -> fail "daemon stopped");
  daemon_pid := None;
  if Sys.file_exists sock then fail "socket not unlinked after drain";
  let snapshots =
    match Sys.readdir store_dir with
    | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".cache")
    | exception Sys_error _ -> []
  in
  if snapshots = [] then fail "drain did not flush the persistent store";
  pass "SIGTERM: clean drain, exit 0, store flushed (%s)"
    (String.concat ", " snapshots);
  pass "all checks passed"
