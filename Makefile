.PHONY: all build test check lint bench bench-analysis bench-gate examples clean doc export

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune exec bin/vdram.exe -- lint --deny-warnings examples/*.dram

check: test lint

bench:
	dune exec bench/main.exe
	dune exec bench/bench_lint.exe

bench-analysis:
	dune exec bin/vdram.exe -- bench-analysis

bench-gate: build
	dune exec bin/vdram.exe -- bench-analysis --out BENCH_fresh.json
	dune exec tools/bench_gate.exe -- BENCH_analysis.json BENCH_fresh.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datasheet_check.exe
	dune exec examples/server_power.exe
	dune exec examples/design_explorer.exe
	dune exec examples/future_dram.exe
	dune exec examples/mobile_standby.exe
	dune exec examples/dimm_power.exe

export:
	dune exec bin/vdram.exe -- export --outdir .

doc:
	dune build @doc

clean:
	dune clean
