.PHONY: all build test check check-model lint advise bench bench-analysis bench-gate bench-update chaos serve-smoke examples clean doc export

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune exec bin/vdram.exe -- lint --deny-warnings examples/*.dram

# Static dataflow advice (V10xx): slack, utilization, idle windows and
# the certified energy floor of every shipped loop.  Not gated — the
# inefficient example exists precisely to carry advice.
advise: build
	dune exec bin/vdram.exe -- advise examples/*.dram

check: test lint

# Abstract interpretation over the shipped descriptions: certified
# bounds (cross-checked against 500 concrete samples each), per-lens
# monotonicity, and whole-sweep legality across the roadmap.
check-model: build
	dune exec bin/vdram.exe -- check --samples 500 examples/*.dram

bench:
	dune exec bench/main.exe
	dune exec bench/bench_lint.exe

bench-analysis:
	dune exec bin/vdram.exe -- bench-analysis

bench-gate: build
	dune exec bin/vdram.exe -- bench-analysis --out BENCH_fresh.json
	dune exec tools/bench_gate.exe -- BENCH_analysis.json BENCH_fresh.json

# Refresh the committed baseline: one warmup run plus three candidates;
# the gate's --update mode sanity-checks each and commits the median by
# parallel speedup.
bench-update: build
	@for i in 0 1 2 3; do \
	  dune exec bin/vdram.exe -- bench-analysis --out BENCH_run$$i.json || exit 1; \
	done
	dune exec tools/bench_gate.exe -- --update BENCH_analysis.json \
	  BENCH_run0.json BENCH_run1.json BENCH_run2.json BENCH_run3.json
	rm -f BENCH_run0.json BENCH_run1.json BENCH_run2.json BENCH_run3.json

# Supervised runtime under deterministic fault injection: must exit 3
# (partial results) and report only injected mix-stage failures.
chaos: build
	@for seed in 7 11 42; do \
	  code=0; \
	  VDRAM_FAULTS="seed=$$seed,rate=0.02,raise=mix" \
	    dune exec bin/vdram.exe -- corners --node 55nm --samples 400 \
	      --jobs 2 --keep-going --fail-log chaos_$$seed.json || code=$$?; \
	  [ "$$code" -eq 3 ] || { echo "seed $$seed: expected exit 3, got $$code"; exit 1; }; \
	  grep -q '"injected": true' chaos_$$seed.json || { echo "seed $$seed: no injected failures"; exit 1; }; \
	  ! grep -q '"injected": false' chaos_$$seed.json || { echo "seed $$seed: non-injected failure leaked"; exit 1; }; \
	  echo "chaos seed $$seed: ok"; \
	done

# Serve daemon end-to-end: boot the real binary under fault
# injection, drive concurrent mixed traffic (coalescing and
# injected-only failures are counter-verified), then SIGTERM it and
# assert a clean drain with the store flushed.  See doc/SERVE.md.
serve-smoke: build
	dune exec tools/serve_smoke.exe -- _build/default/bin/vdram.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datasheet_check.exe
	dune exec examples/server_power.exe
	dune exec examples/design_explorer.exe
	dune exec examples/future_dram.exe
	dune exec examples/mobile_standby.exe
	dune exec examples/dimm_power.exe

export:
	dune exec bin/vdram.exe -- export --outdir .

doc:
	dune build @doc

clean:
	dune clean
