(** Non-commodity DRAM architectures (Section II of the paper).

    "Different architectures have been proposed over the years to
    optimize a DRAM for other applications than main memory.  These
    optimizations always yield a higher cost per bit."  Two of them
    are modelled here as variations of the commodity configuration:

    - High-performance (GDDR-style): much more partitioned array (more
      banks, shorter column select lines), wide interface at very high
      per-pin rates, strong interface drivers.
    - Mobile (LPDDR-style): commodity-like array, edge pads (longer
      on-die data routing), and standby optimised to the bone — weak
      unterminated receivers, no DLL, small constant sinks. *)

val graphics :
  ?density_bits:float -> node:Vdram_tech.Node.t -> unit ->
  Vdram_core.Config.t
(** GDDR5-style device at a node: x32, ~4x the commodity per-pin rate,
    16 banks of half-height array blocks, stronger pre-drivers. *)

val mobile :
  ?density_bits:float -> node:Vdram_tech.Node.t -> unit ->
  Vdram_core.Config.t
(** LPDDR2-style device: commodity array, half-rate interface, no DLL,
    near-zero receiver bias and constant sink, edge-pad routing. *)

val standby_comparison :
  Vdram_core.Config.t list ->
  (string * float * float) list
(** [(name, precharge-standby W, self-refresh W)] per device — the
    optimisation target that separates mobile from commodity parts. *)
