(** Predefined device configurations used throughout the paper's
    evaluation. *)

val mb : float -> float
(** [mb n] is [n * 2^20] bits. *)

val sdr_128m : Vdram_core.Config.t
(** 128 Mb SDR x16-166 in 170 nm — the old device of Fig 10/Table III. *)

val ddr_256m : Vdram_core.Config.t
(** 256 Mb DDR x16-400 in 110 nm. *)

val ddr2_1g :
  ?io_width:int -> ?datarate:float -> node:Vdram_tech.Node.t -> unit ->
  Vdram_core.Config.t
(** 1 Gb DDR2 for the Figure 8 verification.  [node] should be [N75]
    or [N65] (the typical high-volume nodes of the comparison);
    datarate defaults to 800 Mb/s/pin.  x4/x8 parts use a 1 KB page,
    x16 a 2 KB page, as the commodity parts did. *)

val ddr3_1g :
  ?io_width:int -> ?datarate:float -> node:Vdram_tech.Node.t -> unit ->
  Vdram_core.Config.t
(** 1 Gb DDR3 for the Figure 9 verification ([N65] or [N55]);
    datarate defaults to 1066 Mb/s/pin. *)

val ddr3_2g : Vdram_core.Config.t
(** 2 Gb DDR3 x16-1333 in 55 nm — the contemporary device of
    Table III. *)

val ddr4_4g : Vdram_core.Config.t
(** 4 Gb DDR4 x16-2667 in 31 nm. *)

val ddr5_16g : Vdram_core.Config.t
(** 16 Gb DDR5 x16-5333 in 18 nm — the future device of Fig 10 /
    Table III (the paper calls it a hypothetical DDR5). *)

val table3_devices : Vdram_core.Config.t list
(** The three sensitivity-study devices: [sdr_128m; ddr3_2g;
    ddr5_16g]. *)
