(* Named device configurations. *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config

let mb n = n *. (2.0 ** 20.0)

let page_for_width io_width =
  (* Commodity parts: x16 uses a 2 KB page, x4/x8 a 1 KB page. *)
  if io_width >= 16 then 16384 else 8192

let sdr_128m =
  Config.commodity ~name:"128M SDR x16 170nm" ~node:Node.N170
    ~density_bits:(mb 128.0) ()

let ddr_256m =
  Config.commodity ~name:"256M DDR x16 110nm" ~node:Node.N110
    ~density_bits:(mb 256.0) ()

let ddr2_1g ?(io_width = 16) ?(datarate = 800e6) ~node () =
  Config.commodity
    ~name:
      (Printf.sprintf "1G DDR2 x%d-%.0f %s" io_width (datarate /. 1e6)
         (Node.name node))
    ~standard:Node.Ddr2 ~node ~density_bits:(mb 1024.0) ~io_width ~datarate
    ~page_bits:(page_for_width io_width) ~banks:8 ()

let ddr3_1g ?(io_width = 16) ?(datarate = 1066e6) ~node () =
  Config.commodity
    ~name:
      (Printf.sprintf "1G DDR3 x%d-%.0f %s" io_width (datarate /. 1e6)
         (Node.name node))
    ~standard:Node.Ddr3 ~node ~density_bits:(mb 1024.0) ~io_width ~datarate
    ~page_bits:(page_for_width io_width) ~banks:8 ()

let ddr3_2g =
  Config.commodity ~name:"2G DDR3 x16 55nm" ~node:Node.N55
    ~density_bits:(mb 2048.0) ()

let ddr4_4g =
  Config.commodity ~name:"4G DDR4 x16 31nm" ~node:Node.N31
    ~density_bits:(mb 4096.0) ()

let ddr5_16g =
  Config.commodity ~name:"16G DDR5 x16 18nm" ~node:Node.N18
    ~density_bits:(mb 16384.0) ()

let table3_devices = [ sdr_128m; ddr3_2g; ddr5_16g ]
