(* Roadmap generations as configurations. *)

let at node = Vdram_core.Config.commodity ~node ()

let all = List.map at Vdram_tech.Node.all
