(* Mobile and high-performance architecture variants. *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module Roadmap = Vdram_tech.Roadmap

let graphics ?density_bits ~node () =
  let g = Roadmap.generation node in
  let density_bits =
    Option.value ~default:g.Roadmap.density_bits density_bits
  in
  let cfg =
    Config.commodity
      ~name:(Printf.sprintf "GDDR-style x32 (%s)" (Node.name node))
      ~density_bits ~io_width:32
      ~datarate:(4.0 *. g.Roadmap.datarate)
      ~banks:(g.Roadmap.banks * 2)
      ~node ()
  in
  (* Stronger output stage for the very high pin rate. *)
  {
    cfg with
    Config.io_predriver_cap = cfg.Config.io_predriver_cap *. 1.6;
    io_receiver_cap = cfg.Config.io_receiver_cap *. 1.4;
  }

let mobile ?density_bits ~node () =
  let g = Roadmap.generation node in
  let density_bits =
    Option.value ~default:g.Roadmap.density_bits density_bits
  in
  let cfg =
    Config.commodity
      ~name:(Printf.sprintf "LPDDR-style x16 (%s)" (Node.name node))
      ~density_bits
      ~datarate:(g.Roadmap.datarate /. 2.0)
      ~node ()
  in
  (* Edge pads: data travels from the center stripe to the die edge
     (Section II), lengthening the data buses. *)
  let edge_run =
    Vdram_floorplan.Floorplan.die_height cfg.Config.floorplan /. 2.0
  in
  let cfg =
    Config.map_buses cfg (fun bus ->
        match bus.Bus.role with
        | Bus.Write_data | Bus.Read_data ->
          {
            bus with
            Bus.segments =
              bus.Bus.segments
              @ [ Bus.segment ~name:"edge pad run" ~length:edge_run () ];
          }
        | _ -> bus)
  in
  (* Standby optimisation: unterminated inputs, no DLL, tiny constant
     sinks. *)
  let logic =
    List.filter
      (fun b -> b.Logic_block.name <> "DLL / clock synchronisation")
      cfg.Config.logic
  in
  let d = cfg.Config.domains in
  {
    cfg with
    Config.logic;
    receiver_bias = 0.02e-3;
    domains = { d with Vdram_circuits.Domains.i_constant = 1.5e-3 };
  }

let standby_comparison configs =
  List.map
    (fun cfg ->
      ( cfg.Config.name,
        Model.state_power cfg Model.Precharge_standby,
        Model.state_power cfg Model.Self_refresh ))
    configs
