(** One commodity configuration per roadmap generation, for the trend
    studies of Section IV.C (Figures 11–13). *)

val all : Vdram_core.Config.t list
(** Fourteen generations, 170 nm SDR to 16 nm DDR5, built with the
    roadmap defaults. *)

val at : Vdram_tech.Node.t -> Vdram_core.Config.t
