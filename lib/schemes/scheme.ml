(* Power-reduction schemes as configuration transforms. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Bus = Vdram_circuits.Bus
module Domains = Vdram_circuits.Domains
module Params = Vdram_tech.Params
module G = Vdram_floorplan.Array_geometry

type t = {
  name : string;
  reference : string;
  description : string;
  transform : Config.t -> Config.t;
  area_factor : float;
  area_note : string;
}

(* One cache line (64 B = 512 bits) of sub-arrays: the activation
   fraction that raises only the local wordlines holding the line. *)
let cache_line_fraction cfg =
  let g = Config.geometry cfg in
  let line_subarrays =
    max 1 (512 / g.G.bits_per_lwl)
  in
  float_of_int (line_subarrays * g.G.bits_per_lwl)
  /. float_of_int (Config.page_bits cfg)

let selective_bitline_activation =
  {
    name = "selective bitline activation";
    reference = "Udipi et al., ISCA 2010";
    description =
      "Post the activate until the column address is known, then raise \
       only the local wordline segments that hold the requested cache \
       line.";
    transform =
      (fun cfg ->
        Config.with_activation_fraction cfg
          (Float.min 1.0 (cache_line_fraction cfg)));
    area_factor = 1.03;
    area_note =
      "needs per-segment local wordline selects in the on-pitch driver \
       stripes and posted-activate latching; modest but on-pitch";
  }

let single_subarray_access =
  {
    name = "single sub-array access";
    reference = "Udipi et al., ISCA 2010";
    description =
      "Fetch the whole cache line from one sub-array: minimum \
       activation and an 8:1 column-select to master-data-line ratio \
       so the dense M3 tracks become data lines.";
    transform =
      (fun cfg ->
        let g = Config.geometry cfg in
        let one =
          float_of_int g.G.bits_per_lwl
          /. float_of_int (Config.page_bits cfg)
        in
        let cfg = Config.with_activation_fraction cfg (Float.min 1.0 one) in
        (* Eight times more bits move per column select line. *)
        Config.with_tech cfg
          {
            cfg.Config.tech with
            Params.bits_per_csl = cfg.Config.tech.Params.bits_per_csl * 8;
          });
    area_factor = 1.12;
    area_note =
      "fundamentally changes the array block data path: wider \
       sense-amplifier stripe data switches and re-purposed M3 \
       wiring; the paper flags this as the costly direction";
  }

let segmented_data_lines =
  {
    name = "segmented data lines";
    reference = "Jeong et al., ISSCC 2009";
    description =
      "Cut-off switches in the center-stripe data buses limit the \
       toggled wire length to the segment holding the addressed bank.";
    transform =
      (fun cfg ->
        Config.map_buses cfg (fun bus ->
            match bus.Bus.role with
            | Bus.Write_data | Bus.Read_data ->
              {
                bus with
                Bus.segments =
                  List.map
                    (fun s -> { s with Bus.length = s.Bus.length *. 0.55 })
                    bus.Bus.segments;
              }
            | _ -> bus));
    area_factor = 1.005;
    area_note =
      "cut-off switches live in the off-pitch center stripe: nearly \
       free in area";
  }

let mini_rank =
  {
    name = "mini-rank";
    reference = "Zheng et al., MICRO 2008";
    description =
      "Break the rank's data path into narrower portions so fewer \
       devices activate per access; per device, half the IO width \
       serves a longer burst.";
    transform =
      (fun cfg ->
        let spec = cfg.Config.spec in
        let spec =
          {
            spec with
            Spec.io_width = max 4 (spec.Spec.io_width / 2);
            burst_length = spec.Spec.burst_length * 2;
          }
        in
        Config.with_spec cfg spec);
    area_factor = 1.0;
    area_note =
      "device unchanged; the mini-rank buffer sits on the module";
  }

let tsv_3d =
  {
    name = "3D stacking with TSV";
    reference = "Kang et al., JSSC 2010";
    description =
      "Through-silicon vias bring the interface to a base die: the \
       long center-stripe runs shrink and the off-chip driver loads \
       are replaced by short vertical hops.";
    transform =
      (fun cfg ->
        let cfg =
          Config.map_buses cfg (fun bus ->
              {
                bus with
                Bus.segments =
                  List.map
                    (fun s -> { s with Bus.length = s.Bus.length *. 0.35 })
                    bus.Bus.segments;
              })
        in
        {
          cfg with
          Config.io_predriver_cap = cfg.Config.io_predriver_cap *. 0.4;
          io_receiver_cap = cfg.Config.io_receiver_cap *. 0.4;
        });
    area_factor = 1.02;
    area_note =
      "TSV keep-out area on every die plus a base logic die; wiring \
       savings are on-die, cost moves to the stack";
  }

let low_voltage =
  {
    name = "low-voltage operation";
    reference = "Moon et al., ISSCC 2009";
    description =
      "Run the DRAM at 1.2 V external with a more advanced logic \
       process (thinner oxides, better transistors).";
    transform =
      (fun cfg ->
        let d = cfg.Config.domains in
        let scale = 1.2 /. d.Domains.vdd in
        let cfg =
          Config.with_domains cfg
            (Domains.v
               ~i_constant:d.Domains.i_constant
               ~vdd:1.2
               ~vint:(Float.min (d.Domains.vint *. scale) 1.1)
               ~vbl:(Float.min d.Domains.vbl 1.0)
               ~vpp:(Float.max (d.Domains.vpp *. scale) 2.4)
               ())
        in
        Config.with_tech cfg
          {
            cfg.Config.tech with
            Params.tox_logic = cfg.Config.tech.Params.tox_logic *. 0.85;
          });
    area_factor = 1.0;
    area_note =
      "process cost, not area: extra oxide and implant steps trade \
       power for wafer cost";
  }

let threaded_module =
  {
    name = "threaded memory module";
    reference = "Ware and Hampel, ICCD 2006";
    description =
      "Extra addressing granularity on the module lets each request \
       activate half the page at a given data rate.";
    transform =
      (fun cfg -> Config.with_activation_fraction cfg 0.5);
    area_factor = 1.01;
    area_note =
      "one more column address bit and duplicated wordline select per \
       half-page; mostly off-pitch";
  }

let all =
  [
    selective_bitline_activation;
    single_subarray_access;
    segmented_data_lines;
    mini_rank;
    tsv_3d;
    low_voltage;
    threaded_module;
  ]
