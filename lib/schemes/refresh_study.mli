(** Refresh-rate study (Emma et al., IEEE Micro 2008, cited in
    Section V): adaptively relaxing the refresh interval cuts the
    standby/self-refresh floor, which matters most for cache-like and
    mobile uses of DRAM. *)

type point = {
  interval_scale : float;
      (** multiple of the nominal 7.8 us refresh interval *)
  self_refresh_power : float;  (** W *)
  idd5b : float;               (** burst-refresh current, A *)
  standby_charge_per_day : float;
      (** coulombs per day in self-refresh — the battery-life view *)
}

val sweep : Vdram_core.Config.t -> scales:float list -> point list
(** Evaluate relaxed (scale > 1) or tightened (scale < 1, e.g. high
    temperature) refresh intervals. *)

val at_temperatures :
  Vdram_core.Config.t -> celsius:float list -> (float * point) list
(** The same study driven by operating temperature through the
    retention model ({!Vdram_tech.Retention}): each temperature maps
    to its allowed refresh-interval scale. *)

val pp : Format.formatter -> point list -> unit
