(** DRAM power-reduction schemes (Section V).

    Each scheme is a configuration transform plus the area/feasibility
    assessment the paper insists on: any change inside the bitline
    sense-amplifier or local wordline driver stripes is expensive;
    center-stripe changes are cheap. *)

type t = {
  name : string;
  reference : string;
      (** who proposed it, e.g. ["Udipi et al., ISCA 2010"] *)
  description : string;
  transform : Vdram_core.Config.t -> Vdram_core.Config.t;
  area_factor : float;
      (** estimated die-area multiplier of the modification *)
  area_note : string;
      (** where the area/feasibility cost lands *)
}

val selective_bitline_activation : t
(** Udipi et al.: post the activate until the column command is known
    and raise only the needed local wordline segments; modelled as an
    activation fraction of one cache line's worth of sub-arrays. *)

val single_subarray_access : t
(** Udipi et al.: fetch the whole cache line from one sub-array; the
    smallest possible activation plus an 8:1 column-select to master
    data line ratio (more bits per CSL). *)

val segmented_data_lines : t
(** Jeong et al.: cut-off switches shorten the active length of the
    center-stripe data buses. *)

val mini_rank : t
(** Zheng et al.: narrower data path per device so fewer devices serve
    an access; modelled at device level as halved IO width at the same
    per-pin rate. *)

val tsv_3d : t
(** Kang et al.: 3-D stacking with through-silicon vias shortens the
    center-stripe wiring and shrinks the off-chip driver loads. *)

val low_voltage : t
(** Moon et al.: run the device at 1.2 V with a more advanced logic
    process. *)

val threaded_module : t
(** Ware and Hampel: added addressing granularity halves the activated
    page per request. *)

val all : t list
(** All seven schemes above. *)
