(* Scheme evaluation against a baseline configuration. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Operation = Vdram_core.Operation
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type result = {
  scheme : Scheme.t;
  baseline_name : string;
  activate_energy_before : float;
  activate_energy_after : float;
  idd0_saving : float;
  idd4r_saving : float;
  idd7_saving : float;
  energy_per_bit_before : float;
  energy_per_bit_after : float;
  die_area_before : float;
  die_area_after : float;
}

let run ?engine baseline scheme =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let modified = scheme.Scheme.transform baseline in
  (* Warm the baseline's extraction, then evaluate the transformed
     configuration with it as the delta base: a scheme perturbs a few
     fields, so only the circuit groups it reaches re-extract. *)
  ignore (Engine.extraction engine baseline);
  let power ?base cfg pattern = Engine.power ?base engine cfg pattern in
  let saving pattern_of =
    let before = power baseline (pattern_of baseline.Config.spec) in
    let after =
      power ~base:baseline modified (pattern_of modified.Config.spec)
    in
    (before -. after) /. before
  in
  let epb ?base cfg =
    match
      Engine.energy_per_bit ?base engine cfg
        (Pattern.idd7_mixed cfg.Config.spec)
    with
    | Some e -> e
    | None -> assert false
  in
  let die = (Engine.geometry engine baseline).Engine.die_area in
  {
    scheme;
    baseline_name = baseline.Config.name;
    activate_energy_before =
      Engine.op_energy engine baseline Operation.Activate;
    activate_energy_after =
      Engine.op_energy ~base:baseline engine modified Operation.Activate;
    idd0_saving = saving Pattern.idd0;
    idd4r_saving = saving Pattern.idd4r;
    idd7_saving = saving Pattern.idd7_mixed;
    energy_per_bit_before = epb baseline;
    energy_per_bit_after = epb ~base:baseline modified;
    die_area_before = die;
    die_area_after = die *. scheme.Scheme.area_factor;
  }

let result_check r =
  if
    List.for_all Float.is_finite
      [
        r.activate_energy_before; r.activate_energy_after; r.idd0_saving;
        r.idd4r_saving; r.idd7_saving; r.energy_per_bit_before;
        r.energy_per_bit_after; r.die_area_before; r.die_area_after;
      ]
  then None
  else
    Some
      (Printf.sprintf "non-finite scheme result %S" r.scheme.Scheme.name)

(* Under supervision a scheme whose evaluation fails drops out of the
   comparison table; its failure record lives on the supervisor. *)
let run_all ?engine ?supervisor baseline =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  Supervise.map_jobs ?supervisor engine ~check:result_check
    (fun s -> run ~engine baseline s)
    Scheme.all
  |> List.filter_map (function Supervise.Done r -> Some r | _ -> None)

let compose schemes =
  match schemes with
  | [] -> invalid_arg "Evaluate.compose: empty scheme list"
  | _ ->
    {
      Scheme.name =
        String.concat " + "
          (List.map (fun s -> s.Scheme.name) schemes);
      reference =
        String.concat "; "
          (List.sort_uniq compare
             (List.map (fun s -> s.Scheme.reference) schemes));
      description = "composition of the listed schemes";
      transform =
        (fun cfg ->
          List.fold_left
            (fun acc s -> s.Scheme.transform acc)
            cfg schemes);
      area_factor =
        List.fold_left (fun a s -> a *. s.Scheme.area_factor) 1.0 schemes;
      area_note = "combined area impacts multiply";
    }

let run_combined ?engine baseline schemes =
  run ?engine baseline (compose schemes)

let pct f = f *. 100.0

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s (%s)@,  %s@,  activate energy %s -> %s@,  power saving: \
     Idd0 %+.1f%%, Idd4R %+.1f%%, Idd7 %+.1f%%@,  energy/bit %.1f -> \
     %.1f pJ@,  die area x%.3f (%s)@]"
    r.scheme.Scheme.name r.scheme.Scheme.reference
    r.scheme.Scheme.description
    (Vdram_units.Si.format_eng ~unit_symbol:"J" r.activate_energy_before)
    (Vdram_units.Si.format_eng ~unit_symbol:"J" r.activate_energy_after)
    (pct r.idd0_saving) (pct r.idd4r_saving) (pct r.idd7_saving)
    (r.energy_per_bit_before *. 1e12)
    (r.energy_per_bit_after *. 1e12)
    r.scheme.Scheme.area_factor r.scheme.Scheme.area_note

let pp_table ppf results =
  Format.fprintf ppf "@[<v>%-30s %9s %9s %9s %11s %8s@,"
    "scheme" "Idd0" "Idd4R" "Idd7" "pJ/bit" "area";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-30s %8.1f%% %8.1f%% %8.1f%% %5.1f>%4.1f %8.3f@,"
        r.scheme.Scheme.name (pct r.idd0_saving) (pct r.idd4r_saving)
        (pct r.idd7_saving)
        (r.energy_per_bit_before *. 1e12)
        (r.energy_per_bit_after *. 1e12)
        r.scheme.Scheme.area_factor)
    results;
  Format.fprintf ppf "@]"
