(* Refresh-interval sweep. *)

module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Domains = Vdram_circuits.Domains

type point = {
  interval_scale : float;
  self_refresh_power : float;
  idd5b : float;
  standby_charge_per_day : float;
}

let sweep (cfg : Config.t) ~scales =
  let d = cfg.Config.domains in
  List.map
    (fun interval_scale ->
      if interval_scale <= 0.0 then
        invalid_arg "Refresh_study.sweep: non-positive scale";
      (* A longer interval divides the average refresh power; the
         burst-refresh current is unchanged (same rows per command),
         only its duty cycle moves. *)
      let refresh = Model.refresh_power cfg /. interval_scale in
      let self_refresh_power = Model.powerdown_power cfg +. refresh in
      let day = 24.0 *. 3600.0 in
      {
        interval_scale;
        self_refresh_power;
        idd5b = Model.idd5b cfg;
        standby_charge_per_day =
          self_refresh_power /. d.Domains.vdd *. day;
      })
    scales

let at_temperatures cfg ~celsius =
  List.map
    (fun t ->
      let scale = Vdram_tech.Retention.interval_scale ~celsius:t in
      match sweep cfg ~scales:[ scale ] with
      | [ p ] -> (t, p)
      | _ -> assert false)
    celsius

let pp ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "tREFI x%-5.2f  self-refresh %7.2f mW  Idd5B %6.1f mA  %6.0f C/day@,"
        p.interval_scale
        (p.self_refresh_power *. 1e3)
        (p.idd5b *. 1e3) p.standby_charge_per_day)
    points;
  Format.fprintf ppf "@]"
