(** Quantitative scheme evaluation (Section V): power benefit per
    operation pattern together with the die-area impact, the
    comparison the paper's model exists to make quick. *)

type result = {
  scheme : Scheme.t;
  baseline_name : string;
  activate_energy_before : float;  (** J per activate *)
  activate_energy_after : float;
  idd0_saving : float;      (** fractional power saving on Idd0 *)
  idd4r_saving : float;
  idd7_saving : float;      (** on the Idd7-like mixed pattern *)
  energy_per_bit_before : float;   (** J/bit, mixed pattern *)
  energy_per_bit_after : float;
  die_area_before : float;         (** m^2 *)
  die_area_after : float;          (** with the scheme's area factor *)
}

val run :
  ?engine:Vdram_engine.Engine.t -> Vdram_core.Config.t -> Scheme.t -> result

val run_all :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  Vdram_core.Config.t ->
  result list
(** Every scheme of {!Scheme.all} against the same baseline, one pool
    job per scheme.  The shared engine means the baseline's stages are
    extracted once, not once per scheme.  With [supervisor] a scheme
    whose evaluation fails (or yields a non-finite result) drops out
    of the table and is recorded as a failure instead of aborting. *)

val compose : Scheme.t list -> Scheme.t
(** Stack schemes: transforms apply left to right, area factors
    multiply; the name joins the parts.  Raises [Invalid_argument] on
    an empty list. *)

val run_combined :
  ?engine:Vdram_engine.Engine.t ->
  Vdram_core.Config.t -> Scheme.t list -> result
(** Evaluate a stack of schemes as one — Section V's point that
    proposals must be compared (and combined) under one model.
    Savings compose sub-additively; the result quantifies by how
    much. *)

val pp_result : Format.formatter -> result -> unit

val pp_table : Format.formatter -> result list -> unit
(** The Section V comparison table: savings, energy per bit and area
    impact per scheme. *)
