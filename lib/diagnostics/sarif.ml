(* SARIF 2.1.0 renderer: lint reports as a code-scanning upload. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let tool_name = "vdram lint"
let tool_version = "1.0.0"

let add_str buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let level_name = function Code.Error -> "error" | Code.Warning -> "warning"

let uri_of file span =
  match span.Span.file with
  | Some f -> f
  | None -> ( match file with Some f -> f | None -> "<stdin>")

let add_region ?end_line buf (s : Span.t) =
  Buffer.add_string buf (Printf.sprintf "{\"startLine\":%d" s.line);
  (match end_line with
   | Some l when l > s.line ->
     Buffer.add_string buf (Printf.sprintf ",\"endLine\":%d" l)
   | _ -> ());
  if s.col_start >= 1 then
    Buffer.add_string buf
      (Printf.sprintf ",\"startColumn\":%d,\"endColumn\":%d" s.col_start
         (max s.col_start s.col_end));
  Buffer.add_char buf '}'

let add_location buf uri (s : Span.t) =
  Buffer.add_string buf "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
  add_str buf uri;
  Buffer.add_char buf '}';
  if s.line >= 1 then begin
    Buffer.add_string buf ",\"region\":";
    add_region buf s
  end;
  Buffer.add_string buf "}}"

let add_fix buf uri (d : Diagnostic.t) =
  Buffer.add_string buf "{\"description\":{\"text\":";
  add_str buf ("fix " ^ d.code);
  Buffer.add_string buf "},\"artifactChanges\":[{\"artifactLocation\":{\"uri\":";
  add_str buf uri;
  Buffer.add_string buf "},\"replacements\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"deletedRegion\":";
      add_region ~end_line:f.Fix.line_end buf f.Fix.span;
      Buffer.add_string buf ",\"insertedContent\":{\"text\":";
      add_str buf f.Fix.replacement;
      Buffer.add_string buf "}}")
    d.fixes;
  Buffer.add_string buf "]}]}"

let add_result buf ~rule_index file (d : Diagnostic.t) =
  let uri = uri_of file d.span in
  Buffer.add_string buf "{\"ruleId\":";
  add_str buf d.code;
  Buffer.add_string buf
    (Printf.sprintf ",\"ruleIndex\":%d" (rule_index d.code));
  Buffer.add_string buf ",\"level\":";
  add_str buf (level_name d.severity);
  Buffer.add_string buf ",\"message\":{\"text\":";
  add_str buf d.message;
  Buffer.add_string buf "},\"locations\":[";
  add_location buf uri d.span;
  Buffer.add_char buf ']';
  if d.fixes <> [] then begin
    Buffer.add_string buf ",\"fixes\":[";
    add_fix buf uri d;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}'

let render reports =
  let flat =
    List.concat_map (fun (file, ds) -> List.map (fun d -> (file, d)) ds)
      reports
  in
  let codes =
    List.sort_uniq compare (List.map (fun (_, d) -> d.Diagnostic.code) flat)
  in
  let rule_index c =
    let rec go i = function
      | [] -> 0
      | x :: _ when x = c -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 codes
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"$schema\":";
  add_str buf schema_uri;
  Buffer.add_string buf ",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":";
  add_str buf tool_name;
  Buffer.add_string buf ",\"version\":";
  add_str buf tool_version;
  Buffer.add_string buf ",\"rules\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"id\":";
      add_str buf c;
      (match Code.find c with
       | Some info ->
         Buffer.add_string buf ",\"shortDescription\":{\"text\":";
         add_str buf info.Code.title;
         Buffer.add_string buf "},\"defaultConfiguration\":{\"level\":";
         add_str buf (level_name info.Code.severity);
         Buffer.add_char buf '}'
       | None -> ());
      Buffer.add_char buf '}')
    codes;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i (file, d) ->
      if i > 0 then Buffer.add_char buf ',';
      add_result buf ~rule_index file d)
    flat;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf
