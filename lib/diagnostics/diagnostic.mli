(** Spanned, coded diagnostics with text and JSON renderers.

    A diagnostic is a severity, a stable [V####] code (see {!Code}), a
    human message, an optional source span, optional related notes and
    an optional fix-it hint.  The text renderer produces a
    compiler-style report (location, severity, code, message, source
    excerpt with carets); the JSON renderer produces one object per
    diagnostic for machine consumption. *)

type severity = Code.severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  span : Span.t;
  message : string;
  notes : string list;    (** related remarks, rendered as [= note:] *)
  help : string option;   (** fix-it hint, rendered as [= help:] *)
  fixes : Fix.t list;     (** machine-applicable edits (see {!Fix}) *)
}

val v :
  ?span:Span.t -> ?notes:string list -> ?help:string -> ?fixes:Fix.t list ->
  severity:severity -> code:string -> string -> t

val errorf :
  ?span:Span.t -> ?notes:string list -> ?help:string -> ?fixes:Fix.t list ->
  code:string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?span:Span.t -> ?notes:string list -> ?help:string -> ?fixes:Fix.t list ->
  code:string -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"] or ["warning"]. *)

val is_error : t -> bool

val count : severity -> t list -> int

val compare_source : t -> t -> int
(** Source order (by span); spanless diagnostics sort last. *)

val pp : Format.formatter -> t -> unit
(** One line: ["file:9:29: error[V0301]: message"]. *)

val pp_rich : ?source:string array -> Format.formatter -> t -> unit
(** Multi-line report.  When [source] (the file split into lines) is
    given and the span has columns, the offending line is echoed with
    a caret underline; notes and help render as trailing [= note:] /
    [= help:] lines. *)

val to_json : Buffer.t -> t -> unit
(** Append one JSON object ({["severity","code","message"]} plus
    ["file"], ["line"], ["col"], ["end_col"], ["notes"], ["help"] when
    present). *)

val json_of_list : t list -> string
(** A JSON report: [{"errors":N,"warnings":M,"diagnostics":[...]}]. *)
