(** SARIF 2.1.0 renderer.

    Renders lint reports in the Static Analysis Results Interchange
    Format so findings can be uploaded to code-scanning services.
    The output is a single SARIF log with one run: the tool driver
    lists one rule per distinct V-code (title and default severity
    from {!Code}), each diagnostic becomes a result with a physical
    location, and structured {!Fix} edits render as SARIF [fixes]
    with [deletedRegion] / [insertedContent] replacements. *)

val schema_uri : string
(** The SARIF 2.1.0 JSON-schema URI embedded as [$schema]. *)

val render : (string option * Diagnostic.t list) list -> string
(** [render reports] serializes per-file diagnostic lists (the file
    name, [None] for stdin, paired with its diagnostics) into one
    SARIF document. *)
