(* Structured fix-its: a source span plus its replacement text. *)

type t = {
  span : Span.t;
  line_end : int;
  replacement : string;
}

let v ?line_end ~span replacement =
  let line_end =
    match line_end with
    | Some l -> max l span.Span.line
    | None -> span.Span.line
  in
  { span; line_end; replacement }

let is_multiline t = t.line_end > t.span.Span.line

let is_insertion t =
  (not (is_multiline t)) && t.span.Span.col_end <= t.span.Span.col_start

let pp ppf t =
  if is_insertion t then
    Format.fprintf ppf "insert %S at %a" t.replacement Span.pp t.span
  else if is_multiline t then
    Format.fprintf ppf "replace %a..%d with %S" Span.pp t.span t.line_end
      t.replacement
  else Format.fprintf ppf "replace %a with %S" Span.pp t.span t.replacement

(* A fix edits the region from (span.line, span.col_start) up to
   (line_end, col_end) — columns 1-based, the end exclusive.  For the
   common single-line fix [line_end = span.line]; a zero-width span
   inserts before [col_start].  For a multi-line fix [col_end] is a
   column on [line_end], so the region swallows the intervening line
   breaks. *)

(* The effective exclusive end column, on [line_end]. *)
let stop_col f =
  if is_multiline f then max 1 f.span.Span.col_end
  else max f.span.Span.col_start f.span.Span.col_end

let apply ~source fixes =
  let lines = String.split_on_char '\n' source |> Array.of_list in
  let nlines = Array.length lines in
  (* Byte offset of the start of each 1-based line in [source]. *)
  let line_offset = Array.make (nlines + 1) 0 in
  for i = 2 to nlines do
    line_offset.(i) <- line_offset.(i - 1) + String.length lines.(i - 2) + 1
  done;
  let valid f =
    (not (Span.is_none f.span))
    && f.span.Span.line >= 1
    && f.span.Span.line <= nlines
    && f.line_end >= f.span.Span.line
    && f.line_end <= nlines
    && f.span.Span.col_start >= 1
    && f.span.Span.col_start - 1 <= String.length lines.(f.span.Span.line - 1)
    && stop_col f - 1 <= String.length lines.(f.line_end - 1)
  in
  (* Region of a fix as byte offsets into [source], start inclusive,
     stop exclusive. *)
  let region f =
    let start = line_offset.(f.span.Span.line) + f.span.Span.col_start - 1 in
    let stop = line_offset.(f.line_end) + stop_col f - 1 in
    (start, max start stop)
  in
  let spanned = List.filter valid fixes in
  let sorted =
    List.stable_sort
      (fun a b ->
        let (a0, a1) = region a and (b0, b1) = region b in
        let c = compare a0 b0 in
        if c <> 0 then c else compare a1 b1)
      spanned
  in
  (* Select a non-overlapping subset; the first fix in source order
     wins so the result is always well defined.  Identical insertion
     points conflict too: applying both would splice two replacements
     at the same spot in arbitrary order. *)
  let overlaps a b =
    let (a0, a1) = region a and (b0, b1) = region b in
    if a0 = b0 then true else a0 < b1 && b0 < a1
  in
  let selected =
    List.rev
      (List.fold_left
         (fun acc f -> if List.exists (overlaps f) acc then acc else f :: acc)
         [] sorted)
  in
  (* Apply right to left so the byte offsets of pending edits, which
     were computed against the original source, stay valid. *)
  let text = ref source in
  let applied = ref 0 in
  List.iter
    (fun f ->
      let start, stop = region f in
      let s = !text in
      text :=
        String.sub s 0 start ^ f.replacement
        ^ String.sub s stop (String.length s - stop);
      incr applied)
    (List.rev selected);
  (!text, !applied)
