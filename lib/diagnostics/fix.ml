(* Structured fix-its: a source span plus its replacement text. *)

type t = {
  span : Span.t;
  replacement : string;
}

let v ~span replacement = { span; replacement }

let is_insertion t = t.span.Span.col_end <= t.span.Span.col_start

let pp ppf t =
  if is_insertion t then
    Format.fprintf ppf "insert %S at %a" t.replacement Span.pp t.span
  else Format.fprintf ppf "replace %a with %S" Span.pp t.span t.replacement

(* Fixes edit a single source line each: the span's [line], columns
   [col_start, col_end) (1-based, end exclusive).  A zero-width span
   inserts before [col_start]. *)

let overlaps a b =
  a.span.Span.line = b.span.Span.line
  &&
  let a0 = a.span.Span.col_start in
  let a1 = max a0 a.span.Span.col_end in
  let b0 = b.span.Span.col_start in
  let b1 = max b0 b.span.Span.col_end in
  (* Identical insertion points conflict too: applying both would
     splice two replacements at the same spot in arbitrary order. *)
  if a0 = b0 then true else a0 < b1 && b0 < a1

let apply ~source fixes =
  let lines = String.split_on_char '\n' source |> Array.of_list in
  let spanned =
    List.filter
      (fun f ->
        (not (Span.is_none f.span))
        && f.span.Span.line >= 1
        && f.span.Span.line <= Array.length lines
        && f.span.Span.col_start >= 1)
      fixes
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = compare a.span.Span.line b.span.Span.line in
        if c <> 0 then c
        else
          let c = compare a.span.Span.col_start b.span.Span.col_start in
          if c <> 0 then c else compare a.span.Span.col_end b.span.Span.col_end)
      spanned
  in
  (* Select a non-overlapping subset; the first fix in source order
     wins so the result is always well defined. *)
  let selected =
    List.rev
      (List.fold_left
         (fun acc f -> if List.exists (overlaps f) acc then acc else f :: acc)
         [] sorted)
  in
  (* Apply right to left so column offsets of pending edits stay valid. *)
  let applied = ref 0 in
  List.iter
    (fun f ->
      let l = f.span.Span.line - 1 in
      let line = lines.(l) in
      let len = String.length line in
      let start = f.span.Span.col_start - 1 in
      let stop = max start (f.span.Span.col_end - 1) in
      if start <= len && stop <= len then begin
        lines.(l) <-
          String.sub line 0 start ^ f.replacement
          ^ String.sub line stop (len - stop);
        incr applied
      end)
    (List.rev selected);
  (String.concat "\n" (Array.to_list lines), !applied)
