(** The stable lint-code registry.

    Every diagnostic the toolchain can emit carries a [V####] code.
    Codes are stable across releases: once assigned, a code keeps its
    meaning (retired codes are never reused).  The registry is the
    single source of truth for the code inventory, the default
    severity of each code, and the one-line title used in
    documentation and [--allow] validation.

    Numbering bands:
    - [V00xx] syntax (parser)
    - [V01xx] literals, units and input hygiene
    - [V02xx] elaboration and name resolution
    - [V03xx] physical consistency of the elaborated configuration
    - [V04xx] finiteness of the derived energy/current tables
    - [V05xx] timing-constraint consistency
    - [V06xx] pattern/specification reachability
    - [V07xx] floorplan signaling geometry
    - [V08xx] bank-aware pattern legality
    - [V09xx] whole-sweep legality ([vdram check])
    - [V10xx] static dataflow advice ([vdram advise]) *)

type severity = Error | Warning

type info = {
  code : string;        (** e.g. ["V0301"] *)
  severity : severity;  (** default severity when emitted *)
  title : string;       (** one-line description for docs and [--help] *)
  rationale : string option;
      (** why the finding matters, for [lint --explain] *)
  example : string option;
      (** a minimal offending snippet, for [lint --explain] *)
}

val all : info list
(** Every registered code, in numeric order. *)

val find : string -> info option
(** Look a code up; [None] for unregistered codes. *)

val is_known : string -> bool

val bands : (string * string) list
(** The reserved numbering bands: [("V03", "physical consistency")]
    etc.  Every registered code must fall in one of these. *)

val band_of : string -> (string * string) option
(** The reserved band a code falls in ([None] outside every band). *)

val severity_name : severity -> string
(** ["error"] / ["warning"]. *)

val explain : Format.formatter -> info -> unit
(** The doc-inventory rendering behind [vdram lint --explain]: code,
    severity, title, band, and the rationale/example when the
    registry carries them. *)

val self_check : unit -> string list
(** Registry invariants, checked by the test suite at startup: every
    code is [V] + four digits, unique, in ascending order, inside a
    reserved band, and carries a title.  Returns one message per
    violation; the empty list means the registry is consistent. *)
