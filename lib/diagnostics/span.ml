(* Source spans for diagnostics. *)

type t = {
  file : string option;
  line : int;
  col_start : int;
  col_end : int;
}

let none = { file = None; line = 0; col_start = 0; col_end = 0 }

let is_none t = t.line = 0 && t.file = None

let of_line ?file line = { file; line; col_start = 0; col_end = 0 }

let of_cols ?file ~start ~stop line =
  { file; line; col_start = start; col_end = stop }

let with_file file t = { t with file = Some file }

let compare a b =
  (* Spanless findings sort after located ones. *)
  let key t =
    ( (if t.line = 0 then 1 else 0),
      Option.value ~default:"" t.file,
      t.line,
      t.col_start )
  in
  Stdlib.compare (key a) (key b)

let pp ppf t =
  match (t.file, t.line) with
  | None, 0 -> ()
  | None, l when t.col_start > 0 -> Format.fprintf ppf "line %d:%d" l t.col_start
  | None, l -> Format.fprintf ppf "line %d" l
  | Some f, 0 -> Format.fprintf ppf "%s" f
  | Some f, l when t.col_start > 0 -> Format.fprintf ppf "%s:%d:%d" f l t.col_start
  | Some f, l -> Format.fprintf ppf "%s:%d" f l
