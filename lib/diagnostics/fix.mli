(** Structured fix-its.

    A fix is a machine-applicable edit: a source {!Span.t} plus the
    text that should replace it.  A zero-width span ([col_end <=
    col_start]) denotes an insertion before [col_start].  Diagnostics
    carry a list of fixes (see {!Diagnostic.t}); [vdram lint --fix]
    applies every non-overlapping fix to the offending file. *)

type t = {
  span : Span.t;        (** the text to replace; zero-width = insert *)
  replacement : string; (** the replacement text *)
}

val v : span:Span.t -> string -> t

val is_insertion : t -> bool
(** [true] when the span is zero-width (pure insertion). *)

val pp : Format.formatter -> t -> unit

val apply : source:string -> t list -> string * int
(** [apply ~source fixes] rewrites [source] (the full file contents)
    with every applicable fix and returns the new contents plus the
    number of fixes applied.  Fixes whose spans overlap are resolved
    first-in-source-order-wins; fixes with spans outside the source
    are dropped.  Edits on one line are applied right to left, so
    column positions never shift under earlier edits. *)
