(** Structured fix-its.

    A fix is a machine-applicable edit: a source region plus the text
    that should replace it.  The region runs from [(span.line,
    span.col_start)] to [(line_end, span.col_end)], columns 1-based
    with the end exclusive; for the common single-line fix [line_end =
    span.line].  A zero-width single-line span ([col_end <=
    col_start]) denotes an insertion before [col_start]; a multi-line
    region swallows the intervening line breaks, so a fix can delete
    or rewrite several statements at once.  Diagnostics carry a list
    of fixes (see {!Diagnostic.t}); [vdram lint --fix] applies every
    non-overlapping fix to the offending file. *)

type t = {
  span : Span.t;        (** start of the region; zero-width = insert *)
  line_end : int;       (** last line of the region; [span.line] when
                            the fix stays on one line *)
  replacement : string; (** the replacement text *)
}

val v : ?line_end:int -> span:Span.t -> string -> t
(** [v ?line_end ~span replacement] builds a fix.  [line_end] defaults
    to [span.line] (a single-line fix) and is clamped to at least
    [span.line]. *)

val is_insertion : t -> bool
(** [true] when the region is zero-width (pure insertion). *)

val is_multiline : t -> bool
(** [true] when the region crosses a line boundary. *)

val pp : Format.formatter -> t -> unit

val apply : source:string -> t list -> string * int
(** [apply ~source fixes] rewrites [source] (the full file contents)
    with every applicable fix and returns the new contents plus the
    number of fixes applied.  Fixes whose regions overlap are resolved
    first-in-source-order-wins; fixes with regions outside the source
    are dropped.  Edits are applied right to left over byte offsets
    computed against the original source, so positions never shift
    under earlier edits. *)
