(** Source spans: where in a description file a diagnostic points.

    Lines and columns are 1-based; a zero line means "unknown".  The
    column range is [col_start] inclusive to [col_end] exclusive, both
    zero when only the line is known. *)

type t = {
  file : string option;
  line : int;       (** 1-based; 0 when unknown *)
  col_start : int;  (** 1-based, inclusive; 0 when unknown *)
  col_end : int;    (** exclusive; 0 when unknown *)
}

val none : t
(** No location at all (configuration-level findings). *)

val is_none : t -> bool

val of_line : ?file:string -> int -> t
(** A whole source line. *)

val of_cols : ?file:string -> start:int -> stop:int -> int -> t
(** [of_cols ~start ~stop line] is a column range on [line], [start]
    inclusive to [stop] exclusive. *)

val with_file : string -> t -> t
(** Attach a file name, keeping line/columns. *)

val compare : t -> t -> int
(** Source order: by file, line, then column; spanless sorts last. *)

val pp : Format.formatter -> t -> unit
(** ["file:12:5"], ["file:12"], ["line 12"] or [""] depending on what
    is known. *)
