(* Stable lint-code registry. *)

type severity = Error | Warning

type info = {
  code : string;
  severity : severity;
  title : string;
  rationale : string option;
  example : string option;
}

let v ?rationale ?example code severity title =
  { code; severity; title; rationale; example }

let all =
  [
    (* V00xx — syntax *)
    v "V0001" Error "statement before any section header";
    v "V0002" Error "assignment with an empty key";
    v "V0003" Error "assignment missing a value";
    v "V0004" Error "statement starts with an assignment instead of a keyword";
    v "V0005" Warning "comment marker glued to a token truncates the line";
    v "V0006" Error "description file cannot be read";
    (* V01xx — literals, units, input hygiene *)
    v "V0101" Error "literal has the wrong dimension";
    v "V0102" Error "malformed numeric literal";
    v "V0103" Error "unknown unit suffix";
    v "V0104" Error "literal is not a finite number";
    v "V0105" Warning "unrecognized argument is silently ignored";
    v "V0106" Warning "unrecognized section is silently ignored";
    v "V0107" Warning "unrecognized statement keyword is silently ignored";
    (* V02xx — elaboration *)
    v "V0200" Error "description cannot be elaborated";
    v "V0201" Error "unknown technology parameter";
    v "V0202" Error "unknown bus keyword in FloorplanSignaling";
    v "V0203" Error "missing required section or statement";
    v "V0204" Error "malformed argument value";
    v "V0205" Error "missing required argument";
    v "V0206" Error "invalid command in a pattern loop";
    (* V03xx — physical consistency *)
    v "V0301" Error "Vpp leaves no write-back headroom over Vbl";
    v "V0302" Warning "bitline voltage above Vint";
    v "V0303" Error "Vint above the external supply";
    v "V0304" Warning "banks x rows x page does not cover the density";
    v "V0305" Error "device density is not a positive finite bit count";
    v "V0306" Error "page is not a whole number of local wordlines";
    v "V0307" Warning "sense-amplifier stripe wider than a sub-array";
    v "V0308" Warning "wordline-driver stripe wider than a sub-array";
    v "V0309" Error "activation fraction outside (0, 1]";
    v "V0310" Warning "burst shorter than one command clock";
    v "V0311" Error "burst length below the prefetch";
    v "V0312" Error "generator efficiency outside (0, 1]";
    v "V0313" Warning "logic-block toggle rate outside [0, 1]";
    v "V0314" Error "data toggle rate outside [0, 1]";
    (* V04xx — finiteness of derived tables *)
    v "V0401" Error "operation energy is not finite";
    v "V0402" Warning "operation energy is negative";
    v "V0403" Error "background or state power is not finite";
    v "V0404" Error "peak current is not finite";
    (* V05xx — timing consistency *)
    v "V0501" Error "tRCD + tRP leave no restore time within tRC";
    v "V0502" Error "timing parameter is not positive";
    v "V0503" Warning "burst is not a whole number of command clocks";
    v "V0504" Warning "refresh interval shorter than the refresh cycle time";
    (* V06xx — pattern reachability *)
    v "V0601" Warning "column command without an activate in the loop";
    v "V0602" Warning "activate rate exceeds the tRC/tFAW limits";
    v "V0603" Warning "pattern oversubscribes the data bus";
    (* V07xx — floorplan signaling geometry *)
    v "V0701" Error "signaling coordinate outside the declared floorplan grid";
    v "V0702" Warning "zero-length route between identical coordinates";
    v "V0703" Warning "inside= fraction outside (0, 1]";
    (* V08xx — bank-aware pattern legality *)
    v "V0801" Warning "pattern re-activates a bank within its tRC window";
    v "V0802" Warning "pattern violates tRRD activate spacing";
    v "V0803" Warning "pattern exceeds four activates per tFAW window";
    (* V09xx — whole-sweep legality (`vdram check`) *)
    v "V0901" Warning "pattern re-activates a bank within tRC somewhere on the roadmap"
      ~rationale:
        "the loop is legal at its authored node, but a slower roadmap \
         generation's tRC window rejects it; a sweep would silently \
         evaluate an unschedulable loop there"
      ~example:"Pattern loop= act nop pre nop  # fine at 30nm, tight at 90nm";
    v "V0902" Warning "pattern violates activate spacing somewhere on the roadmap";
    v "V0903" Warning "pattern violates column/precharge timing somewhere on the roadmap";
    (* V10xx — static dataflow advice (`vdram advise`) *)
    v "V1001" Warning "activate opens a row no column command ever reads or writes"
      ~rationale:
        "an activate/precharge pair that moves no data burns the full \
         row-cycle energy for nothing; dropping the pair is pure \
         saving (the proposed fix is replayed across every roadmap \
         generation and re-priced before it is offered)"
      ~example:"Pattern loop= act nop rd nop act nop pre pre  # 2nd act unused";
    v "V1002" Warning "loop carries more nop padding than any timing window needs"
      ~rationale:
        "every padding cycle adds a full background-power cycle to the \
         loop; padding beyond the binding timing constraint is energy \
         with no legality in return.  The fix removes only as many \
         nops as keep the loop legal at the authored node and across \
         the whole roadmap sweep"
      ~example:"Pattern loop= act nop nop nop nop nop nop pre  # tRAS met long ago";
    v "V1003" Warning "idle window long enough for precharge power-down"
      ~rationale:
        "a nop run longer than the power-down exit latency (tXP) could \
         be spent in CKE power-down: the clocked background drops to \
         the power-down floor for the whole window minus the exit \
         cost.  Advisory only — entering power-down is a controller \
         policy, not a pattern edit"
      ~example:"Pattern loop= act rd pre nop nop ... nop  # 40-cycle tail";
    v "V1004" Warning "loop energy far above its certified static lower bound"
      ~rationale:
        "the idle-stripped ideal schedule of the same commands, priced \
         through the certified interval evaluator, is a sound floor on \
         the loop's energy; a large gap means the loop shape (not the \
         command mix) dominates the bill"
      ~example:"Pattern loop= act rd pre nop*60  # 3x the ideal-schedule energy";
  ]

let find code = List.find_opt (fun i -> i.code = code) all

let is_known code = find code <> None

(* ----- registry self-check ----------------------------------------- *)

let bands =
  [
    ("V00", "syntax");
    ("V01", "literals, units and input hygiene");
    ("V02", "elaboration and name resolution");
    ("V03", "physical consistency");
    ("V04", "finiteness of derived tables");
    ("V05", "timing consistency");
    ("V06", "pattern reachability");
    ("V07", "floorplan signaling geometry");
    ("V08", "bank-aware pattern legality");
    ("V09", "whole-sweep legality");
    ("V10", "static dataflow advice");
  ]

let band_of code =
  if String.length code >= 3 then
    let band = String.sub code 0 3 in
    List.find_opt (fun (b, _) -> b = band) bands
  else None

let severity_name = function Error -> "error" | Warning -> "warning"

let explain ppf i =
  let band_desc =
    match band_of i.code with
    | Some (_, d) -> d
    | None -> "unreserved band"
  in
  Format.fprintf ppf "@[<v>%s [%s] %s@,band: %s (%sxx)@]" i.code
    (severity_name i.severity) i.title band_desc
    (String.sub i.code 0 3);
  (match i.rationale with
   | Some r ->
     Format.fprintf ppf "@,@[<v2>rationale:@,@[%a@]@]"
       Format.pp_print_text r
   | None -> ());
  match i.example with
  | Some e -> Format.fprintf ppf "@,@[<v2>example:@,%s@]" e
  | None -> ()

let well_formed code =
  String.length code = 5
  && code.[0] = 'V'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub code 1 4)

let self_check () =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 64 in
  let prev = ref "" in
  List.iter
    (fun i ->
      if not (well_formed i.code) then
        problem "malformed code %S (expected V + four digits)" i.code;
      if Hashtbl.mem seen i.code then problem "duplicate code %s" i.code;
      Hashtbl.replace seen i.code ();
      if well_formed i.code then begin
        let band = String.sub i.code 0 3 in
        if not (List.mem_assoc band bands) then
          problem "code %s is outside every reserved band" i.code
      end;
      if !prev <> "" && compare i.code !prev <= 0 then
        problem "code %s out of order after %s" i.code !prev;
      prev := i.code;
      if i.title = "" then problem "code %s has an empty title" i.code)
    all;
  List.rev !problems
