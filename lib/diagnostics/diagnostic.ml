(* Spanned, coded diagnostics and their renderers. *)

type severity = Code.severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  span : Span.t;
  message : string;
  notes : string list;
  help : string option;
  fixes : Fix.t list;
}

let v ?(span = Span.none) ?(notes = []) ?help ?(fixes = []) ~severity ~code
    message =
  { code; severity; span; message; notes; help; fixes }

let errorf ?span ?notes ?help ?fixes ~code fmt =
  Printf.ksprintf
    (fun m -> v ?span ?notes ?help ?fixes ~severity:Error ~code m)
    fmt

let warningf ?span ?notes ?help ?fixes ~code fmt =
  Printf.ksprintf
    (fun m -> v ?span ?notes ?help ?fixes ~severity:Warning ~code m)
    fmt

let severity_name = function Error -> "error" | Warning -> "warning"

let is_error t = t.severity = Error

let count sev ts =
  List.length (List.filter (fun t -> t.severity = sev) ts)

let compare_source a b = Span.compare a.span b.span

let pp ppf t =
  if not (Span.is_none t.span) then Format.fprintf ppf "%a: " Span.pp t.span;
  Format.fprintf ppf "%s[%s]: %s" (severity_name t.severity) t.code t.message

let pp_rich ?source ppf t =
  pp ppf t;
  Format.pp_print_newline ppf ();
  let s = t.span in
  (match source with
   | Some lines
     when s.Span.line >= 1
          && s.Span.line <= Array.length lines
          && s.Span.col_start >= 1 ->
     let src = lines.(s.Span.line - 1) in
     let gutter = Printf.sprintf "%4d" s.Span.line in
     Format.fprintf ppf "%s | %s@." gutter src;
     let width = max 1 (s.Span.col_end - s.Span.col_start) in
     (* Clip the underline to the echoed line. *)
     let width =
       min width (max 1 (String.length src - s.Span.col_start + 2))
     in
     Format.fprintf ppf "     | %s%s@."
       (String.make (s.Span.col_start - 1) ' ')
       (String.make width '^')
   | _ -> ());
  List.iter (fun n -> Format.fprintf ppf "     = note: %s@." n) t.notes;
  (match t.help with
   | Some h -> Format.fprintf ppf "     = help: %s@." h
   | None -> ());
  List.iter
    (fun f ->
      if Fix.is_insertion f then
        Format.fprintf ppf "     = fix: insert %S@." f.Fix.replacement
      else Format.fprintf ppf "     = fix: replace with %S@." f.Fix.replacement)
    t.fixes

(* ----- JSON -------------------------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json buf t =
  Buffer.add_char buf '{';
  Buffer.add_string buf "\"severity\":";
  add_json_string buf (severity_name t.severity);
  Buffer.add_string buf ",\"code\":";
  add_json_string buf t.code;
  Buffer.add_string buf ",\"message\":";
  add_json_string buf t.message;
  (match t.span.Span.file with
   | Some f ->
     Buffer.add_string buf ",\"file\":";
     add_json_string buf f
   | None -> ());
  if t.span.Span.line > 0 then
    Buffer.add_string buf (Printf.sprintf ",\"line\":%d" t.span.Span.line);
  if t.span.Span.col_start > 0 then begin
    Buffer.add_string buf (Printf.sprintf ",\"col\":%d" t.span.Span.col_start);
    Buffer.add_string buf
      (Printf.sprintf ",\"end_col\":%d" t.span.Span.col_end)
  end;
  if t.notes <> [] then begin
    Buffer.add_string buf ",\"notes\":[";
    List.iteri
      (fun i n ->
        if i > 0 then Buffer.add_char buf ',';
        add_json_string buf n)
      t.notes;
    Buffer.add_char buf ']'
  end;
  (match t.help with
   | Some h ->
     Buffer.add_string buf ",\"help\":";
     add_json_string buf h
   | None -> ());
  if t.fixes <> [] then begin
    Buffer.add_string buf ",\"fixes\":[";
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        let s = f.Fix.span in
        Buffer.add_string buf
          (Printf.sprintf "{\"line\":%d,\"col\":%d,\"end_col\":%d" s.Span.line
             s.Span.col_start s.Span.col_end);
        if Fix.is_multiline f then
          Buffer.add_string buf
            (Printf.sprintf ",\"end_line\":%d" f.Fix.line_end);
        Buffer.add_string buf ",\"replacement\":";
        add_json_string buf f.Fix.replacement;
        Buffer.add_char buf '}')
      t.fixes;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}'

let json_of_list ts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"errors\":%d,\"warnings\":%d,\"diagnostics\":["
       (count Error ts) (count Warning ts));
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf ',';
      to_json buf t)
    ts;
  Buffer.add_string buf "]}";
  Buffer.contents buf
