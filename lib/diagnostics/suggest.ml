(* "Did you mean ...?" candidate selection for typo diagnostics. *)

let distance a b =
  let la = String.length a and lb = String.length b in
  if abs (la - lb) > 2 then 3
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <-
          min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let nearest ~candidates s =
  let s = String.lowercase_ascii s in
  let best =
    List.fold_left
      (fun acc c ->
        let d = distance s (String.lowercase_ascii c) in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ when d <= 2 -> Some (c, d)
        | _ -> acc)
      None candidates
  in
  Option.map fst best
