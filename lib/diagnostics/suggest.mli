(** "Did you mean ...?" candidate selection for typo diagnostics. *)

val distance : string -> string -> int
(** Levenshtein edit distance, capped: returns 3 as soon as the
    distance is known to exceed 2 (the suggestion threshold). *)

val nearest : candidates:string list -> string -> string option
(** The candidate closest to [s] (case-insensitively) within edit
    distance 2; [None] when nothing is close enough.  Ties keep the
    earliest candidate, so put canonical spellings first. *)
