(** The [vdram serve] daemon: a persistent evaluation service over one
    hot engine.

    One long-running process holds a warmed {!Vdram_engine.Engine}
    (optionally preloaded from the persistent store) and answers
    eval / sensitivity / corners / sweep requests over line-delimited
    JSON on a Unix or TCP socket ([doc/SERVE.md] specifies the wire
    protocol).  The design constraints, in order:

    - {e fault isolation}: every request runs under its own
      {!Vdram_engine.Supervise} supervisor — a poisoned configuration,
      an injected fault or a deadline overrun becomes a structured
      error frame classified exactly like the batch CLI classifies
      failures; it never kills the daemon or other requests.
    - {e exactly one terminal frame} per accepted request — [ok],
      [error] or [aborted] — even across drain.
    - {e coalescing}: concurrent requests with equal work
      fingerprints share one computation ({!Coalesce}).
    - {e admission control}: at most [max_inflight] computations run
      at once; excess requests are rejected immediately with an
      [overloaded] error carrying [retry_after_ms] (ping and stats
      bypass admission).  The listen [backlog] bounds the accept
      queue; beyond [max_clients] connections are turned away.
    - {e bit identity}: the [text] of a clean response equals the
      stdout of the one-shot CLI for the same request ({!Render}).

    Responses are written by the connection's own thread (and, during
    drain, possibly by the drain thread) under a per-connection write
    mutex; worker parallelism comes from the engine's domain pool, not
    from the connection threads. *)

type listener =
  | Unix_path of string  (** Unix-domain stream socket at this path *)
  | Tcp of string * int  (** host/address and port; port 0 auto-picks *)

type config = {
  listener : listener;
  max_clients : int;      (** concurrent connections; excess refused *)
  max_inflight : int;     (** concurrent computations; excess overloaded *)
  max_frame_bytes : int;  (** longer request lines are bad frames *)
  backlog : int;          (** listen(2) accept-queue bound *)
  drain_grace : float;
      (** seconds drain waits for in-flight requests before
          force-aborting them *)
  retry_after_ms : int;   (** hint attached to [overloaded] rejections *)
}

val default_config : listener -> config
(** 64 clients, 8 in flight, 1 MiB frames, backlog 64, 5 s grace,
    200 ms retry hint. *)

type t

val create :
  ?faults:Vdram_engine.Faults.plan ->
  engine:Vdram_engine.Engine.t ->
  config ->
  (t, string) result
(** Bind the listener and prepare the daemon (SIGPIPE is ignored
    process-wide; a stale Unix socket left by a dead daemon is
    unlinked, a live one is an error).  [faults] overrides the
    [VDRAM_FAULTS] plan applied to every request's supervisor; when
    omitted the environment plan is resolved here, once — a malformed
    [VDRAM_FAULTS] fails startup instead of every request. *)

val serve : t -> unit
(** Accept and serve until {!drain}, then finish: stop accepting,
    wait up to [drain_grace] for in-flight requests, force an
    [aborted] terminal frame on any survivor, flush the engine's
    store, close and (for Unix sockets) unlink the listener.  Returns
    normally — the caller decides the exit code. *)

val drain : t -> unit
(** Flip the drain flag (signal-handler safe; idempotent).  {!serve}
    notices within its accept-poll interval. *)

val draining : t -> bool

val address : t -> Unix.sockaddr
(** The bound address — for [Tcp (_, 0)] this carries the actual
    port. *)

val stats_json : t -> Json.t
(** The same object a [stats] request returns: engine cache counters,
    store I/O, request/coalescing/admission counters, failure classes,
    in-flight depth, drain flag, uptime. *)

val coalesce_counters : t -> int * int
(** [(led, shared)] — exposed for tests and the smoke driver. *)
