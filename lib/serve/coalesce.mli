(** Single-flight request coalescing.

    An in-flight table keyed by work fingerprint: the first caller of
    a key becomes the {e leader} and runs the computation; callers
    arriving while it is still running become {e followers} and block
    until the leader publishes, then share its result (or re-raise its
    exception).  The entry is removed on publication, so a key that
    arrives after completion computes afresh — coalescing is about
    concurrent duplicates, not caching (the engine's caches already
    make sequential duplicates cheap). *)

type 'a t

val create : unit -> 'a t

val run : 'a t -> key:string -> (unit -> 'a) -> [ `Led of 'a | `Shared of 'a ]
(** Join or lead the computation for [key].  [`Led v] — this caller
    ran [f]; [`Shared v] — another in-flight caller's result was
    shared.  If the leader's [f] raises, every caller of that flight
    (leader and followers alike) re-raises the same exception.

    Followers increment the shared counter {e before} blocking, so a
    leader can observe how many callers have joined its flight while
    it is still computing (the deterministic coalescing tests hang off
    this ordering). *)

val counters : 'a t -> int * int
(** [(led, shared)] — computations led and results shared since
    {!create}. *)
