(** Request/response schema of the serve protocol.

    One request per line, one JSON object per frame; see
    [doc/SERVE.md] for the wire-level description.  This module is
    pure: it decodes frames into typed requests, resolves the embedded
    configuration/pattern the same way the one-shot CLI does (that
    equivalence is what makes serve responses bit-identical to CLI
    output), and fingerprints the work a request describes so the
    server can coalesce identical in-flight requests. *)

(** How a request names the device: an inline [.dram] source, or the
    commodity-device knobs of the CLI ([--node], [--density-mbits],
    [--io-width], [--datarate]). *)
type config_spec = {
  source : string option;        (** inline description-language text *)
  node : string option;          (** e.g. ["65nm"]; default 65 nm *)
  density_mbits : float option;
  io_width : int option;
  datarate : string option;      (** e.g. ["1.6Gbps"] *)
}

type kind =
  | Ping
  | Stats
  | Eval of { spec : config_spec; pattern : string option }
      (** the [vdram power] report *)
  | Sensitivity of {
      spec : config_spec;
      pattern : string option;
      top : int;
      variation : float option;
    }
  | Corners of {
      spec : config_spec;
      pattern : string option;
      samples : int;
      spread : float;
    }
  | Sweep of {
      spec : config_spec;
      pattern : string option;
      lens : string;
      factors : float list;  (** multiplicative factors of nominal *)
    }

type request = {
  id : Json.t;
      (** echoed verbatim on every response frame; [Null] if absent *)
  kind : kind;
  deadline : float option;
      (** per-item seconds, routed into the supervision policy *)
}

val decode : Json.t -> (request, Json.t * string) result
(** Decode one frame.  [Error (id, message)] carries whatever [id] the
    frame did contain so the rejection can still be correlated. *)

val work_key : request -> string option
(** Fingerprint of the work the request describes — everything except
    [id] — or [None] for [Ping]/[Stats] (never coalesced).  Two
    in-flight requests with equal keys may share one computation. *)

val resolve_config :
  config_spec ->
  (Vdram_core.Config.t * Vdram_core.Pattern.t option, string) result
(** Build the device exactly as the CLI's config loading does: inline
    [source] through the DSL elaborator (yielding its stored pattern,
    if any), otherwise the commodity device at the requested node. *)

val resolve_pattern :
  Vdram_core.Config.t ->
  Vdram_core.Pattern.t option ->
  string option ->
  (Vdram_core.Pattern.t, string) result
(** CLI pattern precedence: an explicit loop string, else the
    description's stored pattern, else the Idd7-like mixed default. *)
