(* The serve daemon.  Threading model: the caller's thread runs the
   accept loop; each connection gets a systhread that reads frames and
   handles requests sequentially; heavy lifting happens on the
   engine's domain pool via the per-request supervisor, so connection
   threads spend their time blocked in [select]/[Condition.wait] and
   the runtime lock is not a throughput concern. *)

module Engine = Vdram_engine.Engine
module Store = Vdram_engine.Store
module Supervise = Vdram_engine.Supervise
module Faults = Vdram_engine.Faults
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Sensitivity = Vdram_analysis.Sensitivity
module Corners = Vdram_analysis.Corners
module Sweep = Vdram_analysis.Sweep
module Lenses = Vdram_analysis.Lenses

type listener = Unix_path of string | Tcp of string * int

type config = {
  listener : listener;
  max_clients : int;
  max_inflight : int;
  max_frame_bytes : int;
  backlog : int;
  drain_grace : float;
  retry_after_ms : int;
}

let default_config listener =
  {
    listener;
    max_clients = 64;
    max_inflight = 8;
    max_frame_bytes = 1 lsl 20;
    backlog = 64;
    drain_grace = 5.0;
    retry_after_ms = 200;
  }

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  mutable alive : bool;
}

type pending = {
  p_seq : int;
  p_conn : conn;
  p_id : Json.t;
  p_terminal : bool Atomic.t;
}

type t = {
  cfg : config;
  engine : Engine.t;
  plan : Faults.plan option;
  lsock : Unix.file_descr;
  coalesce : outcome Coalesce.t;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  clients : int Atomic.t;
  started : float;
  c_conns : int Atomic.t;
  c_requests : int Atomic.t;
  c_completed : int Atomic.t;
  c_failed : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_bad_frames : int Atomic.t;
  c_item_failures : int Atomic.t;
  c_injected : int Atomic.t;
  completed_since_flush : int Atomic.t;
  mu : Mutex.t;  (* guards [by_class], [registry], [next_seq] *)
  by_class : (string, int) Hashtbl.t;
  registry : (int, pending) Hashtbl.t;
  mutable next_seq : int;
}

(* What one request computes: streamed part payloads (sweeps) plus the
   terminal payload, both without the [id] member — every consumer of
   a coalesced flight stamps its own id. *)
and outcome = {
  parts : (string * Json.t) list list;
  status : string;  (* "ok" | "error" *)
  terminal : (string * Json.t) list;  (* includes the status member *)
}

let jint n = Json.Num (float_of_int n)
let jstr s = Json.Str s

(* ----- writing ----------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send conn json =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Json.to_string json ^ "\n") with
        | Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)

let frame id payload = Json.Obj (("id", id) :: payload)

let error_payload ?(extra = []) ~injected cls msg =
  ("status", jstr "error") :: ("class", jstr cls)
  :: ("injected", Json.Bool injected) :: ("message", jstr msg) :: extra

let ok_payload ~op ~failures ~data text =
  [
    ("status", jstr "ok"); ("op", jstr op); ("text", jstr text);
    ("data", data); ("failures", jint failures);
  ]

let ok_outcome ?(parts = []) ~op ~failures ~data text =
  { parts; status = "ok"; terminal = ok_payload ~op ~failures ~data text }

let err_outcome ?(parts = []) ?(injected = false) cls msg =
  { parts; status = "error"; terminal = error_payload ~injected cls msg }

(* ----- request registry (drain needs to reach in-flight requests) -- *)

let register t conn id =
  Mutex.lock t.mu;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = { p_seq = seq; p_conn = conn; p_id = id; p_terminal = Atomic.make false } in
  Hashtbl.replace t.registry seq p;
  Mutex.unlock t.mu;
  p

let unregister t p =
  Mutex.lock t.mu;
  Hashtbl.remove t.registry p.p_seq;
  Mutex.unlock t.mu

(* Exactly one terminal frame per request: whoever wins the CAS —
   the computing thread or the drain path — writes it. *)
let send_terminal p payload =
  if Atomic.compare_and_set p.p_terminal false true then begin
    send p.p_conn (frame p.p_id payload);
    true
  end
  else false

let stream_part p payload =
  if not (Atomic.get p.p_terminal) then send p.p_conn (frame p.p_id payload)

(* ----- failure accounting ------------------------------------------ *)

let supervisor_for t deadline =
  let policy = { Supervise.keep_going = true; max_failures = None; deadline } in
  Supervise.create ~policy ?faults:t.plan ()

let merge_failures t sup =
  let c = Supervise.counters sup in
  if c.Supervise.failures > 0 then begin
    ignore (Atomic.fetch_and_add t.c_item_failures c.Supervise.failures : int);
    ignore (Atomic.fetch_and_add t.c_injected c.Supervise.injected : int);
    Mutex.lock t.mu;
    List.iter
      (fun (stage, n) ->
        let cur = Option.value (Hashtbl.find_opt t.by_class stage) ~default:0 in
        Hashtbl.replace t.by_class stage (cur + n))
      c.Supervise.by_stage;
    Mutex.unlock t.mu
  end;
  c.Supervise.failures

(* ----- computing one request --------------------------------------- *)

let with_device spec pattern k =
  match Protocol.resolve_config spec with
  | Error e -> err_outcome "bad_request" e
  | Ok (config, stored) ->
    (match Protocol.resolve_pattern config stored pattern with
     | Error e -> err_outcome "bad_request" e
     | Ok p -> k config p)

let chunk_list n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let sample_json (s : Sweep.sample) =
  Json.Obj
    [
      ("value", Json.Num s.Sweep.value);
      ("power_w", Json.Num s.Sweep.power);
      ("current_a", Json.Num s.Sweep.current);
      ( "energy_per_bit_j",
        match s.Sweep.energy_per_bit with
        | Some e -> Json.Num e
        | None -> Json.Null );
    ]

let compute t (req : Protocol.request) ~on_part =
  try
    match req.Protocol.kind with
    | Protocol.Ping | Protocol.Stats ->
      (* Handled before admission; unreachable here. *)
      err_outcome "driver" "internal: control op reached compute"
    | Protocol.Eval { spec; pattern } ->
      with_device spec pattern (fun config p ->
          let sup = supervisor_for t req.Protocol.deadline in
          let outcomes =
            Supervise.map sup t.engine
              ~check:(fun ((_ : string), r) -> Supervise.finite_report r)
              (fun () ->
                let text =
                  Render.to_string
                    (fun ppf () ->
                      Render.power ~eval:(Engine.eval t.engine) ppf config p)
                    ()
                in
                (text, Engine.eval t.engine config p))
              [ () ]
          in
          let failures = merge_failures t sup in
          match outcomes with
          | [ Supervise.Done (text, r) ] ->
            ok_outcome ~op:"eval" ~failures
              ~data:
                (Json.Obj
                   [
                     ("power_w", Json.Num r.Report.power);
                     ("current_a", Json.Num r.Report.current);
                     ( "energy_per_bit_j",
                       match r.Report.energy_per_bit with
                       | Some e -> Json.Num e
                       | None -> Json.Null );
                   ])
              text
          | [ Supervise.Failed f ] ->
            err_outcome ~injected:f.Supervise.injected f.Supervise.stage
              f.Supervise.message
          | _ -> err_outcome "driver" "evaluation was skipped")
    | Protocol.Sensitivity { spec; pattern; top; variation } ->
      with_device spec pattern (fun config p ->
          let sup = supervisor_for t req.Protocol.deadline in
          match
            Sensitivity.run ~engine:t.engine ~supervisor:sup ?variation
              ~pattern:p config
          with
          | s ->
            let failures = merge_failures t sup in
            ok_outcome ~op:"sensitivity" ~failures
              ~data:
                (Json.Obj
                   [
                     ( "nominal_power_w",
                       Json.Num s.Sensitivity.nominal_power );
                     ("entries", jint (List.length s.Sensitivity.entries));
                   ])
              (Render.to_string (Render.sensitivity ~top) s)
          | exception e ->
            ignore (merge_failures t sup : int);
            let stage, injected, msg = Supervise.classify e in
            err_outcome ~injected stage msg)
    | Protocol.Corners { spec; pattern; samples; spread } ->
      with_device spec pattern (fun config p ->
          let sup = supervisor_for t req.Protocol.deadline in
          match
            Corners.run ~engine:t.engine ~supervisor:sup ~samples ~spread
              ~pattern:p config
          with
          | d ->
            let failures = merge_failures t sup in
            ok_outcome ~op:"corners" ~failures
              ~data:
                (Json.Obj
                   [
                     ("samples", jint d.Corners.samples);
                     ("failed", jint d.Corners.failed);
                     ("mean_a", Json.Num d.Corners.mean);
                     ("std_a", Json.Num d.Corners.std);
                     ("min_a", Json.Num d.Corners.min);
                     ("max_a", Json.Num d.Corners.max);
                     ("p05_a", Json.Num d.Corners.p05);
                     ("p95_a", Json.Num d.Corners.p95);
                   ])
              (Render.to_string
                 (Render.corners ~config_name:config.Config.name
                    ~pattern_name:p.Pattern.name)
                 d)
          | exception e ->
            ignore (merge_failures t sup : int);
            let stage, injected, msg = Supervise.classify e in
            err_outcome ~injected stage msg)
    | Protocol.Sweep { spec; pattern; lens; factors } ->
      with_device spec pattern (fun config p ->
          match Lenses.find lens with
          | None -> err_outcome "bad_request" (Printf.sprintf "unknown lens %S" lens)
          | Some l ->
            let sup = supervisor_for t req.Protocol.deadline in
            (match
               let parts = ref [] in
               let samples = ref [] in
               let results = ref [] in
               List.iteri
                 (fun seq fs ->
                   let sw =
                     Sweep.run_relative ~engine:t.engine ~supervisor:sup
                       ~lens:l ~factors:fs ~pattern:p config
                   in
                   results := sw :: !results;
                   let payload =
                     [
                       ("status", jstr "part"); ("seq", jint seq);
                       ( "samples",
                         Json.List (List.map sample_json sw.Sweep.samples) );
                     ]
                   in
                   parts := payload :: !parts;
                   on_part payload;
                   samples := !samples @ sw.Sweep.samples)
                 (chunk_list 8 factors);
               let first = List.hd (List.rev !results) in
               ({ first with Sweep.samples = !samples }, List.rev !parts)
             with
             | full, parts ->
               let failures = merge_failures t sup in
               ok_outcome ~parts ~op:"sweep" ~failures
                 ~data:
                   (Json.Obj
                      [
                        ("lens", jstr l.Lenses.name);
                        ("points", jint (List.length full.Sweep.samples));
                        ("parts", jint (List.length parts));
                      ])
                 (Render.to_string Render.sweep full)
             | exception e ->
               ignore (merge_failures t sup : int);
               let stage, injected, msg = Supervise.classify e in
               err_outcome ~injected stage msg))
  with e ->
    (* compute must be total: an escaped exception would poison the
       coalesced flight and skip the terminal frame. *)
    let stage, injected, msg = Supervise.classify e in
    err_outcome ~injected stage msg

(* ----- stats -------------------------------------------------------- *)

let stage_json (s : Engine.stage_stats) =
  Json.Obj
    [
      ("hits", jint s.Engine.hits);
      ("misses", jint s.Engine.misses);
      ("time_ns", jint s.Engine.time_ns);
    ]

let stats_json t =
  let s = Engine.stats t.engine in
  let led, shared = Coalesce.counters t.coalesce in
  let by_class =
    Mutex.lock t.mu;
    let l = Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.by_class [] in
    Mutex.unlock t.mu;
    List.sort (fun (a, _) (b, _) -> compare a b) l
  in
  Json.Obj
    [
      ( "engine",
        Json.Obj
          [
            ("jobs", jint (Engine.jobs t.engine));
            ("geometry", stage_json s.Engine.geometry_stats);
            ("extraction", stage_json s.Engine.extraction_stats);
            ("mix", stage_json s.Engine.mix_stats);
          ] );
      ( "store",
        match Engine.store t.engine with
        | None -> Json.Null
        | Some st ->
          let io = Store.stats st in
          let pe, pm = Engine.preloaded t.engine in
          Json.Obj
            [
              ("dir", jstr (Store.dir st));
              ("preloaded_extraction", jint pe);
              ("preloaded_mix", jint pm);
              ("dirty", Json.Bool (Engine.store_dirty t.engine));
              ("retries", jint io.Store.retries);
              ("discarded", jint io.Store.discarded);
              ("quarantined", jint io.Store.quarantined);
              ("quarantined_bytes", jint io.Store.quarantined_bytes);
              ("evicted", jint io.Store.evicted);
            ] );
      ( "requests",
        Json.Obj
          [
            ("connections", jint (Atomic.get t.c_conns));
            ("received", jint (Atomic.get t.c_requests));
            ("completed", jint (Atomic.get t.c_completed));
            ("failed", jint (Atomic.get t.c_failed));
            ("overloaded", jint (Atomic.get t.c_overloaded));
            ("bad_frames", jint (Atomic.get t.c_bad_frames));
            ("coalesced_led", jint led);
            ("coalesced_shared", jint shared);
            ("inflight", jint (Atomic.get t.inflight));
          ] );
      ( "failures",
        Json.Obj
          [
            ("items", jint (Atomic.get t.c_item_failures));
            ("injected", jint (Atomic.get t.c_injected));
            ( "by_class",
              Json.Obj (List.map (fun (k, n) -> (k, jint n)) by_class) );
          ] );
      ("draining", Json.Bool (Atomic.get t.draining));
      ("uptime_s", Json.Num (Unix.gettimeofday () -. t.started));
    ]

(* ----- request handling -------------------------------------------- *)

let maybe_flush t =
  let n = Atomic.fetch_and_add t.completed_since_flush 1 + 1 in
  if n >= 32 && Engine.store_dirty t.engine then begin
    Atomic.set t.completed_since_flush 0;
    Engine.flush_store t.engine
  end

let handle_request t conn (req : Protocol.request) =
  ignore (Atomic.fetch_and_add t.c_requests 1 : int);
  match req.Protocol.kind with
  | Protocol.Ping ->
    send conn (frame req.Protocol.id [ ("status", jstr "ok"); ("op", jstr "ping") ])
  | Protocol.Stats ->
    send conn
      (frame req.Protocol.id
         [ ("status", jstr "ok"); ("op", jstr "stats"); ("stats", stats_json t) ])
  | _ ->
    if Atomic.get t.draining then begin
      ignore (Atomic.fetch_and_add t.c_failed 1 : int);
      send conn
        (frame req.Protocol.id
           (error_payload ~injected:false "aborted" "server is draining"))
    end
    else begin
      let slot = Atomic.fetch_and_add t.inflight 1 in
      if slot >= t.cfg.max_inflight then begin
        ignore (Atomic.fetch_and_add t.inflight (-1) : int);
        ignore (Atomic.fetch_and_add t.c_overloaded 1 : int);
        send conn
          (frame req.Protocol.id
             (error_payload ~injected:false "overloaded"
                "too many requests in flight"
                ~extra:[ ("retry_after_ms", jint t.cfg.retry_after_ms) ]))
      end
      else begin
        let p = register t conn req.Protocol.id in
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            unregister t p;
            ignore (Atomic.fetch_and_add t.inflight (-1) : int))
          (fun () ->
            let coalesced, outcome =
              match Protocol.work_key req with
              | None -> (false, compute t req ~on_part:(stream_part p))
              | Some key ->
                (match
                   Coalesce.run t.coalesce ~key (fun () ->
                       compute t req ~on_part:(stream_part p))
                 with
                 | `Led o -> (false, o)
                 | `Shared o -> (true, o)
                 | exception e ->
                   let stage, injected, msg = Supervise.classify e in
                   (false, err_outcome ~injected stage msg))
            in
            (* Followers replay the leader's stream under their own id. *)
            if coalesced then List.iter (stream_part p) outcome.parts;
            let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            ignore
              (send_terminal p
                 (outcome.terminal
                 @ [
                     ("coalesced", Json.Bool coalesced);
                     ("elapsed_ms", Json.Num elapsed_ms);
                   ])
                : bool);
            if outcome.status = "ok" then
              ignore (Atomic.fetch_and_add t.c_completed 1 : int)
            else ignore (Atomic.fetch_and_add t.c_failed 1 : int);
            maybe_flush t)
      end
    end

let handle_line t conn line =
  match Json.parse line with
  | Error e ->
    ignore (Atomic.fetch_and_add t.c_bad_frames 1 : int);
    send conn (frame Json.Null (error_payload ~injected:false "bad_frame" e))
  | Ok j ->
    (match Protocol.decode j with
     | Error (id, msg) ->
       ignore (Atomic.fetch_and_add t.c_requests 1 : int);
       ignore (Atomic.fetch_and_add t.c_failed 1 : int);
       send conn (frame id (error_payload ~injected:false "bad_request" msg))
     | Ok req -> handle_request t conn req)

(* ----- connection loop --------------------------------------------- *)

let take_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line =
      if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    Some line

let handle_conn t conn =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let discarding = ref false in
  let closed = ref false in
  let overflow () =
    if not !discarding then begin
      ignore (Atomic.fetch_and_add t.c_bad_frames 1 : int);
      send conn
        (frame Json.Null
           (error_payload ~injected:false "bad_frame"
              (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame_bytes)));
      discarding := true
    end;
    Buffer.clear buf
  in
  let process_lines () =
    let continue = ref true in
    while !continue do
      match take_line buf with
      | None ->
        if Buffer.length buf > t.cfg.max_frame_bytes then overflow ();
        continue := false
      | Some line ->
        (* In discard mode this line is the tail of an oversized frame
           already rejected — drop it and resynchronise. *)
        if !discarding then discarding := false
        else if String.trim line = "" then ()
        else handle_line t conn line
    done
  in
  while not !closed do
    process_lines ();
    if Atomic.get t.draining then closed := true
    else
      match Unix.select [ conn.fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ ->
        (match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error _ -> closed := true
         | 0 ->
           (* EOF.  A half-closed socket (client shut down its write
              side) already got responses to every complete frame; a
              partial trailing frame is reported, not ignored. *)
           if Buffer.length buf > 0 && not !discarding then begin
             ignore (Atomic.fetch_and_add t.c_bad_frames 1 : int);
             send conn
               (frame Json.Null
                  (error_payload ~injected:false "bad_frame"
                     "truncated frame (missing newline before EOF)"))
           end;
           closed := true
         | n -> Buffer.add_subbytes buf chunk 0 n)
  done

(* ----- lifecycle ---------------------------------------------------- *)

let bind_listener cfg =
  try
    match cfg.listener with
    | Unix_path path ->
      (match Unix.stat path with
       | { Unix.st_kind = Unix.S_SOCK; _ } ->
         (* Stale socket from a dead daemon, or a live one?  Probe. *)
         let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         let live =
           try
             Unix.connect probe (Unix.ADDR_UNIX path);
             true
           with Unix.Unix_error _ -> false
         in
         (try Unix.close probe with Unix.Unix_error _ -> ());
         if live then failwith (path ^ ": a daemon is already listening")
         else Unix.unlink path
       | _ -> failwith (path ^ ": exists and is not a socket")
       | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let s = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      Unix.listen s cfg.backlog;
      Ok s
    | Tcp (host, port) ->
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ ->
          (match Unix.gethostbyname host with
           | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
             failwith (host ^ ": cannot resolve")
           | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (addr, port));
      Unix.listen s cfg.backlog;
      Ok s
  with
  | Failure m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

let create ?faults ~engine cfg =
  let plan =
    match faults with
    | Some p -> Ok (Some p)
    | None ->
      (match Faults.of_env () with
       | Ok p -> Ok p
       | Error e -> Error (Printf.sprintf "VDRAM_FAULTS: %s" e))
  in
  match plan with
  | Error e -> Error e
  | Ok plan ->
    (* A dead client must be an EPIPE on our write, not a fatal
       signal. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    (match bind_listener cfg with
     | Error e -> Error e
     | Ok lsock ->
       Ok
         {
           cfg;
           engine;
           plan;
           lsock;
           coalesce = Coalesce.create ();
           draining = Atomic.make false;
           inflight = Atomic.make 0;
           clients = Atomic.make 0;
           started = Unix.gettimeofday ();
           c_conns = Atomic.make 0;
           c_requests = Atomic.make 0;
           c_completed = Atomic.make 0;
           c_failed = Atomic.make 0;
           c_overloaded = Atomic.make 0;
           c_bad_frames = Atomic.make 0;
           c_item_failures = Atomic.make 0;
           c_injected = Atomic.make 0;
           completed_since_flush = Atomic.make 0;
           mu = Mutex.create ();
           by_class = Hashtbl.create 8;
           registry = Hashtbl.create 16;
           next_seq = 0;
         })

let drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining
let address t = Unix.getsockname t.lsock
let coalesce_counters t = Coalesce.counters t.coalesce

let drain_finish t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_grace in
  while Atomic.get t.inflight > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  (* Whatever is still computing gets its terminal frame now; if its
     thread finishes later, the CAS makes it lose quietly. *)
  Mutex.lock t.mu;
  let leftovers = Hashtbl.fold (fun _ p acc -> p :: acc) t.registry [] in
  Mutex.unlock t.mu;
  List.iter
    (fun p ->
      if
        send_terminal p
          (error_payload ~injected:false "aborted"
             "server drained before the request finished")
      then ignore (Atomic.fetch_and_add t.c_failed 1 : int))
    leftovers;
  (* Let connection threads notice the drain flag and close. *)
  let conn_deadline = Unix.gettimeofday () +. 1.0 in
  while Atomic.get t.clients > 0 && Unix.gettimeofday () < conn_deadline do
    Thread.delay 0.05
  done;
  if Engine.store_dirty t.engine then Engine.flush_store t.engine;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  match t.cfg.listener with
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let serve t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.lsock ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ ->
        (match Unix.accept ~cloexec:true t.lsock with
         | exception
             Unix.Unix_error
               ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                 | Unix.EWOULDBLOCK ),
                 _,
                 _ ) ->
           ()
         | fd, _ ->
           ignore (Atomic.fetch_and_add t.c_conns 1 : int);
           let conn = { fd; wmu = Mutex.create (); alive = true } in
           if Atomic.get t.clients >= t.cfg.max_clients then begin
             ignore (Atomic.fetch_and_add t.c_overloaded 1 : int);
             send conn
               (frame Json.Null
                  (error_payload ~injected:false "overloaded"
                     "too many connections"
                     ~extra:
                       [ ("retry_after_ms", jint t.cfg.retry_after_ms) ]));
             (try Unix.close fd with Unix.Unix_error _ -> ())
           end
           else begin
             ignore (Atomic.fetch_and_add t.clients 1 : int);
             ignore
               (Thread.create
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        conn.alive <- false;
                        (try Unix.close fd with Unix.Unix_error _ -> ());
                        ignore (Atomic.fetch_and_add t.clients (-1) : int))
                      (fun () ->
                        try handle_conn t conn with
                        | Unix.Unix_error _ | Sys_error _ -> ()))
                  ()
                 : Thread.t)
           end);
        loop ()
  in
  loop ();
  drain_finish t
