let install handler =
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let os_number s =
  if s = Sys.sigint then 2
  else if s = Sys.sigterm then 15
  else if s = Sys.sighup then 1
  else 0
