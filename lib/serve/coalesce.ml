(* Single-flight coalescing: one mutex over the in-flight table, one
   condition per entry.  Leaders compute outside the lock; followers
   wait on the entry's condition (Condition.wait releases the table
   mutex, so a waiting follower never blocks other keys). *)

type 'a outcome = Value of 'a | Raised of exn

type 'a entry = { mutable result : 'a outcome option; cond : Condition.t }

type 'a t = {
  mu : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  led : int Atomic.t;
  shared : int Atomic.t;
}

let create () =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 16;
    led = Atomic.make 0;
    shared = Atomic.make 0;
  }

let run t ~key f =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    (* Counter first: the leader may poll it while computing. *)
    Atomic.incr t.shared;
    let rec wait () =
      match entry.result with
      | Some o -> o
      | None ->
        Condition.wait entry.cond t.mu;
        wait ()
    in
    let o = wait () in
    Mutex.unlock t.mu;
    (match o with Value v -> `Shared v | Raised e -> raise e)
  | None ->
    let entry = { result = None; cond = Condition.create () } in
    Hashtbl.replace t.table key entry;
    Atomic.incr t.led;
    Mutex.unlock t.mu;
    let o = try Value (f ()) with e -> Raised e in
    Mutex.lock t.mu;
    entry.result <- Some o;
    Condition.broadcast entry.cond;
    (* Late arrivals start a fresh flight; waiters keep their entry
       reference. *)
    Hashtbl.remove t.table key;
    Mutex.unlock t.mu;
    (match o with Value v -> `Led v | Raised e -> raise e)

let counters t = (Atomic.get t.led, Atomic.get t.shared)
