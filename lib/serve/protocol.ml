(* Typed requests over the line-delimited JSON protocol; decoding and
   device resolution shared with (and equivalent to) the one-shot
   CLI. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Node = Vdram_tech.Node
module Quantity = Vdram_units.Quantity

type config_spec = {
  source : string option;
  node : string option;
  density_mbits : float option;
  io_width : int option;
  datarate : string option;
}

type kind =
  | Ping
  | Stats
  | Eval of { spec : config_spec; pattern : string option }
  | Sensitivity of {
      spec : config_spec;
      pattern : string option;
      top : int;
      variation : float option;
    }
  | Corners of {
      spec : config_spec;
      pattern : string option;
      samples : int;
      spread : float;
    }
  | Sweep of {
      spec : config_spec;
      pattern : string option;
      lens : string;
      factors : float list;
    }

type request = { id : Json.t; kind : kind; deadline : float option }

(* ----- decoding ---------------------------------------------------- *)

exception Bad of string

let badf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field j name conv =
  match Json.mem name j with
  | None -> None
  | Some Json.Null -> None
  | Some v ->
    (match conv v with
     | Some x -> Some x
     | None -> badf "field %S has the wrong type" name)

let spec_of j =
  match Json.mem "config" j with
  | None -> { source = None; node = None; density_mbits = None;
              io_width = None; datarate = None }
  | Some Json.Null -> { source = None; node = None; density_mbits = None;
                        io_width = None; datarate = None }
  | Some c ->
    if Json.obj c = None then badf "field \"config\" must be an object";
    {
      source = field c "source" Json.str;
      node = field c "node" Json.str;
      density_mbits = field c "density_mbits" Json.num;
      io_width = field c "io_width" Json.int_;
      datarate = field c "datarate" Json.str;
    }

let pattern_of j = field j "pattern" Json.str

let factors_of j =
  match Json.mem "factors" j with
  | None | Some Json.Null -> badf "sweep needs a \"factors\" array"
  | Some v ->
    (match Json.list_ v with
     | None -> badf "field \"factors\" must be an array of numbers"
     | Some items ->
       if items = [] then badf "field \"factors\" must not be empty";
       List.map
         (fun item ->
           match Json.num item with
           | Some x when Float.is_finite x -> x
           | _ -> badf "field \"factors\" must be an array of finite numbers")
         items)

let decode j =
  let id = Option.value (Json.mem "id" j) ~default:Json.Null in
  match
    (match Json.obj j with
     | None -> badf "frame must be a JSON object"
     | Some _ -> ());
    let op =
      match field j "op" Json.str with
      | Some op -> op
      | None -> badf "frame needs an \"op\" string"
    in
    let deadline =
      match field j "deadline" Json.num with
      | Some d when d <= 0.0 -> badf "field \"deadline\" must be positive"
      | d -> d
    in
    let kind =
      match op with
      | "ping" -> Ping
      | "stats" -> Stats
      | "eval" -> Eval { spec = spec_of j; pattern = pattern_of j }
      | "sensitivity" ->
        Sensitivity
          {
            spec = spec_of j;
            pattern = pattern_of j;
            top = Option.value (field j "top" Json.int_) ~default:15;
            variation = field j "variation" Json.num;
          }
      | "corners" ->
        Corners
          {
            spec = spec_of j;
            pattern = pattern_of j;
            samples =
              (match Option.value (field j "samples" Json.int_) ~default:200 with
               | n when n < 1 -> badf "field \"samples\" must be >= 1"
               | n when n > 1_000_000 -> badf "field \"samples\" too large"
               | n -> n);
            spread = Option.value (field j "spread" Json.num) ~default:0.10;
          }
      | "sweep" ->
        Sweep
          {
            spec = spec_of j;
            pattern = pattern_of j;
            lens =
              (match field j "lens" Json.str with
               | Some l -> l
               | None -> badf "sweep needs a \"lens\" string");
            factors = factors_of j;
          }
      | op -> badf "unknown op %S" op
    in
    { id; kind; deadline }
  with
  | req -> Ok req
  | exception Bad m -> Error (id, m)

(* ----- coalescing key ---------------------------------------------- *)

let work_key req =
  match req.kind with
  | Ping | Stats -> None
  | kind ->
    (* Everything but the id: two requests with equal keys ask for the
       same computation under the same failure semantics. *)
    Some
      (Vdram_engine.Fingerprint.hex
         (Vdram_engine.Fingerprint.of_value (kind, req.deadline)))

(* ----- device resolution (CLI-equivalent) --------------------------- *)

let parse_node s =
  match Quantity.parse_dim Quantity.Length s with
  | Ok metres -> Ok (Node.of_nm (metres *. 1e9))
  | Error _ ->
    (match float_of_string_opt s with
     | Some nm -> Ok (Node.of_nm nm)
     | None -> Error (Printf.sprintf "bad node %S" s))

let resolve_config spec =
  match spec.source with
  | Some src ->
    (match Vdram_dsl.Elaborate.load_string src with
     | Ok { Vdram_dsl.Elaborate.config; pattern; _ } -> Ok (config, pattern)
     | Error e ->
       Error (Format.asprintf "source: %a" Vdram_dsl.Parser.pp_error e))
  | None ->
    (match
       match spec.node with
       | None -> Ok Node.N65
       | Some s -> parse_node s
     with
     | Error e -> Error e
     | Ok node ->
       let datarate =
         match spec.datarate with
         | None -> None
         | Some s ->
           (match Quantity.parse_dim Quantity.Datarate s with
            | Ok v -> Some v
            | Error _ -> None)
       in
       let density_bits =
         Option.map (fun m -> m *. (2.0 ** 20.0)) spec.density_mbits
       in
       Ok
         ( Config.commodity ?density_bits ?io_width:spec.io_width ?datarate
             ~node (),
           None ))

let resolve_pattern config stored arg =
  match arg with
  | Some loop ->
    (match Pattern.parse ~name:"request pattern" loop with
     | Ok p -> Ok p
     | Error e -> Error e)
  | None ->
    Ok
      (match stored with
       | Some p -> p
       | None -> Pattern.idd7_mixed config.Config.spec)
