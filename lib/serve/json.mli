(** Minimal JSON for the line-delimited serve protocol.

    The daemon speaks one JSON object per line; this module is the
    whole of its JSON surface — a recursive-descent parser with a
    depth limit (a hostile frame cannot blow the stack) and a compact
    single-line printer (never emits a newline, so a printed value is
    always exactly one frame).  No dependency beyond the stdlib: the
    protocol must work in the bare container. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : ?max_depth:int -> string -> (t, string) result
(** Parse one complete JSON value; trailing garbage after the value is
    an error.  [max_depth] (default 64) bounds nesting.  Strings
    decode the standard escapes including [\uXXXX] (surrogate pairs
    re-encoded as UTF-8). *)

val to_string : t -> string
(** Compact rendering on a single line.  Integral floats print without
    a fractional part; non-finite numbers print as [null] (JSON has no
    spelling for them). *)

(** {1 Accessors}

    All return [None] on a type mismatch — protocol decoding treats a
    wrongly-typed field exactly like a missing one. *)

val mem : string -> t -> t option
(** Object member lookup; [None] on non-objects. *)

val str : t -> string option
val num : t -> float option

val int_ : t -> int option
(** [num] that also requires the value to be integral. *)

val bool_ : t -> bool option
val list_ : t -> t list option
val obj : t -> (string * t) list option
