(* Minimal JSON: recursive-descent parser with a depth limit, compact
   single-line printer.  See json.mli for the contract. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- printer ----------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    Buffer.add_string buf s
  end

let rec value_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> number_to buf x
  | Str s -> escape_to buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        value_to buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj ms ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        value_to buf v)
      ms;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  value_to buf v;
  Buffer.contents buf

(* ----- parser ------------------------------------------------------ *)

exception Bad of string

type state = { s : string; mutable pos : int; max_depth : int }

let error st fmt =
  Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at byte %d" m st.pos))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> error st "expected %C, found %C" c c'
  | None -> error st "expected %C, found end of input" c

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st "bad literal"

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.s.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> error st "bad hex digit %C in \\u escape" c
    in
    v := (!v lsl 4) lor d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | None -> error st "unterminated escape"
       | Some c ->
         st.pos <- st.pos + 1;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let u = hex4 st in
            if u >= 0xD800 && u <= 0xDBFF then begin
              (* High surrogate: a low surrogate must follow. *)
              if
                st.pos + 2 <= String.length st.s
                && st.s.[st.pos] = '\\'
                && st.s.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo < 0xDC00 || lo > 0xDFFF then
                  error st "bad low surrogate"
                else
                  add_utf8 buf
                    (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else error st "lone high surrogate"
            end
            else if u >= 0xDC00 && u <= 0xDFFF then error st "lone low surrogate"
            else add_utf8 buf u
          | c -> error st "bad escape \\%C" c));
      go ()
    | Some c when Char.code c < 0x20 -> error st "raw control character in string"
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let accept p =
    match peek st with
    | Some c when p c -> st.pos <- st.pos + 1; true
    | _ -> false
  in
  let digits () =
    let any = ref false in
    while accept (function '0' .. '9' -> true | _ -> false) do any := true done;
    !any
  in
  ignore (accept (fun c -> c = '-'));
  if not (digits ()) then error st "bad number";
  if accept (fun c -> c = '.') && not (digits ()) then error st "bad number";
  if accept (function 'e' | 'E' -> true | _ -> false) then begin
    ignore (accept (function '+' | '-' -> true | _ -> false));
    if not (digits ()) then error st "bad exponent"
  end;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> x
  | None -> error st "bad number %S" text

let rec parse_value st depth =
  if depth > st.max_depth then error st "nesting deeper than %d" st.max_depth;
  skip_ws st;
  match peek st with
  | None -> error st "empty input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin st.pos <- st.pos + 1; List [] end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value st (depth + 1) :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> error st "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin st.pos <- st.pos + 1; Obj [] end
    else begin
      let members = ref [] in
      let rec go () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        members := (k, v) :: !members;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> error st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !members)
    end
  | Some c -> error st "unexpected %C" c

let parse ?(max_depth = 64) s =
  let st = { s; pos = 0; max_depth } in
  match parse_value st 0 with
  | v ->
    skip_ws st;
    if st.pos < String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Bad m -> Error m

(* ----- accessors --------------------------------------------------- *)

let mem k = function Obj ms -> List.assoc_opt k ms | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num x -> Some x | _ -> None

let int_ = function
  | Num x when Float.is_integer x && Float.abs x <= 1e9 -> Some (int_of_float x)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let list_ = function List vs -> Some vs | _ -> None
let obj = function Obj ms -> Some ms | _ -> None
