(* Shared report rendering: the CLI prints through these to stdout,
   the daemon renders them to response strings.  Keep the format
   strings byte-for-byte stable — serve's bit-identity contract hangs
   off them. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Si = Vdram_units.Si

let power ~eval ppf config p =
  Format.fprintf ppf "%a@.@." Config.pp config;
  (match Vdram_core.Validate.check config with
   | [] -> ()
   | findings ->
     List.iter
       (fun f -> Format.fprintf ppf "%a@." Vdram_core.Validate.pp_finding f)
       findings;
     Format.fprintf ppf "@.");
  let spec = config.Config.spec in
  List.iter
    (fun pat ->
      let r = eval config pat in
      Format.fprintf ppf "%-12s %10s  %10s@." pat.Pattern.name
        (Si.format_eng ~unit_symbol:"W" r.Report.power)
        (Si.format_eng ~unit_symbol:"A" r.Report.current))
    [ Pattern.idle; Pattern.idd0 spec; Pattern.idd4r spec;
      Pattern.idd4w spec; Pattern.idd7 spec ];
  Format.fprintf ppf "@.%a@." Report.pp_full (eval config p)

let sensitivity ~top ppf (s : Vdram_analysis.Sensitivity.t) =
  Format.fprintf ppf "%s | %s | nominal %s@."
    s.Vdram_analysis.Sensitivity.config_name
    s.Vdram_analysis.Sensitivity.pattern_name
    (Si.format_eng ~unit_symbol:"W" s.Vdram_analysis.Sensitivity.nominal_power);
  List.iteri
    (fun i e ->
      if i < top then
        Format.fprintf ppf "%2d  %-46s %+7.2f%%@." (i + 1)
          e.Vdram_analysis.Sensitivity.lens_name
          e.Vdram_analysis.Sensitivity.span_percent)
    s.Vdram_analysis.Sensitivity.entries

let corners ~config_name ~pattern_name ppf d =
  Format.fprintf ppf "%s | %s@.%a@." config_name pattern_name
    Vdram_analysis.Corners.pp d

let sweep ppf s = Format.fprintf ppf "%a@." Vdram_analysis.Sweep.pp s

let to_string pp v =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
