(** The human-readable reports, factored out of the CLI.

    Both the one-shot commands and the serve daemon print through
    these functions, which is what makes a serve response byte-equal
    to the corresponding CLI stdout: same format strings, same
    formatter geometry, only the evaluation function differs — and
    {!Vdram_engine.Engine.eval} is contractually bit-identical to
    {!Vdram_core.Model.pattern_power}. *)

val power :
  eval:
    (Vdram_core.Config.t -> Vdram_core.Pattern.t -> Vdram_core.Report.t) ->
  Format.formatter ->
  Vdram_core.Config.t ->
  Vdram_core.Pattern.t ->
  unit
(** The [vdram power] report: configuration block, validation
    findings, the five-pattern current table, then the full report of
    the requested pattern.  [eval] is [Model.pattern_power] in the CLI
    and [Engine.eval engine] in the daemon. *)

val sensitivity :
  top:int -> Format.formatter -> Vdram_analysis.Sensitivity.t -> unit
(** The [vdram sensitivity] ranking, truncated to [top] entries. *)

val corners :
  config_name:string ->
  pattern_name:string ->
  Format.formatter ->
  Vdram_analysis.Corners.distribution ->
  unit
(** The [vdram corners] summary line and distribution. *)

val sweep : Format.formatter -> Vdram_analysis.Sweep.t -> unit
(** One-parameter sweep listing (no CLI twin; serve only). *)

val to_string : (Format.formatter -> 'a -> unit) -> 'a -> string
(** Render through a fresh formatter with the default geometry —
    the same margins [Format.std_formatter] starts with, so the string
    matches what the CLI writes to stdout. *)
