(** Shared SIGINT/SIGTERM plumbing.

    The daemon and the batched one-shot commands install the same
    mechanism — one handler over both termination signals — and differ
    only in what the handler does: serve flips its drain flag, the CLI
    flushes the store, prints partial supervision counters and exits
    with the conventional [128 + signal] code. *)

val install : (int -> unit) -> unit
(** Install [handler] for SIGINT and SIGTERM (replacing any previous
    disposition).  The argument passed to the handler is OCaml's
    internal signal number ([Sys.sigint] / [Sys.sigterm]); use
    {!os_number} to turn it into the OS numbering for exit codes.
    Signals that cannot be handled on this platform are skipped. *)

val os_number : int -> int
(** The conventional OS signal number for an OCaml [Sys.sig*] value
    (SIGINT 2, SIGTERM 15, SIGHUP 1); [0] for anything else.  Exit
    code for a signal-terminated command is [128 + os_number]. *)
