(** Domain-based worker pool with deterministic ordered merge.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] domains and returns the results in input order — the output
    is the same list [List.map f xs] would produce, element for
    element.  Work is distributed by chunked atomic index stealing:
    each fetch claims a run of consecutive indices, so µs-scale jobs
    amortize the steal and bounds-check overhead, while uneven job
    costs still balance across workers.  Results land in a slot per
    input position, so neither scheduling order nor chunk geometry
    ever leaks into the output. *)

val map : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Runs serially when [jobs <= 1], when the list has fewer than two
    elements, when one chunk covers the whole input, or when called
    from inside another [map] worker (nested parallelism degrades to
    serial instead of oversubscribing).  [chunk] is the number of
    consecutive items claimed per steal (clamped to >= 1); it defaults
    adaptively to about eight chunks per worker, capped at 1024.  If
    [f] raises, the first exception in {e input} order is re-raised
    with its backtrace after all domains have joined — at any [jobs]
    and any [chunk]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], unless the [VDRAM_JOBS]
    environment variable holds an integer — then that value, clamped
    to >= 1.  Lets CI and scripts pin parallelism without threading
    [--jobs] through every command. *)

val default_chunk : jobs:int -> int -> int
(** The adaptive chunk size [map] uses for an input of the given
    length (exposed for tests). *)

val in_worker_now : unit -> bool
(** Whether the current domain is a pool (or supervised) worker —
    i.e. whether a [map] from here would run serially. *)

val scoped_worker : (unit -> 'a) -> 'a
(** Run [f] with the current domain marked as a pool worker, restoring
    the previous mark afterwards.  Used by the supervised runtime so
    its worker domains inherit the nested-parallelism degradation. *)
