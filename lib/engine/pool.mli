(** Domain-based worker pool with deterministic ordered merge.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] domains and returns the results in input order — the output
    is the same list [List.map f xs] would produce, element for
    element.  Work is distributed by atomic index stealing, so uneven
    job costs balance automatically; results land in a slot per input
    position, so scheduling order never leaks into the output. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Runs serially when [jobs <= 1], when the list has fewer than two
    elements, or when called from inside another [map] worker (nested
    parallelism degrades to serial instead of oversubscribing).  If
    [f] raises, the first exception in {e input} order is re-raised
    with its backtrace after all domains have joined. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)
