(* Persistent cross-process cache: versioned, checksummed marshal
   snapshots under _build/.vdram-cache (or $VDRAM_CACHE_DIR), with
   retry-with-backoff around the I/O, a quarantine directory for files
   that fail verification, and an optional size cap enforced by
   oldest-first eviction. *)

type io_stats = {
  retries : int;
  discarded : int;
  quarantined : int;
  quarantined_bytes : int;
  evicted : int;
}

type t = {
  dir : string;
  version : string;
  max_bytes : int option;
  quarantine_max_bytes : int option;
  c_retries : int Atomic.t;
  c_discarded : int Atomic.t;
  c_quarantined : int Atomic.t;
  c_quarantined_bytes : int Atomic.t;
  c_evicted : int Atomic.t;
}

let magic = "vdram-store 1"

let default_dir () =
  match Sys.getenv_opt "VDRAM_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat "_build" ".vdram-cache"

let default_max_bytes () =
  match Sys.getenv_opt "VDRAM_CACHE_MAX_BYTES" with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

(* The quarantine directory is capped by default: its whole purpose is
   to keep evidence, and evidence of a corrupt-heavy run (every failed
   read moves another specimen aside) must not grow without bound on a
   long-lived daemon.  32 MiB keeps plenty of specimens. *)
let default_quarantine_max_bytes () =
  match Sys.getenv_opt "VDRAM_QUARANTINE_MAX_BYTES" with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> Some (32 * 1024 * 1024)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let open_ ?dir ?max_bytes ?quarantine_max_bytes ~version () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let max_bytes =
    match max_bytes with Some _ as m -> m | None -> default_max_bytes ()
  in
  let quarantine_max_bytes =
    match quarantine_max_bytes with
    | Some _ as m -> m
    | None -> default_quarantine_max_bytes ()
  in
  {
    dir;
    version;
    max_bytes;
    quarantine_max_bytes;
    c_retries = Atomic.make 0;
    c_discarded = Atomic.make 0;
    c_quarantined = Atomic.make 0;
    c_quarantined_bytes = Atomic.make 0;
    c_evicted = Atomic.make 0;
  }

let dir t = t.dir
let version t = t.version
let max_bytes t = t.max_bytes
let quarantine_max_bytes t = t.quarantine_max_bytes

let path t name = Filename.concat t.dir (name ^ ".cache")
let quarantine_dir t = Filename.concat t.dir "quarantine"

let stats t =
  {
    retries = Atomic.get t.c_retries;
    discarded = Atomic.get t.c_discarded;
    quarantined = Atomic.get t.c_quarantined;
    quarantined_bytes = Atomic.get t.c_quarantined_bytes;
    evicted = Atomic.get t.c_evicted;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d retries, %d discarded, %d quarantined (%d bytes), %d evicted"
    s.retries s.discarded s.quarantined s.quarantined_bytes s.evicted

(* ----- quarantine ---------------------------------------------------- *)

(* A rejected snapshot is moved aside, never deleted and never left in
   place: deleting destroys the evidence, leaving it means every
   subsequent run re-reads (and re-rejects) the same bad bytes.  The
   destination name is made unique so repeated corruption of one stage
   keeps every specimen, and a .reason sidecar records why.  The
   directory itself is size-capped ([quarantine_max_bytes]): after
   every move the oldest specimens (and their sidecars) are dropped
   until the evidence fits, so a corrupt-heavy run keeps the freshest
   specimens instead of growing without bound. *)

let file_size p =
  match Unix.stat p with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size
  | _ | (exception Unix.Unix_error _) -> 0

(* Specimens in the quarantine directory, oldest first (mtime, then
   name — deterministic on coarse-mtime filesystems), each with the
   combined size of the .cache file and its .reason sidecar. *)
let quarantine_specimens t =
  let qdir = quarantine_dir t in
  if Sys.file_exists qdir && Sys.is_directory qdir then
    Array.to_list (Sys.readdir qdir)
    |> List.filter_map (fun f ->
           if not (Filename.check_suffix f ".cache") then None
           else
             let p = Filename.concat qdir f in
             match Unix.stat p with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
               Some (p, st_size + file_size (p ^ ".reason"), st_mtime)
             | _ | (exception Unix.Unix_error _) -> None)
    |> List.sort (fun (p1, _, m1) (p2, _, m2) ->
           match Float.compare m1 m2 with 0 -> compare p1 p2 | c -> c)
  else []

let evict_quarantine ?keep t =
  match t.quarantine_max_bytes with
  | None -> 0
  | Some cap ->
    let specimens = quarantine_specimens t in
    let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 specimens in
    let victims =
      List.filter (fun (p, _, _) -> Some p <> keep) specimens
    in
    let rec go total removed = function
      | [] -> removed
      | _ when total <= cap -> removed
      | (p, sz, _) :: rest ->
        (match Sys.remove p with
         | () ->
           (try Sys.remove (p ^ ".reason") with Sys_error _ -> ());
           Atomic.incr t.c_evicted;
           go (total - sz) (removed + 1) rest
         | exception Sys_error _ -> go total removed rest)
    in
    go total 0 victims

let quarantine t ~name ~reason =
  let src = path t name in
  if not (Sys.file_exists src) then false
  else begin
    mkdir_p (quarantine_dir t);
    let rec dest k =
      let file =
        if k = 0 then name ^ ".cache"
        else Printf.sprintf "%s.%d.cache" name k
      in
      let d = Filename.concat (quarantine_dir t) file in
      if Sys.file_exists d then dest (k + 1) else d
    in
    let d = dest 0 in
    let moved = file_size src in
    match Sys.rename src d with
    | () ->
      (try
         Out_channel.with_open_text (d ^ ".reason") (fun oc ->
             Out_channel.output_string oc (reason ^ "\n"))
       with Sys_error _ -> ());
      Atomic.incr t.c_quarantined;
      ignore (Atomic.fetch_and_add t.c_quarantined_bytes moved : int);
      ignore (evict_quarantine ~keep:d t : int);
      true
    | exception Sys_error _ -> false
  end

(* ----- eviction ------------------------------------------------------ *)

(* One snapshot file per stage:

     vdram-store 1\n
     <version stamp>\n
     <md5 hex of payload>\n
     <marshalled payload>

   The checksum is verified before unmarshalling — [Marshal] offers no
   safety against corrupt input, so a truncated or bit-flipped file
   must never reach it.  Writes go to a temporary file in the same
   directory, fsync'd and renamed into place, so concurrent processes
   see either the old snapshot or the new one, never a torn write —
   and the writer pays for its own writeback instead of leaking dirty
   pages into whatever runs next. *)

let snapshot_files t =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.to_list (Sys.readdir t.dir)
    |> List.filter_map (fun f ->
           if not (Filename.check_suffix f ".cache") then None
           else
             let p = Filename.concat t.dir f in
             match Unix.stat p with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
               Some (p, st_size, st_mtime)
             | _ | (exception Unix.Unix_error _) -> None)
  else []

let evict ?keep t =
  match t.max_bytes with
  | None -> 0
  | Some cap ->
    let keep_path = Option.map (path t) keep in
    let files = snapshot_files t in
    let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 files in
    (* Oldest first; ties broken by name so eviction order is
       deterministic on coarse-mtime filesystems. *)
    let victims =
      List.sort
        (fun (p1, _, m1) (p2, _, m2) ->
          match Float.compare m1 m2 with 0 -> compare p1 p2 | c -> c)
        files
      |> List.filter (fun (p, _, _) -> Some p <> keep_path)
    in
    let rec go total removed = function
      | [] -> removed
      | _ when total <= cap -> removed
      | (p, sz, _) :: rest ->
        (match Sys.remove p with
         | () ->
           Atomic.incr t.c_evicted;
           go (total - sz) (removed + 1) rest
         | exception Sys_error _ -> go total removed rest)
    in
    go total 0 victims

(* ----- save ---------------------------------------------------------- *)

let with_backoff ~retries ~backoff t body =
  let rec attempt k =
    match body () with
    | Ok v -> Some v
    | Error _ when k < retries ->
      Atomic.incr t.c_retries;
      Unix.sleepf (backoff *. float_of_int (1 lsl k));
      attempt (k + 1)
    | Error _ -> None
  in
  attempt 0

let save ?(retries = 2) ?(backoff = 0.005) t ~name v =
  mkdir_p t.dir;
  (* Sharing is preserved (unlike fingerprinting, which needs canonical
     bytes): delta-extraction splices clean per-operation segments from
     the base extraction, and perturbed configurations share every
     untouched substructure, so a snapshot of a sweep's cache entries is
     a dense DAG.  Flattening it with [No_sharing] multiplies both the
     file size and the warm-start unmarshal time by the sweep width. *)
  let payload = Marshal.to_string v [] in
  let write () =
    match Filename.temp_file ~temp_dir:t.dir ("." ^ name) ".tmp" with
    | exception Sys_error e -> Error e
    | tmp ->
      (match
         Out_channel.with_open_bin tmp (fun oc ->
             Out_channel.output_string oc magic;
             Out_channel.output_char oc '\n';
             Out_channel.output_string oc t.version;
             Out_channel.output_char oc '\n';
             Out_channel.output_string oc
               (Digest.to_hex (Digest.string payload));
             Out_channel.output_char oc '\n';
             Out_channel.output_string oc payload;
             Out_channel.flush oc;
             try Unix.fsync (Unix.descr_of_out_channel oc)
             with Unix.Unix_error _ -> ())
       with
       | () ->
         (match Sys.rename tmp (path t name) with
          | () -> Ok ()
          | exception Sys_error e ->
            (try Sys.remove tmp with Sys_error _ -> ());
            Error e)
       | exception Sys_error e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         Error e)
  in
  match with_backoff ~retries ~backoff t write with
  | Some () -> ignore (evict ~keep:name t)
  | None -> ()

(* ----- read ---------------------------------------------------------- *)

type 'a read = Hit of 'a | Missing | Corrupt of string

(* Split off exactly three header lines and verify each before the
   payload reaches [Marshal]. *)
let decode t contents =
  let line from =
    match String.index_from_opt contents from '\n' with
    | None -> None
    | Some i -> Some (String.sub contents from (i - from), i + 1)
  in
  match line 0 with
  | Some (m, p1) when m = magic ->
    (match line p1 with
     | Some (v, p2) when v = t.version ->
       (match line p2 with
        | Some (checksum, p3) ->
          let payload =
            String.sub contents p3 (String.length contents - p3)
          in
          if Digest.to_hex (Digest.string payload) <> checksum then
            Error "checksum mismatch"
          else
            (try Ok (Marshal.from_string payload 0)
             with _ -> Error "undecodable payload")
        | _ -> Error "truncated header")
     | Some (v, _) ->
       Error
         (Printf.sprintf "version skew (snapshot %S, expected %S)" v
            t.version)
     | None -> Error "truncated header")
  | Some _ -> Error "bad magic"
  | None -> Error "empty file"

let read ?(retries = 2) ?(backoff = 0.005) t ~name =
  let file = path t name in
  let attempt_once () =
    if not (Sys.file_exists file) then Ok `Missing
    else
      match In_channel.with_open_bin file In_channel.input_all with
      | exception Sys_error e -> Error ("io error: " ^ e)
      | contents ->
        if Faults.corrupt_read ~name then
          Error "fault-injected corruption (VDRAM_FAULTS corrupt=store)"
        else (
          match decode t contents with
          | Ok v -> Ok (`Hit v)
          | Error reason -> Error reason)
  in
  (* A checksum mismatch can be a concurrent writer caught mid-flight
     on a filesystem without atomic rename, and an io error can be
     transient — both are worth a couple of backed-off retries before
     the file is condemned. *)
  let rec attempt k =
    match attempt_once () with
    | Ok r -> Ok r
    | Error _ when k < retries ->
      Atomic.incr t.c_retries;
      Unix.sleepf (backoff *. float_of_int (1 lsl k));
      attempt (k + 1)
    | Error reason -> Error reason
  in
  match attempt 0 with
  | Ok `Missing -> Missing
  | Ok (`Hit v) -> Hit v
  | Error reason ->
    Atomic.incr t.c_discarded;
    ignore (quarantine t ~name ~reason);
    Corrupt reason

let load t ~name =
  match read t ~name with Hit v -> Some v | Missing | Corrupt _ -> None

let clear t =
  let sweep dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter
        (fun f ->
          if
            Filename.check_suffix f ".cache"
            || Filename.check_suffix f ".reason"
          then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir)
  in
  sweep t.dir;
  sweep (quarantine_dir t)
