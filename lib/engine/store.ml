(* Persistent cross-process cache: versioned, checksummed marshal
   snapshots under _build/.vdram-cache (or $VDRAM_CACHE_DIR). *)

type t = {
  dir : string;
  version : string;
}

let magic = "vdram-store 1"

let default_dir () =
  match Sys.getenv_opt "VDRAM_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat "_build" ".vdram-cache"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let open_ ?dir ~version () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  { dir; version }

let dir t = t.dir
let version t = t.version

let path t name = Filename.concat t.dir (name ^ ".cache")

(* One snapshot file per stage:

     vdram-store 1\n
     <version stamp>\n
     <md5 hex of payload>\n
     <marshalled payload>

   The checksum is verified before unmarshalling — [Marshal] offers no
   safety against corrupt input, so a truncated or bit-flipped file
   must never reach it.  Writes go to a temporary file in the same
   directory, fsync'd and renamed into place, so concurrent processes
   see either the old snapshot or the new one, never a torn write —
   and the writer pays for its own writeback instead of leaking dirty
   pages into whatever runs next. *)

let save t ~name v =
  mkdir_p t.dir;
  let payload = Marshal.to_string v [ Marshal.No_sharing ] in
  let tmp = Filename.temp_file ~temp_dir:t.dir ("." ^ name) ".tmp" in
  let ok =
    try
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc magic;
          Out_channel.output_char oc '\n';
          Out_channel.output_string oc t.version;
          Out_channel.output_char oc '\n';
          Out_channel.output_string oc (Digest.to_hex (Digest.string payload));
          Out_channel.output_char oc '\n';
          Out_channel.output_string oc payload;
          Out_channel.flush oc;
          try Unix.fsync (Unix.descr_of_out_channel oc)
          with Unix.Unix_error _ -> ());
      true
    with Sys_error _ -> false
  in
  if ok then (try Sys.rename tmp (path t name) with Sys_error _ -> ())
  else (try Sys.remove tmp with Sys_error _ -> ())

let load t ~name =
  let file = path t name in
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error _ -> None
  | contents ->
    (* Split off exactly three header lines; anything malformed,
       version-skewed or failing the checksum is silently a miss. *)
    let line from =
      match String.index_from_opt contents from '\n' with
      | None -> None
      | Some i -> Some (String.sub contents from (i - from), i + 1)
    in
    (match line 0 with
     | Some (m, p1) when m = magic ->
       (match line p1 with
        | Some (v, p2) when v = t.version ->
          (match line p2 with
           | Some (checksum, p3) ->
             let payload =
               String.sub contents p3 (String.length contents - p3)
             in
             if Digest.to_hex (Digest.string payload) <> checksum then None
             else (try Some (Marshal.from_string payload 0) with _ -> None)
           | _ -> None)
        | _ -> None)
     | _ -> None)

let clear t =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".cache" then
          try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
      (Sys.readdir t.dir)
