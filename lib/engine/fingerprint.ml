(* Content fingerprints: one marshal + digest per value, cheap keys
   everywhere downstream. *)

(* The digest is the 16-byte MD5 of the marshalled value; the witness
   retains the marshalled bytes themselves so a digest collision can
   never alias two distinct keys (equality falls back to comparing the
   bytes, which is a memcmp).  [Marshal.No_sharing] makes the byte
   representation a pure function of the structure, so structurally
   equal immutable values always fingerprint identically. *)
type t = {
  digest : string;
  witness : string list;
}

(* Bump when the marshalling scheme or the key projections change:
   stamps the on-disk store so entries written by an older scheme are
   discarded instead of misread. *)
let scheme_version = "fp1"

let of_value v =
  let bytes = Marshal.to_string v [ Marshal.No_sharing ] in
  { digest = Digest.string bytes; witness = [ bytes ] }

let combine = function
  | [] -> invalid_arg "Fingerprint.combine: empty list"
  | [ fp ] -> fp
  | fps ->
    {
      digest = Digest.string (String.concat "" (List.map (fun f -> f.digest) fps));
      witness = List.concat_map (fun f -> f.witness) fps;
    }

(* Entries restored from the persistent store carry no witness (the
   bytes are not worth the disk space); for them the 128-bit digest is
   the identity.  Two in-memory keys always carry witnesses and get
   the full structural check. *)
let trusted fp = { fp with witness = [] }

let equal a b =
  String.equal a.digest b.digest
  && (a.witness == b.witness
      || a.witness = []
      || b.witness = []
      || (try List.for_all2 String.equal a.witness b.witness
          with Invalid_argument _ -> false))

let hash fp = Int64.to_int (String.get_int64_le fp.digest 0) land max_int

let hex fp = Digest.to_hex fp.digest

let pp ppf fp = Format.pp_print_string ppf (hex fp)
