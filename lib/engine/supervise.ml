(* Supervised batch runtime: Pool-style chunked parallel map with a
   per-item fault boundary, failure classification and a failure
   budget. *)

module Report = Vdram_core.Report
module Fp = Fingerprint

type policy = {
  keep_going : bool;
  max_failures : int option;
  deadline : float option;
}

let default_policy = { keep_going = true; max_failures = None; deadline = None }
let strict_policy = { default_policy with keep_going = false }

type failure = {
  batch : int;
  index : int;
  stage : string;
  fingerprint : string;
  injected : bool;
  message : string;
  elapsed_ns : int;
}

type 'b outcome = Done of 'b | Failed of failure | Skipped

exception Rejected of string
exception Aborted of { failures : int; tolerated : int }

let () =
  Printexc.register_printer (function
    | Rejected reason -> Some (Printf.sprintf "Supervise.Rejected(%s)" reason)
    | Aborted { failures; tolerated } ->
      Some
        (Printf.sprintf "Supervise.Aborted(%d failures > %d tolerated)"
           failures tolerated)
    | _ -> None)

type t = {
  policy : policy;
  plan : Faults.plan option;
  batch_counter : int Atomic.t;
  degraded : int Atomic.t;
  mutable abort_flag : bool;
  lock : Mutex.t;
  mutable all_failures : failure list; (* reverse batch order *)
}

let create ?(policy = default_policy) ?faults () =
  let plan =
    match faults with
    | Some p -> Some p
    | None ->
      (match Faults.of_env () with
       | Ok p -> p
       | Error msg -> invalid_arg ("VDRAM_FAULTS: " ^ msg))
  in
  {
    policy;
    plan;
    batch_counter = Atomic.make 0;
    degraded = Atomic.make 0;
    abort_flag = false;
    lock = Mutex.create ();
    all_failures = [];
  }

let policy t = t.policy
let plan t = t.plan
let aborted t = t.abort_flag

let failures t =
  Mutex.lock t.lock;
  let fs = t.all_failures in
  Mutex.unlock t.lock;
  List.rev fs

let finite_report r =
  if Report.is_finite r then None
  else
    Some
      (Printf.sprintf "non-finite value in report %s | %s"
         r.Report.config_name r.Report.pattern_name)

(* ----- per-item evaluation ------------------------------------------ *)

let item_fingerprint x = try Fp.hex (Fp.of_value x) with _ -> "opaque"

(* The original exception and backtrace ride alongside the outcome so
   strict mode can replay the first input-order failure exactly as
   Pool.map would have. *)
type 'b slot = {
  outcome : 'b outcome;
  original : (exn * Printexc.raw_backtrace) option;
}

let skipped = { outcome = Skipped; original = None }

let classify e =
  match e with
  | Faults.Injected (stage, _, _) -> (stage, true, Printexc.to_string e)
  | Engine.Stage_error (stage, inner) ->
    (stage, false, Printexc.to_string inner)
  | Rejected reason -> ("validate", false, reason)
  | e -> ("driver", false, Printexc.to_string e)

let eval_item t ~batch ~check ~deadline f index x =
  let t0 = Monotonic_clock.now () in
  let elapsed () = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  match
    Faults.with_item ?plan:t.plan ~batch ~index (fun () ->
        let r = f x in
        (match check with
         | None -> ()
         | Some chk ->
           (match chk r with
            | Some reason -> raise (Rejected reason)
            | None -> ()));
        r)
  with
  | r ->
    let elapsed_ns = elapsed () in
    (match deadline with
     | Some d when float_of_int elapsed_ns /. 1e9 > d ->
       let message =
         Printf.sprintf "item exceeded deadline (%.3f s > %.3f s)"
           (float_of_int elapsed_ns /. 1e9)
           d
       in
       {
         outcome =
           Failed
             {
               batch;
               index;
               stage = "deadline";
               fingerprint = item_fingerprint x;
               injected = false;
               message;
               elapsed_ns;
             };
         original = Some (Failure message, Printexc.get_callstack 0);
       }
     | _ -> { outcome = Done r; original = None })
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    let stage, injected, message = classify e in
    {
      outcome =
        Failed
          {
            batch;
            index;
            stage;
            fingerprint = item_fingerprint x;
            injected;
            message;
            elapsed_ns = elapsed ();
          };
      original = Some (e, bt);
    }

(* ----- the batch ----------------------------------------------------- *)

let map t engine ?check f xs =
  let batch = Atomic.fetch_and_add t.batch_counter 1 in
  let items = Array.of_list xs in
  let n = Array.length items in
  let slots = Array.make n skipped in
  let deadline = t.policy.deadline in
  (* Budget: the number of failures tolerated before the batch stops
     claiming work.  Strict and unbounded keep-going evaluate every
     item regardless. *)
  let budget =
    match t.policy.max_failures with
    | Some m when t.policy.keep_going -> m
    | _ -> max_int
  in
  let nfail = Atomic.make 0 in
  let stop = Atomic.make false in
  let run_one i =
    let slot = eval_item t ~batch ~check ~deadline f i items.(i) in
    slots.(i) <- slot;
    match slot.outcome with
    | Failed _ ->
      let c = 1 + Atomic.fetch_and_add nfail 1 in
      if c > budget then Atomic.set stop true
    | Done _ | Skipped -> ()
  in
  let jobs = min (Engine.jobs engine) n in
  if jobs <= 1 || n <= 1 || Pool.in_worker_now () then begin
    let i = ref 0 in
    while !i < n && not (Atomic.get stop) do
      run_one !i;
      incr i
    done
  end
  else begin
    let chunk = Pool.default_chunk ~jobs n in
    let next = Atomic.make 0 in
    let worker () =
      Pool.scoped_worker (fun () ->
          let rec loop () =
            if not (Atomic.get stop) then begin
              let i0 = Atomic.fetch_and_add next chunk in
              if i0 < n then begin
                let hi = min n (i0 + chunk) - 1 in
                let i = ref i0 in
                while !i <= hi && not (Atomic.get stop) do
                  run_one !i;
                  incr i
                done;
                loop ()
              end
            end
          in
          loop ())
    in
    (* A domain that cannot be spawned (resource exhaustion) degrades
       the batch to fewer workers instead of failing it. *)
    let spawned =
      List.filter_map
        (fun _ ->
          match Domain.spawn worker with
          | d -> Some d
          | exception _ ->
            Atomic.incr t.degraded;
            None)
        (List.init (jobs - 1) Fun.id)
    in
    worker ();
    List.iter Domain.join spawned
  end;
  (* Record this batch's failures (index order) on the supervisor. *)
  let batch_failures =
    Array.to_list slots
    |> List.filter_map (fun s ->
           match s.outcome with Failed fl -> Some fl | _ -> None)
  in
  if batch_failures <> [] then begin
    Mutex.lock t.lock;
    t.all_failures <- List.rev_append batch_failures t.all_failures;
    Mutex.unlock t.lock
  end;
  if Atomic.get stop then begin
    t.abort_flag <- true;
    raise (Aborted { failures = Atomic.get nfail; tolerated = budget })
  end;
  if not t.policy.keep_going then
    (* Strict: replay the first input-order failure with its original
       exception and backtrace — exactly what Pool.map would raise.
       Stage_error is unwrapped back to the inner exception so strict
       supervision is observationally identical to no supervision. *)
    Array.iter
      (fun s ->
        match (s.outcome, s.original) with
        | Failed _, Some (e, bt) ->
          let e =
            match e with Engine.Stage_error (_, inner) -> inner | e -> e
          in
          Printexc.raise_with_backtrace e bt
        | _ -> ())
      slots;
  Array.to_list (Array.map (fun s -> s.outcome) slots)

let map_jobs ?supervisor engine ?check f xs =
  match supervisor with
  | Some t -> map t engine ?check f xs
  | None -> List.map (fun r -> Done r) (Engine.map_jobs engine f xs)

(* ----- counters and the failure report ------------------------------- *)

type counters = {
  batches : int;
  failures : int;
  injected : int;
  deadline : int;
  rejected : int;
  degraded : int;
  by_stage : (string * int) list;
}

let group_by_stage fs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.stage
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.stage)))
    fs;
  Hashtbl.fold (fun stage n acc -> (stage, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t =
  let fs = failures t in
  let count p = List.length (List.filter p fs) in
  {
    batches = Atomic.get t.batch_counter;
    failures = List.length fs;
    injected = count (fun f -> f.injected);
    deadline = count (fun f -> f.stage = "deadline");
    rejected = count (fun f -> f.stage = "validate");
    degraded = Atomic.get t.degraded;
    by_stage = group_by_stage fs;
  }

let pp_counters ppf c =
  Format.fprintf ppf
    "%d failures over %d batches (%d injected, %d deadline, %d rejected)%s"
    c.failures c.batches c.injected c.deadline c.rejected
    (if c.degraded > 0 then
       Printf.sprintf ", %d workers degraded" c.degraded
     else "");
  match c.by_stage with
  | [] -> ()
  | by_stage ->
    Format.fprintf ppf "@.  by class: %s"
      (String.concat ", "
         (List.map (fun (s, n) -> Printf.sprintf "%s %d" s n) by_stage))

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failure_to_json f =
  Printf.sprintf
    "    {\"batch\": %d, \"index\": %d, \"stage\": \"%s\", \"injected\": %b, \
     \"fingerprint\": \"%s\", \"message\": \"%s\", \"elapsed_ms\": %.3f}"
    f.batch f.index (json_escape f.stage) f.injected
    (json_escape f.fingerprint) (json_escape f.message)
    (float_of_int f.elapsed_ns /. 1e6)

let report_to_json ~command t =
  let c = counters t in
  let fs = failures t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"version\": 1,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"command\": \"%s\",\n" (json_escape command));
  Buffer.add_string buf
    (Printf.sprintf "  \"keep_going\": %b,\n" t.policy.keep_going);
  Buffer.add_string buf
    (Printf.sprintf "  \"max_failures\": %s,\n"
       (match t.policy.max_failures with
        | Some m -> string_of_int m
        | None -> "null"));
  Buffer.add_string buf
    (Printf.sprintf "  \"deadline\": %s,\n"
       (match t.policy.deadline with
        | Some d -> Printf.sprintf "%g" d
        | None -> "null"));
  Buffer.add_string buf
    (Printf.sprintf "  \"faults\": %s,\n"
       (match t.plan with
        | Some p -> Printf.sprintf "\"%s\"" (json_escape (Faults.to_string p))
        | None -> "null"));
  Buffer.add_string buf (Printf.sprintf "  \"aborted\": %b,\n" t.abort_flag);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"counters\": {\"batches\": %d, \"failures\": %d, \"injected\": \
        %d, \"deadline\": %d, \"rejected\": %d, \"degraded\": %d, \
        \"by_stage\": {%s}},\n"
       c.batches c.failures c.injected c.deadline c.rejected c.degraded
       (String.concat ", "
          (List.map
             (fun (s, n) -> Printf.sprintf "\"%s\": %d" (json_escape s) n)
             c.by_stage)));
  (match fs with
   | [] -> Buffer.add_string buf "  \"failures\": []\n"
   | fs ->
     Buffer.add_string buf "  \"failures\": [\n";
     Buffer.add_string buf
       (String.concat ",\n" (List.map failure_to_json fs));
     Buffer.add_string buf "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
