(* Seeded, order-independent fault injection: the faulted set is a
   pure hash of (seed, batch, index), so any job count and any cache
   state reproduce the same failures. *)

type stage = Geometry | Extraction | Mix

let stage_name = function
  | Geometry -> "geometry"
  | Extraction -> "extraction"
  | Mix -> "mix"

let stage_of_name = function
  | "geometry" -> Some Geometry
  | "extraction" -> Some Extraction
  | "mix" -> Some Mix
  | _ -> None

type action = Raise of stage | Stall of stage * float

type plan = {
  seed : int;
  rate : float;
  action : action option;
  corrupt_store : bool;
}

let none = { seed = 0; rate = 0.0; action = None; corrupt_store = false }

exception Injected of string * int * int

let () =
  Printexc.register_printer (function
    | Injected (stage, batch, index) ->
      Some
        (Printf.sprintf "Vdram_engine.Faults.Injected(%s, batch %d, item %d)"
           stage batch index)
    | _ -> None)

(* ----- the per-item decision --------------------------------------- *)

(* splitmix64 finalizer: a few multiplies turn (seed, batch, index)
   into 64 well-mixed bits.  Stateless by construction — no generator
   to advance, so evaluation order cannot leak into the decision. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let u01 ~seed k =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int (k + 1)) 0x9E3779B97F4A7C15L)
         (Int64.of_int seed))
  in
  (* Top 53 bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let faulted plan ~batch ~index =
  plan.rate > 0.0
  && u01 ~seed:plan.seed ((batch * 1_000_003) + index) < plan.rate

(* ----- grammar ------------------------------------------------------ *)

let parse s =
  let clauses =
    String.split_on_char ','
      (String.concat "," (String.split_on_char ';' s))
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc clause ->
      let* plan = acc in
      match String.index_opt clause '=' with
      | None -> Error (Printf.sprintf "clause %S is not key=value" clause)
      | Some i ->
        let key = String.trim (String.sub clause 0 i) in
        let value =
          String.trim
            (String.sub clause (i + 1) (String.length clause - i - 1))
        in
        (match key with
         | "seed" ->
           (match int_of_string_opt value with
            | Some n -> Ok { plan with seed = n }
            | None -> Error (Printf.sprintf "seed %S is not an integer" value))
         | "rate" ->
           (match float_of_string_opt value with
            | Some r when r >= 0.0 && r <= 1.0 -> Ok { plan with rate = r }
            | _ -> Error (Printf.sprintf "rate %S is not in [0, 1]" value))
         | "raise" ->
           (match stage_of_name value with
            | Some st -> Ok { plan with action = Some (Raise st) }
            | None ->
              Error
                (Printf.sprintf
                   "raise stage %S (want geometry|extraction|mix)" value))
         | "stall" ->
           (match float_of_string_opt value with
            | Some d when d >= 0.0 ->
              Ok { plan with action = Some (Stall (Mix, d)) }
            | _ ->
              Error (Printf.sprintf "stall %S is not a duration" value))
         | "corrupt" ->
           if value = "store" then Ok { plan with corrupt_store = true }
           else Error (Printf.sprintf "corrupt target %S (want store)" value)
         | _ -> Error (Printf.sprintf "unknown key %S" key)))
    (Ok { none with rate = 0.01 })
    clauses

let of_env () =
  match Sys.getenv_opt "VDRAM_FAULTS" with
  | None -> Ok None
  | Some s when String.trim s = "" -> Ok None
  | Some s -> Result.map Option.some (parse s)

let to_string plan =
  let parts =
    [ Printf.sprintf "seed=%d" plan.seed;
      Printf.sprintf "rate=%g" plan.rate ]
    @ (match plan.action with
       | Some (Raise st) -> [ "raise=" ^ stage_name st ]
       | Some (Stall (_, d)) -> [ Printf.sprintf "stall=%g" d ]
       | None -> [])
    @ (if plan.corrupt_store then [ "corrupt=store" ] else [])
  in
  String.concat "," parts

(* ----- item context and injection points ---------------------------- *)

type context = { plan : plan option; batch : int; index : int }

let ctx : context option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_item ?plan ~batch ~index f =
  let saved = Domain.DLS.get ctx in
  Domain.DLS.set ctx (Some { plan; batch; index });
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx saved) f

let supervised () = Domain.DLS.get ctx <> None

let stage_hook stage =
  match Domain.DLS.get ctx with
  | Some { plan = Some p; batch; index } when faulted p ~batch ~index ->
    (match p.action with
     | Some (Raise s) when s = stage ->
       raise (Injected (stage_name stage, batch, index))
     | Some (Stall (s, d)) when s = stage -> Unix.sleepf d
     | _ -> ())
  | _ -> ()

let corrupt_read ~name =
  ignore name;
  match of_env () with
  | Ok (Some p) -> p.corrupt_store
  | _ -> false
