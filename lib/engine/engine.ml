(* Staged evaluation: fingerprint-keyed sharded stage caches + a
   chunked domain pool + an optional persistent store. *)

module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Operation = Vdram_core.Operation
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Floorplan = Vdram_floorplan.Floorplan
module C = Vdram_circuits.Contribution
module Fp = Fingerprint
module Fp_tbl = Hashtbl.Make (Fingerprint)

type geometry = {
  geometry : Vdram_floorplan.Array_geometry.t;
  page_bits : int;
  activated_bits : int;
  die_area : float;
  array_efficiency : float;
}

(* ----- sharded caches ---------------------------------------------- *)

(* Each stage cache is striped over [nshards] independently locked
   hash tables; the shard is picked from the key's fingerprint, so two
   domains evaluating different configurations almost never contend on
   the same mutex.  Critical sections are a single find or replace —
   stage computation always happens outside any lock (stages are pure,
   so a rare duplicate computation is just the same value computed
   twice, and last-write-wins stores the same bits). *)

let nshards = 16 (* power of two: shard index is a fingerprint mask *)

type 'v shard = { lock : Mutex.t; tbl : 'v Fp_tbl.t }
type 'v cache = 'v shard array

let cache_create () : 'v cache =
  Array.init nshards (fun _ ->
      { lock = Mutex.create (); tbl = Fp_tbl.create 64 })

let shard_of (cache : 'v cache) fp = cache.(Fp.hash fp land (nshards - 1))

let cache_entries (cache : 'v cache) =
  Array.to_list cache
  |> List.concat_map (fun s ->
         Mutex.lock s.lock;
         let xs = Fp_tbl.fold (fun k v acc -> (k, v) :: acc) s.tbl [] in
         Mutex.unlock s.lock;
         xs)

(* Per-stage counters; atomics because the pool's worker domains share
   the engine. *)
type counters = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  time_ns : int Atomic.t;
}

let counters () =
  { hits = Atomic.make 0; misses = Atomic.make 0; time_ns = Atomic.make 0 }

(* Delta-extraction counters: attempts that found a cached base,
   full-extract fallbacks (structural splice mismatch), spliced clean
   groups, and per-group dirty counts indexed by [C.group_index]. *)
type delta_counters = {
  attempts : int Atomic.t;
  fallbacks : int Atomic.t;
  spliced : int Atomic.t;
  dirtied : int Atomic.t array;
}

let delta_counters () =
  {
    attempts = Atomic.make 0;
    fallbacks = Atomic.make 0;
    spliced = Atomic.make 0;
    dirtied = Array.init C.group_count (fun _ -> Atomic.make 0);
  }

type t = {
  jobs : int;
  delta : bool;
  geom_cache : geometry cache;
  ext_cache : Model.extraction cache;
  mix_cache : Report.t cache;
  geom_c : counters;
  ext_c : counters;
  mix_c : counters;
  delta_c : delta_counters;
  store : Store.t option;
  preloaded : int * int;
  discarded : int;
  (* Miss counts at the last flush, per persistent stage: a flush only
     writes a stage that has missed since the previous one, so a
     long-lived engine (the serve daemon) can call [flush_store] after
     every request and pay nothing when the caches are clean. *)
  flushed_ext : int Atomic.t;
  flushed_mix : int Atomic.t;
}

exception Stage_error of string * exn

let () =
  Printexc.register_printer (function
    | Stage_error (stage, inner) ->
      Some
        (Printf.sprintf "Vdram_engine.Engine.Stage_error(%s: %s)" stage
           (Printexc.to_string inner))
    | _ -> None)

(* ----- persistent store -------------------------------------------- *)

(* The store stamp ties a snapshot to both the physics and the
   fingerprint scheme: results computed by an older model, or keyed by
   an older scheme, are discarded on load. *)
let store_version = Model.version ^ "+" ^ Fp.scheme_version

let store_open ?dir ?max_bytes () =
  Store.open_ ?dir ?max_bytes ~version:store_version ()

(* Preload returns (entries, discarded): a Corrupt read counts as one
   discarded snapshot (the store has already quarantined the file) and
   the stage simply starts cold. *)
let preload (cache : 'v cache) (entries : (Fp.t * 'v) array Store.read) =
  match entries with
  | Store.Missing -> (0, 0)
  | Store.Corrupt _ -> (0, 1)
  | Store.Hit arr ->
    Array.iter
      (fun (fp, v) ->
        let s = shard_of cache fp in
        Fp_tbl.replace s.tbl fp v)
      arr;
    (Array.length arr, 0)

let create ?jobs ?store ?(delta = true) () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let geom_cache = cache_create () in
  let ext_cache : Model.extraction cache = cache_create () in
  let mix_cache : Report.t cache = cache_create () in
  let preloaded, discarded =
    match store with
    | None -> ((0, 0), 0)
    | Some st ->
      let ext, dext =
        preload ext_cache
          (Store.read st ~name:"extraction"
            : (Fp.t * Model.extraction) array Store.read)
      in
      let mix, dmix =
        preload mix_cache
          (Store.read st ~name:"mix" : (Fp.t * Report.t) array Store.read)
      in
      ((ext, mix), dext + dmix)
  in
  {
    jobs;
    delta;
    geom_cache;
    ext_cache;
    mix_cache;
    geom_c = counters ();
    ext_c = counters ();
    mix_c = counters ();
    delta_c = delta_counters ();
    store;
    preloaded;
    discarded;
    flushed_ext = Atomic.make 0;
    flushed_mix = Atomic.make 0;
  }

let serial () = create ~jobs:1 ()
let jobs t = t.jobs
let delta_enabled t = t.delta
let store t = t.store
let preloaded t = t.preloaded
let discarded t = t.discarded

let store_dirty t =
  t.store <> None
  && (Atomic.get t.ext_c.misses > Atomic.get t.flushed_ext
      || Atomic.get t.mix_c.misses > Atomic.get t.flushed_mix)

let flush_store t =
  match t.store with
  | None -> ()
  | Some st ->
    (* Persist without witnesses: on disk the 128-bit digest is the
       identity (see Fingerprint.trusted), which keeps snapshots at a
       fraction of the in-memory footprint.  A stage that has not
       missed since the last flush holds nothing its snapshot lacks,
       so skip it — a fully warm run costs a load but no save, an idle
       engine never clobbers a good snapshot with an empty one, and a
       resident engine that flushes after every request only pays when
       something new was computed. *)
    let dump cache =
      Array.of_list
        (List.map (fun (fp, v) -> (Fp.trusted fp, v)) (cache_entries cache))
    in
    let ext_misses = Atomic.get t.ext_c.misses in
    if ext_misses > Atomic.get t.flushed_ext then begin
      Store.save st ~name:"extraction" (dump t.ext_cache);
      Atomic.set t.flushed_ext ext_misses
    end;
    let mix_misses = Atomic.get t.mix_c.misses in
    if mix_misses > Atomic.get t.flushed_mix then begin
      Store.save st ~name:"mix" (dump t.mix_cache);
      Atomic.set t.flushed_mix mix_misses
    end

(* ----- fingerprint keys -------------------------------------------- *)

(* A fingerprint is computed once per value and reused across every
   stage lookup it feeds.  The memo is domain-local and keyed on
   physical identity: all stage lookups for one configuration (mix ->
   extraction -> geometry, op_energy after eval, ...) arrive with the
   same immutable [Config.t] in hand, so one marshal serves them all.
   Patterns repeat across whole batches (every sample of a corners run
   shares the pattern value), so their memo hits almost always. *)

let cfg_fp_memo : (Config.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let geom_fp_memo : (Config.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let pat_fp_memo : (Pattern.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let config_fp (cfg : Config.t) =
  match Domain.DLS.get cfg_fp_memo with
  | Some (c, fp) when c == cfg -> fp
  | _ ->
    let fp = Fp.of_value (Model.physics_projection cfg) in
    Domain.DLS.set cfg_fp_memo (Some (cfg, fp));
    fp

let geometry_fp (cfg : Config.t) =
  match Domain.DLS.get geom_fp_memo with
  | Some (c, fp) when c == cfg -> fp
  | _ ->
    let fp =
      Fp.of_value (cfg.Config.floorplan, cfg.Config.activation_fraction)
    in
    Domain.DLS.set geom_fp_memo (Some (cfg, fp));
    fp

let pattern_fp (p : Pattern.t) =
  match Domain.DLS.get pat_fp_memo with
  | Some (q, fp) when q == p -> fp
  | _ ->
    let fp = Fp.of_value p in
    Domain.DLS.set pat_fp_memo (Some (p, fp));
    fp

(* The delta path fingerprints the *base* configuration on every
   perturbed item, so it gets its own memo slot: the perturbed
   configurations churn through [cfg_fp_memo] while the base — shared
   by the whole batch — stays memoized here. *)
let base_fp_memo : (Config.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let base_fp (cfg : Config.t) =
  match Domain.DLS.get base_fp_memo with
  | Some (c, fp) when c == cfg -> fp
  | _ ->
    let fp = Fp.of_value (Model.physics_projection cfg) in
    Domain.DLS.set base_fp_memo (Some (cfg, fp));
    fp

(* Dense per-pattern command counts for the flat mix kernel, computed
   once per pattern per domain — batches share one pattern value, so
   this hits for every item after the first. *)
let pat_counts_memo : (Pattern.t * float array) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let pattern_counts (p : Pattern.t) =
  match Domain.DLS.get pat_counts_memo with
  | Some (q, v) when q == p -> v
  | _ ->
    let v = Model.op_count_vector p in
    Domain.DLS.set pat_counts_memo (Some (p, v));
    v

(* ----- stages ------------------------------------------------------ *)

(* Per-miss timing uses the monotonic clock: wall-clock deltas
   (gettimeofday) can go backwards under NTP adjustment and corrupt
   the accumulators with negative nanoseconds. *)
let cached cache c fp compute =
  let s = shard_of cache fp in
  Mutex.lock s.lock;
  let found = Fp_tbl.find_opt s.tbl fp in
  Mutex.unlock s.lock;
  match found with
  | Some v ->
    Atomic.incr c.hits;
    v
  | None ->
    let t0 = Monotonic_clock.now () in
    let v = compute () in
    let dt = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
    Atomic.incr c.misses;
    ignore (Atomic.fetch_and_add c.time_ns dt);
    Mutex.lock s.lock;
    Fp_tbl.replace s.tbl fp v;
    Mutex.unlock s.lock;
    v

(* Under a supervised item (Faults.with_item context), a stage failure
   is tagged with the stage it escaped from so the failure record can
   attribute it; the innermost stage wins (an inner Stage_error passes
   through unchanged).  Outside supervision exceptions propagate
   exactly as before — the unsupervised engine is byte-for-byte the
   old one. *)
let guard stage f =
  if not (Faults.supervised ()) then f ()
  else
    try f () with
    | (Faults.Injected _ | Stage_error _) as e -> raise e
    | e ->
      let bt = Printexc.get_raw_backtrace () in
      Printexc.raise_with_backtrace (Stage_error (stage, e)) bt

(* Fault hooks fire at stage {e entry}, before any cache lookup, so
   whether an item is faulted never depends on what happens to be
   cached.  The mix hook is exact (eval runs once per item); geometry
   and extraction hooks only fire when the mix stage actually recurses
   into them, i.e. on a mix-cache miss. *)

let geometry t (cfg : Config.t) =
  Faults.stage_hook Faults.Geometry;
  guard "geometry" (fun () ->
      cached t.geom_cache t.geom_c (geometry_fp cfg) (fun () ->
          {
            geometry = Config.geometry cfg;
            page_bits = Config.page_bits cfg;
            activated_bits = Config.activated_bits cfg;
            die_area = Floorplan.die_area cfg.Config.floorplan;
            array_efficiency = Floorplan.array_efficiency cfg.Config.floorplan;
          }))

(* A raw cache probe: find without computing, for base-extraction
   lookups on the delta path.  No hook fires and no counter moves —
   the probe is not a stage entry, so supervision semantics (which
   items fault) are identical with delta on or off. *)
let cache_find cache fp =
  let s = shard_of cache fp in
  Mutex.lock s.lock;
  let found = Fp_tbl.find_opt s.tbl fp in
  Mutex.unlock s.lock;
  found

(* The base extraction is likewise memoized per domain on physical
   identity: a batch offers one base for thousands of items, so the
   fingerprint and shard probe should run once, not per item.
   Value-correct across engines sharing a domain because extraction is
   a pure function of the configuration's physics projection — any
   memoized record for this identical value is bit-identical to what a
   fresh probe would find or a full extract would compute. *)
let base_ex_memo : (Config.t * Model.extraction) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let base_extraction t (b : Config.t) =
  match Domain.DLS.get base_ex_memo with
  | Some (c, ex) when c == b -> Some ex
  | _ ->
    (match cache_find t.ext_cache (base_fp b) with
    | Some ex ->
      Domain.DLS.set base_ex_memo (Some (b, ex));
      Some ex
    | None -> None)

let record_delta t (o : Model.delta_outcome) =
  Atomic.incr t.delta_c.attempts;
  if o.Model.fallback then Atomic.incr t.delta_c.fallbacks
  else begin
    ignore (Atomic.fetch_and_add t.delta_c.spliced o.Model.spliced);
    List.iter
      (fun g -> Atomic.incr t.delta_c.dirtied.(C.group_index g))
      o.Model.dirtied
  end

(* [base] offers a configuration whose extraction is likely cached
   (the nominal point of a sensitivity sweep, the seed of a corners
   draw): on a miss, the extraction stage re-extracts only the circuit
   groups whose per-group sub-key differs from the base's and splices
   the rest.  Purely an access-path optimization — the spliced record
   is bit-identical to a full extraction, so the cache content does
   not depend on how it was computed.  If the base extraction is not
   cached (or delta is disabled on the engine) the stage silently runs
   the full extraction. *)
let extraction ?base t (cfg : Config.t) =
  Faults.stage_hook Faults.Extraction;
  guard "extraction" (fun () ->
      let fp = config_fp cfg in
      let s = shard_of t.ext_cache fp in
      Mutex.lock s.lock;
      let found = Fp_tbl.find_opt s.tbl fp in
      Mutex.unlock s.lock;
      match found with
      | Some v ->
        Atomic.incr t.ext_c.hits;
        v
      | None ->
        (* Geometry is its own stage with its own timer: resolve it
           before starting extraction's clock so the per-stage time
           attributions stay disjoint. *)
        let g = geometry t cfg in
        let from_base =
          match base with
          | Some b when t.delta && b != cfg -> base_extraction t b
          | _ -> None
        in
        let t0 = Monotonic_clock.now () in
        let v, outcome =
          match from_base with
          | Some bex ->
            let ex, o =
              Model.extract_delta ~activated_bits:g.activated_bits
                ~geometry:g.geometry ~base:bex cfg
            in
            (ex, Some o)
          | None ->
            ( Model.extract ~activated_bits:g.activated_bits
                ~geometry:g.geometry cfg,
              None )
        in
        let dt = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
        Atomic.incr t.ext_c.misses;
        ignore (Atomic.fetch_and_add t.ext_c.time_ns dt);
        Option.iter (record_delta t) outcome;
        Mutex.lock s.lock;
        Fp_tbl.replace s.tbl fp v;
        Mutex.unlock s.lock;
        v)

let eval ?base t (cfg : Config.t) pattern =
  Faults.stage_hook Faults.Mix;
  guard "mix" (fun () ->
      let fp = Fp.combine [ config_fp cfg; pattern_fp pattern ] in
      let r =
        cached t.mix_cache t.mix_c fp (fun () ->
            let ex = extraction ?base t cfg in
            let r =
              Model.pattern_power_staged ~counts:(pattern_counts pattern) ex
                cfg pattern
            in
            { r with Report.config_name = "" })
      in
      { r with Report.config_name = cfg.Config.name })

let power ?base t cfg pattern = (eval ?base t cfg pattern).Report.power
let current ?base t cfg pattern = (eval ?base t cfg pattern).Report.current

let energy_per_bit ?base t cfg pattern =
  (eval ?base t cfg pattern).Report.energy_per_bit

let op_energy ?base t cfg kind =
  Model.extraction_energy (extraction ?base t cfg) kind

let map_jobs t f xs = Pool.map ~jobs:t.jobs f xs

type stage_stats = { hits : int; misses : int; time_ns : int }

type delta_stats = {
  delta_attempts : int;
  delta_fallbacks : int;
  groups_spliced : int;
  groups_dirtied : (string * int) list;  (** group name, dirty count *)
}

type stats = {
  geometry_stats : stage_stats;
  extraction_stats : stage_stats;
  mix_stats : stage_stats;
  delta_stats : delta_stats;
}

let stage_stats (c : counters) =
  {
    hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    time_ns = Atomic.get c.time_ns;
  }

let delta_stats (c : delta_counters) =
  {
    delta_attempts = Atomic.get c.attempts;
    delta_fallbacks = Atomic.get c.fallbacks;
    groups_spliced = Atomic.get c.spliced;
    groups_dirtied =
      List.map
        (fun g -> (C.group_name g, Atomic.get c.dirtied.(C.group_index g)))
        C.groups;
  }

let stats t =
  {
    geometry_stats = stage_stats t.geom_c;
    extraction_stats = stage_stats t.ext_c;
    mix_stats = stage_stats t.mix_c;
    delta_stats = delta_stats t.delta_c;
  }

let reset_counters (c : counters) =
  Atomic.set c.hits 0;
  Atomic.set c.misses 0;
  Atomic.set c.time_ns 0

let reset_stats t =
  reset_counters t.geom_c;
  reset_counters t.ext_c;
  reset_counters t.mix_c;
  (* Dirty tracking follows the miss counters: after a reset the next
     flush must re-examine both stages rather than compare against a
     stale high-water mark. *)
  Atomic.set t.flushed_ext 0;
  Atomic.set t.flushed_mix 0;
  Atomic.set t.delta_c.attempts 0;
  Atomic.set t.delta_c.fallbacks 0;
  Atomic.set t.delta_c.spliced 0;
  Array.iter (fun a -> Atomic.set a 0) t.delta_c.dirtied

let pp_stage ppf (name, s) =
  Format.fprintf ppf "%-10s %6d hit %6d miss  %8.3f ms" name s.hits s.misses
    (float_of_int s.time_ns /. 1e6)

let pp_delta ppf (d : delta_stats) =
  let total_dirtied =
    List.fold_left (fun acc (_, n) -> acc + n) 0 d.groups_dirtied
  in
  Format.fprintf ppf
    "%-10s %6d delta %5d full  %d dirtied / %d spliced groups" "extraction"
    d.delta_attempts d.delta_fallbacks total_dirtied d.groups_spliced;
  let nonzero = List.filter (fun (_, n) -> n > 0) d.groups_dirtied in
  if nonzero <> [] then begin
    Format.fprintf ppf "@,%-10s " "";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (name, n) -> Format.fprintf ppf "%s %d" name n)
      ppf nonzero
  end

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>%a@,%a@,%a" pp_stage
    ("geometry", s.geometry_stats)
    pp_stage
    ("extraction", s.extraction_stats)
    pp_stage ("mix", s.mix_stats);
  if s.delta_stats.delta_attempts > 0 then
    Format.fprintf ppf "@,%a" pp_delta s.delta_stats;
  Format.fprintf ppf "@]"
