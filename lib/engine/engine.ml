(* Staged evaluation: content-keyed stage caches + a domain pool. *)

module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Operation = Vdram_core.Operation
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Floorplan = Vdram_floorplan.Floorplan

(* Stage keys are plain-data records (no closures anywhere in Config.t
   or Pattern.t), so structural equality is the content identity.  The
   default [Hashtbl.hash] only samples ~10 leaves — far too few for a
   record carrying bus and logic-block lists — so hash deeply. *)
module Key (T : sig
  type t
end) =
struct
  type t = T.t

  let equal = ( = )
  let hash k = Hashtbl.hash_param 256 256 k
end

module Geom_tbl = Hashtbl.Make (Key (struct
  type t = Floorplan.t * float
end))

module Ext_tbl = Hashtbl.Make (Key (struct
  type t = Config.t
end))

module Mix_tbl = Hashtbl.Make (Key (struct
  type t = Config.t * Pattern.t
end))

type geometry = {
  geometry : Vdram_floorplan.Array_geometry.t;
  page_bits : int;
  activated_bits : int;
  die_area : float;
  array_efficiency : float;
}

(* Per-stage counters; atomics because the pool's worker domains share
   the engine. *)
type counters = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  time_ns : int Atomic.t;
}

let counters () =
  { hits = Atomic.make 0; misses = Atomic.make 0; time_ns = Atomic.make 0 }

type t = {
  jobs : int;
  lock : Mutex.t;
  geom_tbl : geometry Geom_tbl.t;
  ext_tbl : Model.extraction Ext_tbl.t;
  mix_tbl : Report.t Mix_tbl.t;
  geom_c : counters;
  ext_c : counters;
  mix_c : counters;
}

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  {
    jobs;
    lock = Mutex.create ();
    geom_tbl = Geom_tbl.create 64;
    ext_tbl = Ext_tbl.create 64;
    mix_tbl = Mix_tbl.create 64;
    geom_c = counters ();
    ext_c = counters ();
    mix_c = counters ();
  }

let serial () = create ~jobs:1 ()
let jobs t = t.jobs

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Look up under the lock; compute misses outside it (stages are pure,
   so a rare duplicate computation is just the value computed twice,
   and last-write-wins stores the same bits). *)
let cached t c ~find ~add key compute =
  match locked t (fun () -> find key) with
  | Some v ->
    Atomic.incr c.hits;
    v
  | None ->
    let t0 = Unix.gettimeofday () in
    let v = compute () in
    let dt = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    Atomic.incr c.misses;
    ignore (Atomic.fetch_and_add c.time_ns dt);
    locked t (fun () -> add key v);
    v

let geometry t (cfg : Config.t) =
  cached t t.geom_c
    ~find:(Geom_tbl.find_opt t.geom_tbl)
    ~add:(Geom_tbl.replace t.geom_tbl)
    (cfg.Config.floorplan, cfg.Config.activation_fraction)
    (fun () ->
      {
        geometry = Config.geometry cfg;
        page_bits = Config.page_bits cfg;
        activated_bits = Config.activated_bits cfg;
        die_area = Floorplan.die_area cfg.Config.floorplan;
        array_efficiency = Floorplan.array_efficiency cfg.Config.floorplan;
      })

(* The name identifies a configuration to humans, not to physics: two
   configurations differing only in [name] share every stage output. *)
let physics_key (cfg : Config.t) = { cfg with Config.name = "" }

let extraction t (cfg : Config.t) =
  let g = geometry t cfg in
  cached t t.ext_c
    ~find:(Ext_tbl.find_opt t.ext_tbl)
    ~add:(Ext_tbl.replace t.ext_tbl)
    (physics_key cfg)
    (fun () -> Model.extract ~activated_bits:g.activated_bits cfg)

let eval t (cfg : Config.t) pattern =
  let r =
    cached t t.mix_c
      ~find:(Mix_tbl.find_opt t.mix_tbl)
      ~add:(Mix_tbl.replace t.mix_tbl)
      (physics_key cfg, pattern)
      (fun () ->
        let ex = extraction t cfg in
        let r = Model.pattern_power_staged ex cfg pattern in
        { r with Report.config_name = "" })
  in
  { r with Report.config_name = cfg.Config.name }

let power t cfg pattern = (eval t cfg pattern).Report.power
let current t cfg pattern = (eval t cfg pattern).Report.current

let energy_per_bit t cfg pattern = (eval t cfg pattern).Report.energy_per_bit

let op_energy t cfg kind = Model.extraction_energy (extraction t cfg) kind

let map_jobs t f xs = Pool.map ~jobs:t.jobs f xs

type stage_stats = { hits : int; misses : int; time_ns : int }

type stats = {
  geometry_stats : stage_stats;
  extraction_stats : stage_stats;
  mix_stats : stage_stats;
}

let stage_stats (c : counters) =
  {
    hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    time_ns = Atomic.get c.time_ns;
  }

let stats t =
  {
    geometry_stats = stage_stats t.geom_c;
    extraction_stats = stage_stats t.ext_c;
    mix_stats = stage_stats t.mix_c;
  }

let reset_counters (c : counters) =
  Atomic.set c.hits 0;
  Atomic.set c.misses 0;
  Atomic.set c.time_ns 0

let reset_stats t =
  reset_counters t.geom_c;
  reset_counters t.ext_c;
  reset_counters t.mix_c

let pp_stage ppf (name, s) =
  Format.fprintf ppf "%-10s %6d hit %6d miss  %8.3f ms" name s.hits s.misses
    (float_of_int s.time_ns /. 1e6)

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@]" pp_stage
    ("geometry", s.geometry_stats)
    pp_stage
    ("extraction", s.extraction_stats)
    pp_stage ("mix", s.mix_stats)
