(* Staged evaluation: fingerprint-keyed sharded stage caches + a
   chunked domain pool + an optional persistent store. *)

module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Operation = Vdram_core.Operation
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Floorplan = Vdram_floorplan.Floorplan
module Fp = Fingerprint
module Fp_tbl = Hashtbl.Make (Fingerprint)

type geometry = {
  geometry : Vdram_floorplan.Array_geometry.t;
  page_bits : int;
  activated_bits : int;
  die_area : float;
  array_efficiency : float;
}

(* ----- sharded caches ---------------------------------------------- *)

(* Each stage cache is striped over [nshards] independently locked
   hash tables; the shard is picked from the key's fingerprint, so two
   domains evaluating different configurations almost never contend on
   the same mutex.  Critical sections are a single find or replace —
   stage computation always happens outside any lock (stages are pure,
   so a rare duplicate computation is just the same value computed
   twice, and last-write-wins stores the same bits). *)

let nshards = 16 (* power of two: shard index is a fingerprint mask *)

type 'v shard = { lock : Mutex.t; tbl : 'v Fp_tbl.t }
type 'v cache = 'v shard array

let cache_create () : 'v cache =
  Array.init nshards (fun _ ->
      { lock = Mutex.create (); tbl = Fp_tbl.create 64 })

let shard_of (cache : 'v cache) fp = cache.(Fp.hash fp land (nshards - 1))

let cache_entries (cache : 'v cache) =
  Array.to_list cache
  |> List.concat_map (fun s ->
         Mutex.lock s.lock;
         let xs = Fp_tbl.fold (fun k v acc -> (k, v) :: acc) s.tbl [] in
         Mutex.unlock s.lock;
         xs)

(* Per-stage counters; atomics because the pool's worker domains share
   the engine. *)
type counters = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  time_ns : int Atomic.t;
}

let counters () =
  { hits = Atomic.make 0; misses = Atomic.make 0; time_ns = Atomic.make 0 }

type t = {
  jobs : int;
  geom_cache : geometry cache;
  ext_cache : Model.extraction cache;
  mix_cache : Report.t cache;
  geom_c : counters;
  ext_c : counters;
  mix_c : counters;
  store : Store.t option;
  preloaded : int * int;
  discarded : int;
}

exception Stage_error of string * exn

let () =
  Printexc.register_printer (function
    | Stage_error (stage, inner) ->
      Some
        (Printf.sprintf "Vdram_engine.Engine.Stage_error(%s: %s)" stage
           (Printexc.to_string inner))
    | _ -> None)

(* ----- persistent store -------------------------------------------- *)

(* The store stamp ties a snapshot to both the physics and the
   fingerprint scheme: results computed by an older model, or keyed by
   an older scheme, are discarded on load. *)
let store_version = Model.version ^ "+" ^ Fp.scheme_version

let store_open ?dir ?max_bytes () =
  Store.open_ ?dir ?max_bytes ~version:store_version ()

(* Preload returns (entries, discarded): a Corrupt read counts as one
   discarded snapshot (the store has already quarantined the file) and
   the stage simply starts cold. *)
let preload (cache : 'v cache) (entries : (Fp.t * 'v) array Store.read) =
  match entries with
  | Store.Missing -> (0, 0)
  | Store.Corrupt _ -> (0, 1)
  | Store.Hit arr ->
    Array.iter
      (fun (fp, v) ->
        let s = shard_of cache fp in
        Fp_tbl.replace s.tbl fp v)
      arr;
    (Array.length arr, 0)

let create ?jobs ?store () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let geom_cache = cache_create () in
  let ext_cache : Model.extraction cache = cache_create () in
  let mix_cache : Report.t cache = cache_create () in
  let preloaded, discarded =
    match store with
    | None -> ((0, 0), 0)
    | Some st ->
      let ext, dext =
        preload ext_cache
          (Store.read st ~name:"extraction"
            : (Fp.t * Model.extraction) array Store.read)
      in
      let mix, dmix =
        preload mix_cache
          (Store.read st ~name:"mix" : (Fp.t * Report.t) array Store.read)
      in
      ((ext, mix), dext + dmix)
  in
  {
    jobs;
    geom_cache;
    ext_cache;
    mix_cache;
    geom_c = counters ();
    ext_c = counters ();
    mix_c = counters ();
    store;
    preloaded;
    discarded;
  }

let serial () = create ~jobs:1 ()
let jobs t = t.jobs
let store t = t.store
let preloaded t = t.preloaded
let discarded t = t.discarded

let flush_store t =
  match t.store with
  | None -> ()
  | Some st ->
    (* Persist without witnesses: on disk the 128-bit digest is the
       identity (see Fingerprint.trusted), which keeps snapshots at a
       fraction of the in-memory footprint.  A stage that never missed
       holds nothing the snapshot lacks, so skip it — a fully warm run
       costs a load but no save (and an idle engine never clobbers a
       good snapshot with an empty one). *)
    let dump cache =
      Array.of_list
        (List.map (fun (fp, v) -> (Fp.trusted fp, v)) (cache_entries cache))
    in
    if Atomic.get t.ext_c.misses > 0 then
      Store.save st ~name:"extraction" (dump t.ext_cache);
    if Atomic.get t.mix_c.misses > 0 then
      Store.save st ~name:"mix" (dump t.mix_cache)

(* ----- fingerprint keys -------------------------------------------- *)

(* A fingerprint is computed once per value and reused across every
   stage lookup it feeds.  The memo is domain-local and keyed on
   physical identity: all stage lookups for one configuration (mix ->
   extraction -> geometry, op_energy after eval, ...) arrive with the
   same immutable [Config.t] in hand, so one marshal serves them all.
   Patterns repeat across whole batches (every sample of a corners run
   shares the pattern value), so their memo hits almost always. *)

let cfg_fp_memo : (Config.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let geom_fp_memo : (Config.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let pat_fp_memo : (Pattern.t * Fp.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let config_fp (cfg : Config.t) =
  match Domain.DLS.get cfg_fp_memo with
  | Some (c, fp) when c == cfg -> fp
  | _ ->
    let fp = Fp.of_value (Model.physics_projection cfg) in
    Domain.DLS.set cfg_fp_memo (Some (cfg, fp));
    fp

let geometry_fp (cfg : Config.t) =
  match Domain.DLS.get geom_fp_memo with
  | Some (c, fp) when c == cfg -> fp
  | _ ->
    let fp =
      Fp.of_value (cfg.Config.floorplan, cfg.Config.activation_fraction)
    in
    Domain.DLS.set geom_fp_memo (Some (cfg, fp));
    fp

let pattern_fp (p : Pattern.t) =
  match Domain.DLS.get pat_fp_memo with
  | Some (q, fp) when q == p -> fp
  | _ ->
    let fp = Fp.of_value p in
    Domain.DLS.set pat_fp_memo (Some (p, fp));
    fp

(* ----- stages ------------------------------------------------------ *)

(* Per-miss timing uses the monotonic clock: wall-clock deltas
   (gettimeofday) can go backwards under NTP adjustment and corrupt
   the accumulators with negative nanoseconds. *)
let cached cache c fp compute =
  let s = shard_of cache fp in
  Mutex.lock s.lock;
  let found = Fp_tbl.find_opt s.tbl fp in
  Mutex.unlock s.lock;
  match found with
  | Some v ->
    Atomic.incr c.hits;
    v
  | None ->
    let t0 = Monotonic_clock.now () in
    let v = compute () in
    let dt = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
    Atomic.incr c.misses;
    ignore (Atomic.fetch_and_add c.time_ns dt);
    Mutex.lock s.lock;
    Fp_tbl.replace s.tbl fp v;
    Mutex.unlock s.lock;
    v

(* Under a supervised item (Faults.with_item context), a stage failure
   is tagged with the stage it escaped from so the failure record can
   attribute it; the innermost stage wins (an inner Stage_error passes
   through unchanged).  Outside supervision exceptions propagate
   exactly as before — the unsupervised engine is byte-for-byte the
   old one. *)
let guard stage f =
  if not (Faults.supervised ()) then f ()
  else
    try f () with
    | (Faults.Injected _ | Stage_error _) as e -> raise e
    | e ->
      let bt = Printexc.get_raw_backtrace () in
      Printexc.raise_with_backtrace (Stage_error (stage, e)) bt

(* Fault hooks fire at stage {e entry}, before any cache lookup, so
   whether an item is faulted never depends on what happens to be
   cached.  The mix hook is exact (eval runs once per item); geometry
   and extraction hooks only fire when the mix stage actually recurses
   into them, i.e. on a mix-cache miss. *)

let geometry t (cfg : Config.t) =
  Faults.stage_hook Faults.Geometry;
  guard "geometry" (fun () ->
      cached t.geom_cache t.geom_c (geometry_fp cfg) (fun () ->
          {
            geometry = Config.geometry cfg;
            page_bits = Config.page_bits cfg;
            activated_bits = Config.activated_bits cfg;
            die_area = Floorplan.die_area cfg.Config.floorplan;
            array_efficiency = Floorplan.array_efficiency cfg.Config.floorplan;
          }))

let extraction t (cfg : Config.t) =
  Faults.stage_hook Faults.Extraction;
  guard "extraction" (fun () ->
      cached t.ext_cache t.ext_c (config_fp cfg) (fun () ->
          let g = geometry t cfg in
          Model.extract ~activated_bits:g.activated_bits cfg))

let eval t (cfg : Config.t) pattern =
  Faults.stage_hook Faults.Mix;
  guard "mix" (fun () ->
      let fp = Fp.combine [ config_fp cfg; pattern_fp pattern ] in
      let r =
        cached t.mix_cache t.mix_c fp (fun () ->
            let ex = extraction t cfg in
            let r = Model.pattern_power_staged ex cfg pattern in
            { r with Report.config_name = "" })
      in
      { r with Report.config_name = cfg.Config.name })

let power t cfg pattern = (eval t cfg pattern).Report.power
let current t cfg pattern = (eval t cfg pattern).Report.current

let energy_per_bit t cfg pattern = (eval t cfg pattern).Report.energy_per_bit

let op_energy t cfg kind = Model.extraction_energy (extraction t cfg) kind

let map_jobs t f xs = Pool.map ~jobs:t.jobs f xs

type stage_stats = { hits : int; misses : int; time_ns : int }

type stats = {
  geometry_stats : stage_stats;
  extraction_stats : stage_stats;
  mix_stats : stage_stats;
}

let stage_stats (c : counters) =
  {
    hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    time_ns = Atomic.get c.time_ns;
  }

let stats t =
  {
    geometry_stats = stage_stats t.geom_c;
    extraction_stats = stage_stats t.ext_c;
    mix_stats = stage_stats t.mix_c;
  }

let reset_counters (c : counters) =
  Atomic.set c.hits 0;
  Atomic.set c.misses 0;
  Atomic.set c.time_ns 0

let reset_stats t =
  reset_counters t.geom_c;
  reset_counters t.ext_c;
  reset_counters t.mix_c

let pp_stage ppf (name, s) =
  Format.fprintf ppf "%-10s %6d hit %6d miss  %8.3f ms" name s.hits s.misses
    (float_of_int s.time_ns /. 1e6)

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@]" pp_stage
    ("geometry", s.geometry_stats)
    pp_stage
    ("extraction", s.extraction_stats)
    pp_stage ("mix", s.mix_stats)
