(** Staged evaluation engine: the Figure 4 pipeline split into pure,
    content-cached stages, with a domain pool for batch evaluation.

    A model run decomposes as

    {v config -> geometry -> extraction -> pattern mix -> report v}

    and each stage output is memoized behind a {!Fingerprint.t} of
    exactly the inputs that stage reads.  Perturbing a voltage lens
    therefore re-runs extraction and mix but replays geometry from
    cache; re-evaluating one configuration against several patterns
    replays both geometry and extraction.  Caches are striped over
    independently locked shards, so worker domains rarely contend.
    See [doc/ENGINE.md] for the stage graph, the cache keys, the
    on-disk format and the determinism contract. *)

type t

exception Stage_error of string * exn
(** A stage failure under supervision: the stage name ([geometry],
    [extraction] or [mix]) the exception escaped from, and the
    original exception.  Only raised while a {!Supervise} item context
    is active ({!Faults.supervised}); outside supervision stage
    exceptions propagate unwrapped, exactly as they always have. *)

val create : ?jobs:int -> ?store:Store.t -> ?delta:bool -> unit -> t
(** A fresh engine.  [jobs] bounds the domain pool used by
    {!map_jobs}; it defaults to {!Pool.default_jobs} (which honours
    [VDRAM_JOBS]).  [store] attaches a persistent cross-process cache:
    extraction and pattern-mix snapshots are loaded from it
    immediately and written back by {!flush_store}.  A stale or
    corrupt snapshot is not silently discarded: the store quarantines
    the file, and {!discarded} counts the stages that started cold
    because of it.  [delta] (default [true]) enables the incremental
    delta-extraction path taken when a caller passes [?base]; turning
    it off forces every extraction miss through the full extract —
    results are bit-identical either way (the bench uses the switch to
    measure the delta mechanism in isolation). *)

val serial : unit -> t
(** [create ~jobs:1 ()] — the drop-in default the analysis drivers use
    when no engine is supplied. *)

val jobs : t -> int

val delta_enabled : t -> bool
(** Whether the engine honours [?base] with the incremental
    delta-extraction path (see {!create}). *)

(** {1 Persistent store} *)

val store_open : ?dir:string -> ?max_bytes:int -> unit -> Store.t
(** A store handle stamped with the current model + fingerprint-scheme
    version, rooted at [dir] (default {!Store.default_dir}), size-capped
    at [max_bytes] when given (default [VDRAM_CACHE_MAX_BYTES]).  Pass
    it to {!create} to warm an engine from disk. *)

val store : t -> Store.t option

val preloaded : t -> int * int
(** [(extraction, mix)] entry counts loaded from the store at
    {!create} time; [(0, 0)] without a store or on a cold cache. *)

val discarded : t -> int
(** How many stage snapshots (0..2) were rejected — corrupt, truncated
    or version-skewed — and quarantined during the {!create} preload.
    Those stages start cold and recompute; see {!Store.stats} on the
    attached store for the full I/O picture. *)

val flush_store : t -> unit
(** Write the extraction and pattern-mix caches back to the engine's
    store (no-op without one).  Only stages that have missed since the
    last flush are written — a fully warm run re-saves nothing, and a
    long-lived engine (the serve daemon) can flush periodically
    without rewriting unchanged snapshots.  Snapshots are written
    atomically, so a crash mid-flush leaves the previous snapshot
    intact. *)

val store_dirty : t -> bool
(** Whether {!flush_store} would write anything: the engine has a
    store and at least one stage has missed since the last flush.
    Lets a long-running caller skip the flush entirely on a quiet
    interval. *)

(** {1 Stages} *)

type geometry = {
  geometry : Vdram_floorplan.Array_geometry.t;
  page_bits : int;
  activated_bits : int;
  die_area : float;          (** m^2 *)
  array_efficiency : float;  (** fraction of die that is cell array *)
}

val geometry : t -> Vdram_core.Config.t -> geometry
(** Geometry/floorplan stage.  Keyed on the floorplan and the
    activation fraction — the only configuration fields it reads. *)

val extraction :
  ?base:Vdram_core.Config.t ->
  t ->
  Vdram_core.Config.t ->
  Vdram_core.Model.extraction
(** Capacitance-extraction stage ({!Vdram_core.Model.extract}).  Keyed
    on {!Vdram_core.Model.physics_projection} — every field except
    [name].  [base] names a configuration the evaluated one is a small
    perturbation of (a sweep's nominal point, a corner draw's seed):
    on a miss, if the base's extraction is cached, the stage runs
    {!Vdram_core.Model.extract_delta} against it — re-extracting only
    the circuit groups whose per-group sub-key changed and splicing
    the rest — instead of a full extract.  The result is bit-identical
    either way; an uncached base or a [~delta:false] engine silently
    degrades to the full extraction. *)

val eval :
  ?base:Vdram_core.Config.t ->
  t ->
  Vdram_core.Config.t ->
  Vdram_core.Pattern.t ->
  Vdram_core.Report.t
(** Pattern-mix stage: the full report.  Keyed on the physical
    configuration and the pattern; the report's [config_name] is
    patched to the caller's configuration name on every return, so a
    cache hit from a renamed twin stays correctly labelled.
    Bit-identical to {!Vdram_core.Model.pattern_power}.  [base] is
    forwarded to {!extraction} on a mix miss. *)

val power :
  ?base:Vdram_core.Config.t ->
  t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float

val current :
  ?base:Vdram_core.Config.t ->
  t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float

val energy_per_bit :
  ?base:Vdram_core.Config.t ->
  t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float option

val op_energy :
  ?base:Vdram_core.Config.t ->
  t -> Vdram_core.Config.t -> Vdram_core.Operation.kind -> float
(** Per-occurrence supply energy of one operation, from the cached
    extraction ({!Vdram_core.Operation.energy} equivalent). *)

(** {1 Batch execution} *)

val map_jobs : t -> ('a -> 'b) -> 'a list -> 'b list
(** Evaluate a batch on the engine's domain pool ({!Pool.map} with the
    engine's [jobs]).  Results are returned in input order and are
    bit-identical to the serial [List.map] — see [doc/ENGINE.md]. *)

(** {1 Instrumentation} *)

type stage_stats = {
  hits : int;
  misses : int;
  time_ns : int;  (** monotonic time spent computing misses *)
}

type delta_stats = {
  delta_attempts : int;
      (** extraction misses served by the delta path (cached base) *)
  delta_fallbacks : int;
      (** delta attempts that fell back to a full extract *)
  groups_spliced : int;
      (** clean circuit groups shared from base extractions *)
  groups_dirtied : (string * int) list;
      (** re-extracted group counts, keyed by group name *)
}

type stats = {
  geometry_stats : stage_stats;
  extraction_stats : stage_stats;
  mix_stats : stage_stats;
  delta_stats : delta_stats;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
