(** Staged evaluation engine: the Figure 4 pipeline split into pure,
    content-cached stages, with a domain pool for batch evaluation.

    A model run decomposes as

    {v config -> geometry -> extraction -> pattern mix -> report v}

    and each stage output is memoized behind a key built from exactly
    the inputs that stage reads.  Perturbing a voltage lens therefore
    re-runs extraction and mix but replays geometry from cache;
    re-evaluating one configuration against several patterns replays
    both geometry and extraction.  See [doc/ENGINE.md] for the stage
    graph, the cache keys and the determinism contract. *)

type t

val create : ?jobs:int -> unit -> t
(** A fresh engine with empty stage caches.  [jobs] bounds the domain
    pool used by {!map_jobs}; it defaults to
    [Domain.recommended_domain_count ()].  Caches are shared across
    domains behind a mutex, so one engine may serve a whole batch. *)

val serial : unit -> t
(** [create ~jobs:1 ()] — the drop-in default the analysis drivers use
    when no engine is supplied. *)

val jobs : t -> int

(** {1 Stages} *)

type geometry = {
  geometry : Vdram_floorplan.Array_geometry.t;
  page_bits : int;
  activated_bits : int;
  die_area : float;          (** m^2 *)
  array_efficiency : float;  (** fraction of die that is cell array *)
}

val geometry : t -> Vdram_core.Config.t -> geometry
(** Geometry/floorplan stage.  Keyed on the floorplan and the
    activation fraction — the only configuration fields it reads. *)

val extraction : t -> Vdram_core.Config.t -> Vdram_core.Model.extraction
(** Capacitance-extraction stage ({!Vdram_core.Model.extract}).  Keyed
    on the physical configuration (every field except [name]). *)

val eval : t -> Vdram_core.Config.t -> Vdram_core.Pattern.t ->
  Vdram_core.Report.t
(** Pattern-mix stage: the full report.  Keyed on the physical
    configuration and the pattern; the report's [config_name] is
    patched to the caller's configuration name on every return, so a
    cache hit from a renamed twin stays correctly labelled.
    Bit-identical to {!Vdram_core.Model.pattern_power}. *)

val power : t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float
val current : t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float
val energy_per_bit :
  t -> Vdram_core.Config.t -> Vdram_core.Pattern.t -> float option

val op_energy : t -> Vdram_core.Config.t -> Vdram_core.Operation.kind -> float
(** Per-occurrence supply energy of one operation, from the cached
    extraction ({!Vdram_core.Operation.energy} equivalent). *)

(** {1 Batch execution} *)

val map_jobs : t -> ('a -> 'b) -> 'a list -> 'b list
(** Evaluate a batch on the engine's domain pool ({!Pool.map} with the
    engine's [jobs]).  Results are returned in input order and are
    bit-identical to the serial [List.map] — see [doc/ENGINE.md]. *)

(** {1 Instrumentation} *)

type stage_stats = {
  hits : int;
  misses : int;
  time_ns : int;  (** wall time spent computing misses *)
}

type stats = {
  geometry_stats : stage_stats;
  extraction_stats : stage_stats;
  mix_stats : stage_stats;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
