(* Domain pool: atomic index stealing, results merged in input order. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Set inside a worker so a parallel map reached from within another
   parallel map runs serially instead of spawning domains^2. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let map ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            (match f items.(i) with
             | r -> Some (Ok r)
             | exception e -> Some (Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain participates too, then drops its worker
       flag so later maps from this domain parallelise again. *)
    worker ();
    Domain.DLS.set in_worker false;
    List.iter Domain.join spawned;
    (* Re-raise the first failure in input order, independent of which
       domain hit it first. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok r) -> r | _ -> assert false)
         results)
  end
