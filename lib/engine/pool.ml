(* Domain pool: chunked atomic index stealing, results merged in input
   order. *)

let default_jobs () =
  match Sys.getenv_opt "VDRAM_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j -> max 1 j
     | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Set inside a worker so a parallel map reached from within another
   parallel map runs serially instead of spawning domains^2. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let in_worker_now () = Domain.DLS.get in_worker

(* The supervised runtime (Supervise) spawns its own worker domains;
   marking them as pool workers keeps the same nested-parallelism
   degradation: an Engine.map_jobs reached from inside a supervised
   item runs serially instead of spawning domains^2. *)
let scoped_worker f =
  let saved = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker saved) f

(* Workers steal a run of consecutive indices per fetch instead of one
   index: for µs-scale jobs the atomic fetch, the bounds check and the
   cache-line traffic on [next] otherwise dominate the job itself.
   The default aims at ~8 chunks per worker — enough slack for uneven
   job costs to balance, few enough that steal overhead amortizes. *)
let default_chunk ~jobs n = max 1 (min 1024 (n / (jobs * 8)))

let map ?chunk ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~jobs n
    in
    (* No point spawning more workers than there are chunks. *)
    let jobs = min jobs ((n + chunk - 1) / chunk) in
    if jobs <= 1 then List.map f xs
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        Domain.DLS.set in_worker true;
        let rec loop () =
          let i0 = Atomic.fetch_and_add next chunk in
          if i0 < n then begin
            let stop = min n (i0 + chunk) - 1 in
            for i = i0 to stop do
              results.(i) <-
                (match f items.(i) with
                 | r -> Some (Ok r)
                 | exception e ->
                   Some (Error (e, Printexc.get_raw_backtrace ())))
            done;
            loop ()
          end
        in
        loop ()
      in
      let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      (* The calling domain participates too, then drops its worker
         flag so later maps from this domain parallelise again. *)
      worker ();
      Domain.DLS.set in_worker false;
      List.iter Domain.join spawned;
      (* Re-raise the first failure in input order, independent of which
         domain hit it first. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | _ -> ())
        results;
      Array.to_list
        (Array.map
           (function Some (Ok r) -> r | _ -> assert false)
           results)
    end
  end
