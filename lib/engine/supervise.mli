(** Supervised batch runtime: per-item fault isolation over the
    engine's domain pool.

    {!Engine.map_jobs} is all-or-nothing — one poisoned configuration
    in a 5000-sample batch aborts the whole run.  A supervisor wraps
    the same chunked, order-merged parallel evaluation in a per-item
    boundary: each item either produces its value ([Done]), produces a
    structured {!failure} record ([Failed] — batch, index, stage,
    input fingerprint, injected-or-real, message, elapsed time), or is
    [Skipped] because the failure budget was already spent.

    Policies:
    - {e strict} ([keep_going = false]): every item is still
      evaluated, failures are still recorded on the supervisor, and
      then the first failure {e in input order} is re-raised with its
      original backtrace — observationally identical to
      {!Engine.map_jobs}, plus the failure records.
    - {e keep-going}: failures become [Failed] outcomes; the batch
      completes and callers assemble partial results.
    - {e bounded} ([max_failures = Some n]): keep going until more
      than [n] items have failed, then stop claiming work (remaining
      items are [Skipped]) and raise {!Aborted} after all workers
      join.  Failures seen so far remain recorded on the supervisor.

    An optional per-item [deadline] (seconds) classifies an
    over-budget item as a ["deadline"] failure even when it returned a
    value; an optional [check] validates each result (e.g.
    {!finite_report}) and classifies a rejection as a ["validate"]
    failure.

    With no faults, no failures and no deadline hits, the [Done]
    payloads are bit-identical to the unsupervised engine at any job
    count — supervision never perturbs a healthy run.  Worker domains
    are marked with {!Pool.scoped_worker}, so nested parallelism
    degrades to serial exactly as under {!Pool.map}; if a worker
    domain cannot be spawned at all, the batch gracefully degrades to
    fewer workers (counted in {!counters}) instead of failing. *)

type policy = {
  keep_going : bool;
      (** record failures and return partial results instead of
          re-raising the first failure *)
  max_failures : int option;
      (** with [keep_going]: stop the batch once {e more than} this
          many items have failed, raising {!Aborted} *)
  deadline : float option;
      (** per-item wall-clock budget in seconds; an item exceeding it
          is recorded as a ["deadline"] failure *)
}

val default_policy : policy
(** [{ keep_going = true; max_failures = None; deadline = None }] *)

val strict_policy : policy
(** [{ default_policy with keep_going = false }] — failure records
    plus the exact re-raise behaviour of {!Engine.map_jobs}. *)

type failure = {
  batch : int;        (** supervisor-wide batch sequence number *)
  index : int;        (** position of the item in its batch *)
  stage : string;
      (** ["geometry"], ["extraction"], ["mix"] (engine stages),
          ["validate"] (check rejection), ["deadline"], or ["driver"]
          (failure outside any engine stage) *)
  fingerprint : string;  (** hex fingerprint of the input item *)
  injected : bool;       (** true for {!Faults.Injected} faults *)
  message : string;      (** printed exception or rejection reason *)
  elapsed_ns : int;      (** time spent on the item before it failed *)
}

type 'b outcome = Done of 'b | Failed of failure | Skipped

exception Rejected of string
(** Raised by {!map} when [check] returns [Some reason]; classified as
    a ["validate"] failure.  Raising it from the job function directly
    has the same effect. *)

exception Aborted of { failures : int; tolerated : int }
(** The batch stopped because more than [tolerated] items failed.
    Failures recorded before the stop remain available via
    {!failures} / {!report_to_json}. *)

type t

val create : ?policy:policy -> ?faults:Faults.plan -> unit -> t
(** A supervisor accumulating failures across batches.  [policy]
    defaults to {!default_policy}.  [faults] overrides the fault plan:
    pass {!Faults.none} to ignore [VDRAM_FAULTS]; when omitted the
    plan comes from the environment ([Invalid_argument] if
    [VDRAM_FAULTS] is set but malformed). *)

val policy : t -> policy
val plan : t -> Faults.plan option

val map :
  t ->
  Engine.t ->
  ?check:('b -> string option) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list
(** Supervised parallel map: same chunked stealing and input-order
    merge as {!Pool.map} on the engine's job count, with the per-item
    isolation, classification and budget semantics described above.
    [check] validates each produced value ([Some reason] rejects it).
    Raises {!Aborted} under a spent [max_failures] budget, or the
    first original failure in input order under [strict_policy]. *)

val map_jobs :
  ?supervisor:t ->
  Engine.t ->
  ?check:('b -> string option) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list
(** What the analysis drivers call.  With a supervisor this is {!map};
    without one it is {!Engine.map_jobs} with every result wrapped in
    [Done] — byte-identical behaviour (including exception propagation,
    and [check] is not consulted), so unsupervised callers cannot be
    perturbed. *)

val finite_report : Vdram_core.Report.t -> string option
(** A [check] for report-producing jobs: [Some "non-finite …"] when
    any numeric field is NaN or infinite ({!Vdram_core.Report.is_finite}). *)

val classify : exn -> string * bool * string
(** [(stage, injected, message)] — the failure classification the
    supervised runtime applies to an escaped exception: the engine
    stage of a {!Engine.Stage_error}, ["validate"] for {!Rejected},
    ["driver"] otherwise; [injected] for {!Faults.Injected} faults.
    Exposed so other fault boundaries (the serve daemon) classify
    identically. *)

(** {1 Failure accounting} *)

val failures : t -> failure list
(** Every failure recorded on this supervisor, in batch order then
    index order. *)

type counters = {
  batches : int;   (** batches run through {!map} *)
  failures : int;  (** total failure records *)
  injected : int;  (** of which fault-injected *)
  deadline : int;  (** of which deadline overruns *)
  rejected : int;  (** of which check rejections *)
  degraded : int;  (** worker domains that failed to spawn *)
  by_stage : (string * int) list;
      (** failure count per class — ["geometry"], ["extraction"],
          ["mix"], ["validate"], ["deadline"], ["driver"] — sorted by
          class name, zero-count classes omitted.  Sums to
          [failures]. *)
}

val counters : t -> counters
val aborted : t -> bool

val pp_counters : Format.formatter -> counters -> unit

val report_to_json : command:string -> t -> string
(** The machine-readable failure report ([--fail-log]): version,
    command, policy, fault plan, abort flag, counters, and one record
    per failure.  Stable schema (version 1); an empty batch yields
    ["failures": []]. *)
