(** Persistent cross-process stage cache.

    A store is a directory of per-stage snapshot files (extraction and
    pattern-mix results, marshalled with their fingerprint keys) that
    repeated CLI invocations share: a second [vdram corners] run on
    the same population replays every evaluation from disk.

    Every snapshot carries a header — magic, a version stamp
    (model version + fingerprint scheme, supplied by the engine), and
    an MD5 checksum of the payload.  {!load} verifies all three before
    unmarshalling, so corrupt, truncated or stale files are silently
    treated as a miss and overwritten on the next {!save} ([Marshal]
    itself offers no safety against hostile bytes; the checksum is the
    guard).  Writes are atomic (temp file + rename), so concurrent
    processes never observe a torn snapshot; the last writer wins. *)

type t

val open_ : ?dir:string -> version:string -> unit -> t
(** A handle on the store directory.  [dir] defaults to
    {!default_dir}; nothing is read or created until {!load}/{!save}.
    [version] stamps every snapshot — loads under a different version
    discard the file. *)

val default_dir : unit -> string
(** [$VDRAM_CACHE_DIR] when set and non-empty, else
    [_build/.vdram-cache] relative to the working directory. *)

val dir : t -> string
val version : t -> string

val path : t -> string -> string
(** The snapshot file a stage name maps to (diagnostics, tests). *)

val save : t -> name:string -> 'a -> unit
(** Write a snapshot atomically, creating the directory if needed.
    I/O failures are swallowed — a cache must never fail the run it
    accelerates. *)

val load : t -> name:string -> 'a option
(** Read a snapshot back.  [None] on any problem: missing file,
    wrong magic, version skew, checksum failure, undecodable payload.
    Type-safety caveat: the caller must request the type that was
    saved under [name]; the version stamp (which the engine derives
    from the model version and fingerprint scheme) is what keeps the
    two sides in agreement. *)

val clear : t -> unit
(** Remove every snapshot file in the store directory (cold-run
    benchmarking, tests). *)
