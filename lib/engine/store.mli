(** Persistent cross-process stage cache.

    A store is a directory of per-stage snapshot files (extraction and
    pattern-mix results, marshalled with their fingerprint keys) that
    repeated CLI invocations share: a second [vdram corners] run on
    the same population replays every evaluation from disk.

    Every snapshot carries a header — magic, a version stamp
    (model version + fingerprint scheme, supplied by the engine), and
    an MD5 checksum of the payload.  {!read} verifies all three before
    unmarshalling ([Marshal] itself offers no safety against hostile
    bytes; the checksum is the guard).  A failing file is not silently
    re-readable garbage: it is moved to [<dir>/quarantine/] with a
    [.reason] sidecar, counted in {!stats}, and reported as
    {!Corrupt} — the cache stays an accelerator, but bad files leave
    an audit trail instead of being rediscovered on every run.

    Transient I/O errors and checksum races (a concurrent writer on a
    filesystem without atomic rename) are retried with exponential
    backoff before a file is declared corrupt.  Writes are atomic
    (temp file + rename), so concurrent processes never observe a torn
    snapshot; the last writer wins.

    A store can be size-capped ({!open_} [?max_bytes], or
    [VDRAM_CACHE_MAX_BYTES]): after every {!save} the oldest snapshot
    files are evicted until the store fits, so a long-lived cache
    directory cannot grow without bound.  The quarantine directory is
    capped independently ([?quarantine_max_bytes], or
    [VDRAM_QUARANTINE_MAX_BYTES], default 32 MiB): after every
    quarantine move the oldest specimens (with their [.reason]
    sidecars) are dropped until the evidence fits — a corrupt-heavy
    run keeps the freshest specimens instead of growing without
    bound. *)

type t

val open_ :
  ?dir:string ->
  ?max_bytes:int ->
  ?quarantine_max_bytes:int ->
  version:string ->
  unit ->
  t
(** A handle on the store directory.  [dir] defaults to
    {!default_dir}; nothing is read or created until {!read}/{!save}.
    [version] stamps every snapshot — loads under a different version
    quarantine the file.  [max_bytes] caps the total size of snapshot
    files (default [VDRAM_CACHE_MAX_BYTES] when set, else uncapped);
    {!save} evicts oldest-first down to the cap.
    [quarantine_max_bytes] caps the quarantine directory the same way
    (default [VDRAM_QUARANTINE_MAX_BYTES], else 32 MiB). *)

val default_dir : unit -> string
(** [$VDRAM_CACHE_DIR] when set and non-empty, else
    [_build/.vdram-cache] relative to the working directory. *)

val dir : t -> string
val version : t -> string
val max_bytes : t -> int option
val quarantine_max_bytes : t -> int option

val path : t -> string -> string
(** The snapshot file a stage name maps to (diagnostics, tests). *)

val quarantine_dir : t -> string
(** Where corrupt or version-skewed snapshots are moved. *)

(** {1 I/O} *)

type 'a read =
  | Hit of 'a              (** verified and decoded *)
  | Missing                (** no snapshot file — a clean cold cache *)
  | Corrupt of string      (** failed after retries; file quarantined *)

val read : ?retries:int -> ?backoff:float -> t -> name:string -> 'a read
(** Read a snapshot with verification, retry and quarantine.  Up to
    [retries] (default 2) re-reads with exponential [backoff] (default
    5 ms base) absorb transient I/O errors and mid-rename races; a
    file still failing is moved to {!quarantine_dir} and reported
    {!Corrupt} with the reason.  Type-safety caveat: the caller must
    request the type that was saved under [name]; the version stamp
    (model version + fingerprint scheme) keeps the two sides in
    agreement. *)

val load : t -> name:string -> 'a option
(** [read] collapsed to an option: [Some] on {!Hit}, [None] otherwise
    (compatibility shim; quarantine and counters still apply). *)

val save : ?retries:int -> ?backoff:float -> t -> name:string -> 'a -> unit
(** Write a snapshot atomically, creating the directory if needed,
    retrying transient failures with backoff.  Persistent I/O failures
    are swallowed — a cache must never fail the run it accelerates.
    A successful save then evicts oldest snapshots past [max_bytes]
    (the file just written is never the victim). *)

val evict : ?keep:string -> t -> int
(** Apply the size cap now: delete oldest-first (by mtime, then name)
    until the snapshot files fit [max_bytes], never deleting the
    [keep] stage.  Returns how many files were removed; [0] without a
    cap. *)

val evict_quarantine : ?keep:string -> t -> int
(** Apply the quarantine size cap now: delete the oldest specimens
    (and their [.reason] sidecars) until the quarantine directory fits
    [quarantine_max_bytes], never deleting the [keep] path (a full
    specimen path, as {!quarantine_dir}[/name.cache]).  Returns how
    many specimens were removed; [0] without a cap.  {!save}-side
    quarantining applies this automatically after every move. *)

val clear : t -> unit
(** Remove every snapshot file in the store directory, including
    quarantined ones (cold-run benchmarking, tests). *)

(** {1 Counters} *)

type io_stats = {
  retries : int;      (** re-read / re-write attempts after failures *)
  discarded : int;    (** snapshots rejected: corrupt, skewed, injected *)
  quarantined : int;  (** rejected files actually moved to quarantine *)
  quarantined_bytes : int;
      (** total bytes of snapshot files moved to quarantine *)
  evicted : int;      (** files removed by the size caps (snapshots and
                          quarantined specimens alike) *)
}

val stats : t -> io_stats
(** Counters accumulated on this handle since {!open_}. *)

val pp_stats : Format.formatter -> io_stats -> unit
