(** Content fingerprints for stage-cache keys.

    A fingerprint is computed {e once} per value — the MD5 digest of
    the value's marshalled bytes ([Marshal.No_sharing], so the bytes
    are a pure function of the structure) — and then compared and
    hashed in O(1)-ish time wherever the stage caches need a key.
    This replaces per-lookup deep hashing
    ([Hashtbl.hash_param 256 256]) and deep structural equality with
    one walk per value plus cheap digest comparisons per lookup.

    The marshalled bytes are retained as a {e witness}: on the
    (cryptographically negligible, but possible) event of a digest
    collision, {!equal} falls back to comparing the bytes, so two
    distinct keys can never alias a cache entry.  Entries restored
    from the persistent store drop their witness ({!trusted}) and are
    identified by digest alone.

    Only marshal plain data: every key the engine fingerprints
    (configurations, floorplans, patterns and their projections) is
    closure-free and immutable. *)

type t

val of_value : 'a -> t
(** Fingerprint a (plain-data) value: one [Marshal] walk plus one
    digest.  Structurally equal values yield equal fingerprints. *)

val combine : t list -> t
(** Fingerprint of a composite key (e.g. configuration × pattern)
    from its parts' fingerprints, without re-marshalling.  Raises
    [Invalid_argument] on the empty list. *)

val trusted : t -> t
(** The same fingerprint with its witness dropped: {!equal} then
    trusts the 128-bit digest.  Used for entries restored from the
    persistent store, where retaining every key's bytes would defeat
    the point of the cache. *)

val equal : t -> t -> bool
(** Digest equality, with a byte-for-byte witness comparison as the
    collision fallback whenever both sides carry witnesses. *)

val hash : t -> int
(** The first 64 digest bits, folded to a non-negative [int]; used to
    pick a cache shard and a hash bucket. *)

val hex : t -> string
(** The digest, hex-encoded (store file names, diagnostics). *)

val scheme_version : string
(** Stamped into the persistent store: entries fingerprinted under a
    different scheme are discarded on load. *)

val pp : Format.formatter -> t -> unit
