(** Deterministic, seeded fault injection for the engine runtime.

    A fault {e plan} — parsed from the [VDRAM_FAULTS] environment
    variable or built in tests — decides, purely from [(seed, batch,
    index)], which items of a supervised batch misbehave and how.
    The decision is a hash, not a stateful generator, so it is
    independent of evaluation order: the same plan faults the same
    items at any job count, which is what lets CI assert an exact
    failure report.

    Grammar (comma- or semicolon-separated [key=value] clauses):

    {v
    seed=N            hash seed (default 0)
    rate=F            fraction of items faulted, 0..1 (default 0.01)
    raise=STAGE       raise inside that stage: geometry|extraction|mix
    stall=SECONDS     sleep that long inside the mix stage instead
    corrupt=store     treat every persistent-store read as corrupt
    v}

    Example: [VDRAM_FAULTS="seed=7,rate=0.01,raise=mix"].

    [raise] and [stall] fire only for items evaluated under
    {!Supervise.map} (the supervised runtime establishes the item
    context); [corrupt=store] applies to every {!Store.read},
    supervised or not — store recovery is transparent, so corrupting
    reads can never change a result, only force recomputation and
    exercise the quarantine path. *)

type stage = Geometry | Extraction | Mix

val stage_name : stage -> string
val stage_of_name : string -> stage option

type action =
  | Raise of stage           (** raise {!Injected} inside the stage *)
  | Stall of stage * float   (** sleep this many seconds inside it *)

type plan = {
  seed : int;
  rate : float;
  action : action option;
  corrupt_store : bool;
}

val none : plan
(** The inert plan: faults nothing, corrupts nothing.  Pass it to
    supervised code to ignore [VDRAM_FAULTS] deliberately. *)

exception Injected of string * int * int
(** [Injected (stage, batch, index)] — the exception a [raise] fault
    throws.  The supervised runtime classifies it as an injected
    failure rather than a model bug. *)

val parse : string -> (plan, string) result
(** Parse the [VDRAM_FAULTS] grammar.  [Error] explains the first bad
    clause. *)

val of_env : unit -> (plan option, string) result
(** The plan from [VDRAM_FAULTS]; [Ok None] when unset or empty. *)

val to_string : plan -> string
(** Round-trippable rendering of a plan (fail-log provenance). *)

val faulted : plan -> batch:int -> index:int -> bool
(** Whether the plan faults this item — the pure hash decision tests
    use to predict the exact failure set. *)

(** {1 Injection points}

    These are called by the engine and store; user code never needs
    them directly. *)

val with_item :
  ?plan:plan -> batch:int -> index:int -> (unit -> 'a) -> 'a
(** Establish the supervised item context (domain-local) around one
    item evaluation.  With a plan, stage hooks inside the call may
    fire; without one, the context still marks the item as supervised
    so stage errors are attributed (see {!Engine.Stage_error}). *)

val supervised : unit -> bool
(** Whether the current domain is inside {!with_item}. *)

val stage_hook : stage -> unit
(** Called at a stage entry: raises {!Injected} or stalls when the
    current item is faulted at this stage, otherwise free. *)

val corrupt_read : name:string -> bool
(** Whether a store read of this snapshot should be treated as
    corrupt, per the {e environment} plan ([corrupt=store]). *)
