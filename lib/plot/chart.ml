(* ASCII charts. *)

type series = {
  label : string;
  points : (float * float) list;
}

let series ~label points = { label; points }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let finite (x, y) = Float.is_finite x && Float.is_finite y

let line ?(width = 64) ?(height = 16) ?(log_y = false) ?(y_unit = "")
    all_series =
  let all_series =
    List.map
      (fun s -> { s with points = List.filter finite s.points })
      all_series
    |> List.filter (fun s -> s.points <> [])
  in
  if all_series = [] then "(no data to plot)\n"
  else begin
    let transform y = if log_y then log10 (Float.max y 1e-300) else y in
    let points =
      List.concat_map
        (fun s -> List.map (fun (x, y) -> (x, transform y)) s.points)
        all_series
    in
    let xs = List.map fst points and ys = List.map snd points in
    let fold f = function
      | [] -> 0.0
      | v :: rest -> List.fold_left f v rest
    in
    let x_min = fold Float.min xs and x_max = fold Float.max xs in
    let y_min = fold Float.min ys and y_max = fold Float.max ys in
    let x_span = if x_max = x_min then 1.0 else x_max -. x_min in
    let y_span = if y_max = y_min then 1.0 else y_max -. y_min in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let y = transform y in
            let col =
              int_of_float
                ((x -. x_min) /. x_span *. float_of_int (width - 1))
            and row =
              height - 1
              - int_of_float
                  ((y -. y_min) /. y_span *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- glyph)
          s.points)
      all_series;
    let b = Buffer.create 2048 in
    let y_of_row row =
      let v =
        y_max
        -. (float_of_int row /. float_of_int (height - 1) *. y_span)
      in
      if log_y then 10.0 ** v else v
    in
    Array.iteri
      (fun row cells ->
        if row mod 4 = 0 || row = height - 1 then
          Buffer.add_string b (Printf.sprintf "%10.3g |" (y_of_row row))
        else Buffer.add_string b (String.make 10 ' ' ^ " |");
        Array.iter (Buffer.add_char b) cells;
        Buffer.add_char b '\n')
      grid;
    Buffer.add_string b (String.make 11 ' ' ^ String.make width '-');
    Buffer.add_char b '\n';
    Buffer.add_string b
      (Printf.sprintf "%10s  %.4g%s%.4g%s\n" "" x_min
         (String.make (max 1 (width - 16)) ' ')
         x_max
         (if y_unit = "" then "" else "  [y: " ^ y_unit ^ "]"));
    List.iteri
      (fun si s ->
        Buffer.add_string b
          (Printf.sprintf "%12s %s\n"
             (String.make 1 glyphs.(si mod Array.length glyphs))
             s.label))
      all_series;
    Buffer.contents b
  end

let bars ?(width = 50) ?(positive_only = false) entries =
  if entries = [] then "(no data to plot)\n"
  else begin
    let magnitude =
      List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0.0
        entries
    in
    let magnitude = if magnitude = 0.0 then 1.0 else magnitude in
    let label_width =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
    in
    let b = Buffer.create 1024 in
    List.iter
      (fun (label, v) ->
        if positive_only then begin
          let cells =
            int_of_float
              (Float.abs v /. magnitude *. float_of_int width +. 0.5)
          in
          Buffer.add_string b
            (Printf.sprintf "%-*s |%-*s %+.2f\n" label_width label width
               (String.make cells '#') v)
        end
        else begin
          (* Centre axis: bars scale to the half width; negatives
             extend left. *)
          let half = width / 2 in
          let cells =
            min half
              (int_of_float
                 (Float.abs v /. magnitude *. float_of_int half +. 0.5))
          in
          let left, right =
            if v < 0.0 then (String.make cells '#', "")
            else ("", String.make cells '#')
          in
          Buffer.add_string b
            (Printf.sprintf "%-*s %*s|%-*s %+.2f\n" label_width label half
               left half right v)
        end)
      entries;
    Buffer.contents b
  end

let blocks = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |]

let sparkline values =
  match List.filter Float.is_finite values with
  | [] -> ""
  | finite_values ->
    let lo = List.fold_left Float.min (List.hd finite_values) finite_values
    and hi =
      List.fold_left Float.max (List.hd finite_values) finite_values
    in
    let span = if hi = lo then 1.0 else hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let idx =
             int_of_float
               ((v -. lo) /. span *. float_of_int (Array.length blocks - 1))
           in
           blocks.(max 0 (min (Array.length blocks - 1) idx)))
         values)
