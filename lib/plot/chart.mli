(** Terminal charts for the benchmark harness: the paper's figures as
    ASCII, no plotting dependency required. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y) pairs *)
}

val series : label:string -> (float * float) list -> series

val line :
  ?width:int -> ?height:int -> ?log_y:bool -> ?y_unit:string ->
  series list -> string
(** A scatter/line chart.  Each series draws with its own glyph
    ([*], [+], [o], [x], [#], [@] cycling); the legend maps glyphs to
    labels; axis ticks are printed at the left edge and below.
    [log_y] uses a log10 vertical scale (energy-per-bit trends).
    Defaults: 64 x 16 plot cells.  Series with no finite points are
    skipped; an empty chart renders a note instead. *)

val bars :
  ?width:int -> ?positive_only:bool -> (string * float) list -> string
(** Horizontal bars, one row per entry, scaled to the largest
    magnitude — the Figure 10 tornado.  Negative values (with
    [positive_only] false, the default) extend left of a centre
    axis. *)

val sparkline : float list -> string
(** One-line trend using block glyphs, e.g. [▇▆▅▃▂▁]. *)
