(* Non-simulating analysis passes over descriptions and elaborated
   configurations. *)

module Q = Vdram_units.Quantity
module Ast = Vdram_dsl.Ast
module Elaborate = Vdram_dsl.Elaborate
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Pattern = Vdram_core.Pattern
module Operation = Vdram_core.Operation
module Model = Vdram_core.Model
module Peak = Vdram_core.Peak
module Timing = Vdram_sim.Timing
module Legality = Vdram_sim.Legality
module Floorplan = Vdram_floorplan.Floorplan
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix
module Suggest = Vdram_diagnostics.Suggest

let lower = String.lowercase_ascii

(* Canonical surface casing for the names the schema stores
   lowercased, so fix-its propose what a person would write. *)
let display_section = function
  | "floorplanphysical" -> "FloorplanPhysical"
  | "floorplansignaling" -> "FloorplanSignaling"
  | "logicblocks" -> "LogicBlocks"
  | s -> String.capitalize_ascii s

let display_keyword = function
  | "io" -> "IO"
  | "cellarray" -> "CellArray"
  | "sizehorizontal" -> "SizeHorizontal"
  | "sizevertical" -> "SizeVertical"
  | "writedata" -> "WriteData"
  | "readdata" -> "ReadData"
  | "rowaddress" -> "RowAddress"
  | "columnaddress" -> "ColumnAddress"
  | "coladdress" -> "ColAddress"
  | "bankaddress" -> "BankAddress"
  | s -> String.capitalize_ascii s

(* ----- span lookup ------------------------------------------------- *)

let locate ast ~section ~keyword ?key () =
  let stmts =
    List.filter
      (fun (s : Ast.stmt) -> lower s.Ast.keyword = lower keyword)
      (List.concat_map
         (fun s -> s.Ast.stmts)
         (Ast.find_sections ast section))
  in
  let fallback () =
    match stmts with
    | s :: _ -> s.Ast.keyword_span
    | [] -> Span.none
  in
  match key with
  | None -> fallback ()
  | Some k ->
    (* Prefer whichever statement actually carries the argument: a
       section may split one keyword over several lines (the example
       files write CellArray twice). *)
    let rec find = function
      | [] -> fallback ()
      | s :: rest ->
        (match Ast.arg_span s k with Some sp -> sp | None -> find rest)
    in
    find stmts

(* ----- dimensional analysis over the raw AST ----------------------- *)

type expected = Dim of Q.dim | Text

type wildcard =
  | Reject          (* unknown keys warn (V0105) *)
  | All_lengths     (* any key, value must be a length (Size* lists) *)
  | Technology      (* keys resolved against the technology registry *)

type keyword_schema = {
  keys : (string * expected) list;
  wildcard : wildcard;
}

let plain keys = { keys; wildcard = Reject }

let bus_schema =
  plain
    [ ("wires", Dim Q.Scalar); ("length", Dim Q.Length); ("start", Text);
      ("end", Text); ("inside", Text); ("fraction", Dim Q.Fraction);
      ("dir", Text); ("nchw", Dim Q.Length); ("pchw", Dim Q.Length);
      ("mux", Text); ("toggle", Dim Q.Fraction) ]

(* One entry per known section (lowercased), mapping its statement
   keywords to the expected dimension of every argument.  This is the
   static mirror of what {!Vdram_dsl.Elaborate} consumes. *)
let schema =
  [ ("device", [ ("part", plain [ ("name", Text); ("node", Dim Q.Length) ]) ]);
    ( "specification",
      [ ("io", plain [ ("width", Dim Q.Scalar); ("datarate", Dim Q.Datarate) ]);
        ( "clock",
          plain [ ("number", Dim Q.Scalar); ("frequency", Dim Q.Frequency) ] );
        ( "control",
          plain
            [ ("frequency", Dim Q.Frequency); ("bankadd", Dim Q.Scalar);
              ("rowadd", Dim Q.Scalar); ("coladd", Dim Q.Scalar);
              ("misc", Dim Q.Scalar) ] );
        ("density", plain [ ("mbits", Dim Q.Scalar) ]);
        ("banks", plain [ ("number", Dim Q.Scalar) ]);
        ( "burst",
          plain [ ("length", Dim Q.Scalar); ("prefetch", Dim Q.Scalar) ] );
        ( "timing",
          plain
            [ ("trc", Dim Q.Time); ("trcd", Dim Q.Time); ("trp", Dim Q.Time) ]
        );
        ( "interface",
          plain
            [ ("predriver", Dim Q.Capacitance);
              ("receiver", Dim Q.Capacitance); ("toggle", Dim Q.Fraction);
              ("bias", Dim Q.Current); ("receivers", Dim Q.Scalar);
              ("activation", Dim Q.Fraction) ] ) ] );
    ( "floorplanphysical",
      [ ( "cellarray",
          plain
            [ ("bitsperbl", Dim Q.Scalar); ("bitsperlwl", Dim Q.Scalar);
              ("bltype", Text); ("page", Dim Q.Scalar);
              ("cslblocks", Dim Q.Scalar); ("wlpitch", Dim Q.Length);
              ("blpitch", Dim Q.Length); ("sastripe", Dim Q.Length);
              ("lwdstripe", Dim Q.Length) ] );
        ("horizontal", plain [ ("blocks", Text) ]);
        ("vertical", plain [ ("blocks", Text) ]);
        ("sizehorizontal", { keys = []; wildcard = All_lengths });
        ("sizevertical", { keys = []; wildcard = All_lengths }) ] );
    ("technology", [ ("set", { keys = []; wildcard = Technology }) ]);
    ( "voltages",
      [ ( "supply",
          plain
            [ ("vdd", Dim Q.Voltage); ("vint", Dim Q.Voltage);
              ("vbl", Dim Q.Voltage); ("vpp", Dim Q.Voltage) ] );
        ( "efficiency",
          plain
            [ ("int", Dim Q.Fraction); ("bl", Dim Q.Fraction);
              ("pp", Dim Q.Fraction) ] );
        ("constant", plain [ ("current", Dim Q.Current) ]) ] );
    ( "floorplansignaling",
      [ ("writedata", bus_schema); ("readdata", bus_schema);
        ("rowaddress", bus_schema); ("columnaddress", bus_schema);
        ("coladdress", bus_schema); ("bankaddress", bus_schema);
        ("command", bus_schema); ("clock", bus_schema) ] );
    ( "logicblocks",
      [ ( "block",
          plain
            [ ("name", Text); ("gates", Dim Q.Scalar);
              ("toggle", Dim Q.Fraction); ("trigger", Text);
              ("wnmos", Dim Q.Length); ("wpmos", Dim Q.Length);
              ("transistors", Dim Q.Scalar); ("layout", Dim Q.Fraction);
              ("wiring", Dim Q.Fraction) ] ) ] );
    ("pattern", [ ("pattern", plain [ ("loop", Text) ]) ]) ]

let technology_entries =
  List.combine Elaborate.technology_keys
    (Elaborate.technology_dims @ [ Q.Scalar ])

let literal_code = function
  | Q.Malformed -> "V0102"
  | Q.Unknown_unit -> "V0103"
  | Q.Mismatch _ -> "V0101"
  | Q.Non_finite -> "V0104"

(* Fix-it for a wrong-dimension literal: the number is usually right
   and the base unit wrong ("trcd=16.5nm"), so keep the number and any
   SI prefix and swap the unit for the expected dimension's symbol.  A
   bare number offers no prefix to anchor the magnitude, and
   dimensionless expectations simply drop the unit.  The candidate is
   re-classified before being proposed. *)
let mismatch_fix span key dim value =
  let num, suffix = Q.split_literal (String.trim value) in
  if num = "" || suffix = "" then []
  else
    let prefix =
      match Vdram_units.Si.split_prefix suffix with
      | Some (_, base) when base <> "" && base <> suffix ->
        String.sub suffix 0 (String.length suffix - String.length base)
      | _ -> ""
    in
    let lit =
      match Q.unit_symbol dim with "" -> num | u -> num ^ prefix ^ u
    in
    if lit = String.trim value then []
    else
      match Q.classify dim lit with
      | Ok _ -> [ Fix.v ~span (key ^ "=" ^ lit) ]
      | Error _ -> []

let dimensions ast =
  let out = ref [] in
  let add d = out := d :: !out in
  let check_literal span key dim value =
    match Q.classify dim value with
    | Ok _ -> ()
    | Error (kind, msg) ->
      let fixes =
        match kind with
        | Q.Mismatch _ -> mismatch_fix span key dim value
        | _ -> []
      in
      let help =
        match fixes with
        | { Fix.replacement; _ } :: _ ->
          Some (Printf.sprintf "did you mean %s?" replacement)
        | [] -> None
      in
      add (D.errorf ~code:(literal_code kind) ~span ?help ~fixes "%s: %s" key msg)
  in
  List.iter
    (fun (sec : Ast.section) ->
      match List.assoc_opt (lower sec.Ast.section_name) schema with
      | None ->
        let help, fixes =
          match
            Suggest.nearest ~candidates:(List.map fst schema)
              sec.Ast.section_name
          with
          | Some best ->
            let best = display_section best in
            ( Printf.sprintf
                "the whole section is ignored by elaboration; did you \
                 mean %s?"
                best,
              [ Fix.v ~span:sec.Ast.section_span best ] )
          | None -> ("the whole section is ignored by elaboration", [])
        in
        add
          (D.warningf ~code:"V0106" ~span:sec.Ast.section_span ~help ~fixes
             "unknown section %S" sec.Ast.section_name)
      | Some keywords ->
        List.iter
          (fun (stmt : Ast.stmt) ->
            match List.assoc_opt (lower stmt.Ast.keyword) keywords with
            | None ->
              let help, fixes =
                match
                  Suggest.nearest ~candidates:(List.map fst keywords)
                    stmt.Ast.keyword
                with
                | Some best ->
                  let best = display_keyword best in
                  ( Some (Printf.sprintf "did you mean %s?" best),
                    [ Fix.v ~span:stmt.Ast.keyword_span best ] )
                | None -> (None, [])
              in
              add
                (D.warningf ~code:"V0107" ~span:stmt.Ast.keyword_span ?help
                   ~fixes "unknown keyword %S in section %s" stmt.Ast.keyword
                   sec.Ast.section_name)
            | Some ks ->
              List.iter2
                (fun (key, value) (_, span) ->
                  match ks.wildcard with
                  | Technology ->
                    (match
                       List.assoc_opt (lower key) technology_entries
                     with
                     | None ->
                       let help, fixes =
                         match
                           Suggest.nearest
                             ~candidates:(List.map fst technology_entries)
                             key
                         with
                         | Some best ->
                           ( Some (Printf.sprintf "did you mean %s?" best),
                             [ Fix.v
                                 ~span:
                                   { span with
                                     Span.col_end =
                                       span.Span.col_start
                                       + String.length key
                                   }
                                 best ] )
                         | None -> (None, [])
                       in
                       add
                         (D.errorf ~code:"V0201" ~span ?help ~fixes
                            "unknown technology parameter %S" key)
                     | Some dim -> check_literal span key dim value)
                  | All_lengths -> check_literal span key Q.Length value
                  | Reject ->
                    (match List.assoc_opt (lower key) ks.keys with
                     | None ->
                       let help, fixes =
                         match
                           Suggest.nearest ~candidates:(List.map fst ks.keys)
                             key
                         with
                         | Some best ->
                           ( Printf.sprintf
                               "the argument is ignored by elaboration; \
                                did you mean %s?"
                               best,
                             [ Fix.v
                                 ~span:
                                   { span with
                                     Span.col_end =
                                       span.Span.col_start
                                       + String.length key
                                   }
                                 best ] )
                         | None ->
                           ("the argument is ignored by elaboration", [])
                       in
                       add
                         (D.warningf ~code:"V0105" ~span ~help ~fixes
                            "unknown argument %S to %s" key stmt.Ast.keyword)
                     | Some Text -> ()
                     | Some (Dim dim) -> check_literal span key dim value))
                stmt.Ast.args stmt.Ast.arg_spans;
              if lower stmt.Ast.keyword = "pattern" then
                List.iter2
                  (fun tok span ->
                    match Pattern.parse ~name:"lint" tok with
                    | Ok _ -> ()
                    | Error msg ->
                      add (D.errorf ~code:"V0206" ~span "%s" msg))
                  stmt.Ast.positional stmt.Ast.positional_spans)
          sec.Ast.stmts)
    ast;
  List.rev !out

(* ----- timing-constraint consistency ------------------------------- *)

let timing ~ast cfg =
  let out = ref [] in
  let add d = out := d :: !out in
  let s = cfg.Config.spec in
  let at key = locate ast ~section:"specification" ~keyword:"timing" ~key () in
  let positive = ref true in
  List.iter
    (fun (name, v, key) ->
      if (not (Float.is_finite v)) || v <= 0.0 then begin
        positive := false;
        add
          (D.errorf ~code:"V0502" ~span:(at key)
             "%s is %g s; timing parameters must be positive" name v)
      end)
    [ ("tRC", s.Spec.trc, "trc"); ("tRCD", s.Spec.trcd, "trcd");
      ("tRP", s.Spec.trp, "trp"); ("tFAW", s.Spec.tfaw, "tfaw") ];
  if !positive then begin
    let ns v = Q.to_string Q.Time v in
    if s.Spec.trcd +. s.Spec.trp > s.Spec.trc *. (1.0 +. 1e-9) then
      add
        (D.errorf ~code:"V0501" ~span:(at "trc")
           ~help:"raise trc or shrink trcd/trp so trcd + trp <= trc"
           "tRCD (%s) plus tRP (%s) exceed tRC (%s): the row cannot \
            complete a cycle"
           (ns s.Spec.trcd) (ns s.Spec.trp) (ns s.Spec.trc));
    let beats =
      float_of_int s.Spec.burst_length /. Spec.bits_per_clock s
    in
    (* Datasheet rates are rounded (5.333 Gbps on a 2.667 GHz clock
       gives 16.003 "beats"); only a genuinely fractional occupancy,
       half a beat and the like, deserves a warning. *)
    if
      Float.is_finite beats
      && Float.abs (beats -. Float.round beats) > 0.05
    then
      add
        (D.warningf ~code:"V0503"
           ~span:
             (locate ast ~section:"specification" ~keyword:"burst"
                ~key:"length" ())
           "burst of %d bits spans %.3f command clocks; partial beats \
            waste bus slots"
           s.Spec.burst_length beats);
    let t = Timing.of_config cfg in
    if t.Timing.trefi < t.Timing.trfc then
      add
        (D.warningf ~code:"V0504" ~span:(at "trc")
           "refresh interval (%d clocks) is shorter than the refresh \
            cycle time (%d clocks): the device refreshes continuously"
           t.Timing.trefi t.Timing.trfc)
  end;
  List.rev !out

(* ----- finiteness of the derived energy tables --------------------- *)

let finiteness cfg =
  let out = ref [] in
  let add d = out := d :: !out in
  List.iter
    (fun op ->
      let e = Operation.energy cfg op in
      if not (Float.is_finite e) then
        add
          (D.errorf ~code:"V0401"
             "energy of %s is %g: a model input poisons the energy table"
             (Operation.name op) e)
      else if e < 0.0 then
        add
          (D.warningf ~code:"V0402" "energy of %s is negative (%g J)"
             (Operation.name op) e))
    Operation.all;
  let power name v =
    if not (Float.is_finite v) then
      add (D.errorf ~code:"V0403" "%s evaluates to %g" name v)
  in
  power "background power" (Model.background_power cfg);
  List.iter
    (fun st ->
      power
        (Printf.sprintf "%s power" (Model.state_name st))
        (Model.state_power cfg st))
    [ Model.Active_standby; Model.Precharge_standby; Model.Power_down;
      Model.Self_refresh ];
  power "refresh power" (Model.refresh_power cfg);
  power "burst-refresh current" (Model.idd5b cfg);
  List.iter
    (fun (p : Peak.t) ->
      if not (Float.is_finite p.Peak.current) then
        add
          (D.errorf ~code:"V0404" "peak current of %s is %g"
             (Operation.name p.Peak.operation) p.Peak.current))
    (Peak.all cfg);
  if not (Float.is_finite (Peak.worst_case cfg)) then
    add
      (D.errorf ~code:"V0404" "worst-case supply current is not finite");
  List.rev !out

(* ----- pattern / specification reachability ------------------------ *)

let pattern ~ast cfg (p : Pattern.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let span = locate ast ~section:"pattern" ~keyword:"pattern" () in
  let s = cfg.Config.spec in
  let acts = Pattern.count p Pattern.Act
  and rds = Pattern.count p Pattern.Rd
  and wrs = Pattern.count p Pattern.Wr
  and cycles = Pattern.cycles p in
  let columns = rds + wrs in
  if acts = 0 && columns > 0 then
    add
      (D.warningf ~code:"V0601" ~span
         ~help:"add an act (and pre) to the loop, or model standby \
                with an all-nop pattern"
         "pattern issues %d column commands but never activates a row"
         columns);
  let cpc = Spec.clocks_per_column_command s in
  if columns * cpc > cycles then
    add
      (D.warningf ~code:"V0603" ~span
         ~help:"lengthen the loop or drop column commands"
         "%d column commands x %d clocks of burst data exceed the \
          %d-cycle loop: the data bus is oversubscribed"
         columns cpc cycles);
  (* The former V0602 aggregate activate-rate bounds lived here; the
     bank-aware {!bank_legality} replay supersedes them (it catches
     everything they did, plus placements the averages missed). *)
  List.rev !out

(* ----- floorplan signaling coordinate checks ----------------------- *)

let parse_coord raw =
  match String.split_on_char '_' raw with
  | [ i; j ] ->
    (match (int_of_string_opt i, int_of_string_opt j) with
     | Some i, Some j -> Some (i, j)
     | _ -> None)
  | _ -> None

let floorplan ~ast cfg =
  let out = ref [] in
  let add d = out := d :: !out in
  let fp = cfg.Config.floorplan in
  let nh = Array.length fp.Floorplan.horizontal
  and nv = Array.length fp.Floorplan.vertical in
  let arg_or_keyword_span (stmt : Ast.stmt) key =
    match Ast.arg_span stmt key with
    | Some sp -> sp
    | None -> stmt.Ast.keyword_span
  in
  let in_grid (stmt : Ast.stmt) key =
    (* Elaboration reports out-of-grid coordinates (V0701) too; this
       pass only runs once elaboration is clean, so the check here
       matters when the pass is used standalone. *)
    match Ast.arg stmt key with
    | None -> ()
    | Some raw ->
      (match parse_coord raw with
       | Some (i, j) when i < 0 || i >= nh || j < 0 || j >= nv ->
         add
           (D.errorf ~code:"V0701" ~span:(arg_or_keyword_span stmt key)
              ~notes:
                [ Printf.sprintf
                    "the declared grid is %d horizontal x %d vertical \
                     blocks (coordinates 0_0 to %d_%d)"
                    nh nv (nh - 1) (nv - 1) ]
              "%s=%s is outside the floorplan grid" key raw
           )
       | _ -> ())
  in
  List.iter
    (fun (sec : Ast.section) ->
      if lower sec.Ast.section_name = "floorplansignaling" then
        List.iter
          (fun (stmt : Ast.stmt) ->
            List.iter (in_grid stmt) [ "start"; "end"; "inside" ];
            (match (Ast.arg stmt "start", Ast.arg stmt "end") with
             | Some s, Some e
               when parse_coord s <> None && parse_coord s = parse_coord e
               ->
               add
                 (D.warningf ~code:"V0702"
                    ~span:(arg_or_keyword_span stmt "end")
                    ~help:
                      "route between two distinct blocks, or use \
                       inside= fraction= for a run within one block"
                    "start=%s and end=%s name the same grid cell: the \
                     route has zero length"
                    s e)
             | _ -> ());
            match Ast.arg stmt "fraction" with
            | None -> ()
            | Some raw ->
              (match Q.classify Q.Fraction raw with
               | Ok f when f <= 0.0 || f > 1.0 ->
                 add
                   (D.warningf ~code:"V0703"
                      ~span:(arg_or_keyword_span stmt "fraction")
                      ~help:
                        "the fraction scales the block's own extent; \
                         use a value in (0, 1], e.g. fraction=25%"
                      "inside= fraction %g is outside (0, 1]" f)
               | _ -> ()))
          sec.Ast.stmts)
    ast;
  List.rev !out

(* ----- bank-aware pattern legality (shared with the simulator) ----- *)

let pattern_stmt ast =
  List.find_opt
    (fun (st : Ast.stmt) -> lower st.Ast.keyword = "pattern")
    (List.concat_map
       (fun (sec : Ast.section) -> sec.Ast.stmts)
       (Ast.find_sections ast "pattern"))

let pattern_slot_span ast ~cycles slot =
  match pattern_stmt ast with
  | Some st when List.length st.Ast.positional_spans = cycles ->
    List.nth st.Ast.positional_spans slot
  | Some st -> st.Ast.keyword_span
  | None -> Span.none

let bank_legality ~ast cfg (p : Pattern.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let s = cfg.Config.spec in
  let banks = s.Spec.banks in
  let t = Timing.of_config cfg in
  let cycles = Pattern.cycles p in
  let acts = Pattern.count p Pattern.Act in
  if cycles = 0 || acts = 0 || banks < 1 then []
  else begin
    (* Replay the loop through the simulator's own legality component
       (shared with `vdram check`'s whole-sweep analysis): activates
       rotate round-robin across banks the way a datasheet
       current-measurement loop does, for enough iterations to wrap
       the bank rotation at least once. *)
    let viols, replayed = Legality.replay_pattern t ~banks p in
    let span_of (v : Legality.violation) =
      pattern_slot_span ast ~cycles (v.Legality.at mod cycles)
    in
    let emit kind code describe =
      match
        List.filter (fun v -> v.Legality.kind = kind) viols
      with
      | [] -> ()
      | v :: _ as vs ->
        add
          (D.warningf ~code ~span:(span_of v)
             ~notes:
               [ Printf.sprintf
                   "%d of the commands replayed over %d loop cycles \
                    violate this window"
                   (List.length vs) replayed;
                 "found by replaying the loop through the simulator's \
                  own scheduler legality, so the simulator rejects \
                  this pattern too" ]
             ~help:
               "space the activates further apart in the loop, or pad \
                it with nop cycles"
             "%s" (describe v))
    in
    emit Legality.Act_to_act "V0801" (fun v ->
        Printf.sprintf
          "slot %d re-activates bank %d inside its tRC window (cycle \
           %d; next legal activate at %d)"
          (v.Legality.at mod cycles) v.Legality.bank v.Legality.at
          v.Legality.earliest);
    emit Legality.Act_spacing "V0802" (fun v ->
        Printf.sprintf
          "slot %d activates bank %d only %d cycles after the previous \
           activate; tRRD requires %d"
          (v.Legality.at mod cycles) v.Legality.bank
          (v.Legality.at - (v.Legality.earliest - t.Timing.trrd))
          t.Timing.trrd);
    emit Legality.Four_activate "V0803" (fun v ->
        Printf.sprintf
          "slot %d issues a fifth activate inside the four-activate \
           window (tFAW = %d clocks)"
          (v.Legality.at mod cycles) t.Timing.tfaw);
    List.rev !out
  end
