(** The lint driver: run every static-analysis pass over a description
    and collect the diagnostics, source-ordered.

    The pipeline mirrors elaboration but never simulates:

    + parse (collecting [V00xx] syntax findings),
    + {!Passes.dimensions} over the raw AST ([V01xx]/[V02xx]),
    + error-accumulating elaboration ([V02xx], [V0701]) — every
      problem in one run, deduplicated against the dimensions pass by
      (code, span),
    + when the description elaborated without errors:
      {!Vdram_core.Validate} over the configuration, each finding
      placed back onto the statement it concerns ([V03xx]),
      {!Passes.finiteness}, {!Passes.timing}, {!Passes.floorplan},
      {!Passes.pattern} and {!Passes.bank_legality}
      ([V04xx]-[V08xx]). *)

type report = {
  file : string option;
  source : string array;            (** the input split into lines *)
  diagnostics : Vdram_diagnostics.Diagnostic.t list;  (** source order *)
}

val run : ?file:string -> string -> report
(** Lint a description source.  [file] labels the spans. *)

val run_file : string -> report
(** Lint a file; I/O failures become a [V0006] diagnostic. *)

val suppress : codes:string list -> report -> report
(** Drop warnings whose code is listed ([--allow]).  Errors are never
    suppressed. *)

val errors : report -> int
val warnings : report -> int

val pp_text : Format.formatter -> report -> unit
(** Compiler-style rendering of every diagnostic, with source excerpts
    and caret underlines. *)

val to_json : report -> string
(** One JSON object:
    [{"file":...,"errors":N,"warnings":M,"diagnostics":[...]}]. *)

val fixes : ?only:string -> report -> Vdram_diagnostics.Fix.t list
(** Every structured fix-it attached to the report's diagnostics, in
    diagnostic order.  [only] restricts the harvest to diagnostics
    with that code (backs [vdram lint --fix-only CODE]). *)

val apply_fixes : ?only:string -> report -> string * int
(** The report's source with all non-overlapping fix-its applied, and
    how many were applied (see {!Vdram_diagnostics.Fix.apply}).
    [only] as in {!fixes}. *)

val preview_fixes : ?context:int -> ?only:string -> report -> (string * int) option
(** A unified diff of what {!apply_fixes} would change, and how many
    fix-its it covers; [None] when no fix applies.  Backs
    [vdram lint --fix --dry-run].  [only] as in {!fixes}. *)

val to_sarif : report list -> string
(** A single SARIF 2.1.0 log covering the given reports (one run, one
    result per diagnostic, fix-its as [fixes]). *)

val exit_code : ?deny_warnings:bool -> report list -> int
(** The [vdram lint] exit-code contract: [2] when any report carries
    errors, [1] when [deny_warnings] and any report carries warnings,
    [0] otherwise. *)
