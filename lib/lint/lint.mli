(** The lint driver: run every static-analysis pass over a description
    and collect the diagnostics, source-ordered.

    The pipeline mirrors elaboration but never simulates:

    + parse (collecting [V00xx] syntax findings),
    + {!Passes.dimensions} over the raw AST ([V01xx]/[V02xx]) — when it
      finds errors the driver stops, since elaboration would only
      repeat the first of them,
    + elaborate (its error, if any, is already coded and spanned),
    + {!Vdram_core.Validate} over the configuration, each finding
      placed back onto the statement it concerns ([V03xx]),
    + {!Passes.finiteness}, {!Passes.timing} and {!Passes.pattern}
      ([V04xx]-[V06xx]). *)

type report = {
  file : string option;
  source : string array;            (** the input split into lines *)
  diagnostics : Vdram_diagnostics.Diagnostic.t list;  (** source order *)
}

val run : ?file:string -> string -> report
(** Lint a description source.  [file] labels the spans. *)

val run_file : string -> report
(** Lint a file; I/O failures become a [V0006] diagnostic. *)

val suppress : codes:string list -> report -> report
(** Drop warnings whose code is listed ([--allow]).  Errors are never
    suppressed. *)

val errors : report -> int
val warnings : report -> int

val pp_text : Format.formatter -> report -> unit
(** Compiler-style rendering of every diagnostic, with source excerpts
    and caret underlines. *)

val to_json : report -> string
(** One JSON object:
    [{"file":...,"errors":N,"warnings":M,"diagnostics":[...]}]. *)
