(** Minimal unified diffs, for previewing fix-its without rewriting
    the file ([vdram lint --fix --dry-run]). *)

val render :
  ?context:int -> path:string -> before:string -> after:string -> unit ->
  string
(** [render ~path ~before ~after ()] is a unified diff from [before]
    to [after] with [--- a/path] / [+++ b/path] headers and hunks of
    [context] (default 3) surrounding lines.  Empty when the texts are
    equal. *)
