(* The lint driver: description in, sorted diagnostics out. *)

module Parser = Vdram_dsl.Parser
module Elaborate = Vdram_dsl.Elaborate
module Ast = Vdram_dsl.Ast
module Validate = Vdram_core.Validate
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic

type report = {
  file : string option;
  source : string array;
  diagnostics : D.t list;
}

let errors r = D.count D.Error r.diagnostics
let warnings r = D.count D.Warning r.diagnostics

(* Where each spanless Validate finding belongs in the source: the
   statement (and argument) whose value the check is about.  Defaulted
   values legitimately have no span. *)
let validate_location =
  [ ("V0301", ("voltages", "supply", Some "vpp"));
    ("V0302", ("voltages", "supply", Some "vbl"));
    ("V0303", ("voltages", "supply", Some "vint"));
    ("V0304", ("specification", "density", Some "mbits"));
    ("V0305", ("specification", "density", Some "mbits"));
    ("V0306", ("floorplanphysical", "cellarray", Some "page"));
    ("V0307", ("floorplanphysical", "cellarray", Some "sastripe"));
    ("V0308", ("floorplanphysical", "cellarray", Some "lwdstripe"));
    ("V0309", ("specification", "interface", Some "activation"));
    ("V0310", ("specification", "burst", Some "length"));
    ("V0311", ("specification", "burst", Some "length"));
    ("V0312", ("voltages", "efficiency", None));
    ("V0313", ("logicblocks", "block", Some "toggle"));
    ("V0314", ("specification", "interface", Some "toggle")) ]

let place_validate ast (d : D.t) =
  if not (Span.is_none d.D.span) then d
  else
    match List.assoc_opt d.D.code validate_location with
    | None -> d
    | Some (section, keyword, key) ->
      { d with D.span = Passes.locate ast ~section ~keyword ?key () }

(* A pass must never crash the linter: surface the exception as a
   spanless internal error instead. *)
let guarded pass =
  try pass () with
  | e ->
    [ D.errorf ~code:"V0200" "internal analysis failure: %s"
        (Printexc.to_string e) ]

let run ?file source =
  let result, parse_warnings = Parser.parse_with_warnings ?file source in
  let diagnostics =
    match result with
    | Error e -> parse_warnings @ [ Parser.to_diagnostic e ]
    | Ok ast ->
      let dims = guarded (fun () -> Passes.dimensions ast) in
      if List.exists D.is_error dims then
        (* Elaboration would stop at the first of these anyway; the
           pass already reported them all, with spans. *)
        parse_warnings @ dims
      else begin
        match Elaborate.elaborate ast with
        | Error e -> parse_warnings @ dims @ [ Parser.to_diagnostic e ]
        | Ok { Elaborate.config; pattern } ->
          let semantic =
            guarded (fun () ->
                List.map (place_validate ast) (Validate.check config))
          in
          let physics = guarded (fun () -> Passes.finiteness config) in
          let times = guarded (fun () -> Passes.timing ~ast config) in
          let pat =
            match pattern with
            | None -> []
            | Some p -> guarded (fun () -> Passes.pattern ~ast config p)
          in
          parse_warnings @ dims @ semantic @ physics @ times @ pat
      end
  in
  {
    file;
    source = Array.of_list (String.split_on_char '\n' source);
    diagnostics = List.stable_sort D.compare_source diagnostics;
  }

let run_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> run ~file:path source
  | exception Sys_error msg ->
    {
      file = Some path;
      source = [||];
      diagnostics = [ D.errorf ~code:"V0006" "%s" msg ];
    }

let suppress ~codes r =
  if codes = [] then r
  else
    {
      r with
      diagnostics =
        List.filter
          (fun (d : D.t) -> D.is_error d || not (List.mem d.D.code codes))
          r.diagnostics;
    }

let pp_text ppf r =
  List.iter
    (fun d -> Format.fprintf ppf "%a@." (D.pp_rich ~source:r.source) d)
    r.diagnostics

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  (match r.file with
   | Some f ->
     Buffer.add_string buf "\"file\":";
     add_json_string buf f;
     Buffer.add_char buf ','
   | None -> ());
  Printf.bprintf buf "\"errors\":%d,\"warnings\":%d,\"diagnostics\":["
    (errors r) (warnings r);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      D.to_json buf d)
    r.diagnostics;
  Buffer.add_string buf "]}";
  Buffer.contents buf
