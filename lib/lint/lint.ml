(* The lint driver: description in, sorted diagnostics out. *)

module Parser = Vdram_dsl.Parser
module Elaborate = Vdram_dsl.Elaborate
module Ast = Vdram_dsl.Ast
module Validate = Vdram_core.Validate
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix
module Sarif = Vdram_diagnostics.Sarif

type report = {
  file : string option;
  source : string array;
  diagnostics : D.t list;
}

let errors r = D.count D.Error r.diagnostics
let warnings r = D.count D.Warning r.diagnostics

(* Where each spanless Validate finding belongs in the source: the
   statement (and argument) whose value the check is about.  Defaulted
   values legitimately have no span. *)
let validate_location =
  [ ("V0301", ("voltages", "supply", Some "vpp"));
    ("V0302", ("voltages", "supply", Some "vbl"));
    ("V0303", ("voltages", "supply", Some "vint"));
    ("V0304", ("specification", "density", Some "mbits"));
    ("V0305", ("specification", "density", Some "mbits"));
    ("V0306", ("floorplanphysical", "cellarray", Some "page"));
    ("V0307", ("floorplanphysical", "cellarray", Some "sastripe"));
    ("V0308", ("floorplanphysical", "cellarray", Some "lwdstripe"));
    ("V0309", ("specification", "interface", Some "activation"));
    ("V0310", ("specification", "burst", Some "length"));
    ("V0311", ("specification", "burst", Some "length"));
    ("V0312", ("voltages", "efficiency", None));
    ("V0313", ("logicblocks", "block", Some "toggle"));
    ("V0314", ("specification", "interface", Some "toggle")) ]

let place_validate ast (d : D.t) =
  if not (Span.is_none d.D.span) then d
  else
    match List.assoc_opt d.D.code validate_location with
    | None -> d
    | Some (section, keyword, key) ->
      { d with D.span = Passes.locate ast ~section ~keyword ?key () }

(* A pass must never crash the linter: surface the exception as a
   spanless internal error instead. *)
let guarded pass =
  try pass () with
  | e ->
    [ D.errorf ~code:"V0200" "internal analysis failure: %s"
        (Printexc.to_string e) ]

(* The dimensions pass and error-accumulating elaboration see the same
   literals, so the same finding can be reported twice at one span;
   keep the first occurrence of every (code, span) pair, then drop
   warnings that sit exactly on a span an error already points at
   (e.g. an unknown-keyword warning under an unknown-bus error). *)
let dedup diags =
  let seen = Hashtbl.create 64 in
  let keep =
    List.filter
      (fun (d : D.t) ->
        let k = (d.D.code, d.D.span) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      diags
  in
  let error_spans =
    List.filter_map
      (fun (d : D.t) ->
        if D.is_error d && not (Span.is_none d.D.span) then Some d.D.span
        else None)
      keep
  in
  List.filter
    (fun (d : D.t) ->
      D.is_error d
      || Span.is_none d.D.span
      || not (List.mem d.D.span error_spans))
    keep

let run ?file source =
  let result, parse_warnings = Parser.parse_with_warnings ?file source in
  let diagnostics =
    match result with
    | Error e -> parse_warnings @ [ Parser.to_diagnostic e ]
    | Ok ast ->
      let dims = guarded (fun () -> Passes.dimensions ast) in
      let config, elab =
        try Elaborate.elaborate ast
        with e ->
          ( None,
            [ D.errorf ~code:"V0200" "internal elaboration failure: %s"
                (Printexc.to_string e) ] )
      in
      let front = dedup (parse_warnings @ dims @ elab) in
      if List.exists D.is_error front then front
      else begin
        match config with
        | None -> front
        | Some { Elaborate.config = cfg; pattern } ->
          let semantic =
            guarded (fun () ->
                List.map (place_validate ast) (Validate.check cfg))
          in
          let physics = guarded (fun () -> Passes.finiteness cfg) in
          let times = guarded (fun () -> Passes.timing ~ast cfg) in
          let fp = guarded (fun () -> Passes.floorplan ~ast cfg) in
          let pat =
            match pattern with
            | None -> []
            | Some p ->
              guarded (fun () -> Passes.pattern ~ast cfg p)
              @ guarded (fun () -> Passes.bank_legality ~ast cfg p)
          in
          front @ semantic @ physics @ times @ fp @ pat
      end
  in
  {
    file;
    source = Array.of_list (String.split_on_char '\n' source);
    diagnostics = List.stable_sort D.compare_source diagnostics;
  }

let run_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> run ~file:path source
  | exception Sys_error msg ->
    {
      file = Some path;
      source = [||];
      diagnostics = [ D.errorf ~code:"V0006" "%s" msg ];
    }

let suppress ~codes r =
  if codes = [] then r
  else
    {
      r with
      diagnostics =
        List.filter
          (fun (d : D.t) -> D.is_error d || not (List.mem d.D.code codes))
          r.diagnostics;
    }

let pp_text ppf r =
  List.iter
    (fun d -> Format.fprintf ppf "%a@." (D.pp_rich ~source:r.source) d)
    r.diagnostics

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  (match r.file with
   | Some f ->
     Buffer.add_string buf "\"file\":";
     add_json_string buf f;
     Buffer.add_char buf ','
   | None -> ());
  Printf.bprintf buf "\"errors\":%d,\"warnings\":%d,\"diagnostics\":["
    (errors r) (warnings r);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      D.to_json buf d)
    r.diagnostics;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ----- fix-its and machine formats --------------------------------- *)

(* [only] narrows fix harvesting to the diagnostics carrying one code,
   so a caller can apply a single class of rewrite and leave the rest
   of the file untouched. *)
let fixes ?only r =
  let wanted (d : D.t) =
    match only with None -> true | Some c -> String.equal c d.D.code
  in
  List.concat_map
    (fun (d : D.t) -> if wanted d then d.D.fixes else [])
    r.diagnostics

let apply_fixes ?only r =
  let source = String.concat "\n" (Array.to_list r.source) in
  Fix.apply ~source (fixes ?only r)

let preview_fixes ?(context = 3) ?only r =
  let before = String.concat "\n" (Array.to_list r.source) in
  let after, applied = Fix.apply ~source:before (fixes ?only r) in
  if applied = 0 then None
  else
    let path = Option.value ~default:"<stdin>" r.file in
    Some (Udiff.render ~context ~path ~before ~after (), applied)

let to_sarif reports =
  Sarif.render
    (List.map (fun r -> (r.file, r.diagnostics)) reports)

let exit_code ?(deny_warnings = false) reports =
  if List.exists (fun r -> errors r > 0) reports then 2
  else if deny_warnings && List.exists (fun r -> warnings r > 0) reports
  then 1
  else 0
