(** The [vdram check] driver: abstract interpretation of the energy
    model over a configuration box.

    Where [vdram lint] inspects one concrete configuration, check
    proves facts about a whole neighbourhood of them: guaranteed
    power/current/energy-per-bit bounds over the declared lens scale
    ranges, per-lens monotonicity certificates (the contract a search
    pruner needs to discard dominated candidates soundly), and
    whole-sweep legality of the pattern loop across the fourteen
    roadmap generations ([V09xx]).  Findings are ordinary
    {!Vdram_diagnostics.Diagnostic.t} values inside a {!Lint.report},
    so every lint renderer — text, JSON, SARIF, fix-its — applies. *)

type t = {
  report : Lint.report;
      (** check findings ([V09xx]) in source order; parse or
          elaboration errors when the description is broken *)
  certificate : Vdram_absint.Certificate.t option;
      (** [None] exactly when the description did not elaborate *)
}

val default_axes : unit -> Vdram_absint.Abox.axis list
(** The default certified box: the voltage and interface lenses, each
    over its group's declared default range. *)

val metric_for : Vdram_core.Pattern.t -> Vdram_absint.Monotone.metric
(** Energy per bit when the pattern moves data, average power
    otherwise. *)

val run :
  ?axes:Vdram_absint.Abox.axis list ->
  ?splits:int ->
  ?max_cells:int ->
  ?samples:int ->
  ?seed:int ->
  ?file:string ->
  string ->
  t
(** Check a description source.  [axes] defaults to
    {!default_axes} ()); [splits] (default 4) is the branch-and-bound
    depth behind the bounds; [max_cells] (default 32) the deepest
    monotonicity partition; [samples] (default 0) the number of
    concrete random configurations drawn from the box and asserted
    inside the bounds, recorded in the certificate's [samples]
    entry; [seed] fixes the sample stream. *)

val run_file :
  ?axes:Vdram_absint.Abox.axis list ->
  ?splits:int ->
  ?max_cells:int ->
  ?samples:int ->
  ?seed:int ->
  string ->
  t
(** {!run} on a file; I/O failures become a [V0006] diagnostic. *)
