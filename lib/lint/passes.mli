(** The individual analysis passes behind [vdram lint].

    None of these simulate: they inspect the raw AST (spans intact)
    and cheap derived quantities of the elaborated configuration, and
    emit {!Vdram_diagnostics.Diagnostic.t} values with stable codes. *)

val locate :
  Vdram_dsl.Ast.t -> section:string -> keyword:string -> ?key:string ->
  unit -> Vdram_diagnostics.Span.t
(** Best-effort source span for "the statement (or its [key=] argument)
    of this keyword in this section", case-insensitive; {!Vdram_diagnostics.Span.none}
    when the description never wrote it (defaulted values). *)

val dimensions : Vdram_dsl.Ast.t -> Vdram_diagnostics.Diagnostic.t list
(** Dimensional analysis: every literal in the description is checked
    against the dimension elaboration expects ([V0101]-[V0104]),
    unknown sections/keywords/arguments are flagged ([V0105]-[V0107]),
    technology keys are resolved against the registry ([V0201]) and
    pattern commands against the command set ([V0206]).  Runs without
    elaborating, so it reports {e all} offending literals at once
    rather than stopping at the first. *)

val timing :
  ast:Vdram_dsl.Ast.t -> Vdram_core.Config.t ->
  Vdram_diagnostics.Diagnostic.t list
(** Timing-constraint consistency: non-positive core timings
    ([V0502]), tRCD + tRP exceeding tRC ([V0501]), bursts spanning
    fractional command clocks ([V0503]), refresh interval below the
    refresh cycle time ([V0504]). *)

val finiteness :
  Vdram_core.Config.t -> Vdram_diagnostics.Diagnostic.t list
(** Evaluates the operation energies, state powers and peak currents
    and reports non-finite ([V0401], [V0403], [V0404]) or negative
    ([V0402]) entries — the symptom of a poisoned input reaching the
    energy tables. *)

val pattern :
  ast:Vdram_dsl.Ast.t -> Vdram_core.Config.t -> Vdram_core.Pattern.t ->
  Vdram_diagnostics.Diagnostic.t list
(** Pattern/specification reachability: column commands without an
    activate ([V0601]), data-bus oversubscription ([V0603]).  The old
    aggregate activate-rate bounds ([V0602]) are superseded by
    {!bank_legality}. *)

val floorplan :
  ast:Vdram_dsl.Ast.t -> Vdram_core.Config.t ->
  Vdram_diagnostics.Diagnostic.t list
(** [FloorplanSignaling] coordinate checks against the declared grid:
    out-of-grid [start=]/[end=]/[inside=] coordinates ([V0701], also
    caught during elaboration), zero-length routes between identical
    coordinates ([V0702]) and [fraction=] values outside (0, 1]
    ([V0703]). *)

val pattern_stmt : Vdram_dsl.Ast.t -> Vdram_dsl.Ast.stmt option
(** The [Pattern loop=] statement, when the description wrote one. *)

val pattern_slot_span :
  Vdram_dsl.Ast.t -> cycles:int -> int -> Vdram_diagnostics.Span.t
(** Span of one pattern slot's token ([0 <= slot < cycles]); the
    statement keyword when token spans don't line up, {!Vdram_diagnostics.Span.none}
    when the description has no pattern. *)

val bank_legality :
  ast:Vdram_dsl.Ast.t -> Vdram_core.Config.t -> Vdram_core.Pattern.t ->
  Vdram_diagnostics.Diagnostic.t list
(** Bank-aware pattern legality: replays the pattern loop through
    {!Vdram_sim.Legality} — the same component the simulator's
    scheduler enforces — rotating activates round-robin over the
    device's banks, and reports same-bank tRC reuse ([V0801]), tRRD
    spacing violations ([V0802]) and four-activate tFAW window
    overflows ([V0803]) at the offending pattern slot. *)
