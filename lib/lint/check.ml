(* The `vdram check` driver: abstract interpretation of the energy
   model over a configuration box.

   Three analyses ride on the interval evaluator in {!Vdram_absint}:
   guaranteed bounds over the declared lens ranges, monotonicity
   certificates per lens axis, and whole-sweep legality of the
   pattern loop across the roadmap generations.  Findings come back
   as ordinary diagnostics (the V09xx band), so the lint renderers —
   text, JSON, SARIF, fix-its — work unchanged. *)

module Parser = Vdram_dsl.Parser
module Elaborate = Vdram_dsl.Elaborate
module Ast = Vdram_dsl.Ast
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Report = Vdram_core.Report
module Timing = Vdram_sim.Timing
module Legality = Vdram_sim.Legality
module Roadmap = Vdram_tech.Roadmap
module Node = Vdram_tech.Node
module Lenses = Vdram_analysis.Lenses
module I = Vdram_units.Interval
module Abox = Vdram_absint.Abox
module Bounds = Vdram_absint.Bounds
module Monotone = Vdram_absint.Monotone
module Certificate = Vdram_absint.Certificate
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix

type t = {
  report : Lint.report;
  certificate : Certificate.t option;
}

(* Voltages and interface loads are what a board designer actually
   sweeps; certifying all 56 lenses is opt-in (--all-lenses). *)
let default_axes () =
  List.map Abox.default_axis (Lenses.voltages @ Lenses.interface)

let metric_for p =
  if Pattern.count p Pattern.Rd + Pattern.count p Pattern.Wr > 0 then
    Monotone.Energy_per_bit
  else Monotone.Power

(* ----- whole-sweep legality ---------------------------------------- *)

type gen_result = {
  gen : Roadmap.t;
  timing : Timing.t;
  viols : Legality.violation list;
}

(* Replay the pattern across all fourteen roadmap generations.  The
   generations are grouped by bank count — the replay's bank rotation
   and the rank-level tRRD/tFAW gates depend on it — and each group is
   cleared with a single replay against the fold of
   {!Timing.worst_case} over its members: every legality gate is
   monotone nondecreasing in the timing fields, so a loop legal under
   the worst case is legal under every member.  Only when the worst
   case fails does the group fall back to per-generation replays
   (the converse does not hold). *)
let roadmap_results (p : Pattern.t) =
  let gens = Roadmap.all in
  let with_timing =
    List.map
      (fun g -> (g, Timing.of_config (Config.of_generation g)))
      gens
  in
  let bank_counts =
    List.sort_uniq compare (List.map (fun g -> g.Roadmap.banks) gens)
  in
  let by_group =
    List.concat_map
      (fun banks ->
        let members =
          List.filter (fun (g, _) -> g.Roadmap.banks = banks) with_timing
        in
        let worst =
          match members with
          | (_, t) :: rest ->
            List.fold_left (fun acc (_, t) -> Timing.worst_case acc t) t rest
          | [] -> assert false
        in
        if fst (Legality.replay_pattern worst ~banks p) = [] then
          List.map (fun (gen, timing) -> { gen; timing; viols = [] }) members
        else
          List.map
            (fun (gen, timing) ->
              { gen; timing;
                viols = fst (Legality.replay_pattern timing ~banks p) })
            members)
      bank_counts
  in
  (* Back into roadmap order. *)
  List.map
    (fun g -> List.find (fun r -> r.gen.Roadmap.node == g.Roadmap.node) by_group)
    gens

let cap_messages n msgs =
  let total = List.length msgs in
  if total <= n then msgs
  else
    List.filteri (fun i _ -> i < n) msgs
    @ [ Printf.sprintf "... and %d more" (total - n) ]

let sweep_of_results ~authored_node ~authored_legal results =
  {
    Certificate.authored_node;
    authored_legal;
    entries =
      List.map
        (fun r ->
          {
            Certificate.node = Node.name r.gen.Roadmap.node;
            legal = r.viols = [];
            violations = cap_messages 4 (List.map Legality.message r.viols);
          })
        results;
  }

let kind_code = function
  | Legality.Act_to_act -> "V0901"
  | Legality.Act_spacing | Legality.Four_activate -> "V0902"
  | Legality.Bank_busy | Legality.Col_timing | Legality.Pre_timing
  | Legality.Ref_timing -> "V0903"

(* Fix-it: pad the loop tail with nops, verified by replaying the
   padded loop against the authored timing and every roadmap
   generation — only a padding that actually clears the sweep is
   proposed.  The starting guess is the worst window overshoot. *)
let nop_fix ~ast ~authored (p : Pattern.t) results =
  match Passes.pattern_stmt ast with
  | Some st when List.length st.Ast.positional_spans = Pattern.cycles p ->
    let deficit =
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc (v : Legality.violation) ->
              max acc (v.Legality.earliest - v.Legality.at))
            acc r.viols)
        0 results
    in
    if deficit <= 0 then []
    else begin
      let authored_t, authored_banks = authored in
      let clears n =
        let padded =
          Pattern.v ~name:p.Pattern.name
            (p.Pattern.slots @ [ (Pattern.Nop, n) ])
        in
        fst (Legality.replay_pattern authored_t ~banks:authored_banks padded)
        = []
        && List.for_all
             (fun r ->
               fst
                 (Legality.replay_pattern r.timing ~banks:r.gen.Roadmap.banks
                    padded)
               = [])
             results
      in
      let rec search n tries =
        if tries = 0 then None
        else if clears n then Some n
        else search (2 * n) (tries - 1)
      in
      match search deficit 4 with
      | None -> []
      | Some n ->
        let last =
          List.nth st.Ast.positional_spans
            (List.length st.Ast.positional_spans - 1)
        in
        let at = max last.Span.col_start last.Span.col_end in
        let span = { last with Span.col_start = at; col_end = at } in
        [ Fix.v ~span (String.concat "" (List.init n (fun _ -> " nop"))) ]
    end
  | _ -> []

let sweep_diagnostics ~ast ~authored ~authored_legal (p : Pattern.t) results =
  (* A loop illegal at its own node is the V08xx pass's finding; the
     sweep band flags exactly the ones that are fine here but break
     elsewhere on the roadmap. *)
  if not authored_legal then []
  else
    let offenders = List.filter (fun r -> r.viols <> []) results in
    if offenders = [] then []
    else begin
      let cycles = Pattern.cycles p in
      let total = List.length results in
      let fixes = nop_fix ~ast ~authored p offenders in
      List.filter_map
        (fun code ->
          let offending =
            List.filter_map
              (fun r ->
                match
                  List.filter
                    (fun (v : Legality.violation) -> kind_code v.Legality.kind = code)
                    r.viols
                with
                | [] -> None
                | vs -> Some (r, vs))
              offenders
          in
          match offending with
          | [] -> None
          | (r0, v0 :: _) :: _ ->
            let nodes =
              List.map
                (fun (r, _) -> Node.name r.gen.Roadmap.node)
                offending
            in
            Some
              (D.warningf ~code
                 ~span:
                   (Passes.pattern_slot_span ast ~cycles
                      (v0.Legality.at mod cycles))
                 ~notes:
                   [ Printf.sprintf
                       "legal at the authored node but not across the \
                        roadmap: %d of %d generations reject it (%s)"
                       (List.length offenders) total
                       (String.concat ", " nodes);
                     Printf.sprintf "at %s for example: %s"
                       (Node.name r0.gen.Roadmap.node)
                       (Legality.message v0) ]
                 ~help:
                   "pad the loop with nop cycles until the slowest \
                    roadmap generation meets its timing windows"
                 ~fixes
                 "pattern slot %d is legal here but violates timing \
                  elsewhere on the roadmap sweep"
                 (v0.Legality.at mod cycles))
          | _ -> None)
        [ "V0901"; "V0902"; "V0903" ]
    end

(* ----- sampling cross-check ---------------------------------------- *)

let sample_check ~seed ~count box p (b : Bounds.t) =
  let st = Random.State.make [| seed |] in
  let axes = Abox.axes box in
  let contained = ref true in
  for _ = 1 to count do
    let scales =
      List.map
        (fun (a : Abox.axis) ->
          let s : I.t = a.Abox.scale in
          if s.I.hi > s.I.lo then
            s.I.lo +. Random.State.float st (s.I.hi -. s.I.lo)
          else s.I.lo)
        axes
    in
    let cfg = Abox.instantiate box scales in
    let r = Model.pattern_power cfg p in
    let inside (i : I.t) x = x >= i.I.lo && x <= i.I.hi in
    let ok =
      inside b.Bounds.power r.Report.power
      && inside b.Bounds.current r.Report.current
      && inside b.Bounds.background r.Report.background_power
      &&
      match (b.Bounds.energy_per_bit, r.Report.energy_per_bit) with
      | Some i, Some e -> inside i e
      | None, None -> true
      | _ -> false
    in
    if not ok then contained := false
  done;
  { Certificate.count; contained = !contained }

(* ----- driver ------------------------------------------------------ *)

let run ?axes ?(splits = 4) ?(max_cells = 32) ?(samples = 0)
    ?(seed = 0x5eed) ?file source =
  let axes = match axes with Some a -> a | None -> default_axes () in
  let base_report diagnostics =
    {
      Lint.file;
      source = Array.of_list (String.split_on_char '\n' source);
      diagnostics = List.stable_sort D.compare_source diagnostics;
    }
  in
  match Parser.parse ?file source with
  | Error e ->
    { report = base_report [ Parser.to_diagnostic e ]; certificate = None }
  | Ok ast ->
    let config, elab = Elaborate.elaborate ast in
    let errors = List.filter D.is_error elab in
    (match (config, errors) with
     | None, _ | _, _ :: _ ->
       { report = base_report errors; certificate = None }
     | Some { Elaborate.config = cfg; pattern }, [] ->
       let pattern =
         match pattern with
         | Some p -> p
         | None -> Pattern.idd4r cfg.Config.spec
       in
       let box = Abox.v ~base:cfg axes in
       let bounds = Bounds.compute ~splits box pattern in
       let metric = metric_for pattern in
       let monotonicity =
         List.map
           (fun (a : Abox.axis) ->
             let s : I.t = a.Abox.scale in
             Monotone.certify ~max_cells ~base:cfg ~lens:a.Abox.lens
               ~lo:s.I.lo ~hi:s.I.hi ~metric pattern)
           axes
       in
       let authored_t = Timing.of_config cfg in
       let authored_banks = cfg.Config.spec.Spec.banks in
       let authored_legal =
         fst (Legality.replay_pattern authored_t ~banks:authored_banks pattern)
         = []
       in
       let results = roadmap_results pattern in
       let sweep =
         sweep_of_results
           ~authored_node:(Node.name cfg.Config.node)
           ~authored_legal results
       in
       let diags =
         sweep_diagnostics ~ast
           ~authored:(authored_t, authored_banks)
           ~authored_legal pattern results
       in
       let samples =
         if samples > 0 then
           Some (sample_check ~seed ~count:samples box pattern bounds)
         else None
       in
       let certificate =
         Certificate.v ~sweep ?samples ~config:cfg ~pattern ~box ~splits
           ~bounds ~monotonicity ()
       in
       { report = base_report diags; certificate = Some certificate })

let run_file ?axes ?splits ?max_cells ?samples ?seed path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> run ?axes ?splits ?max_cells ?samples ?seed ~file:path source
  | exception Sys_error msg ->
    {
      report =
        {
          Lint.file = Some path;
          source = [||];
          diagnostics = [ D.errorf ~code:"V0006" "%s" msg ];
        };
      certificate = None;
    }
