(* The `vdram advise` driver: static dataflow analysis of the
   elaborated pattern loop.

   Where lint (V08xx) and check (V09xx) judge whether a loop is
   *legal*, advise judges whether it is *wasteful*.  The loop is
   treated cyclically through the shared {!Vdram_sim.Legality} replay
   trace — no simulation run — and four analyses ride on it:

   - per-command slack against the binding timing constraint
     (tRCD/tRAS/tRP/tCCD/tRRD/tFAW), steady-state, first iteration
     dropped as warm-up;
   - steady-state bus and per-bank utilization;
   - row-buffer locality: activates whose row no column command ever
     touches before the closing precharge (V1001);
   - an idle-window inventory: nop runs long enough to spend in CKE
     precharge power-down, per Jagtap et al. (V1003);
   - oversized nop padding beyond every binding window (V1002) and
     the loop's distance from its certified static energy floor
     (V1004), obtained by pricing the idle-stripped ideal schedule
     through the interval evaluator on a point box.

   Every proposed rewrite follows the V09xx verified-fix-it
   discipline, tightened: the rewritten loop must replay legal at the
   authored node *and* across all fourteen roadmap generations, must
   not lose schedulability the original had, and must price strictly
   below the original through {!Vdram_sim.Energy_model} — only then
   is the fix attached. *)

module Parser = Vdram_dsl.Parser
module Elaborate = Vdram_dsl.Elaborate
module Ast = Vdram_dsl.Ast
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Timing = Vdram_sim.Timing
module Legality = Vdram_sim.Legality
module Energy_model = Vdram_sim.Energy_model
module Roadmap = Vdram_tech.Roadmap
module Loop_bound = Vdram_absint.Loop_bound
module Si = Vdram_units.Si
module Span = Vdram_diagnostics.Span
module D = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix

type slack_entry = {
  slot : int;
  command : Legality.command;
  slack : int;
  binding : Legality.kind;
}

type idle_window = {
  start_slot : int;
  length : int;
  eligible : bool;
  savings : float;
}

type summary = {
  pattern : string;
  cycles : int;
  banks : int;
  schedulable : bool;
  underspaced : int;
  usage : Legality.usage;
  slacks : slack_entry list;
  idle : idle_window list;
  energy : float;
  floor : float;
  ideal_cycles : int;
  waste : float;
}

type t = {
  report : Lint.report;
  summary : summary option;
}

(* ----- loop plumbing ----------------------------------------------- *)

let expand (p : Pattern.t) =
  List.concat_map (fun (c, n) -> List.init n (fun _ -> c)) p.Pattern.slots

let rebuild ~name cmds =
  let rec rle = function
    | [] -> []
    | c :: rest ->
      let rec take n = function
        | c' :: more when c' = c -> take (n + 1) more
        | tail -> (n, tail)
      in
      let n, tail = take 1 rest in
      (c, n) :: rle tail
  in
  Pattern.v ~name (rle cmds)

let kind_label = function
  | Legality.Bank_busy -> "bank state"
  | Legality.Act_to_act -> "tRC"
  | Legality.Act_spacing -> "tRRD"
  | Legality.Four_activate -> "tFAW"
  | Legality.Col_timing -> "tRCD/tCCD"
  | Legality.Pre_timing -> "tRAS/tWR"
  | Legality.Ref_timing -> "tRFC"

(* Largest/smallest n in [lo, hi] satisfying a monotone predicate. *)
let search_max ok lo hi =
  let best = ref None and lo = ref lo and hi = ref hi in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if ok mid then begin
      best := Some mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let search_min ok lo hi =
  let best = ref None and lo = ref lo and hi = ref hi in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if ok mid then begin
      best := Some mid;
      hi := mid - 1
    end
    else lo := mid + 1
  done;
  !best

(* ----- legality predicates ----------------------------------------- *)

let trace_clean timing ~banks q =
  let issues, _ = Legality.replay_trace timing ~banks q in
  List.for_all (fun (i : Legality.issue) -> i.Legality.violations = []) issues

(* Replay across all fourteen roadmap generations, grouped by bank
   count and cleared through one {!Timing.worst_case} replay per
   group when possible (see the `vdram check` sweep for why this is
   sound); per-generation fallback otherwise. *)
let sweep_legal (p : Pattern.t) =
  let gens = Roadmap.all in
  let with_timing =
    List.map (fun g -> (g, Timing.of_config (Config.of_generation g))) gens
  in
  let bank_counts =
    List.sort_uniq compare (List.map (fun g -> g.Roadmap.banks) gens)
  in
  List.for_all
    (fun banks ->
      let members =
        List.filter (fun (g, _) -> g.Roadmap.banks = banks) with_timing
      in
      let worst =
        match members with
        | (_, t) :: rest ->
          List.fold_left (fun acc (_, t) -> Timing.worst_case acc t) t rest
        | [] -> assert false
      in
      fst (Legality.replay_pattern worst ~banks p) = []
      || List.for_all
           (fun (_, t) -> fst (Legality.replay_pattern t ~banks p) = [])
           members)
    bank_counts

(* The verified-fix-it gate: authored-node legality, schedulability
   preserved when the original had it, whole-roadmap legality, and a
   strictly lower simulated loop energy. *)
let verified ~cfg ~timing ~banks ~schedulable ~energy (q : Pattern.t) =
  fst (Legality.replay_pattern timing ~banks q) = []
  && ((not schedulable) || trace_clean timing ~banks q)
  && sweep_legal q
  && Energy_model.loop_energy cfg q < energy

(* ----- trace queries ----------------------------------------------- *)

(* Steady-state slack per slot: the minimum [at - earliest] over
   iterations past the warm-up, for slots some timing window binds. *)
let slot_slacks issues =
  let best = Hashtbl.create 16 in
  List.iter
    (fun (i : Legality.issue) ->
      if i.Legality.iteration >= 1 then
        match i.Legality.binding with
        | None -> ()
        | Some kind ->
          let slack = i.Legality.at - i.Legality.earliest in
          let better =
            match Hashtbl.find_opt best i.Legality.slot with
            | Some e -> slack < e.slack
            | None -> true
          in
          if better then
            Hashtbl.replace best i.Legality.slot
              { slot = i.Legality.slot; command = i.Legality.command;
                slack; binding = kind })
    issues;
  Hashtbl.fold (fun _ e acc -> e :: acc) best []
  |> List.sort (fun a b -> compare a.slot b.slot)

(* FIFO pairing of successful activates with the precharges that
   close them, each pair carrying whether any column command targeted
   the open row in between.  Coverage counts the column whether or
   not its window was met — a measurement loop clocks it into the
   device either way, so the row is not unused. *)
let act_pre_pairs issues =
  let open_banks = Hashtbl.create 8 in
  let pairs = ref [] in
  List.iter
    (fun (i : Legality.issue) ->
      match i.Legality.command with
      | Legality.Read | Legality.Write ->
        (match Hashtbl.find_opt open_banks i.Legality.bank with
         | Some (_, covered) -> covered := true
         | None -> ())
      | _ when i.Legality.violations <> [] -> ()
      | Legality.Activate ->
        Hashtbl.replace open_banks i.Legality.bank (i, ref false)
      | Legality.Precharge when i.Legality.bank >= 0 ->
        (match Hashtbl.find_opt open_banks i.Legality.bank with
         | Some (act, covered) ->
           Hashtbl.remove open_banks i.Legality.bank;
           pairs := (act, i, !covered) :: !pairs
         | None -> ())
      | _ -> ())
    issues;
  List.rev !pairs

(* Nop runs as (start_slot, length); [cyclic] merges a run that wraps
   from the loop tail into its head (the wrapped run keeps the tail
   start slot). *)
let nop_runs ?(cyclic = false) cmds =
  let n = List.length cmds in
  let arr = Array.of_list cmds in
  let runs = ref [] in
  let i = ref 0 in
  while !i < n do
    if arr.(!i) = Pattern.Nop then begin
      let start = !i in
      while !i < n && arr.(!i) = Pattern.Nop do incr i done;
      runs := (start, !i - start) :: !runs
    end
    else incr i
  done;
  let runs = List.rev !runs in
  if (not cyclic) || runs = [] then runs
  else
    match (runs, List.rev runs) with
    | (0, first_len) :: rest, (last_start, last_len) :: _
      when last_start + last_len = n && last_start <> 0 && first_len <> n ->
      (* tail wraps into head: merge, keep the tail start *)
      List.filteri (fun i _ -> i > 0) rest
      @ [ (last_start, last_len + first_len) ]
    | _ -> runs

(* ----- the idle-stripped ideal schedule ----------------------------- *)

(* ASAP compaction under the shared replay discipline: the loop's
   non-nop commands in order, each issued at the earliest cycle its
   enforced windows allow, then the smallest tail padding that makes
   the loop cyclically legal again.  For measurement-mix loops (ones
   that under-space column/precharge windows on purpose) only the
   activate band is waited on, mirroring what the replay enforces.
   Returns [None] when compaction cannot beat the authored loop — the
   caller falls back to pricing the authored loop itself, which keeps
   the bound sound unconditionally. *)
let ideal_schedule ~timing ~banks ~schedulable (p : Pattern.t) =
  let cmds = List.filter (fun c -> c <> Pattern.Nop) (expand p) in
  let cycles = Pattern.cycles p in
  if cmds = [] || banks < 1 then None
  else begin
    let rank = Legality.create timing ~banks in
    let next_bank = ref 0 in
    let last_bank = ref 0 in
    let open_order = ref [] in
    let limit = (4 * timing.Timing.trc) + timing.Timing.tfaw + 16 in
    let positions = ref [] in
    let t_prev = ref (-1) in
    let failed = ref false in
    let wait_for issue =
      (* earliest t > !t_prev the command is legal at, bounded *)
      let rec go t =
        if t - !t_prev > limit then None
        else if issue t = [] then Some t
        else go (t + 1)
      in
      go (!t_prev + 1)
    in
    List.iter
      (fun cmd ->
        if not !failed then begin
          let placed =
            match cmd with
            | Pattern.Act ->
              let bank = !next_bank in
              next_bank := (bank + 1) mod banks;
              (match
                 wait_for (fun at -> Legality.activate rank ~bank ~at ~row:0)
               with
               | Some t ->
                 last_bank := bank;
                 open_order := !open_order @ [ bank ];
                 Some t
               | None -> None)
            | Pattern.Rd | Pattern.Wr ->
              let write = cmd = Pattern.Wr in
              let bank = !last_bank in
              if schedulable then
                wait_for (fun at -> Legality.column rank ~bank ~at ~write)
              else begin
                let t = !t_prev + 1 in
                ignore (Legality.column rank ~bank ~at:t ~write);
                Some t
              end
            | Pattern.Pre ->
              (match !open_order with
               | [] -> Some (!t_prev + 1)
               | bank :: rest ->
                 if schedulable then (
                   match
                     wait_for (fun at -> Legality.precharge rank ~bank ~at)
                   with
                   | Some t ->
                     open_order := rest;
                     Some t
                   | None -> None)
                 else begin
                   let t = !t_prev + 1 in
                   if Legality.precharge rank ~bank ~at:t = [] then
                     open_order := rest;
                   Some t
                 end)
            | Pattern.Nop -> assert false
          in
          match placed with
          | Some t ->
            positions := (t, cmd) :: !positions;
            t_prev := t
          | None -> failed := true
        end)
      cmds;
    if !failed || !t_prev + 1 > cycles then None
    else begin
      let positions = List.rev !positions in
      let loop_of total =
        let arr = Array.make total Pattern.Nop in
        List.iter (fun (t, c) -> arr.(t) <- c) positions;
        rebuild ~name:(p.Pattern.name ^ "-ideal") (Array.to_list arr)
      in
      let ok total =
        let q = loop_of total in
        fst (Legality.replay_pattern timing ~banks q) = []
        && ((not schedulable) || trace_clean timing ~banks q)
      in
      match search_min ok (!t_prev + 1) cycles with
      | Some total when total < cycles -> Some (loop_of total)
      | _ -> None
    end
  end

(* The certified static floor: the smaller of the interval lower
   endpoints of the ideal schedule and of the authored loop itself —
   the second term makes the bound sound even when compaction finds
   nothing. *)
let static_bound (cfg : Config.t) (p : Pattern.t) =
  let timing = Timing.of_config cfg in
  let banks = cfg.Config.spec.Spec.banks in
  let schedulable = trace_clean timing ~banks p in
  let authored = Loop_bound.lower_bound (Loop_bound.evaluate ~base:cfg p) in
  match ideal_schedule ~timing ~banks ~schedulable p with
  | Some q ->
    Float.min authored (Loop_bound.lower_bound (Loop_bound.evaluate ~base:cfg q))
  | None -> authored

(* ----- fix-it construction ----------------------------------------- *)

(* Token spans are only usable when the statement wrote one bare token
   per loop cycle and every token sits on one source line. *)
let slot_spans (st : Ast.stmt) ~cycles =
  let spans = st.Ast.positional_spans in
  if
    List.length spans = cycles
    && List.for_all (fun (s : Span.t) -> s.Span.line = st.Ast.line) spans
  then Some (Array.of_list spans)
  else None

let token_fix spans slot replacement = Fix.v ~span:spans.(slot) replacement

(* Delete tokens [first, first + count) of the loop, swallowing one
   separating space so the survivors stay single-spaced. *)
let removal_fix spans ~cycles ~first ~count =
  if first + count > cycles then None
  else if first > 0 then
    let prev : Span.t = spans.(first - 1) in
    let last : Span.t = spans.(first + count - 1) in
    Some
      (Fix.v
         ~span:{ prev with Span.col_start = prev.Span.col_end;
                 col_end = last.Span.col_end }
         "")
  else if count < cycles then
    let first_s : Span.t = spans.(0) in
    let next : Span.t = spans.(count) in
    Some
      (Fix.v
         ~span:{ first_s with Span.col_end = next.Span.col_start }
         "")
  else None

(* ----- the V10xx analyses ------------------------------------------ *)

(* V1001: activates whose row no column command touches.  A slot is
   flagged only when every steady-state occurrence is uncovered, and
   the drop-the-pair rewrite survives the verified-fix gate. *)
let redundant_activates ~cfg ~timing ~banks ~schedulable ~energy ~spans
    (p : Pattern.t) issues =
  let pairs = act_pre_pairs issues in
  let by_slots = Hashtbl.create 8 in
  List.iter
    (fun ((act : Legality.issue), (pre : Legality.issue), covered) ->
      if act.Legality.iteration >= 1 then begin
        let key = (act.Legality.slot, pre.Legality.slot) in
        let redundant =
          match Hashtbl.find_opt by_slots key with
          | Some r -> r && not covered
          | None -> not covered
        in
        Hashtbl.replace by_slots key redundant
      end)
    pairs;
  let slots_of = expand p in
  Hashtbl.fold
    (fun (act_slot, pre_slot) redundant acc ->
      if not redundant then acc
      else begin
        let cmds =
          List.mapi
            (fun i c ->
              if i = act_slot || i = pre_slot then Pattern.Nop else c)
            slots_of
        in
        let q = rebuild ~name:p.Pattern.name cmds in
        let fixes =
          match spans with
          | Some spans
            when verified ~cfg ~timing ~banks ~schedulable ~energy q ->
            [ token_fix spans act_slot "nop"; token_fix spans pre_slot "nop" ]
          | _ -> []
        in
        let saved =
          energy -. Energy_model.loop_energy cfg q
        in
        D.warningf ~code:"V1001"
          ?span:(Option.map (fun s -> s.(act_slot)) spans)
          ~notes:
            [ Printf.sprintf
                "the row opened at slot %d is closed by the precharge at \
                 slot %d without a single read or write in between"
                act_slot pre_slot;
              Printf.sprintf
                "dropping the pair saves %s per loop iteration"
                (Si.format_eng ~unit_symbol:"J" saved) ]
          ~help:
            "replace the activate and its precharge with nop; the rewrite \
             was replayed across every roadmap generation and re-priced \
             before being proposed"
          ~fixes
          "activate at slot %d opens a row no column command ever touches"
          act_slot
        :: acc
      end)
    by_slots []
  |> List.sort D.compare_source

(* V1002: nop padding beyond every binding window.  The longest nop
   run is probed: the largest removal that keeps the loop legal at
   the authored node is the finding; the largest removal that also
   clears the roadmap sweep (and prices lower) is the fix. *)
let oversized_padding ~cfg ~timing ~banks ~schedulable ~energy ~spans
    (p : Pattern.t) =
  if Pattern.count p Pattern.Act = 0 then []
  else begin
    let cmds = expand p in
    let cycles = Pattern.cycles p in
    let runs = nop_runs cmds in
    match
      (* the longest run; ties resolved toward the loop tail *)
      List.fold_left
        (fun best (start, len) ->
          match best with
          | Some (_, blen) when blen > len -> best
          | _ -> Some (start, len))
        None runs
    with
    | None -> None
    | Some (start, len) ->
      let arr = Array.of_list cmds in
      let removed r =
        let keep = ref [] in
        Array.iteri
          (fun i c ->
            (* drop the r slots at the end of the run *)
            if not (i >= start + len - r && i < start + len) then
              keep := c :: !keep)
          arr;
        rebuild ~name:p.Pattern.name (List.rev !keep)
      in
      let authored_ok r =
        let q = removed r in
        fst (Legality.replay_pattern timing ~banks q) = []
        && ((not schedulable) || trace_clean timing ~banks q)
      in
      (match search_max authored_ok 1 len with
       | None -> None
       | Some r ->
         let fix_ok r' =
           verified ~cfg ~timing ~banks ~schedulable ~energy (removed r')
         in
         let r' = search_max fix_ok 1 r in
         let fixes =
           match (spans, r') with
           | Some spans, Some r' ->
             Option.to_list
               (removal_fix spans ~cycles ~first:(start + len - r') ~count:r')
           | _ -> []
         in
         let saved r =
           energy -. Energy_model.loop_energy cfg (removed r)
         in
         let notes =
           Printf.sprintf
             "%d of the %d nop cycles at slots %d..%d exceed every binding \
              timing window at the authored node (worth %s per iteration)"
             r len start
             (start + len - 1)
             (Si.format_eng ~unit_symbol:"J" (saved r))
           ::
           (match r' with
            | Some r' when r' < r ->
              [ Printf.sprintf
                  "only %d can go without breaking a slower roadmap \
                   generation; the fix removes exactly those"
                  r' ]
            | None ->
              [ "every padding cycle is needed somewhere on the roadmap \
                 sweep, so no rewrite is proposed" ]
            | Some _ -> [])
         in
         Some
           (D.warningf ~code:"V1002"
              ?span:(Option.map (fun s -> s.(start)) spans)
              ~notes
              ~help:
                "tighten the padding to the binding constraint; the \
                 rewrite was replayed at the authored node and across \
                 every roadmap generation before being proposed"
              ~fixes
              "loop carries %d nop cycle%s more than any timing window \
               needs"
              r
              (if r = 1 then "" else "s")))
  end
  |> Option.to_list

(* V1003: idle windows long enough for precharge power-down.  Entering
   and leaving CKE power-down costs the exit latency tXP, so a window
   is eligible from [tXP + 2] cycles up; the note prices the window at
   the background-minus-power-down delta, per Jagtap et al. *)
let idle_windows ~cfg ~timing ~spans (p : Pattern.t) =
  let txp = timing.Timing.txp in
  let tck = timing.Timing.tck in
  let delta = Model.background_power cfg -. Model.powerdown_power cfg in
  let windows =
    List.map
      (fun (start, len) ->
        let eligible = len >= txp + 2 && delta > 0.0 in
        let savings =
          if eligible then delta *. float_of_int (len - txp) *. tck else 0.0
        in
        { start_slot = start; length = len; eligible; savings })
      (nop_runs ~cyclic:true (expand p))
  in
  let diags =
    List.filter_map
      (fun w ->
        if not w.eligible then None
        else
          Some
            (D.warningf ~code:"V1003"
               ?span:(Option.map (fun s -> s.(w.start_slot)) spans)
               ~notes:
                 [ Printf.sprintf
                     "the window is %d cycles against a power-down exit \
                      latency (tXP) of %d; spending it in precharge \
                      power-down saves about %s per loop iteration"
                     w.length txp
                     (Si.format_eng ~unit_symbol:"J" w.savings) ]
               ~help:
                 "no pattern edit: have the memory controller drop CKE \
                  over this window (power-down entry is policy, not a \
                  loop rewrite)"
               "idle window of %d cycles at slot %d is long enough for \
                precharge power-down"
               w.length w.start_slot))
      windows
  in
  (windows, diags)

(* V1004: distance from the certified floor.  The fix — replacing the
   whole loop with its ideal schedule — is offered only when that
   schedule survives the verified-fix gate. *)
let waste_diagnostic ~cfg ~timing ~banks ~schedulable ~energy
    ~waste_threshold ~spans ~stmt (p : Pattern.t) =
  if Pattern.count p Pattern.Act = 0 || energy <= 0.0 then
    (Loop_bound.lower_bound (Loop_bound.evaluate ~base:cfg p),
     Pattern.cycles p, 0.0, [])
  else begin
    let authored =
      Loop_bound.lower_bound (Loop_bound.evaluate ~base:cfg p)
    in
    let ideal = ideal_schedule ~timing ~banks ~schedulable p in
    let floor, ideal_cycles =
      match ideal with
      | Some q ->
        ( Float.min authored
            (Loop_bound.lower_bound (Loop_bound.evaluate ~base:cfg q)),
          Pattern.cycles q )
      | None -> (authored, Pattern.cycles p)
    in
    let waste = if energy > 0.0 then (energy -. floor) /. energy else 0.0 in
    let diags =
      if schedulable && waste > waste_threshold then begin
        let fixes =
          match (ideal, spans) with
          | Some q, Some spans
            when verified ~cfg ~timing ~banks ~schedulable ~energy q ->
            let cycles = Pattern.cycles p in
            let first : Span.t = spans.(0) in
            let last : Span.t = spans.(cycles - 1) in
            [ Fix.v
                ~span:{ first with Span.col_end = last.Span.col_end }
                (Pattern.to_string q) ]
          | _ -> []
        in
        let span =
          match spans with
          | Some s -> Some s.(0)
          | None ->
            Option.map (fun (st : Ast.stmt) -> st.Ast.keyword_span) stmt
        in
        [ D.warningf ~code:"V1004" ?span
            ~notes:
              [ Printf.sprintf
                  "the loop prices at %s per iteration against a certified \
                   floor of %s (ideal schedule: %d of %d cycles)"
                  (Si.format_eng ~unit_symbol:"J" energy)
                  (Si.format_eng ~unit_symbol:"J" floor)
                  ideal_cycles (Pattern.cycles p);
                "the floor is the interval evaluator's lower endpoint over \
                 the idle-stripped ideal schedule — a sound bound, not an \
                 estimate" ]
            ~help:
              "drop unused activate/precharge pairs (V1001) and tighten \
               padding (V1002), or adopt the proposed ideal schedule"
            ~fixes
            "loop energy is %.0f%% above its certified static floor"
            (waste *. 100.0) ]
      end
      else []
    in
    (floor, ideal_cycles, waste, diags)
  end

(* ----- driver ------------------------------------------------------ *)

let analyze ~waste_threshold ~ast (cfg : Config.t) (p : Pattern.t) =
  let timing = Timing.of_config cfg in
  let banks = cfg.Config.spec.Spec.banks in
  (* A loop illegal in the activate band is the V08xx band's finding;
     advice on top of it would be noise. *)
  if fst (Legality.replay_pattern timing ~banks p) <> [] then
    (Passes.bank_legality ~ast cfg p, None)
  else begin
    let issues, _ = Legality.replay_trace timing ~banks p in
    let schedulable =
      List.for_all (fun (i : Legality.issue) -> i.Legality.violations = []) issues
    in
    let underspaced =
      List.length
        (List.filter
           (fun (i : Legality.issue) -> i.Legality.violations <> [])
           issues)
    in
    let energy = Energy_model.loop_energy cfg p in
    let stmt = Passes.pattern_stmt ast in
    let spans =
      Option.bind stmt (fun st -> slot_spans st ~cycles:(Pattern.cycles p))
    in
    let v1001 =
      redundant_activates ~cfg ~timing ~banks ~schedulable ~energy ~spans p
        issues
    in
    let v1002 =
      if schedulable then
        oversized_padding ~cfg ~timing ~banks ~schedulable ~energy ~spans p
      else []
    in
    let idle, v1003 = idle_windows ~cfg ~timing ~spans p in
    let floor, ideal_cycles, waste, v1004 =
      waste_diagnostic ~cfg ~timing ~banks ~schedulable ~energy
        ~waste_threshold ~spans ~stmt p
    in
    let summary =
      {
        pattern = Pattern.to_string p;
        cycles = Pattern.cycles p;
        banks;
        schedulable;
        underspaced;
        usage = Legality.pattern_usage timing ~banks p;
        slacks = slot_slacks issues;
        idle;
        energy;
        floor;
        ideal_cycles;
        waste;
      }
    in
    (v1001 @ v1002 @ v1003 @ v1004, Some summary)
  end

let run ?(waste_threshold = 0.10) ?file source =
  let base_report diagnostics =
    {
      Lint.file;
      source = Array.of_list (String.split_on_char '\n' source);
      diagnostics = List.stable_sort D.compare_source diagnostics;
    }
  in
  match Parser.parse ?file source with
  | Error e ->
    { report = base_report [ Parser.to_diagnostic e ]; summary = None }
  | Ok ast ->
    let config, elab = Elaborate.elaborate ast in
    let errors = List.filter D.is_error elab in
    (match (config, errors) with
     | None, _ | _, _ :: _ -> { report = base_report errors; summary = None }
     | Some { Elaborate.config = cfg; pattern }, [] ->
       (match pattern with
        | None -> { report = base_report []; summary = None }
        | Some p ->
          let diags, summary = analyze ~waste_threshold ~ast cfg p in
          { report = base_report diags; summary }))

let run_file ?waste_threshold path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> run ?waste_threshold ~file:path source
  | exception Sys_error msg ->
    {
      report =
        {
          Lint.file = Some path;
          source = [||];
          diagnostics = [ D.errorf ~code:"V0006" "%s" msg ];
        };
      summary = None;
    }

(* ----- rendering ---------------------------------------------------- *)

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>loop `%s` — %d cycles, %d banks%s@," s.pattern
    s.cycles s.banks
    (if s.schedulable then ""
     else
       Printf.sprintf
         " (measurement mix: %d column/precharge windows under-spaced)"
         s.underspaced);
  Format.fprintf ppf
    "utilization: command bus %.0f%%, data bus %.0f%%, banks open %.0f%%@,"
    (100.0 *. s.usage.Legality.command_bus)
    (100.0 *. s.usage.Legality.data_bus)
    (100.0 *. s.usage.Legality.bank_open);
  (match s.slacks with
   | [] -> ()
   | slacks ->
     Format.fprintf ppf "@[<v2>slack (steady state):@,%a@]@,"
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
          (fun ppf e ->
            Format.fprintf ppf "slot %2d %-9s %+d against %s" e.slot
              (Legality.command_name e.command)
              e.slack (kind_label e.binding)))
       slacks);
  (match List.filter (fun w -> w.length > 1) s.idle with
   | [] -> ()
   | idle ->
     Format.fprintf ppf "@[<v2>idle windows:@,%a@]@,"
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
          (fun ppf w ->
            Format.fprintf ppf "slots %d..%d (%d cycles)%s" w.start_slot
              (w.start_slot + w.length - 1)
              w.length
              (if w.eligible then
                 Printf.sprintf " — power-down eligible, ~%s/iteration"
                   (Si.format_eng ~unit_symbol:"J" w.savings)
               else "")))
       idle);
  Format.fprintf ppf
    "energy: %s per iteration; certified floor %s (ideal schedule %d \
     cycles); waste %.0f%%@]"
    (Si.format_eng ~unit_symbol:"J" s.energy)
    (Si.format_eng ~unit_symbol:"J" s.floor)
    s.ideal_cycles (100.0 *. s.waste)

let summary_json (s : summary) =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\"pattern\":\"%s\",\"cycles\":%d,\"banks\":%d,\"schedulable\":%b,\
     \"underspaced\":%d,\"utilization\":{\"command_bus\":%.6f,\
     \"data_bus\":%.6f,\"bank_open\":%.6f},\"slack\":["
    s.pattern s.cycles s.banks s.schedulable s.underspaced
    s.usage.Legality.command_bus s.usage.Legality.data_bus
    s.usage.Legality.bank_open;
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"slot\":%d,\"command\":\"%s\",\"slack\":%d,\"binding\":\"%s\"}"
        e.slot
        (Legality.command_name e.command)
        e.slack (kind_label e.binding))
    s.slacks;
  Buffer.add_string buf "],\"idle_windows\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"start\":%d,\"length\":%d,\"eligible\":%b,\"savings_j\":%.6e}"
        w.start_slot w.length w.eligible w.savings)
    s.idle;
  Printf.bprintf buf
    "],\"energy_per_iteration_j\":%.6e,\"certified_floor_j\":%.6e,\
     \"ideal_cycles\":%d,\"waste\":%.6f}"
    s.energy s.floor s.ideal_cycles s.waste;
  Buffer.contents buf

let to_json t =
  let base = Lint.to_json t.report in
  match t.summary with
  | None -> base
  | Some s ->
    (* [Lint.to_json] always ends in "]}"; graft the summary in. *)
    String.sub base 0 (String.length base - 1)
    ^ ",\"advise\":" ^ summary_json s ^ "}"
