(* Minimal unified diff between two texts, for previewing fix-its.
   Line-based LCS; the inputs are single DRAM descriptions, so the
   quadratic table is tiny. *)

type op = Keep of string | Del of string | Add of string

let script a b =
  let n = Array.length a and m = Array.length b in
  let tbl = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      tbl.(i).(j) <-
        (if a.(i) = b.(j) then 1 + tbl.(i + 1).(j + 1)
         else max tbl.(i + 1).(j) tbl.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && a.(i) = b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if i < n && (j = m || tbl.(i + 1).(j) >= tbl.(i).(j + 1)) then
      walk (i + 1) j (Del a.(i) :: acc)
    else if j < m then walk i (j + 1) (Add b.(j) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let render ?(context = 3) ~path ~before ~after () =
  if String.equal before after then ""
  else begin
    let split s = Array.of_list (String.split_on_char '\n' s) in
    let ops = Array.of_list (script (split before) (split after)) in
    let n = Array.length ops in
    (* A line belongs to a hunk when it is within [context] of an
       actual change; consecutive marked lines form one hunk. *)
    let near = Array.make n false in
    Array.iteri
      (fun i op ->
        match op with
        | Keep _ -> ()
        | Del _ | Add _ ->
          for j = max 0 (i - context) to min (n - 1) (i + context) do
            near.(j) <- true
          done)
      ops;
    let buf = Buffer.create 256 in
    Printf.bprintf buf "--- a/%s\n+++ b/%s\n" path path;
    let old_line = ref 1 and new_line = ref 1 in
    let i = ref 0 in
    while !i < n do
      if not near.(!i) then begin
        (match ops.(!i) with
         | Keep _ ->
           incr old_line;
           incr new_line
         | Del _ -> incr old_line
         | Add _ -> incr new_line);
        incr i
      end
      else begin
        let start = !i in
        let stop = ref start in
        while !stop < n && near.(!stop) do incr stop done;
        let o0 = !old_line and n0 = !new_line in
        let ocount = ref 0 and ncount = ref 0 in
        let body = Buffer.create 128 in
        for k = start to !stop - 1 do
          match ops.(k) with
          | Keep l ->
            Printf.bprintf body " %s\n" l;
            incr ocount;
            incr ncount
          | Del l ->
            Printf.bprintf body "-%s\n" l;
            incr ocount
          | Add l ->
            Printf.bprintf body "+%s\n" l;
            incr ncount
        done;
        old_line := o0 + !ocount;
        new_line := n0 + !ncount;
        Printf.bprintf buf "@@ -%d,%d +%d,%d @@\n%s" o0 !ocount n0 !ncount
          (Buffer.contents body);
        i := !stop
      end
    done;
    Buffer.contents buf
  end
