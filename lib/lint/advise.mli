(** The [vdram advise] driver: static dataflow analysis of the
    elaborated pattern loop (the V10xx band).

    Where lint (V08xx) and check (V09xx) judge whether a loop is
    {e legal}, advise judges whether it is {e wasteful} — without a
    simulation run.  The loop is replayed cyclically through the
    shared {!Vdram_sim.Legality} trace; on top of it ride per-command
    slack against the binding timing constraint, steady-state bus and
    bank utilization, row-buffer locality (activates that open a row
    no column command touches, [V1001]), oversized nop padding
    ([V1002]), a power-down-eligible idle-window inventory ([V1003]),
    and the loop's distance from a certified static energy floor
    ([V1004]) obtained by pricing its idle-stripped ideal schedule
    through the interval evaluator.

    Every proposed rewrite is verified before it is attached: the
    rewritten loop must replay legal at the authored node and across
    all fourteen roadmap generations, keep the schedulability the
    original had, and price strictly below the original through
    {!Vdram_sim.Energy_model}. *)

type slack_entry = {
  slot : int;
  command : Vdram_sim.Legality.command;
  slack : int;
      (** issue cycle minus the binding constraint's earliest legal
          cycle; negative for an under-spaced window *)
  binding : Vdram_sim.Legality.kind;
}

type idle_window = {
  start_slot : int;
  length : int;      (** cycles; wrap-around runs are merged *)
  eligible : bool;   (** long enough for CKE precharge power-down *)
  savings : float;   (** J per loop iteration if spent powered down *)
}

type summary = {
  pattern : string;          (** the loop in source syntax *)
  cycles : int;
  banks : int;
  schedulable : bool;
      (** no window of any kind under-spaced; measurement-mix loops
          (deliberately under-spaced column/precharge windows) are
          legal but not schedulable *)
  underspaced : int;         (** violated windows per replay *)
  usage : Vdram_sim.Legality.usage;
  slacks : slack_entry list; (** per constrained slot, steady state *)
  idle : idle_window list;
  energy : float;            (** simulated J per loop iteration *)
  floor : float;             (** certified static lower bound, J *)
  ideal_cycles : int;        (** loop length of the ideal schedule *)
  waste : float;             (** (energy - floor) / energy *)
}

type t = {
  report : Lint.report;
      (** advise findings (V10xx) in source order; parse/elaboration
          errors when the description is broken; the V08xx findings
          when the loop is illegal in the activate band (no advice on
          top of an illegal loop) *)
  summary : summary option;
      (** [None] when there is no elaborated pattern to analyze *)
}

val run : ?waste_threshold:float -> ?file:string -> string -> t
(** Advise on a description source.  [waste_threshold] (default 0.10)
    is the actual-vs-floor fraction above which [V1004] fires. *)

val run_file : ?waste_threshold:float -> string -> t
(** {!run} on a file; I/O failures become a [V0006] diagnostic. *)

val ideal_schedule :
  timing:Vdram_sim.Timing.t -> banks:int -> schedulable:bool ->
  Vdram_core.Pattern.t -> Vdram_core.Pattern.t option
(** ASAP compaction of the loop's commands under the shared replay
    discipline, tail-padded to the smallest cyclically legal length.
    [None] when compaction cannot beat the authored loop. *)

val static_bound : Vdram_core.Config.t -> Vdram_core.Pattern.t -> float
(** The certified static floor, J per loop iteration: the smaller of
    the interval lower endpoints of the ideal schedule and of the
    authored loop itself.  Sound by construction: never exceeds the
    simulated {!Vdram_sim.Energy_model.loop_energy} of the loop. *)

val sweep_legal : Vdram_core.Pattern.t -> bool
(** Whether the loop replays legal across all fourteen roadmap
    generations (the fix-it verification gate). *)

val pp_summary : Format.formatter -> summary -> unit

val to_json : t -> string
(** The {!Lint.to_json} object with an ["advise"] member grafted in
    when a summary exists. *)
