(* Semantic consistency checks over a configuration. *)

module G = Vdram_floorplan.Array_geometry
module Domains = Vdram_circuits.Domains
module Logic_block = Vdram_circuits.Logic_block
module Diagnostic = Vdram_diagnostics.Diagnostic

type severity = Vdram_diagnostics.Code.severity = Error | Warning

type finding = Diagnostic.t

let check (cfg : Config.t) =
  let findings = ref [] in
  let add severity code ?help fmt =
    Printf.ksprintf
      (fun message ->
        findings := Diagnostic.v ~severity ~code ?help message :: !findings)
      fmt
  in
  let d = cfg.Config.domains in
  let spec = cfg.Config.spec in
  let g = Config.geometry cfg in
  (* Voltage ordering. *)
  if d.Domains.vpp <= d.Domains.vbl +. 0.5 then
    add Error "V0301"
      ~help:"raise vpp or lower vbl so that vpp > vbl + 0.5 V"
      "Vpp (%.2f V) leaves no write-back headroom over Vbl (%.2f V)"
      d.Domains.vpp d.Domains.vbl;
  if d.Domains.vbl > d.Domains.vint +. 0.3 then
    add Warning "V0302"
      "bitline voltage %.2f V above Vint %.2f V is unusual"
      d.Domains.vbl d.Domains.vint;
  if d.Domains.vint > d.Domains.vdd +. 1e-9 then
    add Error "V0303"
      "Vint %.2f V above the external supply %.2f V needs a pump"
      d.Domains.vint d.Domains.vdd;
  (* Addressing covers the density.  Guard the division: a zero or
     non-finite density would otherwise turn the relative-error test
     into NaN comparisons that silently skip the check. *)
  if
    (not (Float.is_finite spec.Spec.density_bits))
    || spec.Spec.density_bits <= 0.0
  then
    add Error "V0305" "device density %g bits is not a positive number"
      spec.Spec.density_bits
  else begin
    let covered =
      float_of_int spec.Spec.banks
      *. (2.0 ** float_of_int spec.Spec.row_bits)
      *. float_of_int (Config.page_bits cfg)
    in
    if
      Float.abs (covered -. spec.Spec.density_bits) /. spec.Spec.density_bits
      > 1e-6
    then
      add Warning "V0304"
        "banks x rows x page (%.3g bits) does not equal the density (%.3g)"
        covered spec.Spec.density_bits
  end;
  (* Geometry. *)
  if Config.page_bits cfg mod g.G.bits_per_lwl <> 0 then
    add Error "V0306" "page is not a whole number of local wordlines";
  if g.G.sa_stripe >= G.subarray_height g then
    add Warning "V0307" "sense-amplifier stripe wider than a sub-array";
  if g.G.lwd_stripe >= G.subarray_width g then
    add Warning "V0308" "wordline-driver stripe wider than a sub-array";
  if
    cfg.Config.activation_fraction <= 0.0
    || cfg.Config.activation_fraction > 1.0
  then add Error "V0309" "activation fraction outside (0, 1]";
  (* Interface arithmetic. *)
  let beats =
    float_of_int spec.Spec.burst_length /. Spec.bits_per_clock spec
  in
  if beats < 1.0 then
    add Warning "V0310" "burst shorter than one command clock";
  if spec.Spec.burst_length < spec.Spec.prefetch then
    add Error "V0311" "burst length %d below the prefetch %d cannot stream"
      spec.Spec.burst_length spec.Spec.prefetch;
  (* Efficiencies and activities. *)
  List.iter
    (fun (name, e) ->
      if e <= 0.0 || e > 1.0 then
        add Error "V0312" "%s efficiency %.2f outside (0, 1]" name e)
    [ ("Vint", d.Domains.eff_int); ("Vbl", d.Domains.eff_bl);
      ("Vpp", d.Domains.eff_pp) ];
  List.iter
    (fun (b : Logic_block.t) ->
      if b.Logic_block.toggle < 0.0 || b.Logic_block.toggle > 1.0 then
        add Warning "V0313" "logic block %S toggle %.2f outside [0, 1]"
          b.Logic_block.name b.Logic_block.toggle)
    cfg.Config.logic;
  if cfg.Config.data_toggle < 0.0 || cfg.Config.data_toggle > 1.0 then
    add Error "V0314" "data toggle outside [0, 1]";
  (* Errors first, then warnings, in discovery order. *)
  let errors, warnings =
    List.partition Diagnostic.is_error (List.rev !findings)
  in
  errors @ warnings

let is_clean cfg = not (List.exists Diagnostic.is_error (check cfg))

let pp_finding = Diagnostic.pp
