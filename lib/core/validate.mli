(** Consistency checks over a configuration.

    The Figure 4 pipeline's "syntax check" box covers the input
    language; this module covers semantics: voltage ordering,
    geometry/specification agreement, generator sanity.  Warnings
    don't stop the model — a deliberately odd what-if is legitimate —
    but surface likely description mistakes. *)

type severity = Warning | Error

type finding = {
  severity : severity;
  message : string;
}

val check : Config.t -> finding list
(** All findings, errors first.  An empty list means the
    configuration is internally consistent:
    - Vpp above Vbl (write-back needs headroom) and Vbl not above Vint+margin;
    - addresses cover the density (banks x rows x page = capacity);
    - page divides into whole local wordlines; activation fraction in (0,1];
    - burst occupancy consistent with the prefetch;
    - stripes thinner than sub-arrays; die area positive;
    - efficiencies within (0,1]; toggle rates within [0,1]. *)

val is_clean : Config.t -> bool
(** No errors (warnings allowed). *)

val pp_finding : Format.formatter -> finding -> unit
