(** Consistency checks over a configuration.

    The Figure 4 pipeline's "syntax check" box covers the input
    language; this module covers semantics: voltage ordering,
    geometry/specification agreement, generator sanity.  Warnings
    don't stop the model — a deliberately odd what-if is legitimate —
    but surface likely description mistakes.

    Every finding is a {!Vdram_diagnostics.Diagnostic.t} with a stable
    [V03##] code, so tooling ([vdram lint]) can suppress, count, and
    document them; the lint driver attaches source spans by looking up
    the statement each code concerns. *)

type severity = Vdram_diagnostics.Code.severity = Error | Warning

type finding = Vdram_diagnostics.Diagnostic.t

val check : Config.t -> finding list
(** All findings, errors first.  An empty list means the
    configuration is internally consistent:
    - Vpp above Vbl (write-back needs headroom) and Vbl not above Vint+margin;
    - density positive and addresses cover it (banks x rows x page);
    - page divides into whole local wordlines; activation fraction in (0,1];
    - burst occupancy consistent with the prefetch;
    - stripes thinner than sub-arrays;
    - efficiencies within (0,1]; toggle rates within [0,1]. *)

val is_clean : Config.t -> bool
(** No errors (warnings allowed). *)

val pp_finding : Format.formatter -> finding -> unit
