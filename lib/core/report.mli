(** Model output: power, current and breakdown of a pattern run. *)

type t = {
  config_name : string;
  pattern_name : string;
  power : float;            (** total average power, W *)
  current : float;          (** Idd = power / Vdd, A *)
  background_power : float; (** clock + always-on logic + constant sink *)
  loop_time : float;        (** s *)
  bits_per_loop : float;    (** data bits moved per loop *)
  energy_per_bit : float option;
      (** J/bit when the pattern moves data (paper: "often given in
          mW per Gb/s which is equivalent to pJ/bit") *)
  op_rates : (Operation.kind * float) list;
      (** command occurrences per second *)
  breakdown : (string * float) list;
      (** average power per contribution label, W at the Vdd pins,
          descending *)
}

val is_finite : t -> bool
(** Whether every numeric field — power, current, background power,
    loop time, bits per loop, energy per bit, every op rate and every
    breakdown entry — is finite (no NaN or infinity).  The supervised
    runtime uses this to turn a silently-poisoned report into a
    classified failure record. *)

val pp : Format.formatter -> t -> unit
(** Summary with Idd and the top breakdown entries. *)

val pp_full : Format.formatter -> t -> unit
(** Full breakdown listing. *)

type category =
  | Array            (** bitline sensing, restore, sense-amplifier *)
  | Row_path         (** wordlines, row decode, row control logic *)
  | Column_path      (** CSL, array data lines, column logic *)
  | Data_path        (** center-stripe data buses, (de)serializer *)
  | Interface        (** DQ pre-drivers/receivers, input bias *)
  | Clocking         (** clock tree, DLL *)
  | Peripheral_logic (** remaining control logic and address buses *)
  | Static           (** constant current sinks *)

val category_name : category -> string

val category_of_label : string -> category
(** Classify a breakdown label. *)

val by_category : t -> (category * float) list
(** Power per category, descending — the paper's "share of power
    shifting away from the cell array to general logic" view. *)

val pp_categories : Format.formatter -> t -> unit
