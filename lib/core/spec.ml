(* Interface specification. *)

type t = {
  io_width : int;
  datarate : float;
  clock_wires : int;
  data_clock : float;
  control_clock : float;
  bank_bits : int;
  row_bits : int;
  col_bits : int;
  misc_control : int;
  prefetch : int;
  burst_length : int;
  banks : int;
  density_bits : float;
  trc : float;
  trcd : float;
  trp : float;
  tfaw : float;
  trefi : float;
  trfc : float;
}

(* JEDEC refresh-command interval at normal temperature. *)
let default_trefi = 7.8e-6

(* Refresh cycle time steps with device capacity (JEDEC DDR3/DDR4
   tables): 110 ns up to 1 Gb, 160 ns at 2 Gb, 260 ns at 4 Gb, 350 ns
   beyond. *)
let default_trfc ~density_bits =
  let gbit = density_bits /. (2.0 ** 30.0) in
  if gbit <= 1.0 then 110e-9
  else if gbit <= 2.0 then 160e-9
  else if gbit <= 4.0 then 260e-9
  else 350e-9

let v ?(clock_wires = 1) ?(misc_control = 6) ?tfaw ?trefi ?trfc ~io_width
    ~datarate ~control_clock ~bank_bits ~row_bits ~col_bits ~prefetch
    ~burst_length ~banks ~density_bits ~trc ~trcd ~trp () =
  let pos name x = if x <= 0 then invalid_arg ("Spec.v: " ^ name) in
  let posf name x = if x <= 0.0 then invalid_arg ("Spec.v: " ^ name) in
  pos "io_width" io_width;
  posf "datarate" datarate;
  posf "control_clock" control_clock;
  pos "prefetch" prefetch;
  pos "burst_length" burst_length;
  pos "banks" banks;
  posf "density_bits" density_bits;
  posf "trc" trc;
  {
    io_width;
    datarate;
    clock_wires;
    data_clock = control_clock;
    control_clock;
    bank_bits;
    row_bits;
    col_bits;
    misc_control;
    prefetch;
    burst_length;
    banks;
    density_bits;
    trc;
    trcd;
    trp;
    tfaw = (match tfaw with Some t -> t | None -> 0.8 *. trc);
    trefi = (match trefi with Some t -> t | None -> default_trefi);
    trfc = (match trfc with Some t -> t | None -> default_trfc ~density_bits);
  }

let bits_per_clock t = t.datarate /. t.control_clock

let bits_per_column_command t = t.io_width * t.burst_length

let clocks_per_column_command t =
  int_of_float (Float.ceil (float_of_int t.burst_length /. bits_per_clock t))

let core_clock t = t.datarate /. float_of_int t.prefetch

let pp ppf t =
  Format.fprintf ppf
    "x%d at %s, %d banks, %.0f Mb, BL%d prefetch %d, tRC %.0f ns"
    t.io_width
    (Vdram_units.Si.format_eng ~unit_symbol:"bps" t.datarate)
    t.banks
    (t.density_bits /. (2.0 ** 20.0))
    t.burst_length t.prefetch (t.trc *. 1e9)
