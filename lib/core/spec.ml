(* Interface specification. *)

type t = {
  io_width : int;
  datarate : float;
  clock_wires : int;
  data_clock : float;
  control_clock : float;
  bank_bits : int;
  row_bits : int;
  col_bits : int;
  misc_control : int;
  prefetch : int;
  burst_length : int;
  banks : int;
  density_bits : float;
  trc : float;
  trcd : float;
  trp : float;
  tfaw : float;
}

let v ?(clock_wires = 1) ?(misc_control = 6) ?tfaw ~io_width ~datarate
    ~control_clock ~bank_bits ~row_bits ~col_bits ~prefetch ~burst_length
    ~banks ~density_bits ~trc ~trcd ~trp () =
  let pos name x = if x <= 0 then invalid_arg ("Spec.v: " ^ name) in
  let posf name x = if x <= 0.0 then invalid_arg ("Spec.v: " ^ name) in
  pos "io_width" io_width;
  posf "datarate" datarate;
  posf "control_clock" control_clock;
  pos "prefetch" prefetch;
  pos "burst_length" burst_length;
  pos "banks" banks;
  posf "density_bits" density_bits;
  posf "trc" trc;
  {
    io_width;
    datarate;
    clock_wires;
    data_clock = control_clock;
    control_clock;
    bank_bits;
    row_bits;
    col_bits;
    misc_control;
    prefetch;
    burst_length;
    banks;
    density_bits;
    trc;
    trcd;
    trp;
    tfaw = (match tfaw with Some t -> t | None -> 0.8 *. trc);
  }

let bits_per_clock t = t.datarate /. t.control_clock

let bits_per_column_command t = t.io_width * t.burst_length

let clocks_per_column_command t =
  int_of_float (Float.ceil (float_of_int t.burst_length /. bits_per_clock t))

let core_clock t = t.datarate /. float_of_int t.prefetch

let pp ppf t =
  Format.fprintf ppf
    "x%d at %s, %d banks, %.0f Mb, BL%d prefetch %d, tRC %.0f ns"
    t.io_width
    (Vdram_units.Si.format_eng ~unit_symbol:"bps" t.datarate)
    t.banks
    (t.density_bits /. (2.0 ** 20.0))
    t.burst_length t.prefetch (t.trc *. 1e9)
