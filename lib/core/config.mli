(** Complete description of a DRAM device — the model input of
    Figure 4, covering all five groups of Table I: physical floorplan,
    signaling floorplan, technology, specification and miscellaneous
    circuits. *)

type t = {
  name : string;
  node : Vdram_tech.Node.t;
  spec : Spec.t;
  domains : Vdram_circuits.Domains.t;
  tech : Vdram_tech.Params.t;
  floorplan : Vdram_floorplan.Floorplan.t;
  buses : Vdram_circuits.Bus.t list;
  logic : Vdram_circuits.Logic_block.t list;
  data_toggle : float;
  (** average toggle activity of transported data, default 0.5 *)
  io_predriver_cap : float;
  (** internal load switched per DQ pin and output bit: output-stage
      pre-driver and level shifting (the Vddq output driver itself is
      excluded, as in the paper), farads *)
  io_receiver_cap : float;
  (** internal load switched per DQ pin and input bit: receiver,
      latch and strobe distribution, farads *)
  receiver_bias : float;
  (** DC bias current of one enabled command/address/clock input
      receiver (SSTL-style differential stages), amperes *)
  input_receivers : int;
  (** number of always-enabled input receivers *)
  activation_fraction : float;
  (** share of the page actually activated per row command (1.0 for a
      commodity DRAM; lowered by selective-bitline-activation style
      schemes, Section V) *)
}

val geometry : t -> Vdram_floorplan.Array_geometry.t

val page_bits : t -> int
(** Full page size (bitlines of one row):
    [subarrays_along_wl * bits_per_lwl]. *)

val activated_bits : t -> int
(** Bitlines actually sensed per activate:
    [activation_fraction * page_bits], at least one local wordline
    segment. *)

val with_activation_fraction : t -> float -> t
(** Raises [Invalid_argument] outside (0, 1]. *)

val bus : t -> Vdram_circuits.Bus.role -> Vdram_circuits.Bus.t option
(** First bus with the given role, if any. *)

val standard_complexity : Vdram_tech.Node.standard -> float
(** Relative peripheral-logic complexity of an interface standard
    (SDR = 1.0, growing to DDR5); scales the default logic-block gate
    counts, the paper's fit parameters. *)

val default_logic_blocks :
  node:Vdram_tech.Node.t ->
  spec:Spec.t ->
  Vdram_circuits.Logic_block.t list
(** Miscellaneous peripheral circuitry of a commodity DRAM: always-on
    control, clock distribution, DLL (double-data-rate standards),
    command/address input samplers, and per-command row/column logic
    plus the data (de)serializer. *)

val default_buses :
  floorplan:Vdram_floorplan.Floorplan.t ->
  node:Vdram_tech.Node.t ->
  spec:Spec.t ->
  Vdram_circuits.Bus.t list
(** The signaling floorplan of Figure 1: read/write data buses from
    the center-stripe pads through re-drivers into the banks, address
    and command distribution, and the clock trunk. *)

val commodity :
  ?name:string ->
  ?standard:Vdram_tech.Node.standard ->
  ?density_bits:float ->
  ?io_width:int ->
  ?datarate:float ->
  ?banks:int ->
  ?page_bits:int ->
  ?bits_per_bitline:int ->
  ?bits_per_lwl:int ->
  ?style:Vdram_floorplan.Array_geometry.bitline_style ->
  ?prefetch:int ->
  ?data_toggle:float ->
  node:Vdram_tech.Node.t ->
  unit ->
  t
(** A commodity DRAM at a technology node, defaulting every group from
    the roadmap ({!Vdram_tech.Roadmap}) and scaled technology
    ({!Vdram_tech.Scaling}); any override replaces the roadmap value.
    Raises [Invalid_argument] when the geometry does not divide. *)

val of_generation : Vdram_tech.Roadmap.t -> t
(** [commodity] for a roadmap generation record. *)

(* Functional updates used by sensitivity analysis and scheme
   evaluation. *)

val with_tech : t -> Vdram_tech.Params.t -> t
val with_domains : t -> Vdram_circuits.Domains.t -> t
val with_spec : t -> Spec.t -> t
val map_logic :
  t -> (Vdram_circuits.Logic_block.t -> Vdram_circuits.Logic_block.t) -> t
val map_buses : t -> (Vdram_circuits.Bus.t -> Vdram_circuits.Bus.t) -> t
val with_data_toggle : t -> float -> t

val pp : Format.formatter -> t -> unit
