(* Command-loop patterns and datasheet Idd loops. *)

type command = Act | Pre | Rd | Wr | Nop

let command_name = function
  | Act -> "act"
  | Pre -> "pre"
  | Rd -> "rd"
  | Wr -> "wrt"
  | Nop -> "nop"

type t = {
  name : string;
  slots : (command * int) list;
}

let v ~name slots =
  if slots = [] then invalid_arg "Pattern.v: empty loop";
  List.iter
    (fun (_, n) -> if n <= 0 then invalid_arg "Pattern.v: run length <= 0")
    slots;
  { name; slots }

let cycles t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.slots

let count t c =
  List.fold_left
    (fun acc (c', n) -> if c = c' then acc + n else acc)
    0 t.slots

let parse ~name s =
  let words =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let command_of = function
    | "act" | "activate" -> Ok Act
    | "pre" | "precharge" -> Ok Pre
    | "rd" | "read" -> Ok Rd
    | "wrt" | "wr" | "write" -> Ok Wr
    | "nop" -> Ok Nop
    | w -> Error (Printf.sprintf "unknown command %S in pattern" w)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest ->
      (match command_of (String.lowercase_ascii w) with
       | Ok c -> go ((c, 1) :: acc) rest
       | Error _ as e -> e)
  in
  match go [] words with
  | Error _ as e -> e
  | Ok [] -> Error "empty pattern"
  | Ok slots -> Ok (v ~name slots)

let to_string t =
  t.slots
  |> List.concat_map (fun (c, n) -> List.init n (fun _ -> command_name c))
  |> String.concat " "

let idle = v ~name:"idle" [ (Nop, 1) ]

let trc_cycles (spec : Spec.t) =
  max 2
    (int_of_float (Float.ceil (spec.Spec.trc *. spec.Spec.control_clock)))

let idd0 (spec : Spec.t) =
  let n = trc_cycles spec in
  let gaps = n - 2 in
  if gaps > 0 then v ~name:"Idd0" [ (Act, 1); (Nop, gaps); (Pre, 1) ]
  else v ~name:"Idd0" [ (Act, 1); (Pre, 1) ]

let burst_loop ~name cmd (spec : Spec.t) =
  let cpc = Spec.clocks_per_column_command spec in
  if cpc > 1 then v ~name [ (cmd, 1); (Nop, cpc - 1) ] else v ~name [ (cmd, 1) ]

let idd4r spec = burst_loop ~name:"Idd4R" Rd spec

let idd4w spec = burst_loop ~name:"Idd4W" Wr spec

let idd7_loop ~name ~reads ~writes (spec : Spec.t) =
  let banks = spec.Spec.banks in
  let cpc = Spec.clocks_per_column_command spec in
  (* The activate rate is bounded by tRC per bank, the data bus
     occupancy and the four-activate window tFAW. *)
  let tfaw_cycles =
    int_of_float
      (Float.ceil
         (float_of_int (banks / 4)
         *. spec.Spec.tfaw *. spec.Spec.control_clock))
  in
  let window =
    max (trc_cycles spec)
      (max (3 * banks) (max (banks * cpc) tfaw_cycles))
  in
  let commands = banks (* act *) + banks (* pre *) + reads + writes in
  let nops = window - commands in
  let slots =
    [ (Act, banks) ]
    @ (if reads > 0 then [ (Rd, reads) ] else [])
    @ (if writes > 0 then [ (Wr, writes) ] else [])
    @ [ (Pre, banks) ]
    @ if nops > 0 then [ (Nop, nops) ] else []
  in
  v ~name slots

let idd7 (spec : Spec.t) =
  idd7_loop ~name:"Idd7" ~reads:spec.Spec.banks ~writes:0 spec

let idd7_mixed (spec : Spec.t) =
  let half = spec.Spec.banks / 2 in
  idd7_loop ~name:"Idd7-mixed" ~reads:(spec.Spec.banks - half) ~writes:half
    spec

let paper_example =
  v ~name:"paper example"
    [ (Act, 1); (Nop, 1); (Wr, 1); (Nop, 1); (Rd, 1); (Nop, 1); (Pre, 1);
      (Nop, 1) ]
