(* Model output record and printing. *)

type t = {
  config_name : string;
  pattern_name : string;
  power : float;
  current : float;
  background_power : float;
  loop_time : float;
  bits_per_loop : float;
  energy_per_bit : float option;
  op_rates : (Operation.kind * float) list;
  breakdown : (string * float) list;
}

let is_finite t =
  Float.is_finite t.power && Float.is_finite t.current
  && Float.is_finite t.background_power
  && Float.is_finite t.loop_time
  && Float.is_finite t.bits_per_loop
  && (match t.energy_per_bit with
     | None -> true
     | Some e -> Float.is_finite e)
  && List.for_all (fun (_, r) -> Float.is_finite r) t.op_rates
  && List.for_all (fun (_, w) -> Float.is_finite w) t.breakdown

let pp_header ppf t =
  Format.fprintf ppf "%s | %s: %s (%s)" t.config_name t.pattern_name
    (Vdram_units.Si.format_eng ~unit_symbol:"W" t.power)
    (Vdram_units.Si.format_eng ~unit_symbol:"A" t.current);
  match t.energy_per_bit with
  | Some e ->
    Format.fprintf ppf ", %s/bit"
      (Vdram_units.Si.format_eng ~unit_symbol:"J" e)
  | None -> ()

let pp_breakdown ~limit ppf t =
  let entries =
    match limit with
    | Some n ->
      List.filteri (fun i _ -> i < n) t.breakdown
    | None -> t.breakdown
  in
  List.iter
    (fun (label, w) ->
      Format.fprintf ppf "@,  %-36s %10s  %5.1f%%" label
        (Vdram_units.Si.format_eng ~unit_symbol:"W" w)
        (100.0 *. w /. t.power))
    entries

let pp ppf t =
  Format.fprintf ppf "@[<v>%a%a@]" pp_header t (pp_breakdown ~limit:(Some 8)) t

type category =
  | Array
  | Row_path
  | Column_path
  | Data_path
  | Interface
  | Clocking
  | Peripheral_logic
  | Static

let category_name = function
  | Array -> "cell array"
  | Row_path -> "row path"
  | Column_path -> "column path"
  | Data_path -> "data path"
  | Interface -> "interface"
  | Clocking -> "clocking"
  | Peripheral_logic -> "peripheral logic"
  | Static -> "static"

let has_prefix prefix label =
  String.length label >= String.length prefix
  && String.sub label 0 (String.length prefix) = prefix

let category_of_label label =
  if
    List.exists
      (fun p -> has_prefix p label)
      [ "bitline"; "cell restore"; "sense amplifier" ]
  then Array
  else if
    List.exists
      (fun p -> has_prefix p label)
      [ "master wordline"; "local wordline"; "wordline select";
        "row decode"; "row address"; "logic: row command" ]
  then Row_path
  else if
    List.exists
      (fun p -> has_prefix p label)
      [ "column"; "local data lines"; "master array data lines";
        "secondary sense amplifier"; "write drivers";
        "logic: column command" ]
  then Column_path
  else if
    List.exists
      (fun p -> has_prefix p label)
      [ "read data bus"; "write data bus"; "logic: serializer" ]
  then Data_path
  else if
    List.exists
      (fun p -> has_prefix p label)
      [ "DQ pre-drivers"; "DQ receivers"; "input receiver bias" ]
  then Interface
  else if
    List.exists
      (fun p -> has_prefix p label)
      [ "clock"; "logic: clock"; "logic: DLL" ]
  then Clocking
  else if has_prefix "constant current" label then Static
  else Peripheral_logic

let by_category t =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (label, w) ->
      let c = category_of_label label in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals c) in
      Hashtbl.replace totals c (prev +. w))
    t.breakdown;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let pp_categories ppf t =
  Format.fprintf ppf "@[<v>%a" pp_header t;
  List.iter
    (fun (c, w) ->
      Format.fprintf ppf "@,  %-18s %10s  %5.1f%%" (category_name c)
        (Vdram_units.Si.format_eng ~unit_symbol:"W" w)
        (100.0 *. w /. t.power))
    (by_category t);
  Format.fprintf ppf "@]"

let pp_full ppf t =
  Format.fprintf ppf "@[<v>%a@,background: %s@,loop: %s, %.0f bits%a@]"
    pp_header t
    (Vdram_units.Si.format_eng ~unit_symbol:"W" t.background_power)
    (Vdram_units.Si.format_eng ~unit_symbol:"s" t.loop_time)
    t.bits_per_loop
    (pp_breakdown ~limit:None) t
