(* Per-operation charge determination. *)

module C = Vdram_circuits.Contribution
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module Sense_amp = Vdram_circuits.Sense_amp
module Wordline = Vdram_circuits.Wordline
module Column = Vdram_circuits.Column

type kind = Activate | Precharge | Read | Write | Nop

let all = [ Activate; Precharge; Read; Write; Nop ]

(* Dense operation table: the staged engine's extraction record and
   the mix kernel index flat arrays by this instead of walking assoc
   lists. *)
let n = 5

let index = function
  | Activate -> 0
  | Precharge -> 1
  | Read -> 2
  | Write -> 3
  | Nop -> 4

let of_index = function
  | 0 -> Activate
  | 1 -> Precharge
  | 2 -> Read
  | 3 -> Write
  | 4 -> Nop
  | i -> invalid_arg (Printf.sprintf "Operation.of_index: %d" i)

let name = function
  | Activate -> "activate"
  | Precharge -> "precharge"
  | Read -> "read"
  | Write -> "write"
  | Nop -> "nop"

let to_trigger_op = function
  | Activate -> Some `Activate
  | Precharge -> Some `Precharge
  | Read -> Some `Read
  | Write -> Some `Write
  | Nop -> None

let trigger_matches trigger kind =
  match (trigger, kind) with
  | Logic_block.Always, Nop -> true
  | Logic_block.Always, _ -> false
  | Logic_block.On_operation ops, k ->
    (match to_trigger_op k with
     | Some op -> List.mem op ops
     | None -> false)

let bus_event (cfg : Config.t) role label =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  match Config.bus cfg role with
  | None -> []
  | Some b ->
    [ C.v ~label ~domain:Vdram_circuits.Domains.Vint
        ~energy:(Bus.energy_per_event p d b) ]

let data_transfer (cfg : Config.t) role label ~bits =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  match Config.bus cfg role with
  | None -> []
  | Some b ->
    (* Internal data buses are precharged dual-rail: one event per
       transported bit independent of the data pattern. *)
    let per_bit = Bus.energy_per_bit p d b in
    [ C.v ~label ~domain:Vdram_circuits.Domains.Vint
        ~energy:(float_of_int bits *. per_bit) ]

(* Internal interface load per transported bit: output pre-drivers and
   level shifters for reads, receivers / latches / strobe distribution
   for writes.  The Vddq output stage itself is excluded, as in the
   paper. *)
let dq_interface (cfg : Config.t) ~bits ~write =
  let d = cfg.Config.domains in
  let cap =
    if write then cfg.Config.io_receiver_cap else cfg.Config.io_predriver_cap
  in
  let label = if write then "DQ receivers" else "DQ pre-drivers" in
  [
    C.v ~label ~domain:Vdram_circuits.Domains.Vdd
      ~energy:
        (cfg.Config.data_toggle
        *. C.events ~count:(float_of_int bits) ~cap
             ~voltage:d.Vdram_circuits.Domains.vdd);
  ]

(* [activated_bits] lets a caller that has already resolved the
   floorplan (the staged engine's geometry stage) feed the page size in
   instead of re-deriving it from the configuration.

   Each operation's contribution list is a concatenation of per-group
   chunks.  The chunk plan of each kind — which group produces which
   chunk, in concatenation order — is static (it never depends on
   configuration values) and built once at module initialization as
   closures over a per-configuration [ctx]: [segments] wraps them as
   thunks for callers that force every chunk, while delta-extraction
   reads {!plan} and calls {!chunk} for just the dirtied positions,
   paying neither list nor closure construction per operation. *)
type ctx = {
  c_cfg : Config.t;
  c_p : Vdram_tech.Params.t;
  c_d : Vdram_circuits.Domains.t;
  c_g : Vdram_floorplan.Array_geometry.t;
  c_page : int;
  c_bits : int;
  mutable c_logic : (Logic_block.trigger * C.t) array;
      (* per-block contribution, built lazily on the first logic chunk
         and shared by every operation kind's chunk of one [ctx]: a
         block's per-fire energy and label never depend on which
         operation triggered it, so the five logic chunks differ only
         in which table rows they select.  [[||]] means not yet built
         (a configuration with no logic blocks just rebuilds the empty
         table, which costs nothing). *)
}

let ctx ?activated_bits ?geometry (cfg : Config.t) =
  {
    c_cfg = cfg;
    c_p = cfg.Config.tech;
    c_d = cfg.Config.domains;
    c_g =
      (match geometry with
      | Some g -> g
      | None -> Config.geometry cfg);
    c_page =
      (match activated_bits with
      | Some bits -> bits
      | None -> Config.activated_bits cfg);
    c_bits = Spec.bits_per_column_command cfg.Config.spec;
    c_logic = [||];
  }

(* Label strings per logic-block list, memoized on physical identity:
   perturbed configurations of a sweep share the block list with their
   base, so every [ctx] of the sweep reuses the very same strings
   instead of re-concatenating them — and delta-extraction's
   label-lockstep check against the base's labels short-circuits on
   physical equality instead of comparing characters. *)
let logic_labels_memo : (Logic_block.t list * string array) option Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> None)

let logic_labels blocks =
  match Domain.DLS.get logic_labels_memo with
  | Some (b, ls) when b == blocks -> ls
  | _ ->
    let ls =
      Array.of_list
        (List.map
           (fun (b : Logic_block.t) -> "logic: " ^ b.Logic_block.name)
           blocks)
    in
    Domain.DLS.set logic_labels_memo (Some (blocks, ls));
    ls

let logic_table x =
  if Array.length x.c_logic > 0 then x.c_logic
  else begin
    let labels = logic_labels x.c_cfg.Config.logic in
    let a =
      Array.of_list
        (List.mapi
           (fun i (b : Logic_block.t) ->
             ( b.Logic_block.trigger,
               C.v ~label:labels.(i) ~domain:Vdram_circuits.Domains.Vint
                 ~energy:(Logic_block.energy_per_fire x.c_p x.c_d b) ))
           x.c_cfg.Config.logic)
    in
    x.c_logic <- a;
    a
  end

(* Logic blocks that evaluate for this operation occurrence, in
   configuration order — selected rows of the shared table, so the
   contribution records themselves are shared between kinds. *)
let logic_contributions x kind =
  let tbl = logic_table x in
  let n = Array.length tbl in
  let rec collect i =
    if i >= n then []
    else
      let trigger, c = tbl.(i) in
      if trigger_matches trigger kind then c :: collect (i + 1)
      else collect (i + 1)
  in
  collect 0

let plan_of kind : (C.group * (ctx -> C.t list)) array =
  let logic = (C.Logic, fun x -> logic_contributions x kind) in
  match kind with
  | Activate ->
    [|
      ( C.Wordline,
        fun x -> Wordline.activate x.c_p x.c_d ~geometry:x.c_g ~page_bits:x.c_page
      );
      ( C.Sense_amp,
        fun x ->
          Sense_amp.activate x.c_p x.c_d ~geometry:x.c_g ~page_bits:x.c_page );
      ( C.Bus,
        fun x ->
          bus_event x.c_cfg Bus.Row_address "row address bus"
          @ bus_event x.c_cfg Bus.Bank_address "bank address bus"
          @ bus_event x.c_cfg Bus.Command "command bus" );
      logic;
    |]
  | Precharge ->
    [|
      ( C.Wordline,
        fun x ->
          Wordline.precharge x.c_p x.c_d ~geometry:x.c_g ~page_bits:x.c_page );
      ( C.Sense_amp,
        fun x ->
          Sense_amp.precharge x.c_p x.c_d ~geometry:x.c_g ~page_bits:x.c_page );
      ( C.Bus,
        fun x ->
          bus_event x.c_cfg Bus.Bank_address "bank address bus"
          @ bus_event x.c_cfg Bus.Command "command bus" );
      logic;
    |]
  | Read ->
    [|
      ( C.Column,
        fun x -> Column.access x.c_p x.c_d ~geometry:x.c_g ~bits:x.c_bits ~write:false
      );
      ( C.Bus,
        fun x -> data_transfer x.c_cfg Bus.Read_data "read data bus" ~bits:x.c_bits
      );
      (C.Interface, fun x -> dq_interface x.c_cfg ~bits:x.c_bits ~write:false);
      ( C.Bus,
        fun x ->
          bus_event x.c_cfg Bus.Column_address "column address bus"
          @ bus_event x.c_cfg Bus.Bank_address "bank address bus"
          @ bus_event x.c_cfg Bus.Command "command bus" );
      logic;
    |]
  | Write ->
    [|
      ( C.Column,
        fun x -> Column.access x.c_p x.c_d ~geometry:x.c_g ~bits:x.c_bits ~write:true
      );
      ( C.Sense_amp,
        fun x ->
          Sense_amp.write_back x.c_p x.c_d ~bits:x.c_bits
            ~toggle:x.c_cfg.Config.data_toggle );
      ( C.Bus,
        fun x ->
          data_transfer x.c_cfg Bus.Write_data "write data bus" ~bits:x.c_bits );
      (C.Interface, fun x -> dq_interface x.c_cfg ~bits:x.c_bits ~write:true);
      ( C.Bus,
        fun x ->
          bus_event x.c_cfg Bus.Column_address "column address bus"
          @ bus_event x.c_cfg Bus.Bank_address "bank address bus"
          @ bus_event x.c_cfg Bus.Command "command bus" );
      logic;
    |]
  | Nop ->
    (* One control-clock cycle of background: clock trunk and tree
       plus the always-on logic. *)
    [| (C.Bus, fun x -> bus_event x.c_cfg Bus.Clock "clock distribution"); logic |]

let plans = Array.init n (fun i -> plan_of (of_index i))
let plan_groups = Array.map (Array.map fst) plans
let plan_indices_tbl = Array.map (Array.map C.group_index) plan_groups

let plan_masks =
  Array.map
    (Array.fold_left (fun m g -> m lor (1 lsl C.group_index g)) 0)
    plan_groups

(* Shared static arrays: callers must treat them as read-only. *)
let plan kind = plan_groups.(index kind)
let plan_indices kind = plan_indices_tbl.(index kind)
let plan_mask kind = plan_masks.(index kind)
let chunk x kind j = (snd plans.(index kind).(j)) x

let segments ?activated_bits (cfg : Config.t) kind :
    (C.group * (unit -> C.t list)) list =
  let x = ctx ?activated_bits cfg in
  Array.to_list
    (Array.map (fun (g, f) -> (g, fun () -> f x)) plans.(index kind))

let contributions ?activated_bits (cfg : Config.t) kind =
  List.concat_map
    (fun (_, chunk) -> chunk ())
    (segments ?activated_bits cfg kind)

let energy_internal cfg kind =
  List.fold_left
    (fun acc (c : C.t) -> acc +. c.C.energy)
    0.0 (contributions cfg kind)

let energy cfg kind =
  C.total_at_vdd cfg.Config.domains (contributions cfg kind)
