(* Per-operation charge determination. *)

module C = Vdram_circuits.Contribution
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module Sense_amp = Vdram_circuits.Sense_amp
module Wordline = Vdram_circuits.Wordline
module Column = Vdram_circuits.Column

type kind = Activate | Precharge | Read | Write | Nop

let all = [ Activate; Precharge; Read; Write; Nop ]

let name = function
  | Activate -> "activate"
  | Precharge -> "precharge"
  | Read -> "read"
  | Write -> "write"
  | Nop -> "nop"

let to_trigger_op = function
  | Activate -> Some `Activate
  | Precharge -> Some `Precharge
  | Read -> Some `Read
  | Write -> Some `Write
  | Nop -> None

(* Logic blocks that evaluate for this operation occurrence. *)
let logic_contributions (cfg : Config.t) kind =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  let matches (b : Logic_block.t) =
    match (b.Logic_block.trigger, kind) with
    | Logic_block.Always, Nop -> true
    | Logic_block.Always, _ -> false
    | Logic_block.On_operation ops, k ->
      (match to_trigger_op k with
       | Some op -> List.mem op ops
       | None -> false)
  in
  List.filter_map
    (fun b ->
      if matches b then
        Some
          (C.v ~label:("logic: " ^ b.Logic_block.name)
             ~domain:Vdram_circuits.Domains.Vint
             ~energy:(Logic_block.energy_per_fire p d b))
      else None)
    cfg.Config.logic

let bus_event (cfg : Config.t) role label =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  match Config.bus cfg role with
  | None -> []
  | Some b ->
    [ C.v ~label ~domain:Vdram_circuits.Domains.Vint
        ~energy:(Bus.energy_per_event p d b) ]

let data_transfer (cfg : Config.t) role label ~bits =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  match Config.bus cfg role with
  | None -> []
  | Some b ->
    (* Internal data buses are precharged dual-rail: one event per
       transported bit independent of the data pattern. *)
    let per_bit = Bus.energy_per_bit p d b in
    [ C.v ~label ~domain:Vdram_circuits.Domains.Vint
        ~energy:(float_of_int bits *. per_bit) ]

(* Internal interface load per transported bit: output pre-drivers and
   level shifters for reads, receivers / latches / strobe distribution
   for writes.  The Vddq output stage itself is excluded, as in the
   paper. *)
let dq_interface (cfg : Config.t) ~bits ~write =
  let d = cfg.Config.domains in
  let cap =
    if write then cfg.Config.io_receiver_cap else cfg.Config.io_predriver_cap
  in
  let label = if write then "DQ receivers" else "DQ pre-drivers" in
  [
    C.v ~label ~domain:Vdram_circuits.Domains.Vdd
      ~energy:
        (cfg.Config.data_toggle
        *. C.events ~count:(float_of_int bits) ~cap
             ~voltage:d.Vdram_circuits.Domains.vdd);
  ]

(* [activated_bits] lets a caller that has already resolved the
   floorplan (the staged engine's geometry stage) feed the page size in
   instead of re-deriving it from the configuration. *)
let contributions ?activated_bits (cfg : Config.t) kind =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  let g = Config.geometry cfg in
  let page =
    match activated_bits with
    | Some bits -> bits
    | None -> Config.activated_bits cfg
  in
  let bits = Spec.bits_per_column_command cfg.Config.spec in
  let logic = logic_contributions cfg kind in
  match kind with
  | Activate ->
    Wordline.activate p d ~geometry:g ~page_bits:page
    @ Sense_amp.activate p d ~geometry:g ~page_bits:page
    @ bus_event cfg Bus.Row_address "row address bus"
    @ bus_event cfg Bus.Bank_address "bank address bus"
    @ bus_event cfg Bus.Command "command bus"
    @ logic
  | Precharge ->
    Wordline.precharge p d ~geometry:g ~page_bits:page
    @ Sense_amp.precharge p d ~geometry:g ~page_bits:page
    @ bus_event cfg Bus.Bank_address "bank address bus"
    @ bus_event cfg Bus.Command "command bus"
    @ logic
  | Read ->
    Column.access p d ~geometry:g ~bits ~write:false
    @ data_transfer cfg Bus.Read_data "read data bus" ~bits
    @ dq_interface cfg ~bits ~write:false
    @ bus_event cfg Bus.Column_address "column address bus"
    @ bus_event cfg Bus.Bank_address "bank address bus"
    @ bus_event cfg Bus.Command "command bus"
    @ logic
  | Write ->
    Column.access p d ~geometry:g ~bits ~write:true
    @ Sense_amp.write_back p d ~bits ~toggle:cfg.Config.data_toggle
    @ data_transfer cfg Bus.Write_data "write data bus" ~bits
    @ dq_interface cfg ~bits ~write:true
    @ bus_event cfg Bus.Column_address "column address bus"
    @ bus_event cfg Bus.Bank_address "bank address bus"
    @ bus_event cfg Bus.Command "command bus"
    @ logic
  | Nop ->
    (* One control-clock cycle of background: clock trunk and tree
       plus the always-on logic. *)
    bus_event cfg Bus.Clock "clock distribution" @ logic

let energy_internal cfg kind =
  List.fold_left
    (fun acc (c : C.t) -> acc +. c.C.energy)
    0.0 (contributions cfg kind)

let energy cfg kind =
  C.total_at_vdd cfg.Config.domains (contributions cfg kind)
