(* Peak (windowed average) current estimates. *)

module Domains = Vdram_circuits.Domains

type t = {
  operation : Operation.kind;
  window : float;
  charge : float;
  current : float;
}

let window_of (cfg : Config.t) = function
  | Operation.Activate -> cfg.Config.spec.Spec.trcd
  | Operation.Precharge -> cfg.Config.spec.Spec.trp
  | Operation.Read | Operation.Write ->
    float_of_int (Spec.clocks_per_column_command cfg.Config.spec)
    /. cfg.Config.spec.Spec.control_clock
  | Operation.Nop -> 1.0 /. cfg.Config.spec.Spec.control_clock

let of_operation cfg op =
  let d = cfg.Config.domains in
  let energy = Operation.energy cfg op in
  let charge = energy /. d.Domains.vdd in
  let window = window_of cfg op in
  { operation = op; window; charge; current = charge /. window }

let all cfg =
  List.map (of_operation cfg) Operation.all
  |> List.sort (fun a b -> Float.compare b.current a.current)

let worst_case cfg =
  let act = of_operation cfg Operation.Activate in
  let rd = of_operation cfg Operation.Read in
  let background =
    Model.background_power cfg /. cfg.Config.domains.Domains.vdd
  in
  (4.0 *. act.current) +. rd.current +. background

let pp ppf t =
  Format.fprintf ppf "%-9s %8.2f nC over %5.1f ns -> %6.1f mA"
    (Operation.name t.operation)
    (t.charge *. 1e9) (t.window *. 1e9) (t.current *. 1e3)
