(* Full DRAM description and the commodity default builder. *)

module Node = Vdram_tech.Node
module Scaling = Vdram_tech.Scaling
module Roadmap = Vdram_tech.Roadmap
module Params = Vdram_tech.Params
module Domains = Vdram_circuits.Domains
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module Floorplan = Vdram_floorplan.Floorplan
module Array_geometry = Vdram_floorplan.Array_geometry

type t = {
  name : string;
  node : Node.t;
  spec : Spec.t;
  domains : Domains.t;
  tech : Params.t;
  floorplan : Floorplan.t;
  buses : Bus.t list;
  logic : Logic_block.t list;
  data_toggle : float;
  io_predriver_cap : float;
  io_receiver_cap : float;
  receiver_bias : float;
  input_receivers : int;
  activation_fraction : float;
}

let geometry t = t.floorplan.Floorplan.geometry

let page_bits t =
  let g = geometry t in
  g.Array_geometry.subarrays_along_wl * g.Array_geometry.bits_per_lwl

let activated_bits t =
  let g = geometry t in
  max g.Array_geometry.bits_per_lwl
    (int_of_float (t.activation_fraction *. float_of_int (page_bits t)))

let with_activation_fraction t f =
  if f <= 0.0 || f > 1.0 then
    invalid_arg "Config.with_activation_fraction: outside (0, 1]";
  { t with activation_fraction = f }

let bus t role =
  List.find_opt (fun (b : Bus.t) -> b.Bus.role = role) t.buses

let standard_complexity = function
  | Node.Sdr -> 1.0
  | Node.Ddr -> 1.4
  | Node.Ddr2 -> 2.0
  | Node.Ddr3 -> 3.0
  | Node.Ddr4 -> 5.0
  | Node.Ddr5 -> 8.5

let default_logic_blocks ~node ~(spec : Spec.t) =
  let standard = Node.standard node in
  let cx = standard_complexity standard in
  let w = Scaling.logic_gate_width node in
  let wiring_density = Float.min 0.9 (0.3 +. (0.07 *. cx)) in
  let block ?transistors_per_gate ?toggle ~name ~gates ~trigger () =
    Logic_block.v ?transistors_per_gate ?toggle ~w_nmos:w ~w_pmos:w
      ~wiring_density ~name ~gates ~trigger ()
  in
  let address_wires =
    spec.Spec.row_bits + spec.Spec.col_bits + spec.Spec.bank_bits
    + spec.Spec.misc_control
  in
  let serdes_gates =
    200.0 *. float_of_int (spec.Spec.io_width * spec.Spec.prefetch)
  in
  let dll =
    match standard with
    | Node.Sdr -> []
    | _ ->
      [ block ~name:"DLL / clock synchronisation" ~gates:(3500.0 *. cx)
          ~toggle:1.0 ~trigger:Logic_block.Always () ]
  in
  [
    block ~name:"central control logic" ~gates:(6000.0 *. cx) ~toggle:0.15
      ~trigger:Logic_block.Always ();
    block ~name:"clock distribution" ~gates:(1800.0 *. cx) ~toggle:1.0
      ~trigger:Logic_block.Always ();
    block ~name:"command/address input"
      ~gates:(60.0 *. float_of_int address_wires) ~toggle:0.25
      ~trigger:Logic_block.Always ();
    block ~name:"row command logic" ~gates:(55000.0 *. cx) ~toggle:1.0
      ~trigger:(Logic_block.On_operation [ `Activate; `Precharge ]) ();
    block ~name:"column command logic" ~gates:(20000.0 *. cx) ~toggle:1.0
      ~trigger:(Logic_block.On_operation [ `Read; `Write ]) ();
    block ~name:"serializer/deserializer" ~gates:serdes_gates ~toggle:1.0
      ~trigger:(Logic_block.On_operation [ `Read; `Write ]) ();
  ]
  @ dll

let default_buses ~floorplan ~node ~(spec : Spec.t) =
  let fp = floorplan in
  let cc = Floorplan.center_cell fp in
  let xc, yc = Floorplan.center fp cc in
  let banks = Floorplan.bank_cells fp in
  let nbanks = float_of_int (List.length banks) in
  let mean f =
    List.fold_left (fun acc b -> acc +. f (Floorplan.center fp b)) 0.0 banks
    /. nbanks
  in
  (* Data and address buses are shared spines along the center stripe
     (Figure 1): a transfer toggles the wire from the pads to the die
     edge, so the spine half-width is the effective segment length. *)
  let horiz = Floorplan.die_width fp /. 2.0 in
  let vert = mean (fun (_, y) -> Float.abs (y -. yc)) in
  ignore xc;
  let block_h = Array_geometry.block_height fp.Floorplan.geometry in
  (* The vertical run stops at the bank edge where the master array
     data lines take over. *)
  let vert_to_edge = Float.max 0.0 (vert -. (block_h /. 2.0)) in
  (* Re-driver widths follow the paper's signaling example (9.6 / 19.2
     um at its node), scaled with the core devices. *)
  let dev = Scaling.factor Scaling.F_core_device node in
  let buffer = (9.6e-6 *. dev, 19.2e-6 *. dev) in
  let small_buffer = (2.4e-6 *. dev, 4.8e-6 *. dev) in
  let seg = Bus.segment in
  let data_segments ~prefix =
    [
      seg
        ~name:(prefix ^ " pad interface")
        ~length:(0.25 *. Floorplan.inside_length fp cc ~frac:1.0 ~dir:`H)
        ~buffer ~mux:spec.Spec.prefetch ();
      seg ~name:(prefix ^ " center stripe run") ~length:horiz ~buffer ();
      seg ~name:(prefix ^ " column stripe run") ~length:vert_to_edge
        ~buffer:small_buffer ();
    ]
  in
  let address_segments =
    [
      seg ~name:"address center run" ~length:horiz ~buffer:small_buffer
        ~toggle:0.5 ();
      seg ~name:"address bank run" ~length:vert_to_edge ~toggle:0.5 ();
    ]
  in
  [
    Bus.v ~name:"write data" ~role:Bus.Write_data ~wires:spec.Spec.io_width
      (data_segments ~prefix:"write");
    Bus.v ~name:"read data" ~role:Bus.Read_data ~wires:spec.Spec.io_width
      (data_segments ~prefix:"read");
    Bus.v ~name:"row address" ~role:Bus.Row_address ~wires:spec.Spec.row_bits
      address_segments;
    Bus.v ~name:"column address" ~role:Bus.Column_address
      ~wires:spec.Spec.col_bits address_segments;
    Bus.v ~name:"bank address" ~role:Bus.Bank_address
      ~wires:(max 1 spec.Spec.bank_bits)
      [ seg ~name:"bank address center run" ~length:horiz ~toggle:0.5 () ];
    Bus.v ~name:"command" ~role:Bus.Command ~wires:spec.Spec.misc_control
      [
        seg ~name:"command center run" ~length:horiz ~buffer:small_buffer
          ~toggle:0.5 ();
      ];
    Bus.v ~name:"clock" ~role:Bus.Clock ~wires:spec.Spec.clock_wires
      [
        seg ~name:"clock trunk" ~length:(Floorplan.die_width fp /. 2.0)
          ~buffer ();
        seg ~name:"clock tree"
          ~length:(Floorplan.die_height fp /. 4.0)
          ~buffer:small_buffer ();
      ];
  ]

let log2i n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let representative_node = function
  | Node.Sdr -> Node.N170
  | Node.Ddr -> Node.N110
  | Node.Ddr2 -> Node.N75
  | Node.Ddr3 -> Node.N55
  | Node.Ddr4 -> Node.N31
  | Node.Ddr5 -> Node.N18

let commodity ?name ?standard ?density_bits ?io_width ?datarate ?banks
    ?page_bits ?bits_per_bitline ?bits_per_lwl ?style ?prefetch
    ?(data_toggle = 0.5) ~node () =
  let g = Roadmap.generation node in
  let standard = Option.value ~default:(Node.standard node) standard in
  (* Interface-bound properties come from the standard's representative
     generation; the node only drives technology, geometry and internal
     voltage headroom.  A 1 Gb DDR2 die shrunk to 65 nm keeps the DDR2
     interface and its 1.8 V supply. *)
  let gi = Roadmap.generation (representative_node standard) in
  let native = standard = Node.standard node in
  (* Density, data rate and timings track the node; bank count, page
     size, prefetch and voltages track the interface standard. *)
  let density_bits =
    Option.value
      ~default:
        (if native then g.Roadmap.density_bits else gi.Roadmap.density_bits)
      density_bits
  in
  let io_width = Option.value ~default:gi.Roadmap.io_width io_width in
  let datarate =
    Option.value
      ~default:(if native then g.Roadmap.datarate else gi.Roadmap.datarate)
      datarate
  in
  let banks = Option.value ~default:gi.Roadmap.banks banks in
  let page_bits = Option.value ~default:gi.Roadmap.page_bits page_bits in
  let control_clock =
    match standard with Node.Sdr -> datarate | _ -> datarate /. 2.0
  in
  let rows_per_bank =
    density_bits /. float_of_int (banks * page_bits)
  in
  let spec =
    Spec.v ~io_width ~datarate ~control_clock
      ~bank_bits:(log2i banks)
      ~row_bits:(log2i (int_of_float rows_per_bank))
      ~col_bits:(log2i (page_bits / io_width))
      ~prefetch:(Option.value ~default:gi.Roadmap.prefetch prefetch)
      ~burst_length:
        (max 4 (Option.value ~default:gi.Roadmap.burst_length prefetch))
      ~banks ~density_bits
      ~trc:(if native then g.Roadmap.trc else Float.max g.Roadmap.trc gi.Roadmap.trc)
      ~trcd:(if native then g.Roadmap.trcd else Float.max g.Roadmap.trcd gi.Roadmap.trcd)
      ~trp:(if native then g.Roadmap.trp else Float.max g.Roadmap.trp gi.Roadmap.trp)
      ()
  in
  let f = Node.feature_size node in
  (* A folded architecture implies the 8F2 cell, an open one 6F2 or
     denser; an explicit style override carries its cell factor. *)
  let style, cell_factor =
    match style with
    | Some Array_geometry.Folded -> (Array_geometry.Folded, 8.0)
    | Some Array_geometry.Open ->
      (Array_geometry.Open, Float.min 6.0 g.Roadmap.cell_factor)
    | None ->
      ( (if g.Roadmap.cell_factor >= 8.0 then Array_geometry.Folded
         else Array_geometry.Open),
        g.Roadmap.cell_factor )
  in
  (* Wordline pitch: cell_factor / 2 fits pitch product to the cell
     area with a 2F bitline pitch. *)
  let geometry =
    Array_geometry.derive ~style ~csl_blocks:1
      ~bank_bits:(density_bits /. float_of_int banks)
      ~page_bits
      ~bits_per_bitline:
        (Option.value ~default:g.Roadmap.bits_per_bitline bits_per_bitline)
      ~bits_per_lwl:
        (Option.value ~default:g.Roadmap.bits_per_lwl bits_per_lwl)
      ~wl_pitch:(cell_factor /. 2.0 *. f)
      ~bl_pitch:(2.0 *. f)
      ~sa_stripe:(Scaling.sa_stripe_width node)
      ~lwd_stripe:(Scaling.lwd_stripe_width node)
      ()
  in
  let stripe_scale = Scaling.factor Scaling.F_stripe_width node in
  let floorplan =
    Floorplan.commodity ~geometry ~banks
      ~row_logic:(200e-6 *. stripe_scale)
      ~column_logic:(200e-6 *. stripe_scale)
      ~center_stripe:
        (530e-6 *. stripe_scale *. sqrt (standard_complexity standard))
  in
  let domains =
    (* External supply fixed by the standard; internal rails take the
       lower of the standard's and the node's roadmap values (a shrunk
       die profits from the newer technology's headroom). *)
    Domains.v ~vdd:gi.Roadmap.vdd
      ~vint:(Float.min gi.Roadmap.vint g.Roadmap.vint)
      ~vbl:(Float.min gi.Roadmap.vbl g.Roadmap.vbl)
      ~vpp:(Float.min gi.Roadmap.vpp g.Roadmap.vpp)
      ()
  in
  let tech = Scaling.params_at node in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "%.0fM %s x%d-%.0f (%s)"
        (density_bits /. (2.0 ** 20.0))
        (Node.standard_name standard)
        io_width (datarate /. 1e6) (Node.name node)
  in
  {
    name;
    node;
    spec;
    domains;
    tech;
    floorplan;
    buses = default_buses ~floorplan ~node ~spec;
    logic = default_logic_blocks ~node ~spec;
    data_toggle;
    io_predriver_cap = 5.0e-12 *. Scaling.factor Scaling.F_wire_cap node;
    io_receiver_cap = 2.5e-12 *. Scaling.factor Scaling.F_wire_cap node;
    receiver_bias =
      (match standard with
       | Node.Sdr | Node.Ddr -> 0.10e-3
       | Node.Ddr2 -> 0.50e-3
       | Node.Ddr3 -> 0.45e-3
       | Node.Ddr4 -> 0.35e-3
       | Node.Ddr5 -> 0.30e-3);
    input_receivers =
      spec.Spec.row_bits + spec.Spec.bank_bits + spec.Spec.misc_control + 2;
    activation_fraction = 1.0;
  }

let of_generation (g : Roadmap.t) = commodity ~node:g.Roadmap.node ()

let with_tech t tech = { t with tech }
let with_domains t domains = { t with domains }
let with_spec t spec = { t with spec }
let map_logic t f = { t with logic = List.map f t.logic }
let map_buses t f = { t with buses = List.map f t.buses }
let with_data_toggle t data_toggle = { t with data_toggle }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@,%a@,%a@,%a@]" t.name Spec.pp t.spec
    Domains.pp t.domains Floorplan.pp t.floorplan
