(** The five basic operations and their energy (Figure 4: "determine
    charge associated with activate, precharge, read and write"). *)

type kind = Activate | Precharge | Read | Write | Nop

val all : kind list
val name : kind -> string

val n : int
(** Number of operation kinds.  The staged extraction record and the
    pattern-mix kernel index dense arrays of this length by {!index}
    instead of walking [(kind * _)] assoc lists. *)

val index : kind -> int
(** Dense index in [Operation.all] order: Activate 0 .. Nop 4. *)

val of_index : int -> kind
(** Inverse of {!index}; raises [Invalid_argument] outside [0, n). *)

val segments :
  ?activated_bits:int ->
  Config.t ->
  kind ->
  (Vdram_circuits.Contribution.group * (unit -> Vdram_circuits.Contribution.t list))
  list
(** The operation's contribution list as lazily-forced per-circuit-group
    chunks, in concatenation order: forcing every chunk in sequence
    yields exactly {!contributions}.  The group sequence of an
    operation kind is static (it never depends on configuration
    values), which is what lets delta-extraction splice clean chunks
    from a base extraction positionally. *)

type ctx
(** The per-configuration prelude every chunk reads (technology,
    domains, geometry, resolved page and column bits), built once and
    shared across chunk evaluations of one configuration. *)

val ctx :
  ?activated_bits:int ->
  ?geometry:Vdram_floorplan.Array_geometry.t ->
  Config.t ->
  ctx
(** [activated_bits] and [geometry] let a caller that already resolved
    the floorplan (the staged engine's geometry stage, or the delta
    probe which compared geometries a moment earlier) feed the results
    in instead of re-deriving them. *)

val plan : kind -> Vdram_circuits.Contribution.group array
(** The operation's static chunk plan: which circuit group produces
    chunk [j], in the same concatenation order as {!segments}.  The
    returned array is shared — treat it as read-only. *)

val plan_indices : kind -> int array
(** {!plan} with each group already mapped through
    [Contribution.group_index] — the delta splice loop compares these
    against stored segment groups position by position, so the variant
    dispatch is paid once at module initialization, not per chunk of
    every perturbed item.  Shared and read-only like {!plan}. *)

val plan_mask : kind -> int
(** Bitmask over [Contribution.group_index] of the groups appearing in
    {!plan} — lets a delta probe decide in one [land] whether any of an
    operation's chunks can be touched by a set of dirtied groups. *)

val chunk : ctx -> kind -> int -> Vdram_circuits.Contribution.t list
(** Evaluate chunk [j] of the operation's plan alone — what
    delta-extraction calls for just the dirtied positions, paying no
    list or closure construction for the clean ones.  Identical to
    forcing the [j]-th thunk of {!segments}. *)

val contributions :
  ?activated_bits:int -> Config.t -> kind -> Vdram_circuits.Contribution.t list
(** Every labelled charge/discharge bundle of one occurrence of the
    operation: array and row/column path events, bus transfers and
    triggered logic blocks.  [Nop] is the per-control-clock-cycle
    background (clock tree, always-on logic).  [activated_bits] lets a
    caller that already resolved the floorplan (the staged engine's
    geometry stage) feed the page size in instead of re-deriving it. *)

val energy : Config.t -> kind -> float
(** Energy drawn from the external supply per occurrence (generator
    efficiencies applied), joules. *)

val energy_internal : Config.t -> kind -> float
(** Energy dissipated internally per occurrence, before efficiency
    division. *)
