(** The five basic operations and their energy (Figure 4: "determine
    charge associated with activate, precharge, read and write"). *)

type kind = Activate | Precharge | Read | Write | Nop

val all : kind list
val name : kind -> string

val contributions :
  ?activated_bits:int -> Config.t -> kind -> Vdram_circuits.Contribution.t list
(** Every labelled charge/discharge bundle of one occurrence of the
    operation: array and row/column path events, bus transfers and
    triggered logic blocks.  [Nop] is the per-control-clock-cycle
    background (clock tree, always-on logic).  [activated_bits] lets a
    caller that already resolved the floorplan (the staged engine's
    geometry stage) feed the page size in instead of re-deriving it. *)

val energy : Config.t -> kind -> float
(** Energy drawn from the external supply per occurrence (generator
    efficiencies applied), joules. *)

val energy_internal : Config.t -> kind -> float
(** Energy dissipated internally per occurrence, before efficiency
    division. *)
