(** Peak-current estimates per operation.

    The average-power model books energy per operation; dividing each
    operation's supply charge by the time window it flows in gives the
    peak current the power-delivery network must carry — the quantity
    behind tFAW-style activation limits.  Estimates are upper bounds
    of the average current during the window, not transient spikes. *)

type t = {
  operation : Operation.kind;
  window : float;   (** seconds the charge flows in *)
  charge : float;   (** coulombs drawn from the external supply *)
  current : float;  (** A, charge / window *)
}

val of_operation : Config.t -> Operation.kind -> t
(** Windows: activate charge flows during tRCD, precharge during tRP,
    column bursts during their bus occupancy, nop across one clock. *)

val all : Config.t -> t list
(** All five operations, descending by current. *)

val worst_case : Config.t -> float
(** The sustained worst case: four overlapping activates (the tFAW
    situation) on top of a gapless read burst and the background,
    amperes. *)

val pp : Format.formatter -> t -> unit
