(** Interface specification of a DRAM device (Table I,
    "Specification" group). *)

type t = {
  io_width : int;          (** DQ pins *)
  datarate : float;        (** bit/s per DQ pin *)
  clock_wires : int;       (** clock wires on die *)
  data_clock : float;      (** Hz *)
  control_clock : float;   (** Hz; command/address sampling rate *)
  bank_bits : int;
  row_bits : int;
  col_bits : int;
  misc_control : int;      (** miscellaneous control signals *)
  prefetch : int;          (** internal (de)serialisation ratio *)
  burst_length : int;
  banks : int;
  density_bits : float;    (** total device capacity in bits *)
  trc : float;             (** row cycle time, s *)
  trcd : float;            (** activate-to-column delay, s *)
  trp : float;             (** precharge time, s *)
  tfaw : float;            (** four-activate window, s *)
  trefi : float;           (** average refresh-command interval, s *)
  trfc : float;            (** refresh cycle time, s *)
}

val default_trefi : float
(** JEDEC refresh-command interval at normal temperature, 7.8 us. *)

val default_trfc : density_bits:float -> float
(** JEDEC refresh cycle time, stepped with device capacity:
    110 ns up to 1 Gb, 160 ns at 2 Gb, 260 ns at 4 Gb, 350 ns beyond. *)

val v :
  ?clock_wires:int -> ?misc_control:int -> ?tfaw:float ->
  ?trefi:float -> ?trfc:float ->
  io_width:int -> datarate:float -> control_clock:float ->
  bank_bits:int -> row_bits:int -> col_bits:int ->
  prefetch:int -> burst_length:int -> banks:int ->
  density_bits:float -> trc:float -> trcd:float -> trp:float ->
  unit -> t
(** [data_clock] is set equal to [control_clock]; [clock_wires]
    defaults to 1, [misc_control] to 6 and [tfaw] to [0.8 * trc];
    [trefi] defaults to {!default_trefi} and [trfc] to
    {!default_trfc}.  Raises [Invalid_argument] on non-positive
    counts or rates. *)

val bits_per_clock : t -> float
(** Bits transferred per DQ pin per control clock:
    [datarate / control_clock] (2.0 for double data rate). *)

val bits_per_column_command : t -> int
(** [io_width * burst_length]. *)

val clocks_per_column_command : t -> int
(** Control-clock cycles one burst occupies on the data pins
    (ceiling), the minimum command spacing for gapless streaming. *)

val core_clock : t -> float
(** Internal core frequency: [datarate / prefetch]. *)

val pp : Format.formatter -> t -> unit
