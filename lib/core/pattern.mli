(** Operating patterns: a command loop repeated continuously at the
    control clock (Table I "Pattern"), plus the standard Idd test
    loops used by datasheets. *)

type command = Act | Pre | Rd | Wr | Nop

val command_name : command -> string

type t = {
  name : string;
  slots : (command * int) list;
      (** run-length encoded loop; one slot per control-clock cycle *)
}

val v : name:string -> (command * int) list -> t
(** Raises [Invalid_argument] on an empty loop or non-positive run
    length. *)

val cycles : t -> int
(** Loop length in control-clock cycles. *)

val count : t -> command -> int
(** Occurrences of a command per loop. *)

val parse : name:string -> string -> (t, string) result
(** Parse the paper's loop syntax: whitespace-separated commands from
    [act | pre | rd | wrt | nop] (also accepts [read | write | wr]). *)

val to_string : t -> string
(** The loop in the paper's syntax. *)

(* Canned datasheet loops.  All spacings respect the device's row
   cycle time and burst data rate. *)

val idle : t
(** All-nop loop (precharge standby, Idd2N-like). *)

val idd0 : Spec.t -> t
(** One-bank activate-precharge cycling at tRC (row operation). *)

val idd4r : Spec.t -> t
(** Gapless burst reads (column read operation). *)

val idd4w : Spec.t -> t
(** Gapless burst writes (column write operation). *)

val idd7 : Spec.t -> t
(** Interleaved activate / read / precharge across all banks at the
    highest sustainable rate (random-access streaming). *)

val idd7_mixed : Spec.t -> t
(** The paper's Figure 10 / Table III pattern: an Idd7-like loop with
    half of the reads replaced by writes. *)

val paper_example : t
(** The Section III example: [act nop wrt nop rd nop pre nop]. *)
