(* Power calculation: operations x rates + background. *)

module C = Vdram_circuits.Contribution
module Domains = Vdram_circuits.Domains
module P = Vdram_tech.Params

let receiver_bias_power (cfg : Config.t) =
  let d = cfg.Config.domains in
  float_of_int cfg.Config.input_receivers
  *. cfg.Config.receiver_bias *. d.Domains.vdd

let background_power (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let nop = Operation.energy cfg Operation.Nop in
  let d = cfg.Config.domains in
  (nop *. spec.Spec.control_clock)
  +. (d.Domains.i_constant *. d.Domains.vdd)
  +. receiver_bias_power cfg

type state =
  | Active_standby
  | Precharge_standby
  | Power_down
  | Self_refresh

let state_name = function
  | Active_standby -> "active standby"
  | Precharge_standby -> "precharge standby"
  | Power_down -> "power-down"
  | Self_refresh -> "self refresh"

(* Rows a refresh command must restore: every bank refreshes one row
   per 8k-row slice of its address space. *)
let rows_per_refresh (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let rows_per_bank =
    spec.Spec.density_bits
    /. float_of_int (spec.Spec.banks * Config.page_bits cfg)
  in
  Float.max 1.0 (rows_per_bank /. 8192.0) *. float_of_int spec.Spec.banks

let refresh_energy (cfg : Config.t) =
  rows_per_refresh cfg
  *. (Operation.energy cfg Operation.Activate
     +. Operation.energy cfg Operation.Precharge)

let refresh_power (cfg : Config.t) =
  refresh_energy cfg /. cfg.Config.spec.Spec.trefi

let powerdown_power (cfg : Config.t) =
  let d = cfg.Config.domains in
  (d.Domains.i_constant *. d.Domains.vdd) +. (0.25 *. background_power cfg)

let idd5b (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let power = background_power cfg +. (refresh_energy cfg /. spec.Spec.trfc) in
  power /. cfg.Config.domains.Domains.vdd

let state_power cfg = function
  | Active_standby | Precharge_standby -> background_power cfg
  | Power_down -> powerdown_power cfg
  | Self_refresh -> powerdown_power cfg +. refresh_power cfg

let op_counts pattern =
  List.filter_map
    (fun kind ->
      let count =
        match kind with
        | Operation.Activate -> Pattern.count pattern Pattern.Act
        | Operation.Precharge -> Pattern.count pattern Pattern.Pre
        | Operation.Read -> Pattern.count pattern Pattern.Rd
        | Operation.Write -> Pattern.count pattern Pattern.Wr
        | Operation.Nop -> 0
      in
      if count > 0 then Some (kind, count) else None)
    Operation.all

(* Shared mix-stage seams: the loop period and the data volume per
   loop.  The abstract interpreter (`vdram check`) mirrors the mix
   stage on intervals and must agree with the concrete stage about
   these two scalars, so both read them from here. *)
let loop_time (spec : Spec.t) pattern =
  float_of_int (Pattern.cycles pattern) /. spec.Spec.control_clock

let bits_per_loop (spec : Spec.t) pattern =
  let data_commands =
    Pattern.count pattern Pattern.Rd + Pattern.count pattern Pattern.Wr
  in
  float_of_int (data_commands * Spec.bits_per_column_command spec)

(* ----- staged evaluation seams ------------------------------------- *)

(* Bump whenever the physics changes in any way that can alter a
   computed number — or, as for ".2", whenever the marshalled
   [extraction] representation changes: the staged engine stamps its
   persistent cache with this, so stale on-disk entries are discarded
   instead of served. *)
let version = "model-2026-08.3"

(* The name identifies a configuration to humans, not to physics: two
   configurations differing only in [name] share every stage output.
   This projection is the content identity the engine's extraction and
   pattern-mix caches key on. *)
let physics_projection (cfg : Config.t) = { cfg with Config.name = "" }

(* ----- per-group sub-keys ------------------------------------------ *)

(* Each circuit group's sub-key is the marshalled tuple of exactly the
   configuration values its charge model reads: two configurations
   with equal sub-keys produce bit-identical contribution chunks for
   that group, so delta-extraction may splice the chunk from a base
   extraction whenever the sub-keys match.  Correctness is content
   addressing, not trust — the key IS the group's read set, and the
   qcheck delta=full property sweeps every lens to police it. *)

let marshal_key v = Marshal.to_string v [ Marshal.No_sharing ]

(* The tuples below are the definition of record for each group's read
   set; {!group_key} marshals and digests them on demand for tests and
   diagnostics.  The delta probe itself never builds them — it runs
   the compiled field-by-field predicates of [dirty_groups], which must
   mirror these tuples exactly; the delta=full qcheck property
   cross-checks the two encodings against each other for every lens. *)
let group_keys ~activated_bits:page (cfg : Config.t) =
  let p = cfg.Config.tech and d = cfg.Config.domains in
  let g = Config.geometry cfg in
  let bits = Spec.bits_per_column_command cfg.Config.spec in
  let wordline =
    ( ( p.P.tox_logic, p.P.tox_hv, p.P.tox_cell, p.P.lmin_logic, p.P.lmin_hv,
        p.P.cj_hv, p.P.l_cell, p.P.w_cell ),
      ( p.P.c_bitline, p.P.bl_wl_coupling, p.P.c_wire_mwl, p.P.mwl_predecode,
        p.P.w_mwl_dec_n, p.P.w_mwl_dec_p, p.P.mwl_dec_activity ),
      ( p.P.w_wlctl_load_n, p.P.w_wlctl_load_p, p.P.w_lwd_n, p.P.w_lwd_p,
        p.P.w_lwd_restore, p.P.c_wire_lwl, p.P.c_wire_signal ),
      (d.Domains.vint, d.Domains.vpp),
      (g, page) )
  in
  let sense_amp =
    ( ( p.P.tox_logic, p.P.tox_hv, p.P.cj_logic, p.P.cj_hv, p.P.c_bitline,
        p.P.c_cell ),
      ( p.P.w_sa_n, p.P.l_sa_n, p.P.w_sa_p, p.P.l_sa_p, p.P.w_sa_eq,
        p.P.l_sa_eq, p.P.w_sa_bitswitch ),
      ( p.P.w_sa_mux, p.P.l_sa_mux, p.P.w_sa_nset, p.P.l_sa_nset,
        p.P.w_sa_pset, p.P.l_sa_pset ),
      (d.Domains.vint, d.Domains.vbl, d.Domains.vpp),
      (g, page, bits, cfg.Config.data_toggle) )
  in
  let column =
    ( ( p.P.c_wire_signal, p.P.bits_per_csl, p.P.tox_logic, p.P.cj_logic,
        p.P.lmin_logic ),
      ( p.P.w_sa_bitswitch, p.P.l_sa_bitswitch, p.P.w_sa_n, p.P.l_sa_n,
        p.P.w_mwl_dec_n, p.P.w_mwl_dec_p, p.P.mwl_predecode,
        p.P.mwl_dec_activity ),
      (d.Domains.vint, d.Domains.vbl),
      (g, bits) )
  in
  let bus =
    ( (p.P.c_wire_signal, p.P.lmin_logic, p.P.tox_logic, p.P.cj_logic),
      d.Domains.vint,
      (cfg.Config.buses, bits) )
  in
  let interface =
    ( d.Domains.vdd,
      cfg.Config.data_toggle,
      cfg.Config.io_predriver_cap,
      cfg.Config.io_receiver_cap,
      bits )
  in
  let logic =
    ( (p.P.lmin_logic, p.P.tox_logic, p.P.cj_logic, p.P.c_wire_signal),
      d.Domains.vint,
      cfg.Config.logic )
  in
  (* Indexed by [C.group_index]. *)
  [|
    Obj.repr wordline;
    Obj.repr sense_amp;
    Obj.repr column;
    Obj.repr bus;
    Obj.repr interface;
    Obj.repr logic;
  |]

(* Dirty-group bitmask over [C.group_index], deciding whether each
   group's sub-key is unchanged without building or serializing the
   projection tuples — a delta probe runs once per perturbed
   configuration, and the tuple builds were measurably its most
   expensive step.  Field comparisons mirror [group_keys] one for one;
   float [=] is false on NaN, which errs toward dirty and is therefore
   safe (an unnecessary re-extract is exact, a wrong splice is not). *)
let dirty_groups ~base_bits ~bits ~geometry_eq (a : Config.t) (b : Config.t) =
  let pa = a.Config.tech and pb = b.Config.tech in
  let da = a.Config.domains and db = b.Config.domains in
  (* Structural [=] never shortcuts on physical equality (a value
     containing NaN must differ from itself), but a perturbed
     configuration is a copy of its base that physically shares every
     substructure the lens did not rebuild — so an explicit [==] fast
     path skips whole record and list walks for the common case of a
     one-field perturbation.  The geometry comparison is hoisted to
     the caller, which already has both geometries in hand. *)
  let teq = pa == pb and deq = da == db in
  let page_eq = base_bits = bits in
  let colbits_eq =
    Spec.bits_per_column_command a.Config.spec
    = Spec.bits_per_column_command b.Config.spec
  in
  let buses_eq =
    a.Config.buses == b.Config.buses || a.Config.buses = b.Config.buses
  in
  let logic_eq =
    a.Config.logic == b.Config.logic || a.Config.logic = b.Config.logic
  in
  let wordline =
    (teq
    || pa.P.tox_logic = pb.P.tox_logic
       && pa.P.tox_hv = pb.P.tox_hv
       && pa.P.tox_cell = pb.P.tox_cell
       && pa.P.lmin_logic = pb.P.lmin_logic
       && pa.P.lmin_hv = pb.P.lmin_hv
       && pa.P.cj_hv = pb.P.cj_hv
       && pa.P.l_cell = pb.P.l_cell
       && pa.P.w_cell = pb.P.w_cell
       && pa.P.c_bitline = pb.P.c_bitline
       && pa.P.bl_wl_coupling = pb.P.bl_wl_coupling
       && pa.P.c_wire_mwl = pb.P.c_wire_mwl
       && pa.P.mwl_predecode = pb.P.mwl_predecode
       && pa.P.w_mwl_dec_n = pb.P.w_mwl_dec_n
       && pa.P.w_mwl_dec_p = pb.P.w_mwl_dec_p
       && pa.P.mwl_dec_activity = pb.P.mwl_dec_activity
       && pa.P.w_wlctl_load_n = pb.P.w_wlctl_load_n
       && pa.P.w_wlctl_load_p = pb.P.w_wlctl_load_p
       && pa.P.w_lwd_n = pb.P.w_lwd_n
       && pa.P.w_lwd_p = pb.P.w_lwd_p
       && pa.P.w_lwd_restore = pb.P.w_lwd_restore
       && pa.P.c_wire_lwl = pb.P.c_wire_lwl
       && pa.P.c_wire_signal = pb.P.c_wire_signal)
    && (deq
       || (da.Domains.vint = db.Domains.vint && da.Domains.vpp = db.Domains.vpp))
    && geometry_eq && page_eq
  in
  let sense_amp =
    (teq
    || pa.P.tox_logic = pb.P.tox_logic
       && pa.P.tox_hv = pb.P.tox_hv
       && pa.P.cj_logic = pb.P.cj_logic
       && pa.P.cj_hv = pb.P.cj_hv
       && pa.P.c_bitline = pb.P.c_bitline
       && pa.P.c_cell = pb.P.c_cell
       && pa.P.w_sa_n = pb.P.w_sa_n
       && pa.P.l_sa_n = pb.P.l_sa_n
       && pa.P.w_sa_p = pb.P.w_sa_p
       && pa.P.l_sa_p = pb.P.l_sa_p
       && pa.P.w_sa_eq = pb.P.w_sa_eq
       && pa.P.l_sa_eq = pb.P.l_sa_eq
       && pa.P.w_sa_bitswitch = pb.P.w_sa_bitswitch
       && pa.P.w_sa_mux = pb.P.w_sa_mux
       && pa.P.l_sa_mux = pb.P.l_sa_mux
       && pa.P.w_sa_nset = pb.P.w_sa_nset
       && pa.P.l_sa_nset = pb.P.l_sa_nset
       && pa.P.w_sa_pset = pb.P.w_sa_pset
       && pa.P.l_sa_pset = pb.P.l_sa_pset)
    && (deq
       || da.Domains.vint = db.Domains.vint
          && da.Domains.vbl = db.Domains.vbl
          && da.Domains.vpp = db.Domains.vpp)
    && geometry_eq && page_eq && colbits_eq
    && a.Config.data_toggle = b.Config.data_toggle
  in
  let column =
    (teq
    || pa.P.c_wire_signal = pb.P.c_wire_signal
       && pa.P.bits_per_csl = pb.P.bits_per_csl
       && pa.P.tox_logic = pb.P.tox_logic
       && pa.P.cj_logic = pb.P.cj_logic
       && pa.P.lmin_logic = pb.P.lmin_logic
       && pa.P.w_sa_bitswitch = pb.P.w_sa_bitswitch
       && pa.P.l_sa_bitswitch = pb.P.l_sa_bitswitch
       && pa.P.w_sa_n = pb.P.w_sa_n
       && pa.P.l_sa_n = pb.P.l_sa_n
       && pa.P.w_mwl_dec_n = pb.P.w_mwl_dec_n
       && pa.P.w_mwl_dec_p = pb.P.w_mwl_dec_p
       && pa.P.mwl_predecode = pb.P.mwl_predecode
       && pa.P.mwl_dec_activity = pb.P.mwl_dec_activity)
    && (deq
       || (da.Domains.vint = db.Domains.vint && da.Domains.vbl = db.Domains.vbl))
    && geometry_eq && colbits_eq
  in
  let bus =
    (teq
    || pa.P.c_wire_signal = pb.P.c_wire_signal
       && pa.P.lmin_logic = pb.P.lmin_logic
       && pa.P.tox_logic = pb.P.tox_logic
       && pa.P.cj_logic = pb.P.cj_logic)
    && (deq || da.Domains.vint = db.Domains.vint)
    && buses_eq && colbits_eq
  in
  let interface =
    (deq || da.Domains.vdd = db.Domains.vdd)
    && a.Config.data_toggle = b.Config.data_toggle
    && a.Config.io_predriver_cap = b.Config.io_predriver_cap
    && a.Config.io_receiver_cap = b.Config.io_receiver_cap
    && colbits_eq
  in
  let logic =
    (teq
    || pa.P.lmin_logic = pb.P.lmin_logic
       && pa.P.tox_logic = pb.P.tox_logic
       && pa.P.cj_logic = pb.P.cj_logic
       && pa.P.c_wire_signal = pb.P.c_wire_signal)
    && (deq || da.Domains.vint = db.Domains.vint)
    && logic_eq
  in
  (* Bit positions follow [C.group_index], like [group_keys]. *)
  (if wordline then 0 else 1 lsl C.group_index C.Wordline)
  lor (if sense_amp then 0 else 1 lsl C.group_index C.Sense_amp)
  lor (if column then 0 else 1 lsl C.group_index C.Column)
  lor (if bus then 0 else 1 lsl C.group_index C.Bus)
  lor (if interface then 0 else 1 lsl C.group_index C.Interface)
  lor (if logic then 0 else 1 lsl C.group_index C.Logic)

(* ----- the capacitance-extraction stage ---------------------------- *)

(* Every per-operation contribution list, stored as the per-group
   segments [Operation.segments] produced it from, with the supply
   energy of each contribution precomputed ([seg_terms]) and its
   breakdown label interned to a dense id ([seg_labels]).  The pattern
   mix (below) only reads this record, so evaluating several patterns
   against one configuration — or caching extractions behind a content
   key, as [Vdram_engine] does — never re-extracts; and because each
   segment carries its group, a delta extraction can splice the clean
   segments of a base extraction and recompute only the dirty ones. *)
type segment = {
  seg_group : int;          (* C.group_index of the producing group *)
  seg_contribs : C.t list;  (* original contribution chunk, in order *)
  seg_terms : float array;  (* supply energy (at Vdd) per contribution *)
  seg_labels : int array;   (* interned label ids, parallel to terms *)
  seg_domains : int;        (* bitmask of eff-bearing domains present *)
}

(* Which generator efficiency a term's value depends on: [at_vdd]
   divides by [eff_int]/[eff_bl]/[eff_pp] per domain, and by the
   constant 1.0 for Vdd — so a Vdd-only segment's terms are invariant
   under every efficiency change, and in general a segment is stale
   under an efficiency perturbation only if it holds a contribution in
   that efficiency's domain. *)
let domain_bit = function
  | Domains.Vdd -> 0
  | Domains.Vint -> 1
  | Domains.Vbl -> 2
  | Domains.Vpp -> 4

type extraction = {
  proj : Config.t;              (* physics projection extracted from *)
  proj_bits : int;              (* resolved activated page bits used *)
  effs : float * float * float; (* eff_int, eff_bl, eff_pp behind seg_terms *)
  segs : segment array array;   (* per operation, concatenation order *)
  labels : string array;        (* label intern table, first-appearance order *)
  sink_label : int;             (* "constant current sink" *)
  bias_label : int;             (* "input receiver bias" *)
  op_energy : float array;      (* per operation, Operation.index order *)
}

let const_sink_label = "constant current sink"
let const_bias_label = "input receiver bias"

let effs_of (d : Domains.t) =
  (d.Domains.eff_int, d.Domains.eff_bl, d.Domains.eff_pp)

let terms_of (d : Domains.t) contribs =
  let terms = Array.make (List.length contribs) 0.0 in
  let k = ref 0 in
  List.iter
    (fun (c : C.t) ->
      terms.(!k) <- Domains.at_vdd d c.C.domain c.C.energy;
      incr k)
    contribs;
  terms

(* Summing the precomputed terms segment by segment walks the same
   floats in the same order as [C.total_at_vdd] over the concatenated
   list, so the totals are bit-identical to the unsegmented model. *)
let resum_op segments =
  (* Manual loops: same floats in the same order as the folds they
     replace, without a closure call per term — the resum runs once per
     changed operation on the delta path, where it is a visible share
     of the whole splice.  The unsafe reads are bounded by the very
     lengths the loops iterate over. *)
  let acc = ref 0.0 in
  for i = 0 to Array.length segments - 1 do
    let t = (Array.unsafe_get segments i).seg_terms in
    for j = 0 to Array.length t - 1 do
      acc := !acc +. Array.unsafe_get t j
    done
  done;
  !acc

let resum_op_energy segs = Array.map resum_op segs

let resolve_bits ?activated_bits cfg =
  match activated_bits with
  | Some bits -> bits
  | None -> Config.activated_bits cfg

let extract ?activated_bits ?geometry (cfg : Config.t) =
  let d = cfg.Config.domains in
  let rev_labels = ref [] and nlabels = ref 0 in
  let ids = Hashtbl.create 32 in
  let intern label =
    match Hashtbl.find_opt ids label with
    | Some i -> i
    | None ->
      let i = !nlabels in
      incr nlabels;
      Hashtbl.add ids label i;
      rev_labels := label :: !rev_labels;
      i
  in
  let seg_of group contribs =
    {
      seg_group = C.group_index group;
      seg_contribs = contribs;
      seg_terms = terms_of d contribs;
      seg_labels =
        Array.map (fun (c : C.t) -> intern c.C.label) (Array.of_list contribs);
      seg_domains =
        List.fold_left
          (fun m (c : C.t) -> m lor domain_bit c.C.domain)
          0 contribs;
    }
  in
  (* One chunk prelude shared by all five operations, exactly as the
     delta path does: the per-logic-block table inside it is then
     computed once for the whole extraction. *)
  let x = Operation.ctx ?activated_bits ?geometry cfg in
  let segs =
    Array.init Operation.n (fun i ->
        let kind = Operation.of_index i in
        Array.mapi
          (fun j group -> seg_of group (Operation.chunk x kind j))
          (Operation.plan kind))
  in
  let sink_label = intern const_sink_label in
  let bias_label = intern const_bias_label in
  {
    proj = physics_projection cfg;
    proj_bits = resolve_bits ?activated_bits cfg;
    effs = effs_of d;
    segs;
    labels = Array.of_list (List.rev !rev_labels);
    sink_label;
    bias_label;
    op_energy = resum_op_energy segs;
  }

let extraction_contributions ex kind =
  Array.to_list ex.segs.(Operation.index kind)
  |> List.concat_map (fun s -> s.seg_contribs)

let extraction_energy ex kind = ex.op_energy.(Operation.index kind)

let group_key ex group =
  let keys = group_keys ~activated_bits:ex.proj_bits ex.proj in
  Digest.to_hex (Digest.string (marshal_key keys.(C.group_index group)))

(* ----- delta extraction -------------------------------------------- *)

type delta_outcome = {
  dirtied : C.group list;  (* groups re-extracted, group_index order *)
  spliced : int;           (* clean groups shared from the base *)
  fallback : bool;         (* structural mismatch forced a full extract *)
}

exception Splice_mismatch

(* The base configuration's geometry, memoized per domain on the
   physical identity of the base's stored projection: a batch deltas
   thousands of perturbed items against one base, and the base side of
   the probe's geometry comparison should not re-derive the floorplan
   per item.  Value-correct because [Config.geometry] is a pure
   function of the configuration. *)
let base_geom_memo :
    (Config.t * Vdram_floorplan.Array_geometry.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let base_geometry (proj : Config.t) =
  match Domain.DLS.get base_geom_memo with
  | Some (c, g) when c == proj -> g
  | _ ->
    let g = Config.geometry proj in
    Domain.DLS.set base_geom_memo (Some (proj, g));
    g

(* The probe's geometry comparison, memoized on the physical
   identities of the base's projection and the candidate record: the
   engine's geometry stage hands every geometry-invariant item of a
   batch the same cached record, so the structural walk over the
   eleven-field geometry runs once per (base, record) pair instead of
   once per item.  Identity keys make staleness impossible — a
   different record is a different key. *)
let base_geom_eq_memo :
    (Config.t * Vdram_floorplan.Array_geometry.t * bool) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let base_geometry_eq (proj : Config.t) gb =
  match Domain.DLS.get base_geom_eq_memo with
  | Some (c, g, eq) when c == proj && g == gb -> eq
  | _ ->
    let ga = base_geometry proj in
    let eq = ga == gb || ga = gb in
    Domain.DLS.set base_geom_eq_memo (Some (proj, gb, eq));
    eq

let extract_delta ?activated_bits ?geometry ~base (cfg : Config.t) =
  let d = cfg.Config.domains in
  let bits = resolve_bits ?activated_bits cfg in
  let proj = physics_projection cfg in
  let gb =
    match geometry with Some g -> g | None -> Config.geometry cfg
  in
  let geometry_eq = base_geometry_eq base.proj gb in
  let dirty_mask =
    dirty_groups ~base_bits:base.proj_bits ~bits ~geometry_eq base.proj cfg
  in
  let effs = effs_of d in
  (* Which efficiencies actually moved, as a domain mask: a segment's
     terms are stale only if it holds a contribution in a moved
     efficiency's domain (float [=] is false on NaN, erring toward
     stale).  An empty mask is exactly [effs = base.effs]. *)
  let eff_mask =
    let bi, bb, bp = base.effs and ei, eb, ep = effs in
    (if ei = bi then 0 else domain_bit Domains.Vint)
    lor (if eb = bb then 0 else domain_bit Domains.Vbl)
    lor (if ep = bp then 0 else domain_bit Domains.Vpp)
  in
  let effs_equal = eff_mask = 0 in
  let eff_stale s = s.seg_domains land eff_mask <> 0 in
  let dirtied =
    List.filter
      (fun g -> dirty_mask land (1 lsl C.group_index g) <> 0)
      C.groups
  in
  let spliced = C.group_count - List.length dirtied in
  if dirtied = [] && effs_equal then
    (* Nothing the extraction reads changed: share the base's segments
       outright (the perturbation only touched mix-stage inputs); only
       the stored projection is the new configuration's. *)
    ({ base with proj; proj_bits = bits }, { dirtied = []; spliced; fallback = false })
  else
    try
      (* A dirtied segment keeps the base's label ids so the spliced
         segments' ids stay meaningful; re-extraction changes
         energies, never label sequences, so position-for-position
         equality against the base's labels is the cheap check,
         fused with the supply-energy recompute.  A genuine mismatch
         (e.g. a renamed logic block the predicates somehow called
         clean) abandons the splice for a full extract — delta is an
         optimization, never a semantic. *)
      let rebuild_seg (b : segment) contribs =
        let labels = b.seg_labels in
        let n = Array.length labels in
        let terms = Array.make n 0.0 in
        (* Manual recursion instead of [List.iter]: no closure per
           rebuilt chunk, and the [k >= n] guard bounds the unsafe
           reads and writes. *)
        let rec fill k mask = function
          | [] -> if k <> n then raise Splice_mismatch else mask
          | (c : C.t) :: tl ->
            if k >= n then raise Splice_mismatch;
            if
              not
                (String.equal c.C.label
                   base.labels.(Array.unsafe_get labels k))
            then raise Splice_mismatch;
            Array.unsafe_set terms k (Domains.at_vdd d c.C.domain c.C.energy);
            fill (k + 1) (mask lor domain_bit c.C.domain) tl
        in
        let mask = fill 0 0 contribs in
        {
          seg_group = b.seg_group;
          seg_contribs = contribs;
          seg_terms = terms;
          seg_labels = labels;
          seg_domains = mask;
        }
      in
      (* The chunk prelude is built once per perturbed configuration
         and shared by every dirtied chunk across all operations —
         lazily, because an efficiency-only delta re-divides cached
         terms without evaluating any chunk at all. *)
      let x = lazy (Operation.ctx ?activated_bits ~geometry:gb cfg) in
      let segs =
        Array.init Operation.n (fun i ->
            let bsegs = base.segs.(i) in
            let kind = Operation.of_index i in
            (* One [land] against the operation's static plan mask
               decides whether any of its chunks can be dirty — sound
               because every base this binary produced built its
               segments from the same plan (a marshalled base from a
               different build is rejected upstream by the store's
               model-version stamp). *)
            if Operation.plan_mask kind land dirty_mask = 0 then
              (* No dirty group reaches this operation: keep the base's
                 segment array — physically when the efficiencies allow,
                 so the per-op resum below can skip it too. *)
              if effs_equal || not (Array.exists eff_stale bsegs) then bsegs
              else
                Array.map
                  (fun b ->
                    if eff_stale b then
                      { b with seg_terms = terms_of d b.seg_contribs }
                    else b)
                  bsegs
            else begin
              let idx = Operation.plan_indices kind in
              if Array.length idx <> Array.length bsegs then
                raise Splice_mismatch;
              let out = Array.copy bsegs in
              (* The unsafe reads are bounded by the length equality
                 just checked. *)
              for j = 0 to Array.length idx - 1 do
                let b = Array.unsafe_get bsegs j in
                let gi = Array.unsafe_get idx j in
                if b.seg_group <> gi then raise Splice_mismatch;
                if dirty_mask land (1 lsl gi) <> 0 then
                  out.(j) <- rebuild_seg b (Operation.chunk (Lazy.force x) kind j)
                else if eff_stale b then
                  out.(j) <- { b with seg_terms = terms_of d b.seg_contribs }
              done;
              out
            end)
      in
      (* Shared segment arrays hold exactly the base's floats — whether
         spliced clean or untouched by the efficiency mask — so their
         resum is exactly the base's energy. *)
      let op_energy =
        Array.init Operation.n (fun i ->
            if segs.(i) == base.segs.(i) then base.op_energy.(i)
            else resum_op segs.(i))
      in
      ( {
          proj;
          proj_bits = bits;
          effs;
          segs;
          labels = base.labels;
          sink_label = base.sink_label;
          bias_label = base.bias_label;
          op_energy;
        },
        { dirtied; spliced; fallback = false } )
    with Splice_mismatch ->
      ( extract ?activated_bits ~geometry:gb cfg,
        { dirtied; spliced = 0; fallback = true } )

let background_power_staged ex (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let nop = extraction_energy ex Operation.Nop in
  let d = cfg.Config.domains in
  (nop *. spec.Spec.control_clock)
  +. (d.Domains.i_constant *. d.Domains.vdd)
  +. receiver_bias_power cfg

(* Dense command counts of one loop iteration, [Operation.index]
   order.  [Nop] stays zero: its energy is the background floor.  The
   staged engine memoizes this vector per pattern so batched drivers
   compute it once and reuse it across thousands of configurations. *)
let op_count_vector pattern =
  let v = Array.make Operation.n 0.0 in
  v.(Operation.index Operation.Activate) <-
    float_of_int (Pattern.count pattern Pattern.Act);
  v.(Operation.index Operation.Precharge) <-
    float_of_int (Pattern.count pattern Pattern.Pre);
  v.(Operation.index Operation.Read) <-
    float_of_int (Pattern.count pattern Pattern.Rd);
  v.(Operation.index Operation.Write) <-
    float_of_int (Pattern.count pattern Pattern.Wr);
  v

(* The pattern-mix stage: rates from the command loop times the
   extracted per-operation energies.  Bit-identical to evaluating the
   configuration directly: the extraction precomputed each
   contribution's supply energy ([seg_terms]) with the same division
   the direct path performs, and the flat kernels below accumulate
   those terms in the same program order the contribution lists had —
   zero-count operations are skipped outright, exactly as the assoc
   walk skipped them, so the float operation sequence is unchanged.
   Only the ordering of exact ties in the breakdown listing may differ
   from the hash-table formulation this kernel replaced. *)
let pattern_power_staged ?counts ex (cfg : Config.t) pattern =
  let spec = cfg.Config.spec in
  let d = cfg.Config.domains in
  let loop_time = loop_time spec pattern in
  let counts =
    match counts with Some v -> v | None -> op_count_vector pattern
  in
  let background = background_power_staged ex cfg in
  let op_power = ref 0.0 in
  for i = 0 to Operation.n - 1 do
    let count = counts.(i) in
    if count > 0.0 then
      op_power := !op_power +. (count *. ex.op_energy.(i) /. loop_time)
  done;
  let power = background +. !op_power in
  (* Breakdown: per-label energies at Vdd times their rates, plus the
     background groups at the clock rate — accumulated into a flat
     per-label-id array instead of a hash table. *)
  let nlabels = Array.length ex.labels in
  let acc = Array.make nlabels 0.0 in
  let touched = Array.make nlabels false in
  let add_segments rate segments =
    Array.iter
      (fun s ->
        let terms = s.seg_terms and labs = s.seg_labels in
        for k = 0 to Array.length terms - 1 do
          let l = labs.(k) in
          acc.(l) <- acc.(l) +. (rate *. terms.(k));
          touched.(l) <- true
        done)
      segments
  in
  for i = 0 to Operation.n - 1 do
    let count = counts.(i) in
    if count > 0.0 then add_segments (count /. loop_time) ex.segs.(i)
  done;
  add_segments spec.Spec.control_clock
    ex.segs.(Operation.index Operation.Nop);
  let add l w =
    acc.(l) <- acc.(l) +. w;
    touched.(l) <- true
  in
  add ex.sink_label (d.Domains.i_constant *. d.Domains.vdd);
  add ex.bias_label (receiver_bias_power cfg);
  let breakdown = ref [] in
  for l = nlabels - 1 downto 0 do
    if touched.(l) then breakdown := (ex.labels.(l), acc.(l)) :: !breakdown
  done;
  let breakdown =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !breakdown
  in
  let bits_per_loop = bits_per_loop spec pattern in
  let energy_per_bit =
    if bits_per_loop > 0.0 then Some (power *. loop_time /. bits_per_loop)
    else None
  in
  {
    Report.config_name = cfg.Config.name;
    pattern_name = pattern.Pattern.name;
    power;
    current = power /. d.Domains.vdd;
    background_power = background;
    loop_time;
    bits_per_loop;
    energy_per_bit;
    op_rates =
      List.filter_map
        (fun kind ->
          let count = counts.(Operation.index kind) in
          if count > 0.0 then Some (kind, count /. loop_time) else None)
        Operation.all;
    breakdown;
  }

let pattern_power (cfg : Config.t) pattern =
  pattern_power_staged (extract cfg) cfg pattern

let idd cfg pattern = (pattern_power cfg pattern).Report.current

let operation_power (cfg : Config.t) kind =
  let spec = cfg.Config.spec in
  match kind with
  | Operation.Nop -> background_power cfg
  | Operation.Activate | Operation.Precharge ->
    let rate = 1.0 /. spec.Spec.trc in
    background_power cfg +. (Operation.energy cfg kind *. rate)
  | Operation.Read | Operation.Write ->
    let rate =
      spec.Spec.control_clock
      /. float_of_int (Spec.clocks_per_column_command spec)
    in
    background_power cfg +. (Operation.energy cfg kind *. rate)

let energy_per_bit cfg pattern =
  (pattern_power cfg pattern).Report.energy_per_bit
