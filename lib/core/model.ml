(* Power calculation: operations x rates + background. *)

module C = Vdram_circuits.Contribution
module Domains = Vdram_circuits.Domains

let receiver_bias_power (cfg : Config.t) =
  let d = cfg.Config.domains in
  float_of_int cfg.Config.input_receivers
  *. cfg.Config.receiver_bias *. d.Domains.vdd

let background_power (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let nop = Operation.energy cfg Operation.Nop in
  let d = cfg.Config.domains in
  (nop *. spec.Spec.control_clock)
  +. (d.Domains.i_constant *. d.Domains.vdd)
  +. receiver_bias_power cfg

type state =
  | Active_standby
  | Precharge_standby
  | Power_down
  | Self_refresh

let state_name = function
  | Active_standby -> "active standby"
  | Precharge_standby -> "precharge standby"
  | Power_down -> "power-down"
  | Self_refresh -> "self refresh"

(* Rows a refresh command must restore: every bank refreshes one row
   per 8k-row slice of its address space. *)
let rows_per_refresh (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let rows_per_bank =
    spec.Spec.density_bits
    /. float_of_int (spec.Spec.banks * Config.page_bits cfg)
  in
  Float.max 1.0 (rows_per_bank /. 8192.0) *. float_of_int spec.Spec.banks

let refresh_energy (cfg : Config.t) =
  rows_per_refresh cfg
  *. (Operation.energy cfg Operation.Activate
     +. Operation.energy cfg Operation.Precharge)

let refresh_power (cfg : Config.t) =
  refresh_energy cfg /. cfg.Config.spec.Spec.trefi

let powerdown_power (cfg : Config.t) =
  let d = cfg.Config.domains in
  (d.Domains.i_constant *. d.Domains.vdd) +. (0.25 *. background_power cfg)

let idd5b (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let power = background_power cfg +. (refresh_energy cfg /. spec.Spec.trfc) in
  power /. cfg.Config.domains.Domains.vdd

let state_power cfg = function
  | Active_standby | Precharge_standby -> background_power cfg
  | Power_down -> powerdown_power cfg
  | Self_refresh -> powerdown_power cfg +. refresh_power cfg

let op_counts pattern =
  List.filter_map
    (fun kind ->
      let count =
        match kind with
        | Operation.Activate -> Pattern.count pattern Pattern.Act
        | Operation.Precharge -> Pattern.count pattern Pattern.Pre
        | Operation.Read -> Pattern.count pattern Pattern.Rd
        | Operation.Write -> Pattern.count pattern Pattern.Wr
        | Operation.Nop -> 0
      in
      if count > 0 then Some (kind, count) else None)
    Operation.all

(* Shared mix-stage seams: the loop period and the data volume per
   loop.  The abstract interpreter (`vdram check`) mirrors the mix
   stage on intervals and must agree with the concrete stage about
   these two scalars, so both read them from here. *)
let loop_time (spec : Spec.t) pattern =
  float_of_int (Pattern.cycles pattern) /. spec.Spec.control_clock

let bits_per_loop (spec : Spec.t) pattern =
  let data_commands =
    Pattern.count pattern Pattern.Rd + Pattern.count pattern Pattern.Wr
  in
  float_of_int (data_commands * Spec.bits_per_column_command spec)

(* ----- staged evaluation seams ------------------------------------- *)

(* Bump whenever the physics changes in any way that can alter a
   computed number: the staged engine stamps its persistent cache with
   this, so stale on-disk entries are discarded instead of served. *)
let version = "model-2026-08"

(* The name identifies a configuration to humans, not to physics: two
   configurations differing only in [name] share every stage output.
   This projection is the content identity the engine's extraction and
   pattern-mix caches key on. *)
let physics_projection (cfg : Config.t) = { cfg with Config.name = "" }

(* The capacitance-extraction stage: every per-operation contribution
   list and its total energy, derived once from the configuration.  A
   pattern mix (below) only reads this record, so evaluating several
   patterns against one configuration — or caching extractions behind a
   content key, as [Vdram_engine] does — never re-extracts. *)
type extraction = {
  per_op : (Operation.kind * C.t list) list;
  op_energy : (Operation.kind * float) list;
}

let extract ?activated_bits (cfg : Config.t) =
  let per_op =
    List.map
      (fun kind -> (kind, Operation.contributions ?activated_bits cfg kind))
      Operation.all
  in
  let op_energy =
    List.map
      (fun (kind, cs) -> (kind, C.total_at_vdd cfg.Config.domains cs))
      per_op
  in
  { per_op; op_energy }

let extraction_contributions ex kind = List.assoc kind ex.per_op
let extraction_energy ex kind = List.assoc kind ex.op_energy

let background_power_staged ex (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let nop = extraction_energy ex Operation.Nop in
  let d = cfg.Config.domains in
  (nop *. spec.Spec.control_clock)
  +. (d.Domains.i_constant *. d.Domains.vdd)
  +. receiver_bias_power cfg

(* The pattern-mix stage: rates from the command loop times the
   extracted per-operation energies.  Bit-identical to evaluating the
   configuration directly, because the same contribution lists feed the
   same float operations in the same order. *)
let pattern_power_staged ex (cfg : Config.t) pattern =
  let spec = cfg.Config.spec in
  let d = cfg.Config.domains in
  let loop_time = loop_time spec pattern in
  let counts = op_counts pattern in
  let background = background_power_staged ex cfg in
  let op_power =
    List.fold_left
      (fun acc (kind, count) ->
        acc
        +. (float_of_int count *. extraction_energy ex kind /. loop_time))
      0.0 counts
  in
  let power = background +. op_power in
  (* Breakdown: per-label energies at Vdd times their rates, plus the
     background groups at the clock rate. *)
  let tbl = Hashtbl.create 32 in
  let add label w =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl label) in
    Hashtbl.replace tbl label (prev +. w)
  in
  let add_contributions rate contributions =
    List.iter
      (fun (c : C.t) ->
        add c.C.label (rate *. Domains.at_vdd d c.C.domain c.C.energy))
      contributions
  in
  List.iter
    (fun (kind, count) ->
      add_contributions
        (float_of_int count /. loop_time)
        (extraction_contributions ex kind))
    counts;
  add_contributions spec.Spec.control_clock
    (extraction_contributions ex Operation.Nop);
  add "constant current sink" (d.Domains.i_constant *. d.Domains.vdd);
  add "input receiver bias" (receiver_bias_power cfg);
  let breakdown =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let bits_per_loop = bits_per_loop spec pattern in
  let energy_per_bit =
    if bits_per_loop > 0.0 then Some (power *. loop_time /. bits_per_loop)
    else None
  in
  {
    Report.config_name = cfg.Config.name;
    pattern_name = pattern.Pattern.name;
    power;
    current = power /. d.Domains.vdd;
    background_power = background;
    loop_time;
    bits_per_loop;
    energy_per_bit;
    op_rates =
      List.map
        (fun (k, c) -> (k, float_of_int c /. loop_time))
        counts;
    breakdown;
  }

let pattern_power (cfg : Config.t) pattern =
  pattern_power_staged (extract cfg) cfg pattern

let idd cfg pattern = (pattern_power cfg pattern).Report.current

let operation_power (cfg : Config.t) kind =
  let spec = cfg.Config.spec in
  match kind with
  | Operation.Nop -> background_power cfg
  | Operation.Activate | Operation.Precharge ->
    let rate = 1.0 /. spec.Spec.trc in
    background_power cfg +. (Operation.energy cfg kind *. rate)
  | Operation.Read | Operation.Write ->
    let rate =
      spec.Spec.control_clock
      /. float_of_int (Spec.clocks_per_column_command spec)
    in
    background_power cfg +. (Operation.energy cfg kind *. rate)

let energy_per_bit cfg pattern =
  (pattern_power cfg pattern).Report.energy_per_bit
