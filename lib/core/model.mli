(** The Figure 4 pipeline: from a device description and an operating
    pattern to currents, power and breakdown. *)

val background_power : Config.t -> float
(** Power burned in every cycle: clock distribution, always-on logic
    and the constant current sink — the no-operation floor. *)

type state =
  | Active_standby     (** banks open, clock running (Idd3N view) *)
  | Precharge_standby  (** all banks closed, clock running (Idd2N) *)
  | Power_down         (** clock stopped, DLL holding (Idd2P-style) *)
  | Self_refresh       (** power-down plus internal refresh (Idd6) *)

val state_name : state -> string

val state_power : Config.t -> state -> float
(** Device power in a standby state.  The model is capacitive-only
    (no leakage, as in the paper), so active and precharge standby
    coincide; power-down retains the constant sinks plus a residual
    quarter of the clocked background; self-refresh adds the internal
    refresh row cycling. *)

val rows_per_refresh : Config.t -> float
(** Rows one refresh command must restore: every bank refreshes one
    row per 8k-row slice of its address space. *)

val refresh_energy : Config.t -> float
(** Energy of one refresh command: {!rows_per_refresh} row cycles. *)

val refresh_power : Config.t -> float
(** Average power of distributed refresh: one refresh command
    ({!refresh_energy}) every [Spec.trefi]. *)

val powerdown_power : Config.t -> float
(** [state_power cfg Power_down]. *)

val idd5b : Config.t -> float
(** Burst-refresh current (datasheet Idd5B view): refresh commands
    back-to-back at [Spec.trfc], i.e. one {!refresh_energy} every
    tRFC on top of the background, amperes. *)

val op_counts : Pattern.t -> (Operation.kind * int) list
(** Non-zero command counts of one loop iteration, in [Operation.all]
    order.  [Nop] never appears: its energy is the background floor. *)

val loop_time : Spec.t -> Pattern.t -> float
(** Period of one loop iteration, seconds: pattern cycles over the
    control clock.  The pattern-mix stage and the abstract interpreter
    (`vdram check`) both read this seam, so their rates agree. *)

val bits_per_loop : Spec.t -> Pattern.t -> float
(** Data bits one loop iteration transports: data commands times
    {!Spec.bits_per_column_command}.  Zero for data-less patterns. *)

val version : string
(** A stamp that changes whenever the model's physics changes.  The
    staged engine writes it into its persistent cache header, so
    results computed by an older model are discarded, never served. *)

val physics_projection : Config.t -> Config.t
(** The configuration with its [name] cleared — exactly the fields the
    physics reads.  Two configurations with equal projections produce
    bit-identical stage outputs; the engine fingerprints this value to
    key its extraction and pattern-mix caches. *)

type extraction
(** The capacitance-extraction stage: per-operation contribution lists
    and their supply energies, derived once from a configuration and
    stored as the per-circuit-group segments that produced them, with
    each contribution's supply energy precomputed and its breakdown
    label interned to a dense id.  The pattern-mix stage only reads
    this record, so several patterns can be evaluated — or the record
    cached behind a content key, as [Vdram_engine] does — without
    re-extracting; and {!extract_delta} can splice the clean segments
    of a base extraction, recomputing only dirtied groups. *)

val extract :
  ?activated_bits:int ->
  ?geometry:Vdram_floorplan.Array_geometry.t ->
  Config.t ->
  extraction
(** Run capacitance extraction for every operation.  [activated_bits]
    and [geometry] optionally feed in an already-resolved page size
    and array geometry (see {!Operation.ctx}). *)

type delta_outcome = {
  dirtied : Vdram_circuits.Contribution.group list;
      (** groups whose sub-key changed and were re-extracted *)
  spliced : int;  (** clean groups shared from the base extraction *)
  fallback : bool;
      (** a structural mismatch abandoned the splice for a full
          {!extract} (the result is still exact) *)
}

val extract_delta :
  ?activated_bits:int ->
  ?geometry:Vdram_floorplan.Array_geometry.t ->
  base:extraction ->
  Config.t ->
  extraction * delta_outcome
(** Incremental extraction against a cached base: classifies each
    circuit group clean or dirty by running compiled field-by-field
    predicates over exactly the values the group's charge model reads
    (the same read sets {!group_key} digests — a qcheck property
    holds the two encodings in lockstep), re-extracts only the dirty
    groups and splices the rest from the base.  Bit-identical to
    {!extract} on the same configuration — clean segments hold the
    same floats the full extraction would recompute, and totals are
    re-summed in the same order.  When generator efficiencies change,
    spliced segments keep their contribution chunks and recompute
    supply-energy terms for exactly the segments drawing from a
    changed efficiency's domain, sharing the rest untouched. *)

val group_key : extraction -> Vdram_circuits.Contribution.group -> string
(** Hex digest of one group's marshalled sub-key tuple — stable
    across perturbations that cannot touch the group, changed
    whenever one can.  The tuples are the definition of record for
    each group's read set; the delta probe itself runs compiled
    predicates mirroring them (never marshalling on the hot path),
    and the lockstep property test cross-checks the two encodings
    for every lens. *)

val extraction_contributions :
  extraction -> Operation.kind -> Vdram_circuits.Contribution.t list
(** The cached equivalent of {!Operation.contributions}. *)

val extraction_energy : extraction -> Operation.kind -> float
(** The cached equivalent of {!Operation.energy}, a dense array
    lookup. *)

val background_power_staged : extraction -> Config.t -> float
(** {!background_power} from a prior extraction. *)

val op_count_vector : Pattern.t -> float array
(** Dense command counts of one loop iteration, [Operation.index]
    order; [Nop] stays zero.  The staged engine memoizes this per
    pattern and feeds it back through [?counts] below. *)

val pattern_power_staged :
  ?counts:float array -> extraction -> Config.t -> Pattern.t -> Report.t
(** The pattern-mix stage: {!pattern_power} from a prior extraction,
    as a flat array kernel over the extraction's dense per-label
    terms.  Bit-identical to {!pattern_power} on the same
    configuration (breakdown ties may list in a different order).
    [counts] must be {!op_count_vector}[ pattern] when given. *)

val pattern_power : Config.t -> Pattern.t -> Report.t
(** Average power of a continuously repeating command loop:
    [background + sum over commands (count * energy / loop time)].
    Command energies include their bursts; the pattern is responsible
    for legal command spacing (the canned {!Pattern} loops are). *)

val idd : Config.t -> Pattern.t -> float
(** Supply current of a pattern, amperes. *)

val operation_power : Config.t -> Operation.kind -> float
(** Power when the operation repeats back-to-back at its natural rate:
    row operations at tRC, column operations at the gapless burst
    rate, [Nop] at the background floor.  Matches the datasheet view
    of Idd0 / Idd4 style figures. *)

val energy_per_bit : Config.t -> Pattern.t -> float option
(** Energy per transported data bit of a pattern, J/bit. *)
