(** Model-versus-datasheet comparison (Figures 8 and 9). *)

type row = {
  point : Idd.point;
  model_ma : (string * float) list;
      (** model current per assumed technology node, e.g.
          [("75nm", 96.2); ("65nm", 88.4)] *)
}

val model_current :
  family:Idd.family -> node:Vdram_tech.Node.t -> Idd.point -> float
(** Model Idd in mA for a datasheet point: the matching 1 Gb device at
    the given node running the point's test loop. *)

val rows : family:Idd.family -> nodes:Vdram_tech.Node.t list -> row list
(** One row per datasheet point with model values at each assumed
    node (the paper uses two typical high-volume nodes per family). *)

val fig8 : unit -> row list
(** DDR2 at 75 nm and 65 nm. *)

val fig9 : unit -> row list
(** DDR3 at 65 nm and 55 nm. *)

val within_band : ?slack:float -> Idd.point -> float -> bool
(** Whether a model value lies inside the vendor min/max band widened
    by [slack] (default 0.30, i.e. 30 % beyond either end — the
    verification tolerance recorded in EXPERIMENTS.md). *)

val pp_row : Format.formatter -> row -> unit
