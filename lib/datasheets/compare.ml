(* Model vs datasheet comparison. *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Devices = Vdram_configs.Devices

type row = {
  point : Idd.point;
  model_ma : (string * float) list;
}

let device_for ~(family : Idd.family) ~node (p : Idd.point) =
  let datarate = float_of_int p.Idd.datarate_mbps *. 1e6 in
  match (family.Idd.standard, family.Idd.name) with
  | Node.Ddr2, _ -> Devices.ddr2_1g ~io_width:p.Idd.io_width ~datarate ~node ()
  | Node.Ddr3, "2G DDR3" ->
    Vdram_core.Config.commodity ~standard:Node.Ddr3 ~node
      ~density_bits:(2048.0 *. (2.0 ** 20.0))
      ~io_width:p.Idd.io_width ~datarate ~banks:8 ()
  | Node.Ddr3, _ -> Devices.ddr3_1g ~io_width:p.Idd.io_width ~datarate ~node ()
  | _ -> invalid_arg "Compare.device_for: only DDR2 and DDR3 families"

let model_current ~family ~node p =
  let cfg = device_for ~family ~node p in
  let spec = cfg.Config.spec in
  let pattern =
    match p.Idd.test with
    | Idd.Idd0 -> Pattern.idd0 spec
    | Idd.Idd4r -> Pattern.idd4r spec
    | Idd.Idd4w -> Pattern.idd4w spec
  in
  Model.idd cfg pattern *. 1e3

let rows ~family ~nodes =
  List.map
    (fun point ->
      {
        point;
        model_ma =
          List.map
            (fun node ->
              (Node.name node, model_current ~family ~node point))
            nodes;
      })
    family.Idd.points

let fig8 () = rows ~family:Idd.ddr2_1g ~nodes:[ Node.N75; Node.N65 ]

let fig9 () = rows ~family:Idd.ddr3_1g ~nodes:[ Node.N65; Node.N55 ]

let within_band ?(slack = 0.30) p model =
  model >= Idd.min_ma p *. (1.0 -. slack)
  && model <= Idd.max_ma p *. (1.0 +. slack)

let pp_row ppf r =
  Format.fprintf ppf "%-14s datasheet %5.0f..%5.0f mA (mean %5.0f)"
    (Idd.label r.point) (Idd.min_ma r.point) (Idd.max_ma r.point)
    (Idd.mean_ma r.point);
  List.iter
    (fun (node, ma) -> Format.fprintf ppf "  model@%s %6.1f" node ma)
    r.model_ma
