(* Datasheet-method power calculation (Micron-calculator style). *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Model = Vdram_core.Model
module Pattern = Vdram_core.Pattern

type idd_set = {
  idd0 : float;
  idd2n : float;
  idd3n : float;
  idd4r : float;
  idd4w : float;
  idd5b : float;
  trc : float;
  trfc : float;
  trefi : float;
  vdd : float;
}

let of_model (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let idd pattern = Model.idd cfg pattern in
  let standby =
    Model.state_power cfg Model.Precharge_standby
    /. cfg.Config.domains.Vdram_circuits.Domains.vdd
  in
  let gbit = spec.Spec.density_bits /. (2.0 ** 30.0) in
  let trfc =
    if gbit <= 1.0 then 110e-9
    else if gbit <= 2.0 then 160e-9
    else if gbit <= 4.0 then 260e-9
    else 350e-9
  in
  {
    idd0 = idd (Pattern.idd0 spec);
    idd2n = standby;
    (* The capacitive model has no leakage: active standby equals
       precharge standby, as in the paper. *)
    idd3n = standby;
    idd4r = idd (Pattern.idd4r spec);
    idd4w = idd (Pattern.idd4w spec);
    idd5b = Model.idd5b cfg;
    trc = spec.Spec.trc;
    trfc;
    trefi = 7.8e-6;
    vdd = cfg.Config.domains.Vdram_circuits.Domains.vdd;
  }

type usage = {
  bank_utilization : float;
  row_cycles_per_second : float;
  read_bus_utilization : float;
  write_bus_utilization : float;
}

let usage_of_pattern (cfg : Config.t) pattern =
  let spec = cfg.Config.spec in
  let cycles = float_of_int (Pattern.cycles pattern) in
  let loop_time = cycles /. spec.Spec.control_clock in
  let acts = float_of_int (Pattern.count pattern Pattern.Act) in
  let cpc = float_of_int (Spec.clocks_per_column_command spec) in
  let tras = spec.Spec.trc -. spec.Spec.trp in
  {
    bank_utilization = Float.min 1.0 (acts *. tras /. loop_time);
    row_cycles_per_second = acts /. loop_time;
    read_bus_utilization =
      Float.min 1.0
        (float_of_int (Pattern.count pattern Pattern.Rd) *. cpc /. cycles);
    write_bus_utilization =
      Float.min 1.0
        (float_of_int (Pattern.count pattern Pattern.Wr) *. cpc /. cycles);
  }

let power ?(include_refresh = true) (s : idd_set) (u : usage) =
  let background =
    ((u.bank_utilization *. s.idd3n)
    +. ((1.0 -. u.bank_utilization) *. s.idd2n))
    *. s.vdd
  in
  (* One activate-precharge pair costs (Idd0 - Idd3N) * Vdd over the
     tRC the Idd0 loop was measured at. *)
  let act =
    u.row_cycles_per_second *. (s.idd0 -. s.idd3n) *. s.vdd *. s.trc
  in
  let read = u.read_bus_utilization *. (s.idd4r -. s.idd3n) *. s.vdd in
  let write = u.write_bus_utilization *. (s.idd4w -. s.idd3n) *. s.vdd in
  let refresh =
    if include_refresh then
      (s.idd5b -. s.idd2n) *. s.vdd *. s.trfc /. s.trefi
    else 0.0
  in
  background +. act +. read +. write +. refresh

let cross_check (cfg : Config.t) pattern =
  let direct =
    (Model.pattern_power cfg pattern).Vdram_core.Report.power
  in
  let method_power =
    power ~include_refresh:false (of_model cfg)
      (usage_of_pattern cfg pattern)
  in
  (direct, method_power)
