(** The datasheet-based power methodology (paper reference [20], the
    Micron system power calculator; also [19] DRAMsim).

    The paper opens with: "The most accurate way of computing DRAM
    power in a computer system is to use datasheet values"; its own
    model exists because datasheets cannot extrapolate.  This module
    implements that datasheet method, so the two approaches can be
    cross-checked: feeding the method with the *model's own* Idd
    values must land close to the model's direct pattern power —
    a strong internal-consistency test.

    Currents are amperes, the usage knobs are the calculator's. *)

type idd_set = {
  idd0 : float;    (** one-bank activate-precharge cycling current *)
  idd2n : float;   (** precharge standby *)
  idd3n : float;   (** active standby *)
  idd4r : float;   (** gapless read burst *)
  idd4w : float;   (** gapless write burst *)
  idd5b : float;   (** burst refresh *)
  trc : float;     (** the tRC the Idd0 loop used, s *)
  trfc : float;    (** refresh cycle time, s *)
  trefi : float;   (** refresh interval, s *)
  vdd : float;
}

val of_model : Vdram_core.Config.t -> idd_set
(** Derive the full Idd set from the analytical model. *)

type usage = {
  bank_utilization : float;
      (** share of time at least one bank is active (0..1) *)
  row_cycles_per_second : float;
      (** activate-precharge pairs per second *)
  read_bus_utilization : float;   (** share of time reading (0..1) *)
  write_bus_utilization : float;  (** share of time writing (0..1) *)
}

val usage_of_pattern : Vdram_core.Config.t -> Vdram_core.Pattern.t -> usage
(** Extract the calculator knobs from a command loop. *)

val power : ?include_refresh:bool -> idd_set -> usage -> float
(** The calculator: background (Idd2N/Idd3N weighted by bank
    utilization) + activate (scaled Idd0 increment) + read/write
    increments at the bus utilizations + refresh (on by default),
    all times Vdd. *)

val cross_check :
  Vdram_core.Config.t -> Vdram_core.Pattern.t -> float * float
(** [(model_direct, datasheet_method)] in watts for a pattern, using
    the model's own Idd set — the internal-consistency comparison. *)
