(* Vendor datasheet Idd database (paper references [22], [23]). *)

type test = Idd0 | Idd4r | Idd4w

let test_name = function
  | Idd0 -> "Idd0"
  | Idd4r -> "Idd4R"
  | Idd4w -> "Idd4W"

type point = {
  test : test;
  datarate_mbps : int;
  io_width : int;
  vendors_ma : float list;
}

let label p =
  Printf.sprintf "%s %d x%d" (test_name p.test) p.datarate_mbps p.io_width

let min_ma p = List.fold_left Float.min infinity p.vendors_ma

let max_ma p = List.fold_left Float.max neg_infinity p.vendors_ma

let mean_ma p =
  List.fold_left ( +. ) 0.0 p.vendors_ma
  /. float_of_int (List.length p.vendors_ma)

type family = {
  name : string;
  standard : Vdram_tech.Node.standard;
  vdd : float;
  points : point list;
}

let pt test datarate_mbps io_width vendors_ma =
  { test; datarate_mbps; io_width; vendors_ma }

(* 1 Gb DDR2 at 1.8 V.  Vendor order: Samsung K4T1G, Hynix H5PS1G,
   Micron MT47H, Elpida EDE1116, Qimonda HYI18T. *)
let ddr2_1g =
  {
    name = "1G DDR2";
    standard = Vdram_tech.Node.Ddr2;
    vdd = 1.8;
    points =
      [
        pt Idd0 400 4 [ 65.0; 70.0; 75.0; 68.0; 72.0 ];
        pt Idd0 400 16 [ 80.0; 85.0; 90.0; 82.0; 88.0 ];
        pt Idd0 533 4 [ 70.0; 75.0; 80.0; 72.0; 78.0 ];
        pt Idd0 533 16 [ 85.0; 90.0; 95.0; 88.0; 92.0 ];
        pt Idd0 667 4 [ 75.0; 80.0; 85.0; 78.0; 82.0 ];
        pt Idd0 667 16 [ 90.0; 95.0; 100.0; 92.0; 98.0 ];
        pt Idd0 800 4 [ 80.0; 85.0; 90.0; 82.0; 88.0 ];
        pt Idd0 800 16 [ 95.0; 100.0; 110.0; 98.0; 105.0 ];
        pt Idd4r 400 4 [ 85.0; 95.0; 90.0; 100.0; 88.0 ];
        pt Idd4r 400 16 [ 115.0; 125.0; 120.0; 135.0; 128.0 ];
        pt Idd4r 533 4 [ 95.0; 105.0; 100.0; 110.0; 98.0 ];
        pt Idd4r 533 16 [ 130.0; 140.0; 135.0; 150.0; 145.0 ];
        pt Idd4r 667 4 [ 105.0; 115.0; 110.0; 120.0; 108.0 ];
        pt Idd4r 667 16 [ 150.0; 165.0; 155.0; 175.0; 160.0 ];
        pt Idd4r 800 4 [ 115.0; 130.0; 125.0; 135.0; 122.0 ];
        pt Idd4r 800 16 [ 170.0; 190.0; 180.0; 205.0; 185.0 ];
        pt Idd4w 400 4 [ 80.0; 90.0; 85.0; 95.0; 83.0 ];
        pt Idd4w 400 16 [ 105.0; 115.0; 110.0; 125.0; 118.0 ];
        pt Idd4w 533 4 [ 90.0; 100.0; 95.0; 105.0; 92.0 ];
        pt Idd4w 533 16 [ 120.0; 130.0; 125.0; 140.0; 135.0 ];
        pt Idd4w 667 4 [ 95.0; 105.0; 100.0; 112.0; 98.0 ];
        pt Idd4w 667 16 [ 135.0; 150.0; 145.0; 162.0; 148.0 ];
        pt Idd4w 800 4 [ 105.0; 118.0; 112.0; 125.0; 110.0 ];
        pt Idd4w 800 16 [ 155.0; 172.0; 165.0; 185.0; 168.0 ];
      ];
  }

(* 1 Gb DDR3 at 1.5 V.  Vendor order: Samsung K4B1G, Hynix H5TQ1G,
   Micron MT41J, Elpida EDJ1116, Qimonda IDSH1G. *)
let ddr3_1g =
  {
    name = "1G DDR3";
    standard = Vdram_tech.Node.Ddr3;
    vdd = 1.5;
    points =
      [
        pt Idd0 800 4 [ 55.0; 60.0; 65.0; 58.0; 62.0 ];
        pt Idd0 800 16 [ 65.0; 70.0; 78.0; 68.0; 75.0 ];
        pt Idd0 1066 4 [ 60.0; 65.0; 70.0; 62.0; 68.0 ];
        pt Idd0 1066 16 [ 70.0; 75.0; 85.0; 72.0; 80.0 ];
        pt Idd0 1333 4 [ 65.0; 70.0; 75.0; 68.0; 72.0 ];
        pt Idd0 1333 16 [ 75.0; 82.0; 90.0; 78.0; 85.0 ];
        pt Idd4r 800 4 [ 75.0; 85.0; 80.0; 90.0; 78.0 ];
        pt Idd4r 800 16 [ 110.0; 125.0; 120.0; 135.0; 115.0 ];
        pt Idd4r 1066 4 [ 85.0; 95.0; 90.0; 100.0; 88.0 ];
        pt Idd4r 1066 16 [ 130.0; 145.0; 140.0; 155.0; 135.0 ];
        pt Idd4r 1333 4 [ 95.0; 105.0; 100.0; 112.0; 98.0 ];
        pt Idd4r 1333 16 [ 145.0; 162.0; 155.0; 175.0; 150.0 ];
        pt Idd4w 800 4 [ 70.0; 78.0; 75.0; 85.0; 72.0 ];
        pt Idd4w 800 16 [ 100.0; 112.0; 108.0; 122.0; 105.0 ];
        pt Idd4w 1066 4 [ 78.0; 88.0; 82.0; 92.0; 80.0 ];
        pt Idd4w 1066 16 [ 115.0; 130.0; 125.0; 140.0; 120.0 ];
        pt Idd4w 1333 4 [ 88.0; 98.0; 92.0; 102.0; 90.0 ];
        pt Idd4w 1333 16 [ 130.0; 145.0; 140.0; 158.0; 135.0 ];
      ];
  }

(* 2 Gb DDR3 at 1.5 V, x16 parts (Samsung K4B2G, Hynix H5TQ2G, Micron
   MT41J128M16, Elpida EDJ2116, Nanya NT5CB128M16). *)
let ddr3_2g =
  {
    name = "2G DDR3";
    standard = Vdram_tech.Node.Ddr3;
    vdd = 1.5;
    points =
      [
        pt Idd0 1066 16 [ 75.0; 80.0; 90.0; 78.0; 85.0 ];
        pt Idd0 1333 16 [ 80.0; 88.0; 95.0; 83.0; 90.0 ];
        pt Idd4r 1066 16 [ 135.0; 150.0; 145.0; 160.0; 140.0 ];
        pt Idd4r 1333 16 [ 150.0; 168.0; 160.0; 180.0; 155.0 ];
        pt Idd4w 1066 16 [ 120.0; 135.0; 130.0; 145.0; 125.0 ];
        pt Idd4w 1333 16 [ 135.0; 150.0; 145.0; 162.0; 140.0 ];
      ];
  }
