(** Vendor datasheet Idd values for the Figure 8 / Figure 9
    verification.

    Values are transcribed from public 1 Gb DDR2 and DDR3 datasheets
    of the major vendors of the era (Samsung, Hynix, Micron, Elpida,
    Qimonda — the paper's references [22], [23]); per-vendor numbers
    carry the representative spread the paper shows.  Currents are
    milliamperes at the nominal supply. *)

type test = Idd0 | Idd4r | Idd4w

val test_name : test -> string
(** ["Idd0"], ["Idd4R"], ["Idd4W"]. *)

type point = {
  test : test;
  datarate_mbps : int;  (** per-pin data rate of the speed grade *)
  io_width : int;
  vendors_ma : float list;  (** one value per vendor datasheet *)
}

val label : point -> string
(** The x-axis label style of Figures 8/9, e.g. ["Idd0 533 x4"]. *)

val min_ma : point -> float
val max_ma : point -> float
val mean_ma : point -> float

type family = {
  name : string;
  standard : Vdram_tech.Node.standard;
  vdd : float;
  points : point list;
}

val ddr2_1g : family
(** 1 Gb DDR2: Idd0 / Idd4R / Idd4W at 400, 533, 667 and 800 Mb/s/pin
    for x4 and x16 parts (Figure 8). *)

val ddr3_1g : family
(** 1 Gb DDR3: Idd0 / Idd4R / Idd4W at 800, 1066 and 1333 Mb/s/pin
    for x4 and x16 parts (Figure 9). *)

val ddr3_2g : family
(** 2 Gb DDR3 x16 (the Table III contemporary device's class):
    Idd0 / Idd4R / Idd4W at 1066 and 1333 Mb/s/pin.  Not part of the
    paper's figures; used to check the density dependence. *)
