(* Block-grid physical floorplan (Figure 1). *)

type kind =
  | Array_block
  | Row_logic
  | Column_logic
  | Center_stripe
  | Other of string

let kind_name = function
  | Array_block -> "array block"
  | Row_logic -> "row logic"
  | Column_logic -> "column logic"
  | Center_stripe -> "center stripe"
  | Other s -> s

type axis_block = {
  name : string;
  kind : kind;
  size : float;
}

type t = {
  horizontal : axis_block array;
  vertical : axis_block array;
  geometry : Array_geometry.t;
  banks : int;
}

let v ~horizontal ~vertical ~geometry ~banks =
  if horizontal = [] || vertical = [] then
    invalid_arg "Floorplan.v: empty axis";
  List.iter
    (fun b ->
      if b.size <= 0.0 then
        invalid_arg (Printf.sprintf "Floorplan.v: block %s has size <= 0"
                       b.name))
    (horizontal @ vertical);
  {
    horizontal = Array.of_list horizontal;
    vertical = Array.of_list vertical;
    geometry;
    banks;
  }

let commodity ~geometry ~banks ~row_logic ~column_logic ~center_stripe =
  let bank_rows = if banks >= 16 then 4 else 2 in
  if banks mod bank_rows <> 0 then
    invalid_arg "Floorplan.commodity: banks not divisible into rows";
  let bank_cols = banks / bank_rows in
  if bank_cols mod 2 <> 0 && bank_cols <> 1 then
    invalid_arg "Floorplan.commodity: odd number of bank columns";
  let bw = Array_geometry.block_width geometry
  and bh = Array_geometry.block_height geometry in
  let array_h i = { name = Printf.sprintf "A%d" i; kind = Array_block;
                    size = bw }
  and array_v i = { name = Printf.sprintf "AR%d" i; kind = Array_block;
                    size = bh }
  and rl i = { name = Printf.sprintf "R%d" i; kind = Row_logic;
               size = row_logic }
  and cl i = { name = Printf.sprintf "C%d" i; kind = Column_logic;
               size = column_logic }
  and cs = { name = "CS"; kind = Center_stripe; size = center_stripe } in
  let horizontal =
    if bank_cols = 1 then [ array_h 0 ]
    else
      List.concat
        (List.init (bank_cols / 2) (fun g ->
             [ array_h (2 * g); rl g; array_h ((2 * g) + 1) ]))
  in
  let half = bank_rows / 2 in
  let vertical =
    [ cl 0 ]
    @ List.init half array_v
    @ [ cs ]
    @ List.init half (fun i -> array_v (half + i))
    @ [ cl 1 ]
  in
  v ~horizontal ~vertical ~geometry ~banks

let sum_sizes blocks =
  Array.fold_left (fun acc b -> acc +. b.size) 0.0 blocks

let die_width t = sum_sizes t.horizontal

let die_height t = sum_sizes t.vertical

let die_area t = die_width t *. die_height t

let cell_kind h v =
  match (h.kind, v.kind) with
  | Center_stripe, _ | _, Center_stripe -> Center_stripe
  | Row_logic, _ -> Row_logic
  | _, Row_logic -> Row_logic
  | _, Column_logic | Column_logic, _ -> Column_logic
  | Array_block, Array_block -> Array_block
  | Other s, _ | _, Other s -> Other s

let area_of_kind t k =
  let total = ref 0.0 in
  Array.iter
    (fun h ->
      Array.iter
        (fun v -> if cell_kind h v = k then total := !total +. (h.size *. v.size))
        t.vertical)
    t.horizontal;
  !total

let array_efficiency t =
  let g = t.geometry in
  let subarray_area =
    Array_geometry.subarray_width g *. Array_geometry.subarray_height g in
  let cells_area =
    subarray_area
    *. float_of_int (g.subarrays_along_wl * g.subarrays_along_bl)
    *. float_of_int t.banks
  in
  cells_area /. die_area t

let center t (i, j) =
  let pos blocks idx axis =
    if idx < 0 || idx >= Array.length blocks then
      invalid_arg
        (Printf.sprintf "Floorplan.center: %s index %d out of range" axis idx);
    let before = ref 0.0 in
    for k = 0 to idx - 1 do
      before := !before +. blocks.(k).size
    done;
    !before +. (blocks.(idx).size /. 2.0)
  in
  (pos t.horizontal i "horizontal", pos t.vertical j "vertical")

let route_length t a b =
  let xa, ya = center t a and xb, yb = center t b in
  Float.abs (xa -. xb) +. Float.abs (ya -. yb)

let inside_length t (i, j) ~frac ~dir =
  let _ = center t (i, j) (* bounds check *) in
  match dir with
  | `H -> frac *. t.horizontal.(i).size
  | `V -> frac *. t.vertical.(j).size

let find_block t axis name =
  let blocks = match axis with `H -> t.horizontal | `V -> t.vertical in
  let found = ref None in
  Array.iteri
    (fun i b -> if b.name = name && !found = None then found := Some i)
    blocks;
  !found

let bank_cells t =
  let cells = ref [] in
  Array.iteri
    (fun j v ->
      if v.kind = Array_block then
        Array.iteri
          (fun i h -> if h.kind = Array_block then cells := (i, j) :: !cells)
          t.horizontal)
    t.vertical;
  List.rev !cells

let center_cell t =
  let find blocks =
    let idx = ref 0 in
    Array.iteri (fun i b -> if b.kind = Center_stripe then idx := i) blocks;
    !idx
  in
  let j =
    let has_cs = Array.exists (fun b -> b.kind = Center_stripe) t.vertical in
    if has_cs then find t.vertical else Array.length t.vertical / 2
  in
  let i = Array.length t.horizontal / 2 in
  (i, j)

let pp ppf t =
  let mm v = Printf.sprintf "%.2f mm" (v *. 1e3) in
  Format.fprintf ppf
    "@[<v>die %s x %s = %.1f mm^2, %d banks, array efficiency %.1f%%@,%a@]"
    (mm (die_width t)) (mm (die_height t))
    (die_area t *. 1e6)
    t.banks
    (100.0 *. array_efficiency t)
    Array_geometry.pp t.geometry
