(** Geometry of an array block (one bank) and its sub-arrays.

    An array block is a grid of sub-arrays separated by bitline
    sense-amplifier stripes (along the bitline direction) and local
    wordline driver stripes (along the wordline direction), per
    Figure 1.  The block dimensions are calculated from the bitline
    pitch, wordline pitch and the stripe widths (Section III.B.1). *)

type bitline_style = Open | Folded

type t = {
  style : bitline_style;
  bits_per_bitline : int;    (** cells on one bitline *)
  bits_per_lwl : int;        (** cells on one local wordline *)
  wl_pitch : float;          (** wordline repeat distance, m *)
  bl_pitch : float;          (** bitline repeat distance, m *)
  sa_stripe : float;         (** bitline sense-amplifier stripe width, m *)
  lwd_stripe : float;        (** local wordline driver stripe width, m *)
  subarrays_along_wl : int;  (** sub-arrays in the wordline direction *)
  subarrays_along_bl : int;  (** sub-arrays in the bitline direction *)
  csl_blocks : int;          (** array blocks sharing a column select line *)
}

val derive :
  ?style:bitline_style ->
  ?csl_blocks:int ->
  bank_bits:float ->
  page_bits:int ->
  bits_per_bitline:int ->
  bits_per_lwl:int ->
  wl_pitch:float ->
  bl_pitch:float ->
  sa_stripe:float ->
  lwd_stripe:float ->
  unit ->
  t
(** Derive the sub-array grid of one bank: the page spans the block in
    the wordline direction ([page_bits / bits_per_lwl] sub-arrays) and
    the rest of the bank capacity stacks in the bitline direction.
    Raises [Invalid_argument] when the divisions don't work out. *)

(* Derived extents, all metres. *)

val lwl_length : t -> float
(** Local wordline length: [bits_per_lwl * bl_pitch]. *)

val bitline_length : t -> float
(** Physical bitline length: [bits_per_bitline * wl_pitch] (the
    wordline pitch is the cell height, which already embodies the
    fold of an 8F2 architecture). *)

val subarray_width : t -> float
(** Sub-array extent in the wordline direction. *)

val subarray_height : t -> float
(** Sub-array extent in the bitline direction. *)

val block_width : t -> float
(** Array-block extent along the wordline direction, including local
    wordline driver stripes. *)

val block_height : t -> float
(** Array-block extent along the bitline direction, including
    sense-amplifier stripes. *)

val block_area : t -> float

val master_wordline_length : t -> float
(** A master wordline spans the array block's wordline direction. *)

val csl_length : t -> float
(** A column select line spans [csl_blocks] array blocks in the
    bitline direction. *)

val madl_length : t -> float
(** Master array data lines span the array block in the bitline
    direction. *)

val cells : t -> float
(** Number of cells in the block. *)

val sense_amps : t -> float
(** Bitline sense-amplifiers in the block (pairs of bitlines for the
    open style count once; every sensed bitline has an amplifier
    share). *)

val lwd_count : t -> float
(** Local wordline drivers in the block. *)

val sa_area_share : t -> float
(** Share of the block area used by sense-amplifier stripes
    (paper: 8–15 % of die in a typical commodity DRAM). *)

val lwd_area_share : t -> float
(** Share of the block area used by local wordline driver stripes
    (paper: 5–10 %). *)

val pp : Format.formatter -> t -> unit
