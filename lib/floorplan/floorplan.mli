(** Physical floorplan: block grid along both die axes (Figure 1).

    The floorplan is described, as in the paper's input language, by a
    list of blocks along the horizontal axis and a list along the
    vertical axis; grid cell [(i, j)] has the width of horizontal
    block [i] and the height of vertical block [j].  Signal wire
    segments extend from block center to block center. *)

type kind =
  | Array_block    (** cell array (one bank per block) *)
  | Row_logic     (** row decode / redundancy / master WL drivers *)
  | Column_logic  (** column decode, CSL drivers, secondary sense-amps *)
  | Center_stripe (** pads, interface, control, power system *)
  | Other of string

val kind_name : kind -> string

type axis_block = {
  name : string;
  kind : kind;
  size : float;  (** extent along the axis, m *)
}

type t = {
  horizontal : axis_block array;  (** left to right; sizes are widths *)
  vertical : axis_block array;    (** top to bottom; sizes are heights *)
  geometry : Array_geometry.t;
  banks : int;
}

val v :
  horizontal:axis_block list ->
  vertical:axis_block list ->
  geometry:Array_geometry.t ->
  banks:int ->
  t
(** Build a floorplan from explicit axis lists.  Raises
    [Invalid_argument] if either axis is empty or any size is not
    positive. *)

val commodity :
  geometry:Array_geometry.t ->
  banks:int ->
  row_logic:float ->
  column_logic:float ->
  center_stripe:float ->
  t
(** The commodity layout of Figure 1: banks in 2 rows (4 rows when 16
    or more banks), row-logic stripes between horizontal bank pairs,
    column logic at the bank edges facing the horizontal center
    stripe, which holds pads and interface.  Stripe widths are the
    peripheral block extents in metres. *)

val die_width : t -> float
val die_height : t -> float
val die_area : t -> float

val area_of_kind : t -> kind -> float
(** Total die area covered by grid cells of a kind.  A cell's kind is
    [Center_stripe] if either axis block is the center stripe, else
    [Row_logic] / [Column_logic] if an axis block is one of those,
    else [Array_block] when both axis blocks are array blocks. *)

val array_efficiency : t -> float
(** Cell-array area (sub-arrays only, stripes excluded) over die
    area. *)

val center : t -> int * int -> float * float
(** Center coordinates of grid cell [(i, j)]; [i] indexes the
    horizontal list.  Raises [Invalid_argument] on out-of-range
    coordinates. *)

val route_length : t -> int * int -> int * int -> float
(** Manhattan center-to-center distance between two grid cells. *)

val inside_length : t -> int * int -> frac:float -> dir:[ `H | `V ] -> float
(** Length of a wire segment inside one block: [frac] of the block's
    extent along direction [dir]. *)

val find_block : t -> [ `H | `V ] -> string -> int option
(** Index of a named block along an axis. *)

val bank_cells : t -> (int * int) list
(** Grid coordinates of the array-block cells, row-major, one per
    bank position. *)

val center_cell : t -> int * int
(** The grid cell at the die center (on the center stripe). *)

val pp : Format.formatter -> t -> unit
