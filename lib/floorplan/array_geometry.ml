(* Array-block geometry derived from pitches and stripe widths. *)

type bitline_style = Open | Folded

type t = {
  style : bitline_style;
  bits_per_bitline : int;
  bits_per_lwl : int;
  wl_pitch : float;
  bl_pitch : float;
  sa_stripe : float;
  lwd_stripe : float;
  subarrays_along_wl : int;
  subarrays_along_bl : int;
  csl_blocks : int;
}

let derive ?(style = Open) ?(csl_blocks = 1) ~bank_bits ~page_bits
    ~bits_per_bitline ~bits_per_lwl ~wl_pitch ~bl_pitch ~sa_stripe
    ~lwd_stripe () =
  if page_bits mod bits_per_lwl <> 0 then
    invalid_arg "Array_geometry.derive: page not a multiple of local WL";
  let along_wl = page_bits / bits_per_lwl in
  let bits_per_subarray_row = float_of_int (page_bits * bits_per_bitline) in
  let rows = bank_bits /. bits_per_subarray_row in
  if Float.rem rows 1.0 <> 0.0 || rows < 1.0 then
    invalid_arg "Array_geometry.derive: bank not a whole number of \
                 sub-array rows";
  {
    style;
    bits_per_bitline;
    bits_per_lwl;
    wl_pitch;
    bl_pitch;
    sa_stripe;
    lwd_stripe;
    subarrays_along_wl = along_wl;
    subarrays_along_bl = int_of_float rows;
    csl_blocks;
  }

let lwl_length t = float_of_int t.bits_per_lwl *. t.bl_pitch

let bitline_length t =
  (* The wordline pitch is the cell height (cell_factor / 2 * F), so
     the fold of an 8F2 architecture is already embodied in it: a
     bitline of n cells spans n wordline pitches in either style. *)
  float_of_int t.bits_per_bitline *. t.wl_pitch

let subarray_width t = lwl_length t

let subarray_height t = bitline_length t

let block_width t =
  let n = float_of_int t.subarrays_along_wl in
  (n *. subarray_width t) +. ((n +. 1.0) *. t.lwd_stripe)

let block_height t =
  let n = float_of_int t.subarrays_along_bl in
  (n *. subarray_height t) +. ((n +. 1.0) *. t.sa_stripe)

let block_area t = block_width t *. block_height t

let master_wordline_length t = block_width t

let csl_length t = float_of_int t.csl_blocks *. block_height t

let madl_length t = block_height t

let cells t =
  float_of_int t.bits_per_bitline
  *. float_of_int t.bits_per_lwl
  *. float_of_int t.subarrays_along_wl
  *. float_of_int t.subarrays_along_bl

let sense_amps t =
  (* One amplifier per sensed bitline; folded architectures hold the
     amplifier for a true/complement pair within the same sub-array,
     open architectures sense pairs from adjacent sub-arrays — either
     way there is one amplifier per page bit per sub-array row. *)
  float_of_int (t.subarrays_along_wl * t.bits_per_lwl)
  *. float_of_int t.subarrays_along_bl

let lwd_count t =
  float_of_int t.subarrays_along_wl
  *. float_of_int (t.subarrays_along_bl * t.bits_per_bitline)

let sa_area_share t =
  let n = float_of_int t.subarrays_along_bl in
  (n +. 1.0) *. t.sa_stripe /. block_height t

let lwd_area_share t =
  let n = float_of_int t.subarrays_along_wl in
  (n +. 1.0) *. t.lwd_stripe /. block_width t

let pp ppf t =
  let um v = Vdram_units.Si.format_eng ~unit_symbol:"m" v in
  Format.fprintf ppf
    "@[<v>array block: %d x %d sub-arrays of %dx%d cells (%s)@,\
     sub-array %s x %s, block %s x %s@,\
     SA stripe share %.1f%%, LWD stripe share %.1f%%@]"
    t.subarrays_along_wl t.subarrays_along_bl t.bits_per_lwl
    t.bits_per_bitline
    (match t.style with Open -> "open" | Folded -> "folded")
    (um (subarray_width t)) (um (subarray_height t))
    (um (block_width t)) (um (block_height t))
    (100.0 *. sa_area_share t)
    (100.0 *. lwd_area_share t)
