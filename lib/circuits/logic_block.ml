(* Peripheral logic blocks: gates, densities, toggle rates. *)

module P = Vdram_tech.Params
module D = Vdram_tech.Devices

type trigger =
  | Always
  | On_operation of [ `Activate | `Precharge | `Read | `Write ] list

type t = {
  name : string;
  gates : float;
  w_nmos : float;
  w_pmos : float;
  transistors_per_gate : float;
  layout_density : float;
  wiring_density : float;
  trigger : trigger;
  toggle : float;
}

let v ?(w_nmos = 0.5e-6) ?(w_pmos = 0.5e-6) ?(transistors_per_gate = 4.0)
    ?(layout_density = 0.3) ?(wiring_density = 0.5) ?(toggle = 0.15) ~name
    ~gates ~trigger () =
  if gates < 0.0 then invalid_arg "Logic_block.v: negative gate count";
  {
    name;
    gates;
    w_nmos;
    w_pmos;
    transistors_per_gate;
    layout_density;
    wiring_density;
    trigger;
    toggle;
  }

let scale_widths f t = { t with w_nmos = t.w_nmos *. f; w_pmos = t.w_pmos *. f }

let avg_width t = (t.w_nmos +. t.w_pmos) /. 2.0

(* Area of one gate: transistor area over the layout density. *)
let gate_area (p : P.t) t =
  t.transistors_per_gate *. avg_width t *. p.lmin_logic /. t.layout_density

let gate_capacitance (p : P.t) t =
  let w = avg_width t in
  let device =
    t.transistors_per_gate
    *. (D.gate_cap_of p D.Logic ~w ~l:p.lmin_logic
        +. D.junction_cap_of p D.Logic ~w)
  in
  (* Local wiring: the covered wiring length at a pitch of four
     minimum gate lengths. *)
  let wire_length = t.wiring_density *. gate_area p t /. (4.0 *. p.lmin_logic) in
  device +. (p.c_wire_signal *. wire_length)

let area (p : P.t) t = t.gates *. gate_area p t

let energy_per_fire (p : P.t) (d : Domains.t) t =
  t.gates *. t.toggle
  *. Contribution.event ~cap:(gate_capacitance p t) ~voltage:d.vint
