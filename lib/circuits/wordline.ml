(* Row-path charge model: decoder, master and local wordlines. *)

module P = Vdram_tech.Params
module D = Vdram_tech.Devices
module G = Vdram_floorplan.Array_geometry

(* Gate load one local wordline driver presents to its master
   wordline: the p- and n-channel driver gates (Fig 3). *)
let lwd_gate_load (p : P.t) =
  D.gate_cap_of p D.High_voltage ~w:p.w_lwd_n ~l:p.lmin_hv
  +. D.gate_cap_of p D.High_voltage ~w:p.w_lwd_p ~l:p.lmin_hv

let mwl_capacitance (p : P.t) ~geometry =
  let wire = p.c_wire_mwl *. G.master_wordline_length geometry in
  let lwds = float_of_int (geometry.G.subarrays_along_wl + 1) in
  let decoder_junctions =
    D.junction_cap_of p D.High_voltage ~w:p.w_mwl_dec_n
    +. D.junction_cap_of p D.High_voltage ~w:p.w_mwl_dec_p
  in
  wire +. (lwds *. lwd_gate_load p) +. decoder_junctions

let lwl_capacitance (p : P.t) ~geometry =
  let wire = p.c_wire_lwl *. G.lwl_length geometry in
  let cells =
    float_of_int geometry.G.bits_per_lwl
    *. D.gate_cap_of p D.Cell ~w:p.w_cell ~l:p.l_cell
  in
  (* The rising wordline must also charge the share of each crossing
     bitline's capacitance that couples to it. *)
  let coupling =
    float_of_int geometry.G.bits_per_lwl
    *. p.bl_wl_coupling *. p.c_bitline
    /. float_of_int geometry.G.bits_per_bitline
  in
  let restore_junction =
    D.junction_cap_of p D.High_voltage ~w:p.w_lwd_restore
  in
  wire +. cells +. coupling +. restore_junction

(* Select lines from the wordline controller into the driver stripes:
   one per activated sub-array, loaded with the controller load
   devices and the restore gates of the drivers in the stripe. *)
let select_line_cap (p : P.t) =
  D.gate_cap_of p D.High_voltage ~w:p.w_wlctl_load_n ~l:p.lmin_hv
  +. D.gate_cap_of p D.High_voltage ~w:p.w_wlctl_load_p ~l:p.lmin_hv
  +. D.gate_cap_of p D.High_voltage ~w:p.w_lwd_restore ~l:p.lmin_hv

(* Pre-decode: the row address fans out over pre-decoded lines running
   the length of the row-logic stripe, each loaded with decoder gates;
   only a share switches per access. *)
let predecode_energy (p : P.t) (d : Domains.t) ~geometry =
  let decoder_gates =
    D.gate_cap_of p D.Logic ~w:p.w_mwl_dec_n ~l:p.lmin_logic
    +. D.gate_cap_of p D.Logic ~w:p.w_mwl_dec_p ~l:p.lmin_logic
  in
  let line =
    (p.c_wire_signal *. G.madl_length geometry) +. decoder_gates
  in
  Contribution.events
    ~count:(p.mwl_predecode *. p.mwl_dec_activity *. 2.0)
    ~cap:line ~voltage:d.vint

let row_events (p : P.t) (d : Domains.t) ~geometry ~page_bits =
  let n_lwl = float_of_int (page_bits / geometry.G.bits_per_lwl) in
  let mwl =
    Contribution.event ~cap:(mwl_capacitance p ~geometry) ~voltage:d.vpp
  in
  let lwl =
    Contribution.events ~count:n_lwl ~cap:(lwl_capacitance p ~geometry)
      ~voltage:d.vpp
  in
  let select =
    Contribution.events ~count:n_lwl ~cap:(select_line_cap p)
      ~voltage:d.vpp
  in
  (mwl, lwl, select)

let activate (p : P.t) (d : Domains.t) ~geometry ~page_bits =
  let mwl, lwl, select = row_events p d ~geometry ~page_bits in
  [
    Contribution.v ~label:"row decode" ~domain:Domains.Vint
      ~energy:(predecode_energy p d ~geometry);
    Contribution.v ~label:"master wordline" ~domain:Domains.Vpp ~energy:mwl;
    Contribution.v ~label:"wordline select" ~domain:Domains.Vpp
      ~energy:select;
    Contribution.v ~label:"local wordline" ~domain:Domains.Vpp ~energy:lwl;
  ]

let precharge (p : P.t) (d : Domains.t) ~geometry ~page_bits =
  let mwl, lwl, select = row_events p d ~geometry ~page_bits in
  [
    Contribution.v ~label:"master wordline" ~domain:Domains.Vpp ~energy:mwl;
    Contribution.v ~label:"wordline select" ~domain:Domains.Vpp
      ~energy:select;
    Contribution.v ~label:"local wordline" ~domain:Domains.Vpp ~energy:lwl;
  ]
