(** Row-path charge model: master wordline decode, local wordline
    drivers (Figure 3, 3 transistors per local wordline) and the
    wordlines themselves.  All wordline swings are in the boosted Vpp
    domain; the pre-decode stage runs at Vint. *)

val mwl_capacitance :
  Vdram_tech.Params.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  float
(** Total capacitance of one master wordline: wire plus the gate loads
    of the local wordline drivers hanging off it and the decoder
    junctions. *)

val lwl_capacitance :
  Vdram_tech.Params.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  float
(** Total capacitance of one local wordline: poly wire, the gates of
    the cells on it, the coupling share of crossing bitlines and the
    restore-device junction. *)

val activate :
  Vdram_tech.Params.t ->
  Domains.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  page_bits:int ->
  Contribution.t list
(** Energy of the row path for one activate: pre-decode and master
    wordline decode, master wordline rise, wordline-controller select
    lines, and the rise of every local wordline of the page. *)

val precharge :
  Vdram_tech.Params.t ->
  Domains.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  page_bits:int ->
  Contribution.t list
(** The matching discharge events when the row closes. *)
