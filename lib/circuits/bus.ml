(* Signaling buses: wire segments with optional buffers. *)

module P = Vdram_tech.Params
module D = Vdram_tech.Devices

type segment = {
  name : string;
  length : float;
  buffer : (float * float) option;
  mux : int option;
  toggle : float;
}

let segment ?buffer ?mux ?(toggle = 1.0) ~name ~length () =
  if length < 0.0 then invalid_arg "Bus.segment: negative length";
  { name; length; buffer; mux; toggle }

type role =
  | Write_data
  | Read_data
  | Row_address
  | Column_address
  | Bank_address
  | Command
  | Clock

let role_name = function
  | Write_data -> "write data"
  | Read_data -> "read data"
  | Row_address -> "row address"
  | Column_address -> "column address"
  | Bank_address -> "bank address"
  | Command -> "command"
  | Clock -> "clock"

type t = {
  name : string;
  role : role;
  wires : int;
  segments : segment list;
}

let v ~name ~role ~wires segments =
  if wires <= 0 then invalid_arg "Bus.v: wires must be positive";
  { name; role; wires; segments }

let segment_capacitance (p : P.t) s =
  let wire = p.c_wire_signal *. s.length in
  let buffer =
    match s.buffer with
    | None -> 0.0
    | Some (wn, wp) ->
      D.device_cap p D.Logic ~w:wn ~l:p.lmin_logic
      +. D.device_cap p D.Logic ~w:wp ~l:p.lmin_logic
  in
  wire +. buffer

let energy_per_bit (p : P.t) (d : Domains.t) t =
  List.fold_left
    (fun acc s ->
      acc
      +. s.toggle
         *. Contribution.event ~cap:(segment_capacitance p s)
              ~voltage:d.vint)
    0.0 t.segments

let energy_per_event (p : P.t) (d : Domains.t) t =
  float_of_int t.wires *. energy_per_bit p d t

let total_length t =
  List.fold_left (fun acc s -> acc +. s.length) 0.0 t.segments
