(** Column-path charge model: column select lines, local and master
    array data lines and the secondary sense-amplifiers
    (Section II / Figure 1 right side).

    One column access moves [bits] = IO width x prefetch bits between
    the sense-amplifiers and the center stripe: [bits / bits_per_csl]
    column select lines fire, each accessed bit transfers over a local
    data line pair and a differential master array data line pair. *)

val csl_capacitance :
  Vdram_tech.Params.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  float
(** One column select line: M3 wire over its span plus the bit-switch
    gates it drives in every sense-amplifier stripe it crosses. *)

val madl_pair_capacitance :
  Vdram_tech.Params.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  float
(** One differential master array data line pair including secondary
    sense-amplifier loads. *)

val local_dq_pair_capacitance :
  Vdram_tech.Params.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  float
(** One local data line pair inside a sense-amplifier stripe. *)

val access :
  Vdram_tech.Params.t ->
  Domains.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  bits:int ->
  write:bool ->
  Contribution.t list
(** Energy of one column access (read or write) of [bits] bits:
    column decode, CSL events, local data lines, master array data
    lines and secondary sense-amplifiers.  Writes drive the data lines
    from the center stripe instead of sensing them — same loads, so
    the same events, plus stronger write-driver loads. *)
