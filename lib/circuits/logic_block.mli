(** Miscellaneous peripheral logic blocks (Table I, "Logic block
    description" group).

    Command/address decoding, clock synchronisation and distribution
    and similar functions are modelled by the number of toggling
    gates, average device sizes and densities.  The gate count is the
    paper's fit parameter against datasheet currents. *)

type trigger =
  | Always
      (** toggles every control-clock cycle (clocking, input samplers) *)
  | On_operation of [ `Activate | `Precharge | `Read | `Write ] list
      (** evaluates once per occurrence of the listed operations *)

type t = {
  name : string;
  gates : float;               (** number of gates in the block *)
  w_nmos : float;              (** average NMOS width, m *)
  w_pmos : float;              (** average PMOS width, m *)
  transistors_per_gate : float;
  layout_density : float;      (** share of area covered by gates *)
  wiring_density : float;      (** share of area covered by local wiring *)
  trigger : trigger;
  toggle : float;              (** toggling rate relative to the clock *)
}

val v :
  ?w_nmos:float -> ?w_pmos:float -> ?transistors_per_gate:float ->
  ?layout_density:float -> ?wiring_density:float -> ?toggle:float ->
  name:string -> gates:float -> trigger:trigger -> unit -> t
(** Defaults: widths 0.5 um, 4 transistors per gate, layout density
    0.3, wiring density 0.5, toggle 0.15. *)

val scale_widths : float -> t -> t
(** Multiply the average device widths (used by technology scaling). *)

val gate_capacitance : Vdram_tech.Params.t -> t -> float
(** Device plus local-wiring capacitance of one average gate. *)

val area : Vdram_tech.Params.t -> t -> float
(** Layout area of the block, m^2. *)

val energy_per_fire : Vdram_tech.Params.t -> Domains.t -> t -> float
(** Energy dissipated each time the block evaluates (one clock cycle
    for [Always] blocks, one command for [On_operation] blocks):
    [gates * toggle * 1/2 C_gate Vint^2]. *)
