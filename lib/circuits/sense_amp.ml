(* Charge model of the bitline sense-amplifier stripe (Fig 2). *)

module P = Vdram_tech.Params
module D = Vdram_tech.Devices
module G = Vdram_floorplan.Array_geometry

let transistors_per_pair (g : G.t) =
  match g.style with G.Folded -> 11 | G.Open -> 9

(* Device load each bitline carries from the amplifier: the gate of
   one sense NMOS and one sense PMOS (cross-coupled), their junctions,
   plus junctions of the equalize device, the bit switch and (folded)
   the bitline multiplexer. *)
let bitline_device_load (p : P.t) (g : G.t) =
  let gate = D.gate_cap_of p D.Logic
  and junction = D.junction_cap_of p D.Logic in
  let sense =
    gate ~w:p.w_sa_n ~l:p.l_sa_n
    +. gate ~w:p.w_sa_p ~l:p.l_sa_p
    +. junction ~w:p.w_sa_n
    +. junction ~w:p.w_sa_p
  in
  let eq_junction = D.junction_cap_of p D.High_voltage ~w:p.w_sa_eq in
  let switch_junction = junction ~w:p.w_sa_bitswitch in
  let mux_junction =
    match g.style with
    | G.Folded -> D.junction_cap_of p D.High_voltage ~w:p.w_sa_mux
    | G.Open -> 0.0
  in
  sense +. eq_junction +. switch_junction +. mux_junction

let set_gate_cap (p : P.t) =
  D.gate_cap_of p D.Logic ~w:p.w_sa_nset ~l:p.l_sa_nset
  +. D.gate_cap_of p D.Logic ~w:p.w_sa_pset ~l:p.l_sa_pset

let common_node_cap (p : P.t) =
  D.junction_cap_of p D.Logic ~w:p.w_sa_n
  +. D.junction_cap_of p D.Logic ~w:p.w_sa_p
  +. D.junction_cap_of p D.Logic ~w:p.w_sa_nset
  +. D.junction_cap_of p D.Logic ~w:p.w_sa_pset

let equalize_gate_cap (p : P.t) =
  3.0 *. D.gate_cap_of p D.High_voltage ~w:p.w_sa_eq ~l:p.l_sa_eq

let mux_gate_cap (p : P.t) (g : G.t) =
  match g.style with
  | G.Folded -> 2.0 *. D.gate_cap_of p D.High_voltage ~w:p.w_sa_mux ~l:p.l_sa_mux
  | G.Open -> 0.0

let activate (p : P.t) (d : Domains.t) ~geometry ~page_bits =
  let n = float_of_int page_bits in
  let half_vbl = d.vbl /. 2.0 in
  let c ~label ~domain ~energy = Contribution.v ~label ~domain ~energy in
  [
    (* Each sensed pair swings half the array voltage per line; the
       midlevel equalize at precharge recycles half of the drawn
       charge (true and complement are shorted), so one activate
       books C * Vbl^2 / 4 per pair and the precharge books nothing
       for the bitlines themselves. *)
    c ~label:"bitline sensing" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:n ~cap:(p.c_bitline /. 2.0)
           ~voltage:d.vbl);
    (* Restoring the charge-shared cell: half the cell swing on
       average, with the same equalize recycling. *)
    c ~label:"cell restore" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:n ~cap:(p.c_cell /. 4.0)
           ~voltage:d.vbl);
    (* Amplifier device loads ride the same bitline swing. *)
    c ~label:"sense amplifier devices" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:(2.0 *. n)
           ~cap:(bitline_device_load p geometry) ~voltage:half_vbl);
    (* NSET / PSET control gates fire once per activate ... *)
    c ~label:"sense amplifier set" ~domain:Domains.Vint
      ~energy:
        (Contribution.events ~count:n ~cap:(set_gate_cap p) ~voltage:d.vint);
    (* ... and the common source nodes swing half the array voltage. *)
    c ~label:"sense amplifier set" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:(2.0 *. n) ~cap:(common_node_cap p)
           ~voltage:half_vbl);
    (* Equalize devices (Vpp gates) switch off for the activate. *)
    c ~label:"sense amplifier equalize control" ~domain:Domains.Vpp
      ~energy:
        (Contribution.events ~count:n ~cap:(equalize_gate_cap p)
           ~voltage:d.vpp);
    (* Folded architectures select the bitline segment per activate. *)
    c ~label:"bitline multiplexer" ~domain:Domains.Vpp
      ~energy:
        (Contribution.events ~count:n ~cap:(mux_gate_cap p geometry)
           ~voltage:d.vpp);
  ]

let precharge (p : P.t) (d : Domains.t) ~geometry ~page_bits =
  let n = float_of_int page_bits in
  let c ~label ~domain ~energy = Contribution.v ~label ~domain ~energy in
  [
    (* Equalize gates re-assert; the bitline midlevel itself comes for
       free from shorting true and complement. *)
    c ~label:"sense amplifier equalize control" ~domain:Domains.Vpp
      ~energy:
        (Contribution.events ~count:n ~cap:(equalize_gate_cap p)
           ~voltage:d.vpp);
    (* Set lines release. *)
    c ~label:"sense amplifier set" ~domain:Domains.Vint
      ~energy:
        (Contribution.events ~count:n ~cap:(set_gate_cap p) ~voltage:d.vint);
    c ~label:"bitline multiplexer" ~domain:Domains.Vpp
      ~energy:
        (Contribution.events ~count:n ~cap:(mux_gate_cap p geometry)
           ~voltage:d.vpp);
  ]

let write_back (p : P.t) (d : Domains.t) ~bits ~toggle =
  let flips = toggle *. float_of_int bits in
  [
    (* An overwritten bitline swings rail to rail: a discharge and a
       charge event of the full bitline. *)
    Contribution.v ~label:"bitline overwrite" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:(2.0 *. flips) ~cap:p.c_bitline
           ~voltage:d.vbl);
    Contribution.v ~label:"cell restore" ~domain:Domains.Vbl
      ~energy:
        (Contribution.events ~count:flips ~cap:p.c_cell ~voltage:d.vbl);
  ]
