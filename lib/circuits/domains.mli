(** DRAM voltage domains and their generators (Section III.A).

    Wordlines are boosted to Vpp; the bitline voltage Vbl is the
    reliability-limited cell storage voltage; Vint supplies most logic
    and is either regulated from, or directly connected to, the
    external Vdd.  Energy drawn in a derived domain costs
    [energy / efficiency] at the Vdd pins. *)

type domain = Vdd | Vint | Vbl | Vpp

val domain_name : domain -> string

type t = {
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  eff_int : float;  (** generator efficiency of the Vint regulator *)
  eff_bl : float;   (** generator efficiency of the Vbl regulator *)
  eff_pp : float;   (** pump efficiency of the Vpp charge pump *)
  i_constant : float;
  (** constant current sink from Vdd (reference currents, power
      system), amperes *)
}

val v :
  ?eff_int:float -> ?eff_bl:float -> ?eff_pp:float -> ?i_constant:float ->
  vdd:float -> vint:float -> vbl:float -> vpp:float -> unit -> t
(** Build a domain set.  Efficiencies default to the physical models
    of {!linear_efficiency} (Vint, Vbl) and {!pump_efficiency} (Vpp);
    [i_constant] defaults to 3 mA.  Raises [Invalid_argument] on
    non-positive voltages or efficiencies outside (0, 1]. *)

val linear_efficiency : vdd:float -> vout:float -> float
(** Efficiency of a linear regulator: [vout /. vdd], capped at 1.0
    (a directly connected rail is lossless). *)

val pump_efficiency : vdd:float -> vout:float -> float
(** Efficiency of a charge pump with integer multiplication factor
    [k = ceil (vout / vdd)]: [0.85 * vout / (k * vdd)]. *)

val voltage : t -> domain -> float

val efficiency : t -> domain -> float
(** 1.0 for [Vdd]. *)

val at_vdd : t -> domain -> float -> float
(** [at_vdd t d e] is the energy drawn from the external supply when
    [e] joules are dissipated in domain [d]. *)

val pp : Format.formatter -> t -> unit
