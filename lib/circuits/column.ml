(* Column-path charge model: CSL, data lines, secondary sense-amps. *)

module P = Vdram_tech.Params
module D = Vdram_tech.Devices
module G = Vdram_floorplan.Array_geometry

let csl_capacitance (p : P.t) ~geometry =
  let wire = p.c_wire_signal *. G.csl_length geometry in
  (* The CSL crosses every SA stripe of the blocks sharing it and
     drives [bits_per_csl] bit-switch gates in each. *)
  let stripes =
    float_of_int
      ((geometry.G.subarrays_along_bl + 1) * geometry.G.csl_blocks)
  in
  let switch_gates =
    float_of_int p.bits_per_csl
    *. D.gate_cap_of p D.Logic ~w:p.w_sa_bitswitch ~l:p.l_sa_bitswitch
  in
  wire +. (stripes *. switch_gates)

let secondary_sa_cap (p : P.t) =
  (* Four logic transistors of sense-pair size per master data line
     pair: amplifier cross-couple plus write driver. *)
  4.0 *. D.device_cap p D.Logic ~w:p.w_sa_n ~l:p.l_sa_n

let madl_pair_capacitance (p : P.t) ~geometry =
  (2.0 *. p.c_wire_signal *. G.madl_length geometry) +. secondary_sa_cap p

let local_dq_pair_capacitance (p : P.t) ~geometry =
  (* The local data lines run along the SA stripe across one
     sub-array's width. *)
  2.0 *. p.c_wire_signal *. G.subarray_width geometry

(* Column decode mirrors the row pre-decode but fires per column
   command; its pre-decode lines run along the column-logic stripe
   across the array block width. *)
let column_decode_energy (p : P.t) (d : Domains.t) ~geometry ~csl_fires =
  let decoder_gates =
    D.gate_cap_of p D.Logic ~w:p.w_mwl_dec_n ~l:p.lmin_logic
    +. D.gate_cap_of p D.Logic ~w:p.w_mwl_dec_p ~l:p.lmin_logic
  in
  let line =
    (p.c_wire_signal *. G.master_wordline_length geometry) +. decoder_gates
  in
  Contribution.events
    ~count:(csl_fires *. p.mwl_predecode *. p.mwl_dec_activity)
    ~cap:line ~voltage:d.vint

let access (p : P.t) (d : Domains.t) ~geometry ~bits ~write =
  let nbits = float_of_int bits in
  let csl_fires = nbits /. float_of_int p.bits_per_csl in
  let c = Contribution.v in
  let base =
    [
      c ~label:"column decode" ~domain:Domains.Vint
        ~energy:(column_decode_energy p d ~geometry ~csl_fires);
      (* Each selected CSL pulses high and back low. *)
      c ~label:"column select line" ~domain:Domains.Vint
        ~energy:
          (Contribution.events ~count:(2.0 *. csl_fires)
             ~cap:(csl_capacitance p ~geometry) ~voltage:d.vint);
      (* Local data line pairs: precharged, one side swings per bit. *)
      c ~label:"local data lines" ~domain:Domains.Vbl
        ~energy:
          (Contribution.events ~count:nbits
             ~cap:(local_dq_pair_capacitance p ~geometry) ~voltage:d.vbl);
      (* Master array data lines: the precharged differential pair
         sees a precharge and an evaluate event per transported bit. *)
      c ~label:"master array data lines" ~domain:Domains.Vint
        ~energy:
          (Contribution.events ~count:(2.0 *. nbits)
             ~cap:(madl_pair_capacitance p ~geometry) ~voltage:d.vint);
      c ~label:"secondary sense amplifier" ~domain:Domains.Vint
        ~energy:
          (Contribution.events ~count:nbits ~cap:(secondary_sa_cap p)
             ~voltage:d.vint);
    ]
  in
  if write then
    (* Write drivers present an extra device load per pair while
       forcing the data lines. *)
    base
    @ [
        c ~label:"write drivers" ~domain:Domains.Vint
          ~energy:
            (Contribution.events ~count:nbits ~cap:(secondary_sa_cap p)
               ~voltage:d.vint);
      ]
  else base
