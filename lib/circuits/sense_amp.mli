(** Bitline sense-amplifier charge model (Figure 2).

    A typical stripe has 11 transistors per bitline pair: the NMOS and
    PMOS sense pairs, three equalize devices, the bit switches and —
    for folded architectures — the bitline multiplexers.  During
    activate the amplifier senses the half-Vbl bitline swing and
    restores the cell; equalize control toggles in the Vpp domain;
    the actual bitline precharge to midlevel is adiabatic (shorting
    true and complement) and costs nothing. *)

val transistors_per_pair : Vdram_floorplan.Array_geometry.t -> int
(** 11 for folded (with bitline multiplexers), 9 for open. *)

val activate :
  Vdram_tech.Params.t ->
  Domains.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  page_bits:int ->
  Contribution.t list
(** Energy of one activate command: bitline sensing, cell restore,
    sense-device loads, set-line and equalize control. *)

val precharge :
  Vdram_tech.Params.t ->
  Domains.t ->
  geometry:Vdram_floorplan.Array_geometry.t ->
  page_bits:int ->
  Contribution.t list
(** Energy of one precharge command: equalize control re-assertion
    and set-line release (the midlevel equalize itself is free). *)

val write_back :
  Vdram_tech.Params.t ->
  Domains.t ->
  bits:int ->
  toggle:float ->
  Contribution.t list
(** Energy of overwriting sensed bitlines during a write: [bits]
    accessed bitlines of which a [toggle] share flips rail-to-rail. *)
