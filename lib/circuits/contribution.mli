(** A named energy contribution of one operation.

    Every charging or discharging of capacitance [C] across voltage
    [V] dissipates [1/2 C V^2] (paper eq. 1); a contribution is a
    labelled bundle of such events, expressed as joules dissipated in
    one voltage domain each time the owning operation executes. *)

type t = {
  label : string;           (** breakdown group, e.g. ["bitline sensing"] *)
  domain : Domains.domain;  (** where the energy is dissipated *)
  energy : float;           (** joules per operation occurrence *)
}

type group = Wordline | Sense_amp | Column | Bus | Interface | Logic
(** The circuit group a contribution originates from — one per charge
    model under [lib/circuits], plus the configuration-level DQ
    interface.  This is the granularity of the staged engine's
    incremental delta-extraction: a perturbation dirties some groups
    and the engine re-extracts only those. *)

val groups : group list
(** All groups, in {!group_index} order. *)

val group_count : int
(** [List.length groups]. *)

val group_index : group -> int
(** Dense index, [0 .. group_count - 1]. *)

val group_name : group -> string

val v : label:string -> domain:Domains.domain -> energy:float -> t

val event : cap:float -> voltage:float -> float
(** [1/2 C V^2] of one charge or discharge event. *)

val events : count:float -> cap:float -> voltage:float -> float
(** [count] events of [1/2 C V^2]. *)

val scale : float -> t -> t
(** Multiply the energy of a contribution. *)

val total_at_vdd : Domains.t -> t list -> float
(** Total energy drawn from the external supply, accounting for
    generator efficiencies. *)

val by_label : t list -> (string * float) list
(** Internal energy summed per label, descending. *)

val pp : Format.formatter -> t -> unit
