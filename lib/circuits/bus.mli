(** Signaling buses built from wire segments with optional device
    loads (Section III.B.2, "Signaling Floorplan").

    Long wires are interrupted by re-drivers (buffers) or multiplexers;
    each segment's capacitance is its length times the specific wire
    capacitance plus the gate and junction capacitance of the inserted
    devices.  Segment lengths are resolved against the physical
    floorplan (block center to block center) by the configuration
    layer before reaching this module. *)

type segment = {
  name : string;
  length : float;                  (** resolved wire length, m *)
  buffer : (float * float) option; (** NMOS / PMOS width of a re-driver *)
  mux : int option;                (** 1:n (de)serialisation at this point *)
  toggle : float;                  (** activity relative to one event *)
}

val segment :
  ?buffer:float * float -> ?mux:int -> ?toggle:float -> name:string ->
  length:float -> unit -> segment
(** [toggle] defaults to 1.0. *)

type role =
  | Write_data
  | Read_data
  | Row_address
  | Column_address
  | Bank_address
  | Command
  | Clock

val role_name : role -> string

type t = {
  name : string;
  role : role;
  wires : int;   (** parallel wires (address bits, clock wires, ...) *)
  segments : segment list;
}

val v : name:string -> role:role -> wires:int -> segment list -> t

val segment_capacitance : Vdram_tech.Params.t -> segment -> float
(** Wire plus buffer capacitance of one segment of one wire. *)

val energy_per_bit : Vdram_tech.Params.t -> Domains.t -> t -> float
(** Energy to move one bit through all segments of a data bus:
    serialization changes wire count and switching frequency but not
    the energy per transported bit, so data-bus energy is accounted
    per bit. *)

val energy_per_event : Vdram_tech.Params.t -> Domains.t -> t -> float
(** Energy of one bus event (an address/command presented, a clock
    edge pair): all wires toggle with their segments' activity. *)

val total_length : t -> float
