(* Labelled per-operation energy contributions. *)

type t = {
  label : string;
  domain : Domains.domain;
  energy : float;
}

(* The circuit group a contribution bundle originates from: the
   granularity of the staged engine's incremental delta-extraction.
   One group per charge-model module (plus the DQ interface, which
   lives at the configuration level). *)
type group = Wordline | Sense_amp | Column | Bus | Interface | Logic

let groups = [ Wordline; Sense_amp; Column; Bus; Interface; Logic ]
let group_count = 6

let group_index = function
  | Wordline -> 0
  | Sense_amp -> 1
  | Column -> 2
  | Bus -> 3
  | Interface -> 4
  | Logic -> 5

let group_name = function
  | Wordline -> "wordline"
  | Sense_amp -> "sense-amp"
  | Column -> "column"
  | Bus -> "bus"
  | Interface -> "interface"
  | Logic -> "logic"

let v ~label ~domain ~energy = { label; domain; energy }

let event ~cap ~voltage = 0.5 *. cap *. voltage *. voltage

let events ~count ~cap ~voltage = count *. event ~cap ~voltage

let scale f t = { t with energy = t.energy *. f }

let total_at_vdd domains contributions =
  List.fold_left
    (fun acc c -> acc +. Domains.at_vdd domains c.domain c.energy)
    0.0 contributions

let by_label contributions =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl c.label) in
      Hashtbl.replace tbl c.label (prev +. c.energy))
    contributions;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (_, a) (_, b) -> Float.compare b a) items

let pp ppf t =
  Format.fprintf ppf "%s [%s]: %s" t.label
    (Domains.domain_name t.domain)
    (Vdram_units.Si.format_eng ~unit_symbol:"J" t.energy)
