(* Voltage domains and generator/pump efficiencies. *)

type domain = Vdd | Vint | Vbl | Vpp

let domain_name = function
  | Vdd -> "Vdd"
  | Vint -> "Vint"
  | Vbl -> "Vbl"
  | Vpp -> "Vpp"

type t = {
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  eff_int : float;
  eff_bl : float;
  eff_pp : float;
  i_constant : float;
}

let linear_efficiency ~vdd ~vout = Float.min 1.0 (vout /. vdd)

let pump_efficiency ~vdd ~vout =
  let k = Float.max 1.0 (Float.round (Float.ceil (vout /. vdd))) in
  0.85 *. vout /. (k *. vdd)

let v ?eff_int ?eff_bl ?eff_pp ?(i_constant = 5e-3) ~vdd ~vint ~vbl ~vpp () =
  if vdd <= 0.0 || vint <= 0.0 || vbl <= 0.0 || vpp <= 0.0 then
    invalid_arg "Domains.v: voltages must be positive";
  let eff_int =
    match eff_int with
    | Some e -> e
    | None -> linear_efficiency ~vdd ~vout:vint
  and eff_bl =
    match eff_bl with
    | Some e -> e
    | None -> linear_efficiency ~vdd ~vout:vbl
  and eff_pp =
    match eff_pp with
    | Some e -> e
    | None -> pump_efficiency ~vdd ~vout:vpp
  in
  let check name e =
    if e <= 0.0 || e > 1.0 then
      invalid_arg (Printf.sprintf "Domains.v: %s outside (0, 1]" name)
  in
  check "eff_int" eff_int;
  check "eff_bl" eff_bl;
  check "eff_pp" eff_pp;
  { vdd; vint; vbl; vpp; eff_int; eff_bl; eff_pp; i_constant }

let voltage t = function
  | Vdd -> t.vdd
  | Vint -> t.vint
  | Vbl -> t.vbl
  | Vpp -> t.vpp

let efficiency t = function
  | Vdd -> 1.0
  | Vint -> t.eff_int
  | Vbl -> t.eff_bl
  | Vpp -> t.eff_pp

let at_vdd t d e = e /. efficiency t d

let pp ppf t =
  Format.fprintf ppf
    "Vdd=%.2fV Vint=%.2fV (eff %.2f) Vbl=%.2fV (eff %.2f) Vpp=%.2fV \
     (eff %.2f) Iconst=%.1fmA"
    t.vdd t.vint t.eff_int t.vbl t.eff_bl t.vpp t.eff_pp
    (t.i_constant *. 1e3)
