(* Arrhenius-style retention scaling. *)

let reference_celsius = 85.0

let doubling_celsius = 10.0

let interval_scale ~celsius =
  2.0 ** ((reference_celsius -. celsius) /. doubling_celsius)

let trefi ~celsius = 7.8e-6 *. interval_scale ~celsius
