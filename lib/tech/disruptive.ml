(* Table II: disruptive DRAM technology changes. *)

type t = {
  transition : string;
  change : string;
  background : string;
}

let all =
  [ { transition = "250nm to 110nm (range)";
      change = "Stitched wordline to segmented wordline";
      background =
        "Minimum feature size of aluminium wiring no longer feasible; \
         the time when different vendors did this transition has a \
         large spread" };
    { transition = "110nm to 90nm";
      change = "Increase in number of cells per bitline and/or local \
                wordline";
      background =
        "Leads to smaller die size; better control of technology and \
         design makes the step possible" };
    { transition = "110nm to 90nm";
      change = "Introduction of dual gate oxide";
      background =
        "Allows lower voltage operation and better performance of \
         standard logic transistors" };
    { transition = "90nm to 75nm";
      change = "Introduction of p+ gate doping of PMOS transistors";
      background =
        "Buried-channel pFET performance not sufficient for standard \
         logic of high data rate DRAMs" };
    { transition = "90nm to 75nm";
      change = "Introduction of 3-dimensional access transistor";
      background =
        "Planar transistor device length got too short for threshold \
         voltage control" };
    { transition = "75nm to 65nm";
      change = "Cell architecture 8F2 folded bitline to 6F2 open bitline";
      background =
        "Leads to smaller die size; better control of technology and \
         design makes the step possible" };
    { transition = "55nm to 44nm";
      change = "Cu metallization";
      background =
        "Lower resistance and/or capacitance in wiring for improved \
         performance and/or power reduction" };
    { transition = "40nm to 36nm";
      change = "Cell architecture 6F2 to 4F2 with vertical access \
                transistor";
      background =
        "Leads to smaller die size; better control of technology and \
         design expected to make the step possible" };
    { transition = "36nm to 31nm";
      change = "High-k dielectric gate oxide";
      background =
        "Better subthreshold behaviour and reduced gate leakage" } ]

let pp ppf t =
  Format.fprintf ppf "%s: %s (%s)" t.transition t.change t.background
