(* Per-generation scaling factors (Figs 5-7) with disruptive steps
   (Table II).  Factors are cumulative products of per-transition rates
   walked along the node list, normalised to 1.0 at the 55 nm
   reference. *)

type family =
  | F_feature
  | F_tox
  | F_lmin_logic
  | F_junction
  | F_cell_transistor
  | F_c_bitline
  | F_c_cell
  | F_wire_cap
  | F_stripe_width
  | F_logic_width
  | F_core_device

let families =
  [ (F_feature, "minimum feature size");
    (F_tox, "gate oxide thickness");
    (F_lmin_logic, "minimum gate length logic");
    (F_junction, "junction capacitance per width");
    (F_cell_transistor, "cell access transistor W/L");
    (F_c_bitline, "bitline capacitance");
    (F_c_cell, "cell capacitance");
    (F_wire_cap, "specific wire capacitance");
    (F_stripe_width, "SA / LWD stripe width");
    (F_logic_width, "average logic device width");
    (F_core_device, "core device width") ]

(* Rate applied when stepping from one node to the next newer node.
   [target] is the newer node of the transition, so disruptive changes
   from Table II land at the node that introduced them. *)
let step_rate family (target : Node.t) =
  let base =
    match family with
    | F_feature -> 0.84
    | F_tox -> 0.95
    | F_lmin_logic -> 0.90
    | F_junction -> 0.93
    | F_cell_transistor -> 0.90
    | F_c_bitline -> 0.92
    | F_c_cell -> 1.0
    | F_wire_cap ->
      (* Wire capacitance per length stops improving once Cu is in
         (beyond 44 nm): tighter pitch cancels lower dielectrics. *)
      if Node.index target > Node.index Node.N44 then 1.0 else 0.98
    | F_stripe_width -> 0.90
    | F_logic_width -> 0.90
    | F_core_device -> 0.87
  in
  let disruptive =
    match (family, target) with
    (* Dual gate oxide at 90 nm lets logic oxides thin faster. *)
    | F_tox, Node.N90 -> 0.92
    (* High-k gate dielectric at 31 nm. *)
    | F_tox, Node.N31 -> 0.90
    (* 3-D access transistor introduced at 75 nm keeps drive without
       planar length scaling. *)
    | F_cell_transistor, Node.N75 -> 1.15
    (* 4F2 vertical access transistor at 36 nm. *)
    | F_cell_transistor, Node.N36 -> 0.80
    (* More cells per bitline at 90 nm (256 -> 512). *)
    | F_c_bitline, Node.N90 -> 1.30
    (* 6F2 open-bitline cell at 65 nm shortens the bitline. *)
    | F_c_bitline, Node.N65 -> 0.92
    (* Cu metallization at 44 nm. *)
    | F_c_bitline, Node.N44 -> 0.90
    | F_wire_cap, Node.N44 -> 0.90
    (* 4F2 at 36 nm shortens bitlines again. *)
    | F_c_bitline, Node.N36 -> 0.92
    | _ -> 1.0
  in
  base *. disruptive

let factor family node =
  let ref_i = Node.index Params.reference_node
  and i = Node.index node in
  let nodes = Array.of_list Node.all in
  if i = ref_i then 1.0
  else if i > ref_i then begin
    (* Newer than reference: multiply step rates going forward. *)
    let f = ref 1.0 in
    for k = ref_i + 1 to i do
      f := !f *. step_rate family nodes.(k)
    done;
    !f
  end
  else begin
    (* Older than reference: divide out the rates between [node] and
       the reference. *)
    let f = ref 1.0 in
    for k = i + 1 to ref_i do
      f := !f /. step_rate family nodes.(k)
    done;
    !f
  end

let params_at node =
  let r = Params.reference in
  let s fam v = v *. factor fam node in
  {
    r with
    tox_logic = s F_tox r.tox_logic;
    tox_hv = s F_tox r.tox_hv;
    tox_cell = s F_tox r.tox_cell;
    lmin_logic = s F_lmin_logic r.lmin_logic;
    cj_logic = s F_junction r.cj_logic;
    lmin_hv = s F_lmin_logic r.lmin_hv;
    cj_hv = s F_junction r.cj_hv;
    l_cell = s F_cell_transistor r.l_cell;
    w_cell = s F_cell_transistor r.w_cell;
    c_bitline = s F_c_bitline r.c_bitline;
    c_cell = s F_c_cell r.c_cell;
    c_wire_mwl = s F_wire_cap r.c_wire_mwl;
    c_wire_lwl = s F_wire_cap r.c_wire_lwl;
    c_wire_signal = s F_wire_cap r.c_wire_signal;
    w_mwl_dec_n = s F_core_device r.w_mwl_dec_n;
    w_mwl_dec_p = s F_core_device r.w_mwl_dec_p;
    w_wlctl_load_n = s F_core_device r.w_wlctl_load_n;
    w_wlctl_load_p = s F_core_device r.w_wlctl_load_p;
    w_lwd_n = s F_core_device r.w_lwd_n;
    w_lwd_p = s F_core_device r.w_lwd_p;
    w_lwd_restore = s F_core_device r.w_lwd_restore;
    w_sa_n = s F_core_device r.w_sa_n;
    l_sa_n = s F_lmin_logic r.l_sa_n;
    w_sa_p = s F_core_device r.w_sa_p;
    l_sa_p = s F_lmin_logic r.l_sa_p;
    w_sa_eq = s F_core_device r.w_sa_eq;
    l_sa_eq = s F_lmin_logic r.l_sa_eq;
    w_sa_bitswitch = s F_core_device r.w_sa_bitswitch;
    l_sa_bitswitch = s F_lmin_logic r.l_sa_bitswitch;
    w_sa_mux = s F_core_device r.w_sa_mux;
    l_sa_mux = s F_lmin_logic r.l_sa_mux;
    w_sa_nset = s F_core_device r.w_sa_nset;
    l_sa_nset = s F_lmin_logic r.l_sa_nset;
    w_sa_pset = s F_core_device r.w_sa_pset;
    l_sa_pset = s F_lmin_logic r.l_sa_pset;
  }

let sa_stripe_width node = 8.0e-6 *. factor F_stripe_width node

let lwd_stripe_width node = 3.0e-6 *. factor F_stripe_width node

let logic_gate_width node = 0.5e-6 *. factor F_logic_width node
