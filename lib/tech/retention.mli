(** Cell retention versus temperature.

    Refresh exists because the cell leaks; leakage is thermally
    activated, so retention halves roughly every 10 °C (the reason
    JEDEC doubles the refresh rate above 85 °C).  This converts an
    operating temperature into the refresh-interval scale used by the
    refresh studies. *)

val reference_celsius : float
(** 85 °C — the temperature the nominal 7.8 us tREFI is specified
    at. *)

val doubling_celsius : float
(** Retention doubles per this many degrees of cooling: 10 °C. *)

val interval_scale : celsius:float -> float
(** Allowed refresh-interval multiple at a temperature:
    [2^((reference - T) / doubling)].  1.0 at 85 °C, 2.0 at 75 °C,
    0.5 at 95 °C. *)

val trefi : celsius:float -> float
(** Temperature-adjusted refresh interval, seconds
    ([7.8e-6 * interval_scale]). *)
