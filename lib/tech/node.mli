(** Technology nodes and interface standards of the DRAM roadmap.

    The paper spans fourteen generations from 170 nm (year 2000, SDR)
    to 16 nm (year 2018, DDR5), with an average feature-size shrink of
    16 % per generation. *)

type standard = Sdr | Ddr | Ddr2 | Ddr3 | Ddr4 | Ddr5

val standard_name : standard -> string
(** e.g. ["DDR3"]. *)

type t =
  | N170 | N140 | N110 | N90 | N75 | N65 | N55
  | N44 | N36 | N31 | N25 | N20 | N18 | N16

val all : t list
(** All nodes, oldest (largest feature size) first. *)

val feature_size : t -> float
(** Minimum feature size in metres, e.g. [55e-9] for [N55]. *)

val feature_nm : t -> float
(** Feature size in nanometres. *)

val year : t -> int
(** Approximate year of peak high-volume usage. *)

val standard : t -> standard
(** Mainstream commodity interface at the node's time of peak usage. *)

val index : t -> int
(** Generation index, 0 for [N170] through 13 for [N16]. *)

val generations_from : t -> t -> int
(** [generations_from a b] = [index b - index a]; positive when [b] is
    newer than [a]. *)

val of_nm : float -> t
(** Nearest node to a feature size given in nanometres. *)

val name : t -> string
(** e.g. ["55nm"]. *)

val pp : Format.formatter -> t -> unit
