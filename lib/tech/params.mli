(** The technology description of a DRAM (Table I, "Technology" group).

    39 parameters describe the process: gate-oxide thicknesses, device
    geometries of the on-pitch array circuitry (bitline sense-amplifier
    of Fig 2, local wordline driver of Fig 3, master wordline decoder),
    array capacitances and specific wire capacitances.  All values are
    base SI (metres, farads, farads per metre). *)

type t = {
  (* Gate oxides (equivalent electrical thickness). *)
  tox_logic : float;       (** general logic transistors *)
  tox_hv : float;          (** high-voltage (Vpp domain) transistors *)
  tox_cell : float;        (** cell access transistor *)
  (* General logic and high-voltage devices. *)
  lmin_logic : float;      (** minimum gate length, general logic *)
  cj_logic : float;        (** junction cap per gate width, general logic *)
  lmin_hv : float;         (** minimum gate length, high voltage *)
  cj_hv : float;           (** junction cap per gate width, high voltage *)
  (* Cell access transistor. *)
  l_cell : float;          (** gate length *)
  w_cell : float;          (** gate width *)
  (* Array capacitances. *)
  c_bitline : float;       (** total capacitance of one bitline *)
  c_cell : float;          (** cell storage capacitance *)
  bl_wl_coupling : float;  (** share of bitline cap coupling to wordline *)
  (* Column access. *)
  bits_per_csl : int;      (** bits accessed per column select line *)
  (* Master wordline / row decode. *)
  c_wire_mwl : float;      (** specific wire capacitance, master wordline *)
  mwl_predecode : float;   (** pre-decode ratio of the master WL decoder *)
  w_mwl_dec_n : float;     (** master WL decoder NMOS width *)
  w_mwl_dec_p : float;     (** master WL decoder PMOS width *)
  mwl_dec_activity : float;(** average switching share of the decoder *)
  w_wlctl_load_n : float;  (** wordline-controller load NMOS width *)
  w_wlctl_load_p : float;  (** wordline-controller load PMOS width *)
  (* Local (sub-)wordline driver, Fig 3. *)
  w_lwd_n : float;         (** sub-wordline driver NMOS width *)
  w_lwd_p : float;         (** sub-wordline driver PMOS width *)
  w_lwd_restore : float;   (** sub-wordline restore NMOS width *)
  c_wire_lwl : float;      (** specific wire capacitance, sub-wordline *)
  (* Bitline sense-amplifier devices, Fig 2. *)
  w_sa_n : float;          (** NMOS sense-pair width *)
  l_sa_n : float;          (** NMOS sense-pair length *)
  w_sa_p : float;          (** PMOS sense-pair width *)
  l_sa_p : float;          (** PMOS sense-pair length *)
  w_sa_eq : float;         (** equalize-device width *)
  l_sa_eq : float;         (** equalize-device length *)
  w_sa_bitswitch : float;  (** bit-switch (column select) width *)
  l_sa_bitswitch : float;  (** bit-switch length *)
  w_sa_mux : float;        (** bitline-multiplexer width (folded only) *)
  l_sa_mux : float;        (** bitline-multiplexer length (folded only) *)
  w_sa_nset : float;       (** NMOS set-device width (per SA share) *)
  l_sa_nset : float;       (** NMOS set-device length *)
  w_sa_pset : float;       (** PMOS set-device width (per SA share) *)
  l_sa_pset : float;       (** PMOS set-device length *)
  (* General signaling. *)
  c_wire_signal : float;   (** specific wire capacitance, signaling wires *)
}

val reference_node : Node.t
(** The node at which {!reference} is calibrated: 55 nm. *)

val reference : t
(** Typical 55 nm commodity-DRAM technology; the calibration anchor for
    all scaled generations. *)

val count : int
(** Number of technology parameters (39, as stated in the paper). *)

val fields : (string * (t -> float) * (t -> float -> t)) list
(** Name / getter / setter for every float field, used by the
    sensitivity analysis to perturb parameters generically.
    [bits_per_csl] is exposed read-only elsewhere (it is structural). *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of all parameters with engineering units. *)
