(** The commodity-DRAM roadmap used for trend extrapolation.

    For each technology node this module provides the mainstream
    interface at the node's peak-usage time (Figure 12), the voltage
    set (Figure 11), row timings, and a die density chosen so that the
    die area lands in the manufacturable 40–60 mm^2 window
    (Section IV.C). *)

type t = {
  node : Node.t;
  standard : Node.standard;
  density_bits : float;     (** bits per die, a power of two *)
  io_width : int;           (** DQ pins; the paper assumes x16 *)
  datarate : float;         (** bit/s per DQ pin *)
  prefetch : int;           (** serialization ratio (core:interface) *)
  burst_length : int;
  banks : int;
  (* Voltage set (Figure 11). *)
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  (* Row timings (Figure 12). *)
  trc : float;              (** row cycle time, s *)
  trcd : float;             (** row-to-column delay, s *)
  trp : float;              (** precharge time, s *)
  (* Array organisation. *)
  bits_per_bitline : int;
  bits_per_lwl : int;       (** cells per local wordline *)
  page_bits : int;          (** bitlines sensed per activate *)
  cell_factor : float;      (** cell size in F^2: 8, 6 or 4 *)
  array_efficiency : float; (** assumed cell-to-die area ratio *)
}

val generation : Node.t -> t
(** The roadmap entry at a node. *)

val all : t list
(** All fourteen generations, oldest first. *)

val core_frequency : t -> float
(** Internal core frequency: [datarate / prefetch]; roughly constant
    at ~200 MHz across the roadmap (the paper's low-cost-core
    assumption). *)

val cell_area : t -> float
(** Area of one cell, m^2: [cell_factor * F^2]. *)

val die_area_estimate : t -> float
(** Roadmap-level die area estimate, m^2:
    [density * cell_area / array_efficiency].  The detailed floorplan
    model refines this. *)

val rows_per_bank : t -> int
val row_address_bits : t -> int
val column_address_bits : t -> int
val bank_address_bits : t -> int
