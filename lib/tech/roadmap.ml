(* Roadmap of commodity DRAM generations: interface, voltages, timings
   and density per node (Section IV.C of the paper). *)

type t = {
  node : Node.t;
  standard : Node.standard;
  density_bits : float;
  io_width : int;
  datarate : float;
  prefetch : int;
  burst_length : int;
  banks : int;
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  trc : float;
  trcd : float;
  trp : float;
  bits_per_bitline : int;
  bits_per_lwl : int;
  page_bits : int;
  cell_factor : float;
  array_efficiency : float;
}

(* Interface roadmap (Fig 12): pin data rate doubles per interface
   transition; core frequency stays ~200 MHz so prefetch doubles. *)
let datarate_of = function
  | Node.N170 -> 166e6 | Node.N140 -> 200e6 | Node.N110 -> 400e6
  | Node.N90 -> 667e6 | Node.N75 -> 800e6 | Node.N65 -> 1066e6
  | Node.N55 -> 1333e6 | Node.N44 -> 1600e6 | Node.N36 -> 2133e6
  | Node.N31 -> 2667e6 | Node.N25 -> 3200e6 | Node.N20 -> 4266e6
  | Node.N18 -> 5333e6 | Node.N16 -> 6400e6

let prefetch_of node =
  match Node.standard node with
  | Node.Sdr -> 1
  | Node.Ddr -> 2
  | Node.Ddr2 -> 4
  | Node.Ddr3 -> 8
  | Node.Ddr4 -> 16
  | Node.Ddr5 -> 32

(* Voltage roadmap (Fig 11), following ITRS. *)
let voltages_of = function
  (*                 vdd   vint  vbl   vpp *)
  | Node.N170 -> (3.30, 3.30, 2.00, 3.90)
  | Node.N140 -> (3.30, 3.00, 1.80, 3.70)
  | Node.N110 -> (2.50, 2.50, 1.60, 3.40)
  | Node.N90 -> (1.80, 1.80, 1.50, 3.20)
  | Node.N75 -> (1.80, 1.70, 1.40, 3.00)
  | Node.N65 -> (1.50, 1.50, 1.30, 2.90)
  | Node.N55 -> (1.50, 1.40, 1.20, 2.80)
  | Node.N44 -> (1.50, 1.35, 1.10, 2.70)
  | Node.N36 -> (1.20, 1.20, 1.05, 2.60)
  | Node.N31 -> (1.20, 1.15, 1.00, 2.50)
  | Node.N25 -> (1.20, 1.10, 1.00, 2.50)
  | Node.N20 -> (1.10, 1.05, 0.95, 2.40)
  | Node.N18 -> (1.10, 1.00, 0.90, 2.40)
  | Node.N16 -> (1.10, 1.00, 0.90, 2.30)

(* Row cycle time (Fig 12): improves early, then nearly flat. *)
let trc_of = function
  | Node.N170 -> 70e-9 | Node.N140 -> 68e-9 | Node.N110 -> 65e-9
  | Node.N90 -> 60e-9 | Node.N75 -> 57e-9 | Node.N65 -> 55e-9
  | Node.N55 -> 50e-9 | Node.N44 -> 48e-9 | Node.N36 -> 47e-9
  | Node.N31 -> 46e-9 | Node.N25 -> 46e-9 | Node.N20 -> 45e-9
  | Node.N18 -> 45e-9 | Node.N16 -> 45e-9

let cell_factor_of node =
  let i = Node.index node in
  if i <= Node.index Node.N75 then 8.0
  else if i <= Node.index Node.N44 then 6.0
  else 4.0

let array_efficiency_of node =
  (* Declining from 0.62 to 0.45: interface complexity grows faster
     than peripheral circuits shrink. *)
  0.62 -. 0.17 *. float_of_int (Node.index node) /. 13.0

let banks_of standard =
  match standard with
  | Node.Sdr | Node.Ddr -> 4
  | Node.Ddr2 | Node.Ddr3 -> 8
  | Node.Ddr4 -> 16
  | Node.Ddr5 -> 32

let page_bits_of standard =
  match standard with
  | Node.Sdr -> 8192
  | Node.Ddr -> 8192
  | Node.Ddr2 | Node.Ddr3 | Node.Ddr4 | Node.Ddr5 -> 16384

(* Density: the largest power of two whose estimated die stays within
   the good-yield window (<= ~62 mm^2), clamped to [128 Mb, 16 Gb]. *)
let density_of node =
  let f = Node.feature_size node in
  let cell = cell_factor_of node *. f *. f in
  let eff = array_efficiency_of node in
  let limit = 62e-6 (* m^2 *) in
  let rec grow bits =
    let next = bits *. 2.0 in
    if next *. cell /. eff <= limit && next <= 16.0 *. 2.0 ** 30.0 then
      grow next
    else bits
  in
  grow (2.0 ** 27.0)

let generation node =
  let standard = Node.standard node in
  let vdd, vint, vbl, vpp = voltages_of node in
  let trc = trc_of node in
  let prefetch = prefetch_of node in
  let old_array = Node.index node < Node.index Node.N90 in
  {
    node;
    standard;
    density_bits = density_of node;
    io_width = 16;
    datarate = datarate_of node;
    prefetch;
    burst_length = max prefetch 4;
    banks = banks_of standard;
    vdd;
    vint;
    vbl;
    vpp;
    trc;
    trcd = 0.3 *. trc;
    trp = 0.3 *. trc;
    bits_per_bitline = (if old_array then 256 else 512);
    bits_per_lwl = (if old_array then 256 else 512);
    page_bits = page_bits_of standard;
    cell_factor = cell_factor_of node;
    array_efficiency = array_efficiency_of node;
  }

let all = List.map generation Node.all

let core_frequency t = t.datarate /. float_of_int t.prefetch

let cell_area t =
  let f = Node.feature_size t.node in
  t.cell_factor *. f *. f

let die_area_estimate t = t.density_bits *. cell_area t /. t.array_efficiency

let log2i n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let rows_per_bank t =
  int_of_float (t.density_bits /. float_of_int (t.banks * t.page_bits))

let row_address_bits t = log2i (rows_per_bank t)

let column_address_bits t = log2i (t.page_bits / t.io_width)

let bank_address_bits t = log2i t.banks
