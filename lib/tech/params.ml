(* Technology parameters (Table I "Technology" group). *)

type t = {
  tox_logic : float;
  tox_hv : float;
  tox_cell : float;
  lmin_logic : float;
  cj_logic : float;
  lmin_hv : float;
  cj_hv : float;
  l_cell : float;
  w_cell : float;
  c_bitline : float;
  c_cell : float;
  bl_wl_coupling : float;
  bits_per_csl : int;
  c_wire_mwl : float;
  mwl_predecode : float;
  w_mwl_dec_n : float;
  w_mwl_dec_p : float;
  mwl_dec_activity : float;
  w_wlctl_load_n : float;
  w_wlctl_load_p : float;
  w_lwd_n : float;
  w_lwd_p : float;
  w_lwd_restore : float;
  c_wire_lwl : float;
  w_sa_n : float;
  l_sa_n : float;
  w_sa_p : float;
  l_sa_p : float;
  w_sa_eq : float;
  l_sa_eq : float;
  w_sa_bitswitch : float;
  l_sa_bitswitch : float;
  w_sa_mux : float;
  l_sa_mux : float;
  w_sa_nset : float;
  l_sa_nset : float;
  w_sa_pset : float;
  l_sa_pset : float;
  c_wire_signal : float;
}

let reference_node = Node.N55

(* Calibrated to a typical 55 nm commodity DDR3 process: bitline of 512
   cells at ~75 fF, 25 fF storage cell, on-pitch devices sized to the
   bitline pitch, wire capacitance ~0.35 fF/um. *)
let reference = {
  tox_logic = 5.0e-9;
  tox_hv = 8.0e-9;
  tox_cell = 7.0e-9;
  lmin_logic = 0.09e-6;
  cj_logic = 0.8e-9;          (* 0.8 fF per um of gate width *)
  lmin_hv = 0.35e-6;
  cj_hv = 1.0e-9;
  l_cell = 0.10e-6;           (* recessed channel, longer than F *)
  w_cell = 0.055e-6;
  c_bitline = 75.0e-15;
  c_cell = 25.0e-15;
  bl_wl_coupling = 0.15;
  bits_per_csl = 8;
  c_wire_mwl = 0.35e-9;       (* 0.25 fF/um, M2 aluminium *)
  mwl_predecode = 8.0;
  w_mwl_dec_n = 0.4e-6;
  w_mwl_dec_p = 0.6e-6;
  mwl_dec_activity = 0.25;
  w_wlctl_load_n = 0.3e-6;
  w_wlctl_load_p = 0.3e-6;
  w_lwd_n = 0.6e-6;
  w_lwd_p = 0.8e-6;
  w_lwd_restore = 0.3e-6;
  c_wire_lwl = 0.20e-9;       (* gate poly stripe, wire part only *)
  w_sa_n = 0.7e-6;
  l_sa_n = 0.12e-6;
  w_sa_p = 0.5e-6;
  l_sa_p = 0.12e-6;
  w_sa_eq = 0.3e-6;
  l_sa_eq = 0.10e-6;
  w_sa_bitswitch = 0.5e-6;
  l_sa_bitswitch = 0.10e-6;
  w_sa_mux = 0.4e-6;
  l_sa_mux = 0.10e-6;
  w_sa_nset = 0.4e-6;
  l_sa_nset = 0.15e-6;
  w_sa_pset = 0.6e-6;
  l_sa_pset = 0.15e-6;
  c_wire_signal = 0.35e-9;
}

let count = 39

let fields =
  [ ("gate oxide thickness logic", (fun t -> t.tox_logic),
     fun t v -> { t with tox_logic = v });
    ("gate oxide thickness high voltage", (fun t -> t.tox_hv),
     fun t v -> { t with tox_hv = v });
    ("gate oxide thickness cell transistor", (fun t -> t.tox_cell),
     fun t v -> { t with tox_cell = v });
    ("minimum gate length logic", (fun t -> t.lmin_logic),
     fun t v -> { t with lmin_logic = v });
    ("junction capacitance logic", (fun t -> t.cj_logic),
     fun t v -> { t with cj_logic = v });
    ("minimum gate length high voltage", (fun t -> t.lmin_hv),
     fun t v -> { t with lmin_hv = v });
    ("junction capacitance high voltage", (fun t -> t.cj_hv),
     fun t v -> { t with cj_hv = v });
    ("gate length cell transistor", (fun t -> t.l_cell),
     fun t v -> { t with l_cell = v });
    ("gate width cell transistor", (fun t -> t.w_cell),
     fun t v -> { t with w_cell = v });
    ("bitline capacitance", (fun t -> t.c_bitline),
     fun t v -> { t with c_bitline = v });
    ("cell capacitance", (fun t -> t.c_cell),
     fun t v -> { t with c_cell = v });
    ("bitline-wordline coupling share", (fun t -> t.bl_wl_coupling),
     fun t v -> { t with bl_wl_coupling = v });
    ("specific wire capacitance master wordline", (fun t -> t.c_wire_mwl),
     fun t v -> { t with c_wire_mwl = v });
    ("pre-decode ratio master wordline", (fun t -> t.mwl_predecode),
     fun t v -> { t with mwl_predecode = v });
    ("width master wordline decoder NMOS", (fun t -> t.w_mwl_dec_n),
     fun t v -> { t with w_mwl_dec_n = v });
    ("width master wordline decoder PMOS", (fun t -> t.w_mwl_dec_p),
     fun t v -> { t with w_mwl_dec_p = v });
    ("switching activity master wordline decoder",
     (fun t -> t.mwl_dec_activity),
     fun t v -> { t with mwl_dec_activity = v });
    ("width load NMOS wordline controller", (fun t -> t.w_wlctl_load_n),
     fun t v -> { t with w_wlctl_load_n = v });
    ("width load PMOS wordline controller", (fun t -> t.w_wlctl_load_p),
     fun t v -> { t with w_wlctl_load_p = v });
    ("width sub-wordline driver NMOS", (fun t -> t.w_lwd_n),
     fun t v -> { t with w_lwd_n = v });
    ("width sub-wordline driver PMOS", (fun t -> t.w_lwd_p),
     fun t v -> { t with w_lwd_p = v });
    ("width sub-wordline restore NMOS", (fun t -> t.w_lwd_restore),
     fun t v -> { t with w_lwd_restore = v });
    ("specific wire capacitance sub-wordline", (fun t -> t.c_wire_lwl),
     fun t v -> { t with c_wire_lwl = v });
    ("width sense-amplifier NMOS pair", (fun t -> t.w_sa_n),
     fun t v -> { t with w_sa_n = v });
    ("length sense-amplifier NMOS pair", (fun t -> t.l_sa_n),
     fun t v -> { t with l_sa_n = v });
    ("width sense-amplifier PMOS pair", (fun t -> t.w_sa_p),
     fun t v -> { t with w_sa_p = v });
    ("length sense-amplifier PMOS pair", (fun t -> t.l_sa_p),
     fun t v -> { t with l_sa_p = v });
    ("width sense-amplifier equalize", (fun t -> t.w_sa_eq),
     fun t v -> { t with w_sa_eq = v });
    ("length sense-amplifier equalize", (fun t -> t.l_sa_eq),
     fun t v -> { t with l_sa_eq = v });
    ("width sense-amplifier bit switch", (fun t -> t.w_sa_bitswitch),
     fun t v -> { t with w_sa_bitswitch = v });
    ("length sense-amplifier bit switch", (fun t -> t.l_sa_bitswitch),
     fun t v -> { t with l_sa_bitswitch = v });
    ("width sense-amplifier bitline multiplexer", (fun t -> t.w_sa_mux),
     fun t v -> { t with w_sa_mux = v });
    ("length sense-amplifier bitline multiplexer", (fun t -> t.l_sa_mux),
     fun t v -> { t with l_sa_mux = v });
    ("width sense-amplifier NMOS set device", (fun t -> t.w_sa_nset),
     fun t v -> { t with w_sa_nset = v });
    ("length sense-amplifier NMOS set device", (fun t -> t.l_sa_nset),
     fun t v -> { t with l_sa_nset = v });
    ("width sense-amplifier PMOS set device", (fun t -> t.w_sa_pset),
     fun t v -> { t with w_sa_pset = v });
    ("length sense-amplifier PMOS set device", (fun t -> t.l_sa_pset),
     fun t v -> { t with l_sa_pset = v });
    ("specific wire capacitance signaling", (fun t -> t.c_wire_signal),
     fun t v -> { t with c_wire_signal = v });
  ]

let pp ppf t =
  let q dim v = Vdram_units.Quantity.to_string dim v in
  let open Vdram_units.Quantity in
  let line name s = Format.fprintf ppf "  %-46s %s@," name s in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, get, _) ->
      let v = get t in
      let dim =
        if String.length name > 4 && String.sub name 0 5 = "width" then Length
        else if String.length name > 5 && String.sub name 0 6 = "length"
        then Length
        else
          match name with
          | "gate oxide thickness logic"
          | "gate oxide thickness high voltage"
          | "gate oxide thickness cell transistor"
          | "minimum gate length logic"
          | "minimum gate length high voltage"
          | "gate length cell transistor"
          | "gate width cell transistor" -> Length
          | "junction capacitance logic"
          | "junction capacitance high voltage" -> Cap_per_length
          | "bitline capacitance" | "cell capacitance" -> Capacitance
          | "specific wire capacitance master wordline"
          | "specific wire capacitance sub-wordline"
          | "specific wire capacitance signaling" -> Cap_per_length
          | "bitline-wordline coupling share" -> Fraction
          | _ -> Scalar
      in
      line name (q dim v))
    fields;
  line "bits accessed per column select line"
    (string_of_int t.bits_per_csl);
  Format.fprintf ppf "@]"
