(* Technology nodes of the DRAM roadmap, 170 nm (2000) to 16 nm (2018). *)

type standard = Sdr | Ddr | Ddr2 | Ddr3 | Ddr4 | Ddr5

let standard_name = function
  | Sdr -> "SDR"
  | Ddr -> "DDR"
  | Ddr2 -> "DDR2"
  | Ddr3 -> "DDR3"
  | Ddr4 -> "DDR4"
  | Ddr5 -> "DDR5"

type t =
  | N170 | N140 | N110 | N90 | N75 | N65 | N55
  | N44 | N36 | N31 | N25 | N20 | N18 | N16

let all =
  [ N170; N140; N110; N90; N75; N65; N55; N44; N36; N31; N25; N20; N18; N16 ]

let feature_nm = function
  | N170 -> 170.0 | N140 -> 140.0 | N110 -> 110.0 | N90 -> 90.0
  | N75 -> 75.0 | N65 -> 65.0 | N55 -> 55.0 | N44 -> 44.0
  | N36 -> 36.0 | N31 -> 31.0 | N25 -> 25.0 | N20 -> 20.0
  | N18 -> 18.0 | N16 -> 16.0

let feature_size n = feature_nm n *. 1e-9

let year = function
  | N170 -> 2000 | N140 -> 2001 | N110 -> 2003 | N90 -> 2004
  | N75 -> 2006 | N65 -> 2007 | N55 -> 2008 | N44 -> 2010
  | N36 -> 2012 | N31 -> 2013 | N25 -> 2014 | N20 -> 2016
  | N18 -> 2017 | N16 -> 2018

let standard = function
  | N170 | N140 -> Sdr
  | N110 -> Ddr
  | N90 | N75 -> Ddr2
  | N65 | N55 | N44 -> Ddr3
  | N36 | N31 | N25 -> Ddr4
  | N20 | N18 | N16 -> Ddr5

let index n =
  let rec find i = function
    | [] -> assert false
    | x :: rest -> if x = n then i else find (i + 1) rest
  in
  find 0 all

let generations_from a b = index b - index a

let of_nm nm =
  let closer best candidate =
    let d x = Float.abs (feature_nm x -. nm) in
    if d candidate < d best then candidate else best
  in
  match all with
  | [] -> assert false
  | first :: rest -> List.fold_left closer first rest

let name n = Printf.sprintf "%gnm" (feature_nm n)

let pp ppf n = Format.pp_print_string ppf (name n)
