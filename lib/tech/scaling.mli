(** Technology scaling across generations (Figures 5, 6 and 7).

    Parameters shrink more slowly than the feature size (16 % per
    generation on average); disruptive changes (Table II) modify some
    loads step-wise at specific transitions.  All factors are relative
    to the 55 nm reference node ({!Params.reference_node}), where every
    factor is 1.0. *)

type family =
  | F_feature          (** minimum feature size itself *)
  | F_tox              (** gate oxide thicknesses (Fig 5) *)
  | F_lmin_logic       (** minimum logic / HV gate length (Fig 5) *)
  | F_junction         (** junction capacitance per width (Fig 5) *)
  | F_cell_transistor  (** cell access transistor W and L (Fig 5) *)
  | F_c_bitline        (** bitline capacitance (Fig 6) *)
  | F_c_cell           (** cell capacitance, held ~constant (Fig 6) *)
  | F_wire_cap         (** specific wire capacitances (Fig 6) *)
  | F_stripe_width     (** SA / LWD stripe widths (Fig 6) *)
  | F_logic_width      (** average width of miscellaneous logic (Fig 6) *)
  | F_core_device      (** sense-amp / on-pitch row device W (Fig 7) *)

val families : (family * string) list
(** All families with display names, in Figs 5–7 order. *)

val factor : family -> Node.t -> float
(** [factor fam node] is the multiplicative scale of family [fam] at
    [node] relative to the 55 nm reference.  Monotonically
    non-increasing towards newer nodes for all families except
    [F_c_cell] (constant). *)

val params_at : Node.t -> Params.t
(** The full technology parameter set at a node: the 55 nm reference
    with every field scaled by its family factor. *)

val sa_stripe_width : Node.t -> float
(** Width of the bitline sense-amplifier stripe (metres); 8 um at the
    reference node. *)

val lwd_stripe_width : Node.t -> float
(** Width of the local wordline driver stripe (metres); 3 um at the
    reference node. *)

val logic_gate_width : Node.t -> float
(** Average transistor width in miscellaneous peripheral logic
    (metres); 0.5 um at the reference node. *)
