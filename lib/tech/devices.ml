(* Gate and junction capacitance of MOS devices. *)

let eps_ox = 3.9 *. 8.854e-12

let gate_cap ~tox ~w ~l = eps_ox /. tox *. w *. l

type mos_class = Logic | High_voltage | Cell

let tox_of (p : Params.t) = function
  | Logic -> p.tox_logic
  | High_voltage -> p.tox_hv
  | Cell -> p.tox_cell

let cj_of (p : Params.t) = function
  | Logic -> p.cj_logic
  | High_voltage -> p.cj_hv
  | Cell -> p.cj_hv (* array junctions behave like the HV class *)

let gate_cap_of p cls ~w ~l = gate_cap ~tox:(tox_of p cls) ~w ~l

let junction_cap_of p cls ~w = cj_of p cls *. w

let device_cap p cls ~w ~l = gate_cap_of p cls ~w ~l +. junction_cap_of p cls ~w
