(** Device capacitance calculators.

    Device loads are the sum of gate capacitance (gate area over
    equivalent oxide thickness) and junction capacitance (junction
    width times specific junction capacitance), per Section III.B.2. *)

val eps_ox : float
(** Permittivity of SiO2, [3.9 * 8.854e-12] F/m. *)

val gate_cap : tox:float -> w:float -> l:float -> float
(** Gate capacitance of a transistor of width [w], length [l] and
    equivalent oxide thickness [tox] (all metres), in farads. *)

type mos_class = Logic | High_voltage | Cell
(** Which oxide / junction parameters apply to a device. *)

val device_cap : Params.t -> mos_class -> w:float -> l:float -> float
(** Gate plus junction capacitance of one transistor. *)

val gate_cap_of : Params.t -> mos_class -> w:float -> l:float -> float
(** Gate capacitance only (load seen by whoever drives the gate). *)

val junction_cap_of : Params.t -> mos_class -> w:float -> float
(** Junction capacitance only (load seen on source/drain nodes). *)
