(** Disruptive DRAM technology changes (Table II). *)

type t = {
  transition : string;   (** e.g. ["110nm to 90nm"] *)
  change : string;       (** the disruptive change *)
  background : string;   (** why the industry made the change *)
}

val all : t list
(** The eight transitions of Table II, oldest first. *)

val pp : Format.formatter -> t -> unit
(** One row rendered as ["<transition>: <change> (<background>)"]. *)
