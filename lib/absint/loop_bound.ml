(* Certified loop-energy evaluation for `vdram advise`.

   A degenerate (point) box turns the interval evaluator into a
   certified concrete evaluation: every endpoint is outward-rounded,
   so the interval's lower end is a sound lower bound on what any
   concrete evaluation of the same pattern can produce.  Advise runs
   this over the idle-stripped ideal schedule of a loop; the gap to
   the simulated energy of the authored loop is certified waste. *)

module I = Vdram_units.Interval
module Model = Vdram_core.Model
module Pattern = Vdram_core.Pattern

type t = {
  cycles : int;
  loop_time : float;
  power : I.t;
  energy : I.t;
  energy_per_bit : I.t option;
}

let evaluate ~(base : Vdram_core.Config.t) (p : Pattern.t) =
  let box = Abox.v ~base [] in
  let stages = Aeval.analyze box p in
  let loop_time = stages.Aeval.loop_time in
  {
    cycles = Pattern.cycles p;
    loop_time;
    power = stages.Aeval.power;
    energy = I.scale loop_time stages.Aeval.power;
    energy_per_bit = stages.Aeval.energy_per_bit;
  }

let lower_bound t = t.energy.I.lo
