(** The machine-readable certificate `vdram check --certify` emits:
    guaranteed bounds, monotonicity directions, and whole-sweep
    legality, serialized as one JSON object.

    The JSON is a contract for downstream tooling — notably the
    future `vdram search` pruner, which reads the [monotonicity]
    entries to discard dominated candidates.  Floats are printed with
    [%.17g] so parsed values round-trip to the exact doubles
    certified. *)

type sweep_entry = {
  node : string;
  legal : bool;
  violations : string list;  (** human-readable, empty when legal *)
}

type sweep = {
  authored_node : string;
  authored_legal : bool;
  entries : sweep_entry list;
}

type samples = { count : int; contained : bool }
(** Result of a concrete sampling cross-check, when one was run. *)

type t = {
  config : Vdram_core.Config.t;
  pattern : Vdram_core.Pattern.t;
  box : Abox.t;
  splits : int;
  bounds : Bounds.t;
  nominal : Vdram_core.Report.t;
  monotonicity : Monotone.certificate list;
  sweep : sweep option;
  samples : samples option;
}

val v :
  ?sweep:sweep ->
  ?samples:samples ->
  config:Vdram_core.Config.t ->
  pattern:Vdram_core.Pattern.t ->
  box:Abox.t ->
  splits:int ->
  bounds:Bounds.t ->
  monotonicity:Monotone.certificate list ->
  unit ->
  t
(** Assemble a certificate; the nominal report is evaluated here. *)

val to_json : t -> string
