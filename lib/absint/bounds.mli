(** Guaranteed energy/power bounds over a configuration box, with
    branch-and-bound tightening: the box is recursively bisected
    across its widest axis, each leaf evaluated abstractly, and the
    per-leaf intervals hulled — sound by union, tighter because
    narrow operands lose less to interval dependency. *)

type t = {
  background : Vdram_units.Interval.t;
  power : Vdram_units.Interval.t;
  current : Vdram_units.Interval.t;
  energy_per_bit : Vdram_units.Interval.t option;
  op_energy : (Vdram_core.Operation.kind * Vdram_units.Interval.t) list;
  pieces : int;  (** leaf boxes evaluated *)
}

val compute : ?splits:int -> Abox.t -> Vdram_core.Pattern.t -> t
(** Bounds for a pattern over a box.  [splits] (default 4) is the
    bisection depth: up to [2^splits] leaf evaluations. *)
