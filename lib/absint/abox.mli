(** Abstract configuration boxes for [vdram check]: a nominal
    configuration plus per-lens scale-factor intervals.

    A box concretises to every configuration obtained by applying
    each axis lens at some scale inside its interval, in axis order.
    The lens inventory touches pairwise disjoint fields, so any
    scalar the physics reads is moved by at most one axis and
    {!field} returns its exact float range; getters moved by several
    axes (not produced by the stock inventory) fall back to widened
    corner enumeration. *)

type axis = private { lens : Vdram_analysis.Lenses.t; scale : Vdram_units.Interval.t }

type t

val axis : Vdram_analysis.Lenses.t -> lo:float -> hi:float -> axis
(** An axis over a scale-factor interval.  Raises [Invalid_argument]
    unless [0 < lo <= hi] and both are finite. *)

val default_axis : Vdram_analysis.Lenses.t -> axis
(** {!axis} over the lens's declared default range. *)

val v : base:Vdram_core.Config.t -> axis list -> t
(** Raises [Invalid_argument] on duplicate lens axes. *)

val base : t -> Vdram_core.Config.t
val axes : t -> axis list
val dim : t -> int

val field : t -> (Vdram_core.Config.t -> float) -> Vdram_units.Interval.t
(** Range of a scalar getter over the box: exact for getters moved by
    at most one axis, a widened corner hull otherwise, and a point
    for getters no axis moves. *)

val instantiate : t -> float list -> Vdram_core.Config.t
(** Concrete member of the box at the given per-axis scales (one per
    axis, each inside its interval — [Invalid_argument] otherwise). *)

val nominal_scales : t -> float list
(** Per-axis scales of a canonical member: 1.0 where the axis interval
    contains it, the midpoint otherwise. *)

val split : t -> (t * t) option
(** Bisect across the widest axis; [None] if every axis is a point. *)
