(** Certified loop-energy evaluation over a degenerate (point) box.

    Running the interval evaluator on a box with no axes certifies a
    single configuration: the outward rounding of {!Vdram_units.Interval}
    makes the resulting energy interval a sound enclosure of every
    IEEE evaluation of the same pattern, so its lower endpoint is a
    machine-checkable lower bound.  `vdram advise` evaluates the
    idle-stripped ideal schedule of a loop through this to certify
    the static energy floor the waste diagnostic (V1004) compares
    against. *)

type t = {
  cycles : int;           (** loop length of the evaluated pattern *)
  loop_time : float;      (** seconds per loop iteration *)
  power : Vdram_units.Interval.t;   (** pattern-average watts *)
  energy : Vdram_units.Interval.t;  (** joules per loop iteration *)
  energy_per_bit : Vdram_units.Interval.t option;
      (** J/bit; [None] for data-less patterns *)
}

val evaluate : base:Vdram_core.Config.t -> Vdram_core.Pattern.t -> t
(** Evaluate one pattern over the point box at [base]. *)

val lower_bound : t -> float
(** The certified lower endpoint of {!field-energy}, joules per loop
    iteration. *)
