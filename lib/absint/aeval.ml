(* The abstract evaluator: the Figure 4 pipeline on interval-valued
   configurations.

   Every function here transcribes its concrete counterpart
   (Devices, Wordline, Sense_amp, Column, Bus, Logic_block,
   Operation, Model) operation for operation, in the same
   association order, over [Interval] instead of [float].  Soundness
   is then by induction: if each scalar a concrete evaluation reads
   lies inside the interval the box assigns it — which [Abox.field]
   guarantees — then every intermediate concrete float lies inside
   the mirrored interval, because each interval operation contains
   all rounded results of its concrete counterpart.  The per-stage
   qcheck property in the test suite exercises exactly this
   correspondence.

   Everything no lens moves — geometry, floorplan, bus wiring, spec,
   page size, trigger wiring — is a point interval read off the
   box's nominal configuration. *)

module I = Vdram_units.Interval
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Pattern = Vdram_core.Pattern
module Operation = Vdram_core.Operation
module Model = Vdram_core.Model
module Params = Vdram_tech.Params
module Devices = Vdram_tech.Devices
module Domains = Vdram_circuits.Domains
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module G = Vdram_floorplan.Array_geometry

open I.O

type contribution = {
  label : string;
  domain : Domains.domain;
  energy : I.t;
}

type stages = {
  op_contributions : (Operation.kind * contribution list) list;
  op_energy : (Operation.kind * I.t) list;
  background : I.t;
  power : I.t;
  current : I.t;
  loop_time : float;
  bits_per_loop : float;
  energy_per_bit : I.t option;
}

(* Interval accessors over the box: technology parameter, voltage
   domain field, top-level configuration field, logic-block field. *)
type env = {
  box : Abox.t;
  p : (Params.t -> float) -> I.t;
  d : (Domains.t -> float) -> I.t;
  c : (Config.t -> float) -> I.t;
  blk : int -> (Logic_block.t -> float) -> I.t;
}

let env box =
  let field = Abox.field box in
  {
    box;
    p = (fun sel -> field (fun cfg -> sel cfg.Config.tech));
    d = (fun sel -> field (fun cfg -> sel cfg.Config.domains));
    c = field;
    blk =
      (fun i sel -> field (fun cfg -> sel (List.nth cfg.Config.logic i)));
  }

(* ----- Devices ----------------------------------------------------- *)

let eps_ox = I.point Devices.eps_ox

let tox e = function
  | Devices.Logic -> e.p (fun p -> p.Params.tox_logic)
  | Devices.High_voltage -> e.p (fun p -> p.Params.tox_hv)
  | Devices.Cell -> e.p (fun p -> p.Params.tox_cell)

let cj e = function
  | Devices.Logic -> e.p (fun p -> p.Params.cj_logic)
  | Devices.High_voltage | Devices.Cell -> e.p (fun p -> p.Params.cj_hv)

let gate_cap ~tox ~w ~l = eps_ox / tox * w * l
let gate_cap_of e cls ~w ~l = gate_cap ~tox:(tox e cls) ~w ~l
let junction_cap_of e cls ~w = cj e cls * w

let device_cap e cls ~w ~l =
  gate_cap_of e cls ~w ~l + junction_cap_of e cls ~w

(* ----- Contribution ------------------------------------------------ *)

let event ~cap ~voltage = I.point 0.5 * cap * voltage * voltage
let events ~count ~cap ~voltage = count * event ~cap ~voltage

let efficiency e = function
  | Domains.Vdd -> I.one
  | Domains.Vint -> e.d (fun d -> d.Domains.eff_int)
  | Domains.Vbl -> e.d (fun d -> d.Domains.eff_bl)
  | Domains.Vpp -> e.d (fun d -> d.Domains.eff_pp)

let total_at_vdd e contributions =
  List.fold_left
    (fun acc c -> acc + (c.energy / efficiency e c.domain))
    I.zero contributions

(* ----- Wordline ---------------------------------------------------- *)

let lwd_gate_load e =
  gate_cap_of e Devices.High_voltage
    ~w:(e.p (fun p -> p.Params.w_lwd_n))
    ~l:(e.p (fun p -> p.Params.lmin_hv))
  + gate_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_lwd_p))
      ~l:(e.p (fun p -> p.Params.lmin_hv))

let mwl_capacitance e ~geometry =
  let wire =
    e.p (fun p -> p.Params.c_wire_mwl)
    * I.point (G.master_wordline_length geometry)
  in
  let lwds = I.of_int (Stdlib.succ geometry.G.subarrays_along_wl) in
  let decoder_junctions =
    junction_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_mwl_dec_n))
    + junction_cap_of e Devices.High_voltage
        ~w:(e.p (fun p -> p.Params.w_mwl_dec_p))
  in
  wire + (lwds * lwd_gate_load e) + decoder_junctions

let lwl_capacitance e ~geometry =
  let wire =
    e.p (fun p -> p.Params.c_wire_lwl) * I.point (G.lwl_length geometry)
  in
  let cells =
    I.of_int geometry.G.bits_per_lwl
    * gate_cap_of e Devices.Cell
        ~w:(e.p (fun p -> p.Params.w_cell))
        ~l:(e.p (fun p -> p.Params.l_cell))
  in
  let coupling =
    I.of_int geometry.G.bits_per_lwl
    * e.p (fun p -> p.Params.bl_wl_coupling)
    * e.p (fun p -> p.Params.c_bitline)
    / I.of_int geometry.G.bits_per_bitline
  in
  let restore_junction =
    junction_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_lwd_restore))
  in
  wire + cells + coupling + restore_junction

let select_line_cap e =
  gate_cap_of e Devices.High_voltage
    ~w:(e.p (fun p -> p.Params.w_wlctl_load_n))
    ~l:(e.p (fun p -> p.Params.lmin_hv))
  + gate_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_wlctl_load_p))
      ~l:(e.p (fun p -> p.Params.lmin_hv))
  + gate_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_lwd_restore))
      ~l:(e.p (fun p -> p.Params.lmin_hv))

let predecode_energy e ~geometry =
  let decoder_gates =
    gate_cap_of e Devices.Logic
      ~w:(e.p (fun p -> p.Params.w_mwl_dec_n))
      ~l:(e.p (fun p -> p.Params.lmin_logic))
    + gate_cap_of e Devices.Logic
        ~w:(e.p (fun p -> p.Params.w_mwl_dec_p))
        ~l:(e.p (fun p -> p.Params.lmin_logic))
  in
  let line =
    (e.p (fun p -> p.Params.c_wire_signal)
     * I.point (G.madl_length geometry))
    + decoder_gates
  in
  events
    ~count:
      (e.p (fun p -> p.Params.mwl_predecode)
       * e.p (fun p -> p.Params.mwl_dec_activity)
       * I.point 2.0)
    ~cap:line
    ~voltage:(e.d (fun d -> d.Domains.vint))

let row_events e ~geometry ~page_bits =
  let n_lwl = I.of_int Stdlib.(page_bits / geometry.G.bits_per_lwl) in
  let vpp = e.d (fun d -> d.Domains.vpp) in
  let mwl = event ~cap:(mwl_capacitance e ~geometry) ~voltage:vpp in
  let lwl =
    events ~count:n_lwl ~cap:(lwl_capacitance e ~geometry) ~voltage:vpp
  in
  let select =
    events ~count:n_lwl ~cap:(select_line_cap e) ~voltage:vpp
  in
  (mwl, lwl, select)

let wordline_activate e ~geometry ~page_bits =
  let mwl, lwl, select = row_events e ~geometry ~page_bits in
  [
    { label = "row decode"; domain = Domains.Vint;
      energy = predecode_energy e ~geometry };
    { label = "master wordline"; domain = Domains.Vpp; energy = mwl };
    { label = "wordline select"; domain = Domains.Vpp; energy = select };
    { label = "local wordline"; domain = Domains.Vpp; energy = lwl };
  ]

let wordline_precharge e ~geometry ~page_bits =
  let mwl, lwl, select = row_events e ~geometry ~page_bits in
  [
    { label = "master wordline"; domain = Domains.Vpp; energy = mwl };
    { label = "wordline select"; domain = Domains.Vpp; energy = select };
    { label = "local wordline"; domain = Domains.Vpp; energy = lwl };
  ]

(* ----- Sense amplifier --------------------------------------------- *)

let bitline_device_load e (g : G.t) =
  let gate = gate_cap_of e Devices.Logic
  and junction = junction_cap_of e Devices.Logic in
  let sense =
    gate
      ~w:(e.p (fun p -> p.Params.w_sa_n))
      ~l:(e.p (fun p -> p.Params.l_sa_n))
    + gate
        ~w:(e.p (fun p -> p.Params.w_sa_p))
        ~l:(e.p (fun p -> p.Params.l_sa_p))
    + junction ~w:(e.p (fun p -> p.Params.w_sa_n))
    + junction ~w:(e.p (fun p -> p.Params.w_sa_p))
  in
  let eq_junction =
    junction_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_sa_eq))
  in
  let switch_junction =
    junction ~w:(e.p (fun p -> p.Params.w_sa_bitswitch))
  in
  let mux_junction =
    match g.G.style with
    | G.Folded ->
      junction_cap_of e Devices.High_voltage
        ~w:(e.p (fun p -> p.Params.w_sa_mux))
    | G.Open -> I.zero
  in
  sense + eq_junction + switch_junction + mux_junction

let set_gate_cap e =
  gate_cap_of e Devices.Logic
    ~w:(e.p (fun p -> p.Params.w_sa_nset))
    ~l:(e.p (fun p -> p.Params.l_sa_nset))
  + gate_cap_of e Devices.Logic
      ~w:(e.p (fun p -> p.Params.w_sa_pset))
      ~l:(e.p (fun p -> p.Params.l_sa_pset))

let common_node_cap e =
  junction_cap_of e Devices.Logic ~w:(e.p (fun p -> p.Params.w_sa_n))
  + junction_cap_of e Devices.Logic ~w:(e.p (fun p -> p.Params.w_sa_p))
  + junction_cap_of e Devices.Logic ~w:(e.p (fun p -> p.Params.w_sa_nset))
  + junction_cap_of e Devices.Logic ~w:(e.p (fun p -> p.Params.w_sa_pset))

let equalize_gate_cap e =
  I.point 3.0
  * gate_cap_of e Devices.High_voltage
      ~w:(e.p (fun p -> p.Params.w_sa_eq))
      ~l:(e.p (fun p -> p.Params.l_sa_eq))

let mux_gate_cap e (g : G.t) =
  match g.G.style with
  | G.Folded ->
    I.point 2.0
    * gate_cap_of e Devices.High_voltage
        ~w:(e.p (fun p -> p.Params.w_sa_mux))
        ~l:(e.p (fun p -> p.Params.l_sa_mux))
  | G.Open -> I.zero

let sense_amp_activate e ~geometry ~page_bits =
  let n = I.of_int page_bits in
  let vbl = e.d (fun d -> d.Domains.vbl) in
  let vint = e.d (fun d -> d.Domains.vint) in
  let vpp = e.d (fun d -> d.Domains.vpp) in
  let half_vbl = vbl / I.point 2.0 in
  [
    { label = "bitline sensing"; domain = Domains.Vbl;
      energy =
        events ~count:n
          ~cap:(e.p (fun p -> p.Params.c_bitline) / I.point 2.0)
          ~voltage:vbl };
    { label = "cell restore"; domain = Domains.Vbl;
      energy =
        events ~count:n
          ~cap:(e.p (fun p -> p.Params.c_cell) / I.point 4.0)
          ~voltage:vbl };
    { label = "sense amplifier devices"; domain = Domains.Vbl;
      energy =
        events ~count:(I.point 2.0 * n)
          ~cap:(bitline_device_load e geometry) ~voltage:half_vbl };
    { label = "sense amplifier set"; domain = Domains.Vint;
      energy = events ~count:n ~cap:(set_gate_cap e) ~voltage:vint };
    { label = "sense amplifier set"; domain = Domains.Vbl;
      energy =
        events ~count:(I.point 2.0 * n) ~cap:(common_node_cap e)
          ~voltage:half_vbl };
    { label = "sense amplifier equalize control"; domain = Domains.Vpp;
      energy = events ~count:n ~cap:(equalize_gate_cap e) ~voltage:vpp };
    { label = "bitline multiplexer"; domain = Domains.Vpp;
      energy =
        events ~count:n ~cap:(mux_gate_cap e geometry) ~voltage:vpp };
  ]

let sense_amp_precharge e ~geometry ~page_bits =
  let n = I.of_int page_bits in
  let vint = e.d (fun d -> d.Domains.vint) in
  let vpp = e.d (fun d -> d.Domains.vpp) in
  [
    { label = "sense amplifier equalize control"; domain = Domains.Vpp;
      energy = events ~count:n ~cap:(equalize_gate_cap e) ~voltage:vpp };
    { label = "sense amplifier set"; domain = Domains.Vint;
      energy = events ~count:n ~cap:(set_gate_cap e) ~voltage:vint };
    { label = "bitline multiplexer"; domain = Domains.Vpp;
      energy =
        events ~count:n ~cap:(mux_gate_cap e geometry) ~voltage:vpp };
  ]

let sense_amp_write_back e ~bits =
  let vbl = e.d (fun d -> d.Domains.vbl) in
  let toggle = e.c (fun c -> c.Config.data_toggle) in
  let flips = toggle * I.of_int bits in
  [
    { label = "bitline overwrite"; domain = Domains.Vbl;
      energy =
        events ~count:(I.point 2.0 * flips)
          ~cap:(e.p (fun p -> p.Params.c_bitline))
          ~voltage:vbl };
    { label = "cell restore"; domain = Domains.Vbl;
      energy =
        events ~count:flips
          ~cap:(e.p (fun p -> p.Params.c_cell))
          ~voltage:vbl };
  ]

(* ----- Column path ------------------------------------------------- *)

let csl_capacitance e ~geometry =
  let wire =
    e.p (fun p -> p.Params.c_wire_signal)
    * I.point (G.csl_length geometry)
  in
  let stripes =
    I.of_int
      Stdlib.((geometry.G.subarrays_along_bl + 1) * geometry.G.csl_blocks)
  in
  let bits_per_csl =
    (Abox.base e.box).Config.tech.Params.bits_per_csl
  in
  let switch_gates =
    I.of_int bits_per_csl
    * gate_cap_of e Devices.Logic
        ~w:(e.p (fun p -> p.Params.w_sa_bitswitch))
        ~l:(e.p (fun p -> p.Params.l_sa_bitswitch))
  in
  wire + (stripes * switch_gates)

let secondary_sa_cap e =
  I.point 4.0
  * device_cap e Devices.Logic
      ~w:(e.p (fun p -> p.Params.w_sa_n))
      ~l:(e.p (fun p -> p.Params.l_sa_n))

let madl_pair_capacitance e ~geometry =
  (I.point 2.0
   * e.p (fun p -> p.Params.c_wire_signal)
   * I.point (G.madl_length geometry))
  + secondary_sa_cap e

let local_dq_pair_capacitance e ~geometry =
  I.point 2.0
  * e.p (fun p -> p.Params.c_wire_signal)
  * I.point (G.subarray_width geometry)

let column_decode_energy e ~geometry ~csl_fires =
  let decoder_gates =
    gate_cap_of e Devices.Logic
      ~w:(e.p (fun p -> p.Params.w_mwl_dec_n))
      ~l:(e.p (fun p -> p.Params.lmin_logic))
    + gate_cap_of e Devices.Logic
        ~w:(e.p (fun p -> p.Params.w_mwl_dec_p))
        ~l:(e.p (fun p -> p.Params.lmin_logic))
  in
  let line =
    (e.p (fun p -> p.Params.c_wire_signal)
     * I.point (G.master_wordline_length geometry))
    + decoder_gates
  in
  events
    ~count:
      (csl_fires
       * e.p (fun p -> p.Params.mwl_predecode)
       * e.p (fun p -> p.Params.mwl_dec_activity))
    ~cap:line
    ~voltage:(e.d (fun d -> d.Domains.vint))

let column_access e ~geometry ~bits ~write =
  let nbits = I.of_int bits in
  let bits_per_csl =
    (Abox.base e.box).Config.tech.Params.bits_per_csl
  in
  let csl_fires = nbits / I.of_int bits_per_csl in
  let vint = e.d (fun d -> d.Domains.vint) in
  let vbl = e.d (fun d -> d.Domains.vbl) in
  let base =
    [
      { label = "column decode"; domain = Domains.Vint;
        energy = column_decode_energy e ~geometry ~csl_fires };
      { label = "column select line"; domain = Domains.Vint;
        energy =
          events ~count:(I.point 2.0 * csl_fires)
            ~cap:(csl_capacitance e ~geometry) ~voltage:vint };
      { label = "local data lines"; domain = Domains.Vbl;
        energy =
          events ~count:nbits
            ~cap:(local_dq_pair_capacitance e ~geometry) ~voltage:vbl };
      { label = "master array data lines"; domain = Domains.Vint;
        energy =
          events ~count:(I.point 2.0 * nbits)
            ~cap:(madl_pair_capacitance e ~geometry) ~voltage:vint };
      { label = "secondary sense amplifier"; domain = Domains.Vint;
        energy =
          events ~count:nbits ~cap:(secondary_sa_cap e) ~voltage:vint };
    ]
  in
  if write then
    base
    @ [
        { label = "write drivers"; domain = Domains.Vint;
          energy =
            events ~count:nbits ~cap:(secondary_sa_cap e) ~voltage:vint };
      ]
  else base

(* ----- Buses and logic blocks -------------------------------------- *)

let segment_capacitance e (s : Bus.segment) =
  let wire = e.p (fun p -> p.Params.c_wire_signal) * I.point s.Bus.length in
  let buffer =
    match s.Bus.buffer with
    | None -> I.zero
    | Some (wn, wp) ->
      device_cap e Devices.Logic ~w:(I.point wn)
        ~l:(e.p (fun p -> p.Params.lmin_logic))
      + device_cap e Devices.Logic ~w:(I.point wp)
          ~l:(e.p (fun p -> p.Params.lmin_logic))
  in
  wire + buffer

let bus_energy_per_bit e (b : Bus.t) =
  let vint = e.d (fun d -> d.Domains.vint) in
  List.fold_left
    (fun acc s ->
      acc
      + I.point s.Bus.toggle
        * event ~cap:(segment_capacitance e s) ~voltage:vint)
    I.zero b.Bus.segments

let bus_energy_per_event e (b : Bus.t) =
  I.of_int b.Bus.wires * bus_energy_per_bit e b

let blk_w e i =
  (e.blk i (fun b -> b.Logic_block.w_nmos)
   + e.blk i (fun b -> b.Logic_block.w_pmos))
  / I.point 2.0

let logic_gate_area e i =
  e.blk i (fun b -> b.Logic_block.transistors_per_gate)
  * blk_w e i
  * e.p (fun p -> p.Params.lmin_logic)
  / e.blk i (fun b -> b.Logic_block.layout_density)

let logic_gate_capacitance e i =
  let w = blk_w e i in
  let device =
    e.blk i (fun b -> b.Logic_block.transistors_per_gate)
    * (gate_cap_of e Devices.Logic ~w
         ~l:(e.p (fun p -> p.Params.lmin_logic))
       + junction_cap_of e Devices.Logic ~w)
  in
  let wire_length =
    e.blk i (fun b -> b.Logic_block.wiring_density)
    * logic_gate_area e i
    / (I.point 4.0 * e.p (fun p -> p.Params.lmin_logic))
  in
  device + (e.p (fun p -> p.Params.c_wire_signal) * wire_length)

let logic_energy_per_fire e i =
  e.blk i (fun b -> b.Logic_block.gates)
  * e.blk i (fun b -> b.Logic_block.toggle)
  * event ~cap:(logic_gate_capacitance e i)
      ~voltage:(e.d (fun d -> d.Domains.vint))

(* ----- Operation assembly ------------------------------------------ *)

let to_trigger_op = function
  | Operation.Activate -> Some `Activate
  | Operation.Precharge -> Some `Precharge
  | Operation.Read -> Some `Read
  | Operation.Write -> Some `Write
  | Operation.Nop -> None

let logic_contributions e kind =
  let base = Abox.base e.box in
  let matches (b : Logic_block.t) =
    match (b.Logic_block.trigger, kind) with
    | Logic_block.Always, Operation.Nop -> true
    | Logic_block.Always, _ -> false
    | Logic_block.On_operation ops, k ->
      (match to_trigger_op k with
       | Some op -> List.mem op ops
       | None -> false)
  in
  List.mapi (fun i b -> (i, b)) base.Config.logic
  |> List.filter_map (fun (i, (b : Logic_block.t)) ->
    if matches b then
      Some
        { label = "logic: " ^ b.Logic_block.name;
          domain = Domains.Vint;
          energy = logic_energy_per_fire e i }
    else None)

let bus_event e role label =
  match Config.bus (Abox.base e.box) role with
  | None -> []
  | Some b ->
    [ { label; domain = Domains.Vint; energy = bus_energy_per_event e b } ]

let data_transfer e role label ~bits =
  match Config.bus (Abox.base e.box) role with
  | None -> []
  | Some b ->
    let per_bit = bus_energy_per_bit e b in
    [ { label; domain = Domains.Vint;
        energy = I.of_int bits * per_bit } ]

let dq_interface e ~bits ~write =
  let cap =
    if write then e.c (fun c -> c.Config.io_receiver_cap)
    else e.c (fun c -> c.Config.io_predriver_cap)
  in
  let label = if write then "DQ receivers" else "DQ pre-drivers" in
  [
    { label; domain = Domains.Vdd;
      energy =
        e.c (fun c -> c.Config.data_toggle)
        * events ~count:(I.of_int bits) ~cap
            ~voltage:(e.d (fun d -> d.Domains.vdd)) };
  ]

let contributions e kind =
  let base = Abox.base e.box in
  let geometry = Config.geometry base in
  let page = Config.activated_bits base in
  let bits = Spec.bits_per_column_command base.Config.spec in
  let logic = logic_contributions e kind in
  match kind with
  | Operation.Activate ->
    wordline_activate e ~geometry ~page_bits:page
    @ sense_amp_activate e ~geometry ~page_bits:page
    @ bus_event e Bus.Row_address "row address bus"
    @ bus_event e Bus.Bank_address "bank address bus"
    @ bus_event e Bus.Command "command bus"
    @ logic
  | Operation.Precharge ->
    wordline_precharge e ~geometry ~page_bits:page
    @ sense_amp_precharge e ~geometry ~page_bits:page
    @ bus_event e Bus.Bank_address "bank address bus"
    @ bus_event e Bus.Command "command bus"
    @ logic
  | Operation.Read ->
    column_access e ~geometry ~bits ~write:false
    @ data_transfer e Bus.Read_data "read data bus" ~bits
    @ dq_interface e ~bits ~write:false
    @ bus_event e Bus.Column_address "column address bus"
    @ bus_event e Bus.Bank_address "bank address bus"
    @ bus_event e Bus.Command "command bus"
    @ logic
  | Operation.Write ->
    column_access e ~geometry ~bits ~write:true
    @ sense_amp_write_back e ~bits
    @ data_transfer e Bus.Write_data "write data bus" ~bits
    @ dq_interface e ~bits ~write:true
    @ bus_event e Bus.Column_address "column address bus"
    @ bus_event e Bus.Bank_address "bank address bus"
    @ bus_event e Bus.Command "command bus"
    @ logic
  | Operation.Nop ->
    bus_event e Bus.Clock "clock distribution" @ logic

(* ----- Model stages ------------------------------------------------ *)

let receiver_bias_power e =
  let base = Abox.base e.box in
  I.of_int base.Config.input_receivers
  * e.c (fun c -> c.Config.receiver_bias)
  * e.d (fun d -> d.Domains.vdd)

let analyze box pattern =
  let e = env box in
  let base = Abox.base box in
  let spec = base.Config.spec in
  let op_contributions =
    List.map (fun kind -> (kind, contributions e kind)) Operation.all
  in
  let op_energy =
    List.map
      (fun (kind, cs) -> (kind, total_at_vdd e cs))
      op_contributions
  in
  let nop = List.assoc Operation.Nop op_energy in
  let background =
    (nop * I.point spec.Spec.control_clock)
    + (e.d (fun d -> d.Domains.i_constant) * e.d (fun d -> d.Domains.vdd))
    + receiver_bias_power e
  in
  let loop_time = Model.loop_time spec pattern in
  let counts = Model.op_counts pattern in
  let op_power =
    List.fold_left
      (fun acc (kind, count) ->
        acc
        + (I.of_int count * List.assoc kind op_energy
           / I.point loop_time))
      I.zero counts
  in
  let power = background + op_power in
  let current = power / e.d (fun d -> d.Domains.vdd) in
  let bits_per_loop = Model.bits_per_loop spec pattern in
  let energy_per_bit =
    if bits_per_loop > 0.0 then
      Some (power * I.point loop_time / I.point bits_per_loop)
    else None
  in
  {
    op_contributions;
    op_energy;
    background;
    power;
    current;
    loop_time;
    bits_per_loop;
    energy_per_bit;
  }
