(* The machine-readable certificate `vdram check --certify` emits.

   The JSON is a contract: a future `vdram search` pruner reads the
   monotonicity entries to discard dominated candidates, and
   downstream tooling reads the bound entries as guaranteed
   envelopes.  Floats are printed with %.17g so the parsed values
   round-trip to the exact doubles certified. *)

module I = Vdram_units.Interval
module Config = Vdram_core.Config
module Node = Vdram_tech.Node
module Model = Vdram_core.Model
module Report = Vdram_core.Report
module Operation = Vdram_core.Operation
module Pattern = Vdram_core.Pattern
module Lenses = Vdram_analysis.Lenses

type sweep_entry = {
  node : string;
  legal : bool;
  violations : string list;  (** human-readable, empty when legal *)
}

type sweep = {
  authored_node : string;
  authored_legal : bool;
  entries : sweep_entry list;
}

type samples = { count : int; contained : bool }

type t = {
  config : Config.t;
  pattern : Pattern.t;
  box : Abox.t;
  splits : int;
  bounds : Bounds.t;
  nominal : Report.t;
  monotonicity : Monotone.certificate list;
  sweep : sweep option;
  samples : samples option;
}

let v ?sweep ?samples ~config ~pattern ~box ~splits ~bounds ~monotonicity ()
    =
  {
    config;
    pattern;
    box;
    splits;
    bounds;
    nominal = Model.pattern_power config pattern;
    monotonicity;
    sweep;
    samples;
  }

(* ----- JSON -------------------------------------------------------- *)

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_finite x then
    Buffer.add_string buf (Printf.sprintf "%.17g" x)
  else Buffer.add_string buf "null"

let add_interval buf (i : I.t) =
  Buffer.add_string buf "{\"lo\":";
  add_float buf i.I.lo;
  Buffer.add_string buf ",\"hi\":";
  add_float buf i.I.hi;
  Buffer.add_char buf '}'

let add_bound buf name (i : I.t) nominal =
  add_string buf name;
  Buffer.add_string buf ":{\"lo\":";
  add_float buf i.I.lo;
  Buffer.add_string buf ",\"hi\":";
  add_float buf i.I.hi;
  Buffer.add_string buf ",\"nominal\":";
  add_float buf nominal;
  Buffer.add_char buf '}'

let add_list buf items add_item =
  Buffer.add_char buf '[';
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      add_item buf item)
    items;
  Buffer.add_char buf ']'

let add_axis buf (a : Abox.axis) =
  Buffer.add_string buf "{\"lens\":";
  add_string buf a.Abox.lens.Lenses.name;
  Buffer.add_string buf ",\"group\":";
  add_string buf (Lenses.group_name a.Abox.lens.Lenses.group);
  Buffer.add_string buf ",\"scale_lo\":";
  add_float buf (a.Abox.scale : I.t).I.lo;
  Buffer.add_string buf ",\"scale_hi\":";
  add_float buf (a.Abox.scale : I.t).I.hi;
  Buffer.add_char buf '}'

let add_monotone buf (m : Monotone.certificate) =
  Buffer.add_string buf "{\"lens\":";
  add_string buf m.Monotone.lens;
  Buffer.add_string buf ",\"group\":";
  add_string buf (Lenses.group_name m.Monotone.group);
  Buffer.add_string buf ",\"metric\":";
  add_string buf (Monotone.metric_name m.Monotone.metric);
  Buffer.add_string buf ",\"scale_lo\":";
  add_float buf m.Monotone.lo;
  Buffer.add_string buf ",\"scale_hi\":";
  add_float buf m.Monotone.hi;
  Buffer.add_string buf ",\"direction\":";
  (match m.Monotone.direction with
   | None -> Buffer.add_string buf "null"
   | Some d -> add_string buf (Monotone.direction_name d));
  Buffer.add_string buf ",\"cells\":";
  Buffer.add_string buf (string_of_int m.Monotone.cells);
  Buffer.add_string buf ",\"resolution\":";
  add_float buf m.Monotone.resolution;
  Buffer.add_char buf '}'

let add_sweep_entry buf e =
  Buffer.add_string buf "{\"node\":";
  add_string buf e.node;
  Buffer.add_string buf ",\"legal\":";
  Buffer.add_string buf (if e.legal then "true" else "false");
  Buffer.add_string buf ",\"violations\":";
  add_list buf e.violations (fun buf s -> add_string buf s);
  Buffer.add_char buf '}'

let to_json t =
  let buf = Buffer.create 2048 in
  let b = Buffer.add_string buf in
  b "{\"certificate_version\":1";
  b ",\"model_version\":";
  add_string buf Model.version;
  b ",\"config\":{\"name\":";
  add_string buf t.config.Config.name;
  b ",\"node\":";
  add_string buf (Node.name t.config.Config.node);
  b "}";
  b ",\"pattern\":";
  add_string buf t.pattern.Pattern.name;
  b ",\"axes\":";
  add_list buf (Abox.axes t.box) add_axis;
  b ",\"splits\":";
  b (string_of_int t.splits);
  b ",\"pieces\":";
  b (string_of_int t.bounds.Bounds.pieces);
  b ",\"bounds\":{";
  add_bound buf "power" t.bounds.Bounds.power t.nominal.Report.power;
  b ",";
  add_bound buf "current" t.bounds.Bounds.current t.nominal.Report.current;
  b ",";
  add_bound buf "background" t.bounds.Bounds.background
    t.nominal.Report.background_power;
  b ",\"energy_per_bit\":";
  (match (t.bounds.Bounds.energy_per_bit, t.nominal.Report.energy_per_bit)
   with
   | Some i, Some n ->
     Buffer.add_string buf "{\"lo\":";
     add_float buf i.I.lo;
     Buffer.add_string buf ",\"hi\":";
     add_float buf i.I.hi;
     Buffer.add_string buf ",\"nominal\":";
     add_float buf n;
     Buffer.add_char buf '}'
   | _ -> b "null");
  b ",\"op_energy\":{";
  List.iteri
    (fun i (kind, interval) ->
      if i > 0 then Buffer.add_char buf ',';
      add_string buf (Operation.name kind);
      Buffer.add_char buf ':';
      add_interval buf interval)
    t.bounds.Bounds.op_energy;
  b "}}";
  b ",\"monotonicity\":";
  add_list buf t.monotonicity add_monotone;
  b ",\"sweep_legality\":";
  (match t.sweep with
   | None -> b "null"
   | Some s ->
     b "{\"authored_node\":";
     add_string buf s.authored_node;
     b ",\"authored_legal\":";
     b (if s.authored_legal then "true" else "false");
     b ",\"generations\":";
     add_list buf s.entries add_sweep_entry;
     b "}");
  b ",\"samples\":";
  (match t.samples with
   | None -> b "null"
   | Some s ->
     b "{\"count\":";
     b (string_of_int s.count);
     b ",\"contained\":";
     b (if s.contained then "true" else "false");
     b "}");
  b "}";
  Buffer.contents buf
