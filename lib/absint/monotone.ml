(* Monotonicity certificates for lens directions.

   To certify that a metric is monotone along a lens over a scale
   range, partition the range into K cells and evaluate the metric
   abstractly on each single-axis cell box.  Adjacent closed cells
   share their boundary point, so comparing neighbours is vacuous;
   instead the certificate compares every cell with the
   one-after-next: if sup I(k) <= inf I(k+2) for all k, then for any
   two scales x < y at least two cells apart — i.e. y - x >= 2 * delta
   with delta = (hi - lo) / K — the metric at x is at most the metric
   at y.  That is monotonicity at resolution 2 * delta, which is what
   a search-space pruner needs: it may discard any candidate at least
   one resolution step on the wrong side of a better one.

   The direction is guessed from concrete endpoint samples, then
   proved abstractly; K is refined adaptively (4, 8, 16, 32) until
   the chain closes or the budget is exhausted. *)

module I = Vdram_units.Interval
module Config = Vdram_core.Config
module Model = Vdram_core.Model
module Report = Vdram_core.Report
module Lenses = Vdram_analysis.Lenses

type metric = Energy_per_bit | Power

let metric_name = function
  | Energy_per_bit -> "energy_per_bit"
  | Power -> "power"

type direction = Increasing | Decreasing

let direction_name = function
  | Increasing -> "increasing"
  | Decreasing -> "decreasing"

type certificate = {
  lens : string;
  group : Lenses.group;
  metric : metric;
  lo : float;
  hi : float;
  direction : direction option;
      (** [None]: not certified either way at the deepest resolution *)
  cells : int;       (** K of the certifying partition (or deepest tried) *)
  resolution : float;
      (** certified minimum separation, [2 * (hi - lo) / cells] *)
}

let concrete_metric metric base pattern =
  let report = Model.pattern_power base pattern in
  match metric with
  | Power -> Some report.Report.power
  | Energy_per_bit -> report.Report.energy_per_bit

let abstract_metric metric (s : Aeval.stages) =
  match metric with
  | Power -> Some s.Aeval.power
  | Energy_per_bit -> s.Aeval.energy_per_bit

(* Cell k of K over [lo, hi]; endpoints computed the same way for
   cell k's hi and cell k+1's lo so the partition has no gaps. *)
let cell_bounds ~lo ~hi ~cells k =
  let f i = lo +. ((hi -. lo) *. (float_of_int i /. float_of_int cells)) in
  let a = if k = 0 then lo else f k in
  let b = if k = cells - 1 then hi else f (k + 1) in
  (a, b)

let cell_intervals ~base ~lens ~lo ~hi ~cells ~metric pattern =
  let ok = ref true in
  let result =
    Array.init cells (fun k ->
        let a, b = cell_bounds ~lo ~hi ~cells k in
        let box = Abox.v ~base [ Abox.axis lens ~lo:a ~hi:b ] in
        match abstract_metric metric (Aeval.analyze box pattern) with
        | Some i when I.is_finite i -> i
        | _ ->
          ok := false;
          I.top)
  in
  if !ok then Some result else None

let chain_holds ~direction intervals =
  let n = Array.length intervals in
  let ordered a b =
    match direction with
    | Increasing -> (a : I.t).hi <= (b : I.t).lo
    | Decreasing -> (b : I.t).hi <= (a : I.t).lo
  in
  let holds = ref true in
  for k = 0 to n - 3 do
    if not (ordered intervals.(k) intervals.(k + 2)) then holds := false
  done;
  !holds

let certify ?(max_cells = 32) ~base ~lens ~lo ~hi ~metric pattern =
  let group = lens.Lenses.group in
  let name = lens.Lenses.name in
  let fail cells =
    {
      lens = name;
      group;
      metric;
      lo;
      hi;
      direction = None;
      cells;
      resolution = 2.0 *. ((hi -. lo) /. float_of_int cells);
    }
  in
  (* Guess the direction from concrete endpoint samples: cheap, and a
     wrong guess only costs a failed certificate, never soundness. *)
  let sample s = concrete_metric metric (Lenses.scale lens s base) pattern in
  match (sample lo, sample hi) with
  | Some at_lo, Some at_hi ->
    let direction = if at_lo <= at_hi then Increasing else Decreasing in
    let rec refine cells =
      if cells > max_cells then fail max_cells
      else
        match
          cell_intervals ~base ~lens ~lo ~hi ~cells ~metric pattern
        with
        | None -> fail cells
        | Some intervals ->
          if chain_holds ~direction intervals then
            {
              lens = name;
              group;
              metric;
              lo;
              hi;
              direction = Some direction;
              cells;
              resolution = 2.0 *. ((hi -. lo) /. float_of_int cells);
            }
          else refine (cells * 2)
    in
    refine 4
  | _ -> fail 4
