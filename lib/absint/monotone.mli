(** Monotonicity certificates: which lens directions provably move a
    metric one way over a scale range.

    The proof partitions the range into K closed cells, evaluates
    the metric abstractly on each, and compares every cell with the
    one-after-next (adjacent cells share a boundary point, so the
    neighbour comparison is vacuous).  A closed chain certifies: for
    scales [x < y] with [y - x >= resolution], metric(x) <= metric(y)
    (increasing) or >= (decreasing).  A search-space pruner may then
    discard any candidate at least one resolution step on the wrong
    side of a better one. *)

type metric = Energy_per_bit | Power

val metric_name : metric -> string

type direction = Increasing | Decreasing

val direction_name : direction -> string

type certificate = {
  lens : string;
  group : Vdram_analysis.Lenses.group;
  metric : metric;
  lo : float;                  (** certified scale range, inclusive *)
  hi : float;
  direction : direction option;
      (** [None]: not certified either way at the deepest partition *)
  cells : int;                 (** certifying (or deepest tried) K *)
  resolution : float;          (** certified minimum separation *)
}

val certify :
  ?max_cells:int ->
  base:Vdram_core.Config.t ->
  lens:Vdram_analysis.Lenses.t ->
  lo:float ->
  hi:float ->
  metric:metric ->
  Vdram_core.Pattern.t ->
  certificate
(** Certify one lens direction; the partition is refined adaptively
    (4, 8, 16, ... up to [max_cells], default 32) until the chain
    closes or the budget is exhausted. *)
