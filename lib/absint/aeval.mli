(** The abstract evaluator: the Figure 4 pipeline — capacitance
    extraction, background power, pattern mix — over interval-valued
    configurations.

    Every function transcribes its concrete counterpart operation for
    operation in the same association order, so by induction each
    concrete intermediate of evaluating any member of the box lies
    inside the mirrored interval.  The per-stage qcheck property in
    the test suite exercises this correspondence on random boxes. *)

type contribution = {
  label : string;
  domain : Vdram_circuits.Domains.domain;
  energy : Vdram_units.Interval.t;
}

type stages = {
  op_contributions :
    (Vdram_core.Operation.kind * contribution list) list;
      (** extraction stage: per-operation contribution lists *)
  op_energy : (Vdram_core.Operation.kind * Vdram_units.Interval.t) list;
      (** per-operation energies referred to Vdd *)
  background : Vdram_units.Interval.t;  (** watts *)
  power : Vdram_units.Interval.t;       (** watts, pattern average *)
  current : Vdram_units.Interval.t;     (** amperes *)
  loop_time : float;                    (** seconds; no lens moves it *)
  bits_per_loop : float;
  energy_per_bit : Vdram_units.Interval.t option;
      (** J/bit; [None] for data-less patterns *)
}

val analyze : Abox.t -> Vdram_core.Pattern.t -> stages
(** Run the full abstract pipeline for one pattern over a box. *)
