(* Abstract configuration boxes: a nominal configuration plus
   per-lens scale-factor intervals.

   The concretisation of a box is every configuration reachable by
   applying each axis lens with some scale factor drawn from its
   interval, in axis order.  The lens inventory touches pairwise
   disjoint fields, so any scalar the physics reads is moved by at
   most one axis, and its exact range is the hull of the two
   single-axis corner evaluations: for a nominal v > 0 and scale
   s in [lo, hi], fl(v * s) is monotone in s (correctly rounded
   multiplication is monotone), hence always between fl(v * lo) and
   fl(v * hi).  [field] relies on this; a getter moved by several
   axes falls back to corner enumeration with outward widening. *)

module I = Vdram_units.Interval
module Config = Vdram_core.Config
module Lenses = Vdram_analysis.Lenses

type axis = { lens : Lenses.t; scale : I.t }

type t = {
  base : Config.t;
  axes : axis list;
  (* Per axis: the base with only that axis applied at its lower /
     upper scale.  Field reads compare against these. *)
  corners : (Config.t * Config.t) array Lazy.t;
}

let axis lens ~lo ~hi =
  if
    (not (Float.is_finite lo && Float.is_finite hi))
    || lo <= 0.0 || hi < lo
  then
    invalid_arg
      (Printf.sprintf "Abox.axis %S: need finite 0 < lo <= hi"
         lens.Lenses.name);
  { lens; scale = I.v lo hi }

let default_axis lens =
  let lo, hi = lens.Lenses.range in
  axis lens ~lo ~hi

let v ~base axes =
  let names = List.map (fun a -> a.lens.Lenses.name) axes in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Abox.v: duplicate lens axes";
  let corners =
    lazy
      (Array.of_list
         (List.map
            (fun a ->
              ( Lenses.scale a.lens (a.scale : I.t).lo base,
                Lenses.scale a.lens (a.scale : I.t).hi base ))
            axes))
  in
  { base; axes; corners }

let base t = t.base
let axes t = t.axes
let dim t = List.length t.axes

(* All-corner enumeration for a getter several axes move: apply the
   chosen endpoint scale of each affected axis sequentially (the same
   order [instantiate] uses) and hull the results, with one outward
   widening to pay for the composed roundings.  Exact only for
   getters monotone in each scale, which every lens-touched field is;
   the widening keeps the degenerate path from being silently tight. *)
let enumerate_corners t affected get =
  let k = List.length affected in
  if k > 12 then I.top
  else begin
    let acc = ref None in
    for mask = 0 to (1 lsl k) - 1 do
      let cfg =
        List.fold_left
          (fun cfg (j, a) ->
            let s =
              if mask land (1 lsl j) = 0 then (a.scale : I.t).lo
              else (a.scale : I.t).hi
            in
            Lenses.scale a.lens s cfg)
          t.base
          (List.mapi (fun j a -> (j, a)) affected)
      in
      let value = I.point (get cfg) in
      acc :=
        Some
          (match !acc with
           | None -> value
           | Some i -> I.hull i value)
    done;
    match !acc with
    | None -> I.top
    | Some i -> I.v (Float.pred (i : I.t).lo) (Float.succ (i : I.t).hi)
  end

let field t get =
  let base_v = get t.base in
  match t.axes with
  | [] -> I.point base_v
  | axes ->
    let corners = Lazy.force t.corners in
    let affected = ref [] in
    List.iteri
      (fun i a ->
        let clo, chi = corners.(i) in
        let vlo = get clo and vhi = get chi in
        if vlo <> base_v || vhi <> base_v then
          affected := (a, vlo, vhi) :: !affected)
      axes;
    (match List.rev !affected with
     | [] -> I.point base_v
     | [ (_, vlo, vhi) ] ->
       I.v (Float.min vlo vhi) (Float.max vlo vhi)
     | many -> enumerate_corners t (List.map (fun (a, _, _) -> a) many) get)

let instantiate t scales =
  if List.length scales <> List.length t.axes then
    invalid_arg "Abox.instantiate: one scale per axis required";
  List.fold_left2
    (fun cfg a s ->
      if not (I.contains a.scale s) then
        invalid_arg
          (Printf.sprintf "Abox.instantiate: scale %g outside axis %S" s
             a.lens.Lenses.name);
      Lenses.scale a.lens s cfg)
    t.base t.axes scales

let nominal_scales t =
  List.map
    (fun a ->
      let s = a.scale in
      if I.contains s 1.0 then 1.0 else I.mid s)
    t.axes

(* Split the box across its widest non-degenerate axis; [None] when
   every axis is a point (nothing left to refine). *)
let split t =
  let widest =
    List.fold_left
      (fun acc a ->
        let w = I.width a.scale in
        match acc with
        | Some (_, best) when best >= w -> acc
        | _ -> if w > 0.0 then Some (a.lens.Lenses.name, w) else acc)
      None t.axes
  in
  match widest with
  | None -> None
  | Some (name, _) ->
    let lo_axes, hi_axes =
      List.split
        (List.map
           (fun a ->
             if a.lens.Lenses.name = name then begin
               let l, h = I.split a.scale in
               ( { a with scale = l }, { a with scale = h } )
             end
             else (a, a))
           t.axes)
    in
    Some (v ~base:t.base lo_axes, v ~base:t.base hi_axes)
