(* Guaranteed bound computation with branch-and-bound tightening.

   A single abstract evaluation of a wide box is sound but loose:
   interval arithmetic charges every multiplication for the full
   width of both operands.  Splitting the box across its widest axis
   and hulling the per-piece results recovers most of the lost
   precision — each piece is narrower, so its dependency loss is
   smaller — while the hull keeps the union sound. *)

module I = Vdram_units.Interval
module Operation = Vdram_core.Operation

type t = {
  background : I.t;
  power : I.t;
  current : I.t;
  energy_per_bit : I.t option;
  op_energy : (Operation.kind * I.t) list;
  pieces : int;  (** leaf boxes evaluated *)
}

let of_stages (s : Aeval.stages) =
  {
    background = s.Aeval.background;
    power = s.Aeval.power;
    current = s.Aeval.current;
    energy_per_bit = s.Aeval.energy_per_bit;
    op_energy = s.Aeval.op_energy;
    pieces = 1;
  }

let merge a b =
  {
    background = I.hull a.background b.background;
    power = I.hull a.power b.power;
    current = I.hull a.current b.current;
    energy_per_bit =
      (match (a.energy_per_bit, b.energy_per_bit) with
       | Some x, Some y -> Some (I.hull x y)
       | _ -> None);
    op_energy =
      List.map
        (fun (kind, x) -> (kind, I.hull x (List.assoc kind b.op_energy)))
        a.op_energy;
    pieces = a.pieces + b.pieces;
  }

(* Depth-first bisection: [splits] levels, so up to 2^splits leaves. *)
let rec refine ~splits box pattern =
  if splits <= 0 then of_stages (Aeval.analyze box pattern)
  else
    match Abox.split box with
    | None -> of_stages (Aeval.analyze box pattern)
    | Some (lo, hi) ->
      merge
        (refine ~splits:(splits - 1) lo pattern)
        (refine ~splits:(splits - 1) hi pattern)

let compute ?(splits = 4) box pattern = refine ~splits box pattern
