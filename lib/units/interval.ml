(* Outward-rounded interval arithmetic: the abstract numeric domain of
   `vdram check`.

   An interval [lo, hi] stands for every real number between its
   endpoints *and* every IEEE double a concrete evaluation can produce
   from operands drawn from the operand intervals.  Soundness against
   concrete float evaluation follows by induction: if the concrete
   operands a and b lie within the operand intervals, the real result
   a op b lies within the real-interval result, and the rounded result
   fl(a op b) is at most half an ulp away — the two ulps of outward
   widening applied to every computed endpoint absorb both the
   endpoint computation's own rounding and the concrete evaluation's.

   NaN never survives: any operation whose endpoint arithmetic
   produces NaN (inf - inf, 0 * inf, division by an interval
   containing zero) widens to [-inf, +inf] ("top"). *)

type t = {
  lo : float;
  hi : float;
}

let top = { lo = Float.neg_infinity; hi = Float.infinity }

let is_top t = t.lo = Float.neg_infinity && t.hi = Float.infinity

(* Two ulps of outward rounding per computed endpoint; infinite
   endpoints stay put (Float.pred infinity would *shrink* the bound). *)
let down x =
  if Float.is_finite x then Float.pred (Float.pred x) else x

let up x = if Float.is_finite x then Float.succ (Float.succ x) else x

(* Normalising constructor: NaN endpoints widen to the corresponding
   infinity, inverted endpoints are swapped. *)
let make lo hi =
  let lo = if Float.is_nan lo then Float.neg_infinity else lo in
  let hi = if Float.is_nan hi then Float.infinity else hi in
  if lo <= hi then { lo; hi } else { lo = hi; hi = lo }

(* An exact (already-contained) pair: no outward rounding. *)
let v lo hi = make lo hi

(* A computed pair: outward rounding pays for the endpoint arithmetic. *)
let computed lo hi =
  let i = make lo hi in
  { lo = down i.lo; hi = up i.hi }

let point x = if Float.is_nan x then top else { lo = x; hi = x }

let zero = point 0.0
let one = point 1.0

let of_int n = point (float_of_int n)

let is_point t = t.lo = t.hi

let contains t x =
  if Float.is_nan x then is_top t else t.lo <= x && x <= t.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let width t = t.hi -. t.lo

let mid t =
  if is_point t then t.lo
  else
    let m = t.lo +. (0.5 *. (t.hi -. t.lo)) in
    if Float.is_finite m then m else 0.0

let split t =
  let m = mid t in
  ({ lo = t.lo; hi = m }, { lo = m; hi = t.hi })

let neg t = { lo = -.t.hi; hi = -.t.lo }

let add a b = computed (a.lo +. b.lo) (a.hi +. b.hi)

let sub a b = computed (a.lo -. b.hi) (a.hi -. b.lo)

(* Endpoint products; 0 * inf yields NaN, which [make] absorbs into
   top via the computed-endpoint path. *)
let mul a b =
  let p1 = a.lo *. b.lo
  and p2 = a.lo *. b.hi
  and p3 = a.hi *. b.lo
  and p4 = a.hi *. b.hi in
  if
    Float.is_nan p1 || Float.is_nan p2 || Float.is_nan p3 || Float.is_nan p4
  then top
  else
    computed
      (Float.min (Float.min p1 p2) (Float.min p3 p4))
      (Float.max (Float.max p1 p2) (Float.max p3 p4))

(* Division widens to top as soon as the divisor can be zero: the
   concrete evaluation could produce any magnitude (or an infinity). *)
let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then top
  else
    let q1 = a.lo /. b.lo
    and q2 = a.lo /. b.hi
    and q3 = a.hi /. b.lo
    and q4 = a.hi /. b.hi in
    if
      Float.is_nan q1 || Float.is_nan q2 || Float.is_nan q3 || Float.is_nan q4
    then top
    else
      computed
        (Float.min (Float.min q1 q2) (Float.min q3 q4))
        (Float.max (Float.max q1 q2) (Float.max q3 q4))

let scale f t = mul (point f) t

(* x^2 is non-negative: tighter than [mul t t] when t crosses zero. *)
let sq t =
  if t.lo >= 0.0 then computed (t.lo *. t.lo) (t.hi *. t.hi)
  else if t.hi <= 0.0 then computed (t.hi *. t.hi) (t.lo *. t.lo)
  else
    let m = Float.max (-.t.lo) t.hi in
    computed 0.0 (m *. m)

(* min / max are exact: the float result is one of the operands. *)
let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let is_finite t = Float.is_finite t.lo && Float.is_finite t.hi

(* Relative width against the larger endpoint magnitude; infinite
   intervals compare wider than any finite one. *)
let relative_width t =
  if not (is_finite t) then Float.infinity
  else
    let m = Float.max (Float.abs t.lo) (Float.abs t.hi) in
    if m = 0.0 then 0.0 else width t /. m

let pp ppf t =
  if is_point t then Format.fprintf ppf "%.6g" t.lo
  else Format.fprintf ppf "[%.6g, %.6g]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t

(* Local-open operators: [Interval.O.(a + b * c)]. *)
module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end
