(* SI prefixes and engineering-notation formatting. *)

let prefixes =
  [ ("T", 1e12); ("G", 1e9); ("M", 1e6); ("k", 1e3); ("", 1.0);
    ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15);
    ("a", 1e-18) ]

let multiplier p =
  List.assoc_opt p prefixes

let split_prefix s =
  if String.length s = 0 then None
  else
    let first = String.make 1 s.[0] in
    let rest = String.sub s 1 (String.length s - 1) in
    (* Prefer the prefixed reading only when a base unit remains;
       a bare "m" is metres, not a milli-prefix. *)
    match multiplier first with
    | Some mult when String.length rest > 0 -> Some (mult, rest)
    | _ -> Some (1.0, s)

(* Prefixes ordered for display selection. *)
let display_prefixes =
  [ ("T", 1e12); ("G", 1e9); ("M", 1e6); ("k", 1e3); ("", 1.0);
    ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15);
    ("a", 1e-18) ]

let format_eng ?(digits = 4) ~unit_symbol v =
  if v = 0.0 then Printf.sprintf "0 %s" unit_symbol
  else begin
    let mag = Float.abs v in
    let rec pick = function
      | [] -> ("a", 1e-18)
      | (p, m) :: rest -> if mag >= m *. 0.9999995 then (p, m) else pick rest
    in
    let prefix, mult = pick display_prefixes in
    let mantissa = v /. mult in
    (* Choose decimals so that roughly [digits] significant digits show. *)
    let int_digits =
      let a = Float.abs mantissa in
      if a >= 100.0 then 3 else if a >= 10.0 then 2 else 1
    in
    let decimals = max 0 (digits - int_digits) in
    let s = Printf.sprintf "%.*f" decimals mantissa in
    (* Trim trailing zeros and a dangling point for compactness. *)
    let s =
      if String.contains s '.' then begin
        let n = ref (String.length s) in
        while !n > 1 && s.[!n - 1] = '0' do decr n done;
        if !n > 1 && s.[!n - 1] = '.' then decr n;
        String.sub s 0 !n
      end
      else s
    in
    Printf.sprintf "%s %s%s" s prefix unit_symbol
  end

let pp_eng ~unit_symbol ppf v =
  Format.pp_print_string ppf (format_eng ~unit_symbol v)
