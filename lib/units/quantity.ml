(* Parsing and printing of unit-suffixed literals. *)

type dim =
  | Length
  | Voltage
  | Capacitance
  | Cap_per_length
  | Frequency
  | Datarate
  | Time
  | Current
  | Power
  | Energy
  | Fraction
  | Scalar

let dim_name = function
  | Length -> "length"
  | Voltage -> "voltage"
  | Capacitance -> "capacitance"
  | Cap_per_length -> "capacitance per length"
  | Frequency -> "frequency"
  | Datarate -> "data rate"
  | Time -> "time"
  | Current -> "current"
  | Power -> "power"
  | Energy -> "energy"
  | Fraction -> "fraction"
  | Scalar -> "scalar"

let unit_symbol = function
  | Length -> "m"
  | Voltage -> "V"
  | Capacitance -> "F"
  | Cap_per_length -> "F/m"
  | Frequency -> "Hz"
  | Datarate -> "bps"
  | Time -> "s"
  | Current -> "A"
  | Power -> "W"
  | Energy -> "J"
  | Fraction -> ""
  | Scalar -> ""

let base_units =
  [ ("m", Length); ("V", Voltage); ("F", Capacitance); ("Hz", Frequency);
    ("bps", Datarate); ("b/s", Datarate); ("s", Time); ("A", Current);
    ("W", Power); ("J", Energy) ]

(* Interpret a unit suffix (without the numeric part) as a multiplier
   and dimension.  Handles the composite "F/m" style for specific wire
   capacitance. *)
let interpret_unit s =
  if s = "" then Ok (1.0, Scalar)
  else if s = "%" then Ok (0.01, Fraction)
  else
    match String.index_opt s '/' with
    | Some i when String.sub s (i + 1) (String.length s - i - 1) <> "s" ->
      let num = String.sub s 0 i
      and den = String.sub s (i + 1) (String.length s - i - 1) in
      let part u =
        match Si.split_prefix u with
        | None -> Error (Printf.sprintf "empty unit in %S" s)
        | Some (mult, base) ->
          (match List.assoc_opt base base_units with
           | Some d -> Ok (mult, d)
           | None -> Error (Printf.sprintf "unknown unit %S in %S" base s))
      in
      (match part num, part den with
       | Ok (mn, Capacitance), Ok (md, Length) ->
         Ok (mn /. md, Cap_per_length)
       | Ok _, Ok _ ->
         Error (Printf.sprintf "unsupported compound unit %S" s)
       | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ ->
      (* A plain or prefixed base unit; "b/s" ends with "/s" and is
         looked up whole first. *)
      (match List.assoc_opt s base_units with
       | Some d -> Ok (1.0, d)
       | None ->
         (match Si.split_prefix s with
          | None -> Ok (1.0, Scalar)
          | Some (mult, base) ->
            (match List.assoc_opt base base_units with
             | Some d -> Ok (mult, d)
             | None -> Error (Printf.sprintf "unknown unit %S" s))))

let is_number_char c =
  (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e'
  || c = 'E'

(* Split "165nm" into ("165", "nm").  The numeric part is the longest
   prefix of number characters, taking care that an 'e' only counts as
   part of the number when followed by a digit or sign (exponent). *)
let split_literal s =
  let n = String.length s in
  let rec scan i =
    if i >= n then i
    else
      let c = s.[i] in
      if c = 'e' || c = 'E' then
        if
          i + 1 < n
          && (s.[i + 1] = '+' || s.[i + 1] = '-'
              || (s.[i + 1] >= '0' && s.[i + 1] <= '9'))
        then scan (i + 2)
        else i
      else if is_number_char c then scan (i + 1)
      else i
  in
  let cut = scan 0 in
  (* Allow whitespace between number and unit ("42 fF"). *)
  let rec skip i = if i < n && s.[i] = ' ' then skip (i + 1) else i in
  let start = skip cut in
  (String.sub s 0 cut, String.sub s start (n - start))

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty literal"
  else
    let num, suffix = split_literal s in
    if num = "" then Error (Printf.sprintf "no numeric part in %S" s)
    else
      match float_of_string_opt num with
      | None -> Error (Printf.sprintf "malformed number %S" num)
      | Some v ->
        (match interpret_unit suffix with
         | Ok (mult, d) -> Ok (v *. mult, d)
         | Error _ as e -> e)

let compatible expected actual =
  expected = actual
  || (expected = Fraction && actual = Scalar)
  || (expected = Scalar && actual = Fraction)

type error_kind =
  | Malformed
  | Unknown_unit
  | Mismatch of dim
  | Non_finite

let classify d s =
  let s = String.trim s in
  if s = "" then Error (Malformed, "empty literal")
  else
    let num, suffix = split_literal s in
    if num = "" then
      Error (Malformed, Printf.sprintf "no numeric part in %S" s)
    else
      match float_of_string_opt num with
      | None -> Error (Malformed, Printf.sprintf "malformed number %S" num)
      | Some v ->
        (match interpret_unit suffix with
         | Error msg ->
           (* All unit-suffix failures: empty, unknown, bad compound. *)
           Error (Unknown_unit, msg)
         | Ok (mult, actual) ->
           let v = v *. mult in
           if not (Float.is_finite v) then
             Error (Non_finite, Printf.sprintf "literal %S is not finite" s)
           else if compatible d actual then Ok v
           else
             Error
               ( Mismatch actual,
                 Printf.sprintf "expected %s but %S is a %s" (dim_name d) s
                   (dim_name actual) ))

let parse_dim d s = Result.map_error snd (classify d s)

let to_string ?digits d v =
  match d with
  | Fraction -> Printf.sprintf "%g%%" (v *. 100.0)
  | Scalar -> Printf.sprintf "%g" v
  | _ -> Si.format_eng ?digits ~unit_symbol:(unit_symbol d) v

let pp d ppf v = Format.pp_print_string ppf (to_string d v)
