(** Outward-rounded interval arithmetic, the abstract numeric domain
    of [vdram check].

    An interval stands for every real between its endpoints and every
    IEEE double a concrete evaluation can produce from operands drawn
    from the operand intervals: each computed endpoint is widened
    outward by two ulps, which absorbs both the endpoint arithmetic's
    own rounding and the half-ulp of the mirrored concrete operation.
    Operations whose endpoint arithmetic degenerates (NaN, division by
    an interval containing zero) widen to [-inf, +inf] ("top"), so the
    domain is total and never unsound. *)

type t = private { lo : float; hi : float }

val top : t
val is_top : t -> bool

val v : float -> float -> t
(** [v lo hi] is the exact interval (no outward rounding): the caller
    asserts both endpoints are already contained.  NaN endpoints widen
    to the corresponding infinity; inverted endpoints are swapped. *)

val point : float -> t
(** Singleton interval; [point nan] is {!top}. *)

val zero : t
val one : t
val of_int : int -> t

val is_point : t -> bool
val contains : t -> float -> bool
val subset : t -> t -> bool
val hull : t -> t -> t
val width : t -> float
val relative_width : t -> float
val mid : t -> float
val split : t -> t * t
val is_finite : t -> bool

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Top as soon as the divisor interval contains zero. *)

val scale : float -> t -> t
val sq : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Local-open operators: [Interval.O.(a + b * c)]. *)
module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end
