(** SI prefix handling and engineering-notation formatting.

    All physical values in vdram are plain [float]s in base SI units
    (metres, volts, farads, hertz, seconds, amperes, joules, watts).
    This module converts between those floats and human-readable
    engineering notation such as ["56.3 um"] or ["1.6 Gbps"]. *)

val prefixes : (string * float) list
(** Supported SI prefixes, largest first: [("G", 1e9); ...; ("a", 1e-18)].
    ["u"] is used for micro. *)

val multiplier : string -> float option
(** [multiplier p] is the scale factor of prefix [p], if known.
    The empty string maps to [1.0]. *)

val split_prefix : string -> (float * string) option
(** [split_prefix s] splits a unit string such as ["nm"] into its prefix
    multiplier and base unit: [Some (1e-9, "m")].  Returns the longest
    valid interpretation; an unprefixed base unit yields multiplier 1.
    Returns [None] for the empty string. *)

val format_eng : ?digits:int -> unit_symbol:string -> float -> string
(** [format_eng ~unit_symbol v] renders [v] with an automatically chosen
    SI prefix so the mantissa falls in [1, 1000), e.g.
    [format_eng ~unit_symbol:"F" 4.2e-14 = "42 fF"].  [digits] is the
    number of significant digits (default 4).  Zero renders as ["0 <u>"]. *)

val pp_eng : unit_symbol:string -> Format.formatter -> float -> unit
(** Formatter version of {!format_eng}. *)
