(** Dimensioned literal parsing and printing.

    The DRAM description language attaches unit suffixes to numbers
    ([165nm], [1.6Gbps], [25%], [19.2]).  This module parses such
    literals into base-SI floats tagged with a dimension, and renders
    base-SI floats back with an appropriate unit. *)

type dim =
  | Length          (** metres *)
  | Voltage         (** volts *)
  | Capacitance     (** farads *)
  | Cap_per_length  (** farads per metre, e.g. [fF/um] *)
  | Frequency       (** hertz *)
  | Datarate        (** bits per second, e.g. [Gbps] *)
  | Time            (** seconds *)
  | Current         (** amperes *)
  | Power           (** watts *)
  | Energy          (** joules *)
  | Fraction        (** dimensionless; [%] divides by 100 *)
  | Scalar          (** dimensionless plain number *)

val dim_name : dim -> string
(** Human-readable dimension name, e.g. ["length"]. *)

val unit_symbol : dim -> string
(** Canonical unit symbol for a dimension, e.g. ["m"]; empty for
    [Scalar] and [Fraction]. *)

val split_literal : string -> string * string
(** Split a literal into its numeric part and unit suffix:
    ["165nm"] becomes [("165", "nm")], a bare number keeps an empty
    suffix.  Purely lexical — neither part is validated. *)

val parse : string -> (float * dim, string) result
(** [parse s] parses a literal with optional unit suffix.  The float is
    returned in base SI units.  ["25%"] parses to [(0.25, Fraction)];
    a bare number parses to [Scalar].  [Error msg] describes the
    malformed input. *)

type error_kind =
  | Malformed        (** empty literal, no numeric part, bad number *)
  | Unknown_unit     (** unit suffix not in the unit table *)
  | Mismatch of dim  (** parsed fine but has this (wrong) dimension *)
  | Non_finite       (** overflows or is not a number after scaling *)

val classify : dim -> string -> (float, error_kind * string) result
(** [classify d s] parses [s] against expected dimension [d] and, on
    failure, says {e how} it failed, so diagnostics can carry a stable
    code per failure mode.  Non-finite values (e.g. [1e999V]) are
    rejected rather than silently propagated into the energy tables. *)

val parse_dim : dim -> string -> (float, string) result
(** [parse_dim d s] parses [s] and checks it against expected dimension
    [d].  A [Scalar] literal is accepted where a [Fraction] is expected
    (e.g. [0.25] for [25%]), and vice versa; any other mismatch is an
    error naming both dimensions.  [{!classify} d s] with the kind
    dropped. *)

val to_string : ?digits:int -> dim -> float -> string
(** Render a base-SI value with an engineering prefix and the
    dimension's canonical unit. *)

val pp : dim -> Format.formatter -> float -> unit
(** Formatter version of {!to_string}. *)
