(** A memory channel: the 64-bit data bus, strobes and
    command/address lines between controller and DIMM. *)

type t = {
  link : Termination.t;
  dq_pins : int;       (** data pins, 64 for a standard channel *)
  strobe_pins : int;   (** DQS pairs etc., toggling with the data *)
  ca_pins : int;       (** command/address lines *)
  datarate : float;    (** bit/s per data pin *)
}

val v :
  ?dq_pins:int -> ?strobe_pins:int -> ?ca_pins:int ->
  link:Termination.t -> datarate:float -> unit -> t
(** Defaults: 64 DQ, 18 strobe lines, 25 CA. *)

val for_config : Vdram_core.Config.t -> t
(** Channel matching a device: the era-typical link of its interface
    standard at its per-pin rate. *)

val bandwidth : t -> float
(** Peak bits per second over the data pins. *)

val power : t -> utilization:float -> float
(** Link power at a data-bus utilization: data and strobe pins burst
    for the utilized share; command/address lines toggle at a quarter
    of the data activity (commands are rarer than data beats). *)

val energy_per_bit : t -> utilization:float -> float
(** Link energy per transported data bit at a utilization.  Falls as
    utilization rises for DC-terminated links (the standing current
    amortizes). *)

val pp : Format.formatter -> t -> unit
