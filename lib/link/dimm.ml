(* DIMM-level composition of device and link power. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Model = Vdram_core.Model
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report

type organization = {
  device : Config.t;
  devices_per_rank : int;
  ranks : int;
}

let of_width ~node ~io_width ~capacity_bits =
  if 64 mod io_width <> 0 then
    invalid_arg "Dimm.of_width: 64 must be a multiple of the device width";
  let device = Config.commodity ~io_width ~node () in
  let devices_per_rank = 64 / io_width in
  let rank_bits =
    float_of_int devices_per_rank
    *. device.Config.spec.Spec.density_bits
  in
  let ranks =
    max 1 (int_of_float (Float.ceil (capacity_bits /. rank_bits)))
  in
  { device; devices_per_rank; ranks }

type result = {
  organization : organization;
  active_rank_power : float;
  idle_ranks_power : float;
  link_power : float;
  total_power : float;
  bandwidth : float;
  energy_per_bit : float;
}

let evaluate ?(utilization = 0.5) org =
  if utilization < 0.0 || utilization > 1.0 then
    invalid_arg "Dimm.evaluate: utilization outside [0, 1]";
  let device = org.device in
  let busy =
    (Model.pattern_power device
       (Pattern.idd7_mixed device.Config.spec))
      .Report.power
  in
  let standby = Model.state_power device Model.Precharge_standby in
  (* A device in the active rank interpolates between standby and the
     random-access mix with the channel utilization. *)
  let per_active = standby +. (utilization *. (busy -. standby)) in
  let active_rank_power =
    float_of_int org.devices_per_rank *. per_active
  in
  let idle_ranks_power =
    float_of_int ((org.ranks - 1) * org.devices_per_rank) *. standby
  in
  let channel = Channel.for_config device in
  let link_power = Channel.power channel ~utilization in
  let total_power = active_rank_power +. idle_ranks_power +. link_power in
  let bandwidth = Channel.bandwidth channel *. utilization in
  {
    organization = org;
    active_rank_power;
    idle_ranks_power;
    link_power;
    total_power;
    bandwidth;
    energy_per_bit =
      (if bandwidth > 0.0 then total_power /. bandwidth else 0.0);
  }

let compare_widths ~node ~capacity_bits ?utilization widths =
  List.map
    (fun io_width ->
      evaluate ?utilization (of_width ~node ~io_width ~capacity_bits))
    widths

let pp_result ppf r =
  let spec = r.organization.device.Config.spec in
  Format.fprintf ppf
    "x%-3d devices: %d/rank x %d ranks | rank %6.2f W + idle %6.2f W + \
     link %6.2f W = %6.2f W | %5.2f GB/s | %6.1f pJ/bit"
    spec.Spec.io_width r.organization.devices_per_rank
    r.organization.ranks r.active_rank_power r.idle_ranks_power
    r.link_power r.total_power
    (r.bandwidth /. 8e9)
    (r.energy_per_bit *. 1e12)
