(* Link termination power models. *)

module Node = Vdram_tech.Node

type scheme =
  | Unterminated of { c_load : float }
  | Sstl of { rtt : float; r_driver : float }
  | Pod of { rtt : float; r_driver : float }

let scheme_name = function
  | Unterminated _ -> "unterminated CMOS"
  | Sstl _ -> "SSTL"
  | Pod _ -> "POD"

type t = {
  scheme : scheme;
  vddq : float;
  trace_cap : float;
  toggle : float;
}

let v ?(trace_cap = 2.5e-12) ?(toggle = 0.5) ~scheme ~vddq () =
  if vddq <= 0.0 then invalid_arg "Termination.v: vddq must be positive";
  (match scheme with
   | Unterminated { c_load } ->
     if c_load < 0.0 then invalid_arg "Termination.v: negative load"
   | Sstl { rtt; r_driver } | Pod { rtt; r_driver } ->
     if rtt <= 0.0 || r_driver <= 0.0 then
       invalid_arg "Termination.v: resistances must be positive");
  { scheme; vddq; trace_cap; toggle }

let for_standard = function
  | Node.Sdr ->
    v ~scheme:(Unterminated { c_load = 12e-12 }) ~vddq:3.3 ~trace_cap:4e-12 ()
  | Node.Ddr ->
    v ~scheme:(Sstl { rtt = 50.0; r_driver = 25.0 }) ~vddq:2.5 ()
  | Node.Ddr2 ->
    v ~scheme:(Sstl { rtt = 75.0; r_driver = 18.0 }) ~vddq:1.8 ()
  | Node.Ddr3 ->
    v ~scheme:(Sstl { rtt = 60.0; r_driver = 34.0 }) ~vddq:1.5 ()
  | Node.Ddr4 ->
    v ~scheme:(Pod { rtt = 48.0; r_driver = 34.0 }) ~vddq:1.2 ()
  | Node.Ddr5 ->
    v ~scheme:(Pod { rtt = 48.0; r_driver = 34.0 }) ~vddq:1.1 ()

(* Switching component: the line and input loads charge and discharge
   with the data.  For terminated links the swing is the resistive
   divider's, not rail to rail. *)
let swing t =
  match t.scheme with
  | Unterminated _ -> t.vddq
  | Sstl { rtt; r_driver } | Pod { rtt; r_driver } ->
    t.vddq *. rtt /. (rtt +. r_driver)

let line_cap t =
  match t.scheme with
  | Unterminated { c_load } -> t.trace_cap +. c_load
  | Sstl _ | Pod _ -> t.trace_cap +. 1.5e-12 (* receiver pad *)

let active_power t ~bitrate =
  if bitrate < 0.0 then invalid_arg "Termination.active_power: bitrate";
  let sw = swing t in
  let switching =
    t.toggle *. line_cap t *. sw *. sw *. bitrate
  in
  let dc =
    match t.scheme with
    | Unterminated _ -> 0.0
    | Sstl { rtt; r_driver } ->
      (* Driven away from VTT in both states: (Vddq/2)^2 / (R) always
         while bursting. *)
      let r = rtt +. r_driver in
      t.vddq /. 2.0 *. (t.vddq /. 2.0) /. r
    | Pod { rtt; r_driver } ->
      (* Current flows only while driving low; random data: half the
         time. *)
      let r = rtt +. r_driver in
      0.5 *. (t.vddq *. t.vddq /. r)
  in
  switching +. dc

let idle_power _ = 0.0

let energy_per_bit t ~bitrate =
  if bitrate <= 0.0 then invalid_arg "Termination.energy_per_bit: bitrate";
  active_power t ~bitrate /. bitrate

let pp ppf t =
  Format.fprintf ppf "%s at %.2f V (swing %.2f V, %.1f pF line)"
    (scheme_name t.scheme) t.vddq (swing t) (line_cap t *. 1e12)
