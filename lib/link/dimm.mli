(** DIMM / system view: devices plus the channel link.

    A rank spans the 64-bit channel with [64 / io_width] devices, so
    narrow devices mean many chips activating per access — the
    system-level trade-off behind mini-rank (Zheng et al.) and
    threaded modules (Ware et al.), quantified here by combining the
    device model with the link model. *)

type organization = {
  device : Vdram_core.Config.t;
  devices_per_rank : int;
  ranks : int;
}

val of_width :
  node:Vdram_tech.Node.t -> io_width:int -> capacity_bits:float ->
  organization
(** Build a DIMM of at least [capacity_bits] from roadmap devices of
    the given width.  Raises [Invalid_argument] if 64 is not a
    multiple of the width. *)

type result = {
  organization : organization;
  active_rank_power : float;   (** W, all devices of the busy rank *)
  idle_ranks_power : float;    (** W, standby ranks *)
  link_power : float;          (** W *)
  total_power : float;
  bandwidth : float;           (** delivered bit/s at the utilization *)
  energy_per_bit : float;      (** system J per transported bit *)
}

val evaluate : ?utilization:float -> organization -> result
(** DIMM power at a channel utilization (default 0.5): the active
    rank's devices run the random-access (Idd7-like) mix scaled by
    utilization, other ranks sit in precharge standby, and the link
    adds its termination and switching power. *)

val compare_widths :
  node:Vdram_tech.Node.t -> capacity_bits:float -> ?utilization:float ->
  int list -> result list
(** The organization study: same capacity and channel, built from x4 /
    x8 / x16 devices. *)

val pp_result : Format.formatter -> result -> unit
