(* Channel-level link power. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Node = Vdram_tech.Node

type t = {
  link : Termination.t;
  dq_pins : int;
  strobe_pins : int;
  ca_pins : int;
  datarate : float;
}

let v ?(dq_pins = 64) ?(strobe_pins = 18) ?(ca_pins = 25) ~link ~datarate
    () =
  if dq_pins <= 0 || datarate <= 0.0 then
    invalid_arg "Channel.v: pins and datarate must be positive";
  { link; dq_pins; strobe_pins; ca_pins; datarate }

let for_config (cfg : Config.t) =
  let standard = Node.standard cfg.Config.node in
  v
    ~link:(Termination.for_standard standard)
    ~datarate:cfg.Config.spec.Spec.datarate ()

let bandwidth t = float_of_int t.dq_pins *. t.datarate

let power t ~utilization =
  if utilization < 0.0 || utilization > 1.0 then
    invalid_arg "Channel.power: utilization outside [0, 1]";
  let pin_active = Termination.active_power t.link ~bitrate:t.datarate in
  let data =
    float_of_int (t.dq_pins + t.strobe_pins) *. pin_active *. utilization
  in
  (* Command/address lines run at the command clock with lower
     activity. *)
  let ca =
    float_of_int t.ca_pins *. pin_active *. 0.25 *. utilization
  in
  data +. ca

let energy_per_bit t ~utilization =
  if utilization <= 0.0 then
    invalid_arg "Channel.energy_per_bit: utilization must be positive";
  power t ~utilization /. (bandwidth t *. utilization)

let pp ppf t =
  Format.fprintf ppf "%dx DQ + %d strobe + %d CA at %s, %a" t.dq_pins
    t.strobe_pins t.ca_pins
    (Vdram_units.Si.format_eng ~unit_symbol:"bps" t.datarate)
    Termination.pp t.link
