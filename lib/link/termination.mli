(** Signaling-link termination schemes and their per-pin power.

    The paper deliberately excludes the Vddq interface power because
    it "has to be calculated based on the properties of the link
    between DRAM and controller, not based on the DRAM itself"
    (Section III.A).  This module is that calculation: the three
    termination families commodity DRAM interfaces have used, with
    their DC and switching components.

    All powers are per signal pin. *)

type scheme =
  | Unterminated of { c_load : float }
      (** LVTTL/LVCMOS-style full-swing CMOS line (SDR, LPDDR):
          pure [C·V²] switching into the lumped line+input load *)
  | Sstl of { rtt : float; r_driver : float }
      (** stub-series terminated to VTT = Vddq/2 (DDR/DDR2/DDR3):
          standing current through the termination whenever the line
          is driven away from VTT, in either state *)
  | Pod of { rtt : float; r_driver : float }
      (** pseudo-open-drain to Vddq (DDR4/DDR5): termination current
          only while driving low — half the DC duty of SSTL for random
          data *)

val scheme_name : scheme -> string

type t = {
  scheme : scheme;
  vddq : float;          (** signaling supply, V *)
  trace_cap : float;     (** board trace capacitance per line, F *)
  toggle : float;        (** data transition activity (0..1) *)
}

val v :
  ?trace_cap:float -> ?toggle:float -> scheme:scheme -> vddq:float ->
  unit -> t
(** Defaults: 2.5 pF of trace, 0.5 toggle.  Raises [Invalid_argument]
    on non-positive vddq or resistances. *)

val for_standard : Vdram_tech.Node.standard -> t
(** Era-typical link: SDR unterminated at 3.3 V; DDR SSTL-2; DDR2
    SSTL-18 with 75 ohm ODT; DDR3 SSTL-15 with 60 ohm; DDR4 POD-12
    with 48 ohm; DDR5 POD-11 with 48 ohm. *)

val active_power : t -> bitrate:float -> float
(** Power of one pin while transferring at [bitrate] (bit/s):
    switching plus the scheme's DC component. *)

val idle_power : t -> float
(** Power of one pin while the bus is idle (parked): zero for
    unterminated and POD (parked high), VTT standing current for
    SSTL-style parked lines is terminated out — modelled as zero —
    but ODT on a parked SSTL input burns nothing until enabled. *)

val energy_per_bit : t -> bitrate:float -> float
(** [active_power / bitrate]. *)

val pp : Format.formatter -> t -> unit
