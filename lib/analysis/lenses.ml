(* Parameter lenses over Config.t. *)

module Config = Vdram_core.Config
module Params = Vdram_tech.Params
module Domains = Vdram_circuits.Domains
module Logic_block = Vdram_circuits.Logic_block
module C = Vdram_circuits.Contribution

type group = Voltage | Technology | Logic | Interface

let group_name = function
  | Voltage -> "voltages"
  | Technology -> "technology"
  | Logic -> "logic"
  | Interface -> "interface"

(* Default certified scale-factor band per group, consumed by the
   abstract interpreter (`vdram check`) when the caller declares no
   explicit range: how far a lens is normally swept multiplicatively
   around its nominal value. *)
let default_range = function
  | Voltage -> (0.9, 1.1)
  | Technology -> (0.85, 1.15)
  | Logic -> (0.8, 1.25)
  | Interface -> (0.8, 1.2)

type t = {
  name : string;
  group : group;
  range : float * float;
  dirties : C.group list;
  get : Config.t -> float;
  set : Config.t -> float -> Config.t;
}

let scale lens f cfg = lens.set cfg (lens.get cfg *. f)

(* Which circuit groups a technology parameter can reach, i.e. which
   per-group extraction sub-keys (Model.group_keys) contain the field.
   This is the perturbation -> dirty-group table of doc/ENGINE.md; the
   delta=full and dirty-set tests police it against the actual keys,
   so a charge model growing a new parameter dependency fails loudly
   here instead of silently mis-splicing. *)
let technology_dirties =
  let w = C.Wordline and s = C.Sense_amp and c = C.Column in
  let b = C.Bus and l = C.Logic in
  [
    ("gate oxide thickness logic", [ w; s; c; b; l ]);
    ("gate oxide thickness high voltage", [ w; s ]);
    ("gate oxide thickness cell transistor", [ w ]);
    ("minimum gate length logic", [ w; c; b; l ]);
    ("junction capacitance logic", [ s; c; b; l ]);
    ("minimum gate length high voltage", [ w ]);
    ("junction capacitance high voltage", [ w; s ]);
    ("gate length cell transistor", [ w ]);
    ("gate width cell transistor", [ w ]);
    ("bitline capacitance", [ w; s ]);
    ("cell capacitance", [ s ]);
    ("bitline-wordline coupling share", [ w ]);
    ("specific wire capacitance master wordline", [ w ]);
    ("pre-decode ratio master wordline", [ w; c ]);
    ("width master wordline decoder NMOS", [ w; c ]);
    ("width master wordline decoder PMOS", [ w; c ]);
    ("switching activity master wordline decoder", [ w; c ]);
    ("width load NMOS wordline controller", [ w ]);
    ("width load PMOS wordline controller", [ w ]);
    ("width sub-wordline driver NMOS", [ w ]);
    ("width sub-wordline driver PMOS", [ w ]);
    ("width sub-wordline restore NMOS", [ w ]);
    ("specific wire capacitance sub-wordline", [ w ]);
    ("width sense-amplifier NMOS pair", [ s; c ]);
    ("length sense-amplifier NMOS pair", [ s; c ]);
    ("width sense-amplifier PMOS pair", [ s ]);
    ("length sense-amplifier PMOS pair", [ s ]);
    ("width sense-amplifier equalize", [ s ]);
    ("length sense-amplifier equalize", [ s ]);
    ("width sense-amplifier bit switch", [ s; c ]);
    ("length sense-amplifier bit switch", [ c ]);
    ("width sense-amplifier bitline multiplexer", [ s ]);
    ("length sense-amplifier bitline multiplexer", [ s ]);
    ("width sense-amplifier NMOS set device", [ s ]);
    ("length sense-amplifier NMOS set device", [ s ]);
    ("width sense-amplifier PMOS set device", [ s ]);
    ("length sense-amplifier PMOS set device", [ s ]);
    ("specific wire capacitance signaling", [ w; c; b; l ]);
  ]

let technology =
  List.map
    (fun (name, get, set) ->
      {
        name;
        group = Technology;
        range = default_range Technology;
        dirties =
          (match List.assoc_opt name technology_dirties with
          | Some groups -> groups
          | None -> C.groups (* unknown field: assume it reaches all *));
        get = (fun cfg -> get cfg.Config.tech);
        set = (fun cfg v -> Config.with_tech cfg (set cfg.Config.tech v));
      })
    Params.fields

let with_domains f cfg v =
  Config.with_domains cfg (f cfg.Config.domains v)

(* A changed voltage dirties every group whose sub-key holds it; the
   generator efficiencies and the constant current adder dirty none —
   efficiencies only rescale the extraction's supply-energy terms
   (delta recomputes those without re-extracting) and the current
   adder is a mix-stage input read straight off the configuration. *)
let voltage_lens name dirties get set =
  { name; group = Voltage; range = default_range Voltage; dirties; get; set }

let voltages =
  [
    voltage_lens "external voltage Vdd" [ C.Interface ]
      (fun c -> c.Config.domains.Domains.vdd)
      (with_domains (fun d v -> { d with Domains.vdd = v }));
    voltage_lens "internal voltage Vint"
      [ C.Wordline; C.Sense_amp; C.Column; C.Bus; C.Logic ]
      (fun c -> c.Config.domains.Domains.vint)
      (with_domains (fun d v -> { d with Domains.vint = v }));
    voltage_lens "bitline voltage" [ C.Sense_amp; C.Column ]
      (fun c -> c.Config.domains.Domains.vbl)
      (with_domains (fun d v -> { d with Domains.vbl = v }));
    voltage_lens "wordline voltage Vpp" [ C.Wordline; C.Sense_amp ]
      (fun c -> c.Config.domains.Domains.vpp)
      (with_domains (fun d v -> { d with Domains.vpp = v }));
    voltage_lens "generator efficiency Vint" []
      (fun c -> c.Config.domains.Domains.eff_int)
      (with_domains (fun d v -> { d with Domains.eff_int = v }));
    voltage_lens "generator efficiency bitline voltage" []
      (fun c -> c.Config.domains.Domains.eff_bl)
      (with_domains (fun d v -> { d with Domains.eff_bl = v }));
    voltage_lens "generator efficiency wordline voltage" []
      (fun c -> c.Config.domains.Domains.eff_pp)
      (with_domains (fun d v -> { d with Domains.eff_pp = v }));
    voltage_lens "constant current adder" []
      (fun c -> c.Config.domains.Domains.i_constant)
      (with_domains (fun d v -> { d with Domains.i_constant = v }));
  ]

(* Aggregate logic lenses scale every block; get returns the scale
   relative to the current configuration (1.0). *)
let logic_aggregate name update =
  {
    name;
    group = Logic;
    range = default_range Logic;
    dirties = [ C.Logic ];
    get = (fun _ -> 1.0);
    set = (fun cfg f -> Config.map_logic cfg (update f));
  }

let logic =
  [
    logic_aggregate "number of logic gates" (fun f b ->
        { b with Logic_block.gates = b.Logic_block.gates *. f });
    logic_aggregate "width NFET logic" (fun f b ->
        { b with Logic_block.w_nmos = b.Logic_block.w_nmos *. f });
    logic_aggregate "width PFET logic" (fun f b ->
        { b with Logic_block.w_pmos = b.Logic_block.w_pmos *. f });
    logic_aggregate "logic device density" (fun f b ->
        {
          b with
          Logic_block.layout_density = b.Logic_block.layout_density /. f;
        });
    logic_aggregate "logic wiring density" (fun f b ->
        {
          b with
          Logic_block.wiring_density = b.Logic_block.wiring_density *. f;
        });
    logic_aggregate "transistors per logic gate" (fun f b ->
        {
          b with
          Logic_block.transistors_per_gate =
            b.Logic_block.transistors_per_gate *. f;
        });
  ]

let interface_lens name dirties get set =
  {
    name;
    group = Interface;
    range = default_range Interface;
    dirties;
    get;
    set;
  }

let interface =
  [
    interface_lens "DQ pre-driver load" [ C.Interface ]
      (fun c -> c.Config.io_predriver_cap)
      (fun c v -> { c with Config.io_predriver_cap = v });
    interface_lens "DQ receiver load" [ C.Interface ]
      (fun c -> c.Config.io_receiver_cap)
      (fun c v -> { c with Config.io_receiver_cap = v });
    (* The toggle rate scales both the DQ interface events and the
       sense-amp write-back flips. *)
    interface_lens "data toggle rate" [ C.Sense_amp; C.Interface ]
      (fun c -> c.Config.data_toggle)
      (fun c v -> Config.with_data_toggle c v);
    (* Receiver bias is a mix-stage input, like the current adder. *)
    interface_lens "input receiver bias" []
      (fun c -> c.Config.receiver_bias)
      (fun c v -> { c with Config.receiver_bias = v });
  ]

let all = voltages @ technology @ logic @ interface

let find name = List.find_opt (fun l -> l.name = name) all
