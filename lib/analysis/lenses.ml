(* Parameter lenses over Config.t. *)

module Config = Vdram_core.Config
module Params = Vdram_tech.Params
module Domains = Vdram_circuits.Domains
module Logic_block = Vdram_circuits.Logic_block

type group = Voltage | Technology | Logic | Interface

let group_name = function
  | Voltage -> "voltages"
  | Technology -> "technology"
  | Logic -> "logic"
  | Interface -> "interface"

(* Default certified scale-factor band per group, consumed by the
   abstract interpreter (`vdram check`) when the caller declares no
   explicit range: how far a lens is normally swept multiplicatively
   around its nominal value. *)
let default_range = function
  | Voltage -> (0.9, 1.1)
  | Technology -> (0.85, 1.15)
  | Logic -> (0.8, 1.25)
  | Interface -> (0.8, 1.2)

type t = {
  name : string;
  group : group;
  range : float * float;
  get : Config.t -> float;
  set : Config.t -> float -> Config.t;
}

let scale lens f cfg = lens.set cfg (lens.get cfg *. f)

let technology =
  List.map
    (fun (name, get, set) ->
      {
        name;
        group = Technology;
        range = default_range Technology;
        get = (fun cfg -> get cfg.Config.tech);
        set = (fun cfg v -> Config.with_tech cfg (set cfg.Config.tech v));
      })
    Params.fields

let with_domains f cfg v =
  Config.with_domains cfg (f cfg.Config.domains v)

let voltage_lens name get set =
  { name; group = Voltage; range = default_range Voltage; get; set }

let voltages =
  [
    voltage_lens "external voltage Vdd"
      (fun c -> c.Config.domains.Domains.vdd)
      (with_domains (fun d v -> { d with Domains.vdd = v }));
    voltage_lens "internal voltage Vint"
      (fun c -> c.Config.domains.Domains.vint)
      (with_domains (fun d v -> { d with Domains.vint = v }));
    voltage_lens "bitline voltage"
      (fun c -> c.Config.domains.Domains.vbl)
      (with_domains (fun d v -> { d with Domains.vbl = v }));
    voltage_lens "wordline voltage Vpp"
      (fun c -> c.Config.domains.Domains.vpp)
      (with_domains (fun d v -> { d with Domains.vpp = v }));
    voltage_lens "generator efficiency Vint"
      (fun c -> c.Config.domains.Domains.eff_int)
      (with_domains (fun d v -> { d with Domains.eff_int = v }));
    voltage_lens "generator efficiency bitline voltage"
      (fun c -> c.Config.domains.Domains.eff_bl)
      (with_domains (fun d v -> { d with Domains.eff_bl = v }));
    voltage_lens "generator efficiency wordline voltage"
      (fun c -> c.Config.domains.Domains.eff_pp)
      (with_domains (fun d v -> { d with Domains.eff_pp = v }));
    voltage_lens "constant current adder"
      (fun c -> c.Config.domains.Domains.i_constant)
      (with_domains (fun d v -> { d with Domains.i_constant = v }));
  ]

(* Aggregate logic lenses scale every block; get returns the scale
   relative to the current configuration (1.0). *)
let logic_aggregate name update =
  {
    name;
    group = Logic;
    range = default_range Logic;
    get = (fun _ -> 1.0);
    set = (fun cfg f -> Config.map_logic cfg (update f));
  }

let logic =
  [
    logic_aggregate "number of logic gates" (fun f b ->
        { b with Logic_block.gates = b.Logic_block.gates *. f });
    logic_aggregate "width NFET logic" (fun f b ->
        { b with Logic_block.w_nmos = b.Logic_block.w_nmos *. f });
    logic_aggregate "width PFET logic" (fun f b ->
        { b with Logic_block.w_pmos = b.Logic_block.w_pmos *. f });
    logic_aggregate "logic device density" (fun f b ->
        {
          b with
          Logic_block.layout_density = b.Logic_block.layout_density /. f;
        });
    logic_aggregate "logic wiring density" (fun f b ->
        {
          b with
          Logic_block.wiring_density = b.Logic_block.wiring_density *. f;
        });
    logic_aggregate "transistors per logic gate" (fun f b ->
        {
          b with
          Logic_block.transistors_per_gate =
            b.Logic_block.transistors_per_gate *. f;
        });
  ]

let interface_lens name get set =
  { name; group = Interface; range = default_range Interface; get; set }

let interface =
  [
    interface_lens "DQ pre-driver load"
      (fun c -> c.Config.io_predriver_cap)
      (fun c v -> { c with Config.io_predriver_cap = v });
    interface_lens "DQ receiver load"
      (fun c -> c.Config.io_receiver_cap)
      (fun c v -> { c with Config.io_receiver_cap = v });
    interface_lens "data toggle rate"
      (fun c -> c.Config.data_toggle)
      (fun c v -> Config.with_data_toggle c v);
    interface_lens "input receiver bias"
      (fun c -> c.Config.receiver_bias)
      (fun c v -> { c with Config.receiver_bias = v });
  ]

let all = voltages @ technology @ logic @ interface

let find name = List.find_opt (fun l -> l.name = name) all
